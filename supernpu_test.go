package supernpu

import (
	"context"
	"strings"
	"testing"
)

func TestFacadeDesigns(t *testing.T) {
	names := []string{}
	for _, d := range Designs() {
		names = append(names, d.Name())
	}
	want := "TPU Baseline Buffer opt. Resource opt. SuperNPU"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("Designs() = %q, want %q", got, want)
	}
	if len(Workloads()) != 6 {
		t.Fatal("Workloads() must return the six evaluation CNNs")
	}
}

func TestFacadeEvaluateAndSpeedup(t *testing.T) {
	net, err := WorkloadByName("GoogLeNet")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(context.Background(), SuperNPU(), net, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Throughput <= 0 || ev.Batch != 30 {
		t.Fatalf("unexpected evaluation: %+v", ev)
	}
	s, err := Speedup(context.Background(), SuperNPU(), net)
	if err != nil {
		t.Fatal(err)
	}
	if s < 10 {
		t.Fatalf("SuperNPU speedup on GoogLeNet = %.1f, want > 10", s)
	}
}

func TestFacadeERSFQ(t *testing.T) {
	d := ERSFQ(SuperNPU())
	if d.Name() != "ERSFQ-SuperNPU" {
		t.Fatalf("name = %q", d.Name())
	}
	est, err := EstimateDesign(context.Background(), d)
	if err != nil {
		t.Fatal(err)
	}
	if est.StaticPower != 0 {
		t.Fatal("ERSFQ design must have zero static power")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ERSFQ on a CMOS design must panic")
		}
	}()
	ERSFQ(TPU())
}

func TestFacadeCustomNetwork(t *testing.T) {
	net := NewNetwork("tiny",
		NewConvLayer("c1", 32, 32, 3, 3, 3, 16, 1, 1),
		NewDepthwiseLayer("dw", 32, 32, 16, 3, 3, 2, 1),
		NewConvLayer("pw", 16, 16, 16, 1, 1, 32, 1, 0),
		NewPoolLayer("pool", 16, 16, 32, 2, 2, 0),
		NewFCLayer("fc", 8*8*32, 10),
	)
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	ev, err := Evaluate(context.Background(), SuperNPU(), net, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MACs != 4*net.TotalMACs() {
		t.Fatal("custom network MAC accounting wrong")
	}
}

func TestFacadeValidationAndExperiments(t *testing.T) {
	if rep := ValidateModels(); len(rep.Items) != 11 {
		t.Fatal("validation must cover the 11 Fig. 13 subjects")
	}
	if len(ExperimentIDs()) != 13 {
		t.Fatal("13 exhibits expected")
	}
	out, err := RunExperiment(context.Background(), "table2")
	if err != nil || !strings.Contains(out, "Table II") {
		t.Fatalf("RunExperiment failed: %v", err)
	}
}

func TestFacadeExploration(t *testing.T) {
	pts, err := ExploreDivision([]int{64})
	if err != nil || len(pts) != 3 {
		t.Fatalf("ExploreDivision: %v (%d points)", err, len(pts))
	}
	if pts[2].MaxBatch <= pts[0].MaxBatch {
		t.Fatal("division 64 must beat the Baseline")
	}
	w, err := ExploreWidth()
	if err != nil || len(w) != 5 {
		t.Fatalf("ExploreWidth: %v", err)
	}
	r, err := ExploreRegisters(64, []int{1, 8})
	if err != nil || len(r) != 2 {
		t.Fatalf("ExploreRegisters: %v", err)
	}
}
