// Command supernpu-serve runs the HTTP evaluation service: single
// evaluations, estimator queries and design-space sweeps over the paper's
// models, served as JSON with bounded concurrency and backpressure.
//
// Usage:
//
//	supernpu-serve                      # listen on :8080
//	supernpu-serve -addr :9000 -queue 128 -timeout 10s
//	supernpu-serve -workers 4           # bound the simulation pool at 4
//
// Endpoints:
//
//	POST /v1/evaluate   {"design":"SuperNPU","workload":"ResNet50","batch":0}
//	POST /v1/estimate   {"design":"SuperNPU"} or {"config":{...}}
//	POST /v1/explore    {"sweep":"division","degrees":[4,16,64]}
//	GET  /v1/designs    the five evaluation design points
//	GET  /v1/workloads  the six evaluation CNNs
//	GET  /healthz       liveness
//	GET  /debug/stats   cache hit/miss, pool occupancy, queue gauges
//	GET  /debug/vars    raw expvar
//
// The service sheds load with 429 + Retry-After once the work queue is
// full, and drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"supernpu/internal/parallel"
	"supernpu/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker pool width (also the request concurrency bound)")
	queue := flag.Int("queue", 64, "bounded request queue depth; beyond it requests get 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout, queue wait included")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	flag.Parse()

	parallel.SetWorkers(*workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	s := server.New(server.Options{
		MaxConcurrent: parallel.Workers(),
		QueueDepth:    *queue,
		Timeout:       *timeout,
	})
	if err := s.ListenAndServe(ctx, *addr, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-serve:", err)
		os.Exit(1)
	}
}
