// Command supernpu-serve runs the HTTP evaluation service: single
// evaluations, estimator queries and design-space sweeps over the paper's
// models, served as JSON with bounded concurrency and backpressure.
//
// Usage:
//
//	supernpu-serve                      # listen on :8080
//	supernpu-serve -addr :9000 -queue 128 -timeout 10s
//	supernpu-serve -workers 4           # bound the simulation pool at 4
//
// Endpoints:
//
//	POST /v1/evaluate   {"design":"SuperNPU","workload":"ResNet50","batch":0}
//	POST /v1/estimate   {"design":"SuperNPU"} or {"config":{...}}
//	POST /v1/explore    {"sweep":"division","degrees":[4,16,64]}
//	GET  /v1/designs    the five evaluation design points
//	GET  /v1/workloads  the six evaluation CNNs
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text exposition of every obs instrument
//	GET  /debug/stats   cache hit/miss, pool occupancy, queue gauges
//	GET  /debug/vars    raw expvar
//	GET  /debug/pprof/  live profiling (net/http/pprof: profile, heap, trace, …)
//
// The service sheds load with 429 + Retry-After once the work queue is
// full, and drains in-flight requests on SIGINT/SIGTERM.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"supernpu/internal/faultinject"
	"supernpu/internal/parallel"
	"supernpu/internal/server"

	// The JSIM solver registers its instrument family (transients, steps,
	// pulses) at init; linking it here keeps those series on /metrics even
	// though the serving path reaches jsim only through the facade.
	_ "supernpu/internal/jsim"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", runtime.NumCPU(), "simulation worker pool width (also the request concurrency bound)")
	queue := flag.Int("queue", 64, "bounded request queue depth; beyond it requests get 429")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request timeout, queue wait included")
	grace := flag.Duration("grace", 15*time.Second, "shutdown grace period for draining in-flight requests")
	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic SFQ fault model")
	icSpread := flag.Float64("ic-spread", 0, "junction critical-current spread injected into every simulation")
	pulseDrop := flag.Float64("pulse-drop", 0, "thermal pulse-drop probability per shift")
	bitFlip := flag.Float64("bit-flip", 0, "datapath bit-flip probability per MAC")
	erosion := flag.Float64("erosion", 0, "timing-margin erosion (fractional delay stretch)")
	simFail := flag.Float64("sim-fail", 0, "probability a simulation aborts entirely (exercises the degraded path)")
	flag.Parse()

	parallel.SetWorkers(*workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Any non-zero rate arms the fault model; /v1/evaluate degrades to the
	// analytical roofline (200 + "degraded": true) when a simulation aborts.
	var fm *faultinject.Model
	if *icSpread != 0 || *pulseDrop != 0 || *bitFlip != 0 || *erosion != 0 || *simFail != 0 {
		fm = &faultinject.Model{
			Seed: *faultSeed, IcSpread: *icSpread, PulseDrop: *pulseDrop,
			BitFlip: *bitFlip, MarginErosion: *erosion, SimFail: *simFail,
		}
	}

	s := server.New(server.Options{
		MaxConcurrent: parallel.Workers(),
		QueueDepth:    *queue,
		Timeout:       *timeout,
		Fault:         fm,
	})
	if err := s.ListenAndServe(ctx, *addr, *grace); err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-serve:", err)
		os.Exit(1)
	}
}
