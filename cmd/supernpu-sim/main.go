// Command supernpu-sim runs the cycle-based performance simulator for one
// workload on one design and prints the per-layer breakdown.
//
// Usage:
//
//	supernpu-sim -design SuperNPU -net ResNet50
//	supernpu-sim -design Baseline -net VGG16 -batch 1 -layers
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"supernpu"
	"supernpu/internal/report"
)

func pick(name string) (supernpu.Design, error) {
	for _, d := range supernpu.Designs() {
		if d.Name() == name {
			return d, nil
		}
	}
	return supernpu.Design{}, fmt.Errorf("unknown design %q (TPU, Baseline, Buffer opt., Resource opt., SuperNPU)", name)
}

func main() {
	design := flag.String("design", "SuperNPU", "design point name")
	netName := flag.String("net", "ResNet50", "workload name")
	batch := flag.Int("batch", 0, "batch size (0 = design's max batch)")
	layers := flag.Bool("layers", false, "print the per-layer cycle breakdown (SFQ designs)")
	ersfq := flag.Bool("ersfq", false, "switch an SFQ design to ERSFQ biasing")
	flag.Parse()

	d, err := pick(*design)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-sim:", err)
		os.Exit(1)
	}
	if *ersfq {
		d = supernpu.ERSFQ(d)
	}
	net, err := supernpu.WorkloadByName(*netName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-sim:", err)
		os.Exit(1)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ev, err := supernpu.Evaluate(ctx, d, net, *batch)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-sim:", err)
		os.Exit(1)
	}

	t := report.NewTable(fmt.Sprintf("%s on %s", ev.Network, ev.Design), "metric", "value")
	t.AddRow("batch", fmt.Sprintf("%d", ev.Batch))
	t.AddRow("clock", fmt.Sprintf("%.2f GHz", ev.Frequency/1e9))
	t.AddRow("peak", fmt.Sprintf("%.0f TMAC/s", ev.PeakMACs/1e12))
	t.AddRow("effective", fmt.Sprintf("%.2f TMAC/s", ev.Throughput/1e12))
	t.AddRow("PE utilization", fmt.Sprintf("%.2f %%", ev.PEUtilization*100))
	t.AddRow("batch latency", fmt.Sprintf("%.3g s", ev.Time))
	t.AddRow("total cycles", fmt.Sprintf("%d", ev.TotalCycles))
	t.AddRow("chip power", fmt.Sprintf("%.3g W", ev.ChipPower))
	if ev.SFQReport != nil {
		t.AddRow("preparation", fmt.Sprintf("%.1f %%", ev.PrepFraction*100))
		p := ev.SFQReport.Power
		t.AddRow("dynamic power", fmt.Sprintf("clock %.3g + MAC %.3g + buffer %.3g + DAU %.3g W",
			p.Clock, p.MAC, p.Buffer, p.DAU))
		tr := ev.SFQReport.Trace
		t.AddRow("access trace", fmt.Sprintf("%d mappings, %.2g buffer B, %.2g DRAM B",
			tr.Mappings, float64(tr.BufferBytes), float64(tr.DRAMBytes)))
	}
	t.Render(os.Stdout)

	if *layers && ev.SFQReport != nil {
		lt := report.NewTable("per-layer breakdown",
			"layer", "mappings", "compute", "weights", "ifmap move", "psum move", "stall")
		for _, ls := range ev.SFQReport.Layers {
			lt.AddRow(ls.Layer.Name,
				fmt.Sprintf("%d", ls.Mappings),
				fmt.Sprintf("%d", ls.ComputeCycles),
				fmt.Sprintf("%d", ls.WeightCycles),
				fmt.Sprintf("%d", ls.IfmapMoveCycles),
				fmt.Sprintf("%d", ls.PsumMoveCycles),
				fmt.Sprintf("%d", ls.StallCycles))
		}
		lt.Render(os.Stdout)
	}
}
