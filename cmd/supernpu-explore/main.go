// Command supernpu-explore runs the design-space sweeps that produced
// SuperNPU: buffer division (Fig. 20), resource balancing (Fig. 21),
// registers per PE (Fig. 22) — plus the bias-margin robustness sweep under
// the seeded SFQ fault model.
//
// Usage:
//
//	supernpu-explore -sweep division
//	supernpu-explore -sweep width -parallel 4
//	supernpu-explore -sweep registers -width 64 -seq -v
//	supernpu-explore -sweep margin -fault-seed 42
//	supernpu-explore -sweep division -ic-spread 0.05 -pulse-drop 1e-6
//	supernpu-explore -sweep margin -fault-seed 42 -checkpoint margin.ck
//	supernpu-explore -sweep margin -fault-seed 42 -checkpoint margin.ck -resume
//	supernpu-explore -sweep width -trace-out spans.jsonl
//	supernpu-explore -sweep margin -deadline 10m -max-retries 3
//
// Fault injection (-fault-seed, -ic-spread, -pulse-drop, -bit-flip,
// -erosion) perturbs every simulation of the sweep deterministically: the
// same seed reproduces the same output byte for byte at any worker count.
// Long sweeps checkpoint each completed point to -checkpoint; a killed run
// restarted with -resume skips every checkpointed point without
// re-simulating it (without -resume the checkpoint file starts fresh).
// SIGINT/SIGTERM cancels the sweep cleanly, keeping the checkpoint intact.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"supernpu"
	"supernpu/internal/guard"
	"supernpu/internal/jsim"
	"supernpu/internal/obs"
	"supernpu/internal/parallel"
	"supernpu/internal/report"
	"supernpu/internal/simcache"
)

func main() {
	sweep := flag.String("sweep", "division", "sweep kind: division, width, registers, margin")
	width := flag.Int("width", 64, "PE array width for the registers sweep")
	par := flag.Int("parallel", runtime.NumCPU(), "maximum worker count for parallel evaluation")
	seq := flag.Bool("seq", false, "run serially (shorthand for -parallel 1)")
	verbose := flag.Bool("v", false, "print simulation-cache hit/miss statistics to stderr")

	faultSeed := flag.Int64("fault-seed", 0, "seed for the deterministic fault model")
	icSpread := flag.Float64("ic-spread", 0, "junction critical-current spread (fractional sigma)")
	pulseDrop := flag.Float64("pulse-drop", 0, "thermal pulse-drop probability per shift")
	bitFlip := flag.Float64("bit-flip", 0, "datapath bit-flip probability per MAC")
	erosion := flag.Float64("erosion", 0, "timing-margin erosion (fractional delay stretch)")

	ckPath := flag.String("checkpoint", "", "checkpoint file for kill/resume of long sweeps")
	resume := flag.Bool("resume", false, "resume from an existing checkpoint instead of starting fresh")
	traceOut := flag.String("trace-out", "", "write phase tracing spans (JSONL) to this file")
	deadline := flag.Duration("deadline", 0, "abort the sweep after this wall-clock budget (0 = none)")
	maxRetries := flag.Int("max-retries", jsim.MaxDtRetries(), "refined-dt retries per RCSJ transient after a numeric failure")
	flag.Parse()

	jsim.SetMaxDtRetries(*maxRetries)

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-explore: trace-out:", err)
			os.Exit(1)
		}
		obs.SetTraceWriter(f)
		defer func() {
			obs.SetTraceWriter(nil)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "supernpu-explore: trace-out:", err)
			}
		}()
	}

	if *seq {
		parallel.SetWorkers(1)
	} else {
		parallel.SetWorkers(*par)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if err := run(ctx, *sweep, *width, *faultSeed, *icSpread, *pulseDrop, *bitFlip, *erosion, *ckPath, *resume); err != nil {
		if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadlineExceeded) {
			// A canceled sweep is a clean exit: the checkpoint holds every
			// completed point and -resume picks up from there.
			fmt.Fprintln(os.Stderr, "supernpu-explore: sweep canceled:", err)
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "supernpu-explore:", err)
		os.Exit(1)
	}

	if *verbose {
		fmt.Fprintf(os.Stderr, "workers: %d\n", parallel.Workers())
		for _, s := range simcache.Snapshot() {
			fmt.Fprintf(os.Stderr, "cache %-10s %5d entries, %6d hits, %5d misses (%.0f%% hit rate)\n",
				s.Name, s.Entries, s.Hits, s.Misses, s.HitRate()*100)
		}
	}
}

// openCheckpoint opens the checkpoint store; without -resume an existing
// file is discarded so stale points cannot leak into a fresh sweep.
func openCheckpoint(path string, resume bool) (*supernpu.Checkpoint, error) {
	if path == "" {
		if resume {
			return nil, fmt.Errorf("-resume requires -checkpoint")
		}
		return nil, nil
	}
	if !resume {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
	}
	return supernpu.OpenCheckpoint(path)
}

func run(ctx context.Context, sweep string, width int, seed int64, icSpread, pulseDrop, bitFlip, erosion float64, ckPath string, resume bool) (err error) {
	sp := obs.StartSpan("sweep", obs.L("kind", sweep))
	defer sp.End()

	ck, cerr := openCheckpoint(ckPath, resume)
	if cerr != nil {
		return cerr
	}
	// A close failure means the checkpoint tail may not be durable, which
	// would corrupt a later -resume; surface it unless the sweep already
	// failed for another reason.
	defer func() {
		if cerr := ck.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	if sweep == "margin" {
		out, err := supernpu.MarginSweep(ctx, supernpu.MarginSweepOptions{
			Seed:       seed,
			Checkpoint: ck,
		})
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	var fm *supernpu.FaultModel
	if icSpread != 0 || pulseDrop != 0 || bitFlip != 0 || erosion != 0 {
		fm = &supernpu.FaultModel{
			Seed: seed, IcSpread: icSpread, PulseDrop: pulseDrop,
			BitFlip: bitFlip, MarginErosion: erosion,
		}
	}
	o := supernpu.SweepOptions{Fault: fm, Checkpoint: ck}

	var points []supernpu.SweepPoint
	switch sweep {
	case "division":
		points, err = supernpu.ExploreDivisionOpts(ctx, []int{4, 16, 64, 256, 1024, 4096}, o)
	case "width":
		points, err = supernpu.ExploreWidthOpts(ctx, o)
	case "registers":
		points, err = supernpu.ExploreRegistersOpts(ctx, width, []int{1, 2, 4, 8, 16, 32}, o)
	default:
		err = fmt.Errorf("unknown sweep %q (division, width, registers, margin)", sweep)
	}
	if err != nil {
		return err
	}

	title := fmt.Sprintf("%s sweep (geomean speedup vs Baseline)", sweep)
	if fm.Enabled() {
		title += fmt.Sprintf(" under faults [%s]", fm)
	}
	t := report.NewTable(title, "design", "single batch", "max batch", "area (norm.)")
	for _, p := range points {
		t.AddRow(p.Label, report.F(p.SingleBatch, 2), report.F(p.MaxBatch, 2), report.F(p.AreaRel, 3))
	}
	t.Render(os.Stdout)
	return nil
}
