// Command supernpu-explore runs the design-space sweeps that produced
// SuperNPU: buffer division (Fig. 20), resource balancing (Fig. 21) and
// registers per PE (Fig. 22).
//
// Usage:
//
//	supernpu-explore -sweep division
//	supernpu-explore -sweep width -parallel 4
//	supernpu-explore -sweep registers -width 64 -seq -v
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"supernpu"
	"supernpu/internal/parallel"
	"supernpu/internal/report"
	"supernpu/internal/simcache"
)

func main() {
	sweep := flag.String("sweep", "division", "sweep kind: division, width, registers")
	width := flag.Int("width", 64, "PE array width for the registers sweep")
	par := flag.Int("parallel", runtime.NumCPU(), "maximum worker count for parallel evaluation")
	seq := flag.Bool("seq", false, "run serially (shorthand for -parallel 1)")
	verbose := flag.Bool("v", false, "print simulation-cache hit/miss statistics to stderr")
	flag.Parse()

	if *seq {
		parallel.SetWorkers(1)
	} else {
		parallel.SetWorkers(*par)
	}

	var (
		points []supernpu.SweepPoint
		err    error
	)
	switch *sweep {
	case "division":
		points, err = supernpu.ExploreDivision([]int{4, 16, 64, 256, 1024, 4096})
	case "width":
		points, err = supernpu.ExploreWidth()
	case "registers":
		points, err = supernpu.ExploreRegisters(*width, []int{1, 2, 4, 8, 16, 32})
	default:
		err = fmt.Errorf("unknown sweep %q (division, width, registers)", *sweep)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-explore:", err)
		os.Exit(1)
	}

	t := report.NewTable(fmt.Sprintf("%s sweep (geomean speedup vs Baseline)", *sweep),
		"design", "single batch", "max batch", "area (norm.)")
	for _, p := range points {
		t.AddRow(p.Label, report.F(p.SingleBatch, 2), report.F(p.MaxBatch, 2), report.F(p.AreaRel, 3))
	}
	t.Render(os.Stdout)

	if *verbose {
		fmt.Fprintf(os.Stderr, "workers: %d\n", parallel.Workers())
		for _, s := range simcache.Snapshot() {
			fmt.Fprintf(os.Stderr, "cache %-10s %5d entries, %6d hits, %5d misses (%.0f%% hit rate)\n",
				s.Name, s.Entries, s.Hits, s.Misses, s.HitRate()*100)
		}
	}
}
