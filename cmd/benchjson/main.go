// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a deterministic JSON artifact mapping each benchmark
// name to its measured ns/op, B/op and allocs/op — the format of the
// repo's recorded perf trajectory (BENCH_PR6.json, written by
// `make bench-json`). The parsing and rendering live in
// internal/benchparse; this command is the stdin/stdout shell around them.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH.json
package main

import (
	"fmt"
	"os"

	"supernpu/internal/benchparse"
)

func main() {
	rows, err := benchparse.Parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	fmt.Print(benchparse.RenderJSON(rows))
}
