// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a deterministic JSON artifact mapping each benchmark
// name to its measured ns/op, B/op and allocs/op — the format of the
// repo's recorded perf trajectory (BENCH_PR6.json, BENCH_PR10.json,
// written by `make bench-json`). The parsing and rendering live in
// internal/benchparse; this command is the stdin/stdout shell around them.
//
// With -compare it instead diffs two recorded artifacts, printing the
// per-benchmark ns/op deltas over their shared names and exiting non-zero
// when any benchmark got slower than the -threshold ratio allows.
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH.json
//	benchjson -compare [-threshold 1.5] OLD.json NEW.json
package main

import (
	"flag"
	"fmt"
	"os"

	"supernpu/internal/benchparse"
)

func main() {
	compare := flag.Bool("compare", false, "compare two benchjson artifacts (OLD.json NEW.json) instead of reading bench output from stdin")
	threshold := flag.Float64("threshold", 1.5, "with -compare: fail when any benchmark's new/old ns/op ratio exceeds this")
	flag.Parse()

	if !*compare {
		rows, err := benchparse.Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		if len(rows) == 0 {
			fatal(fmt.Errorf("no benchmark lines on stdin"))
		}
		fmt.Print(benchparse.RenderJSON(rows))
		return
	}

	if flag.NArg() != 2 {
		fatal(fmt.Errorf("-compare needs exactly two artifacts: OLD.json NEW.json"))
	}
	old, err := loadArtifact(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := loadArtifact(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	deltas := benchparse.Compare(old, cur)
	if len(deltas) == 0 {
		fatal(fmt.Errorf("%s and %s share no benchmarks with ns/op measurements", flag.Arg(0), flag.Arg(1)))
	}
	fmt.Print(benchparse.RenderCompare(deltas))
	if regs := benchparse.Regressions(deltas, *threshold); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d benchmark(s) regressed past %.2fx:\n", len(regs), *threshold)
		for _, d := range regs {
			fmt.Fprintf(os.Stderr, "  %s: %.2fx slower\n", d.Name, d.Ratio)
		}
		os.Exit(1)
	}
}

func loadArtifact(path string) (map[string]benchparse.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rows, err := benchparse.ParseJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rows, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
