// Command benchjson converts `go test -bench -benchmem` text output (read
// from stdin) into a deterministic JSON artifact mapping each benchmark
// name to its measured ns/op, B/op and allocs/op — the format of the
// repo's recorded perf trajectory (BENCH_PR6.json, written by
// `make bench-json`).
//
// Usage:
//
//	go test -run=NONE -bench=. -benchmem ./... | benchjson > BENCH.json
//
// Benchmark names are stripped of their -GOMAXPROCS suffix; when a name
// appears more than once (several packages, -count > 1), the last
// measurement wins. Output keys are sorted, so identical measurements
// produce identical bytes.
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// row holds one benchmark's parsed measurements. Missing quantities (e.g.
// B/op without -benchmem) stay at -1 and are emitted as null.
type row struct {
	nsPerOp     float64
	bytesPerOp  float64
	allocsPerOp float64
}

func main() {
	rows := map[string]row{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if ok {
			rows[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		r := rows[name]
		fmt.Fprintf(&b, "  %q: {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
			name, num(r.nsPerOp), num(r.bytesPerOp), num(r.allocsPerOp))
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	fmt.Print(b.String())
}

// num renders a measurement, with -1 (absent) as JSON null.
func num(v float64) string {
	if v < 0 {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// parseLine extracts one benchmark result line of the form
//
//	BenchmarkName-8   100   5481294 ns/op   774080 B/op   6016 allocs/op
//
// returning the bare benchmark name and its measurements.
func parseLine(line string) (string, row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", row{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r := row{nsPerOp: -1, bytesPerOp: -1, allocsPerOp: -1}
	found := false
	for i := 2; i < len(fields)-1; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.nsPerOp = v
			found = true
		case "B/op":
			r.bytesPerOp = v
			found = true
		case "allocs/op":
			r.allocsPerOp = v
			found = true
		}
	}
	return name, r, found
}
