// Command supernpu-estimate runs the three-layer SFQ estimator on a design
// and prints its frequency, power, area and per-unit breakdown (the Fig. 10
// output path), plus the Fig. 13 validation when requested.
//
// Usage:
//
//	supernpu-estimate -design SuperNPU
//	supernpu-estimate -design Baseline -ersfq
//	supernpu-estimate -validate
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"supernpu"
	"supernpu/internal/netlist"
	"supernpu/internal/pe"
	"supernpu/internal/report"
	"supernpu/internal/sfq"
)

// crossCheckNetlist compares the PE package's closed-form structure model
// against the gate-level netlist generator (internal/netlist): the two
// independent derivations of the Fig. 10 "structure model".
func crossCheckNetlist() {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	pc := pe.Default8Bit(1)
	g := netlist.MAC(pc.Bits, pc.AccBits, pc.Registers)
	peInv := pc.Inventory()
	nlInv := g.Inventory()

	t := report.NewTable("PE structure model vs generated gate netlist",
		"quantity", "closed form (internal/pe)", "netlist (internal/netlist)")
	t.AddRow("AND gates", fmt.Sprintf("%d", peInv[sfq.AND]), fmt.Sprintf("%d", nlInv[sfq.AND]))
	t.AddRow("full adders", fmt.Sprintf("%d", peInv[sfq.FA]), fmt.Sprintf("%d", nlInv[sfq.FA]))
	t.AddRow("NDRO bits", fmt.Sprintf("%d", peInv[sfq.NDRO]), fmt.Sprintf("%d", nlInv[sfq.NDRO]))
	t.AddRow("balancing DFFs", fmt.Sprintf("%d", peInv[sfq.DFF]), fmt.Sprintf("%d", nlInv[sfq.DFF]))
	t.AddRow("pipeline stages", fmt.Sprintf("%d", pc.PipelineStages()), fmt.Sprintf("%d", g.Stages()))
	t.AddRow("JJs", fmt.Sprintf("%d", peInv.JJs(lib)), fmt.Sprintf("%d", nlInv.JJs(lib)))
	t.AddRow("frequency (GHz)",
		report.F(pc.Frequency(lib)/sfq.GHz, 2),
		report.F(g.Frequency(lib)/sfq.GHz, 2))
	t.AddNote("the closed form carries layout retiming margin beyond the idealized DAG; frequencies must match exactly")
	t.Render(os.Stdout)
}

func main() {
	design := flag.String("design", "SuperNPU", "SFQ design name (Baseline, Buffer opt., Resource opt., SuperNPU)")
	ersfq := flag.Bool("ersfq", false, "use ERSFQ biasing")
	validate := flag.Bool("validate", false, "run the Fig. 13 model validation and exit")
	xcheck := flag.Bool("netlist", false, "cross-check the PE structure model against the generated gate netlist and exit")
	flag.Parse()

	if *xcheck {
		crossCheckNetlist()
		return
	}

	if *validate {
		rep := supernpu.ValidateModels()
		t := report.NewTable("model validation (Fig. 13)", "subject", "metric", "error %")
		for _, it := range rep.Items {
			t.AddRow(it.Unit, string(it.Metric), report.F(it.RelError()*100, 1))
		}
		t.Render(os.Stdout)
		return
	}

	var d supernpu.Design
	found := false
	for _, cand := range supernpu.Designs()[1:] { // skip the CMOS TPU
		if cand.Name() == *design {
			d, found = cand, true
			break
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "supernpu-estimate: unknown SFQ design %q\n", *design)
		os.Exit(1)
	}
	if *ersfq {
		d = supernpu.ERSFQ(d)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	est, err := supernpu.EstimateDesign(ctx, d)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-estimate:", err)
		os.Exit(1)
	}

	t := report.NewTable(fmt.Sprintf("estimate: %s (%s)", d.Name(), est.Config.Tech),
		"unit", "frequency (GHz)", "static power (W)", "area @28nm (mm^2)", "JJs (M)")
	for _, u := range est.Units {
		f := "-"
		if u.Frequency > 0 {
			f = report.F(u.Frequency/sfq.GHz, 1)
		}
		t.AddRow(u.Name, f, report.F(u.StaticPower, 2),
			report.F(u.Area*sfq.AIST10().ScaleAreaTo(28e-9)/sfq.SquareMillimetre, 2),
			report.F(float64(u.JJs)/1e6, 1))
	}
	t.AddRow("TOTAL", report.F(est.Frequency/sfq.GHz, 1), report.F(est.StaticPower, 1),
		report.F(est.Area28nm/sfq.SquareMillimetre, 1), report.F(float64(est.TotalJJs)/1e6, 1))
	t.AddNote("peak performance: %.0f TMAC/s", est.PeakMACs/1e12)
	t.Render(os.Stdout)
}
