// Command supernpu-lint runs the repository's domain static analyzer: the
// rulebook in internal/lint that machine-checks the determinism,
// concurrency, and error-handling contracts the evaluation pipeline
// depends on.
//
// Usage:
//
//	supernpu-lint [-C dir] [-rules r1,r2] [-json] [-list]
//
// Exit codes are CI-friendly: 0 for a clean tree, 1 when findings remain
// after suppression, 2 for usage or load failures. Findings are silenced
// in place with //lint:allow(rule) comments; see internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"supernpu/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir      = flag.String("C", ".", "directory inside the module to lint (the module root is found upward from here)")
		ruleList = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		asJSON   = flag.Bool("json", false, "emit the findings as a JSON report on stdout")
		list     = flag.Bool("list", false, "list the registered rules and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-16s %-8s %s\n", r.Name(), r.Severity(), r.Doc())
		}
		return 0
	}

	rules := lint.Rules()
	if *ruleList != "" {
		rules = rules[:0]
		for _, name := range strings.Split(*ruleList, ",") {
			name = strings.TrimSpace(name)
			r := lint.RuleByName(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "supernpu-lint: unknown rule %q (use -list)\n", name)
				return 2
			}
			rules = append(rules, r)
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
		return 2
	}

	res := lint.Run(pkgs, rules)
	if *asJSON {
		if err := lint.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
			return 2
		}
	} else {
		lint.WriteText(os.Stdout, res)
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}
