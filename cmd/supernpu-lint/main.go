// Command supernpu-lint runs the repository's domain static analyzer: the
// rulebook in internal/lint that machine-checks the determinism,
// concurrency, and error-handling contracts the evaluation pipeline
// depends on — including the interprocedural rules that follow facts
// across function and package boundaries through the module call graph.
//
// Usage:
//
//	supernpu-lint [-C dir] [-rules r1,r2] [-pkgs dir1,dir2]
//	              [-json | -sarif] [-baseline file] [-write-baseline file]
//	              [-list]
//
// Output is text by default; -json emits the stable JSON report and
// -sarif a SARIF 2.1.0 log for code-scanning annotation. -baseline gates
// on the committed baseline: only findings absent from it fail the run,
// and stale entries are reported on stderr so the baseline only shrinks.
// -pkgs restricts reporting to files under the given module-relative
// directories (the packages are still loaded — transitive facts need the
// whole module).
//
// Exit codes are CI-friendly: 0 for a clean tree, 1 when findings remain
// after suppression and baseline filtering, 2 for usage or load failures.
// Findings are silenced in place with //lint:allow(rule) comments; see
// internal/lint.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"supernpu/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		dir       = flag.String("C", ".", "directory inside the module to lint (the module root is found upward from here)")
		ruleList  = flag.String("rules", "", "comma-separated rule names to run (default: all)")
		pkgFilter = flag.String("pkgs", "", "comma-separated module-relative directories to report on (default: whole module)")
		asJSON    = flag.Bool("json", false, "emit the findings as a JSON report on stdout")
		asSARIF   = flag.Bool("sarif", false, "emit the findings as a SARIF 2.1.0 log on stdout")
		baseline  = flag.String("baseline", "", "baseline file; only findings absent from it fail the run")
		writeBase = flag.String("write-baseline", "", "write the current findings as a baseline to this file and exit 0")
		list      = flag.Bool("list", false, "list the registered rules and exit")
	)
	flag.Parse()

	if *list {
		for _, r := range lint.Rules() {
			fmt.Printf("%-16s %-8s %s\n", r.Name(), r.Severity(), r.Doc())
		}
		return 0
	}
	if *asJSON && *asSARIF {
		fmt.Fprintln(os.Stderr, "supernpu-lint: -json and -sarif are mutually exclusive")
		return 2
	}

	rules := lint.Rules()
	if *ruleList != "" {
		rules = rules[:0]
		for _, name := range strings.Split(*ruleList, ",") {
			name = strings.TrimSpace(name)
			r := lint.RuleByName(name)
			if r == nil {
				fmt.Fprintf(os.Stderr, "supernpu-lint: unknown rule %q (use -list)\n", name)
				return 2
			}
			rules = append(rules, r)
		}
	}

	root, err := lint.FindModuleRoot(*dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
		return 2
	}
	pkgs, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
		return 2
	}

	res := lint.Run(pkgs, rules)
	if *pkgFilter != "" {
		res = filterDirs(res, root, strings.Split(*pkgFilter, ","))
	}

	if *writeBase != "" {
		b := lint.NewBaseline(res, root)
		f, err := os.Create(*writeBase)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
			return 2
		}
		werr := b.Write(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", werr)
			return 2
		}
		fmt.Fprintf(os.Stderr, "supernpu-lint: wrote %d baseline identit(ies) to %s\n", len(b.Findings), *writeBase)
		return 0
	}

	if *baseline != "" {
		b, err := lint.LoadBaseline(*baseline)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
			return 2
		}
		var stale []lint.BaselineEntry
		res, stale = lint.ApplyBaseline(res, root, b)
		for _, e := range stale {
			fmt.Fprintf(os.Stderr, "supernpu-lint: stale baseline entry: %s in %s (%s) x%d — the tree no longer produces it, delete it\n", e.Rule, e.File, e.Symbol, e.Count)
		}
	}

	switch {
	case *asJSON:
		if err := lint.WriteJSON(os.Stdout, res); err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
			return 2
		}
	case *asSARIF:
		if err := lint.WriteSARIF(os.Stdout, res, root); err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-lint:", err)
			return 2
		}
	default:
		lint.WriteText(os.Stdout, res)
	}
	if len(res.Diags) > 0 {
		return 1
	}
	return 0
}

// filterDirs keeps diagnostics whose file lies under one of the given
// module-relative directories.
func filterDirs(res lint.Result, root string, dirs []string) lint.Result {
	var prefixes []string
	for _, d := range dirs {
		d = strings.TrimSpace(d)
		if d == "" {
			continue
		}
		prefixes = append(prefixes, filepath.ToSlash(filepath.Clean(d))+"/")
	}
	out := lint.Result{Suppressed: res.Suppressed}
	for _, diag := range res.Diags {
		rel, err := filepath.Rel(root, diag.File)
		if err != nil {
			out.Diags = append(out.Diags, diag)
			continue
		}
		slashRel := filepath.ToSlash(rel)
		for _, p := range prefixes {
			if strings.HasPrefix(slashRel+"/", p) || strings.HasPrefix(slashRel, p) {
				out.Diags = append(out.Diags, diag)
				break
			}
		}
	}
	return out
}
