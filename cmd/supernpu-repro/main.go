// Command supernpu-repro regenerates the paper's evaluation exhibits.
//
// Usage:
//
//	supernpu-repro              # regenerate every table and figure
//	supernpu-repro -exp fig23   # regenerate one exhibit
//	supernpu-repro -list        # list exhibit ids
//	supernpu-repro -parallel 4  # bound the worker pool at 4
//	supernpu-repro -seq -v      # serial run, cache stats on stderr
//	supernpu-repro -cpuprofile cpu.pprof -memprofile mem.pprof
//	supernpu-repro -trace-out spans.jsonl   # phase-span trace (JSONL)
//	supernpu-repro -deadline 5m             # hard wall-clock budget
//	supernpu-repro -max-retries 0           # disable refined-dt recovery
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	rpprof "runtime/pprof"
	"strings"
	"syscall"

	"supernpu/internal/experiments"
	"supernpu/internal/guard"
	"supernpu/internal/jsim"
	"supernpu/internal/obs"
	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
)

func main() {
	// The work lives in run so its defers (profile flushes) execute before
	// the process exits with a status code.
	os.Exit(run())
}

func run() int {
	exp := flag.String("exp", "all", "exhibit id (fig5..fig23, table1..table3, ablation-*), 'all' or 'ablations'")
	list := flag.Bool("list", false, "list available exhibit ids and exit")
	par := flag.Int("parallel", runtime.NumCPU(), "maximum worker count for parallel evaluation")
	seq := flag.Bool("seq", false, "run serially (shorthand for -parallel 1)")
	verbose := flag.Bool("v", false, "print simulation-cache hit/miss statistics to stderr")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	traceOut := flag.String("trace-out", "", "write phase tracing spans (JSONL) to this file")
	deadline := flag.Duration("deadline", 0, "abort the run after this wall-clock budget (0 = none)")
	maxRetries := flag.Int("max-retries", jsim.MaxDtRetries(), "refined-dt retries per RCSJ transient after a numeric failure")
	flag.Parse()

	jsim.SetMaxDtRetries(*maxRetries)
	// Ctrl-C (or an expired -deadline) cancels the context threaded through
	// every simulation loop; the run stops within one poll interval and
	// reports a guard-taxonomy error instead of dying mid-write.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-repro: trace-out:", err)
			return 1
		}
		obs.SetTraceWriter(f)
		defer func() {
			obs.SetTraceWriter(nil)
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "supernpu-repro: trace-out:", err)
			}
		}()
	}

	if *seq {
		parallel.SetWorkers(1)
	} else {
		parallel.SetWorkers(*par)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-repro: cpuprofile:", err)
			return 1
		}
		if err := rpprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "supernpu-repro: cpuprofile:", err)
			return 1
		}
		defer func() {
			rpprof.StopCPUProfile()
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "supernpu-repro: cpuprofile:", err)
			}
		}()
	}
	if *memprofile != "" {
		defer writeHeapProfile(*memprofile)
	}

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		fmt.Println(strings.Join(experiments.AblationIDs(), "\n"))
		return 0
	}

	var out string
	var err error
	switch *exp {
	case "all":
		out, err = experiments.RunAll(ctx)
	case "ablations":
		var b strings.Builder
		for _, id := range experiments.AblationIDs() {
			o, e := experiments.Run(ctx, id)
			if e != nil {
				err = e
				break
			}
			b.WriteString(o)
			b.WriteString("\n")
		}
		out = b.String()
	default:
		out, err = experiments.Run(ctx, *exp)
	}
	if err != nil {
		if errors.Is(err, guard.ErrCanceled) || errors.Is(err, guard.ErrDeadlineExceeded) {
			fmt.Fprintln(os.Stderr, "supernpu-repro: run canceled:", err)
			return 130
		}
		fmt.Fprintln(os.Stderr, "supernpu-repro:", err)
		return 1
	}
	fmt.Print(out)

	if *verbose {
		printCacheStats()
	}
	return 0
}

// writeHeapProfile snapshots the live heap to path, reporting (not failing
// on) profile I/O errors: a broken profile must not fail a finished run.
func writeHeapProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-repro: memprofile:", err)
		return
	}
	runtime.GC() // settle the heap so the profile reflects live data
	if err := rpprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-repro: memprofile:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-repro: memprofile:", err)
	}
}

func printCacheStats() {
	fmt.Fprintf(os.Stderr, "workers: %d\n", parallel.Workers())
	for _, s := range simcache.Snapshot() {
		fmt.Fprintf(os.Stderr, "cache %-10s %5d entries, %6d hits, %5d misses (%.0f%% hit rate)\n",
			s.Name, s.Entries, s.Hits, s.Misses, s.HitRate()*100)
	}
}
