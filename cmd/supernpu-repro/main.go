// Command supernpu-repro regenerates the paper's evaluation exhibits.
//
// Usage:
//
//	supernpu-repro              # regenerate every table and figure
//	supernpu-repro -exp fig23   # regenerate one exhibit
//	supernpu-repro -list        # list exhibit ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"supernpu/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "exhibit id (fig5..fig23, table1..table3, ablation-*), 'all' or 'ablations'")
	list := flag.Bool("list", false, "list available exhibit ids and exit")
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		fmt.Println(strings.Join(experiments.AblationIDs(), "\n"))
		return
	}

	var out string
	var err error
	switch *exp {
	case "all":
		out, err = experiments.RunAll()
	case "ablations":
		var b strings.Builder
		for _, id := range experiments.AblationIDs() {
			o, e := experiments.Run(id)
			if e != nil {
				err = e
				break
			}
			b.WriteString(o)
			b.WriteString("\n")
		}
		out = b.String()
	default:
		out, err = experiments.Run(*exp)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "supernpu-repro:", err)
		os.Exit(1)
	}
	fmt.Print(out)
}
