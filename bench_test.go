package supernpu

import (
	"context"
	"runtime"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/dau"
	"supernpu/internal/experiments"
	"supernpu/internal/jsim"
	"supernpu/internal/npusim"
	"supernpu/internal/parallel"
	"supernpu/internal/scalesim"
	"supernpu/internal/simcache"
	"supernpu/internal/systolic"
	"supernpu/internal/workload"
)

// One benchmark per paper exhibit: running `go test -bench=.` regenerates
// every table and figure of the evaluation and reports how long each
// reproduction takes. The rendered outputs are logged once per benchmark.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	out, err := experiments.Run(context.Background(), id)
	if err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + out)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5NetworkComparison regenerates the network-unit delay/area
// comparison (Fig. 5).
func BenchmarkFig5NetworkComparison(b *testing.B) { benchExperiment(b, "fig5") }

// BenchmarkFig7FeedbackFrequency regenerates the clocking-scheme frequency
// comparison, including the RCSJ circuit-level extraction (Fig. 7(c)).
func BenchmarkFig7FeedbackFrequency(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkFig8DuplicatedPixels regenerates the ifmap duplication analysis
// (Fig. 8).
func BenchmarkFig8DuplicatedPixels(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig13Validation regenerates the estimator validation (Fig. 13).
func BenchmarkFig13Validation(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig15CycleBreakdown regenerates the Baseline preparation/compute
// breakdown (Fig. 15).
func BenchmarkFig15CycleBreakdown(b *testing.B) { benchExperiment(b, "fig15") }

// BenchmarkFig17Roofline regenerates the single-batch roofline analysis
// (Fig. 17).
func BenchmarkFig17Roofline(b *testing.B) { benchExperiment(b, "fig17") }

// BenchmarkFig20BufferSweep regenerates the buffer integration/division
// sweep (Fig. 20).
func BenchmarkFig20BufferSweep(b *testing.B) { benchExperiment(b, "fig20") }

// BenchmarkFig21ResourceBalancing regenerates the PE-width/buffer-capacity
// sweep (Fig. 21).
func BenchmarkFig21ResourceBalancing(b *testing.B) { benchExperiment(b, "fig21") }

// BenchmarkFig22RegisterSweep regenerates the registers-per-PE sweep
// (Fig. 22).
func BenchmarkFig22RegisterSweep(b *testing.B) { benchExperiment(b, "fig22") }

// BenchmarkFig23Performance regenerates the final cross-design performance
// evaluation (Fig. 23).
func BenchmarkFig23Performance(b *testing.B) { benchExperiment(b, "fig23") }

// BenchmarkTable1Setup regenerates the evaluation-setup table (Table I).
func BenchmarkTable1Setup(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkTable2Batches regenerates the batch-size table (Table II).
func BenchmarkTable2Batches(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3PowerEfficiency regenerates the power-efficiency table
// (Table III).
func BenchmarkTable3PowerEfficiency(b *testing.B) { benchExperiment(b, "table3") }

// --- sweep-engine benchmarks (serial vs parallel, cold vs cached) ---

// benchRunAll measures a cold-cache regeneration of every exhibit at the
// given worker count.
func benchRunAll(b *testing.B, workers int) {
	b.Helper()
	parallel.SetWorkers(workers)
	defer parallel.SetWorkers(0)
	for i := 0; i < b.N; i++ {
		simcache.ClearAll()
		if _, err := experiments.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunAllSerial regenerates every exhibit on one worker with cold
// caches — the pre-parallelism behaviour of the harness.
func BenchmarkRunAllSerial(b *testing.B) { benchRunAll(b, 1) }

// BenchmarkRunAllParallel regenerates every exhibit with the full worker
// pool, cold caches each iteration.
func BenchmarkRunAllParallel(b *testing.B) { benchRunAll(b, runtime.NumCPU()) }

// BenchmarkRunAllWarm measures a fully memoised regeneration: every
// simulation, estimate and RCSJ extraction served from the caches.
func BenchmarkRunAllWarm(b *testing.B) {
	parallel.SetWorkers(runtime.NumCPU())
	defer parallel.SetWorkers(0)
	simcache.ClearAll()
	if _, err := experiments.RunAll(context.Background()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAll(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// benchFig20Warm measures the Fig. 20 buffer sweep with the whole-simulation
// caches cleared every iteration but the layer-grain families (npusim.layer,
// scalesim.layer, mapper.tiles) and the estimator caches kept warm — the
// steady-state cost of re-running a sweep whose per-layer work is shared.
// The layerGrain flag selects the before/after variant: with the layer-grain
// cache disabled every iteration re-walks every tile plan.
func benchFig20Warm(b *testing.B, layerGrain bool) {
	b.Helper()
	simcache.SetLayerGrain(layerGrain)
	simcache.ClearAll()
	b.Cleanup(func() {
		simcache.SetLayerGrain(true)
		simcache.ClearAll()
	})
	if _, err := experiments.Run(context.Background(), "fig20"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simcache.Clear("npusim")
		simcache.Clear("scalesim")
		if _, err := experiments.Run(context.Background(), "fig20"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig20BufferSweepWarm is the layer-grain-cached sweep re-run:
// whole-simulation entries evicted, per-layer tile walks served from the
// layer-grain cache.
func BenchmarkFig20BufferSweepWarm(b *testing.B) { benchFig20Warm(b, true) }

// BenchmarkFig20BufferSweepWarmNoLayerGrain is the same eviction pattern
// with layer-grain caching disabled — the pre-PR-10 cost of the sweep.
func BenchmarkFig20BufferSweepWarmNoLayerGrain(b *testing.B) { benchFig20Warm(b, false) }

// BenchmarkSimulateCold measures one uncached cycle simulation of ResNet-50
// on SuperNPU (the cache is cleared every iteration).
func BenchmarkSimulateCold(b *testing.B) {
	net := workload.ResNet50()
	cfg := arch.SuperNPU()
	for i := 0; i < b.N; i++ {
		simcache.ClearAll()
		if _, err := npusim.Simulate(context.Background(), cfg, net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulateCached measures the same simulation served from the memo
// cache — the repeated-reference pattern of the Figs. 20–22 sweeps.
func BenchmarkSimulateCached(b *testing.B) {
	net := workload.ResNet50()
	cfg := arch.SuperNPU()
	simcache.ClearAll()
	if _, err := npusim.Simulate(context.Background(), cfg, net, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := npusim.Simulate(context.Background(), cfg, net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- component micro-benchmarks ---

// BenchmarkNPUSimResNet50 measures one full cycle-based simulation of
// ResNet-50 on SuperNPU at its maximum batch.
func BenchmarkNPUSimResNet50(b *testing.B) {
	net := workload.ResNet50()
	cfg := arch.SuperNPU()
	for i := 0; i < b.N; i++ {
		if _, err := npusim.Simulate(context.Background(), cfg, net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScaleSimResNet50 measures the CMOS baseline simulator on the
// same workload.
func BenchmarkScaleSimResNet50(b *testing.B) {
	net := workload.ResNet50()
	cfg := scalesim.TPU()
	for i := 0; i < b.N; i++ {
		if _, err := scalesim.Simulate(context.Background(), cfg, net, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSystolicFunctional measures the cycle-stepped functional array
// computing a real convolution layer.
func BenchmarkSystolicFunctional(b *testing.B) {
	l := workload.Layer{Name: "bench", Kind: workload.Conv,
		H: 14, W: 14, C: 8, R: 3, S: 3, M: 32, Stride: 1, Pad: 1}
	arr, err := systolic.NewArray(32, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	in := dau.NewIfmap(l.C, l.H, l.W)
	w := systolic.NewWeights(l.M, l.C, l.R, l.S)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := arr.Run(l, w, in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSIMTransient measures the RCSJ transient simulation of a
// 12-stage JTL (the gate-parameter extraction path).
func BenchmarkJSIMTransient(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := jsim.ExtractJTLParams(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEstimateSuperNPU measures the three-layer estimator on the full
// SuperNPU configuration.
func BenchmarkEstimateSuperNPU(b *testing.B) {
	d := SuperNPU()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateDesign(context.Background(), d); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaxBatchSolver measures the Table II batch solver across all
// workloads and designs.
func BenchmarkMaxBatchSolver(b *testing.B) {
	nets := workload.All()
	for i := 0; i < b.N; i++ {
		for _, cfg := range arch.Designs() {
			for _, net := range nets {
				npusim.MaxBatch(cfg, net)
			}
		}
	}
}

// --- ablation benchmarks (design-choice studies beyond the paper's own
// exhibits; see DESIGN.md) ---

// BenchmarkAblationDataflow quantifies the weight-stationary PE choice.
func BenchmarkAblationDataflow(b *testing.B) { benchExperiment(b, "ablation-dataflow") }

// BenchmarkAblationClockSkewing quantifies the skew-tuning frequency gain.
func BenchmarkAblationClockSkewing(b *testing.B) { benchExperiment(b, "ablation-skew") }

// BenchmarkAblationNoDAU quantifies the data alignment unit's value.
func BenchmarkAblationNoDAU(b *testing.B) { benchExperiment(b, "ablation-dau") }

// BenchmarkAblationBandwidth sweeps the off-chip bandwidth assumption.
func BenchmarkAblationBandwidth(b *testing.B) { benchExperiment(b, "ablation-bandwidth") }

// BenchmarkAblationScaling projects clocks under JJ feature-size scaling.
func BenchmarkAblationScaling(b *testing.B) { benchExperiment(b, "ablation-scaling") }

// BenchmarkAblationBatch sweeps the batch-size intensity lever.
func BenchmarkAblationBatch(b *testing.B) { benchExperiment(b, "ablation-batch") }

// BenchmarkAblationMemsys validates the flat-bandwidth DRAM abstraction.
func BenchmarkAblationMemsys(b *testing.B) { benchExperiment(b, "ablation-memsys") }

// BenchmarkMarginSweepCold measures the full bias-margin robustness exhibit
// from a cold cache: six fault variants, each a batched margin evaluation
// through per-worker reused solvers.
func BenchmarkMarginSweepCold(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		simcache.ClearAll()
		if _, err := experiments.MarginSweep(context.Background(), experiments.MarginSweepOptions{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}
