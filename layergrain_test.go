package supernpu

// Differential layer-grain test: the tentpole contract of the layer-grain
// memoization (PR 10) is that shape-keyed reuse NEVER changes a modeled
// number — it only skips recomputation. This test enforces it end-to-end
// by regenerating the full exhibit report with layer-grain caching on,
// off, and on again at one worker, demanding byte-identical output each
// time (and identical to the committed golden snapshot). The static side
// of the key contract is the supernpu-lint cachekey rule; the dynamic
// dedup accounting for Figs. 20–22 lives in TestLayerGrainSweepReduction.

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"supernpu/internal/obs"
	"supernpu/internal/simcache"
)

func TestLayerGrainByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full report three times")
	}
	t.Cleanup(func() {
		simcache.SetLayerGrain(true)
		simcache.ClearAll()
		SetParallelism(0)
	})

	run := func() string {
		t.Helper()
		simcache.ClearAll()
		out, err := RunAllExperiments(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	simcache.SetLayerGrain(true)
	on := run()

	simcache.SetLayerGrain(false)
	off := run()
	if on != off {
		t.Fatalf("report differs with layer-grain caching on vs off (%d vs %d bytes): reuse leaked into modeled numbers", len(on), len(off))
	}

	simcache.SetLayerGrain(true)
	SetParallelism(1)
	serial := run()
	SetParallelism(0)
	if serial != on {
		t.Fatal("report differs across worker counts with layer-grain caching on")
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden", "full_report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if on != string(want) {
		t.Error("report with layer-grain caching drifted from testdata/golden/full_report.golden")
	}
}

// layerSitesValue reads the write-only counter npusim publishes: the
// number of compute-layer sites its nominal simulations accumulated.
// Reading instruments is reserved for root-package tests (the obsflow
// rule keeps modeling packages write-only).
func layerSitesValue() int64 {
	return obs.Default.Counter("supernpu_npusim_layer_sites_total",
		"compute-layer sites accumulated by nominal npusim simulations").Value()
}

// TestLayerGrainSweepReduction pins the acceptance criterion of the
// layer-grain cache: across the Fig. 20–22 sweeps, the per-layer
// simulations actually executed (npusim.layer misses) must be at most half
// the compute-layer sites accumulated — a ≥2× reduction from shape dedup
// and cross-point projection sharing. The measured factor is logged for
// EXPERIMENTS.md.
func TestLayerGrainSweepReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates three sweeps cold")
	}
	t.Cleanup(func() {
		simcache.SetLayerGrain(true)
		simcache.ClearAll()
	})

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	sites0 := layerSitesValue()
	for _, id := range []string{"fig20", "fig21", "fig22"} {
		if _, err := RunExperiment(context.Background(), id); err != nil {
			t.Fatal(err)
		}
	}
	sites := layerSitesValue() - sites0

	var executed, hits int64
	for _, s := range CacheStatistics() {
		if s.Name == "npusim.layer" {
			executed, hits = s.Misses, s.Hits
		}
	}
	if sites == 0 || executed == 0 {
		t.Fatalf("no layer accounting recorded (sites %d, executed %d)", sites, executed)
	}
	factor := float64(sites) / float64(executed)
	t.Logf("Figs. 20-22: %d layer sites, %d unique layer simulations executed (%d hits) — %.2fx reduction",
		sites, executed, hits, factor)
	if factor < 2 {
		t.Errorf("layer-grain dedup factor %.2fx < 2x over the Fig. 20-22 sweeps (%d sites, %d executed)",
			factor, sites, executed)
	}
}
