// Designspace: rerun the three architecture explorations that led from the
// naive SFQ baseline to SuperNPU — buffer division (Fig. 20), resource
// balancing (Fig. 21) and registers per PE (Fig. 22) — and print how each
// design decision falls out of the numbers.
package main

import (
	"fmt"
	"log"

	"supernpu"
)

func main() {
	fmt.Println("Step 1 - integrate the psum/ofmap buffers and divide them into chunks")
	fmt.Println("(speedup is the geometric mean over the six CNNs, vs the Baseline)")
	division, err := supernpu.ExploreDivision([]int{4, 16, 64, 256, 1024, 4096})
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range division {
		fmt.Printf("  %-16s single-batch %6.2fx  max-batch %6.2fx  area %5.3fx\n",
			p.Label, p.SingleBatch, p.MaxBatch, p.AreaRel)
	}
	fmt.Println("  -> performance saturates at division 64 while the MUX/DEMUX area")
	fmt.Println("     explodes beyond it: the paper picks 64.")
	fmt.Println()

	fmt.Println("Step 2 - trade PE columns for buffer capacity")
	width, err := supernpu.ExploreWidth()
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range width {
		fmt.Printf("  %-28s max-batch %6.2fx\n", p.Label, p.MaxBatch)
	}
	fmt.Println("  -> widths 128 and 64 are the sweet spots; 64 has more compute")
	fmt.Println("     intensity headroom for step 3.")
	fmt.Println()

	fmt.Println("Step 3 - registers per PE (multi-kernel execution)")
	for _, w := range []int{64, 128} {
		points, err := supernpu.ExploreRegisters(w, []int{1, 2, 4, 8, 16})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  width %d:", w)
		for _, p := range points {
			fmt.Printf("  %6.2fx", p.MaxBatch)
		}
		fmt.Println()
	}
	fmt.Println("  -> width 128 is memory-bound and flat; width 64 keeps scaling")
	fmt.Println("     until 8 registers. SuperNPU = width 64, 8 registers per PE.")
}
