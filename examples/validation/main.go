// Validation: walk the repository's trust chain bottom-up — circuit-level
// RCSJ extraction, Fig. 13 model validation, datapath functional checks —
// the evidence that the performance numbers stand on verified models.
package main

import (
	"context"
	"fmt"
	"log"

	"supernpu"
	"supernpu/internal/estimator"
	"supernpu/internal/jsim"
	"supernpu/internal/sfq"
)

func main() {
	ctx := context.Background()
	// 1. Device level: transient RCSJ simulation of a Josephson
	// transmission line extracts the gate-level anchors.
	params, err := jsim.ExtractJTLParams(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RCSJ extraction: JTL stage delay %.2f ps, switching energy %.3f aJ/JJ\n",
		params.StageDelay/sfq.Picosecond, params.SwitchEnergyPerJJ/sfq.Attojoule)

	if err := jsim.DFFDemo(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("storage-loop DFF principle: fluxon held until clocked, then released")

	margins, err := jsim.BiasMargins(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("JTL bias margins: %.2f..%.2f x Ic around the 0.70 nominal\n\n",
		margins.Low, margins.High)

	// 2. Architecture model level: the Fig. 13 validation against the
	// die-level and post-layout references.
	rep := supernpu.ValidateModels()
	fmt.Println("estimator validation (Fig. 13):")
	fmt.Printf("  microarch mean error: freq %.1f%%, power %.1f%%, area %.1f%%\n",
		rep.MeanError(estimator.Microarch, estimator.Frequency)*100,
		rep.MeanError(estimator.Microarch, estimator.StaticPower)*100,
		rep.MeanError(estimator.Microarch, estimator.Area)*100)
	fmt.Printf("  architecture mean error: freq %.1f%%, power %.1f%%, area %.1f%%\n\n",
		rep.MeanError(estimator.Arch, estimator.Frequency)*100,
		rep.MeanError(estimator.Arch, estimator.StaticPower)*100,
		rep.MeanError(estimator.Arch, estimator.Area)*100)

	// 3. Datapath level: the cycle-stepped systolic array computes real
	// convolutions through the DAU, bit-exactly.
	checks := []struct {
		name  string
		layer supernpu.Layer
	}{
		{"3x3 conv", supernpu.NewConvLayer("c", 12, 12, 4, 3, 3, 20, 1, 1)},
		{"strided 5x5", supernpu.NewConvLayer("s", 11, 11, 2, 5, 5, 6, 2, 2)},
		{"depthwise", supernpu.NewDepthwiseLayer("d", 10, 10, 8, 3, 3, 1, 1)},
		{"fully connected", supernpu.NewFCLayer("f", 60, 15)},
	}
	for _, c := range checks {
		stats, err := supernpu.FunctionalCheck(c.layer, 40, 8, 2, 11)
		if err != nil {
			log.Fatalf("%s: %v", c.name, err)
		}
		fmt.Printf("functional %-16s OK (%2d mappings, %6d cycles, %8d MACs)\n",
			c.name, stats.Mappings, stats.Cycles, stats.MACs)
	}
}
