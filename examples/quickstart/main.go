// Quickstart: evaluate ResNet-50 on SuperNPU and on the conventional TPU
// core, print the headline comparison, and check the SFQ datapath actually
// computes a convolution correctly.
package main

import (
	"context"
	"fmt"
	"log"

	"supernpu"
)

func main() {
	ctx := context.Background()
	net, err := supernpu.WorkloadByName("ResNet50")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Simulate on both machines at their maximum on-chip batch.
	tpu, err := supernpu.Evaluate(ctx, supernpu.TPU(), net, 0)
	if err != nil {
		log.Fatal(err)
	}
	snpu, err := supernpu.Evaluate(ctx, supernpu.SuperNPU(), net, 0)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s inference\n", net.Name)
	fmt.Printf("  TPU core : batch %2d, %6.2f TMAC/s (%.1f%% of %4.1f TMAC/s peak)\n",
		tpu.Batch, tpu.Throughput/1e12, tpu.PEUtilization*100, tpu.PeakMACs/1e12)
	fmt.Printf("  SuperNPU : batch %2d, %6.2f TMAC/s (%.1f%% of %4.0f TMAC/s peak) at %.1f GHz\n",
		snpu.Batch, snpu.Throughput/1e12, snpu.PEUtilization*100, snpu.PeakMACs/1e12,
		snpu.Frequency/1e9)
	fmt.Printf("  speedup  : %.1fx\n\n", snpu.Throughput/tpu.Throughput)

	// 2. Power: the RSFQ design burns static bias power; ERSFQ removes it.
	ersfq, err := supernpu.Evaluate(ctx, supernpu.ERSFQ(supernpu.SuperNPU()), net, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip power: RSFQ %.0f W, ERSFQ %.2f W (TPU: %.0f W)\n\n",
		snpu.ChipPower, ersfq.ChipPower, tpu.ChipPower)

	// 3. Functional check: the weight-stationary systolic array + data
	// alignment unit compute a real ResNet-style 3x3 convolution exactly.
	layer := supernpu.NewConvLayer("conv2_1_b", 56, 56, 8, 3, 3, 16, 1, 1)
	stats, err := supernpu.FunctionalCheck(layer, 72, 16, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check: %s matched the golden convolution (%d MACs over %d cycles, %d mappings)\n",
		layer.Name, stats.MACs, stats.Cycles, stats.Mappings)
}
