// Workloads: run the paper's full evaluation — all six CNN workloads on all
// five design points (Fig. 23) plus the Table III power-efficiency rows.
package main

import (
	"context"
	"fmt"
	"log"

	"supernpu"
)

func main() {
	ctx := context.Background()
	designs := supernpu.Designs()

	fmt.Printf("%-12s", "workload")
	for _, d := range designs {
		fmt.Printf("  %13s", d.Name())
	}
	fmt.Println("   (speedup vs TPU)")

	for _, net := range supernpu.Workloads() {
		ref, err := supernpu.Evaluate(ctx, designs[0], net, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s", net.Name)
		for _, d := range designs {
			ev, err := supernpu.Evaluate(ctx, d, net, 0)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %12.2fx", ev.Throughput/ref.Throughput)
		}
		fmt.Println()
	}
	fmt.Println()

	// Table III: power efficiency of SuperNPU under both SFQ technologies.
	net, _ := supernpu.WorkloadByName("ResNet50")
	tpu, _ := supernpu.Evaluate(ctx, supernpu.TPU(), net, 0)
	rsfq, err := supernpu.Evaluate(ctx, supernpu.SuperNPU(), net, 0)
	if err != nil {
		log.Fatal(err)
	}
	ersfq, err := supernpu.Evaluate(ctx, supernpu.ERSFQ(supernpu.SuperNPU()), net, 0)
	if err != nil {
		log.Fatal(err)
	}

	tpuEff := tpu.Throughput / tpu.ChipPower
	const cooling = 400.0
	fmt.Println("power efficiency on ResNet50 (normalised to the TPU core):")
	fmt.Printf("  RSFQ-SuperNPU  %7.0f W  perf/W %6.3fx (w/ cooling %7.4fx)\n",
		rsfq.ChipPower, rsfq.Throughput/rsfq.ChipPower/tpuEff,
		rsfq.Throughput/(rsfq.ChipPower*cooling)/tpuEff)
	fmt.Printf("  ERSFQ-SuperNPU %7.2f W  perf/W %6.0fx (w/ cooling %7.2fx)\n",
		ersfq.ChipPower, ersfq.Throughput/ersfq.ChipPower/tpuEff,
		ersfq.Throughput/(ersfq.ChipPower*cooling)/tpuEff)
}
