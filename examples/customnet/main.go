// Customnet: define a user CNN with the public layer constructors, size its
// batch on every design, simulate it end to end, and verify the datapath on
// one of its layers — the workflow a downstream user follows to evaluate
// their own model on an SFQ NPU.
package main

import (
	"context"
	"fmt"
	"log"

	"supernpu"
)

func main() {
	ctx := context.Background()
	// A compact CIFAR-style CNN.
	net := supernpu.NewNetwork("TinyCIFAR",
		supernpu.NewConvLayer("conv1", 32, 32, 3, 3, 3, 32, 1, 1),
		supernpu.NewConvLayer("conv2", 32, 32, 32, 3, 3, 32, 1, 1),
		supernpu.NewPoolLayer("pool1", 32, 32, 32, 2, 2, 0),
		supernpu.NewConvLayer("conv3", 16, 16, 32, 3, 3, 64, 1, 1),
		supernpu.NewDepthwiseLayer("dw4", 16, 16, 64, 3, 3, 1, 1),
		supernpu.NewConvLayer("pw4", 16, 16, 64, 1, 1, 128, 1, 0),
		supernpu.NewPoolLayer("pool2", 16, 16, 128, 2, 2, 0),
		supernpu.NewFCLayer("fc", 8*8*128, 10),
	)
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: %d layers, %.1f MMACs/inference, %.1f KB of weights\n\n",
		net.Name, len(net.Layers), float64(net.TotalMACs())/1e6,
		float64(net.TotalWeightBytes())/1024)

	// How large a batch does each design hold on-chip?
	fmt.Println("max on-chip batch per design:")
	for _, d := range supernpu.Designs() {
		fmt.Printf("  %-14s %d\n", d.Name(), d.MaxBatch(net))
	}
	fmt.Println()

	// End-to-end evaluation.
	for _, d := range []supernpu.Design{supernpu.TPU(), supernpu.SuperNPU()} {
		ev, err := supernpu.Evaluate(ctx, d, net, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-14s batch %2d: %8.3f TMAC/s, latency %.3g ms\n",
			d.Name(), ev.Batch, ev.Throughput/1e12, ev.Time*1e3)
	}
	fmt.Println()

	// Verify the SFQ datapath computes conv3 exactly (PE array + DAU).
	stats, err := supernpu.FunctionalCheck(net.Layers[3], 64, 16, 4, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("functional check on conv3: OK (%d mappings, %d cycles)\n",
		stats.Mappings, stats.Cycles)
}
