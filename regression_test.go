package supernpu

import (
	"context"
	"math"
	"testing"
)

// TestReproductionRegression pins the headline numbers of EXPERIMENTS.md so
// that model changes cannot silently drift the reproduction. Tolerances are
// tight around the currently measured values (not the paper's): a failure
// here means the repository's own results moved.
func TestReproductionRegression(t *testing.T) {
	within := func(name string, got, want, relTol float64) {
		t.Helper()
		if math.Abs(got-want)/want > relTol {
			t.Errorf("%s = %.4g, pinned at %.4g (±%.0f%%) — EXPERIMENTS.md may need updating",
				name, got, want, relTol*100)
		}
	}

	// Per-workload SuperNPU speedups over the TPU (Fig. 23 column).
	pinned := map[string]float64{
		"AlexNet":    12.89,
		"FasterRCNN": 17.16,
		"GoogLeNet":  21.20,
		"MobileNet":  62.46,
		"ResNet50":   19.10,
		"VGG16":      17.00,
	}
	logSum := 0.0
	for name, want := range pinned {
		net, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Speedup(context.Background(), SuperNPU(), net)
		if err != nil {
			t.Fatal(err)
		}
		within("SuperNPU speedup on "+name, got, want, 0.03)
		logSum += math.Log(got)
	}
	within("SuperNPU geomean speedup", math.Exp(logSum/6), 21.37, 0.03)

	// Table I architecture figures.
	est, err := EstimateDesign(context.Background(), SuperNPU())
	if err != nil {
		t.Fatal(err)
	}
	within("SuperNPU clock (GHz)", est.Frequency/1e9, 52.63, 0.01)
	within("SuperNPU area @28nm (mm²)", est.Area28nm/1e-6, 302.6, 0.01)
	within("SuperNPU RSFQ static (W)", est.StaticPower, 990.5, 0.01)
	within("SuperNPU peak (TMAC/s)", est.PeakMACs/1e12, 862.3, 0.01)

	// Table III power of the ERSFQ design on ResNet-50.
	net, _ := WorkloadByName("ResNet50")
	ev, err := Evaluate(context.Background(), ERSFQ(SuperNPU()), net, 0)
	if err != nil {
		t.Fatal(err)
	}
	within("ERSFQ-SuperNPU chip power (W)", ev.ChipPower, 2.05, 0.05)
}
