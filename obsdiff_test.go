package supernpu

// Differential observability test: the tentpole contract of internal/obs is
// that instruments and spans NEVER feed back into modeled numbers. This test
// enforces it end-to-end by regenerating the full exhibit report three ways —
// observability disabled, enabled, and enabled with span tracing live — and
// demanding byte-identical output each time (and identical to the committed
// golden snapshot). The static side of the same contract is the supernpu-lint
// obsflow rule; this is the dynamic side.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"supernpu/internal/obs"
)

func TestFullReportByteIdenticalWithObservability(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates the full report three times")
	}
	t.Cleanup(func() {
		obs.SetEnabled(true)
		obs.SetTraceWriter(nil)
	})

	obs.SetEnabled(false)
	off, err := RunAllExperiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	obs.SetEnabled(true)
	on, err := RunAllExperiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if off != on {
		t.Fatalf("report differs with observability enabled (%d vs %d bytes): instruments leaked into modeled numbers", len(off), len(on))
	}

	var trace bytes.Buffer
	obs.SetTraceWriter(&trace)
	traced, err := RunAllExperiments(context.Background())
	obs.SetTraceWriter(nil)
	if err != nil {
		t.Fatal(err)
	}
	if traced != off {
		t.Fatal("report differs with span tracing live: tracing leaked into modeled numbers")
	}

	want, err := os.ReadFile(filepath.Join("testdata", "golden", "full_report.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if off != string(want) {
		t.Error("report with observability disabled drifted from testdata/golden/full_report.golden")
	}

	// The trace itself must be well-formed JSONL with the report span and
	// one exhibit span per experiment.
	lines := strings.Split(strings.TrimSuffix(trace.String(), "\n"), "\n")
	exhibits := 0
	sawReport := false
	for _, line := range lines {
		var rec struct {
			Span   string            `json:"span"`
			DurNs  int64             `json:"dur_ns"`
			Labels map[string]string `json:"labels"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace line is not JSON: %v\n%q", err, line)
		}
		switch rec.Span {
		case "exhibit":
			exhibits++
		case "report":
			sawReport = true
		}
		if rec.DurNs < 0 {
			t.Errorf("span %s has negative duration %d", rec.Span, rec.DurNs)
		}
	}
	if !sawReport {
		t.Error("trace has no report span")
	}
	if want := len(ExperimentIDs()); exhibits != want {
		t.Errorf("trace has %d exhibit spans, want %d (one per experiment)", exhibits, want)
	}
}
