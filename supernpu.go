// Package supernpu is a from-scratch reproduction of "SuperNPU: An
// Extremely Fast Neural Processing Unit Using Superconducting Logic
// Devices" (Ishida, Byun et al., MICRO 2020): a modelling and simulation
// framework for single-flux-quantum (SFQ) neural processing units.
//
// The package is the public face of the repository. It exposes:
//
//   - the paper's five evaluation design points — the CMOS TPU core and the
//     four SFQ designs (Baseline, Buffer opt., Resource opt., SuperNPU) —
//     and a unified Evaluate over both simulators;
//   - the SFQ-NPU estimator (frequency / power / area of any SFQ NPU
//     configuration, validated as in Fig. 13);
//   - the six CNN evaluation workloads and constructors for custom ones;
//   - the design-space explorations that produced SuperNPU (buffer
//     division, resource balancing, registers per PE); and
//   - the experiment harness that regenerates every table and figure of
//     the paper's evaluation.
//
// A minimal session:
//
//	net, _ := supernpu.WorkloadByName("ResNet50")
//	ev, _ := supernpu.Evaluate(context.Background(), supernpu.SuperNPU(), net, 0)
//	fmt.Printf("%.1f TMAC/s at %.1f GHz\n", ev.Throughput/1e12, ev.Frequency/1e9)
package supernpu

import (
	"context"
	"fmt"
	"math/rand"

	"supernpu/internal/arch"
	"supernpu/internal/checkpoint"
	"supernpu/internal/core"
	"supernpu/internal/dau"
	"supernpu/internal/estimator"
	"supernpu/internal/experiments"
	"supernpu/internal/faultinject"
	"supernpu/internal/parallel"
	"supernpu/internal/scalesim"
	"supernpu/internal/sfq"
	"supernpu/internal/simcache"
	"supernpu/internal/systolic"
	"supernpu/internal/workload"
)

// SetParallelism bounds the worker pool every evaluation fans out through
// (figure regeneration, design-space sweeps, per-layer simulation). n == 1
// forces serial execution; n <= 0 resets to runtime.NumCPU(). Output is
// byte-identical at any setting.
func SetParallelism(n int) { parallel.SetWorkers(n) }

// Parallelism returns the effective worker count.
func Parallelism() int { return parallel.Workers() }

// CacheStats is one simulation cache's hit/miss counter snapshot.
type CacheStats = simcache.Stats

// CacheStatistics returns the hit/miss counters of every simulation memo
// cache (npusim, scalesim, estimator, jsim), sorted by name.
func CacheStatistics() []CacheStats { return simcache.Snapshot() }

// ClearCaches drops every memoised simulation result, forcing the next
// evaluation to recompute from scratch (cold-start benchmarks).
func ClearCaches() { simcache.ClearAll() }

// SimulationsInFlight returns the number of distinct simulations and
// estimations running right now across every memo cache. Concurrent
// duplicate requests coalesce onto one computation, so this gauge counts
// work, not callers; the evaluation service exports it at /debug/stats.
func SimulationsInFlight() int64 { return simcache.TotalInFlight() }

// Design is one evaluated design point (an SFQ NPU configuration or the
// CMOS TPU core).
type Design = core.Design

// Evaluation is the unified result of one workload on one design.
type Evaluation = core.Evaluation

// Network is a DNN workload description.
type Network = workload.Network

// Layer is one network layer.
type Layer = workload.Layer

// Estimate is the SFQ estimator's architecture-level output.
type Estimate = estimator.Result

// SweepPoint is one design-space exploration result.
type SweepPoint = core.SweepPoint

// TPU returns the conventional CMOS accelerator reference (Table I).
func TPU() Design { return core.CMOSDesign(scalesim.TPU()) }

// Baseline returns the naive SFQ NPU design point.
func Baseline() Design { return core.SFQDesign(arch.Baseline()) }

// BufferOpt returns the buffer-optimised SFQ design point.
func BufferOpt() Design { return core.SFQDesign(arch.BufferOpt()) }

// ResourceOpt returns the resource-balanced SFQ design point.
func ResourceOpt() Design { return core.SFQDesign(arch.ResourceOpt()) }

// SuperNPU returns the paper's final design: 64×256 weight-stationary array,
// 48 MB of divided, integrated shift-register buffers, 8 registers per PE.
func SuperNPU() Design { return core.SFQDesign(arch.SuperNPU()) }

// ERSFQ returns a copy of an SFQ design switched to energy-efficient RSFQ
// biasing (zero static power, doubled switching energy). It panics on a
// CMOS design.
func ERSFQ(d Design) Design {
	if d.Platform != core.SFQ {
		panic("supernpu: ERSFQ applies only to SFQ designs")
	}
	cfg := d.SFQ
	cfg.Tech = sfq.ERSFQ
	cfg.Name = "ERSFQ-" + cfg.Name
	return core.SFQDesign(cfg)
}

// Designs returns the five evaluation design points in Fig. 23 order.
func Designs() []Design { return core.DesignPoints() }

// DesignByName resolves an evaluation design point by display name,
// case-insensitively; an "ERSFQ-" prefix on an SFQ design selects its
// energy-efficient biasing variant (the Table III rows).
func DesignByName(name string) (Design, error) { return core.DesignByName(name) }

// Workloads returns the six evaluation CNNs in Fig. 23 order.
func Workloads() []Network { return workload.All() }

// WorkloadByName returns a named evaluation CNN.
func WorkloadByName(name string) (Network, error) { return workload.ByName(name) }

// Evaluate simulates the workload on the design at the given batch size
// (batch 0 selects the design's maximum on-chip batch, Table II).
// Cancellation of ctx aborts the simulation with an error matching
// guard.ErrCanceled (guard.ErrDeadlineExceeded for an expired deadline).
func Evaluate(ctx context.Context, d Design, net Network, batch int) (*Evaluation, error) {
	return core.Evaluate(ctx, d, net, batch)
}

// Speedup returns a design's effective-throughput ratio over the TPU core
// on one workload (the Fig. 23 metric).
func Speedup(ctx context.Context, d Design, net Network) (float64, error) {
	return core.Speedup(ctx, d, net)
}

// EstimateDesign runs the three-layer SFQ estimator on an SFQ design,
// reporting clock frequency, static power, junction count and die area.
func EstimateDesign(ctx context.Context, d Design) (*Estimate, error) {
	return estimator.Estimate(ctx, d.SFQ)
}

// ValidateModels reruns the Fig. 13 validation of the estimator against the
// die-level and post-layout references.
func ValidateModels() estimator.Report { return estimator.Validate() }

// ExploreDivision sweeps the buffer division degree (Fig. 20).
func ExploreDivision(degrees []int) ([]SweepPoint, error) { return core.ExploreDivision(degrees) }

// ExploreWidth sweeps PE-array width with rebalanced buffers (Fig. 21).
func ExploreWidth() ([]SweepPoint, error) { return core.ExploreWidth(core.Fig21Points()) }

// ExploreRegisters sweeps registers per PE at a given array width (Fig. 22).
func ExploreRegisters(width int, regs []int) ([]SweepPoint, error) {
	return core.ExploreRegisters(width, regs)
}

// FaultModel is the deterministic, seed-keyed SFQ fault model: critical-
// current spread, thermal pulse drops, datapath bit flips, timing-margin
// erosion and whole-simulation aborts, every draw a pure function of
// (seed, site). A nil or zero-rate model is exactly the nominal path.
type FaultModel = faultinject.Model

// SweepOptions carries the resilience knobs of the exploration sweeps:
// a fault model and a checkpoint store for kill/resume.
type SweepOptions = core.SweepOptions

// Checkpoint is a crash-tolerant snapshot store for long sweeps: completed
// points append to a JSONL file and a resumed run skips them entirely.
type Checkpoint = checkpoint.Store

// OpenCheckpoint opens (creating if absent) a checkpoint file.
func OpenCheckpoint(path string) (*Checkpoint, error) { return checkpoint.Open(path) }

// EvaluateWithFaults is Evaluate under a fault model: junction spread
// perturbs the operating point, pulse drops charge recirculation cycles,
// bit flips degrade the accuracy proxy. CMOS designs always run nominally.
func EvaluateWithFaults(ctx context.Context, d Design, net Network, batch int, fm *FaultModel) (*Evaluation, error) {
	return core.EvaluateFaulted(ctx, d, net, batch, fm)
}

// EvaluateAnalytical is the graceful-degradation roofline estimate of an SFQ
// design — no cycle simulation; the evaluation service falls back to it when
// a fault-injected simulation aborts.
func EvaluateAnalytical(ctx context.Context, d Design, net Network, batch int) (*Evaluation, error) {
	return core.EvaluateAnalytical(ctx, d, net, batch)
}

// ExploreDivisionOpts is ExploreDivision with cancellation, fault injection
// and checkpoint/resume.
func ExploreDivisionOpts(ctx context.Context, degrees []int, o SweepOptions) ([]SweepPoint, error) {
	return core.ExploreDivisionOpts(ctx, degrees, o)
}

// ExploreWidthOpts is ExploreWidth with cancellation, fault injection and
// checkpoint/resume.
func ExploreWidthOpts(ctx context.Context, o SweepOptions) ([]SweepPoint, error) {
	return core.ExploreWidthOpts(ctx, core.Fig21Points(), o)
}

// ExploreRegistersOpts is ExploreRegisters with cancellation, fault
// injection and checkpoint/resume.
func ExploreRegistersOpts(ctx context.Context, width int, regs []int, o SweepOptions) ([]SweepPoint, error) {
	return core.ExploreRegistersOpts(ctx, width, regs, o)
}

// MarginSweepOptions configures the bias-margin robustness exhibit.
type MarginSweepOptions = experiments.MarginSweepOptions

// MarginSweep regenerates the bias-margin-vs-throughput/accuracy exhibit:
// SuperNPU on ResNet-50 swept over junction critical-current spread under
// the seeded fault model. Byte-identical across runs and worker counts for
// a fixed seed; checkpointed rows are never re-simulated.
func MarginSweep(ctx context.Context, o MarginSweepOptions) (string, error) {
	return experiments.MarginSweep(ctx, o)
}

// ExperimentIDs lists the reproducible paper exhibits (fig5 … table3).
func ExperimentIDs() []string { return experiments.IDs() }

// RunExperiment regenerates one paper exhibit as rendered text.
// Cancellation of ctx aborts the underlying simulations.
func RunExperiment(ctx context.Context, id string) (string, error) {
	return experiments.Run(ctx, id)
}

// RunAllExperiments regenerates every paper exhibit. Cancellation of ctx
// stops the fan-out and aborts the exhibits already in flight.
func RunAllExperiments(ctx context.Context) (string, error) { return experiments.RunAll(ctx) }

// NewConvLayer builds a convolution layer for custom networks.
func NewConvLayer(name string, h, w, c, r, s, m, stride, pad int) Layer {
	return Layer{Name: name, Kind: workload.Conv, H: h, W: w, C: c, R: r, S: s, M: m, Stride: stride, Pad: pad}
}

// NewDepthwiseLayer builds a depthwise convolution layer.
func NewDepthwiseLayer(name string, h, w, c, r, s, stride, pad int) Layer {
	return Layer{Name: name, Kind: workload.DepthwiseConv, H: h, W: w, C: c, R: r, S: s, M: c, Stride: stride, Pad: pad}
}

// NewFCLayer builds a fully connected layer.
func NewFCLayer(name string, in, out int) Layer {
	return Layer{Name: name, Kind: workload.FullyConnected, H: 1, W: 1, C: in, R: 1, S: 1, M: out, Stride: 1}
}

// NewPoolLayer builds a pooling layer (no MACs; reshapes activations).
func NewPoolLayer(name string, h, w, c, r, stride, pad int) Layer {
	return Layer{Name: name, Kind: workload.Pool, H: h, W: w, C: c, R: r, S: r, M: c, Stride: stride, Pad: pad}
}

// NewNetwork builds a custom workload from layers; Validate is the caller's
// contract before simulation.
func NewNetwork(name string, layers ...Layer) Network {
	return Network{Name: name, Layers: layers}
}

// FunctionalCheck runs one layer through the cycle-stepped functional
// systolic array (PEs, DAU selection, timing skew, multi-register
// interleaving) on pseudorandom int8 data and verifies the result against a
// direct golden convolution. It returns the array statistics; a mismatch is
// reported as an error. This is the datapath-correctness path of the
// repository — the performance simulator charges cycles for exactly these
// mechanics.
func FunctionalCheck(l Layer, rows, cols, regs int, seed int64) (systolic.Stats, error) {
	arr, err := systolic.NewArray(rows, cols, regs)
	if err != nil {
		return systolic.Stats{}, err
	}
	rng := rand.New(rand.NewSource(seed))
	in := dau.NewIfmap(l.C, l.H, l.W)
	for c := 0; c < l.C; c++ {
		for y := 0; y < l.H; y++ {
			for x := 0; x < l.W; x++ {
				in[c][y][x] = int8(rng.Intn(256) - 128)
			}
		}
	}
	wc := l.C
	if l.Kind == workload.DepthwiseConv {
		wc = 1
	}
	w := systolic.NewWeights(l.M, wc, l.R, l.S)
	for m := range w {
		for c := range w[m] {
			for r := range w[m][c] {
				for s := range w[m][c][r] {
					w[m][c][r][s] = int8(rng.Intn(256) - 128)
				}
			}
		}
	}
	got, stats, err := arr.Run(l, w, in)
	if err != nil {
		return stats, err
	}
	want := systolic.Reference(l, w, in)
	for m := range want {
		for e := range want[m] {
			for f := range want[m][e] {
				if got[m][e][f] != want[m][e][f] {
					return stats, fmt.Errorf("supernpu: functional mismatch at [%d][%d][%d]: %d != %d",
						m, e, f, got[m][e][f], want[m][e][f])
				}
			}
		}
	}
	return stats, nil
}

// AblationIDs lists the repository's design-choice ablation studies
// (dataflow, clock skewing, DAU, bandwidth, process scaling, batch).
func AblationIDs() []string { return experiments.AblationIDs() }
