package supernpu

// Golden-file regression tests: every table and figure of the reproduced
// evaluation (plus the ablation studies) is snapshotted byte-for-byte under
// testdata/golden/. Any future change to a model, a cache key or the
// parallel sweep engine that shifts an exhibit — even in the last printed
// digit — fails here and must either be fixed or consciously re-snapshotted:
//
//	go test . -run TestGolden -update
//
// The snapshots are only meaningful because the whole pipeline is
// deterministic: float reductions accumulate in fixed order (see
// sfq.Inventory.sortedKinds) and parallel sweeps join results by index.

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden/")

// checkGolden compares rendered text against testdata/golden/<id>.golden.
func checkGolden(t *testing.T, id, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", id+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file for %s (run `go test . -run TestGolden -update`): %v", id, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden snapshot.\n--- got ---\n%s\n--- want ---\n%s\n"+
			"If the change is intentional, regenerate with `go test . -run TestGolden -update`.",
			id, got, want)
	}
}

// TestGoldenExhibits locks every paper exhibit (Figs. 5–23, Tables I–III).
func TestGoldenExhibits(t *testing.T) {
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := RunExperiment(context.Background(), id)
			if err != nil {
				t.Fatalf("RunExperiment(context.Background(), %s): %v", id, err)
			}
			checkGolden(t, id, out)
		})
	}
}

// TestGoldenAblations locks the repository's design-choice ablations.
func TestGoldenAblations(t *testing.T) {
	for _, id := range AblationIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			out, err := RunExperiment(context.Background(), id)
			if err != nil {
				t.Fatalf("RunExperiment(context.Background(), %s): %v", id, err)
			}
			checkGolden(t, id, out)
		})
	}
}

// TestGoldenFullReport locks the concatenated supernpu-repro report: the
// exhibits must also join in paper order with the exact separator bytes.
func TestGoldenFullReport(t *testing.T) {
	out, err := RunAllExperiments(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "full_report", out)
}
