// Package lint is the repository's machine-checked rulebook: a static
// analyzer, built only on the standard library's go/parser, go/ast, and
// go/types (no golang.org/x/tools), that loads every package in the module
// and enforces the determinism, concurrency, and error-handling contracts
// the evaluation pipeline depends on but no compiler checks.
//
// The exhibits must be byte-identical across runs and worker counts, fault
// outcomes must be pure functions of (seed, site), and cache keys must be
// injective over simulation inputs. Each of those contracts has already
// been violated once by accident (a 1-ULP chip-power wobble from float
// accumulation over unordered map iteration), so instead of relying on
// golden-test luck the rules here reject the bug classes at the source
// level:
//
//	maporder        float accumulation, unsorted appends, or output writes
//	                under range-over-map iteration
//	nondeterminism  time.Now, math/rand, and map-argument fmt printing in
//	                the modeling packages
//	nakedgo         raw go statements outside the panic-recovering pool
//	                and the server
//	panicboundary   panics in internal packages outside documented
//	                invariant helpers
//	floateq         == / != between computed floating-point operands
//	cachekey        simcache key builders that skip exported fields of the
//	                structs they fingerprint
//	obsflow         reads of obs instrument or gate state inside the
//	                modeling packages (observability is write-only there)
//	ctxflow         context.Background/TODO calls in the modeling packages,
//	                and exported looping entry points that fail to accept
//	                the caller's context.Context
//
// False positives are silenced in place with a
//
//	//lint:allow(rule) reason...
//
// comment on the offending line or the line directly above it; the reason
// is mandatory by convention and reviewed like any other code.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"io"
	"regexp"
	"sort"
	"strings"
)

// Severity ranks a diagnostic. Both severities fail a lint run; the split
// exists so output consumers can distinguish contract violations (error)
// from strong-suspicion heuristics (warning).
type Severity int

const (
	// Warning marks heuristic findings: almost always a bug, but with
	// known legitimate shapes that a reviewed //lint:allow can bless.
	Warning Severity = iota
	// Error marks contract violations with no legitimate in-tree shape.
	Error
)

// String returns the lowercase name used in text and JSON output.
func (s Severity) String() string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// MarshalJSON encodes the severity as its string name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// Diagnostic is one finding at one source position.
type Diagnostic struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Message  string   `json:"message"`
	// Symbol names the enclosing top-level declaration ("Cold",
	// "(*Solver).RunChain"); it is the position-independent half of the
	// baseline identity, so line drift never churns the baseline.
	Symbol string `json:"symbol,omitempty"`
	// Chain is the interprocedural derivation for transitive findings,
	// from the reported function down to the sink
	// (["estimator.Cold", "report.stamp", "time.Now"]); empty for
	// intraprocedural findings.
	Chain []string `json:"chain,omitempty"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s (%s)", d.File, d.Line, d.Col, d.Severity, d.Message, d.Rule)
}

// Rule is one named check over a type-checked package.
type Rule interface {
	// Name is the identifier used in output and //lint:allow comments.
	Name() string
	// Doc is a one-line statement of the contract the rule protects.
	Doc() string
	// Severity classifies every diagnostic the rule emits.
	Severity() Severity
	// Check inspects one package and reports findings through the pass.
	Check(p *Pass)
}

// Pass hands one package to one rule and collects its findings.
type Pass struct {
	Pkg *Package
	// Facts carries the module-wide call graph and transitive facts;
	// rules consult it for interprocedural findings.
	Facts  *Facts
	rule   Rule
	report func(Diagnostic)
}

// Reportf records a finding at node's position.
func (p *Pass) Reportf(node ast.Node, format string, args ...any) {
	p.ReportChainf(node, nil, format, args...)
}

// ReportChainf records a transitive finding at node's position, attaching
// the interprocedural derivation chain.
func (p *Pass) ReportChainf(node ast.Node, chain []string, format string, args ...any) {
	pos := p.Pkg.Fset.Position(node.Pos())
	p.report(Diagnostic{
		Rule:     p.rule.Name(),
		Severity: p.rule.Severity(),
		File:     pos.Filename,
		Line:     pos.Line,
		Col:      pos.Column,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// Rules returns the full registry in its canonical order. The slice is
// freshly allocated; callers may filter it.
func Rules() []Rule {
	return []Rule{
		&mapOrderRule{},
		&nondeterminismRule{},
		&nakedGoRule{},
		&panicBoundaryRule{},
		&floatEqRule{},
		&cacheKeyRule{},
		&obsFlowRule{},
		&ctxFlowRule{},
		&sharedMutRule{},
	}
}

// RuleByName returns the registered rule with the given name, or nil.
func RuleByName(name string) Rule {
	for _, r := range Rules() {
		if r.Name() == name {
			return r
		}
	}
	return nil
}

// Result is the outcome of running a rule set over a package set.
type Result struct {
	// Diags holds every unsuppressed finding, sorted by file, line,
	// column, then rule.
	Diags []Diagnostic
	// Suppressed counts findings silenced by //lint:allow comments.
	Suppressed int
}

// Errors reports how many diagnostics carry Error severity.
func (r Result) Errors() int {
	n := 0
	for _, d := range r.Diags {
		if d.Severity == Error {
			n++
		}
	}
	return n
}

// allowRe matches one //lint:allow(rule1,rule2) comment; everything after
// the closing parenthesis is the human-facing justification.
var allowRe = regexp.MustCompile(`^//\s*lint:allow\(([^)]*)\)`)

// suppressions maps file -> line -> rule names allowed on that line. An
// allow comment covers its own line and the line directly below it, so it
// works both inline and as a standalone comment above the finding.
type suppressions map[string]map[int][]string

func collectSuppressions(pkg *Package) suppressions {
	sup := suppressions{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := sup[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					sup[pos.Filename] = byLine
				}
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					byLine[pos.Line] = append(byLine[pos.Line], name)
					byLine[pos.Line+1] = append(byLine[pos.Line+1], name)
				}
			}
		}
	}
	return sup
}

func (s suppressions) allows(d Diagnostic) bool {
	for _, name := range s[d.File][d.Line] {
		if name == d.Rule {
			return true
		}
	}
	return false
}

// Run applies every rule to every package and returns the merged, sorted,
// suppression-filtered result. Before the rules fire, the module-wide call
// graph and its transitive facts are computed over the whole package set,
// so interprocedural findings see edges that cross package boundaries.
// Afterwards the diagnostics are sorted into the canonical emission order,
// de-duplicated, and attributed to their enclosing top-level symbol.
func Run(pkgs []*Package, rules []Rule) Result {
	facts := computeFacts(pkgs)
	var res Result
	for _, pkg := range pkgs {
		sup := collectSuppressions(pkg)
		for _, rule := range rules {
			pass := &Pass{Pkg: pkg, Facts: facts, rule: rule}
			pass.report = func(d Diagnostic) {
				if sup.allows(d) {
					res.Suppressed++
					return
				}
				res.Diags = append(res.Diags, d)
			}
			rule.Check(pass)
		}
	}
	attachSymbols(pkgs, res.Diags)
	sortDiagnostics(res.Diags)
	res.Diags = dedupe(res.Diags)
	return res
}

// sortDiagnostics orders findings by (file, line, col, rule, message):
// the canonical emission order every writer (text, JSON, SARIF) inherits,
// so analyzer output is itself a pure function of the source tree. The
// message tie-break makes the order total even when one rule reports
// twice at one position.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// dedupe collapses findings that share (file, line, col, rule): when an
// interprocedural rule and its intraprocedural ancestor both fire at one
// position, the chain-carrying diagnostic wins, so the reader gets the
// full derivation exactly once. The input must already be sorted.
func dedupe(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if len(out) > 0 {
			last := &out[len(out)-1]
			if last.File == d.File && last.Line == d.Line && last.Col == d.Col && last.Rule == d.Rule {
				if len(last.Chain) == 0 && len(d.Chain) > 0 {
					*last = d
				}
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// attachSymbols sets each diagnostic's Symbol to the name of the
// enclosing top-level declaration, resolved by line range against the
// package set the findings came from.
func attachSymbols(pkgs []*Package, diags []Diagnostic) {
	type declSpan struct {
		start, end int
		name       string
	}
	byFile := map[string][]declSpan{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				var names []string
				switch decl := decl.(type) {
				case *ast.FuncDecl:
					name := decl.Name.Name
					if decl.Recv != nil && len(decl.Recv.List) == 1 {
						names = append(names, "("+recvString(decl.Recv.List[0].Type)+")."+name)
					} else {
						names = append(names, name)
					}
				case *ast.GenDecl:
					for _, spec := range decl.Specs {
						switch spec := spec.(type) {
						case *ast.ValueSpec:
							for _, id := range spec.Names {
								names = append(names, id.Name)
							}
						case *ast.TypeSpec:
							names = append(names, spec.Name.Name)
						}
					}
					if len(names) > 1 {
						names = names[:1] // attribute the whole block to its first name
					}
				}
				if len(names) == 0 {
					continue
				}
				start := pkg.Fset.Position(decl.Pos())
				end := pkg.Fset.Position(decl.End())
				if decl, ok := decl.(*ast.FuncDecl); ok && decl.Doc != nil {
					start = pkg.Fset.Position(decl.Doc.Pos())
				}
				byFile[start.Filename] = append(byFile[start.Filename], declSpan{start.Line, end.Line, names[0]})
			}
		}
	}
	for i := range diags {
		for _, span := range byFile[diags[i].File] {
			if diags[i].Line >= span.start && diags[i].Line <= span.end {
				diags[i].Symbol = span.name
				break
			}
		}
	}
}

// recvString renders a receiver type expression ("*Solver", "Chain").
func recvString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.StarExpr:
		return "*" + recvString(e.X)
	case *ast.Ident:
		return e.Name
	case *ast.IndexExpr: // generic receiver
		return recvString(e.X)
	}
	return "?"
}

// WriteText renders the result one finding per line, with a trailing
// summary, in a stable order suitable for diffing in CI logs.
func WriteText(w io.Writer, res Result) {
	for _, d := range res.Diags {
		fmt.Fprintln(w, d)
	}
	fmt.Fprintf(w, "lint: %d finding(s) (%d error, %d warning), %d suppressed\n",
		len(res.Diags), res.Errors(), len(res.Diags)-res.Errors(), res.Suppressed)
}

// jsonReport is the stable JSON output schema; the shape is covered by
// TestJSONOutputSchema and consumed by CI annotations.
type jsonReport struct {
	Diagnostics []Diagnostic   `json:"diagnostics"`
	Counts      map[string]int `json:"counts"`
	Suppressed  int            `json:"suppressed"`
}

// WriteJSON renders the result as a single JSON object.
func WriteJSON(w io.Writer, res Result) error {
	rep := jsonReport{
		Diagnostics: res.Diags,
		Counts: map[string]int{
			"error":   res.Errors(),
			"warning": len(res.Diags) - res.Errors(),
		},
		Suppressed: res.Suppressed,
	}
	if rep.Diagnostics == nil {
		rep.Diagnostics = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
