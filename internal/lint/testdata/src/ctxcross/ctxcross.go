// Fixture for the transitive ctxflow contract. The package clause says
// scalesim (a modeling package). Sweep itself has no loop and no direct
// context-aware callee — the intraprocedural check sees nothing — but the
// loop driving a context-aware Step sits two hops down in ctxhelper, so
// the loopyHot fact must carry the finding back to the exported entry
// point, across the package boundary.
package scalesim

import "supernpu/internal/lint/testdata/src/ctxhelper"

// Sweep fans a sweep out through the helper; the caller can never cancel
// it.
func Sweep(n int) int { // want "does not accept a context.Context"
	return ctxhelper.Drive(n)
}

// Pure drives the helper's compliant loop; nothing to thread.
func Pure(n int) int {
	return ctxhelper.Mul(n)
}
