// Fixture for the cachekey rule. The package is named simcache so the
// rule applies; the structs are module-local by construction (they live in
// this package).
package simcache

import (
	"fmt"
	"strconv"
	"strings"
)

// Config mirrors the shape of a real configuration struct: the key builder
// below forgets Bandwidth, which would alias distinct configs.
type Config struct {
	Name      string
	Height    int
	Bandwidth float64
}

func ConfigKey(c Config) string { // want "never reads c.Bandwidth"
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteString(strconv.Itoa(c.Height))
	return b.String()
}

func FullConfigKey(c Config) string { // ok: every exported field read
	var b strings.Builder
	b.WriteString(c.Name)
	b.WriteString(strconv.Itoa(c.Height))
	b.WriteString(strconv.FormatFloat(c.Bandwidth, 'g', -1, 64))
	return b.String()
}

func FormatKey(c Config) string { // ok: %+v serialises the whole struct
	return fmt.Sprintf("%+v", c)
}

// Network and Layer exercise the delegation and element-coverage paths.
type Network struct {
	Name   string
	Layers []Layer
}

type Layer struct {
	Name string
	H, W int
}

func NetworkKey(n Network) string { // ok: delegation covers every field
	var b strings.Builder
	appendNetwork(&b, n)
	return b.String()
}

func appendNetwork(b *strings.Builder, n Network) {
	b.WriteString(n.Name)
	for _, l := range n.Layers {
		b.WriteString(l.Name)
		b.WriteString(strconv.Itoa(l.H))
		b.WriteString(strconv.Itoa(l.W))
	}
}

func LayersKey(n Network) string { // want "never reads l.W"
	var b strings.Builder
	b.WriteString(n.Name)
	for _, l := range n.Layers {
		b.WriteString(l.Name)
		b.WriteString(strconv.Itoa(l.H))
	}
	return b.String()
}

// Proj and Dims mirror the layer-grain projection keys: a reduced config
// projection plus a name-free shape, keyed together with the shape side
// delegated to a shared append helper.
type Proj struct {
	Height, Width int
	CyclesPerByte float64
}

type Dims struct {
	H, W int
}

func LayerKey(p Proj, d Dims) string { // want "never reads p.CyclesPerByte"
	var b strings.Builder
	b.WriteString(strconv.Itoa(p.Height))
	b.WriteString(strconv.Itoa(p.Width))
	appendDims(&b, d)
	return b.String()
}

func FullLayerKey(p Proj, d Dims) string { // ok: direct reads plus delegation
	var b strings.Builder
	b.WriteString(strconv.Itoa(p.Height))
	b.WriteString(strconv.Itoa(p.Width))
	b.WriteString(strconv.FormatFloat(p.CyclesPerByte, 'g', -1, 64))
	appendDims(&b, d)
	return b.String()
}

func appendDims(b *strings.Builder, d Dims) {
	b.WriteString(strconv.Itoa(d.H))
	b.WriteString(strconv.Itoa(d.W))
}
