// Fixture helper for the transitive sharedmut tests: a utility package
// whose exported surface bottoms out in an unsynchronized write to a
// package-level accumulator, two hops down (Record → note → hits).
package smhelper

var hits int

// Record accumulates one observation into the package-level tally.
func Record(i int) {
	note(i)
}

func note(i int) {
	hits += i
}

// Tally records and echoes its index — the named-callback shape handed
// straight to the pool.
func Tally(i int) (int, error) {
	note(i)
	return i, nil
}

// Scale is the compliant shape: pure arithmetic.
func Scale(i int) (int, error) {
	return i * 2, nil
}
