// Fixture for the ctxflow rule. The package clause says jsim, so the rule
// treats this as a modeling package: manufactured root contexts must be
// flagged wherever they appear, and exported entry points that loop while
// calling context-aware callees must accept a context.Context themselves.
package jsim

import "context"

// stashed is a manufactured root context at package scope — flagged even
// outside a function body.
var stashed = context.TODO() // want "context.TODO"

// simulateOne is a context-aware callee: the presence of its ctx parameter
// is what marks the exported loops below as cancellable-one-hop-down.
func simulateOne(ctx context.Context, i int) int {
	if ctx.Err() != nil {
		return 0
	}
	return i
}

// pureStep has no context parameter; loops over it need no threading.
func pureStep(i int) int { return i * i }

// BadBackground manufactures its own root context inside the sweep loop, so
// the caller can never cancel it. Both contracts fire: the Background call
// on its line, the missing ctx parameter on the declaration.
func BadBackground(n int) int { // want "does not accept a context.Context"
	total := 0
	for i := 0; i < n; i++ {
		total += simulateOne(context.Background(), i) // want "context.Background"
	}
	return total
}

// BadStashed loops over cycles feeding a stored context into the aware
// callee — the declaration must be flagged even though no Background call
// appears in the body.
func BadStashed(n int) int { // want "does not accept a context.Context"
	total := 0
	for i := 0; i < n; i++ {
		total += simulateOne(stashed, i)
	}
	return total
}

// BadRange shows the range-loop shape of the same defect.
func BadRange(xs []int) int { // want "does not accept a context.Context"
	total := 0
	for _, x := range xs {
		total += simulateOne(stashed, x)
	}
	return total
}

// BadBackgroundNoLoop has no loop, so only the manufactured-context
// contract fires.
func BadBackgroundNoLoop() int {
	return simulateOne(context.Background(), 1) // want "context.Background"
}

// GoodThreaded is the compliant shape: the caller's context flows through
// the loop into the aware callee.
func GoodThreaded(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += simulateOne(ctx, i)
	}
	return total
}

// GoodPureLoop loops over pure gate math; with no context-aware callee in
// sight there is nothing to thread.
func GoodPureLoop(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += pureStep(i)
	}
	return total
}

// goodUnexported is an internal helper: the entry-point contract applies to
// the exported surface only (the exported caller already owns the ctx).
func goodUnexported(ctx context.Context, n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += simulateOne(ctx, i)
	}
	return total
}

// GoodNoLoop calls an aware callee exactly once; a single bounded call is
// not a long-running loop and needs no parameter of its own.
func GoodNoLoop() int {
	return simulateOne(stashed, 1)
}
