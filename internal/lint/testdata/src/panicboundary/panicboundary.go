// Fixture for the panicboundary rule: the fixture loads under an
// internal/ import path, so undocumented panics are findings while
// documented invariant helpers pass.
package boundary

import "errors"

// ErrNegative is the typed sentinel the documented helper panics with.
var ErrNegative = errors.New("boundary: negative input")

// undocumented validates its input the wrong way: nothing in this comment
// warns the caller.
func undocumented(x int) {
	if x < 0 {
		panic("negative") // want "doc comment does not say so"
	}
}

func bare(x int) {
	if x < 0 {
		panic("negative") // want "doc comment does not say so"
	}
}

// documented panics with ErrNegative on a negative input: every call site
// passes a compile-time constant, so a violation is a programmer error.
func documented(x int) {
	if x < 0 {
		panic(ErrNegative)
	}
}

// recovered panics inside a deferred recover wrapper; the enclosing
// function documents the panic so the re-raise is part of the contract.
func recovered(f func()) {
	defer func() {
		if r := recover(); r != nil {
			panic(r)
		}
	}()
	f()
}
