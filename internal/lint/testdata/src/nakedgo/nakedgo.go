// Fixture for the nakedgo rule: any go statement outside the exempt
// packages is a finding.
package workers

func fanOut(work []func()) {
	for _, w := range work {
		go w() // want "raw go statement"
	}
}

func inline() {
	go func() {}() // want "raw go statement"
}

func sequential(work []func()) {
	for _, w := range work {
		w() // ok: no goroutine
	}
}
