// Fixture for the floateq rule: computed-operand comparisons are
// findings, constant sentinels and the NaN probe are not.
package floats

func equalPower(a, b float64) bool {
	return a == b // want "floating-point == comparison"
}

func changed(prev, next float32) bool {
	return prev != next // want "floating-point != comparison"
}

func sumDrifted(xs []float64, want float64) bool {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum == want // want "floating-point == comparison"
}

func isNaN(x float64) bool {
	return x != x // ok: the canonical NaN probe
}

func isUnset(x float64) bool {
	return x == 0 // ok: zero-value sentinel against a constant
}

func isDefaultBandwidth(x float64) bool {
	return x == 300e9 // ok: constant comparison
}

func intEqual(a, b int) bool {
	return a == b // ok: not floating point
}
