// Fixture for the sharedmut rule: callbacks handed to the worker pool
// writing state captured from the enclosing scope. The violations cover
// the direct shapes (captured scalar, captured map entry, captured-slice
// append) and the interprocedural ones (a callback calling a helper whose
// call graph writes a package-level variable two hops down, and a named
// function handed to the pool with the same fact). The compliant shapes —
// per-index writes into a captured slice, mutex-guarded aggregation,
// callback-local state — must stay silent.
package sweep

import (
	"sync"

	"supernpu/internal/lint/testdata/src/smhelper"
	"supernpu/internal/parallel"
)

// CaptureSum races every worker on one captured accumulator.
func CaptureSum(n int) (float64, error) {
	sum := 0.0
	err := parallel.ForEach(n, func(i int) error {
		sum += float64(i) // want "writes the variable sum"
		return nil
	})
	return sum, err
}

// CaptureMap races every worker on one captured map header.
func CaptureMap(keys []string) (map[string]bool, error) {
	seen := map[string]bool{}
	err := parallel.ForEach(len(keys), func(i int) error {
		seen[keys[i]] = true // want "an entry of the map seen"
		return nil
	})
	return seen, err
}

// CaptureAppend races every worker on the captured slice header.
func CaptureAppend(n int) ([]int, error) {
	var out []int
	err := parallel.ForEach(n, func(i int) error {
		out = append(out, i) // want "writes the variable out"
		return nil
	})
	return out, err
}

// ChainMut hides the shared write two calls down in another package.
func ChainMut(n int) error {
	return parallel.ForEach(n, func(i int) error {
		smhelper.Record(i) // want "mutates shared state"
		return nil
	})
}

// NamedMut hands the pool a named callback whose call graph writes a
// package-level variable.
func NamedMut(n int) ([]int, error) {
	return parallel.Map(n, smhelper.Tally) // want "mutates shared state"
}

// GoodIndexed is the pool's order-preserving idiom: each worker owns its
// index, so the captured slice is written without overlap.
func GoodIndexed(n int) ([]int, error) {
	out := make([]int, n)
	err := parallel.ForEach(n, func(i int) error {
		out[i] = i * i
		return nil
	})
	return out, err
}

// GoodLocked aggregates under a mutex; the callback synchronizes itself.
func GoodLocked(n int) (int, error) {
	var mu sync.Mutex
	total := 0
	err := parallel.ForEach(n, func(i int) error {
		mu.Lock()
		total += i
		mu.Unlock()
		return nil
	})
	return total, err
}

// GoodLocal keeps all mutation on callback-local state.
func GoodLocal(n int) ([]float64, error) {
	return parallel.Map(n, func(i int) (float64, error) {
		x := float64(i)
		x *= x
		return x, nil
	})
}

// GoodNamed hands the pool a pure named callback.
func GoodNamed(n int) ([]int, error) {
	return parallel.Map(n, smhelper.Scale)
}
