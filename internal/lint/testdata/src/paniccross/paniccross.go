// Fixture for the transitive panicboundary contract: an internal package
// whose exported surface reaches an undocumented panic two hops down and
// across a package boundary (Checked → Validate → explode → panic).
// Documentation on the caller or anywhere along the chain absorbs the
// fact, as does a recover at the boundary.
package pcross

import "supernpu/internal/lint/testdata/src/panichelper"

// Checked validates its input through the helper; nothing here warns the
// caller that a negative input brings the process down.
func Checked(x int) int { // want "can panic via Validate"
	return panichelper.Validate(x)
}

// Documented validates its input through the helper and panics when the
// input is negative — saying so makes the trap part of the contract.
func Documented(x int) int {
	return panichelper.Validate(x)
}

// Shielded validates through the helper but converts the trap to a
// sentinel value at this boundary.
func Shielded(x int) (out int) {
	defer func() {
		if recover() != nil {
			out = -1
		}
	}()
	return panichelper.Validate(x)
}

// Guarded calls the helper's documented invariant trap; the documentation
// on MustPos absorbs the fact before it reaches this frame.
func Guarded(x int) int {
	return panichelper.MustPos(x)
}
