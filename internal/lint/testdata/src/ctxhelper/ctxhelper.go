// Fixture helper for the transitive ctxflow tests: a non-modeling utility
// package whose Drive loops over a context-aware step while feeding it a
// stashed root context. ctxflow's manufactured-context contract does not
// gate this package (not a modeling name), so the stranded loop is only
// visible to modeling callers through the loopyHot fact.
package ctxhelper

import "context"

var stash = context.Background()

// Step is the context-aware callee.
func Step(ctx context.Context, i int) int {
	if ctx.Err() != nil {
		return 0
	}
	return i
}

// Drive loops over Step without accepting a context — the stranded frame
// sits one hop below any caller.
func Drive(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += Step(stash, i)
	}
	return total
}

// Mul is the compliant shape: a loop over pure arithmetic.
func Mul(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		total += i
	}
	return total
}
