// Fixture for suppression comments: the violations below are silenced by
// //lint:allow and must count as suppressed, not reported.
package suppress

func above(f func()) {
	//lint:allow(nakedgo) fixture: a standalone comment covers the next line
	go f()
}

func inline(f func()) {
	go f() //lint:allow(nakedgo) fixture: an inline comment covers its own line
}

func multi(a, b float64) bool {
	return a == b //lint:allow(floateq,nakedgo) fixture: a comma list allows several rules
}

func wrongRule(f func()) {
	go f() //lint:allow(floateq) fixture: allowing a different rule must NOT suppress nakedgo
}
