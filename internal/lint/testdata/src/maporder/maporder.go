// Fixture for the maporder rule: each seeded violation carries a want
// comment; the compliant shapes below them must stay silent.
package maporder

import (
	"fmt"
	"sort"
	"strings"
)

func sumCompound(gates map[string]float64) float64 {
	total := 0.0
	for _, p := range gates {
		total += p // want "float accumulation"
	}
	return total
}

func sumAssigned(gates map[string]float64) float64 {
	total := 0.0
	for _, p := range gates {
		total = total + p // want "float accumulation"
	}
	return total
}

func collectUnsorted(gates map[string]float64) []string {
	var names []string
	for n := range gates {
		names = append(names, n) // want "without a following sort"
	}
	return names
}

func collectSorted(gates map[string]float64) []string {
	var names []string
	for n := range gates {
		names = append(names, n) // ok: sorted before use
	}
	sort.Strings(names)
	return names
}

func printDuring(gates map[string]float64) {
	for n := range gates {
		fmt.Println(n) // want "emission order"
	}
}

func writeDuring(gates map[string]float64) string {
	var b strings.Builder
	for n := range gates {
		b.WriteString(n) // want "emission order"
	}
	return b.String()
}

func sortThenAccumulate(gates map[string]float64) float64 {
	keys := make([]string, 0, len(gates))
	for k := range gates {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total := 0.0
	for _, k := range keys {
		total += gates[k] // ok: iterating the sorted slice
	}
	return total
}

func countEntries(gates map[string]float64) int {
	n := 0
	for range gates {
		n++ // ok: integer counting is order-independent
	}
	return n
}
