// Fixture for the obsflow rule. The package clause says jsim, so the rule
// treats this as a modeling package: writes to obs instruments must pass,
// reads of instrument or gate state must be flagged.
package jsim

import "supernpu/internal/obs"

var (
	transients = obs.Default.Counter("fixture_transients_total", "transients in the fixture")
	solveTime  = obs.Default.Histogram("fixture_solve_seconds", "solve wall time in the fixture", obs.DurationEdges)
)

// writesAreFine exercises the full write surface the rule must not flag:
// registration, counter bumps, histogram observation, timers and spans.
func writesAreFine(steps int) {
	transients.Inc()
	transients.Add(int64(steps))
	solveTime.Observe(1.5)
	defer obs.Time(solveTime)()
	sp := obs.StartSpan("solve", obs.L("kind", "fixture"))
	defer sp.End()
}

// readsAreNot pulls instrument state back into the computation — every
// call here must be flagged.
func readsAreNot() float64 {
	n := transients.Value() // want "obs.Value"
	if obs.Enabled() {      // want "obs.Enabled"
		n++
	}
	if obs.Tracing() { // want "obs.Tracing"
		n--
	}
	_ = solveTime.Count()        // want "obs.Count"
	_ = solveTime.Sum()          // want "obs.Sum"
	_ = solveTime.BucketCounts() // want "obs.BucketCounts"
	_ = solveTime.Edges()        // want "obs.Edges"
	return float64(n)
}
