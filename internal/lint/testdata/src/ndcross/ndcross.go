// Fixture for the transitive nondeterminism contract. The package clause
// says estimator, so this is a modeling package; every sink it reaches
// sits in ndhelper, ≥2 call hops away and across a package boundary, so
// only the interprocedural facts can find them.
package estimator

import "supernpu/internal/lint/testdata/src/ndhelper"

// Cold models a cold-start estimate but scales by a helper whose call
// graph bottoms out in time.Now.
func Cold(n int) float64 {
	return ndhelper.Jitter(float64(n)) // want "reaches time.Now"
}

// Sample models a draw but the helper's call graph bottoms out in
// math/rand.
func Sample(n int) float64 {
	return ndhelper.Roll(n) // want "reaches math/rand"
}

// Pure calls the helper's compliant surface; no fact reaches here.
func Pure(n int) float64 {
	return ndhelper.Scale(float64(n))
}
