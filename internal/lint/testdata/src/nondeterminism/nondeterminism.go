// Fixture for the nondeterminism rule. The package is named estimator so
// it falls inside the modeling-package gate.
package estimator

import (
	"fmt"
	"math/rand" // want "imports math/rand"
	"time"
)

func seed() int64 {
	return time.Now().UnixNano() // want "wall clock"
}

func draw(r *rand.Rand) float64 {
	return r.Float64()
}

func describe(counts map[string]int) string {
	return fmt.Sprintf("%v", counts) // want "map argument"
}

func describeSlice(xs []int) string {
	return fmt.Sprintf("%v", xs) // ok: slices print in element order
}
