// Fixture helper for the transitive panicboundary tests: an internal
// package (the fixture import path sits under internal/) whose exported
// Validate delegates to an undocumented panicking helper, and whose
// MustPos documents its own panic.
package panichelper

// Validate checks its input by delegating to explode; nothing in this
// comment warns the caller about what happens on bad input.
func Validate(x int) int { // want "can panic via explode"
	return explode(x)
}

func explode(x int) int {
	if x < 0 {
		panic("panichelper: negative input") // want "doc comment does not say so"
	}
	return x
}

// MustPos returns x unchanged and panics when x is negative — the
// documented invariant-trap shape; the fact is absorbed here.
func MustPos(x int) int {
	if x < 0 {
		panic("panichelper: negative input")
	}
	return x
}
