// Fixture helper for the transitive nondeterminism tests: a non-modeling
// utility package hiding wall-clock and math/rand sinks one call below
// its exported surface. The intraprocedural gate never inspects this
// package (its name is not in modelingPackages); only the call-graph
// facts can carry the sinks back into modeling code.
package ndhelper

import (
	"math/rand"
	"time"
)

// Jitter scales x by a wall-clock-derived factor — the hidden sink is two
// hops from any modeling caller (Jitter → stamp → time.Now).
func Jitter(x float64) float64 {
	return x * stamp()
}

func stamp() float64 {
	return float64(time.Now().UnixNano())
}

// Roll draws a pseudo-random sample — the hidden sink is two hops from
// any modeling caller (Roll → draw → math/rand).
func Roll(n int) float64 {
	return draw(n)
}

func draw(n int) float64 {
	return rand.Float64() * float64(n)
}

// Scale is the compliant shape: pure arithmetic, no facts to propagate.
func Scale(x float64) float64 {
	return x * 2
}
