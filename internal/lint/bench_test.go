package lint

import "testing"

// BenchmarkLintModule measures one full analyzer pass: load and type-check
// every package in the module, build the call graph, compute the
// transitive facts, and run the complete rulebook. This is the wall time
// every `make lint` and TestTreeClean pays, so its trajectory is recorded
// in EXPERIMENTS.md (the std-library source-importer memoisation in
// load.go is the difference between the cold and warm numbers).
func BenchmarkLintModule(b *testing.B) {
	root, err := FindModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		pkgs, err := LoadModule(root)
		if err != nil {
			b.Fatal(err)
		}
		res := Run(pkgs, Rules())
		if res.Errors() > 0 {
			b.Fatalf("tree not clean: %d errors", res.Errors())
		}
	}
}
