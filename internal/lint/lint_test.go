package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixturePath is the import-path prefix fixtures load under; it sits
// below internal/ so path-gated rules (panicboundary, nakedgo) treat the
// fixtures like real internal packages.
const fixturePath = "supernpu/internal/lintfixtures/"

// loadFixture type-checks one testdata/src package.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := LoadDir(filepath.Join("testdata", "src", name), root, fixturePath+name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// wantRe pulls the expectation pattern out of a // want "..." comment.
var wantRe = regexp.MustCompile(`// want "([^"]+)"`)

// expectation is one want comment: a pattern that must match a finding on
// its line.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

func collectWants(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, pattern: re})
				}
			}
		}
	}
	return wants
}

// loadFixtureClosure type-checks one testdata/src package plus its
// in-module dependency closure with a single loader, so cross-package
// call-graph edges resolve to shared function objects.
func loadFixtureClosure(t *testing.T, name string) []*Package {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadClosure(filepath.Join("testdata", "src", name), root, fixturePath+name)
	if err != nil {
		t.Fatalf("loading fixture closure %s: %v", name, err)
	}
	return pkgs
}

// checkFixture runs one rule over its fixture and verifies the findings
// line up one-to-one with the want comments: a missing finding means the
// seeded violation stopped being caught, an extra one means a false
// positive crept into a compliant shape.
func checkFixture(t *testing.T, ruleName, fixture string) {
	t.Helper()
	checkFixturePkgs(t, ruleName, fixture, []*Package{loadFixture(t, fixture)})
}

// checkFixtureClosure is checkFixture over a fixture package and its
// dependency closure: want comments are honoured in every closure package
// that lives under testdata, so cross-package chains can pin findings at
// both ends.
func checkFixtureClosure(t *testing.T, ruleName, fixture string) {
	t.Helper()
	checkFixturePkgs(t, ruleName, fixture, loadFixtureClosure(t, fixture))
}

func checkFixturePkgs(t *testing.T, ruleName, fixture string, pkgs []*Package) {
	t.Helper()
	rule := RuleByName(ruleName)
	if rule == nil {
		t.Fatalf("rule %s not registered", ruleName)
	}
	var wants []*expectation
	for _, pkg := range pkgs {
		if !strings.Contains(pkg.Dir, "testdata") {
			continue // real module packages pulled in as dependencies
		}
		wants = append(wants, collectWants(t, pkg)...)
	}
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", fixture)
	}
	res := Run(pkgs, []Rule{rule})
	for _, d := range res.Diags {
		matched := false
		for _, w := range wants {
			if w.file == d.File && w.line == d.Line && w.pattern.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: want %q, but the rule reported nothing matching there", w.file, w.line, w.pattern)
		}
	}
}

func TestMapOrderFixture(t *testing.T)       { checkFixture(t, "maporder", "maporder") }
func TestNondeterminismFixture(t *testing.T) { checkFixture(t, "nondeterminism", "nondeterminism") }
func TestNakedGoFixture(t *testing.T)        { checkFixture(t, "nakedgo", "nakedgo") }
func TestPanicBoundaryFixture(t *testing.T)  { checkFixture(t, "panicboundary", "panicboundary") }
func TestFloatEqFixture(t *testing.T)        { checkFixture(t, "floateq", "floateq") }
func TestCacheKeyFixture(t *testing.T)       { checkFixture(t, "cachekey", "cachekey") }
func TestObsFlowFixture(t *testing.T)        { checkFixture(t, "obsflow", "obsflow") }
func TestCtxFlowFixture(t *testing.T)        { checkFixture(t, "ctxflow", "ctxflow") }

// The interprocedural fixtures: every violation sits ≥2 call hops and one
// package boundary away from the reported position, so these only pass
// when the call graph, the fixed point, and the chain rendering all work.
func TestNondeterminismCrossPackage(t *testing.T) {
	checkFixtureClosure(t, "nondeterminism", "ndcross")
}
func TestCtxFlowCrossPackage(t *testing.T) { checkFixtureClosure(t, "ctxflow", "ctxcross") }
func TestPanicBoundaryCrossPackage(t *testing.T) {
	checkFixtureClosure(t, "panicboundary", "paniccross")
}
func TestSharedMutFixture(t *testing.T) { checkFixtureClosure(t, "sharedmut", "sharedmut") }

// TestTransitiveChainContents pins the exact derivation chain attached to
// a cross-package finding, sink included.
func TestTransitiveChainContents(t *testing.T) {
	pkgs := loadFixtureClosure(t, "ndcross")
	res := Run(pkgs, []Rule{RuleByName("nondeterminism")})
	want := []string{"estimator.Cold", "ndhelper.Jitter", "ndhelper.stamp", "time.Now"}
	for _, d := range res.Diags {
		if len(d.Chain) == len(want) {
			ok := true
			for i := range want {
				if d.Chain[i] != want[i] {
					ok = false
				}
			}
			if ok {
				if !strings.Contains(d.Message, "estimator.Cold → ndhelper.Jitter → ndhelper.stamp → time.Now") {
					t.Errorf("chain not rendered into the message: %s", d.Message)
				}
				return
			}
		}
	}
	t.Fatalf("no diagnostic carries the chain %v; got %+v", want, res.Diags)
}

// TestTransitiveDedup pins the (position, rule) de-duplication: when the
// intraprocedural ctxflow check and its interprocedural upgrade both fire
// on one declaration, exactly one diagnostic survives and it carries the
// chain.
func TestTransitiveDedup(t *testing.T) {
	pkg := loadFixture(t, "ctxflow")
	res := Run([]*Package{pkg}, []Rule{RuleByName("ctxflow")})
	seen := map[string]int{}
	for _, d := range res.Diags {
		key := fmt.Sprintf("%s:%d:%d:%s", d.File, d.Line, d.Col, d.Rule)
		seen[key]++
		if seen[key] > 1 {
			t.Errorf("duplicate diagnostics at %s", key)
		}
	}
	withChain := 0
	for _, d := range res.Diags {
		if len(d.Chain) > 0 && strings.Contains(d.Message, "does not accept a context.Context") {
			withChain++
		}
	}
	if withChain == 0 {
		t.Error("dedupe kept the chain-less diagnostic; the interprocedural derivation was lost")
	}
}

// TestSuppression checks the //lint:allow comment forms: standalone
// above, inline, comma lists, and that allowing one rule does not silence
// another.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	res := Run([]*Package{pkg}, []Rule{RuleByName("nakedgo"), RuleByName("floateq")})
	if res.Suppressed != 3 {
		t.Errorf("suppressed = %d, want 3", res.Suppressed)
	}
	if len(res.Diags) != 1 {
		t.Fatalf("diags = %d (%v), want exactly the wrong-rule finding", len(res.Diags), res.Diags)
	}
	d := res.Diags[0]
	if d.Rule != "nakedgo" || !strings.Contains(d.File, "suppress.go") {
		t.Errorf("surviving finding = %+v, want a nakedgo finding in suppress.go", d)
	}
}

// TestRulesExemptPackages pins the package gates: the pool and the server
// may spawn goroutines, and non-modeling packages may print maps.
func TestRulesExemptPackages(t *testing.T) {
	pkg := loadFixture(t, "nakedgo")
	// Re-run the same fixture under the exempt import path; the rule must
	// stay silent.
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	exempt, err := LoadDir(filepath.Join("testdata", "src", "nakedgo"), root, "supernpu/internal/parallel")
	if err != nil {
		t.Fatal(err)
	}
	if res := Run([]*Package{exempt}, []Rule{RuleByName("nakedgo")}); len(res.Diags) != 0 {
		t.Errorf("nakedgo fired %d finding(s) inside internal/parallel, want 0", len(res.Diags))
	}
	if res := Run([]*Package{pkg}, []Rule{RuleByName("nakedgo")}); len(res.Diags) == 0 {
		t.Error("nakedgo silent outside the exempt packages")
	}
}

// TestJSONOutputSchema locks the JSON report shape CI consumes.
func TestJSONOutputSchema(t *testing.T) {
	pkg := loadFixture(t, "nakedgo")
	res := Run([]*Package{pkg}, []Rule{RuleByName("nakedgo")})
	var buf bytes.Buffer
	if err := WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Diagnostics []struct {
			Rule     string   `json:"rule"`
			Severity string   `json:"severity"`
			File     string   `json:"file"`
			Line     int      `json:"line"`
			Col      int      `json:"col"`
			Message  string   `json:"message"`
			Symbol   string   `json:"symbol"`
			Chain    []string `json:"chain"`
		} `json:"diagnostics"`
		Counts     map[string]int `json:"counts"`
		Suppressed int            `json:"suppressed"`
	}
	dec := json.NewDecoder(&buf)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rep); err != nil {
		t.Fatalf("JSON report does not match the documented schema: %v", err)
	}
	if len(rep.Diagnostics) == 0 {
		t.Fatal("JSON report lost the findings")
	}
	for _, d := range rep.Diagnostics {
		if d.Rule == "" || d.File == "" || d.Line <= 0 || d.Col <= 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic in JSON report: %+v", d)
		}
		if d.Severity != "error" && d.Severity != "warning" {
			t.Errorf("severity %q, want error or warning", d.Severity)
		}
	}
	if _, ok := rep.Counts["error"]; !ok {
		t.Error("counts missing the error bucket")
	}
	if _, ok := rep.Counts["warning"]; !ok {
		t.Error("counts missing the warning bucket")
	}
	// An empty result must still serialise with a [] diagnostics array,
	// not null, so jq pipelines in CI never see a type change.
	buf.Reset()
	if err := WriteJSON(&buf, Result{}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"diagnostics": []`) {
		t.Errorf("empty report serialises diagnostics as %s, want []", buf.String())
	}
}

// TestTextOutput pins the one-line-per-finding text format and its
// trailing summary.
func TestTextOutput(t *testing.T) {
	pkg := loadFixture(t, "nakedgo")
	res := Run([]*Package{pkg}, []Rule{RuleByName("nakedgo")})
	var buf bytes.Buffer
	WriteText(&buf, res)
	out := buf.String()
	if !strings.Contains(out, "nakedgo") || !strings.Contains(out, "error") {
		t.Errorf("text output missing rule or severity:\n%s", out)
	}
	want := fmt.Sprintf("lint: %d finding(s)", len(res.Diags))
	if !strings.Contains(out, want) {
		t.Errorf("text output missing summary %q:\n%s", want, out)
	}
}

// TestTreeClean runs every rule over the real module: the contracts the
// linter enforces must hold on the tree that ships it. This is the same
// gate make lint and CI apply, enforced from go test so a violating
// change cannot land through the test suite either.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := LoadModule(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk lost most of the tree", len(pkgs))
	}
	res := Run(pkgs, Rules())
	for _, d := range res.Diags {
		t.Errorf("%s", d)
	}
}
