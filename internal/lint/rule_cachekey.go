// The cachekey rule: injectivity guard for the memoisation layer. Every
// simcache key builder hand-serialises its input struct field by field
// (reflection is off the hot path on purpose), which means adding a field
// to arch.Config or workload.Layer and forgetting the key builder silently
// aliases distinct configurations onto one cache entry. The fuzz target
// catches that only for fields it knows to mutate; this rule catches it
// structurally: every exported field of a module-local struct parameter of
// a key builder must be read in the key derivation, either directly or by
// passing the struct on to another builder that reads it.

package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

type cacheKeyRule struct{}

func (cacheKeyRule) Name() string { return "cachekey" }
func (cacheKeyRule) Doc() string {
	return "simcache key builders must reference every exported field of the structs they fingerprint"
}
func (cacheKeyRule) Severity() Severity { return Error }

// fieldSet tracks which exported fields a builder reads; all=true means
// the whole struct escaped into code the rule cannot see (another package,
// a %+v formatter), which counts as full coverage.
type fieldSet struct {
	all   bool
	names map[string]bool
}

func (fs *fieldSet) add(name string) {
	if fs.names == nil {
		fs.names = map[string]bool{}
	}
	fs.names[name] = true
}

func (fs *fieldSet) union(other fieldSet) {
	fs.all = fs.all || other.all
	for n := range other.names {
		fs.add(n)
	}
}

func (r cacheKeyRule) Check(p *Pass) {
	if p.Pkg.Name != "simcache" {
		return
	}
	c := &cacheKeyChecker{
		p:        p,
		decls:    map[*types.Func]*ast.FuncDecl{},
		module:   modulePrefix(p.Pkg.Path),
		inProg:   map[coverKey]bool{},
		memoRes:  map[coverKey]fieldSet{},
		reported: map[string]bool{},
	}
	eachFuncDecl(p.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Name != nil {
			if f, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				c.decls[f] = fd
			}
		}
	})
	eachFuncDecl(p.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || !strings.Contains(fd.Name.Name, "Key") {
			return
		}
		for _, field := range fd.Type.Params.List {
			for _, pname := range field.Names {
				obj := p.Pkg.Info.Defs[pname]
				if obj == nil {
					continue
				}
				st := c.moduleStruct(obj.Type())
				if st == nil {
					continue
				}
				c.checkCoverage(fd, fd.Body, obj, st, fd.Name.Name, obj.Name())
			}
		}
	})
}

// modulePrefix returns the first path component ("supernpu"), used to
// recognise module-local named types.
func modulePrefix(pkgPath string) string {
	if i := strings.IndexByte(pkgPath, '/'); i >= 0 {
		return pkgPath[:i]
	}
	return pkgPath
}

// coverKey memoises coverage per (function, parameter index) pair.
type coverKey struct {
	fn    *types.Func
	param int
}

type cacheKeyChecker struct {
	p       *Pass
	decls   map[*types.Func]*ast.FuncDecl
	module  string
	inProg  map[coverKey]bool
	memoRes map[coverKey]fieldSet
	// reported deduplicates findings: a helper's element check can be
	// reached both directly and through delegation from several builders.
	reported map[string]bool
}

// moduleStruct returns the underlying struct of a module-local named type
// with at least one exported field (pointers unwrapped), or nil.
func (c *cacheKeyChecker) moduleStruct(t types.Type) *types.Struct {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	path := named.Obj().Pkg().Path()
	if path != c.module && !strings.HasPrefix(path, c.module+"/") {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Exported() {
			return st
		}
	}
	return nil
}

// checkCoverage computes which exported fields of obj (a struct-typed
// variable in scope of body) are read, and reports the missing ones
// against the named builder.
func (c *cacheKeyChecker) checkCoverage(fd *ast.FuncDecl, body ast.Node, obj types.Object, st *types.Struct, fnName, varName string) {
	cov := c.cover(body, obj)
	if cov.all {
		return
	}
	var missing []string
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Exported() && !cov.names[f.Name()] {
			missing = append(missing, f.Name())
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	key := fnName + "\x00" + varName + "\x00" + strings.Join(missing, ",")
	if c.reported[key] {
		return
	}
	c.reported[key] = true
	c.p.Reportf(fd.Name, "key builder %s never reads %s.%s; two inputs differing only there would share a cache entry",
		fnName, varName, strings.Join(missing, ", "+varName+"."))
}

// cover walks body collecting the exported fields of obj that are read.
// Passing obj to a same-package function recurses into that function's
// coverage of the corresponding parameter; passing it anywhere the rule
// cannot see counts as full coverage. Ranging over a slice-typed field
// whose element is a module-local struct triggers a nested completeness
// check on the element variable.
func (c *cacheKeyChecker) cover(body ast.Node, obj types.Object) fieldSet {
	var cov fieldSet
	ast.Inspect(body, func(n ast.Node) bool {
		if cov.all {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if identObj(c.p.Pkg.Info, n.X) == obj {
				cov.add(n.Sel.Name)
			}
		case *ast.RangeStmt:
			sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr)
			if !ok || identObj(c.p.Pkg.Info, sel.X) != obj {
				return true
			}
			cov.add(sel.Sel.Name)
			// Nested check: the element of a ranged struct slice must
			// itself be fully serialised (the Layer inside Network).
			valID, ok := n.Value.(*ast.Ident)
			if !ok {
				return true
			}
			elemObj := c.p.Pkg.Info.Defs[valID]
			if elemObj == nil {
				return true
			}
			if est := c.moduleStruct(elemObj.Type()); est != nil {
				if fd := enclosingFuncDecl(c.p.Pkg, n); fd != nil {
					c.checkCoverage(fd, n.Body, elemObj, est, fd.Name.Name, valID.Name)
				}
			}
		case *ast.CallExpr:
			c.coverCall(n, obj, &cov)
		}
		return true
	})
	return cov
}

// coverCall folds one call's effect on obj's coverage into cov.
func (c *cacheKeyChecker) coverCall(call *ast.CallExpr, obj types.Object, cov *fieldSet) {
	for i, arg := range call.Args {
		if identObj(c.p.Pkg.Info, arg) != obj {
			continue
		}
		// Distinguish &obj / obj from obj.Field (the selector case is
		// handled by the selector walk already).
		if _, isSel := ast.Unparen(arg).(*ast.SelectorExpr); isSel {
			continue
		}
		callee := calleeFunc(c.p.Pkg.Info, call)
		fd, local := c.decls[callee]
		if !local || fd.Body == nil {
			cov.all = true // escaped to code the rule cannot inspect
			return
		}
		param := paramAt(fd, i)
		if param == nil {
			cov.all = true
			return
		}
		key := coverKey{callee, i}
		if c.inProg[key] {
			continue // recursion: contributes nothing new
		}
		if memo, ok := c.memoRes[key]; ok {
			cov.union(memo)
			continue
		}
		c.inProg[key] = true
		sub := c.cover(fd.Body, c.p.Pkg.Info.Defs[param])
		delete(c.inProg, key)
		c.memoRes[key] = sub
		cov.union(sub)
	}
}

// paramAt returns the i'th parameter name of a declaration, flattening
// grouped parameters (a, b int).
func paramAt(fd *ast.FuncDecl, i int) *ast.Ident {
	n := 0
	for _, field := range fd.Type.Params.List {
		names := field.Names
		if len(names) == 0 {
			n++ // unnamed parameter cannot be read, skip slot
			continue
		}
		for _, name := range names {
			if n == i {
				return name
			}
			n++
		}
	}
	return nil
}

// enclosingFuncDecl finds the function declaration whose body contains n.
func enclosingFuncDecl(pkg *Package, n ast.Node) *ast.FuncDecl {
	var found *ast.FuncDecl
	eachFuncDecl(pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body != nil && fd.Pos() <= n.Pos() && n.End() <= fd.End() {
			found = fd
		}
	})
	return found
}
