// Transitive per-function facts over the call graph, computed by a
// deterministic fixed point. Each fact is a monotone boolean on the
// lattice {unknown < true}: base facts come from one walk of each body,
// and propagation only ever flips a node from unknown to true, so the
// loop terminates after at most |nodes| rounds. Nodes are visited in
// sorted order and edges in source order, which makes the derivation —
// and therefore the call chain attached to every diagnostic — a pure
// function of the source text.
//
// Facts computed:
//
//	reachND   the function reaches a nondeterminism sink (wall clock,
//	          math/rand, fmt over a map) through module-local calls;
//	          propagation stops at the trusted boundary packages whose
//	          own contracts make their internal timing unobservable
//	escPanic  an undocumented panic can escape the function's frame; a
//	          doc comment mentioning "panic" or an in-body recover()
//	          absorbs the fact, and callback edges never forward it
//	          (the pool recovers callbacks into *PanicError)
//	hotCtx    the function directly or transitively calls a
//	          context-aware callee through ctx-less locals
//	loopyHot  the function does not accept a context and a loop on some
//	          ctx-less call path below it drives a context-aware callee
//	          — the stranded-sweep shape ctxflow reports at entry points
//	mutates   the function reaches an unsynchronized write to a
//	          package-level variable (the race class sharedmut flags
//	          inside pool callbacks)
package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// trustedNDPkgs are the determinism-neutral boundary packages: they read
// the clock for telemetry and scheduling, but their own contracts (the
// differential golden test for obs, byte-identity across worker counts
// for parallel) guarantee none of it is observable in modeled outputs.
// Nondeterminism propagation stops at their edges; see DESIGN.md §14.
var trustedNDPkgs = map[string]bool{
	"supernpu/internal/obs":      true,
	"supernpu/internal/parallel": true,
}

// Facts carries the call graph and its computed fact fields; Run attaches
// one to every Pass so rules can consult transitive reachability.
type Facts struct {
	g *callGraph
}

// nodeOf returns the graph node for fn, or nil when fn was not declared
// (with a body) in the analyzed package set.
func (f *Facts) nodeOf(fn *types.Func) *funcNode {
	if f == nil || fn == nil {
		return nil
	}
	return f.g.nodes[fn]
}

// computeFacts builds the call graph, extracts base facts from every body,
// and runs the fixed point.
func computeFacts(pkgs []*Package) *Facts {
	g := buildCallGraph(pkgs)
	for _, n := range g.order {
		collectBaseFacts(n)
	}
	propagate(g)
	return &Facts{g: g}
}

// isRandPkg reports whether path is a math/rand flavour.
func isRandPkg(path string) bool {
	return path == "math/rand" || path == "math/rand/v2"
}

// isUniverseCall reports whether call invokes the predeclared function of
// the given name (panic, recover).
func isUniverseCall(info *types.Info, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == name && info.Uses[id] == types.Universe.Lookup(name)
}

// rootVar resolves the leftmost variable of an lvalue chain
// (x, x.f, x[i], *x, pkg.X and their compositions), or nil.
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.ObjectOf(x).(*types.Var)
			return v
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.ObjectOf(id).(*types.PkgName); isPkg {
					v, _ := info.ObjectOf(x.Sel).(*types.Var)
					return v
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPkgLevelVar reports whether v is a package-scoped variable (not a
// field, parameter, or local).
func isPkgLevelVar(v *types.Var) bool {
	return v != nil && !v.IsField() && v.Parent() != nil && v.Parent().Parent() == types.Universe
}

// isSyncLock reports whether f is (*sync.Mutex).Lock, (*sync.RWMutex).Lock
// or RLock — the signal that a function synchronizes its own mutations.
func isSyncLock(f *types.Func) bool {
	return f != nil && f.Pkg() != nil && f.Pkg().Path() == "sync" &&
		(f.Name() == "Lock" || f.Name() == "RLock")
}

// collectBaseFacts fills n's base fact fields with one walk of the body.
func collectBaseFacts(n *funcNode) {
	info := n.pkg.Info
	n.acceptsCtx = signatureAcceptsContext(n.fn.Type().(*types.Signature))
	n.panicDoc = n.decl.Doc != nil && strings.Contains(strings.ToLower(n.decl.Doc.Text()), "panic")
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			n.loops = true
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if v := rootVar(info, lhs); isPkgLevelVar(v) && !n.writesShared {
					n.writesShared = true
					n.sharedDesc = "write to package-level " + v.Name()
					n.sharedPos = lhs.Pos()
				}
			}
		case *ast.IncDecStmt:
			if v := rootVar(info, node.X); isPkgLevelVar(v) && !n.writesShared {
				n.writesShared = true
				n.sharedDesc = "write to package-level " + v.Name()
				n.sharedPos = node.X.Pos()
			}
		case *ast.CallExpr:
			if isUniverseCall(info, node, "panic") {
				if !n.panics {
					n.panics = true
					n.panicPos = node.Pos()
				}
				return true
			}
			if isUniverseCall(info, node, "recover") {
				n.hasRecover = true
				return true
			}
			callee := calleeFunc(info, node)
			if callee == nil {
				return true
			}
			if isSyncLock(callee) {
				n.selfSynced = true
			}
			full := callee.FullName()
			if n.ndSink == "" {
				switch {
				case full == "time.Now" || full == "time.Since" || full == "time.Until":
					n.ndSink = full
					n.ndPos = node.Pos()
				case callee.Pkg() != nil && isRandPkg(callee.Pkg().Path()):
					n.ndSink = "math/rand." + callee.Name()
					n.ndPos = node.Pos()
				case fmtPrinters[full]:
					for _, arg := range node.Args {
						if tv, ok := info.Types[arg]; ok && isMap(tv.Type) {
							n.ndSink = full + " over a map"
							n.ndPos = node.Pos()
							break
						}
					}
				}
			}
			if n.ctxAwareCall == "" {
				if sig, ok := callee.Type().(*types.Signature); ok && signatureAcceptsContext(sig) {
					n.ctxAwareCall = callee.Name()
					n.ctxAwarePos = node.Pos()
				}
			}
		}
		return true
	})
}

// propagate runs the fixed point over all transitive facts at once. Facts
// only flip unknown→true and the via link is chosen as the first edge (in
// source order) that justifies the flip, so derivations are acyclic and
// deterministic.
func propagate(g *callGraph) {
	// Seed base cases.
	for _, n := range g.order {
		if n.ndSink != "" {
			n.reachND = &chainLink{desc: n.ndSink, pos: n.ndPos}
		}
		if n.panics && !n.panicDoc {
			n.escPanic = &chainLink{desc: "panic", pos: n.panicPos}
		}
		if n.ctxAwareCall != "" {
			n.hotCtx = true
			n.hotCtxLink = &chainLink{desc: n.ctxAwareCall, pos: n.ctxAwarePos}
		}
		if n.writesShared && !n.selfSynced {
			n.mutates = &chainLink{desc: n.sharedDesc, pos: n.sharedPos}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.order {
			for i := range n.edges {
				e := &n.edges[i]
				c := e.callee
				if c == n {
					continue
				}
				if n.reachND == nil && c.reachND != nil && !trustedNDPkgs[c.pkg.Path] {
					n.reachND = &chainLink{via: c, pos: e.pos}
					changed = true
				}
				if e.kind == edgeCall {
					if n.escPanic == nil && !n.panicDoc && !n.hasRecover && c.escPanic != nil {
						n.escPanic = &chainLink{via: c, pos: e.pos}
						changed = true
					}
					if !n.hotCtx && !c.acceptsCtx && c.hotCtx {
						n.hotCtx = true
						n.hotCtxLink = &chainLink{via: c, pos: e.pos}
						changed = true
					}
					if n.loopyHot == nil && !n.acceptsCtx && !c.acceptsCtx && c.loopyHot != nil {
						n.loopyHot = &chainLink{via: c, pos: e.pos}
						changed = true
					}
				}
				if n.mutates == nil && !n.selfSynced && c.mutates != nil {
					n.mutates = &chainLink{via: c, pos: e.pos}
					changed = true
				}
			}
			// The loopyHot base case depends on hotCtx, which other edges of
			// this same pass may have just derived — evaluate it last.
			if n.loopyHot == nil && !n.acceptsCtx && n.loops && n.hotCtx {
				n.loopyHot = &chainLink{pos: n.ctxAwarePos}
				changed = true
			}
		}
	}
}

// ndChain renders the derivation of n's reachND fact, starting with n's
// own label and ending at the sink: ["estimator.Cold", "report.stamp",
// "time.Now"].
func (f *Facts) ndChain(n *funcNode) []string {
	out := []string{n.label()}
	for l := n.reachND; l != nil; l = l.via.reachND {
		if l.via == nil {
			return append(out, l.desc)
		}
		out = append(out, l.via.label())
	}
	return out
}

// panicChain renders the derivation of n's escPanic fact, ending at
// "panic".
func (f *Facts) panicChain(n *funcNode) []string {
	out := []string{n.label()}
	for l := n.escPanic; l != nil; l = l.via.escPanic {
		if l.via == nil {
			return append(out, l.desc)
		}
		out = append(out, l.via.label())
	}
	return out
}

// ctxChain renders the derivation of n's loopyHot fact: the ctx-less call
// path down to the looping frame, then that frame's route to the
// context-aware callee.
func (f *Facts) ctxChain(n *funcNode) []string {
	out := []string{n.label()}
	cur := n
	for {
		l := cur.loopyHot
		if l == nil {
			return out
		}
		if l.via != nil {
			cur = l.via
			out = append(out, cur.label())
			continue
		}
		// Loop-with-hot-body case: splice in the hotCtx derivation.
		for hl := cur.hotCtxLink; hl != nil; hl = hl.via.hotCtxLink {
			if hl.via == nil {
				return append(out, hl.desc)
			}
			out = append(out, hl.via.label())
		}
		return out
	}
}

// mutChain renders the derivation of n's mutates fact, ending at the
// description of the package-level write.
func (f *Facts) mutChain(n *funcNode) []string {
	out := []string{n.label()}
	for l := n.mutates; l != nil; l = l.via.mutates {
		if l.via == nil {
			return append(out, l.desc)
		}
		out = append(out, l.via.label())
	}
	return out
}

// chainString joins a chain for diagnostic messages.
func chainString(chain []string) string {
	return strings.Join(chain, " → ")
}
