// The sharedmut rule: callbacks handed to the worker pool run
// concurrently, so a write to anything captured from the enclosing scope
// is a data race unless it is synchronized — and it is exactly the race
// class `go test -race` only catches when two workers happen to collide
// on the same cache line during the test run. The pool's safe idioms are
// untouched: writing result[i] through the callback's own index, per-
// worker state via MapLocal, and mutex-guarded aggregation all pass.
//
// The rule is interprocedural: a callback that calls a helper — in any
// module package, at any depth — which writes a package-level variable
// without taking a lock is flagged with the derivation chain, as is a
// named function handed to the pool whose own call graph mutates shared
// state.

package lint

import (
	"go/ast"
	"go/types"
)

// sharedMutRule flags unsynchronized writes to captured or package-level
// state inside callbacks handed to internal/parallel.
type sharedMutRule struct{}

func (sharedMutRule) Name() string { return "sharedmut" }
func (sharedMutRule) Doc() string {
	return "pool callbacks must not write captured or package-level state without synchronization"
}
func (sharedMutRule) Severity() Severity { return Error }

func (r sharedMutRule) Check(p *Pass) {
	// The pool and the server own their synchronization primitives.
	if goExemptPackages[p.Pkg.Path] {
		return
	}
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(info, call)
			if !isPoolEntry(callee) {
				return true
			}
			for _, arg := range call.Args {
				switch arg := ast.Unparen(arg).(type) {
				case *ast.FuncLit:
					r.checkCallback(p, callee.Name(), arg)
				default:
					if fv := funcValueOf(info, arg); fv != nil {
						if n := p.Facts.nodeOf(fv); n != nil && n.mutates != nil {
							chain := p.Facts.mutChain(n)
							p.ReportChainf(arg, chain, "callback %s passed to parallel.%s mutates shared state without synchronization (%s); aggregate per index or guard the write with a mutex", fv.Name(), callee.Name(), chainString(chain))
						}
					}
				}
			}
			return true
		})
	}
}

// checkCallback inspects one function-literal callback for unsynchronized
// writes to captured state, directly or through its callees.
func (r sharedMutRule) checkCallback(p *Pass, poolName string, lit *ast.FuncLit) {
	info := p.Pkg.Info
	// A callback that takes a lock is synchronized by design; trust it
	// wholesale rather than attempting lock-region analysis.
	synced := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok && isSyncLock(calleeFunc(info, c)) {
			synced = true
		}
		return true
	})
	if synced {
		return
	}
	captured := func(v *types.Var) bool {
		return v != nil && !v.IsField() && (v.Pos() < lit.Pos() || v.Pos() > lit.End())
	}
	ast.Inspect(lit.Body, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				r.checkWrite(p, lit, poolName, captured, lhs)
			}
		case *ast.IncDecStmt:
			r.checkWrite(p, lit, poolName, captured, node.X)
		case *ast.CallExpr:
			if c := calleeFunc(info, node); c != nil {
				if n := p.Facts.nodeOf(c); n != nil && n.mutates != nil {
					chain := append([]string{"callback"}, p.Facts.mutChain(n)...)
					p.ReportChainf(node, chain, "callback passed to parallel.%s calls %s, which mutates shared state without synchronization (%s); aggregate per index or guard the write with a mutex", poolName, c.Name(), chainString(chain))
				}
			}
		}
		return true
	})
}

// checkWrite classifies one lvalue inside a callback and reports writes
// that land on captured state. Indexed writes into captured slices are
// the pool's order-preserving per-index idiom and pass; indexed writes
// into captured maps race on the map header and fail.
func (r sharedMutRule) checkWrite(p *Pass, lit *ast.FuncLit, poolName string, captured func(*types.Var) bool, lhs ast.Expr) {
	info := p.Pkg.Info
	report := func(at ast.Expr, form string, v *types.Var) {
		p.Reportf(at, "callback passed to parallel.%s writes %s %s captured from the enclosing scope without synchronization; aggregate per index, use MapLocal worker state, or guard with a mutex", poolName, form, v.Name())
	}
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if v, _ := info.ObjectOf(e).(*types.Var); captured(v) {
			report(e, "the variable", v)
		}
	case *ast.IndexExpr:
		if v := rootVar(info, e); captured(v) {
			if tv, ok := info.Types[e.X]; ok && isMap(tv.Type) {
				report(e, "an entry of the map", v)
			}
		}
	case *ast.StarExpr:
		if v := rootVar(info, e.X); captured(v) {
			report(e, "the target of the pointer", v)
		}
	case *ast.SelectorExpr:
		if v := rootVar(info, e); captured(v) {
			report(e, "a field of", v)
		}
	}
}
