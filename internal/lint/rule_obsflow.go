// The obsflow rule: observability is write-only from the modeling
// packages. They may bump counters, observe histograms and open spans, but
// nothing they compute may read instrument state back — a modeled number
// that depends on a hit count or on whether telemetry is enabled would
// break the guarantee that exhibits are byte-identical with observability
// on and off (the differential golden test checks the property end to end;
// this rule rejects it at the source level).

package lint

import "go/ast"

// obsPkgPath is the observability package whose read surface this rule
// guards.
const obsPkgPath = "supernpu/internal/obs"

// obsReadNames is the read surface of internal/obs. Enabled and Tracing
// are reads too: gating a modeled computation on observability state is
// exactly the feedback the determinism contract forbids.
var obsReadNames = map[string]bool{
	"Value":           true,
	"Count":           true,
	"Sum":             true,
	"BucketCounts":    true,
	"Edges":           true,
	"WritePrometheus": true,
	"Enabled":         true,
	"Tracing":         true,
}

// obsFlowRule forbids calls to the obs read surface inside the modeling
// packages.
type obsFlowRule struct{}

func (obsFlowRule) Name() string { return "obsflow" }
func (obsFlowRule) Doc() string {
	return "modeling packages may write obs instruments but never read them"
}
func (obsFlowRule) Severity() Severity { return Error }

func (r obsFlowRule) Check(p *Pass) {
	if !modelingPackages[p.Pkg.Name] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.Pkg.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != obsPkgPath {
				return true
			}
			if obsReadNames[fn.Name()] {
				p.Reportf(call, "modeling package %s reads observability state (obs.%s); instruments are write-only so modeled numbers can never depend on them", p.Pkg.Name, fn.Name())
			}
			return true
		})
	}
}
