// Module-wide call-graph construction for the interprocedural rules. The
// graph is built from the same types.Info the single-function rules use:
// every function declaration in the analyzed package set becomes a node,
// and three call shapes become edges —
//
//   - direct calls to package-level functions,
//   - method calls resolved through the static type of the receiver, and
//   - function values handed to the worker pool (any exported Map*/ForEach*
//     of internal/parallel), which the pool will invoke even though no call
//     expression appears at the hand-off site.
//
// Function literals are not separate nodes: a literal's body is attributed
// to the enclosing declaration, which over-approximates (a stored-but-never-
// called literal still contributes its facts) but can never miss a sink.
// Dynamic calls through non-pool function values and interface dispatch are
// outside the graph; the intraprocedural rules still see their bodies, so
// the blind spot is bounded to facts crossing such a call.
package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// parallelPkgPath is the worker pool; function values passed to its
// exported entry points are treated as called (edgeCallback).
const parallelPkgPath = "supernpu/internal/parallel"

// edgeKind distinguishes how control reaches the callee: an ordinary call
// expression, or a callback invoked by the worker pool. The distinction
// matters for panic propagation — the pool recovers callback panics into
// *PanicError, so edgeCallback edges do not forward panic facts.
type edgeKind int

const (
	edgeCall edgeKind = iota
	edgeCallback
)

// edge is one caller→callee arc with the source position it was derived
// from (the call expression, or the argument that names the callback).
type edge struct {
	kind   edgeKind
	callee *funcNode
	pos    token.Pos
}

// funcNode is one declared function or method plus its base and transitive
// facts (the fact fields are populated by computeFacts in facts.go).
type funcNode struct {
	fn   *types.Func
	pkg  *Package
	decl *ast.FuncDecl
	// edges lists outgoing arcs in source order, which keeps every
	// fixed-point tie-break — and therefore every reported chain —
	// deterministic.
	edges []edge

	// ---- base facts (one body walk, computeFacts) ----

	ndSink       string    // "" or the nondeterminism sink reached directly ("time.Now", "math/rand.Float64", ...)
	ndPos        token.Pos // position of the sink call
	panics       bool      // body contains a call to the predeclared panic
	panicPos     token.Pos
	panicDoc     bool   // doc comment contains the word "panic"
	hasRecover   bool   // body calls recover(); callee panics are absorbed here
	loops        bool   // body contains a for or range statement
	acceptsCtx   bool   // signature has a context.Context parameter
	ctxAwareCall string // "" or name of a directly-called context-aware callee
	ctxAwarePos  token.Pos
	writesShared bool      // assigns to a package-level variable
	sharedDesc   string    // description of the shared write ("package-level hits")
	sharedPos    token.Pos // position of the write
	selfSynced   bool      // calls a Lock/RLock method; treated as internally synchronized

	// ---- transitive facts (fixed point, computeFacts) ----

	reachND    *chainLink // reaches a nondeterminism sink through module-local calls
	escPanic   *chainLink // an undocumented panic can escape this function's frame
	loopyHot   *chainLink // loops (here or below) toward a context-aware callee without accepting ctx
	mutates    *chainLink // reaches an unsynchronized package-level write
	hotCtx     bool       // reaches a context-aware callee through ctx-less locals
	hotCtxLink *chainLink
}

// chainLink records how a transitive fact was derived: either via an edge
// to a callee that already had the fact, or directly at a sink in this
// body (via == nil, desc/pos name the sink).
type chainLink struct {
	via  *funcNode // next hop, nil at the sink
	desc string    // sink description when via == nil
	pos  token.Pos
}

// callGraph is the node set in deterministic order (package path, then
// source position).
type callGraph struct {
	nodes map[*types.Func]*funcNode
	order []*funcNode
}

// label renders the node for chain messages: "estimator.Cold",
// "jsim.(*Solver).RunChain".
func (n *funcNode) label() string {
	name := n.fn.Name()
	if recv := n.fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		ptr := ""
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			ptr = "*"
		}
		if named, ok := t.(*types.Named); ok {
			name = "(" + ptr + named.Obj().Name() + ")." + name
		}
	}
	return n.pkg.Name + "." + name
}

// funcValueOf resolves an expression used as a function value (identifier,
// package-qualified name, or method value) to its function object.
func funcValueOf(info *types.Info, e ast.Expr) *types.Func {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		f, _ := info.Uses[e].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[e.Sel].(*types.Func)
		return f
	}
	return nil
}

// isPoolEntry reports whether f is an exported fan-out entry point of the
// worker pool (Map, MapContext, MapLocal*, ForEach*...).
func isPoolEntry(f *types.Func) bool {
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != parallelPkgPath {
		return false
	}
	return strings.HasPrefix(f.Name(), "Map") || strings.HasPrefix(f.Name(), "ForEach")
}

// buildCallGraph constructs the graph over the given package set. Callees
// outside the set (standard library, unanalyzed packages) do not become
// nodes; facts about them are captured as base facts at the call site.
func buildCallGraph(pkgs []*Package) *callGraph {
	g := &callGraph{nodes: map[*types.Func]*funcNode{}}
	for _, pkg := range pkgs {
		p := pkg
		eachFuncDecl(p, func(_ *ast.File, fd *ast.FuncDecl) {
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok || fd.Body == nil {
				return
			}
			n := &funcNode{fn: fn, pkg: p, decl: fd}
			g.nodes[fn] = n
			g.order = append(g.order, n)
		})
	}
	sort.Slice(g.order, func(i, j int) bool {
		a, b := g.order[i], g.order[j]
		if a.pkg.Path != b.pkg.Path {
			return a.pkg.Path < b.pkg.Path
		}
		return a.decl.Pos() < b.decl.Pos()
	})
	for _, n := range g.order {
		n.edges = collectEdges(g, n)
	}
	return g
}

// collectEdges walks one declaration body (function literals included) and
// returns its outgoing arcs in source order.
func collectEdges(g *callGraph, n *funcNode) []edge {
	var edges []edge
	info := n.pkg.Info
	ast.Inspect(n.decl.Body, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(info, call)
		if callee != nil {
			if target, ok := g.nodes[callee]; ok {
				edges = append(edges, edge{kind: edgeCall, callee: target, pos: call.Pos()})
			}
			if isPoolEntry(callee) {
				for _, arg := range call.Args {
					if f := funcValueOf(info, arg); f != nil {
						if target, ok := g.nodes[f]; ok {
							edges = append(edges, edge{kind: edgeCallback, callee: target, pos: arg.Pos()})
						}
					}
				}
			}
		}
		return true
	})
	return edges
}
