// Shared AST/type helpers and the single-pattern rules: nondeterminism,
// nakedgo, panicboundary, and floateq. The two structural rules (maporder,
// cachekey) live in their own files.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// isFloat reports whether t's core type is a floating-point type.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// calleeFunc resolves a call expression to the function object it invokes,
// or nil for builtins, function values, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fn
	case *ast.SelectorExpr:
		id = fn.Sel
	default:
		return nil
	}
	f, _ := info.Uses[id].(*types.Func)
	return f
}

// calleeFullName returns the resolved callee's FullName ("time.Now",
// "(*strings.Builder).WriteString"), or "".
func calleeFullName(info *types.Info, call *ast.CallExpr) string {
	if f := calleeFunc(info, call); f != nil {
		return f.FullName()
	}
	return ""
}

// identObj resolves an expression to the object of the identifier it
// denotes, unwrapping parentheses and unary & / *; nil when the expression
// is not a plain (possibly addressed) identifier.
func identObj(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return identObj(info, e.X)
		}
	case *ast.StarExpr:
		return identObj(info, e.X)
	}
	return nil
}

// declaredOutside reports whether obj's declaration lies outside the
// [lo, hi] source range — i.e. the object outlives the statement being
// inspected.
func declaredOutside(obj types.Object, lo, hi token.Pos) bool {
	if obj == nil {
		return false
	}
	return obj.Pos() < lo || obj.Pos() > hi
}

// eachFuncDecl invokes fn for every function declaration in the package.
func eachFuncDecl(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				fn(f, fd)
			}
		}
	}
}

// modelingPackages names the packages whose outputs feed exhibits and
// must therefore be pure functions of their inputs.
var modelingPackages = map[string]bool{
	"jsim":        true,
	"sfq":         true,
	"estimator":   true,
	"npusim":      true,
	"scalesim":    true,
	"faultinject": true,
	"experiments": true,
}

// fmtPrinters is the set of fmt functions whose map-argument output used
// to depend on iteration order and still reads as "serialise this map";
// the modeling packages must serialise maps through an explicit sorted
// walk instead.
var fmtPrinters = map[string]bool{
	"fmt.Print": true, "fmt.Printf": true, "fmt.Println": true,
	"fmt.Sprint": true, "fmt.Sprintf": true, "fmt.Sprintln": true,
	"fmt.Fprint": true, "fmt.Fprintf": true, "fmt.Fprintln": true,
	"fmt.Errorf": true, "fmt.Append": true, "fmt.Appendf": true, "fmt.Appendln": true,
}

// nondeterminismRule forbids wall-clock reads, math/rand, and map-argument
// fmt printing inside the modeling packages. Simulator and estimator
// outputs must be pure functions of their configs; randomness comes only
// from the seeded fault model and timing only from the simulated clock.
//
// The rule is interprocedural: beyond the direct sinks, it flags calls
// from modeling code into module-local helpers — in packages the
// intraprocedural gate never inspects — whose call graph transitively
// reaches a sink, and reports the full derivation chain. Propagation
// stops at the trusted boundary packages (trustedNDPkgs): their clock
// reads feed telemetry and scheduling only, never modeled numbers.
type nondeterminismRule struct{}

func (nondeterminismRule) Name() string { return "nondeterminism" }
func (nondeterminismRule) Doc() string {
	return "modeling packages must be pure: no time.Now, no math/rand, no fmt printing of maps"
}
func (nondeterminismRule) Severity() Severity { return Error }

func (r nondeterminismRule) Check(p *Pass) {
	if !modelingPackages[p.Pkg.Name] {
		return
	}
	for _, f := range p.Pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp, "modeling package %s imports %s; all randomness must flow through the seeded fault model", p.Pkg.Name, path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := calleeFullName(p.Pkg.Info, call)
			switch {
			case name == "time.Now":
				p.Reportf(call, "modeling package %s reads the wall clock; outputs must be pure functions of the configuration", p.Pkg.Name)
			case fmtPrinters[name]:
				for _, arg := range call.Args {
					if tv, ok := p.Pkg.Info.Types[arg]; ok && isMap(tv.Type) {
						p.Reportf(arg, "%s receives a map argument; serialise maps through a sorted key walk so exhibit bytes cannot depend on iteration order", name)
						break
					}
				}
			}
			return true
		})
	}
	// Transitive contract: a sink hidden one or more helper calls away,
	// in a package outside the modeling gate. The finding lands on the
	// call site inside the modeling package — the deepest point still
	// under this rule's jurisdiction — with the full derivation chain.
	eachFuncDecl(p.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		caller, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
		callerNode := p.Facts.nodeOf(caller)
		if callerNode == nil {
			return
		}
		ast.Inspect(fd.Body, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(p.Pkg.Info, call)
			n := p.Facts.nodeOf(callee)
			if n == nil || n.reachND == nil {
				return true
			}
			// Callees inside modeling packages are flagged at their own
			// sinks; trusted boundary packages are determinism-neutral.
			if modelingPackages[n.pkg.Name] || trustedNDPkgs[n.pkg.Path] {
				return true
			}
			chain := append([]string{callerNode.label()}, p.Facts.ndChain(n)...)
			p.ReportChainf(call, chain, "call to %s reaches %s (%s); modeling outputs must be pure functions of the configuration", callee.Name(), chain[len(chain)-1], chainString(chain))
			return true
		})
	})
}

// goExemptPackages may spawn raw goroutines: internal/parallel is the
// panic-recovering pool every fan-out must go through, and internal/server
// owns the accept loop and graceful-drain machinery.
var goExemptPackages = map[string]bool{
	"supernpu/internal/parallel": true,
	"supernpu/internal/server":   true,
}

// nakedGoRule forbids go statements everywhere else: a bare goroutine that
// panics takes the whole sweep process down instead of failing one work
// item, and escapes the pool's context cancellation and bounded fan-out.
type nakedGoRule struct{}

func (nakedGoRule) Name() string { return "nakedgo" }
func (nakedGoRule) Doc() string {
	return "goroutines outside internal/parallel and internal/server must use the panic-recovering pool"
}
func (nakedGoRule) Severity() Severity { return Error }

func (r nakedGoRule) Check(p *Pass) {
	if goExemptPackages[p.Pkg.Path] {
		return
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				p.Reportf(g, "raw go statement; route fan-out through internal/parallel so panics are captured and cancellation propagates")
			}
			return true
		})
	}
}

// panicBoundaryRule forbids panics in internal packages unless the
// enclosing function documents them. With typed sentinels available for
// every boundary, a panic is only legitimate as a programmer-error trap on
// an invariant — and then the function's doc comment must say so (contain
// the word "panic"), making the trap part of the reviewed contract.
//
// The rule is interprocedural: an exported function whose callees
// transitively reach an undocumented panic is flagged at its declaration
// with the call chain, because that is where the surprise escapes the
// package's reviewed surface. Documentation anywhere on the chain
// absorbs the fact (the contract is then visible to callers), as does an
// in-body recover(); callbacks handed to the worker pool never forward
// it, since the pool recovers them into *PanicError.
type panicBoundaryRule struct{}

func (panicBoundaryRule) Name() string { return "panicboundary" }
func (panicBoundaryRule) Doc() string {
	return "panics in internal packages are allowed only in functions whose doc comment documents them"
}
func (panicBoundaryRule) Severity() Severity { return Error }

func (r panicBoundaryRule) Check(p *Pass) {
	if !strings.Contains(p.Pkg.Path+"/", "/internal/") {
		return
	}
	eachFuncDecl(p.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		documented := fd.Doc != nil && strings.Contains(strings.ToLower(fd.Doc.Text()), "panic")
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			// Panics inside function literals (e.g. a re-panic in a
			// recover wrapper) are judged against the same enclosing
			// declaration's doc.
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" && p.Pkg.Info.Uses[id] == types.Universe.Lookup("panic") {
				if !documented {
					p.Reportf(call, "%s panics but its doc comment does not say so; return a typed sentinel or document the invariant", fd.Name.Name)
				}
			}
			return true
		})
		// Transitive contract: an undocumented panic escaping through an
		// exported function that neither documents nor recovers it. The
		// finding lands on the declaration — the reviewed boundary the
		// panic crosses unseen.
		if documented || !fd.Name.IsExported() {
			return
		}
		fn, _ := p.Pkg.Info.Defs[fd.Name].(*types.Func)
		n := p.Facts.nodeOf(fn)
		if n == nil || n.hasRecover {
			return
		}
		for i := range n.edges {
			e := &n.edges[i]
			if e.kind != edgeCall || e.callee == n || e.callee.escPanic == nil {
				continue
			}
			chain := append([]string{n.label()}, p.Facts.panicChain(e.callee)...)
			p.ReportChainf(fd, chain, "exported %s can panic via %s (%s) but its doc comment does not say so; document the invariant or recover at the boundary", fd.Name.Name, e.callee.fn.Name(), chainString(chain))
			break
		}
	})
}

// floatEqRule flags == and != between floating-point operands. Exact
// equality of two computed floats is almost always a latent 1-ULP bug;
// comparisons against a constant (zero-value sentinels, flag defaults) are
// exempt, as is the x != x NaN probe.
type floatEqRule struct{}

func (floatEqRule) Name() string { return "floateq" }
func (floatEqRule) Doc() string {
	return "computed floating-point values must not be compared with == or !="
}
func (floatEqRule) Severity() Severity { return Warning }

func (r floatEqRule) Check(p *Pass) {
	info := p.Pkg.Info
	isConst := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil
	}
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			xt, yt := info.Types[be.X].Type, info.Types[be.Y].Type
			if !isFloat(xt) && !isFloat(yt) {
				return true
			}
			if isConst(be.X) || isConst(be.Y) {
				return true
			}
			if be.Op == token.NEQ && sameSimpleExpr(be.X, be.Y) {
				return true // x != x is the canonical NaN check
			}
			p.Reportf(be, "floating-point %s comparison; compare with an epsilon or restructure to avoid exact equality", be.Op)
			return true
		})
	}
}

// sameSimpleExpr reports whether two expressions are the identical chain
// of identifiers and field selections.
func sameSimpleExpr(a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch a := a.(type) {
	case *ast.Ident:
		bid, ok := b.(*ast.Ident)
		return ok && a.Name == bid.Name
	case *ast.SelectorExpr:
		bs, ok := b.(*ast.SelectorExpr)
		return ok && a.Sel.Name == bs.Sel.Name && sameSimpleExpr(a.X, bs.X)
	}
	return false
}
