// The ctxflow rule: cancellation must flow through the modeling packages,
// never originate inside them. The resilience layer (internal/guard) only
// works if every long-running loop polls a context that the caller — the
// CLI's signal handler, the server's request deadline — actually controls.
// A modeling function that manufactures its own root context with
// context.Background() or context.TODO() cuts that wire: the loop below it
// becomes uncancellable no matter what the caller does. Likewise an
// exported entry point that loops over steps, cycles or sweep points while
// calling context-aware callees, but does not itself accept a
// context.Context, strands its callers one hop away from cancellation.

package lint

import (
	"go/ast"
	"go/types"
)

// ctxFlowRule enforces the two wiring contracts in the modeling packages:
// no context.Background()/context.TODO() calls, and exported functions that
// loop while invoking context-aware callees must accept a context.Context
// themselves.
type ctxFlowRule struct{}

func (ctxFlowRule) Name() string { return "ctxflow" }
func (ctxFlowRule) Doc() string {
	return "modeling packages must thread the caller's context: no context.Background/TODO, and exported looping entry points accept a ctx"
}
func (ctxFlowRule) Severity() Severity { return Error }

// isContextType reports whether t is the context.Context interface type.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// signatureAcceptsContext reports whether any parameter (receiver excluded)
// of sig is a context.Context.
func signatureAcceptsContext(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func (r ctxFlowRule) Check(p *Pass) {
	if !modelingPackages[p.Pkg.Name] {
		return
	}
	// Contract 1: no manufactured root contexts anywhere in the package —
	// function bodies, package-level variable initialisers, methods alike.
	for _, f := range p.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch calleeFullName(p.Pkg.Info, call) {
			case "context.Background":
				p.Reportf(call, "modeling package %s calls context.Background(); accept the caller's context so the loop below stays cancellable", p.Pkg.Name)
			case "context.TODO":
				p.Reportf(call, "modeling package %s calls context.TODO(); accept the caller's context so the loop below stays cancellable", p.Pkg.Name)
			}
			return true
		})
	}
	// Contract 2: an exported function that loops and calls context-aware
	// callees is a long-running entry point; it must accept a ctx itself or
	// its callers can never cancel it.
	eachFuncDecl(p.Pkg, func(_ *ast.File, fd *ast.FuncDecl) {
		if fd.Body == nil || !fd.Name.IsExported() {
			return
		}
		fn, ok := p.Pkg.Info.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		if signatureAcceptsContext(fn.Type().(*types.Signature)) {
			return
		}
		loops, ctxCallee := false, ""
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				loops = true
			case *ast.CallExpr:
				if ctxCallee != "" {
					return true
				}
				if callee := calleeFunc(p.Pkg.Info, n); callee != nil {
					if sig, ok := callee.Type().(*types.Signature); ok && signatureAcceptsContext(sig) {
						ctxCallee = callee.Name()
					}
				}
			}
			return true
		})
		if loops && ctxCallee != "" {
			p.Reportf(fd, "exported %s loops while calling the context-aware %s but does not accept a context.Context; thread the caller's ctx through so the sweep stays cancellable", fd.Name.Name, ctxCallee)
		}
		// Transitive contract: the loop and the context-aware callee may
		// sit any number of ctx-less helper calls below the exported
		// entry point — the loopyHot fact follows the whole chain, and
		// the finding lands on the declaration with the derivation. When
		// the intraprocedural check above also fired, dedupe keeps the
		// chain-carrying diagnostic.
		n := p.Facts.nodeOf(fn)
		if n == nil || n.loopyHot == nil {
			return
		}
		chain := p.Facts.ctxChain(n)
		p.ReportChainf(fd, chain, "exported %s drives a context-aware callee from a loop but does not accept a context.Context (%s); thread the caller's ctx through so the sweep stays cancellable", fd.Name.Name, chainString(chain))
	})
}
