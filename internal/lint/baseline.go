// Baseline gating: CI fails only on findings that are not in the
// committed baseline, so new rules (or newly sharpened ones) can land
// without freezing the tree while every *new* violation still blocks.
//
// Identity is position-independent: a finding is identified by
// (rule, module-root-relative file, enclosing symbol) with a count per
// identity, so line drift from unrelated edits never churns the baseline
// — but a second violation of the same rule inside the same function is
// caught, because it exceeds the baselined count. Entries that no longer
// match anything are reported as stale so the baseline only ever shrinks.

package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// BaselineEntry is one accepted finding identity.
type BaselineEntry struct {
	Rule string `json:"rule"`
	// File is module-root-relative with forward slashes.
	File   string `json:"file"`
	Symbol string `json:"symbol"`
	// Count is how many findings of this identity are accepted.
	Count int `json:"count"`
	// Reason documents why the finding is baselined rather than fixed;
	// reviewed like a //lint:allow justification.
	Reason string `json:"reason,omitempty"`
}

// Baseline is the committed set of accepted findings.
type Baseline struct {
	Version  int             `json:"version"`
	Findings []BaselineEntry `json:"findings"`
}

// baselineKey is the position-independent identity.
func baselineKey(rule, file, symbol string) string {
	return rule + "\x00" + file + "\x00" + symbol
}

// LoadBaseline reads and validates a baseline file.
func LoadBaseline(path string) (*Baseline, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var b Baseline
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("lint: parsing %s: %w", path, err)
	}
	if b.Version != 1 {
		return nil, fmt.Errorf("lint: %s: unsupported baseline version %d", path, b.Version)
	}
	return &b, nil
}

// NewBaseline aggregates a result into baseline entries, sorted by
// identity. root relativizes the file paths.
func NewBaseline(res Result, root string) *Baseline {
	counts := map[string]*BaselineEntry{}
	for _, d := range res.Diags {
		file := relPath(root, d.File)
		key := baselineKey(d.Rule, file, d.Symbol)
		if e, ok := counts[key]; ok {
			e.Count++
			continue
		}
		counts[key] = &BaselineEntry{Rule: d.Rule, File: file, Symbol: d.Symbol, Count: 1}
	}
	b := &Baseline{Version: 1}
	for _, e := range counts {
		b.Findings = append(b.Findings, *e)
	}
	sort.Slice(b.Findings, func(i, j int) bool {
		a, c := b.Findings[i], b.Findings[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Symbol != c.Symbol {
			return a.Symbol < c.Symbol
		}
		return a.Rule < c.Rule
	})
	return b
}

// Write renders the baseline as stable, indented JSON.
func (b *Baseline) Write(w io.Writer) error {
	if b.Findings == nil {
		b.Findings = []BaselineEntry{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ApplyBaseline splits res into the findings not covered by the baseline
// (fresh — these gate CI) and reports entries the tree no longer
// produces (stale — candidates for deletion). Within one identity the
// first Count findings in canonical order are absorbed; any beyond that
// are fresh.
func ApplyBaseline(res Result, root string, b *Baseline) (fresh Result, stale []BaselineEntry) {
	allowed := map[string]int{}
	for _, e := range b.Findings {
		allowed[baselineKey(e.Rule, e.File, e.Symbol)] += e.Count
	}
	used := map[string]int{}
	fresh.Suppressed = res.Suppressed
	for _, d := range res.Diags {
		key := baselineKey(d.Rule, relPath(root, d.File), d.Symbol)
		if used[key] < allowed[key] {
			used[key]++
			continue
		}
		fresh.Diags = append(fresh.Diags, d)
	}
	for _, e := range b.Findings {
		key := baselineKey(e.Rule, e.File, e.Symbol)
		if rest := allowed[key] - used[key]; rest > 0 {
			s := e
			s.Count = rest
			stale = append(stale, s)
			used[key] = allowed[key] // report each identity once
		}
	}
	sort.Slice(stale, func(i, j int) bool {
		a, c := stale[i], stale[j]
		if a.File != c.File {
			return a.File < c.File
		}
		if a.Symbol != c.Symbol {
			return a.Symbol < c.Symbol
		}
		return a.Rule < c.Rule
	})
	return fresh, stale
}
