// SARIF 2.1.0 output: the interchange format GitHub code scanning ingests
// to annotate pull requests. The writer emits one run with the full rule
// registry as the tool's rule metadata and one result per diagnostic,
// with module-root-relative, percent-escaped artifact URIs. Everything is
// emitted in the canonical diagnostic order over sorted structures, so
// two runs over one tree are byte-identical — the analyzer's own output
// honours the determinism contract it enforces.

package lint

import (
	"encoding/json"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// sarifSchemaURI and sarifVersion pin the emitted format; the golden
// snapshot test validates the shape against this contract.
const (
	sarifSchemaURI = "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json"
	sarifVersion   = "2.1.0"
)

// The sarif* types mirror the subset of the 2.1.0 schema the writer
// emits; TestSARIFGolden decodes the snapshot back through them with
// unknown fields disallowed.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string          `json:"name"`
	InformationURI string          `json:"informationUri"`
	Rules          []sarifRuleDesc `json:"rules"`
}

type sarifRuleDesc struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	DefaultConfiguration sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// sarifLevel maps the repo's severities onto SARIF result levels.
func sarifLevel(s Severity) string {
	if s == Error {
		return "error"
	}
	return "warning"
}

// escapeSARIFURI percent-escapes a slash-separated path for use as a
// SARIF artifact URI: RFC 3986 unreserved characters and the path
// separator pass through, everything else (spaces, '%', non-ASCII bytes)
// becomes %XX with uppercase hex, so the escaping round-trips through any
// standard URI decoder. FuzzSARIFEscape holds that property.
func escapeSARIFURI(path string) string {
	var b strings.Builder
	for i := 0; i < len(path); i++ {
		c := path[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '.', c == '_', c == '~', c == '/':
			b.WriteByte(c)
		default:
			const hex = "0123456789ABCDEF"
			b.WriteByte('%')
			b.WriteByte(hex[c>>4])
			b.WriteByte(hex[c&0xF])
		}
	}
	return b.String()
}

// relPath renders file relative to the module root with forward slashes;
// files outside the root keep their absolute path (still valid SARIF,
// just not repo-relative).
func relPath(root, file string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}

// WriteSARIF renders the result as a SARIF 2.1.0 log. root is the module
// root; artifact URIs are emitted relative to it under the SRCROOT base
// id, which is what code-scanning uploads expect.
func WriteSARIF(w io.Writer, res Result, root string) error {
	rules := Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i].Name() < rules[j].Name() })
	ruleIndex := map[string]int{}
	descs := make([]sarifRuleDesc, len(rules))
	for i, r := range rules {
		ruleIndex[r.Name()] = i
		descs[i] = sarifRuleDesc{
			ID:                   r.Name(),
			ShortDescription:     sarifMessage{Text: r.Doc()},
			DefaultConfiguration: sarifConfig{Level: sarifLevel(r.Severity())},
		}
	}
	results := make([]sarifResult, 0, len(res.Diags))
	for _, d := range res.Diags {
		// Transitive messages already render their chain inline.
		msg := d.Message
		idx, ok := ruleIndex[d.Rule]
		if !ok {
			idx = -1
		}
		results = append(results, sarifResult{
			RuleID:    d.Rule,
			RuleIndex: idx,
			Level:     sarifLevel(d.Severity),
			Message:   sarifMessage{Text: msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       escapeSARIFURI(relPath(root, d.File)),
						URIBaseID: "SRCROOT",
					},
					Region: sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		})
	}
	log := sarifLog{
		Schema:  sarifSchemaURI,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "supernpu-lint", InformationURI: "https://github.com/supernpu/supernpu", Rules: descs}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(log)
}
