package lint

import (
	"bytes"
	"encoding/json"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runFixtureSARIF loads the ndcross fixture closure, runs the
// nondeterminism rule over it, and renders the result as SARIF relative
// to the module root, so every artifact URI in the log is a stable
// repo-relative path.
func runFixtureSARIF(t *testing.T) []byte {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixtureClosure(t, "ndcross")
	res := Run(pkgs, []Rule{RuleByName("nondeterminism")})
	var buf bytes.Buffer
	if err := WriteSARIF(&buf, res, root); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSARIFGolden pins the writer's output byte-for-byte against the
// committed snapshot and decodes the snapshot back through the schema
// mirror types with unknown fields disallowed, so any drift in either
// the emitted shape or the 2.1.0 subset we claim to emit fails loudly.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/lint -run SARIFGolden.
func TestSARIFGolden(t *testing.T) {
	got := runFixtureSARIF(t)
	golden := filepath.Join("testdata", "golden", "lint.sarif")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (regenerate with UPDATE_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("SARIF output drifted from golden snapshot %s; rerun with UPDATE_GOLDEN=1 if the change is intended\ngot:\n%s", golden, got)
	}

	dec := json.NewDecoder(bytes.NewReader(want))
	dec.DisallowUnknownFields()
	var log sarifLog
	if err := dec.Decode(&log); err != nil {
		t.Fatalf("golden does not decode through the schema mirror types: %v", err)
	}
	if log.Schema != sarifSchemaURI || log.Version != sarifVersion {
		t.Errorf("schema pin drifted: %s %s", log.Schema, log.Version)
	}
	if len(log.Runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "supernpu-lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(Rules()) {
		t.Errorf("driver lists %d rules, registry has %d", len(run.Tool.Driver.Rules), len(Rules()))
	}
	if len(run.Results) < 2 {
		t.Fatalf("fixture run produced %d results, want the two ndcross findings", len(run.Results))
	}
	for _, r := range run.Results {
		if r.RuleIndex < 0 || r.RuleIndex >= len(run.Tool.Driver.Rules) ||
			run.Tool.Driver.Rules[r.RuleIndex].ID != r.RuleID {
			t.Errorf("result ruleIndex %d does not point at rule %s", r.RuleIndex, r.RuleID)
		}
		for _, loc := range r.Locations {
			art := loc.PhysicalLocation.ArtifactLocation
			if art.URIBaseID != "SRCROOT" {
				t.Errorf("uriBaseId %q, want SRCROOT", art.URIBaseID)
			}
			if strings.HasPrefix(art.URI, "/") || strings.Contains(art.URI, "..") {
				t.Errorf("artifact URI %q is not repo-relative", art.URI)
			}
			if loc.PhysicalLocation.Region.StartLine <= 0 {
				t.Errorf("result for %s has no line", art.URI)
			}
		}
	}
}

// TestRunByteIdentity performs two fully independent load+run passes and
// demands byte-identical text, JSON, and SARIF renderings — the
// analyzer's own output must honour the determinism contract it
// enforces, including across map-heavy structures like the call graph.
func TestRunByteIdentity(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	render := func() (text, jsonOut, sarif []byte) {
		t.Helper()
		pkgs := loadFixtureClosure(t, "sharedmut")
		pkgs = append(pkgs, loadFixtureClosure(t, "ndcross")...)
		res := Run(pkgs, Rules())
		if len(res.Diags) == 0 {
			t.Fatal("fixture run produced no findings; identity check would be vacuous")
		}
		var tb, jb, sb bytes.Buffer
		WriteText(&tb, res)
		if err := WriteJSON(&jb, res); err != nil {
			t.Fatal(err)
		}
		if err := WriteSARIF(&sb, res, root); err != nil {
			t.Fatal(err)
		}
		return tb.Bytes(), jb.Bytes(), sb.Bytes()
	}
	t1, j1, s1 := render()
	t2, j2, s2 := render()
	if !bytes.Equal(t1, t2) {
		t.Error("text output differs between two identical runs")
	}
	if !bytes.Equal(j1, j2) {
		t.Error("JSON output differs between two identical runs")
	}
	if !bytes.Equal(s1, s2) {
		t.Error("SARIF output differs between two identical runs")
	}
}

// TestBaselineRoundTrip writes the current findings as a baseline and
// re-applies it: everything must be absorbed with nothing stale.
func TestBaselineRoundTrip(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixtureClosure(t, "ndcross")
	res := Run(pkgs, []Rule{RuleByName("nondeterminism")})
	if len(res.Diags) < 2 {
		t.Fatalf("fixture produced %d findings, want at least 2", len(res.Diags))
	}

	b := NewBaseline(res, root)
	var buf bytes.Buffer
	if err := b.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}

	fresh, stale := ApplyBaseline(res, root, loaded)
	if len(fresh.Diags) != 0 {
		t.Errorf("round-trip left %d fresh finding(s): %v", len(fresh.Diags), fresh.Diags)
	}
	if len(stale) != 0 {
		t.Errorf("round-trip reported %d stale entr(ies): %v", len(stale), stale)
	}
}

// TestBaselineCountExceeded verifies the per-identity count: baselining
// one finding of an identity the tree produces twice leaves exactly one
// fresh.
func TestBaselineCountExceeded(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixtureClosure(t, "ndcross")
	res := Run(pkgs, []Rule{RuleByName("nondeterminism")})
	full := NewBaseline(res, root)
	if len(full.Findings) == 0 {
		t.Fatal("no findings to baseline")
	}
	// Duplicate the first diagnostic so its identity count exceeds the
	// baseline by one.
	res.Diags = append(res.Diags, res.Diags[0])
	fresh, stale := ApplyBaseline(res, root, full)
	if len(fresh.Diags) != 1 {
		t.Fatalf("got %d fresh finding(s), want 1 (the over-count)", len(fresh.Diags))
	}
	if fresh.Diags[0].Rule != res.Diags[0].Rule || fresh.Diags[0].Symbol != res.Diags[0].Symbol {
		t.Errorf("fresh finding %v is not the duplicated identity", fresh.Diags[0])
	}
	if len(stale) != 0 {
		t.Errorf("unexpected stale entries: %v", stale)
	}
}

// TestBaselineStale verifies entries the tree no longer produces are
// surfaced for deletion rather than silently kept.
func TestBaselineStale(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs := loadFixtureClosure(t, "ndcross")
	res := Run(pkgs, []Rule{RuleByName("nondeterminism")})
	b := NewBaseline(res, root)
	b.Findings = append(b.Findings, BaselineEntry{
		Rule: "nondeterminism", File: "internal/gone/gone.go", Symbol: "Vanished", Count: 2,
	})
	fresh, stale := ApplyBaseline(res, root, b)
	if len(fresh.Diags) != 0 {
		t.Errorf("got %d fresh finding(s), want 0", len(fresh.Diags))
	}
	if len(stale) != 1 || stale[0].Symbol != "Vanished" || stale[0].Count != 2 {
		t.Errorf("stale = %v, want the Vanished entry with count 2", stale)
	}
}

// TestLoadBaselineRejectsVersion pins the version gate.
func TestLoadBaselineRejectsVersion(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(`{"version":2,"findings":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("version 2 baseline loaded without error")
	}
}

// FuzzSARIFEscape holds the escaping contract: the output contains only
// bytes legal in a SARIF artifact URI path, and decoding it with a
// standard percent-decoder recovers the input exactly.
func FuzzSARIFEscape(f *testing.F) {
	f.Add("internal/lint/lint.go")
	f.Add("path with spaces/ünïcode.go")
	f.Add("100%/a+b&c#d?e.go")
	f.Add("")
	f.Add("%%%")
	f.Fuzz(func(t *testing.T, path string) {
		esc := escapeSARIFURI(path)
		for i := 0; i < len(esc); i++ {
			c := esc[i]
			switch {
			case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
				c == '-', c == '.', c == '_', c == '~', c == '/', c == '%':
			default:
				t.Fatalf("escapeSARIFURI(%q) emitted illegal byte %q in %q", path, c, esc)
			}
		}
		round, err := url.PathUnescape(esc)
		if err != nil {
			t.Fatalf("escapeSARIFURI(%q) = %q does not decode: %v", path, esc, err)
		}
		if round != path {
			t.Fatalf("round-trip lost data: %q -> %q -> %q", path, esc, round)
		}
	})
}
