// The maporder rule: range-over-map with an order-sensitive body. This is
// the exact bug class that shipped in PR 2, where chip power wobbled by
// 1 ULP between runs because gate counts were summed in map iteration
// order. Go randomises that order on purpose, so any float accumulation,
// output write, or unsorted collection under a map range is a
// reproducibility bug waiting for a hash-seed change.

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

type mapOrderRule struct{}

func (mapOrderRule) Name() string { return "maporder" }
func (mapOrderRule) Doc() string {
	return "map iteration must not accumulate floats, write output, or collect results without a sort"
}
func (mapOrderRule) Severity() Severity { return Error }

// sortCallees are the stdlib entry points that establish a deterministic
// order over a just-collected slice.
var sortCallees = map[string]bool{
	"sort.Sort": true, "sort.Stable": true, "sort.Slice": true, "sort.SliceStable": true,
	"sort.Strings": true, "sort.Ints": true, "sort.Float64s": true,
	"slices.Sort": true, "slices.SortFunc": true, "slices.SortStableFunc": true,
}

func (r mapOrderRule) Check(p *Pass) {
	info := p.Pkg.Info
	for _, f := range p.Pkg.Files {
		// Track the statement list enclosing each range so the
		// collect-then-sort idiom can be recognised: the sort call is a
		// sibling statement after the loop.
		var inspectBlock func(stmts []ast.Stmt)
		inspectNode := func(n ast.Node) {
			ast.Inspect(n, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BlockStmt:
					inspectBlock(n.List)
					return false
				case *ast.CaseClause:
					inspectBlock(n.Body)
					return false
				case *ast.CommClause:
					inspectBlock(n.Body)
					return false
				}
				return true
			})
		}
		inspectBlock = func(stmts []ast.Stmt) {
			for i, s := range stmts {
				rs, ok := s.(*ast.RangeStmt)
				if ok {
					if tv, ok := info.Types[rs.X]; ok && isMap(tv.Type) {
						r.checkMapRange(p, rs, stmts[i+1:])
					}
				}
				inspectNode(s)
			}
		}
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				inspectBlock(fd.Body.List)
			}
		}
	}
}

// checkMapRange inspects one range-over-map body; rest holds the sibling
// statements following the loop, where a redeeming sort may appear.
func (r mapOrderRule) checkMapRange(p *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	info := p.Pkg.Info
	lo, hi := rs.Pos(), rs.End()
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is checked on its own; its body's
			// findings should not double-report against the outer loop.
			if n != rs {
				if tv, ok := info.Types[n.X]; ok && isMap(tv.Type) {
					return false
				}
			}
		case *ast.AssignStmt:
			r.checkAssign(p, n, lo, hi, rest)
		case *ast.CallExpr:
			r.checkOutputCall(p, n, lo, hi)
		}
		return true
	})
}

// checkAssign flags order-sensitive updates of variables that outlive the
// loop: float accumulation (compound or x = x op y) and appends without a
// following sort.
func (r mapOrderRule) checkAssign(p *Pass, as *ast.AssignStmt, lo, hi token.Pos, rest []ast.Stmt) {
	info := p.Pkg.Info
	for i, lhs := range as.Lhs {
		obj := identObj(info, lhs)
		if obj == nil || !declaredOutside(obj, lo, hi) {
			continue
		}
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if isFloat(v.Type()) {
				p.Reportf(as, "float accumulation into %s over unordered map iteration; collect keys, sort, then accumulate", obj.Name())
			}
		case token.ASSIGN:
			if i >= len(as.Rhs) {
				continue
			}
			rhs := as.Rhs[i]
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" && len(call.Args) > 0 &&
					identObj(info, call.Args[0]) == obj {
					if !sortedAfter(info, obj, rest) {
						p.Reportf(as, "append to %s under map iteration without a following sort; exhibit order would track the map's hash seed", obj.Name())
					}
					continue
				}
			}
			if isFloat(v.Type()) && exprUsesObj(info, rhs, obj) {
				p.Reportf(as, "float accumulation into %s over unordered map iteration; collect keys, sort, then accumulate", obj.Name())
			}
		}
	}
}

// checkOutputCall flags calls that emit bytes during map iteration: fmt
// printing and Write-family methods on destinations declared outside the
// loop. Exhibits are byte-compared, so emission order is part of the
// contract.
func (r mapOrderRule) checkOutputCall(p *Pass, call *ast.CallExpr, lo, hi token.Pos) {
	info := p.Pkg.Info
	name := calleeFullName(info, call)
	if name == "" {
		return
	}
	if fmtPrinters[name] && name != "fmt.Sprintf" && name != "fmt.Sprint" && name != "fmt.Sprintln" && name != "fmt.Errorf" {
		// Fprint* writes to its first argument; Print* writes to stdout
		// (always outside the loop).
		if strings.HasPrefix(name, "fmt.Fprint") && len(call.Args) > 0 {
			if obj := identObj(info, call.Args[0]); obj != nil && !declaredOutside(obj, lo, hi) {
				return
			}
		}
		p.Reportf(call, "%s inside map iteration; emission order would track the map's hash seed", name)
		return
	}
	// Write-family methods on an out-of-loop receiver (strings.Builder,
	// bytes.Buffer, io.Writer, bufio.Writer, ...).
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	m := sel.Sel.Name
	if m != "Write" && m != "WriteString" && m != "WriteByte" && m != "WriteRune" {
		return
	}
	if f, ok := info.Uses[sel.Sel].(*types.Func); !ok || f.Type().(*types.Signature).Recv() == nil {
		return
	}
	if obj := identObj(info, sel.X); obj != nil && declaredOutside(obj, lo, hi) {
		p.Reportf(call, "%s.%s inside map iteration; emission order would track the map's hash seed", obj.Name(), m)
	}
}

// sortedAfter reports whether one of the trailing sibling statements sorts
// the collected slice: a call to a sort/slices entry point that mentions
// obj in its arguments, or an assignment of such a call's result.
func sortedAfter(info *types.Info, obj types.Object, rest []ast.Stmt) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if sortCallees[calleeFullName(info, call)] && callMentionsObj(info, call, obj) {
				found = true
				return false
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// callMentionsObj reports whether any argument expression of call refers
// to obj.
func callMentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	for _, arg := range call.Args {
		if exprUsesObj(info, arg, obj) {
			return true
		}
	}
	return false
}

// exprUsesObj reports whether e mentions obj anywhere.
func exprUsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			used = true
		}
		return !used
	})
	return used
}
