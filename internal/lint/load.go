// Module loading without golang.org/x/tools: packages inside the module
// are parsed and type-checked by a lazy recursive loader, while standard
// library imports are delegated to the stdlib's own source importer
// (go/importer with the "source" compiler), which type-checks GOROOT
// sources directly. The module has no external dependencies, so those two
// resolvers cover every import path that can appear in the tree.

package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path ("supernpu/internal/sfq").
	Path string
	// Name is the package clause name ("sfq").
	Name string
	// Dir is the absolute directory the files were read from.
	Dir string
	// Fset is shared across every package of one load.
	Fset *token.FileSet
	// Files holds the parsed non-test source files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the use/def/type maps rules resolve identifiers with.
	Info *types.Info
}

// The standard-library resolver is shared process-wide: the source
// importer memoises each GOROOT package it type-checks, so sharing one
// instance across every LoadModule/LoadDir call means fmt, context, sync
// and friends are checked from source exactly once per process instead of
// once per load (the difference between the cold and warm numbers of
// BenchmarkLintModule). The importer is bound to its FileSet, so the
// FileSet must be shared too — every load parses module files into it,
// which keeps all positions, std and module alike, resolvable. Neither
// structure is safe for concurrent mutation, so loadMu serialises every
// load entry point.
var (
	loadMu     sync.Mutex
	sharedFset *token.FileSet
	sharedStd  types.ImporterFrom
)

// sharedImporter returns the process-wide FileSet and std importer,
// creating them on first use. Callers must hold loadMu.
func sharedImporter() (*token.FileSet, types.ImporterFrom) {
	if sharedFset == nil {
		sharedFset = token.NewFileSet()
		sharedStd = importer.ForCompiler(sharedFset, "source", nil).(types.ImporterFrom)
	}
	return sharedFset, sharedStd
}

// loader resolves imports for one LoadModule call. It implements
// types.ImporterFrom so the type checker can pull module-local packages
// on demand, in dependency order, with memoisation.
type loader struct {
	fset    *token.FileSet
	modRoot string
	modPath string
	std     types.ImporterFrom
	pkgs    map[string]*Package // by import path, completed loads
	loading map[string]bool     // cycle guard
}

func newLoader(modRoot, modPath string) *loader {
	fset, std := sharedImporter()
	return &loader{
		fset:    fset,
		modRoot: modRoot,
		modPath: modPath,
		std:     std,
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.modRoot, 0)
}

// ImportFrom implements types.ImporterFrom.
func (l *loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		pkg, err := l.load(filepath.Join(l.modRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// load parses and type-checks the package in dir under the given import
// path, memoising the result. Import cycles inside the module are reported
// rather than recursed into.
func (l *loader) load(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, name, err := parseDir(l.fset, dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Name:  name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test .go file in dir with comments attached.
// The package name is taken from the files; mixed package clauses (other
// than the lone-main split, which cannot occur for non-test files in one
// directory) are an error.
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, "", fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, "", fmt.Errorf("lint: %w", err)
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, "", fmt.Errorf("lint: %s mixes packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, pkgName, nil
}

// ModulePath reads the module path out of root's go.mod.
func ModulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module clause in %s/go.mod", root)
}

// FindModuleRoot walks upward from dir to the nearest directory holding a
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod at or above the working directory")
		}
		dir = parent
	}
}

// LoadModule loads and type-checks every buildable package under root
// (skipping testdata, vendor, and hidden directories), returning them
// sorted by import path.
func LoadModule(root string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := ModulePath(root)
	if err != nil {
		return nil, err
	}
	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dirs = append(dirs, filepath.Dir(path))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)
	l := newLoader(root, modPath)
	var pkgs []*Package
	seen := map[string]bool{}
	for _, dir := range dirs {
		if seen[dir] {
			continue
		}
		seen[dir] = true
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return nil, err
		}
		path := modPath
		if rel != "." {
			path = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := l.load(dir, path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads a single directory as a package under an explicit import
// path; the rule fixtures under testdata use it to present themselves as
// internal packages so path-gated rules apply.
func LoadDir(dir, modRoot, importPath string) (*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	modPath, err := ModulePath(modRoot)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	return l.load(dir, importPath)
}

// LoadClosure loads dir like LoadDir but returns every module-local
// package the load pulled in — the root package plus its in-module
// dependency closure, sorted by import path. The interprocedural fixture
// tests use it: cross-package call chains only resolve when caller and
// callee were type-checked by the same loader, so their function objects
// are identical.
func LoadClosure(dir, modRoot, importPath string) ([]*Package, error) {
	loadMu.Lock()
	defer loadMu.Unlock()
	modPath, err := ModulePath(modRoot)
	if err != nil {
		return nil, err
	}
	l := newLoader(modRoot, modPath)
	if _, err := l.load(dir, importPath); err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, pkg := range l.pkgs {
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
