package npusim

import (
	"context"
	"errors"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/guard"
	"supernpu/internal/workload"
)

// A pre-canceled context must abort the simulation with the guard taxonomy
// and must not poison the cache: a later call with a live context computes
// the report normally.
func TestSimulateCanceledNotMemoised(t *testing.T) {
	cfg := arch.SuperNPU()
	// A distinct batch keeps this entry away from other tests' cache hits.
	const batch = 7
	net := workload.ResNet50()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, cfg, net, batch); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}

	rep, err := Simulate(context.Background(), cfg, net, batch)
	if err != nil {
		t.Fatalf("retry after canceled attempt: %v", err)
	}
	if rep.TotalCycles <= 0 {
		t.Fatalf("retry produced an empty report: %+v", rep)
	}
}
