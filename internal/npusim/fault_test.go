package npusim

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/faultinject"
	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

func testNet(t *testing.T) workload.Network {
	t.Helper()
	for _, n := range workload.All() {
		if n.Name == "AlexNet" {
			return n
		}
	}
	t.Fatal("AlexNet not in workload.All()")
	return workload.Network{}
}

func TestSimulateFaultedDisabledSharesNominalCache(t *testing.T) {
	net := testNet(t)
	nominal, err := Simulate(context.Background(), arch.SuperNPU(), net, 1)
	if err != nil {
		t.Fatal(err)
	}
	same, err := SimulateFaulted(context.Background(), arch.SuperNPU(), net, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if same != nominal {
		t.Fatal("disabled fault model did not share the nominal cache entry")
	}
	if nominal.Faults != nil {
		t.Fatal("nominal report carries fault stats")
	}
}

func TestSimulateFaultedChargesAndDegrades(t *testing.T) {
	net := testNet(t)
	fm := &faultinject.Model{Seed: 42, IcSpread: 0.05, PulseDrop: 1e-6, BitFlip: 1e-8, MarginErosion: 0.1}
	nominal, err := Simulate(context.Background(), arch.SuperNPU(), net, 1)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := SimulateFaulted(context.Background(), arch.SuperNPU(), net, 1, fm)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Faults == nil {
		t.Fatal("faulted report carries no fault stats")
	}
	if faulted.Faults.DroppedPulses <= 0 || faulted.Faults.RetryCycles <= 0 {
		t.Fatalf("pulse drops not charged: %+v", faulted.Faults)
	}
	if faulted.Faults.BitFlips <= 0 || faulted.Faults.Accuracy >= 1 || faulted.Faults.Accuracy < 0 {
		t.Fatalf("bit flips not reflected in the accuracy proxy: %+v", faulted.Faults)
	}
	if faulted.Frequency >= nominal.Frequency {
		t.Fatalf("margin erosion did not lower frequency: %g >= %g", faulted.Frequency, nominal.Frequency)
	}
	// Total cycles can shrink (a slower clock needs fewer cycles per DRAM
	// byte), but the batch latency in seconds must grow.
	if faulted.Time <= nominal.Time {
		t.Fatalf("faults did not lengthen the batch latency: %g <= %g", faulted.Time, nominal.Time)
	}
}

func TestSimulateFaultedByteIdenticalAcrossWorkerCounts(t *testing.T) {
	net := testNet(t)
	fm := &faultinject.Model{Seed: 7, IcSpread: 0.03, PulseDrop: 1e-6, BitFlip: 1e-8}
	defer parallel.SetWorkers(0)
	var renders []string
	for _, w := range []int{1, 4} {
		parallel.SetWorkers(w)
		simcache.ClearAll() // force a genuine re-simulation per worker count
		r, err := SimulateFaulted(context.Background(), arch.SuperNPU(), net, 2, fm)
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, fmt.Sprintf("%+v %+v", *r.Faults, r.Layers))
	}
	if renders[0] != renders[1] {
		t.Fatal("faulted simulation differs between 1 and 4 workers")
	}
}

func TestSimulateFaultedSimFailReturnsFaultError(t *testing.T) {
	net := testNet(t)
	fm := &faultinject.Model{Seed: 1, SimFail: 1}
	_, err := SimulateFaulted(context.Background(), arch.SuperNPU(), net, 1, fm)
	var fe *faultinject.FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("got %v, want *faultinject.FaultError", err)
	}
	// The error is deterministic: a second call renders identically.
	_, err2 := SimulateFaulted(context.Background(), arch.SuperNPU(), net, 1, fm)
	if err2 == nil || err.Error() != err2.Error() {
		t.Fatalf("fault error not byte-stable: %v vs %v", err, err2)
	}
}
