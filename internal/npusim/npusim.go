// Package npusim is the SFQ-NPU performance simulator of Section IV-B: a
// cycle-based model that executes a DNN's weight mappings on an SFQ NPU
// configuration and reports cycles, throughput, PE utilization and power.
//
// The simulator charges cycles for exactly the mechanics the paper
// identifies as bottlenecks (Section V-A):
//
//   - preparation — weight loading, repositioning data inside
//     shift-register buffers (a monolithic buffer must rotate its entire
//     length; a divided buffer only one chunk), moving partial sums between
//     separate psum/ofmap buffers (integration removes this), and
//     bandwidth-limited DRAM traffic when a layer's batch does not fit
//     on-chip; and
//   - computation — the systolic array streaming B·E·F·K pixels per
//     mapping, with pipeline fill and drain.
package npusim

import (
	"context"
	"fmt"
	"math"

	"supernpu/internal/guard"

	"supernpu/internal/arch"
	"supernpu/internal/estimator"
	"supernpu/internal/faultinject"
	"supernpu/internal/mapper"
	"supernpu/internal/obs"
	"supernpu/internal/parallel"
	"supernpu/internal/sfq"
	"supernpu/internal/simcache"
	"supernpu/internal/srmem"
	"supernpu/internal/workload"
)

// cache memoises Simulate by (config, network, batch) fingerprint. The
// sweeps of Figs. 20–22 and the cross-design tables re-derive the same
// Baseline/TPU references at every point; with the cache each distinct
// simulation runs once per process. Reports returned from Simulate are
// shared between callers and must be treated as read-only.
var cache = simcache.New[*Report]()

// layerCache memoises the core tile walk of simulateLayer beneath the
// whole-simulation cache, keyed by (core projection, layer shape, batch).
// The cached core excludes the per-mapping shift-register unit costs —
// ifmap recirculation and psum inter-buffer movement — which are linear
// in the tile counts and applied per caller (applyUnitCosts), so sweep
// points that vary only buffer division or non-fit-flipping capacity
// share one walk, as do repeated shapes within one network. Nominal runs
// only — the faulted path keeps its per-layer site-keyed draws (see
// simulate).
var layerCache = simcache.New[layerCore]()

func init() {
	simcache.Register("npusim", cache)
	simcache.Register("npusim.layer", layerCache)
}

// layerSites counts the compute-layer sites accumulated by nominal
// (fault-free) simulations — each site is one per-layer simulation that
// would run without the layer-grain cache. Divided by the npusim.layer
// cache's miss count it yields the measured dedup factor (EXPERIMENTS.md).
var layerSites = obs.Default.Counter("supernpu_npusim_layer_sites_total",
	"compute-layer sites accumulated by nominal npusim simulations")

// BatchCap is the paper's conservative batch ceiling: Table II never sets a
// batch above 30 even when the buffers would hold more ("there is room to
// increase the batch size while improving performance").
const BatchCap = 30

// MaxBatch returns the largest batch size the design's on-chip buffers hold
// for the network without additional off-chip memory access (Table II).
//
// Three constraints apply per layer:
//   - a monolithic ifmap buffer dedicates one byte lane per input channel
//     (Fig. 18(c)): B·H·W must fit one lane; a divided buffer spreads
//     channels across chunks, so only the total capacity binds;
//   - the output buffer dedicates one byte lane per PE column / filter
//     (Fig. 18(b)): B·E·F must fit one lane;
//   - the result is floored at 1 (a single input always runs, spilling to
//     DRAM) and capped at BatchCap.
func MaxBatch(cfg arch.Config, net workload.Network) int {
	b := BatchCap
	ifLane := cfg.IfmapBufBytes / cfg.ArrayHeight
	outLane := cfg.OutputBufBytes / cfg.ArrayWidth
	for _, l := range net.ComputeLayers() {
		var bIn int
		if cfg.IfmapChunks == 1 {
			bIn = ifLane / (l.H * l.W)
		} else {
			bIn = cfg.IfmapBufBytes / (l.H * l.W * l.C)
		}
		bOut := outLane / (l.OutH() * l.OutW())
		if bIn < b {
			b = bIn
		}
		if bOut < b {
			b = bOut
		}
	}
	if b < 1 {
		return 1
	}
	return b
}

// layerFits reports whether the layer's batch-B activations stay on-chip.
func layerFits(p simcache.LayerProj, l workload.Layer, batch int) bool {
	var bIn int
	if p.IfmapChunks == 1 {
		bIn = p.IfmapBufBytes / p.ArrayHeight / (l.H * l.W)
	} else {
		bIn = p.IfmapBufBytes / (l.H * l.W * l.C)
	}
	bOut := p.OutputBufBytes / p.ArrayWidth / (l.OutH() * l.OutW())
	return batch <= bIn && batch <= bOut
}

// LayerStats is the per-layer simulation outcome.
type LayerStats struct {
	Layer    workload.Layer
	Mappings int

	// Cycle breakdown (Fig. 15): computation vs the preparation classes.
	ComputeCycles   int64
	WeightCycles    int64 // weight loading into the array
	IfmapMoveCycles int64 // shift-register repositioning of ifmap data
	PsumMoveCycles  int64 // ofmap→psum inter-buffer movement
	DRAMCycles      int64 // raw DRAM transfer cycles (overlappable)
	StallCycles     int64 // DRAM cycles not hidden behind on-chip work

	MACs int64
	// BufferBytes counts on-chip buffer bytes streamed (energy model);
	// DRAMBytes counts off-chip traffic.
	BufferBytes int64
	DRAMBytes   int64
}

// PrepCycles is the layer's total preparation time: on-chip data movement
// plus the exposed part of the DRAM traffic. Transfers are double-buffered,
// so only the portion that cannot hide behind on-chip activity stalls the
// array.
func (s LayerStats) PrepCycles() int64 {
	return s.WeightCycles + s.IfmapMoveCycles + s.PsumMoveCycles + s.StallCycles
}

// TotalCycles is the layer's total time.
func (s LayerStats) TotalCycles() int64 { return s.ComputeCycles + s.PrepCycles() }

// resolveStalls computes the exposed DRAM stall after overlapping the raw
// transfer cycles with every on-chip cycle of the layer.
func (s *LayerStats) resolveStalls() {
	onChip := s.ComputeCycles + s.WeightCycles + s.IfmapMoveCycles + s.PsumMoveCycles
	if s.DRAMCycles > onChip {
		s.StallCycles = s.DRAMCycles - onChip
	} else {
		s.StallCycles = 0
	}
}

// Report is the simulation result for one network on one design.
type Report struct {
	Design  arch.Config
	Network string
	Batch   int

	Frequency float64 // Hz, from the estimator
	PeakMACs  float64 // MAC/s

	Layers []LayerStats

	TotalCycles   int64
	ComputeCycles int64
	PrepCycles    int64
	MACs          int64

	// Time is the batch latency in seconds; Throughput the effective
	// MAC/s; PEUtilization effective/peak.
	Time          float64
	Throughput    float64
	PEUtilization float64

	// Power (W): static from the estimator; dynamic from activity.
	StaticPower  float64
	DynamicPower float64

	// Trace is the access-trace analyzer output (Fig. 14): the per-unit
	// activity counts the power model consumes.
	Trace Trace
	// Power is the dynamic power breakdown by source.
	Power PowerBreakdown

	// Faults summarises injected-fault activity; nil for nominal runs, so
	// nominal reports are byte-identical to the pre-fault model.
	Faults *FaultStats
}

// FaultStats aggregates the run's injected faults and their modelled cost.
type FaultStats struct {
	// Model is the fault model's String() rendering.
	Model string
	// BitFlips is the count of datapath MACs corrupted by bit flips
	// (unrecovered; they degrade the accuracy proxy).
	BitFlips int64
	// DroppedPulses is the count of shift-register pulses lost to thermal
	// drops; each forces a chunk recirculation.
	DroppedPulses int64
	// RetryCycles is the recirculation cost charged for the drops (already
	// included in the report's prep cycles and throughput).
	RetryCycles int64
	// Accuracy is the first-order inference-accuracy proxy: the compounded
	// probability, across layers, that an output element saw no corrupted
	// MAC. 1.0 means no datapath corruption.
	Accuracy float64
}

// Trace aggregates the simulator's access trace: what each unit did over
// the run.
type Trace struct {
	Mappings    int   // weight mappings executed
	MACs        int64 // useful multiply-accumulates
	BufferBytes int64 // on-chip buffer bytes streamed (ifmap + output)
	DRAMBytes   int64 // off-chip traffic
	DAUPixels   int64 // pixels delivered through the data alignment unit
	WeightLoads int64 // weight-shift cycles into the array
}

// PowerBreakdown splits the dynamic power by switching source.
type PowerBreakdown struct {
	Clock  float64 // clock distribution pulsing every clocked PE cell
	MAC    float64 // datapath switching
	Buffer float64 // shift-register bit movement
	DAU    float64 // selection and delay-cascade switching
}

// Total is the summed dynamic power.
func (p PowerBreakdown) Total() float64 { return p.Clock + p.MAC + p.Buffer + p.DAU }

// TotalPower is static plus dynamic chip power (cooling excluded).
func (r *Report) TotalPower() float64 { return r.StaticPower + r.DynamicPower }

// PrepFraction is preparation cycles over total cycles (Fig. 15).
func (r *Report) PrepFraction() float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return float64(r.PrepCycles) / float64(r.TotalCycles)
}

// cyclesPerByte converts DRAM bytes into NPU cycles at frequency f.
func cyclesPerByte(f, bandwidth float64) float64 { return f / bandwidth }

// layerCore is the cached portion of one layer simulation: the tile-walk
// stats without the per-mapping shift-register unit costs, plus the
// continuing-row tile count those costs multiply against.
type layerCore struct {
	Stats       LayerStats // Layer is zeroed; applyUnitCosts restores it
	NonFirstRow int        // tiles that re-inject partial sums
}

// recirculateCycles is the per-mapping ifmap repositioning cost: the data
// consumed by the previous mapping must rotate back to the chunk head
// before it can stream again — a full-buffer rotation when monolithic,
// one chunk when divided. The geometry is rebuilt from the projection
// exactly as arch.Config.IfmapBuf builds it.
func recirculateCycles(p simcache.LayerProj) int64 {
	ifBuf := srmem.Config{WidthBytes: p.ArrayHeight, CapacityBytes: p.IfmapBufBytes, Chunks: p.IfmapChunks}
	return int64(ifBuf.RecirculateCycles())
}

// psumMoveCycles is the per-continuing-tile partial-sum re-injection
// cost. Separate psum/ofmap buffers pay the inter-buffer walk
// (Fig. 16 ①); the integrated buffer just re-selects the chunk, for
// free. Geometries rebuilt exactly as arch.Config.OutputBuf/PsumBuf.
func psumMoveCycles(p simcache.LayerProj) int64 {
	if p.IntegratedOutput {
		return 0
	}
	outBuf := srmem.Config{WidthBytes: p.ArrayWidth, CapacityBytes: p.OutputBufBytes, Chunks: p.OutputChunks}
	psumBuf := srmem.Config{WidthBytes: p.ArrayWidth, CapacityBytes: p.PsumBufBytes, Chunks: 1}
	return int64(outBuf.InterBufferMoveCycles(psumBuf, p.PsumBufBytes))
}

// coreProj reduces the full projection to the fields the cached tile walk
// reads, resolving the layer's batch-fit decision into its Fits bit. The
// buffer capacities and divisions drop out here: beyond the fit bit they
// only reach a layer through the per-mapping unit costs above.
func coreProj(p simcache.LayerProj, l workload.Layer, batch int) simcache.LayerCoreProj {
	return simcache.LayerCoreProj{
		ArrayHeight: p.ArrayHeight, ArrayWidth: p.ArrayWidth,
		Registers:      p.Registers,
		PipelineStages: p.PipelineStages,
		CyclesPerByte:  p.CyclesPerByte,
		Fits:           layerFits(p, l, batch),
	}
}

// simulateLayerCore runs the weight-mapping loop of one layer, polling
// for cancellation once per weight mapping so a canceled simulation stops
// mid-layer instead of charging the full tile walk.
//
// It reads the configuration only through the reduced core projection
// (and the layer only through shape-derived quantities), which is what
// makes the layer-grain cache key complete by construction: two configs
// with equal core projections cannot produce different cores here.
func simulateLayerCore(ctx context.Context, cp simcache.LayerCoreProj, l workload.Layer, batch int) (layerCore, error) {
	var core layerCore
	st := &core.Stats
	var w guard.Watch
	w.Arm(ctx)
	defer w.Disarm()

	ef := int64(l.OutH() * l.OutW())
	peStages := cp.PipelineStages
	cpb := cp.CyclesPerByte

	for _, t := range mapper.Tiles(l, cp.ArrayHeight, cp.ArrayWidth, cp.Registers) {
		if w.Canceled() {
			return layerCore{}, w.Err()
		}
		st.Mappings++

		// Computation: the array streams B·E·F pixels, each presented
		// `regs` consecutive cycles, plus pipeline fill and drain through
		// the array's gate-level stages.
		st.ComputeCycles += int64(batch)*ef*int64(t.Regs) + int64(t.Rows*peStages+t.Cols+t.Regs)

		// Weights: stream from DRAM through the weight buffer, then shift
		// down the columns (one pass per engaged register plane).
		wBytes := int64(t.Rows) * int64(t.Filters)
		st.WeightCycles += int64(t.Rows * t.Regs)
		st.DRAMCycles += int64(float64(wBytes) * cpb)
		st.DRAMBytes += wBytes

		// Ifmap streaming (the recirculation charge itself is a per-mapping
		// unit cost, applied by applyUnitCosts).
		st.BufferBytes += int64(batch) * int64(l.H*l.W*t.Channels)

		// Continuing row tiles re-inject the previous partial sums; the
		// per-tile movement charge is likewise applied by applyUnitCosts.
		if !t.FirstRowTile {
			core.NonFirstRow++
		}
		st.BufferBytes += int64(batch) * ef * int64(t.Filters)

		// Spilled activations: when the batch does not fit, every mapping
		// re-fetches its ifmap slice from DRAM.
		if !cp.Fits {
			spill := int64(batch) * int64(l.H*l.W*t.Channels)
			st.DRAMCycles += int64(float64(spill) * cpb)
			st.DRAMBytes += spill
		}

		st.MACs += t.MACs(batch, ef)
	}
	return core, nil
}

// applyUnitCosts completes a (possibly cached) core into the caller's
// LayerStats. The ifmap recirculation and psum movement charges are
// constant per (continuing) mapping, so they distribute over the walk as
// exact integer multiples — byte-identical to charging them inside the
// loop — and the caller's own layer is restored so reports keep their
// display names.
func applyUnitCosts(core layerCore, p simcache.LayerProj, l workload.Layer) LayerStats {
	st := core.Stats
	st.Layer = l
	st.IfmapMoveCycles += int64(core.Stats.Mappings) * recirculateCycles(p)
	st.PsumMoveCycles += int64(core.NonFirstRow) * psumMoveCycles(p)
	return st
}

// simulateLayer runs one layer simulation directly, bypassing the
// layer-grain cache: the core tile walk plus the per-mapping unit costs.
func simulateLayer(ctx context.Context, p simcache.LayerProj, l workload.Layer, batch int) (LayerStats, error) {
	if l.Kind == workload.Pool {
		return LayerStats{Layer: l}, nil
	}
	core, err := simulateLayerCore(ctx, coreProj(p, l, batch), l, batch)
	if err != nil {
		return LayerStats{}, err
	}
	return applyUnitCosts(core, p, l), nil
}

// simulateLayerCached serves one layer simulation through the layer-grain
// cache. The cached core is computed from a name-free rehydration of the
// layer's shape, so every layer of that shape — in this network, any
// other network, or any sweep point whose core projection matches —
// shares it. With layer-grain caching disabled it degrades to the direct
// tile walk.
func simulateLayerCached(ctx context.Context, p simcache.LayerProj, l workload.Layer, batch int) (LayerStats, error) {
	if !simcache.LayerGrainEnabled() {
		return simulateLayer(ctx, p, l, batch)
	}
	if l.Kind == workload.Pool {
		return LayerStats{Layer: l}, nil
	}
	shape := l.Shape()
	cp := coreProj(p, l, batch)
	core, err := layerCache.GetOrCompute(simcache.LayerKey(cp, shape, batch), func() (layerCore, error) {
		return simulateLayerCore(ctx, cp, shape.Layer(""), batch)
	})
	if err != nil {
		return LayerStats{}, err
	}
	return applyUnitCosts(core, p, l), nil
}

// Simulate runs the network at the given batch size on the design and
// returns the full report. A batch of 0 selects MaxBatch automatically —
// the batch-0 convention every sweep driver relies on; negative batches
// are rejected.
//
// Results are memoised by (config, network, batch): repeated calls with the
// same inputs return one shared *Report, which callers must treat as
// read-only. Validation and batch resolution happen inside the memoised
// computation, so a cache hit costs only the key construction and lookup.
// Cancellation of ctx aborts the per-layer fan-out and the per-tile mapping
// loop; a canceled computation is evicted from the cache, not memoised.
func Simulate(ctx context.Context, cfg arch.Config, net workload.Network, batch int) (*Report, error) {
	if batch < 0 {
		return nil, fmt.Errorf("npusim: batch %d must be non-negative (0 selects MaxBatch)", batch)
	}
	return cache.GetOrCompute(simcache.SimKey(cfg, net, batch), func() (*Report, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if batch == 0 {
			// Re-enter through the cache so the batch-0 entry and the
			// resolved-batch entry share one computed report.
			return Simulate(ctx, cfg, net, MaxBatch(cfg, net))
		}
		return simulate(ctx, cfg, net, batch, nil)
	})
}

// SimulateFaulted is Simulate under a fault model: the estimator reruns at
// the perturbed operating point (margin erosion lowers the frequency),
// thermal pulse drops charge chunk-recirculation retry cycles, datapath bit
// flips feed the accuracy proxy, and with probability SimFail the whole
// simulation aborts with a *faultinject.FaultError — the hook the serving
// pipeline's degraded path exercises. Results are memoised by (config,
// network, batch, fault key); a disabled model shares Simulate's cache.
// As with Simulate, a batch of 0 selects MaxBatch automatically and
// negative batches are rejected. Every fault draw is site-keyed, so the
// report is byte-identical across runs and worker counts.
func SimulateFaulted(ctx context.Context, cfg arch.Config, net workload.Network, batch int, fm *faultinject.Model) (*Report, error) {
	if !fm.Enabled() {
		return Simulate(ctx, cfg, net, batch)
	}
	if batch < 0 {
		return nil, fmt.Errorf("npusim: batch %d must be non-negative (0 selects MaxBatch)", batch)
	}
	return cache.GetOrCompute(simcache.SimKey(cfg, net, batch)+fm.Key(), func() (*Report, error) {
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if batch == 0 {
			return SimulateFaulted(ctx, cfg, net, MaxBatch(cfg, net), fm)
		}
		if site := simSite(cfg, net, batch); fm.FailsSimulation(site) {
			return nil, &faultinject.FaultError{Site: site}
		}
		return simulate(ctx, cfg, net, batch, fm)
	})
}

// simSite names one (design, network, batch) simulation for fault draws.
func simSite(cfg arch.Config, net workload.Network, batch int) string {
	return fmt.Sprintf("npusim/%s/%s/%d", cfg.Name, net.Name, batch)
}

// simulate is the uncached simulation. Layers are mutually independent —
// every cycle charge is a function of the layer's own shape — so their
// LayerStats fan out across workers; the report accumulates them in layer
// order afterwards, keeping the totals bit-identical to a serial run.
//
// Nominal runs dedup repeated shapes before the fan-out: one warm pass
// simulates each unique (projection, shape, batch) once through the
// layer-grain cache, then every site's lookup hits and the LayerStats are
// replicated by multiplicity. A non-nil enabled fault model disables the
// dedup — its pulse-drop retries and bit flips are drawn per layer *site*
// (keyed by the layer's name), so two same-shaped layers legitimately
// differ — and every draw is keyed by the layer's own site, so the
// fan-out order cannot perturb the result.
func simulate(ctx context.Context, cfg arch.Config, net workload.Network, batch int, fm *faultinject.Model) (*Report, error) {
	est, err := estimator.EstimateFaulted(ctx, cfg, fm)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Design: cfg, Network: net.Name, Batch: batch,
		Frequency: est.Frequency, PeakMACs: est.PeakMACs,
		StaticPower: est.StaticPower,
	}
	cpb := cyclesPerByte(est.Frequency, cfg.MemoryBandwidth)
	proj := simcache.NPULayerProj(cfg, cpb)

	type job struct {
		idx int // position in net.Layers (0 = network entry)
		l   workload.Layer
	}
	type layerOut struct {
		st LayerStats
		// injected-fault tallies for this layer
		flips, drops, retry int64
		// cleanFrac is the fraction of the layer's MACs untouched by flips.
		cleanFrac float64
	}
	var jobs []job
	for i, l := range net.Layers {
		if l.ComputeLayer() {
			jobs = append(jobs, job{i, l})
		}
	}
	if !fm.Enabled() {
		layerSites.Add(int64(len(jobs)))
		if simcache.LayerGrainEnabled() {
			// Shape dedup: warm one layer-grain entry per unique shape so
			// the per-site fan-out below replicates cache hits instead of
			// re-walking identical tile plans.
			seen := make(map[workload.Shape]bool, len(jobs))
			var shapes []workload.Shape
			for _, j := range jobs {
				if s := j.l.Shape(); !seen[s] {
					seen[s] = true
					shapes = append(shapes, s)
				}
			}
			if len(shapes) < len(jobs) {
				if _, err := parallel.MapContext(ctx, len(shapes), func(ctx context.Context, k int) (struct{}, error) {
					_, err := simulateLayerCached(ctx, proj, shapes[k].Layer(""), batch)
					return struct{}{}, err
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	site := simSite(cfg, net, batch)
	outs, err := parallel.MapContext(ctx, len(jobs), func(ctx context.Context, k int) (layerOut, error) {
		j := jobs[k]
		var st LayerStats
		var err error
		if fm.Enabled() {
			st, err = simulateLayer(ctx, proj, j.l, batch)
		} else {
			st, err = simulateLayerCached(ctx, proj, j.l, batch)
		}
		if err != nil {
			return layerOut{}, err
		}

		// Layer input delivery: the first compute layer streams its
		// inputs from DRAM; later layers transfer the previous output
		// buffer contents into the ifmap buffer on-chip.
		inBytes := int64(batch) * j.l.IfmapBytes()
		if j.idx == 0 {
			st.DRAMCycles += int64(float64(inBytes) * cpb)
			st.DRAMBytes += inBytes
		} else {
			width := min(cfg.IfmapBuf().WidthBytes, cfg.OutputBuf().WidthBytes)
			st.IfmapMoveCycles += inBytes / int64(width)
			st.BufferBytes += inBytes
		}

		o := layerOut{cleanFrac: 1}
		if fm.Enabled() {
			lsite := site + "/layer/" + j.l.Name
			// Thermal pulse drops: every byte streamed through the
			// shift-register buffers is one shift-in plus one shift-out;
			// each dropped pulse recirculates the ifmap chunk to replay
			// the lost entry. The retry cycles land in the ifmap-movement
			// class, where the replay physically happens.
			o.drops, o.retry = cfg.IfmapBuf().DropRetryCycles(fm, 2*st.BufferBytes, lsite+"/drop")
			st.IfmapMoveCycles += o.retry
			// Datapath bit flips corrupt MACs without costing cycles.
			o.flips = fm.Count(fm.BitFlip, st.MACs, lsite+"/flip")
			if st.MACs > 0 {
				o.cleanFrac = 1 - float64(o.flips)/float64(st.MACs)
			}
		}
		st.resolveStalls()
		o.st = st
		return o, nil
	})
	if err != nil {
		return nil, err
	}
	accuracy := 1.0
	var faults FaultStats
	for _, o := range outs {
		st := o.st
		rep.Layers = append(rep.Layers, st)
		rep.ComputeCycles += st.ComputeCycles
		rep.PrepCycles += st.PrepCycles()
		rep.MACs += st.MACs
		rep.Trace.Mappings += st.Mappings
		rep.Trace.BufferBytes += st.BufferBytes
		rep.Trace.DRAMBytes += st.DRAMBytes
		rep.Trace.WeightLoads += st.WeightCycles
		faults.BitFlips += o.flips
		faults.DroppedPulses += o.drops
		faults.RetryCycles += o.retry
		accuracy *= o.cleanFrac
	}
	if fm.Enabled() {
		faults.Model = fm.String()
		faults.Accuracy = math.Max(0, accuracy)
		rep.Faults = &faults
	}
	// Final results drain to DRAM.
	last := net.ComputeLayers()[len(net.ComputeLayers())-1]
	outBytes := int64(batch) * last.OfmapBytes()
	rep.PrepCycles += int64(float64(outBytes) * cpb)
	rep.Trace.DRAMBytes += outBytes
	rep.Trace.MACs = rep.MACs
	rep.Trace.DAUPixels = rep.ComputeCycles * int64(cfg.ArrayHeight) / int64(cfg.PECfg().PipelineStages())

	rep.TotalCycles = rep.ComputeCycles + rep.PrepCycles
	rep.Time = float64(rep.TotalCycles) / est.Frequency
	rep.Throughput = float64(rep.MACs) / rep.Time
	rep.PEUtilization = rep.Throughput / est.PeakMACs
	rep.Power = dynamicPower(cfg, est, rep)
	rep.DynamicPower = rep.Power.Total()
	// A report with a non-finite headline number means the model itself
	// blew up (zero frequency, empty network); fail typed instead of
	// letting NaNs leak into exhibits and serving responses.
	for _, v := range [...]float64{rep.Time, rep.Throughput, rep.PEUtilization, rep.DynamicPower} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("npusim: %s/%s/b%d produced a non-finite report: %w",
				cfg.Name, net.Name, batch, guard.ErrNonFinite)
		}
	}
	return rep, nil
}

// dynamicPower models the chip's switching power over the run: the clock
// network pulses every clocked cell of the PE array every cycle; MACs add
// data switching; buffer traffic adds per-byte shift energy; the DAU adds
// per-delivered-pixel energy.
func dynamicPower(cfg arch.Config, est *estimator.Result, rep *Report) PowerBreakdown {
	lib := sfq.NewLibrary(sfq.AIST10(), cfg.Tech)
	pc := cfg.PECfg()
	var p PowerBreakdown

	// Clock distribution: one splitter pulse per clocked PE cell per cycle.
	clockedPerPE := clockedCells(pc)
	clockEnergyPerCycle := float64(cfg.PEs()) * float64(clockedPerPE) * lib.AccessEnergy(sfq.Splitter)
	p.Clock = clockEnergyPerCycle * est.Frequency

	// Data switching in the MACs.
	p.MAC = float64(rep.MACs) / rep.Time * pc.MACEnergy(lib)

	// Buffer streaming: eight bit-cells switch per byte moved in or out.
	bitCell := lib.AccessEnergy(sfq.DFF) + lib.AccessEnergy(sfq.Splitter) + 2*lib.AccessEnergy(sfq.JTL)
	p.Buffer = float64(rep.Trace.BufferBytes) / rep.Time * 8 * bitCell

	// DAU delivery: one selected pixel per PE row per compute wavefront.
	dauU, _ := est.Unit("DAU")
	p.DAU = float64(rep.Trace.DAUPixels) / rep.Time * dauU.AccessEnergy

	return p
}

// clockedCells counts the clocked cells of one PE (its clock-tree load).
func clockedCells(pc interface{ Inventory() sfq.Inventory }) int {
	inv := pc.Inventory()
	n := 0
	for _, k := range []sfq.GateKind{sfq.AND, sfq.FA, sfq.DFF, sfq.NDRO, sfq.MUXCell, sfq.XOR, sfq.OR, sfq.NOT, sfq.DFFB} {
		n += inv[k]
	}
	return n
}
