package npusim

import (
	"context"
	"math"
	"testing"
	"testing/quick"

	"supernpu/internal/arch"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

func sim(t *testing.T, cfg arch.Config, net workload.Network, batch int) *Report {
	t.Helper()
	r, err := Simulate(context.Background(), cfg, net, batch)
	if err != nil {
		t.Fatalf("%s on %s: %v", net.Name, cfg.Name, err)
	}
	return r
}

func gmean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Fig. 15: the Baseline's cycles are dominated by the preparation step —
// above 90% for every CNN workload.
func TestFig15BaselinePreparationDominates(t *testing.T) {
	for _, net := range workload.All() {
		r := sim(t, arch.Baseline(), net, 1)
		if f := r.PrepFraction(); f < 0.90 {
			t.Errorf("%s: preparation fraction = %.1f%%, want > 90%%", net.Name, f*100)
		}
	}
}

// Fig. 17: the Baseline's effective performance with a single batch is a
// tiny fraction of its 3366 TMAC/s peak (the paper reports ~6.45 TMAC/s,
// below 2% utilization).
func TestFig17BaselineUtilization(t *testing.T) {
	var sum float64
	for _, net := range workload.All() {
		r := sim(t, arch.Baseline(), net, 1)
		if r.PEUtilization > 0.02 {
			t.Errorf("%s: Baseline utilization = %.2f%%, want < 2%%", net.Name, r.PEUtilization*100)
		}
		sum += r.Throughput
	}
	avg := sum / 6 / 1e12
	if avg < 1 || avg > 15 {
		t.Errorf("Baseline average effective perf = %.2f TMAC/s, want single-digit TMAC/s (paper: 6.45)", avg)
	}
}

// Table II: the batch sizes each design's buffers support.
func TestTable2MaxBatch(t *testing.T) {
	type row struct {
		net                           string
		baseline, bufferOpt, superNPU int
	}
	// FasterRCNN deviates from the paper's Table II (3/30): our detector
	// keeps the full 224×224 VGG backbone whose conv1 activations bind the
	// batch exactly as in VGG16 (see EXPERIMENTS.md).
	rows := []row{
		{"AlexNet", 1, 16, 30}, // paper: 1 / 15 / 30
		{"GoogLeNet", 1, 3, 30},
		{"MobileNet", 1, 3, 30},
		{"ResNet50", 1, 3, 30},
		{"VGG16", 1, 1, 7},
		{"FasterRCNN", 1, 1, 7},
	}
	for _, want := range rows {
		net, err := workload.ByName(want.net)
		if err != nil {
			t.Fatal(err)
		}
		if got := MaxBatch(arch.Baseline(), net); got != want.baseline {
			t.Errorf("%s Baseline batch = %d, want %d", want.net, got, want.baseline)
		}
		if got := MaxBatch(arch.BufferOpt(), net); got != want.bufferOpt {
			t.Errorf("%s Buffer-opt batch = %d, want %d", want.net, got, want.bufferOpt)
		}
		if got := MaxBatch(arch.SuperNPU(), net); got != want.superNPU {
			t.Errorf("%s SuperNPU batch = %d, want %d", want.net, got, want.superNPU)
		}
	}
}

// Fig. 20: buffer integration and division. Single-batch and max-batch
// speedups over Baseline grow with the division degree and saturate around
// 64 — the degree the paper selects.
func TestFig20BufferOptimizationSweep(t *testing.T) {
	basePerf := map[string]float64{}
	for _, net := range workload.All() {
		basePerf[net.Name] = sim(t, arch.Baseline(), net, 1).Throughput
	}
	speedup := func(chunks, batch int) float64 {
		c := arch.BufferOpt()
		c.IfmapChunks, c.OutputChunks = chunks, chunks
		var xs []float64
		for _, net := range workload.All() {
			xs = append(xs, sim(t, c, net, batch).Throughput/basePerf[net.Name])
		}
		return gmean(xs)
	}

	prev := 1.0
	for _, d := range []int{2, 4, 16, 64} {
		s := speedup(d, 1)
		if s < prev {
			t.Errorf("single-batch speedup must grow with division (d=%d: %.2f < %.2f)", d, s, prev)
		}
		prev = s
	}
	s64 := speedup(64, 1)
	if s64 < 5 || s64 > 14 {
		t.Errorf("single-batch speedup at division 64 = %.2f×, want ≈6–12× (paper: 6.26×)", s64)
	}
	// Saturation: 4096 buys little over 64.
	if speedup(4096, 1) > 1.25*s64 {
		t.Error("division beyond 64 must saturate (paper selects 64)")
	}
	// Max batch multiplies the gain (paper: ~20× at division 64).
	m64 := speedup(64, 0)
	if m64 < 15 || m64 > 33 {
		t.Errorf("max-batch speedup at division 64 = %.2f×, want ≈20–30× (paper: 20×)", m64)
	}
}

// Fig. 21: resource balancing. With grown buffers, width 128 and 64 are the
// sweet spots; narrower arrays lose peak faster than intensity gains.
func TestFig21ResourceBalancing(t *testing.T) {
	basePerf := map[string]float64{}
	for _, net := range workload.All() {
		basePerf[net.Name] = sim(t, arch.Baseline(), net, 1).Throughput
	}
	at := func(width, bufMB int) float64 {
		c := arch.BufferOpt()
		c.ArrayWidth = width
		c.IfmapBufBytes = bufMB * arch.MB / 2
		c.OutputBufBytes = bufMB * arch.MB / 2
		c.OutputChunks = 64 * 256 / width
		var xs []float64
		for _, net := range workload.All() {
			xs = append(xs, sim(t, c, net, 0).Throughput/basePerf[net.Name])
		}
		return gmean(xs)
	}
	s := map[int]float64{
		256: at(256, 24), 128: at(128, 38), 64: at(64, 46), 32: at(32, 50), 16: at(16, 51),
	}
	if !(s[128] > s[256] && s[64] > s[256]) {
		t.Errorf("width 128/64 with added buffer must beat width 256: %v", s)
	}
	if !(s[32] < s[64] && s[16] < s[32]) {
		t.Errorf("too-narrow arrays must lose performance: %v", s)
	}
	// Paper: ~47× at width 128 and ~42× at width 64 — within a factor.
	if s[128] < 30 || s[64] < 25 {
		t.Errorf("sweet-spot speedups too low: w128=%.1f w64=%.1f", s[128], s[64])
	}
}

// Fig. 22: the width-64 design keeps scaling with registers per PE while
// width-128 is already memory-bound — the reason SuperNPU is 64-wide with
// 8 registers.
func TestFig22RegisterSweep(t *testing.T) {
	basePerf := map[string]float64{}
	for _, net := range workload.All() {
		basePerf[net.Name] = sim(t, arch.Baseline(), net, 1).Throughput
	}
	at := func(width, regs int) float64 {
		c := arch.BufferOpt()
		c.ArrayWidth = width
		c.Registers = regs
		if width == 64 {
			c.IfmapBufBytes, c.OutputBufBytes = 23*arch.MB, 23*arch.MB
		} else {
			c.IfmapBufBytes, c.OutputBufBytes = 19*arch.MB, 19*arch.MB
		}
		c.OutputChunks = 64 * 256 / width
		var xs []float64
		for _, net := range workload.All() {
			xs = append(xs, sim(t, c, net, 0).Throughput/basePerf[net.Name])
		}
		return gmean(xs)
	}
	w64gain := at(64, 8) / at(64, 1)
	w128gain := at(128, 8) / at(128, 1)
	if w64gain < 1.2 {
		t.Errorf("width 64 must gain from 8 registers, got %.2f×", w64gain)
	}
	if w128gain > 1.15 {
		t.Errorf("width 128 must be memory-bound (little register gain), got %.2f×", w128gain)
	}
	// Registers never hurt.
	if at(64, 8) < at(64, 1) || at(64, 16) < at(64, 8)*0.99 {
		t.Error("register scaling must be monotone non-decreasing")
	}
}

// Table III: SuperNPU chip power — ERSFQ ≈ 1.9 W (zero static), RSFQ
// ≈ 964 W (bias-resistor static dominates).
func TestTable3ChipPower(t *testing.T) {
	var dyn float64
	e := arch.SuperNPU()
	e.Tech = sfq.ERSFQ
	for _, net := range workload.All() {
		r := sim(t, e, net, 0)
		if r.StaticPower != 0 {
			t.Fatal("ERSFQ static power must be zero")
		}
		dyn += r.DynamicPower / 6
	}
	if dyn < 1.0 || dyn > 3.0 {
		t.Errorf("ERSFQ-SuperNPU dynamic power = %.2f W, want ≈1.9 W", dyn)
	}

	r := sim(t, arch.SuperNPU(), workload.ResNet50(), 0)
	total := r.TotalPower()
	if total < 900 || total > 1100 {
		t.Errorf("RSFQ-SuperNPU power = %.0f W, want ≈964 W", total)
	}
}

func TestSimulateValidation(t *testing.T) {
	bad := arch.Baseline()
	bad.ArrayHeight = 0
	if _, err := Simulate(context.Background(), bad, workload.VGG16(), 1); err == nil {
		t.Error("Simulate must reject invalid designs")
	}
	if _, err := Simulate(context.Background(), arch.Baseline(), workload.Network{Name: "x"}, 1); err == nil {
		t.Error("Simulate must reject invalid networks")
	}
	if _, err := Simulate(context.Background(), arch.Baseline(), workload.VGG16(), -3); err == nil {
		t.Error("Simulate must reject negative batches")
	}
}

// Property: MAC accounting is exact — the simulator executes precisely
// batch × network MACs regardless of design geometry.
func TestMACConservationProperty(t *testing.T) {
	nets := workload.All()
	f := func(dSel, nSel, b8 uint8) bool {
		cfg := arch.Designs()[int(dSel)%4]
		net := nets[int(nSel)%len(nets)]
		batch := 1 + int(b8)%4
		r, err := Simulate(context.Background(), cfg, net, batch)
		if err != nil {
			return false
		}
		return r.MACs == int64(batch)*net.TotalMACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: utilization is bounded and cycle classes add up.
func TestReportInvariantsProperty(t *testing.T) {
	nets := workload.All()
	f := func(dSel, nSel uint8) bool {
		cfg := arch.Designs()[int(dSel)%4]
		net := nets[int(nSel)%len(nets)]
		r, err := Simulate(context.Background(), cfg, net, 0)
		if err != nil {
			return false
		}
		if r.PEUtilization <= 0 || r.PEUtilization > 1 {
			return false
		}
		if r.TotalCycles != r.ComputeCycles+r.PrepCycles {
			return false
		}
		var layerTotal int64
		for _, l := range r.Layers {
			layerTotal += l.TotalCycles()
		}
		// Layer totals plus the final drain equal the report total.
		return layerTotal <= r.TotalCycles && r.Time > 0 && r.Throughput > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: larger batches never reduce throughput on the optimised designs
// (more reuse per preparation), as long as the batch stays on-chip.
func TestBatchMonotonicityProperty(t *testing.T) {
	net := workload.ResNet50()
	cfg := arch.SuperNPU()
	prev := 0.0
	for _, b := range []int{1, 2, 4, 8, 16, 30} {
		r := sim(t, cfg, net, b)
		if r.Throughput < prev*0.999 {
			t.Fatalf("throughput fell from %.3g to %.3g at batch %d", prev, r.Throughput, b)
		}
		prev = r.Throughput
	}
}

func TestDepthwiseUnderutilisation(t *testing.T) {
	// Depthwise layers structurally underutilise a systolic array: each
	// channel occupies R·S rows × 1 column. MobileNet's utilization must
	// therefore trail ResNet's on the same design.
	mob := sim(t, arch.SuperNPU(), workload.MobileNet(), 0)
	res := sim(t, arch.SuperNPU(), workload.ResNet50(), 0)
	if mob.PEUtilization >= res.PEUtilization {
		t.Errorf("MobileNet util %.2f%% must trail ResNet50 %.2f%%",
			mob.PEUtilization*100, res.PEUtilization*100)
	}
}

func TestIntegrationRemovesPsumMovement(t *testing.T) {
	net := workload.ResNet50()
	base := sim(t, arch.Baseline(), net, 1)
	opt := sim(t, arch.BufferOpt(), net, 1)
	var basePsum, optPsum int64
	for _, l := range base.Layers {
		basePsum += l.PsumMoveCycles
	}
	for _, l := range opt.Layers {
		optPsum += l.PsumMoveCycles
	}
	if basePsum == 0 {
		t.Error("Baseline must pay ofmap→psum movement (Fig. 16 ①)")
	}
	if optPsum != 0 {
		t.Error("the integrated output buffer must eliminate psum movement")
	}
}

// The access-trace analyzer (Fig. 14) feeds the power model: the trace must
// be internally consistent and the power breakdown must sum to the dynamic
// total.
func TestAccessTraceAndPowerBreakdown(t *testing.T) {
	r := sim(t, arch.SuperNPU(), workload.ResNet50(), 0)
	tr := r.Trace
	if tr.MACs != r.MACs {
		t.Error("trace MACs must equal the report's MACs")
	}
	if tr.Mappings <= 0 || tr.BufferBytes <= 0 || tr.DRAMBytes <= 0 ||
		tr.DAUPixels <= 0 || tr.WeightLoads <= 0 {
		t.Fatalf("trace must record every activity class: %+v", tr)
	}
	p := r.Power
	if diff := p.Total() - r.DynamicPower; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("power breakdown (%.3g) must sum to the dynamic power (%.3g)",
			p.Total(), r.DynamicPower)
	}
	for name, v := range map[string]float64{
		"clock": p.Clock, "mac": p.MAC, "buffer": p.Buffer, "dau": p.DAU,
	} {
		if v <= 0 {
			t.Errorf("%s power must be positive, got %g", name, v)
		}
	}
	// The always-on clock network dominates the ERSFQ power story.
	e := arch.SuperNPU()
	e.Tech = sfq.ERSFQ
	re := sim(t, e, workload.ResNet50(), 0)
	if re.Power.Clock < re.Power.Buffer/10 {
		t.Error("clock distribution must be a first-order dynamic power term")
	}
}

// Property: the trace's DRAM bytes are at least the network's weight
// footprint times one pass (weights always stream in).
func TestTraceDRAMLowerBoundProperty(t *testing.T) {
	for _, cfg := range arch.Designs() {
		for _, net := range workload.All() {
			r := sim(t, cfg, net, 1)
			if r.Trace.DRAMBytes < net.TotalWeightBytes() {
				t.Errorf("%s/%s: DRAM bytes %d below weight footprint %d",
					cfg.Name, net.Name, r.Trace.DRAMBytes, net.TotalWeightBytes())
			}
		}
	}
}
