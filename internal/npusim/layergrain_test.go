package npusim

// Tests for the layer-grain memoization beneath the whole-simulation
// cache: the multiplicity property (a shape repeated k times costs one
// unique simulation and reports k×-scaled totals), byte-identity of the
// report with the cache on and off, and the faulted path bypassing the
// cache entirely so per-site fault draws stay untouched.

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/faultinject"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// repeatedNet builds a valid network whose k compute layers all share one
// shape (a 3×3/pad-1/stride-1 conv preserves H×W, and M == C keeps the
// channel chain consistent).
func repeatedNet(k int) workload.Network {
	layers := make([]workload.Layer, k)
	for i := range layers {
		layers[i] = workload.Layer{Name: fmt.Sprintf("conv%d", i), Kind: workload.Conv,
			H: 14, W: 14, C: 64, R: 3, S: 3, M: 64, Stride: 1, Pad: 1}
	}
	return workload.Network{Name: fmt.Sprintf("repeat%d", k), Layers: layers}
}

func TestLayerDedupMultiplicity(t *testing.T) {
	const k = 6
	net := repeatedNet(k)
	cfg := arch.SuperNPU()

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	t.Cleanup(simcache.ClearAll)

	rep, err := Simulate(context.Background(), cfg, net, 1)
	if err != nil {
		t.Fatal(err)
	}

	// One unique layer simulation: the dedup warm pass misses once, then
	// every per-site lookup hits.
	hits, misses := layerCache.Counters()
	if misses != 1 {
		t.Errorf("unique layer simulations executed = %d, want 1", misses)
	}
	if hits != k {
		t.Errorf("layer cache hits = %d, want %d (one per site)", hits, k)
	}

	// Totals scale by multiplicity; input delivery differs between the
	// first layer (DRAM) and the rest (on-chip move), so the per-layer
	// stats of sites 1..k-1 must be identical to each other and every
	// site must keep its own display name.
	if len(rep.Layers) != k {
		t.Fatalf("report has %d layers, want %d", len(rep.Layers), k)
	}
	if want := int64(k) * rep.Layers[0].MACs; rep.MACs != want {
		t.Errorf("total MACs = %d, want %d (k × per-layer)", rep.MACs, want)
	}
	if want := int64(k) * rep.Layers[0].ComputeCycles; rep.ComputeCycles != want {
		t.Errorf("compute cycles = %d, want %d (k × per-layer)", rep.ComputeCycles, want)
	}
	for i, st := range rep.Layers {
		if st.Layer.Name != net.Layers[i].Name {
			t.Errorf("layer %d kept name %q, want %q", i, st.Layer.Name, net.Layers[i].Name)
		}
		if i >= 2 {
			ref := rep.Layers[1]
			ref.Layer.Name = st.Layer.Name
			if st != ref {
				t.Errorf("layer %d stats differ from layer 1:\n got %+v\nwant %+v", i, st, ref)
			}
		}
	}
}

func TestLayerGrainOffByteIdentical(t *testing.T) {
	net := repeatedNet(4)
	cfg := arch.SuperNPU()
	t.Cleanup(func() {
		simcache.SetLayerGrain(true)
		simcache.ClearAll()
	})

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	on, err := Simulate(context.Background(), cfg, net, 0)
	if err != nil {
		t.Fatal(err)
	}

	simcache.SetLayerGrain(false)
	simcache.ClearAll()
	off, err := Simulate(context.Background(), cfg, net, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(on, off) {
		t.Errorf("report differs with layer-grain caching on vs off:\n on %+v\noff %+v", on, off)
	}
}

func TestFaultedPathBypassesLayerCache(t *testing.T) {
	net := repeatedNet(3)
	cfg := arch.SuperNPU()
	fm := &faultinject.Model{Seed: 42, PulseDrop: 1e-6, BitFlip: 1e-8}

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	t.Cleanup(simcache.ClearAll)

	if _, err := SimulateFaulted(context.Background(), cfg, net, 1, fm); err != nil {
		t.Fatal(err)
	}
	hits, misses := layerCache.Counters()
	if hits != 0 || misses != 0 {
		t.Errorf("faulted simulation touched the layer cache (%d hits, %d misses); site-keyed draws must stay per layer", hits, misses)
	}
}

func TestNegativeBatchRejectedNonNegativeMessage(t *testing.T) {
	net := repeatedNet(1)
	cfg := arch.SuperNPU()
	_, err := Simulate(context.Background(), cfg, net, -1)
	if err == nil {
		t.Fatal("negative batch accepted")
	}
	if got := err.Error(); !containsAll(got, "non-negative", "MaxBatch") {
		t.Errorf("error %q should state the non-negative requirement and the batch-0 convention", got)
	}
	_, err = SimulateFaulted(context.Background(), cfg, net, -1, &faultinject.Model{Seed: 1, BitFlip: 1e-9})
	if err == nil {
		t.Fatal("negative faulted batch accepted")
	}
	if got := err.Error(); !containsAll(got, "non-negative", "MaxBatch") {
		t.Errorf("faulted error %q should state the non-negative requirement and the batch-0 convention", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		if !strings.Contains(s, sub) {
			return false
		}
	}
	return true
}
