package guard

import (
	"fmt"
	"sync/atomic"
)

// Budget is a deterministic work budget counted in simulation steps. It
// bounds runaway transients the way a wall-clock timeout would, but — the
// point — identically on every machine and at every worker count: the
// outcome of a budgeted run is a pure function of the inputs and the
// budget, never of scheduling.
//
// A nil *Budget is valid and unlimited, so call sites thread budgets
// unconditionally. Budgets are safe for concurrent use; several solver
// runs may draw from one shared budget.
type Budget struct {
	max  int64
	used atomic.Int64
}

// NewBudget returns a budget of maxSteps steps. maxSteps <= 0 means
// unlimited.
func NewBudget(maxSteps int64) *Budget {
	return &Budget{max: maxSteps}
}

// Spend charges n steps against the budget and returns an error wrapping
// ErrBudgetExceeded once the total charge passes the limit. Spending on a
// nil or unlimited budget always succeeds. The error path is the only one
// that allocates, so per-chunk charging inside a hot loop stays
// allocation-free until the budget actually runs out.
func (b *Budget) Spend(n int64) error {
	if b == nil || b.max <= 0 {
		return nil
	}
	if used := b.used.Add(n); used > b.max {
		return fmt.Errorf("%w: %d of %d steps", ErrBudgetExceeded, used, b.max)
	}
	return nil
}

// Used returns the steps charged so far.
func (b *Budget) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used.Load()
}

// Remaining returns the steps left, or -1 for an unlimited budget.
func (b *Budget) Remaining() int64 {
	if b == nil || b.max <= 0 {
		return -1
	}
	if r := b.max - b.used.Load(); r > 0 {
		return r
	}
	return 0
}
