package guard

import "context"

// Watch gives a hot loop a cheap, deterministic cancellation poll: arm it
// against a context once per run, then call Canceled at any frequency. A
// poll is one nil check plus, for cancelable contexts, one ctx.Err() call
// — no channel select, no goroutine, no callback registration, and no
// allocation on any path.
//
// Determinism matters as much as cost: context cancellation publishes its
// error before closing the done channel, so the very first poll after a
// cancel() returns observes it. Nothing asynchronous sits between the
// cancel and the loop noticing.
//
// The zero value is an inert watch that never reports cancellation.
// Arming against a context that can never be canceled (ctx.Done() == nil,
// e.g. context.Background()) stays on the nil-check fast path, which is
// how the jsim solver keeps its zero-allocation steady state on the
// uncancellable path.
type Watch struct {
	done <-chan struct{}
	ctx  context.Context
}

// Arm points the watch at ctx, resetting any previous arming.
// Uncancellable contexts arm to the inert state.
func (w *Watch) Arm(ctx context.Context) {
	w.ctx = ctx
	w.done = ctx.Done()
}

// Disarm returns the watch to the inert state. Safe to call on an unarmed
// or zero-value watch.
func (w *Watch) Disarm() {
	w.ctx = nil
	w.done = nil
}

// Canceled reports whether the armed context has fired. Inert and
// uncancellable watches report false without touching the context.
func (w *Watch) Canceled() bool {
	return w.done != nil && w.ctx.Err() != nil
}

// Err returns the taxonomy-wrapped error of the armed context: nil while
// it is live (or when the watch is unarmed), ErrCanceled or
// ErrDeadlineExceeded after it fires.
func (w *Watch) Err() error {
	if w.ctx == nil {
		return nil
	}
	return CtxErr(w.ctx)
}
