// Package leaktest asserts that a test leaves no goroutines behind. The
// parallel pool and the server's graceful drain both promise complete
// shutdown; these helpers turn that promise into a failing test instead of
// a slow leak that only shows up as creeping goroutine counts in
// production.
package leaktest

import (
	"runtime"
	"testing"
	"time"
)

// settleWindow bounds how long Check waits for goroutines started by the
// test to finish after cleanup begins. Shutdown paths under test are
// synchronous (pool Wait, server Shutdown), so the window only needs to
// absorb runtime bookkeeping, not real work.
const settleWindow = 3 * time.Second

// Check snapshots the goroutine count and registers a cleanup that fails
// tb if the count has not settled back to the snapshot (or below) by the
// end of the test. Call it first, before the code under test starts any
// goroutines.
func Check(tb testing.TB) {
	tb.Helper()
	before := runtime.NumGoroutine()
	tb.Cleanup(func() {
		if settles(before) {
			return
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		tb.Errorf("goroutine leak: %d before, %d after settle window\n%s",
			before, runtime.NumGoroutine(), buf[:n])
	})
}

// settles polls the goroutine count until it drops back to at most the
// baseline or the settle window expires. The poll sleeps briefly between
// samples so goroutines in their final returns get scheduled.
func settles(baseline int) bool {
	deadline := time.Now().Add(settleWindow)
	for {
		if runtime.NumGoroutine() <= baseline {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(5 * time.Millisecond)
	}
}
