// Package guard is the resilience layer of the simulation core: a typed,
// errors.Is-able failure taxonomy plus the small deterministic mechanisms
// the modeling packages use to stay bounded and cancellable — an atomic
// cancellation flag cheap enough for the RK4 hot loop (Watch), a
// deterministic step budget (Budget), and a count-based divergence circuit
// breaker (Breaker).
//
// Every failure a long-running simulation can hit maps onto one of five
// sentinels:
//
//	ErrCanceled         the caller's context was canceled
//	ErrDeadlineExceeded the caller's context deadline passed
//	ErrDiverged         the numeric state left its physical bounds
//	ErrNonFinite        a NaN or Inf appeared in the state or a result
//	ErrBudgetExceeded   a deterministic step budget ran out
//
// The first two are transient: retrying the same computation with a fresh
// context can succeed, so caches must never memoise them (simcache evicts
// them, see IsTransient). The last three are deterministic properties of
// the inputs and are safe to memoise.
//
// Nothing in this package reads the wall clock or draws randomness: budgets
// are counted in solver steps and the breaker in consecutive failures, so
// every decision is reproducible byte for byte across runs and worker
// counts — the repository's core determinism contract.
package guard

import (
	"context"
	"errors"
	"fmt"
)

// The failure taxonomy. All errors produced by this package (and by the
// modeling packages' guard integration points) wrap exactly one of these,
// so callers classify failures with errors.Is and never by string.
var (
	// ErrCanceled marks work abandoned because the caller's context was
	// canceled. Errors wrapping it also wrap context.Canceled.
	ErrCanceled = errors.New("guard: canceled")
	// ErrDeadlineExceeded marks work abandoned because the caller's
	// context deadline passed. Errors wrapping it also wrap
	// context.DeadlineExceeded.
	ErrDeadlineExceeded = errors.New("guard: deadline exceeded")
	// ErrDiverged marks a simulation whose state left its physical bounds
	// and could not recover.
	ErrDiverged = errors.New("guard: diverged")
	// ErrNonFinite marks a NaN or Inf detected in simulation state or in
	// a derived result.
	ErrNonFinite = errors.New("guard: non-finite value")
	// ErrBudgetExceeded marks a computation that ran out of its
	// deterministic step budget.
	ErrBudgetExceeded = errors.New("guard: step budget exceeded")
)

// CtxErr maps ctx.Err() into the taxonomy: nil while the context is live,
// otherwise an error wrapping both the matching guard sentinel
// (ErrCanceled or ErrDeadlineExceeded) and the original context error, so
// errors.Is succeeds against either family.
func CtxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return wrapCtx(err)
	}
	return nil
}

// WrapCancellation lifts an error that carries a bare context sentinel
// somewhere in its chain into the guard taxonomy. Errors already classified
// and errors unrelated to cancellation pass through unchanged.
func WrapCancellation(err error) error {
	if err == nil || errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) {
		return err
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return wrapCtx(err)
	}
	return err
}

func wrapCtx(err error) error {
	mCancellations.Inc()
	if errors.Is(err, context.DeadlineExceeded) {
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	}
	return fmt.Errorf("%w: %w", ErrCanceled, err)
}

// IsCancellation reports whether err belongs to the cancellation class:
// guard or context cancellation/deadline sentinels anywhere in the chain.
func IsCancellation(err error) bool {
	return errors.Is(err, ErrCanceled) || errors.Is(err, ErrDeadlineExceeded) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// IsTransient reports whether err describes a failure of this particular
// attempt rather than of the computation's inputs: cancellations, deadline
// expiries, and budget exhaustion. Transient errors must never be memoised
// — the same inputs can succeed under a fresh context or a larger budget.
func IsTransient(err error) bool {
	return IsCancellation(err) || errors.Is(err, ErrBudgetExceeded)
}

// IsNumeric reports whether err describes a numeric simulation failure
// (divergence or a non-finite value) — the class the circuit breaker
// counts. Numeric failures are deterministic in the inputs.
func IsNumeric(err error) bool {
	return errors.Is(err, ErrDiverged) || errors.Is(err, ErrNonFinite)
}
