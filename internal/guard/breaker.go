package guard

import "sync"

// Breaker is a divergence circuit breaker: per key (a design name), it
// counts consecutive numeric simulation failures and, once they reach the
// threshold, short-circuits further attempts so callers can fall back to a
// cheap degraded path instead of re-running a computation that keeps
// blowing up.
//
// The state machine is deliberately count-based, not time-based — there is
// no wall clock anywhere, so a request trace replayed in order reproduces
// the exact same breaker decisions:
//
//	closed    every attempt allowed; a failure increments the consecutive
//	          count, a success resets it; count == threshold opens.
//	open      attempts are denied except every probeEvery-th one, which is
//	          allowed through as a half-open probe.
//	half-open the probe's outcome decides: success closes the breaker and
//	          clears the count, failure re-opens it for another
//	          probeEvery-1 denials.
//
// Only numeric failures (IsNumeric: ErrDiverged, ErrNonFinite) and
// failures the caller explicitly classifies as breaking count; transient
// cancellations never trip the breaker — a client hanging up is not
// evidence the design diverges.
type Breaker struct {
	threshold  int
	probeEvery int

	mu sync.Mutex
	m  map[string]*breakerEntry
}

type breakerEntry struct {
	fails   int // consecutive breaking failures
	open    bool
	skipped int // denials since the breaker opened
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and, while open, lets every probeEvery-th attempt through as a
// half-open probe. threshold < 1 is clamped to 1, probeEvery < 1 to 1
// (every attempt probes, i.e. the breaker only sheds the failure count).
func NewBreaker(threshold, probeEvery int) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if probeEvery < 1 {
		probeEvery = 1
	}
	return &Breaker{threshold: threshold, probeEvery: probeEvery, m: map[string]*breakerEntry{}}
}

// Allow reports whether an attempt for key should run. While the breaker
// is open it returns false except on each probeEvery-th call, which is the
// half-open probe.
func (b *Breaker) Allow(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[key]
	if e == nil || !e.open {
		return true
	}
	e.skipped++
	if e.skipped%b.probeEvery == 0 {
		return true
	}
	return false
}

// Record feeds an attempt's outcome back. err == nil closes the breaker
// and clears the failure count. A breaking error (IsNumeric) increments
// the consecutive count and opens the breaker at the threshold. Any other
// error — transient cancellations included — leaves the state untouched.
func (b *Breaker) Record(key string, err error) {
	if err != nil && !IsNumeric(err) {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[key]
	if e == nil {
		e = &breakerEntry{}
		b.m[key] = e
	}
	if err == nil {
		e.fails, e.open, e.skipped = 0, false, 0
		setBreakerState(key, 0)
		return
	}
	e.fails++
	if e.fails >= b.threshold {
		e.open = true
		setBreakerState(key, 1)
	}
}

// Open reports whether the breaker for key is currently open.
func (b *Breaker) Open(key string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	e := b.m[key]
	return e != nil && e.open
}
