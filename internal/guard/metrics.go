// Guard instruments. Write-only from this package and from the modeling
// packages that call into it (the obsflow lint rule enforces the
// direction); counters are always-live atomics so arming a watch or
// charging a budget never branches on the obs gate.

package guard

import "supernpu/internal/obs"

var (
	mCancellations = obs.Default.Counter("supernpu_guard_cancellations_total",
		"context cancellations and deadline expiries mapped into the guard taxonomy")
	mRetries = obs.Default.Counter("supernpu_guard_retries_total",
		"bounded retry attempts taken after a numeric simulation failure")
)

// CountRetry records one bounded-retry attempt; the jsim refined-dt
// recovery path calls it on every re-run it takes.
func CountRetry() { mRetries.Inc() }

// setBreakerState publishes the breaker state for one key as a labeled
// gauge (0 closed, 1 open).
func setBreakerState(key string, state int64) {
	obs.Default.Gauge("supernpu_guard_breaker_state",
		"divergence circuit-breaker state per design (0 closed, 1 open)",
		obs.L("design", key)).Set(state)
}
