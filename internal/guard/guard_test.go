package guard

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestCtxErrLiveContext(t *testing.T) {
	if err := CtxErr(context.Background()); err != nil {
		t.Fatalf("CtxErr(Background) = %v, want nil", err)
	}
}

func TestCtxErrCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("errors.Is(err, ErrCanceled) = false for %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false for %v", err)
	}
	if errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("canceled context misclassified as deadline: %v", err)
	}
}

func TestCtxErrDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := CtxErr(ctx)
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Errorf("errors.Is(err, ErrDeadlineExceeded) = false for %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("errors.Is(err, context.DeadlineExceeded) = false for %v", err)
	}
}

func TestWrapCancellation(t *testing.T) {
	base := fmt.Errorf("sweep point 3: %w", context.Canceled)
	err := WrapCancellation(base)
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("wrapped chain lost ErrCanceled: %v", err)
	}
	// Already-classified errors pass through unchanged.
	if again := WrapCancellation(err); again != err {
		t.Errorf("double wrap changed error: %v -> %v", err, again)
	}
	// Unrelated errors pass through unchanged.
	plain := errors.New("plain")
	if got := WrapCancellation(plain); got != plain {
		t.Errorf("unrelated error rewritten: %v", got)
	}
	if got := WrapCancellation(nil); got != nil {
		t.Errorf("WrapCancellation(nil) = %v", got)
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		err                              error
		cancellation, transient, numeric bool
	}{
		{fmt.Errorf("x: %w", ErrCanceled), true, true, false},
		{fmt.Errorf("x: %w", ErrDeadlineExceeded), true, true, false},
		{fmt.Errorf("x: %w", context.Canceled), true, true, false},
		{fmt.Errorf("x: %w", ErrBudgetExceeded), false, true, false},
		{fmt.Errorf("x: %w", ErrDiverged), false, false, true},
		{fmt.Errorf("x: %w", ErrNonFinite), false, false, true},
		{errors.New("plain"), false, false, false},
	}
	for _, c := range cases {
		if got := IsCancellation(c.err); got != c.cancellation {
			t.Errorf("IsCancellation(%v) = %v, want %v", c.err, got, c.cancellation)
		}
		if got := IsTransient(c.err); got != c.transient {
			t.Errorf("IsTransient(%v) = %v, want %v", c.err, got, c.transient)
		}
		if got := IsNumeric(c.err); got != c.numeric {
			t.Errorf("IsNumeric(%v) = %v, want %v", c.err, got, c.numeric)
		}
	}
}

func TestWatchInertForBackground(t *testing.T) {
	var w Watch
	w.Arm(context.Background())
	defer w.Disarm()
	if w.Canceled() {
		t.Error("Background watch reports canceled")
	}
	if err := w.Err(); err != nil {
		t.Errorf("Background watch Err() = %v", err)
	}
}

func TestWatchFiresOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var w Watch
	w.Arm(ctx)
	defer w.Disarm()
	if w.Canceled() {
		t.Fatal("watch fired before cancel")
	}
	cancel()
	// Cancellation publishes the context error before cancel() returns, so
	// the very next poll must observe it — no settling loop needed.
	if !w.Canceled() {
		t.Fatal("watch did not observe cancellation on the first poll after cancel")
	}
	if err := w.Err(); !errors.Is(err, ErrCanceled) {
		t.Errorf("watch Err() = %v, want ErrCanceled", err)
	}
}

func TestWatchArmOfAlreadyCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var w Watch
	w.Arm(ctx)
	defer w.Disarm()
	if !w.Canceled() {
		t.Error("watch armed on a dead context does not report canceled")
	}
}

func TestWatchRearm(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var w Watch
	w.Arm(ctx)
	cancel()
	w.Arm(context.Background())
	defer w.Disarm()
	if w.Canceled() {
		t.Error("re-armed watch still reports the previous context's cancellation")
	}
}

func TestBudget(t *testing.T) {
	b := NewBudget(100)
	if err := b.Spend(60); err != nil {
		t.Fatalf("first spend: %v", err)
	}
	if err := b.Spend(40); err != nil {
		t.Fatalf("exact spend to the limit: %v", err)
	}
	err := b.Spend(1)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-limit spend = %v, want ErrBudgetExceeded", err)
	}
	if got := b.Used(); got != 101 {
		t.Errorf("Used() = %d, want 101", got)
	}
	if got := b.Remaining(); got != 0 {
		t.Errorf("Remaining() = %d, want 0", got)
	}
}

func TestBudgetUnlimited(t *testing.T) {
	var b *Budget
	if err := b.Spend(1 << 40); err != nil {
		t.Errorf("nil budget spend: %v", err)
	}
	if got := b.Remaining(); got != -1 {
		t.Errorf("nil budget Remaining() = %d, want -1", got)
	}
	if err := NewBudget(0).Spend(1 << 40); err != nil {
		t.Errorf("zero budget spend: %v", err)
	}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	b := NewBreaker(3, 4)
	div := fmt.Errorf("x: %w", ErrDiverged)
	for i := 0; i < 2; i++ {
		b.Record("d", div)
		if !b.Allow("d") {
			t.Fatalf("breaker open after %d failures, threshold 3", i+1)
		}
	}
	b.Record("d", div)
	if b.Allow("d") {
		t.Fatal("breaker still closed after 3 consecutive numeric failures")
	}
	if !b.Open("d") {
		t.Fatal("Open() = false on a tripped breaker")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b := NewBreaker(1, 3)
	b.Record("d", fmt.Errorf("x: %w", ErrNonFinite))
	// Denied, denied, probe — deterministic count-based cadence.
	got := []bool{b.Allow("d"), b.Allow("d"), b.Allow("d")}
	want := []bool{false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("open-breaker Allow cadence = %v, want %v", got, want)
		}
	}
	// A successful probe closes the breaker.
	b.Record("d", nil)
	if !b.Allow("d") || b.Open("d") {
		t.Fatal("breaker did not close after successful probe")
	}
}

func TestBreakerIgnoresTransientErrors(t *testing.T) {
	b := NewBreaker(1, 2)
	b.Record("d", fmt.Errorf("x: %w", ErrCanceled))
	b.Record("d", errors.New("plain failure"))
	if !b.Allow("d") {
		t.Fatal("breaker tripped by non-numeric errors")
	}
	// Consecutive-failure count is not reset by a transient error either:
	// two numeric failures around a cancellation still trip threshold 2.
	b2 := NewBreaker(2, 2)
	div := fmt.Errorf("x: %w", ErrDiverged)
	b2.Record("d", div)
	b2.Record("d", fmt.Errorf("x: %w", ErrCanceled))
	b2.Record("d", div)
	if b2.Allow("d") {
		t.Fatal("cancellation between numeric failures reset the breaker count")
	}
}

func TestBreakerKeysIndependent(t *testing.T) {
	b := NewBreaker(1, 2)
	b.Record("bad", fmt.Errorf("x: %w", ErrDiverged))
	if b.Allow("bad") {
		t.Fatal("tripped key still allowed")
	}
	if !b.Allow("good") {
		t.Fatal("untripped key denied")
	}
}
