// Package netlist is the gate-level circuit structure model of the
// estimator's microarchitecture layer (Fig. 10): a directed acyclic graph
// of SFQ cells from which the layer "generates the intra-unit gate pair and
// the gate count information".
//
// SFQ logic is gate-level pipelined by nature — every clocked cell is a
// pipeline stage. Consequently a gate whose inputs traverse different
// numbers of clocked cells needs path-balancing DFFs on its shallow inputs,
// and every signal fanning out to k consumers needs k−1 splitters. The
// package computes stage depths, inserts the balancing/fan-out cells, and
// derives the cell inventory and the clocked gate pairs whose timing bounds
// the unit's frequency.
package netlist

import (
	"fmt"

	"supernpu/internal/clocking"
	"supernpu/internal/sfq"
)

// NodeID identifies a node in the graph.
type NodeID int

// edge is one fan-in connection with its wire-cell annotation.
type edge struct {
	from NodeID
	// wire lists the unclocked cells (JTL, splitter, merger) the pulse
	// traverses on this connection, in order.
	wire []sfq.GateKind
}

type node struct {
	id      NodeID
	kind    sfq.GateKind
	name    string
	isInput bool
	fanin   []edge
}

// Graph is a DAG of SFQ cells under construction. Nodes must be added in
// topological order (fan-ins must already exist).
type Graph struct {
	nodes []node
}

// New returns an empty graph.
func New() *Graph { return &Graph{} }

// Input declares a primary input (no cell, stage 0).
func (g *Graph) Input(name string) NodeID {
	id := NodeID(len(g.nodes))
	g.nodes = append(g.nodes, node{id: id, name: name, isInput: true})
	return id
}

// Conn describes one fan-in of a gate: the driving node and the wire cells
// on the connection.
type Conn struct {
	From NodeID
	Wire []sfq.GateKind
}

// From is a Conn with no explicit wire cells.
func From(id NodeID) Conn { return Conn{From: id} }

// Via annotates a connection with wire cells.
func Via(id NodeID, wire ...sfq.GateKind) Conn { return Conn{From: id, Wire: wire} }

// Add appends a clocked cell with the given fan-ins and returns its id. It
// panics if a fan-in does not exist yet (construction must be topological)
// or if the kind is an unclocked wire cell (wire cells belong on edges).
func (g *Graph) Add(kind sfq.GateKind, name string, fanins ...Conn) NodeID {
	switch kind {
	case sfq.JTL, sfq.Splitter, sfq.Merger, sfq.TFF:
		panic(fmt.Sprintf("netlist: %s is a wire cell; annotate it on an edge", kind))
	}
	id := NodeID(len(g.nodes))
	n := node{id: id, kind: kind, name: name}
	for _, c := range fanins {
		if c.From < 0 || c.From >= id {
			panic(fmt.Sprintf("netlist: node %q fan-in %d out of range", name, c.From))
		}
		n.fanin = append(n.fanin, edge{from: c.From, wire: c.Wire})
	}
	g.nodes = append(g.nodes, n)
	return id
}

// Nodes returns the number of nodes (inputs + cells).
func (g *Graph) Nodes() int { return len(g.nodes) }

// Stages returns the pipeline depth: the maximum clocked depth over all
// cells (inputs are stage 0; each clocked cell is one stage deeper than its
// deepest fan-in).
func (g *Graph) Stages() int {
	depth := g.depths()
	max := 0
	for _, d := range depth {
		if d > max {
			max = d
		}
	}
	return max
}

func (g *Graph) depths() []int {
	depth := make([]int, len(g.nodes))
	for i, n := range g.nodes {
		if n.isInput {
			depth[i] = 0
			continue
		}
		d := 0
		for _, e := range n.fanin {
			if depth[e.from] > d {
				d = depth[e.from]
			}
		}
		depth[i] = d + 1
	}
	return depth
}

// BalancingDFFs returns the number of path-balancing DFFs gate-level
// pipelining requires: for every fan-in of every clocked cell, the input
// must arrive exactly one stage earlier than the cell fires, so a fan-in
// whose producer sits s stages shallower needs s−1 re-timing DFFs. Output
// alignment pads every terminal cell to the full pipeline depth.
func (g *Graph) BalancingDFFs() int {
	depth := g.depths()
	total := 0
	consumed := make([]bool, len(g.nodes))
	for _, n := range g.nodes {
		if n.isInput {
			continue
		}
		for _, e := range n.fanin {
			consumed[e.from] = true
			deficit := depth[n.id] - 1 - depth[e.from]
			if deficit > 0 {
				total += deficit
			}
		}
	}
	// Terminal cells (no consumers) align to the final stage.
	max := g.Stages()
	for i, n := range g.nodes {
		if n.isInput || consumed[i] {
			continue
		}
		total += max - depth[i]
	}
	return total
}

// FanoutSplitters returns the splitters needed to duplicate pulses: a node
// driving k consumers needs k−1 splitters.
func (g *Graph) FanoutSplitters() int {
	consumers := make([]int, len(g.nodes))
	for _, n := range g.nodes {
		for _, e := range n.fanin {
			consumers[e.from]++
		}
	}
	total := 0
	for _, c := range consumers {
		if c > 1 {
			total += c - 1
		}
	}
	return total
}

// Inventory returns the full cell multiset of the pipelined unit: the
// declared cells, their edge wire cells, the path-balancing DFFs, fan-out
// splitters, one clock splitter per clocked cell, and two interconnect JTLs
// per cell — the counts the estimator's power/area models consume.
func (g *Graph) Inventory() sfq.Inventory {
	inv := sfq.Inventory{}
	clocked := 0
	for _, n := range g.nodes {
		if n.isInput {
			continue
		}
		inv.AddGate(n.kind, 1)
		clocked++
		for _, e := range n.fanin {
			for _, w := range e.wire {
				inv.AddGate(w, 1)
			}
		}
	}
	balance := g.BalancingDFFs()
	inv.AddGate(sfq.DFF, balance)
	inv.AddGate(sfq.Splitter, g.FanoutSplitters())
	inv.AddGate(sfq.Splitter, clocked+balance) // clock distribution
	inv.AddGate(sfq.JTL, 2*(clocked+balance))  // interconnect
	return inv
}

// Pairs returns the clocked gate pairs of the unit for the frequency model:
// one pair per (clocked or input)→clocked edge, with the edge's wire cells
// as the residual data/clock mismatch that skewing cannot remove.
func (g *Graph) Pairs(lib *sfq.Library) []clocking.Pair {
	var pairs []clocking.Pair
	dff := lib.Gate(sfq.DFF)
	for _, n := range g.nodes {
		if n.isInput {
			continue
		}
		dst := lib.Gate(n.kind)
		for _, e := range n.fanin {
			src := dff // primary inputs arrive from a latch
			if f := g.nodes[e.from]; !f.isInput {
				src = lib.Gate(f.kind)
			}
			wire := make([]sfq.Gate, len(e.wire))
			for i, w := range e.wire {
				wire[i] = lib.Gate(w)
			}
			pairs = append(pairs, clocking.Pair{Src: src, Dst: dst, MismatchWire: wire})
		}
	}
	return pairs
}

// Frequency returns the unit's clock frequency under skewed concurrent-flow
// clocking (the graph is a feed-forward pipeline by construction).
func (g *Graph) Frequency(lib *sfq.Library) float64 {
	return clocking.PipelineFrequency(g.Pairs(lib), clocking.ConcurrentFlowSkewed)
}
