package netlist

import (
	"math"
	"testing"
	"testing/quick"

	"supernpu/internal/pe"
	"supernpu/internal/sfq"
)

func lib() *sfq.Library { return sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ) }

func TestGraphConstruction(t *testing.T) {
	g := New()
	a := g.Input("a")
	b := g.Input("b")
	and := g.Add(sfq.AND, "and", From(a), From(b))
	g.Add(sfq.DFF, "out", Via(and, sfq.JTL))

	if g.Nodes() != 4 {
		t.Fatalf("Nodes() = %d, want 4", g.Nodes())
	}
	if g.Stages() != 2 {
		t.Fatalf("Stages() = %d, want 2 (AND then DFF)", g.Stages())
	}
	inv := g.Inventory()
	if inv[sfq.AND] != 1 || inv[sfq.JTL] < 1 {
		t.Fatalf("inventory missing declared cells: %v", inv)
	}
}

func TestWireCellsRejectedAsNodes(t *testing.T) {
	g := New()
	defer func() {
		if recover() == nil {
			t.Fatal("wire cells must be edge annotations, not nodes")
		}
	}()
	g.Add(sfq.JTL, "bad")
}

func TestTopologicalOrderEnforced(t *testing.T) {
	g := New()
	g.Input("a")
	defer func() {
		if recover() == nil {
			t.Fatal("forward references must panic")
		}
	}()
	g.Add(sfq.AND, "and", From(NodeID(99)))
}

// Path balancing: a gate fed by inputs of different clocked depth needs
// re-timing DFFs on the shallow input.
func TestBalancingDFFs(t *testing.T) {
	g := New()
	a := g.Input("a")
	b := g.Input("b")
	// a goes through two gates; b goes straight into the merge gate.
	d1 := g.Add(sfq.DFF, "d1", From(a))
	d2 := g.Add(sfq.DFF, "d2", From(d1))
	g.Add(sfq.AND, "merge", From(d2), From(b))
	// merge sits at stage 3; b (stage 0) needs 3−1−0 = 2 balancing DFFs;
	// a's path is exact.
	if got := g.BalancingDFFs(); got != 2 {
		t.Fatalf("BalancingDFFs() = %d, want 2", got)
	}
}

func TestOutputAlignment(t *testing.T) {
	g := New()
	a := g.Input("a")
	d1 := g.Add(sfq.DFF, "deep1", From(a))
	g.Add(sfq.DFF, "deep2", From(d1))  // terminal at stage 2
	g.Add(sfq.DFF, "shallow", From(a)) // terminal at stage 1 → +1 pad
	if got := g.BalancingDFFs(); got != 1 {
		t.Fatalf("terminal alignment DFFs = %d, want 1", got)
	}
}

func TestFanoutSplitters(t *testing.T) {
	g := New()
	a := g.Input("a")
	g.Add(sfq.DFF, "c1", From(a))
	g.Add(sfq.DFF, "c2", From(a))
	g.Add(sfq.DFF, "c3", From(a))
	// Three consumers → two splitters.
	if got := g.FanoutSplitters(); got != 2 {
		t.Fatalf("FanoutSplitters() = %d, want 2", got)
	}
}

// The generated MAC netlist must agree with the PE package's closed-form
// structure model: identical logic-gate counts, the same 52.6 GHz binding
// pair, and a pipeline depth in the same regime.
func TestMACMatchesPEModel(t *testing.T) {
	const bits, accBits = 8, 24
	g := MAC(bits, accBits, 1)
	peInv := pe.Default8Bit(1).Inventory()
	inv := g.Inventory()

	if inv[sfq.AND] != peInv[sfq.AND] {
		t.Errorf("AND count: netlist %d vs pe %d", inv[sfq.AND], peInv[sfq.AND])
	}
	if inv[sfq.FA] != peInv[sfq.FA] {
		t.Errorf("FA count: netlist %d vs pe %d", inv[sfq.FA], peInv[sfq.FA])
	}
	if inv[sfq.NDRO] != peInv[sfq.NDRO] {
		t.Errorf("NDRO count: netlist %d vs pe %d", inv[sfq.NDRO], peInv[sfq.NDRO])
	}

	fNet := g.Frequency(lib()) / sfq.GHz
	fPE := pe.Default8Bit(1).Frequency(lib()) / sfq.GHz
	if math.Abs(fNet-fPE) > 0.01 {
		t.Errorf("frequency: netlist %.2f GHz vs pe %.2f GHz", fNet, fPE)
	}
	if math.Abs(fNet-52.6) > 1 {
		t.Errorf("MAC netlist frequency = %.2f GHz, want ~52.6", fNet)
	}

	// The DAG stage count is the structural lower bound of the PE's
	// 15-stage pipeline (the closed form adds layout retiming margin).
	if s := g.Stages(); s < 9 || s > 18 {
		t.Errorf("MAC stages = %d, want 9..18", s)
	}

	// The netlist's structural JJ count is a lower bound on (and the bulk
	// of) the closed-form inventory that also carries layout overhead.
	jjNet, jjPE := inv.JJs(lib()), peInv.JJs(lib())
	if jjNet > jjPE {
		t.Errorf("netlist JJs (%d) must not exceed the layout-calibrated model (%d)", jjNet, jjPE)
	}
	if float64(jjNet) < 0.25*float64(jjPE) {
		t.Errorf("netlist JJs (%d) implausibly far below the model (%d)", jjNet, jjPE)
	}
}

func TestMACRegisterPlanes(t *testing.T) {
	one := MAC(8, 24, 1).Inventory()
	eight := MAC(8, 24, 8).Inventory()
	if eight[sfq.NDRO] != 8*one[sfq.NDRO] {
		t.Fatalf("8 register planes must hold 8× the NDRO bits: %d vs %d",
			eight[sfq.NDRO], one[sfq.NDRO])
	}
	if eight[sfq.MUXCell] == 0 {
		t.Fatal("multi-register MAC needs per-bit plane selectors")
	}
	l := lib()
	if MAC(8, 24, 8).Frequency(l) != MAC(8, 24, 1).Frequency(l) {
		t.Fatal("register planes must not change the binding pair frequency")
	}
}

// Property: after balancing, every fan-in of every clocked cell arrives
// exactly one stage before the cell fires — i.e. re-running the deficit
// computation on a graph with DFF chains inserted would find zero. We check
// the equivalent invariant: BalancingDFFs equals the sum of all stage
// deficits, and is non-negative and stable.
func TestBalancingDeterministicProperty(t *testing.T) {
	f := func(widths uint8) bool {
		b := 2 + int(widths)%7
		g := MAC(b, 3*b, 1)
		n1, n2 := g.BalancingDFFs(), g.BalancingDFFs()
		return n1 == n2 && n1 >= 0 && g.Stages() >= b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: inventory grows monotonically with operand width.
func TestMACWidthMonotoneProperty(t *testing.T) {
	l := lib()
	f := func(w uint8) bool {
		b := 2 + int(w)%8
		small := MAC(b, 3*b, 1).Inventory().JJs(l)
		big := MAC(b+1, 3*(b+1), 1).Inventory().JJs(l)
		return big > small
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFrequencyOfEmptyGraph(t *testing.T) {
	g := New()
	g.Input("only")
	if f := g.Frequency(lib()); !math.IsInf(f, 1) {
		t.Fatalf("a graph with no clocked pairs has unbounded frequency, got %g", f)
	}
}
