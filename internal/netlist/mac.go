package netlist

import (
	"fmt"

	"supernpu/internal/sfq"
)

// MAC builds the gate-level netlist of the weight-stationary multiply-
// accumulate datapath (Section III-B): NDRO weight registers (one plane per
// register, steered by per-bit selectors when registers > 1), the bits×bits
// AND partial-product array, a carry-save reduction array of full adders,
// and the accBits-wide partial-sum accumulation row.
//
// The carry edges of the reduction and accumulation are annotated with the
// reconvergent fan-in wiring (splitter, two confluence buffers, one JTL)
// whose arrival mismatch clock skewing cannot remove — the pair that pins
// the unit, and hence the NPU, at ≈52.6 GHz.
func MAC(bits, accBits, registers int) *Graph {
	g := New()

	read := g.Input("read")
	x := make([]NodeID, bits)
	for j := range x {
		x[j] = g.Input(fmt.Sprintf("x%d", j))
	}
	ps := make([]NodeID, accBits)
	for j := range ps {
		ps[j] = g.Input(fmt.Sprintf("ps%d", j))
	}

	// Weight register planes; with several registers a per-bit selector
	// steers the active plane (multi-kernel execution, Section V-B3).
	w := make([]NodeID, bits)
	for i := 0; i < bits; i++ {
		planes := make([]Conn, 0, registers)
		for k := 0; k < registers; k++ {
			planes = append(planes, From(g.Add(sfq.NDRO,
				fmt.Sprintf("w%d.%d", k, i), From(read))))
		}
		if registers == 1 {
			w[i] = planes[0].From
			continue
		}
		w[i] = g.Add(sfq.MUXCell, fmt.Sprintf("wsel%d", i), planes...)
	}

	// Partial products.
	pp := make([][]NodeID, bits)
	for i := 0; i < bits; i++ {
		pp[i] = make([]NodeID, bits)
		for j := 0; j < bits; j++ {
			pp[i][j] = g.Add(sfq.AND, fmt.Sprintf("pp%d_%d", i, j),
				Via(x[j], sfq.Splitter),
				Via(w[i], sfq.Splitter))
		}
	}

	// Carry-save reduction: (bits−1) rows of bits full adders. Row i folds
	// partial-product row i into the running sum/carry vectors.
	critical := []sfq.GateKind{sfq.Splitter, sfq.Merger, sfq.Merger, sfq.JTL}
	sum := pp[0]
	carry := make([]NodeID, 0)
	for i := 1; i < bits; i++ {
		nsum := make([]NodeID, bits)
		ncarry := make([]NodeID, bits)
		for j := 0; j < bits; j++ {
			fanin := []Conn{Via(sum[j], sfq.Splitter), From(pp[i][j])}
			if j < len(carry) {
				fanin = append(fanin, Via(carry[j], critical...))
			}
			fa := g.Add(sfq.FA, fmt.Sprintf("r%d_%d", i, j), fanin...)
			nsum[j] = fa
			ncarry[j] = fa
		}
		sum, carry = nsum, ncarry
	}

	// Accumulation: one parallel row of accBits full adders merging the
	// reduced product into the incoming partial sum.
	for j := 0; j < accBits; j++ {
		fanin := []Conn{From(ps[j])}
		if j < bits {
			fanin = append(fanin, Via(sum[j], sfq.Splitter))
		}
		if j > 0 && j-1 < len(carry) {
			fanin = append(fanin, Via(carry[j-1], critical...))
		}
		g.Add(sfq.FA, fmt.Sprintf("acc%d", j), fanin...)
	}
	return g
}
