package srmem

import (
	"fmt"

	"supernpu/internal/faultinject"
)

// DropRetryCycles converts a shift count into the recovery cost of the
// fault model's thermal pulse drops: each dropped pulse forces the chunk
// holding the lost fluxon to recirculate once so the entry can be re-shifted
// (shift registers have no ECC — the only repair is replay). The count is a
// deterministic function of (model, shifts, site), so the charge is
// identical across runs and worker counts.
func (c Config) DropRetryCycles(fm *faultinject.Model, shifts int64, site string) (dropped, retryCycles int64) {
	if !fm.Enabled() {
		return 0, 0
	}
	dropped = fm.Count(fm.PulseDrop, shifts, site)
	return dropped, dropped * int64(c.RecirculateCycles())
}

// ShiftFaulted is Shift under the fault model: with probability PulseDrop
// the shifted-out entry loses one pulse — a bit that should read 1 reads 0,
// the physical signature of a fluxon failing to propagate. The faulted bit
// position is drawn deterministically from the same site, and dropped
// reports whether this shift was hit. The site must uniquely name this
// shift (e.g. include a sequence number) for independent draws.
func (m *Memory) ShiftFaulted(in []byte, fm *faultinject.Model, site string) (out []byte, outValid, dropped bool) {
	out, outValid = m.Shift(in)
	if !fm.Enabled() || fm.PulseDrop <= 0 || !outValid {
		return out, outValid, false
	}
	if fm.Uniform(site) >= fm.PulseDrop {
		return out, outValid, false
	}
	bit := int(fm.Uniform(site+"\x00bit") * float64(m.width*8))
	if bit >= m.width*8 {
		bit = m.width*8 - 1
	}
	out[bit/8] &^= 1 << (bit % 8)
	return out, outValid, true
}

// FaultSite builds the canonical per-shift site string for ShiftFaulted.
func FaultSite(prefix string, shift int64) string {
	return fmt.Sprintf("%s/shift/%d", prefix, shift)
}
