package srmem

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
)

func lib() *sfq.Library { return sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ) }

const mb = 1 << 20

// The paper's Fig. 16 example: moving partial sums between the 8 MB ofmap
// and 8 MB psum buffers (256 B/cycle each) costs 65,536 cycles in the
// Baseline — 16 MB ÷ 256 B/cycle.
func TestFig16InterBufferMoveCost(t *testing.T) {
	ofmap := Config{WidthBytes: 256, CapacityBytes: 8 * mb, Chunks: 1}
	psum := Config{WidthBytes: 256, CapacityBytes: 8 * mb, Chunks: 1}
	if got := ofmap.InterBufferMoveCycles(psum, 8*mb); got != 65536 {
		t.Fatalf("inter-buffer move = %d cycles, want 65536", got)
	}
}

func TestDivisionShortensRecirculation(t *testing.T) {
	base := Config{WidthBytes: 256, CapacityBytes: 8 * mb, Chunks: 1}
	div := base
	div.Chunks = 64
	if base.RecirculateCycles() != 32768 {
		t.Fatalf("monolithic recirculation = %d, want 32768", base.RecirculateCycles())
	}
	if got := div.RecirculateCycles(); got != 512 {
		t.Fatalf("divided recirculation = %d, want 512", got)
	}
}

func TestFillDrainCycles(t *testing.T) {
	c := Config{WidthBytes: 64, CapacityBytes: mb, Chunks: 4}
	if c.FillCycles(640) != 10 || c.DrainCycles(640) != 10 {
		t.Fatal("fill/drain must cost bytes/width cycles")
	}
	if c.FillCycles(1) != 1 {
		t.Fatal("partial entries round up")
	}
	if c.FillCycles(0) != 0 {
		t.Fatal("zero bytes cost zero cycles")
	}
}

func TestValidate(t *testing.T) {
	good := Config{WidthBytes: 64, CapacityBytes: mb, Chunks: 16}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{
		{WidthBytes: 0, CapacityBytes: mb, Chunks: 1},
		{WidthBytes: 64, CapacityBytes: 0, Chunks: 1},
		{WidthBytes: 64, CapacityBytes: mb, Chunks: 0},
		{WidthBytes: 64, CapacityBytes: 128, Chunks: 64}, // chunks too fine
	} {
		if bad.Validate() == nil {
			t.Errorf("Validate must reject %+v", bad)
		}
	}
}

// Shift-register buffers are feedback loops → counter-flow clocked at
// ~71 GHz (Fig. 7c), still above the 52.6 GHz NPU clock.
func TestCounterFlowFrequency(t *testing.T) {
	f := Frequency(lib()) / sfq.GHz
	if math.Abs(f-71) > 3 {
		t.Fatalf("buffer frequency = %.1f GHz, want ~71", f)
	}
}

func TestDivisionAreaOverhead(t *testing.T) {
	l := lib()
	mono := Config{WidthBytes: 256, CapacityBytes: 12 * mb, Chunks: 1}
	div64 := mono
	div64.Chunks = 64
	div4096 := mono
	div4096.Chunks = 4096

	a1, a64, a4096 := mono.Area(l), div64.Area(l), div4096.Area(l)
	if !(a1 < a64 && a64 < a4096) {
		t.Fatal("area must grow with division degree")
	}
	// Division 64 is cheap (a few percent); 4096 is not (Fig. 20).
	if (a64-a1)/a1 > 0.05 {
		t.Errorf("division 64 overhead = %.1f%%, want < 5%%", (a64-a1)/a1*100)
	}
	if (a4096-a1)/a1 < 0.10 {
		t.Errorf("division 4096 overhead = %.1f%%, want noticeable (> 10%%)", (a4096-a1)/a1*100)
	}
}

func TestChunkShiftEnergyShrinksWithDivision(t *testing.T) {
	l := lib()
	mono := Config{WidthBytes: 256, CapacityBytes: 8 * mb, Chunks: 1}
	div := mono
	div.Chunks = 64
	em, ed := mono.ChunkShiftEnergy(l), div.ChunkShiftEnergy(l)
	if math.Abs(em/ed-64) > 0.01 {
		t.Fatalf("64-way division must cut per-access energy 64×, got %.2f×", em/ed)
	}
}

func TestMemoryFIFOOrder(t *testing.T) {
	m := NewMemory(4, 2)
	inputs := [][]byte{{1, 1}, {2, 2}, {3, 3}, {4, 4}}
	for _, in := range inputs {
		if _, valid := m.Shift(in); valid {
			t.Fatal("empty register must emit invalid entries while filling")
		}
	}
	for i, want := range inputs {
		out, valid := m.Shift(nil)
		if !valid || !bytes.Equal(out, want) {
			t.Fatalf("drain %d: got %v (valid=%v), want %v", i, out, valid, want)
		}
	}
	if _, valid := m.Shift(nil); valid {
		t.Fatal("register must be empty after full drain")
	}
}

func TestMemoryRecirculation(t *testing.T) {
	m := NewMemory(3, 1)
	for _, b := range []byte{10, 20, 30} {
		m.Shift([]byte{b})
	}
	// One recirculating shift: the tail (10) re-enters at the head.
	out, valid := m.Shift(nil)
	if !valid || out[0] != 10 {
		t.Fatalf("tail = %v (valid=%v), want 10", out, valid)
	}
	m.shiftBack(out)
	head, ok := m.Peek(0)
	if !ok || head[0] != 10 {
		t.Fatalf("recirculated entry must be at the head, got %v", head)
	}
	next, ok := m.Peek(1)
	if !ok || next[0] != 30 {
		t.Fatalf("order after recirculation wrong (head is newest), got %v at index 1", next)
	}
}

// shiftBack is a test helper modelling the feedback loop: it replaces the
// invalid head slot the previous Shift(nil) created with the tail value.
func (m *Memory) shiftBack(v []byte) {
	copy(m.entries[m.head], v)
	m.valid[m.head] = true
}

// Property: after exactly Len() recirculating shifts (tail fed back to
// head), the memory content returns to its original order — the feedback
// loop of Fig. 2(b) is a rotation.
func TestRecirculationRotationProperty(t *testing.T) {
	f := func(raw []byte, n8 uint8) bool {
		n := 1 + int(n8)%16
		m := NewMemory(n, 1)
		vals := make([]byte, n)
		for i := 0; i < n; i++ {
			if i < len(raw) {
				vals[i] = raw[i]
			}
			m.Shift([]byte{vals[i]})
		}
		// One full rotation via the feedback loop.
		for i := 0; i < n; i++ {
			out, valid := m.Shift(nil)
			if !valid {
				return false
			}
			m.shiftBack(out)
		}
		// Contents must be back in the post-fill order: head (index 0)
		// holds the newest value, the tail the oldest.
		for i := 0; i < n; i++ {
			got, valid := m.Peek(i)
			if !valid || got[0] != vals[n-1-i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: fill/drain cycle costs are consistent — filling n bytes then
// draining them costs 2·ceil(n/width) cycles, independent of division.
func TestFillDrainSymmetryProperty(t *testing.T) {
	f := func(n uint16, w8, chunks8 uint8) bool {
		w := 1 + int(w8)%512
		chunks := 1 + int(chunks8)%8
		c := Config{WidthBytes: w, CapacityBytes: w * chunks * 64, Chunks: chunks}
		nb := int(n)
		want := (nb + w - 1) / w
		return c.FillCycles(nb) == want && c.DrainCycles(nb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryPanicsAndPeekBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMemory must panic on non-positive geometry")
		}
	}()
	m := NewMemory(4, 2)
	if _, ok := m.Peek(-1); ok {
		t.Fatal("Peek out of range must report false")
	}
	if _, ok := m.Peek(4); ok {
		t.Fatal("Peek out of range must report false")
	}
	if m.Width() != 2 || m.Len() != 4 {
		t.Fatal("geometry accessors wrong")
	}
	NewMemory(0, 1)
}

func TestShiftWidthMismatchPanics(t *testing.T) {
	m := NewMemory(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Shift must panic on wrong entry width")
		}
	}()
	m.Shift([]byte{1})
}
