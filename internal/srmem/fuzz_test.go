package srmem

import (
	"testing"
)

// FuzzMemoryShift drives the functional shift register with an arbitrary
// push/idle script against a trivial reference model: a fixed-length slot
// pipeline where every shift moves all slots by one. Opcode 0xFF is an idle
// shift (invalid slot in); anything else pushes that byte.
func FuzzMemoryShift(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0xFF, 4}, uint8(4))
	f.Add([]byte{0x30, 0xFF, 0x30}, uint8(1))
	f.Add([]byte{}, uint8(1))
	f.Fuzz(func(t *testing.T, script []byte, n8 uint8) {
		n := 1 + int(n8)%32
		m := NewMemory(n, 1)

		// Reference: slots[0] is the head (newest), slots[n-1] the tail.
		type slot struct {
			v     byte
			valid bool
		}
		slots := make([]slot, n)

		for i, op := range script {
			var in []byte
			want := slots[n-1]
			// Shift the model (backwards: head value must not smear).
			for j := n - 1; j >= 1; j-- {
				slots[j] = slots[j-1]
			}
			if op == 0xFF {
				slots[0] = slot{}
			} else {
				in = []byte{op}
				slots[0] = slot{v: op, valid: true}
			}

			out, valid := m.Shift(in)
			if valid != want.valid {
				t.Fatalf("op %d: valid=%v, want %v", i, valid, want.valid)
			}
			if valid && out[0] != want.v {
				t.Fatalf("op %d: out=%d, want %d", i, out[0], want.v)
			}
			// Peek must agree with the model at every index.
			for j := 0; j < n; j++ {
				got, ok := m.Peek(j)
				if ok != slots[j].valid {
					t.Fatalf("op %d: Peek(%d) valid=%v, want %v", i, j, ok, slots[j].valid)
				}
				if ok && got[0] != slots[j].v {
					t.Fatalf("op %d: Peek(%d)=%d, want %d", i, j, got[0], slots[j].v)
				}
			}
		}
	})
}
