package srmem

import (
	"bytes"
	"testing"

	"supernpu/internal/faultinject"
)

func TestDropRetryCycles(t *testing.T) {
	c := Config{WidthBytes: 4, CapacityBytes: 1024, Chunks: 4}
	if d, r := c.DropRetryCycles(nil, 1e6, "x"); d != 0 || r != 0 {
		t.Fatalf("nil model charged %d drops, %d cycles", d, r)
	}
	fm := &faultinject.Model{Seed: 5, PulseDrop: 1e-3}
	d, r := c.DropRetryCycles(fm, 1e6, "buf")
	if d <= 0 {
		t.Fatal("no drops at 1e-3 over 1e6 shifts")
	}
	if want := d * int64(c.RecirculateCycles()); r != want {
		t.Fatalf("retry cycles %d, want drops x chunk length = %d", r, want)
	}
	d2, r2 := c.DropRetryCycles(fm, 1e6, "buf")
	if d2 != d || r2 != r {
		t.Fatal("DropRetryCycles not deterministic")
	}
}

func TestShiftFaultedDropsOneBitDeterministically(t *testing.T) {
	run := func() ([]byte, bool) {
		m := NewMemory(4, 2)
		fm := &faultinject.Model{Seed: 9, PulseDrop: 1} // every shift drops
		in := []byte{0xFF, 0xFF}
		for i := 0; i < 4; i++ {
			m.Shift(in)
		}
		out, ok, dropped := m.ShiftFaulted(in, fm, FaultSite("test", 4))
		if !ok || !dropped {
			t.Fatalf("drop not injected (valid=%v dropped=%v)", ok, dropped)
		}
		return out, dropped
	}
	a, _ := run()
	b, _ := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("faulted shift not deterministic: %x vs %x", a, b)
	}
	ones := 0
	for _, by := range a {
		for i := 0; i < 8; i++ {
			ones += int(by>>i) & 1
		}
	}
	if ones != 15 {
		t.Fatalf("expected exactly one dropped bit, got %d set of 16", ones)
	}
}

func TestShiftFaultedDisabledMatchesShift(t *testing.T) {
	m1, m2 := NewMemory(3, 2), NewMemory(3, 2)
	in := []byte{0xAB, 0xCD}
	for i := 0; i < 5; i++ {
		a, av := m1.Shift(in)
		b, bv, dropped := m2.ShiftFaulted(in, nil, FaultSite("x", int64(i)))
		if dropped || av != bv || !bytes.Equal(a, b) {
			t.Fatal("disabled fault model changed Shift semantics")
		}
	}
}
