// Package srmem models the shift-register-based on-chip memory that SFQ
// logic favours over RAM (Section II-B3): serially connected DFF rows with a
// feedback loop. It provides
//
//   - a functional ring-shift model used by the cycle-stepped systolic array
//     tests,
//   - the cycle-cost model of the performance simulator (filling, draining
//     and recirculating data costs cycles proportional to the shifted
//     length — the root of the paper's first bottleneck), and
//   - the cell inventory, including the multiplexer/demultiplexer trees and
//     selection wiring that buffer division adds (Fig. 19/20).
package srmem

import (
	"fmt"

	"supernpu/internal/clocking"
	"supernpu/internal/sfq"
)

// Config describes one shift-register buffer macro.
type Config struct {
	// WidthBytes is the number of bytes presented per cycle — one byte
	// lane per served PE-array row or column.
	WidthBytes int
	// CapacityBytes is the macro's total storage.
	CapacityBytes int
	// Chunks is the division degree: the number of independently selected
	// shift-register chunks the capacity is split into (1 = monolithic,
	// the Baseline; SuperNPU divides its buffers into ≥64 chunks).
	Chunks int
}

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 || c.CapacityBytes <= 0 || c.Chunks <= 0 {
		return fmt.Errorf("srmem: all Config fields must be positive, got %+v", c)
	}
	if c.CapacityBytes < c.WidthBytes*c.Chunks {
		return fmt.Errorf("srmem: capacity %d too small for %d chunks of width %d",
			c.CapacityBytes, c.Chunks, c.WidthBytes)
	}
	return nil
}

// Entries is the total number of width-wide entries the macro holds.
func (c Config) Entries() int { return c.CapacityBytes / c.WidthBytes }

// ChunkEntries is the length of one chunk in entries.
func (c Config) ChunkEntries() int { return c.Entries() / c.Chunks }

// FillCycles is the number of shift-in cycles needed to load n bytes.
func (c Config) FillCycles(n int) int {
	return (n + c.WidthBytes - 1) / c.WidthBytes
}

// DrainCycles is the number of shift-out cycles needed to unload n bytes.
func (c Config) DrainCycles(n int) int { return c.FillCycles(n) }

// RecirculateCycles is the cost of moving an entry from a chunk's tail back
// to its head so it can be consumed again: the whole chunk must rotate once.
// For a monolithic buffer this is the full buffer length — e.g. 32768 cycles
// for an 8 MB buffer with 256 B/cycle width — and it is paid whenever
// already-used data is needed for the next computation (Fig. 16 ②).
func (c Config) RecirculateCycles() int { return c.ChunkEntries() }

// InterBufferMoveCycles is the cost of moving n bytes from a chunk of this
// buffer into a chunk of dst by shifting both: the data walks out of the
// source chunk and into the destination chunk (Fig. 16 ①: ofmap → psum
// movement costs the sum of the two buffer lengths in the Baseline).
func (c Config) InterBufferMoveCycles(dst Config, n int) int {
	return c.RecirculateCycles() + dst.RecirculateCycles()
}

// Frequency returns the macro's clock frequency: the serial DFF rows form a
// feedback loop (the recirculation path), so the buffer is counter-flow
// clocked (Fig. 7(b)).
func Frequency(lib *sfq.Library) float64 {
	dff := lib.Gate(sfq.DFF)
	pair := clocking.Pair{Src: dff, Dst: dff}
	return clocking.Frequency(pair.CCT(clocking.CounterFlow))
}

// bitCell returns the cells of one storage bit: the DFF itself, its clock
// splitter and two interconnect JTL segments.
func bitCell() sfq.Inventory {
	return sfq.Inventory{sfq.DFF: 1, sfq.Splitter: 1, sfq.JTL: 2}
}

// selectionWiringJTLPerBit is the transmission-line cost per chunk per bit
// lane of routing the selected chunk to/from the macro port: chunks are
// spread across the buffer floorplan, so every additional chunk pays a full
// crossing of the macro.
const selectionWiringJTLPerBit = 50

// Inventory returns the macro's cell multiset: storage bit-cells plus, when
// divided, the MUX/DEMUX selection trees and their fan-out wiring. The
// selection overhead grows with the division degree — the reason Fig. 20
// shows exponentially increasing area beyond division 64.
func (c Config) Inventory() sfq.Inventory {
	inv := sfq.Inventory{}
	bits := c.CapacityBytes * 8
	inv.Add(bitCell(), bits)

	if c.Chunks > 1 {
		laneBits := c.WidthBytes * 8
		// Binary DEMUX tree into the chunks and MUX tree out of them:
		// (Chunks−1) steering nodes per bit lane on each side.
		inv.AddGate(sfq.DEMUXCell, (c.Chunks-1)*laneBits)
		inv.AddGate(sfq.MUXCell, (c.Chunks-1)*laneBits)
		// Selection fan-out wiring spanning the macro.
		inv.AddGate(sfq.JTL, c.Chunks*laneBits*selectionWiringJTLPerBit)
	}
	return inv
}

// StaticPower returns the macro's DC bias dissipation.
func (c Config) StaticPower(lib *sfq.Library) float64 {
	return c.Inventory().StaticPower(lib)
}

// Area returns the macro's laid-out area in m².
func (c Config) Area(lib *sfq.Library) float64 {
	return c.Inventory().Area(lib)
}

// ChunkShiftEnergy is the dynamic energy of shifting one chunk by one
// position: every bit of the chunk moves. Division therefore reduces both
// access latency and access energy — unselected chunks are clock-gated.
func (c Config) ChunkShiftEnergy(lib *sfq.Library) float64 {
	bitsPerChunk := c.ChunkEntries() * c.WidthBytes * 8
	return float64(bitsPerChunk) * bitCell().AccessEnergy(lib)
}

// Memory is the functional ring-shift model: a fixed-length chain of
// width-wide entries with a feedback loop from tail to head. It implements
// exactly the semantics the cost model charges cycles for.
type Memory struct {
	width   int
	entries [][]byte
	head    int // index of the entry currently at the input end
	valid   []bool
}

// NewMemory returns a functional shift register of the given geometry.
// It panics on a non-positive geometry: dimensions are compile-time or
// validated-config constants, so a bad value is a programmer error.
func NewMemory(entries, widthBytes int) *Memory {
	if entries <= 0 || widthBytes <= 0 {
		panic("srmem: entries and width must be positive")
	}
	m := &Memory{
		width:   widthBytes,
		entries: make([][]byte, entries),
		valid:   make([]bool, entries),
	}
	for i := range m.entries {
		m.entries[i] = make([]byte, widthBytes)
	}
	return m
}

// Len returns the number of entries.
func (m *Memory) Len() int { return len(m.entries) }

// Width returns the entry width in bytes.
func (m *Memory) Width() int { return m.width }

func (m *Memory) idx(i int) int { return (m.head + i) % len(m.entries) }

// Shift performs one clock of the chain: the tail entry leaves the register
// and is returned; in becomes the new head entry. Passing the returned tail
// back as in on the next call is recirculation — the feedback loop of
// Fig. 2(b). A nil in shifts in an invalid (zero) entry. Shift panics on a
// width mismatch: entry geometry is fixed at construction, so a wrong
// width is a programmer error.
func (m *Memory) Shift(in []byte) (out []byte, outValid bool) {
	if in != nil && len(in) != m.width {
		panic(fmt.Sprintf("srmem: entry width %d, want %d", len(in), m.width))
	}
	tail := m.idx(len(m.entries) - 1)
	out = make([]byte, m.width)
	copy(out, m.entries[tail])
	outValid = m.valid[tail]

	// The tail slot becomes the new head slot.
	m.head = tail
	if in == nil {
		for i := range m.entries[tail] {
			m.entries[tail][i] = 0
		}
		m.valid[tail] = false
	} else {
		copy(m.entries[tail], in)
		m.valid[tail] = true
	}
	return out, outValid
}

// Peek returns entry i counted from the head without shifting. It is a test
// convenience; real shift-register memory has no random access, which is
// exactly why the cost model charges shifting cycles.
func (m *Memory) Peek(i int) ([]byte, bool) {
	if i < 0 || i >= len(m.entries) {
		return nil, false
	}
	out := make([]byte, m.width)
	copy(out, m.entries[m.idx(i)])
	return out, m.valid[m.idx(i)]
}
