package experiments

import (
	"context"
	"fmt"

	"supernpu/internal/arch"
	"supernpu/internal/checkpoint"
	"supernpu/internal/faultinject"
	"supernpu/internal/jsim"
	"supernpu/internal/npusim"
	"supernpu/internal/parallel"
	"supernpu/internal/report"
	"supernpu/internal/workload"
)

// MarginSweepOptions configures the bias-margin robustness exhibit. The
// zero value (except Seed) selects the defaults below.
type MarginSweepOptions struct {
	// Seed keys every fault draw; the same seed reproduces the exhibit
	// byte-for-byte.
	Seed int64
	// IcSpreads are the fractional critical-current sigmas to sweep.
	// Default: 0 to 10% in 2% steps.
	IcSpreads []float64
	// PulseDropPerSpread, BitFlipPerSpread and ErosionPerSpread couple the
	// secondary fault rates to the spread: at spread σ the model injects
	// PulseDropPerSpread·σ drops per shift, BitFlipPerSpread·σ flips per
	// MAC and stretches timing by ErosionPerSpread·σ — junctions sitting
	// closer to their margins suffer more thermal events and slower
	// switching. Defaults: 1e-4, 1e-2, 0.5.
	PulseDropPerSpread float64
	BitFlipPerSpread   float64
	ErosionPerSpread   float64
	// Checkpoint, when non-nil, records each completed row and lets a
	// killed sweep resume without re-simulating finished rows.
	Checkpoint *checkpoint.Store
}

func (o *MarginSweepOptions) defaults() {
	if len(o.IcSpreads) == 0 {
		o.IcSpreads = []float64{0, 0.02, 0.04, 0.06, 0.08, 0.10}
	}
	if o.PulseDropPerSpread == 0 {
		o.PulseDropPerSpread = 1e-4
	}
	if o.BitFlipPerSpread == 0 {
		o.BitFlipPerSpread = 1e-2
	}
	if o.ErosionPerSpread == 0 {
		o.ErosionPerSpread = 0.5
	}
}

// model builds the fault model for one spread point.
func (o MarginSweepOptions) model(spread float64) *faultinject.Model {
	return &faultinject.Model{
		Seed:          o.Seed,
		IcSpread:      spread,
		PulseDrop:     o.PulseDropPerSpread * spread,
		BitFlip:       o.BitFlipPerSpread * spread,
		MarginErosion: o.ErosionPerSpread * spread,
	}
}

// marginRow is one computed (and checkpointed) sweep row.
type marginRow struct {
	Spread        float64 `json:"spread"`
	MarginLow     float64 `json:"margin_low"`
	MarginHigh    float64 `json:"margin_high"`
	Frequency     float64 `json:"frequency"`
	ThroughputRel float64 `json:"throughput_rel"`
	Accuracy      float64 `json:"accuracy"`
	DroppedPulses int64   `json:"dropped_pulses"`
	RetryCycles   int64   `json:"retry_cycles"`
}

// MarginSweep regenerates the bias-margin robustness exhibit: SuperNPU on
// ResNet-50 (batch 1) swept over junction critical-current spread, with the
// secondary fault rates coupled to the spread. Per row it reports the
// JTL bias-margin window extracted from the perturbed RCSJ transients, the
// chip frequency at the eroded operating point, throughput relative to the
// nominal design, the datapath accuracy proxy and the pulse-drop recovery
// cost. Every draw is seed- and site-keyed, so the table is byte-identical
// across runs and worker counts; rows already in the checkpoint store are
// emitted without any simulation.
func MarginSweep(ctx context.Context, o MarginSweepOptions) (string, error) {
	o.defaults()
	resnet, err := workload.ByName("ResNet50")
	if err != nil {
		return "", err
	}
	cfg := arch.SuperNPU()

	rowKey := func(i int) string {
		return "margin-sweep:" + cfg.Name + ":" + resnet.Name + o.model(o.IcSpreads[i]).Key()
	}
	rows := make([]marginRow, len(o.IcSpreads))
	var pending []int
	for i := range o.IcSpreads {
		if !o.Checkpoint.Get(rowKey(i), &rows[i]) {
			pending = append(pending, i)
		}
	}
	// The nominal reference only matters while rows remain to be computed:
	// a fully checkpointed sweep resumes with zero simulation work.
	if len(pending) > 0 {
		nominal, err := npusim.Simulate(ctx, cfg, resnet, 1)
		if err != nil {
			return "", err
		}
		// The RCSJ transients dominate a cold sweep: evaluate every pending
		// grid point's bias margins through the batched chain runner first —
		// one reusable solver per worker across all bisection probes — then
		// assemble the rows (cycle simulation + checkpoint) in a second
		// fan-out. Results are memoised, so a resumed sweep pays nothing.
		models := make([]*faultinject.Model, len(pending))
		for k, i := range pending {
			models[k] = o.model(o.IcSpreads[i])
		}
		margins, err := jsim.BiasMarginsFaultedBatch(ctx, models)
		if err != nil {
			return "", err
		}
		err = parallel.ForEachContext(ctx, len(pending), func(ctx context.Context, k int) error {
			i := pending[k]
			fm := models[k]
			m := margins[k]
			r, err := npusim.SimulateFaulted(ctx, cfg, resnet, 1, fm)
			if err != nil {
				return err
			}
			row := marginRow{
				Spread:        o.IcSpreads[i],
				MarginLow:     m.Low,
				MarginHigh:    m.High,
				Frequency:     r.Frequency,
				ThroughputRel: r.Throughput / nominal.Throughput,
				Accuracy:      1,
			}
			if r.Faults != nil {
				row.Accuracy = r.Faults.Accuracy
				row.DroppedPulses = r.Faults.DroppedPulses
				row.RetryCycles = r.Faults.RetryCycles
			}
			rows[i] = row
			return o.Checkpoint.Put(rowKey(i), row)
		})
		if err != nil {
			return "", err
		}
	}

	t := report.NewTable(
		fmt.Sprintf("Margin sweep: SuperNPU on ResNet50, Ic spread vs margins/throughput/accuracy (seed %d)", o.Seed),
		"Ic spread", "bias low (xIc)", "bias high (xIc)", "margin width",
		"frequency (GHz)", "throughput rel.", "accuracy proxy", "dropped pulses", "retry cycles")
	for _, r := range rows {
		t.AddRow(
			fmt.Sprintf("%.0f%%", r.Spread*100),
			report.F(r.MarginLow, 3),
			report.F(r.MarginHigh, 3),
			report.F(r.MarginHigh-r.MarginLow, 3),
			report.F(r.Frequency/1e9, 2),
			report.F(r.ThroughputRel, 4),
			report.F(r.Accuracy, 4),
			fmt.Sprintf("%d", r.DroppedPulses),
			fmt.Sprintf("%d", r.RetryCycles),
		)
	}
	t.AddNote("secondary rates per unit spread: pulse drop %g/shift, bit flip %g/MAC, timing erosion %g",
		o.PulseDropPerSpread, o.BitFlipPerSpread, o.ErosionPerSpread)
	t.AddNote("deterministic under a fixed seed: identical output across runs and worker counts")
	return t.String(), nil
}
