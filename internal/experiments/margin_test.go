package experiments

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"supernpu/internal/checkpoint"
	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
)

// smallMarginOpts keeps the sweep cheap: three spreads instead of six.
func smallMarginOpts(seed int64) MarginSweepOptions {
	return MarginSweepOptions{
		Seed:      seed,
		IcSpreads: []float64{0, 0.04, 0.08},
	}
}

func TestMarginSweepByteIdenticalAcrossRunsAndWorkers(t *testing.T) {
	defer parallel.SetWorkers(0)
	var renders []string
	for _, w := range []int{1, 4, 1} {
		parallel.SetWorkers(w)
		simcache.ClearAll() // force genuine re-simulation per run
		s, err := MarginSweep(context.Background(), smallMarginOpts(42))
		if err != nil {
			t.Fatal(err)
		}
		renders = append(renders, s)
	}
	if renders[0] != renders[1] || renders[1] != renders[2] {
		t.Fatal("margin sweep output differs across runs/worker counts")
	}
	if !strings.Contains(renders[0], "seed 42") {
		t.Fatalf("exhibit does not name its seed:\n%s", renders[0])
	}
}

func TestMarginSweepSeedChangesExhibit(t *testing.T) {
	simcache.ClearAll()
	a, err := MarginSweep(context.Background(), smallMarginOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarginSweep(context.Background(), smallMarginOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Fatal("different seeds produced identical exhibits")
	}
}

// totalMisses sums cache misses across every registered simcache.
func totalMisses(t *testing.T) int64 {
	t.Helper()
	var n int64
	for _, s := range simcache.Snapshot() {
		n += s.Misses
	}
	return n
}

func TestMarginSweepResumesWithoutResimulating(t *testing.T) {
	path := filepath.Join(t.TempDir(), "margin.ck")
	ck, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	o := smallMarginOpts(9)
	o.Checkpoint = ck
	simcache.ClearAll()
	first, err := MarginSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Len() != len(o.IcSpreads) {
		t.Fatalf("checkpointed %d rows, want %d", ck.Len(), len(o.IcSpreads))
	}
	ck.Close()

	// A fresh process: caches cold, checkpoint reopened. The resumed sweep
	// must emit the identical exhibit with zero simulation work.
	simcache.ClearAll()
	before := totalMisses(t)
	ck2, err := checkpoint.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ck2.Close()
	o.Checkpoint = ck2
	second, err := MarginSweep(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if second != first {
		t.Fatal("resumed sweep differs from the original run")
	}
	if d := totalMisses(t) - before; d != 0 {
		t.Fatalf("resumed sweep re-simulated: %d cache misses", d)
	}
}
