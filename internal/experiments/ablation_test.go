package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestAblationIDsDispatch(t *testing.T) {
	if len(AblationIDs()) != 7 {
		t.Fatalf("got %d ablations, want 7", len(AblationIDs()))
	}
	for _, id := range AblationIDs() {
		out, err := Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, "Ablation:") {
			t.Errorf("%s output missing the Ablation marker", id)
		}
	}
}

// The dataflow ablation must show the ~2× counter-flow penalty.
func TestAblationDataflowShowsFeedbackPenalty(t *testing.T) {
	out, err := AblationDataflow(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "weight-stationary") || !strings.Contains(out, "counter-flow") {
		t.Fatalf("missing dataflow rows:\n%s", out)
	}
	if !strings.Contains(out, "52.6") {
		t.Error("WS PE must run at the 52.6 GHz NPU clock")
	}
}

// The DAU ablation must show batch collapse for the duplication-heavy nets.
func TestAblationNoDAUCollapsesBatch(t *testing.T) {
	out, err := AblationNoDAU(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"VGG16", "AlexNet", "duplicated"} {
		if !strings.Contains(out, m) {
			t.Errorf("output missing %q", m)
		}
	}
}

// The skew ablation must report a slowdown without skew tuning.
func TestAblationSkewSlowdown(t *testing.T) {
	out, err := AblationClockSkewing(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "unskewed") {
		t.Fatalf("missing unskewed row:\n%s", out)
	}
}

// Scaling must show the linear frequency growth and the 200 nm clamp.
func TestAblationScalingRows(t *testing.T) {
	out, err := AblationScaling(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"1.00 um", "0.50 um", "0.20 um"} {
		if !strings.Contains(out, m) {
			t.Errorf("output missing %q row", m)
		}
	}
}
