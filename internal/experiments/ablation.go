package experiments

import (
	"context"
	"fmt"

	"supernpu/internal/arch"
	"supernpu/internal/clocking"
	"supernpu/internal/core"
	"supernpu/internal/memsys"
	"supernpu/internal/npusim"
	"supernpu/internal/pe"
	"supernpu/internal/report"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// AblationIDs lists the ablation studies that quantify the design choices
// DESIGN.md calls out, beyond the paper's own exhibits.
func AblationIDs() []string {
	return []string{
		"ablation-dataflow", "ablation-skew", "ablation-dau",
		"ablation-bandwidth", "ablation-scaling", "ablation-batch",
		"ablation-memsys",
	}
}

// runAblation dispatches ablation ids (used by Run).
func runAblation(ctx context.Context, id string) (string, bool, error) {
	switch id {
	case "ablation-dataflow":
		out, err := AblationDataflow(ctx)
		return out, true, err
	case "ablation-skew":
		out, err := AblationClockSkewing(ctx)
		return out, true, err
	case "ablation-dau":
		out, err := AblationNoDAU(ctx)
		return out, true, err
	case "ablation-bandwidth":
		out, err := AblationBandwidth(ctx)
		return out, true, err
	case "ablation-scaling":
		out, err := AblationScaling(ctx)
		return out, true, err
	case "ablation-batch":
		out, err := AblationBatch(ctx)
		return out, true, err
	case "ablation-memsys":
		out, err := AblationMemsys(ctx)
		return out, true, err
	default:
		return "", false, nil
	}
}

// AblationDataflow quantifies the weight-stationary choice (Section III-B):
// the output-stationary PE's accumulator feedback forces counter-flow
// clocking and costs the whole NPU its clock.
func AblationDataflow(ctx context.Context) (string, error) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	t := report.NewTable("Ablation: PE dataflow (Section III-B design choice)",
		"dataflow", "feedback loop", "clocking", "PE clock (GHz)", "SuperNPU peak (TMAC/s)")
	for _, df := range []pe.Dataflow{pe.WeightStationary, pe.InputStationary, pe.OutputStationary} {
		cfg := pe.Default8Bit(1)
		cfg.Dataflow = df
		f := cfg.Frequency(lib)
		scheme := clocking.LoopScheme(df.HasFeedback())
		t.AddRow(df.String(),
			fmt.Sprintf("%v", df.HasFeedback()),
			scheme.String(),
			report.F(f/sfq.GHz, 1),
			report.F(float64(arch.SuperNPU().PEs())*f/1e12, 0))
	}
	t.AddNote("the WS/IS pipelines run over 2x faster than the OS accumulate-in-place loop")
	return t.String(), nil
}

// AblationClockSkewing quantifies the clock-skewing frequency-enhancing
// technique (Section IV-A2): without skew tuning the clock pulse must wait
// out the full data propagation of every pair.
func AblationClockSkewing(ctx context.Context) (string, error) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	skewed := pe.Default8Bit(1).CriticalPairs(lib)
	// The unskewed variant exposes each pair's full data path against a
	// single-JTL clock hop.
	unskewed := make([]clocking.Pair, len(skewed))
	for i, p := range skewed {
		unskewed[i] = clocking.Pair{
			Src: p.Src, Dst: p.Dst,
			DataWire:  p.MismatchWire,
			ClockWire: []sfq.Gate{lib.Gate(sfq.JTL)},
		}
	}
	fSkew := clocking.PipelineFrequency(skewed, clocking.ConcurrentFlowSkewed)
	fPlain := clocking.PipelineFrequency(unskewed, clocking.ConcurrentFlow)

	t := report.NewTable("Ablation: clock skewing (Section IV-A2)",
		"clocking", "PE clock (GHz)", "relative")
	t.AddRow("concurrent-flow + skew tuning", report.F(fSkew/sfq.GHz, 1), "1.00")
	t.AddRow("concurrent-flow, unskewed", report.F(fPlain/sfq.GHz, 1), report.F(fPlain/fSkew, 2))
	t.AddNote("skew tuning hides the data/clock arrival mismatch the long MAC paths create")
	return t.String(), nil
}

// AblationNoDAU quantifies the data alignment unit: without it, every ifmap
// buffer row stores all pixels its PE row needs, so duplicated pixels
// (Fig. 8) consume the buffer and collapse the batch.
func AblationNoDAU(ctx context.Context) (string, error) {
	t := report.NewTable("Ablation: removing the data alignment unit",
		"workload", "duplicated pixels %", "batch w/ DAU", "batch w/o DAU", "throughput w/o DAU (rel.)")
	for _, net := range workload.All() {
		dup := net.DuplicatedPixelRatio()
		cfg := arch.SuperNPU()
		withDAU, err := npusim.Simulate(ctx, cfg, net, 0)
		if err != nil {
			return "", err
		}
		// Naive buffering stores 1/(1−dup)× the data: the effective ifmap
		// capacity shrinks accordingly.
		naive := cfg
		naive.Name = "SuperNPU w/o DAU"
		naive.IfmapBufBytes = int(float64(cfg.IfmapBufBytes) * (1 - dup))
		withoutDAU, err := npusim.Simulate(ctx, naive, net, 0)
		if err != nil {
			return "", err
		}
		t.AddRow(net.Name,
			report.F(dup*100, 1),
			fmt.Sprintf("%d", withDAU.Batch),
			fmt.Sprintf("%d", withoutDAU.Batch),
			report.F(withoutDAU.Throughput/withDAU.Throughput, 2))
	}
	t.AddNote("storing duplicates costs up to ~10x of the ifmap capacity and with it the batch-driven reuse")
	return t.String(), nil
}

// AblationBandwidth sweeps the off-chip bandwidth around the paper's
// 300 GB/s HBM assumption, exposing where SuperNPU turns memory-bound.
func AblationBandwidth(ctx context.Context) (string, error) {
	t := report.NewTable("Ablation: off-chip memory bandwidth (SuperNPU)",
		"bandwidth (GB/s)", "avg effective (TMAC/s)", "avg PE utilization %")
	for _, gb := range []float64{75, 150, 300, 600, 1200} {
		cfg := arch.SuperNPU()
		cfg.MemoryBandwidth = gb * 1e9
		var tput, util float64
		for _, net := range workload.All() {
			r, err := npusim.Simulate(ctx, cfg, net, 0)
			if err != nil {
				return "", err
			}
			tput += r.Throughput / 6
			util += r.PEUtilization / 6
		}
		t.AddRow(report.F(gb, 0), report.F(tput/1e12, 1), report.F(util*100, 1))
	}
	t.AddNote("the paper's 300 GB/s setting sits on the knee: halving bandwidth hurts, doubling helps little")
	return t.String(), nil
}

// AblationScaling projects the SuperNPU clock under the JJ feature-size
// scaling rule of the paper's footnote 2 (linear down to ~200 nm).
func AblationScaling(ctx context.Context) (string, error) {
	t := report.NewTable("Ablation: JJ feature-size scaling (paper footnote 2)",
		"process", "PE clock (GHz)", "SuperNPU peak (TMAC/s)")
	for _, f := range []float64{1.0, 0.5, 0.25, 0.2} {
		p := sfq.AIST10().ScaledTo(f * sfq.Micrometre)
		lib := sfq.NewLibrary(p, sfq.RSFQ)
		clk := pe.Default8Bit(1).Frequency(lib)
		t.AddRow(fmt.Sprintf("%.2f um", f),
			report.F(clk/sfq.GHz, 0),
			report.F(float64(arch.SuperNPU().PEs())*clk/1e12, 0))
	}
	t.AddNote("frequency scales ~1/feature-size to the 200 nm validity floor (TFFs have run at 770 GHz there)")
	return t.String(), nil
}

// AblationBatch shows the computational-intensity mechanism: SuperNPU's
// throughput vs batch size on ResNet-50.
func AblationBatch(ctx context.Context) (string, error) {
	net := workload.ResNet50()
	tpu, err := core.Evaluate(ctx, core.DesignPoints()[0], net, 0)
	if err != nil {
		return "", err
	}
	t := report.NewTable("Ablation: batch size vs throughput (SuperNPU, ResNet-50)",
		"batch", "effective (TMAC/s)", "speedup vs TPU")
	for _, b := range []int{1, 2, 4, 8, 16, 30} {
		r, err := npusim.Simulate(ctx, arch.SuperNPU(), net, b)
		if err != nil {
			return "", err
		}
		t.AddRow(fmt.Sprintf("%d", b),
			report.F(r.Throughput/1e12, 1),
			report.F(r.Throughput/tpu.Throughput, 2))
	}
	t.AddNote("batching multiplies the MACs per mapped weight — the intensity lever of Fig. 17/21")
	return t.String(), nil
}

// AblationMemsys validates the flat-bandwidth DRAM abstraction the
// simulators use: with HBM2's request overhead and burst granularity, the
// NPU's megabyte-scale layer transfers achieve near-peak bandwidth, while
// fine-grained access (the regime shift-register buffers avoid) would not.
func AblationMemsys(ctx context.Context) (string, error) {
	m := memsys.HBM2()
	t := report.NewTable("Ablation: off-chip transfer granularity (HBM2 model)",
		"transfer size", "effective bandwidth (GB/s)", "efficiency %")
	for _, n := range []int64{256, 4 << 10, 64 << 10, 1 << 20, 24 << 20} {
		t.AddRow(byteLabel(n),
			report.F(m.EffectiveBandwidth(n)/1e9, 1),
			report.F(m.Efficiency(n)*100, 1))
	}
	t.AddNote("knee at %s; NPU layer transfers are MB-scale, so the flat 300 GB/s abstraction holds",
		byteLabel(m.KneeBytes()))
	return t.String(), nil
}

func byteLabel(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%d MB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%d KB", n>>10)
	default:
		return fmt.Sprintf("%d B", n)
	}
}
