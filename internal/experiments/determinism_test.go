package experiments

import (
	"context"
	"runtime"
	"testing"

	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
)

// TestRunAllDeterministic asserts the tentpole guarantee of the parallel
// sweep engine: RunAll renders byte-identical text regardless of the worker
// count, with cold or warm caches, across repeated runs.
func TestRunAllDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("regenerates every exhibit three times")
	}
	defer parallel.SetWorkers(0)

	parallel.SetWorkers(1)
	simcache.ClearAll()
	serial, err := RunAll(context.Background())
	if err != nil {
		t.Fatalf("serial RunAll: %v", err)
	}
	if serial == "" {
		t.Fatal("serial RunAll rendered nothing")
	}

	// At least four workers even on small machines, so the concurrent
	// paths genuinely interleave (and the race detector sees them).
	parallel.SetWorkers(max(4, runtime.NumCPU()))
	simcache.ClearAll()
	cold, err := RunAll(context.Background())
	if err != nil {
		t.Fatalf("parallel RunAll (cold): %v", err)
	}
	if cold != serial {
		t.Errorf("parallel cold-cache output differs from serial output:\nserial %d bytes, parallel %d bytes",
			len(serial), len(cold))
	}

	warm, err := RunAll(context.Background())
	if err != nil {
		t.Fatalf("parallel RunAll (warm): %v", err)
	}
	if warm != serial {
		t.Error("warm-cache output differs from serial output")
	}

	// The warm rerun must have been served by the memo caches.
	hits := int64(0)
	for _, s := range simcache.Snapshot() {
		hits += s.Hits
	}
	if hits == 0 {
		t.Error("no cache hits recorded across repeated RunAll invocations")
	}
}
