package experiments

import (
	"context"
	"strings"
	"testing"
)

func TestIDsCoverEveryExhibit(t *testing.T) {
	// The paper's evaluation has ten figures-with-data and three tables we
	// reproduce.
	if len(IDs()) != 13 {
		t.Fatalf("got %d exhibit ids, want 13", len(IDs()))
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run(context.Background(), "fig99"); err == nil {
		t.Fatal("unknown exhibit ids must error")
	}
}

// Every exhibit must regenerate without error and carry its title.
func TestEveryExhibitRuns(t *testing.T) {
	titles := map[string]string{
		"fig5":   "Fig. 5",
		"fig7":   "Fig. 7",
		"fig8":   "Fig. 8",
		"fig13":  "Fig. 13",
		"fig15":  "Fig. 15",
		"fig17":  "Fig. 17",
		"fig20":  "Fig. 20",
		"fig21":  "Fig. 21",
		"fig22":  "Fig. 22",
		"fig23":  "Fig. 23",
		"table1": "Table I",
		"table2": "Table II",
		"table3": "Table III",
	}
	for _, id := range IDs() {
		out, err := Run(context.Background(), id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !strings.Contains(out, titles[id]) {
			t.Errorf("%s output missing title %q", id, titles[id])
		}
		if len(out) < 100 {
			t.Errorf("%s output suspiciously short (%d bytes)", id, len(out))
		}
	}
}

func TestRunAllConcatenatesEverything(t *testing.T) {
	out, err := RunAll(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, marker := range []string{"Fig. 5", "Fig. 23", "Table III", "SuperNPU"} {
		if !strings.Contains(out, marker) {
			t.Errorf("RunAll output missing %q", marker)
		}
	}
}

func TestFig23ContainsAllDesignsAndWorkloads(t *testing.T) {
	out, err := Fig23(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"TPU", "Baseline", "Buffer opt.", "Resource opt.", "SuperNPU",
		"AlexNet", "FasterRCNN", "GoogLeNet", "MobileNet", "ResNet50", "VGG16", "geomean"} {
		if !strings.Contains(out, m) {
			t.Errorf("Fig23 output missing %q", m)
		}
	}
}

func TestTable3ContainsBothTechnologiesAndScenarios(t *testing.T) {
	out, err := Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"RSFQ-SuperNPU", "ERSFQ-SuperNPU", "w/ cooling", "w/o cooling"} {
		if !strings.Contains(out, m) {
			t.Errorf("Table3 output missing %q", m)
		}
	}
}
