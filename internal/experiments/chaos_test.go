package experiments

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"supernpu/internal/guard"
	"supernpu/internal/guard/leaktest"
	"supernpu/internal/simcache"
)

// TestChaosMarginSweepCancellationHammer is the chaos-smoke gate (run via
// `make chaos-smoke`, which sets SUPERNPU_CHAOS=1 and -race): it hammers
// the fault-injected margin sweep with cancellations landing at staggered
// offsets — before the sweep starts, during the RCSJ transients, during
// the npusim rows — and asserts the three resilience contracts hold under
// every interleaving:
//
//  1. the only error a cancellation ever surfaces is the guard taxonomy
//     (errors.Is ErrCanceled / ErrDeadlineExceeded), never a panic, a
//     deadlock, or a mangled partial result;
//  2. no goroutine outlives its canceled sweep (leaktest);
//  3. the caches are not poisoned: after all that violence, a clean run is
//     byte-identical to the untouched reference.
func TestChaosMarginSweepCancellationHammer(t *testing.T) {
	if os.Getenv("SUPERNPU_CHAOS") == "" {
		t.Skip("chaos smoke only runs when SUPERNPU_CHAOS is set (make chaos-smoke)")
	}
	leaktest.Check(t)

	opts := smallMarginOpts(42)

	// Reference render on warm, honestly-computed caches.
	simcache.ClearAll()
	want, err := MarginSweep(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}

	// The hammer: cold caches each round so every cancellation lands on
	// real in-flight simulation work, with the timeout swept from "already
	// expired" up through the sweep's whole lifetime.
	const rounds = 14
	canceled := 0
	for i := 0; i < rounds; i++ {
		simcache.ClearAll()
		timeout := time.Duration(i) * 500 * time.Microsecond
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		out, err := MarginSweep(ctx, opts)
		cancel()
		switch {
		case err == nil:
			if out != want {
				t.Fatalf("round %d: sweep that outran its %s timeout diverged from the reference", i, timeout)
			}
		case guard.IsCancellation(err):
			if !errors.Is(err, guard.ErrCanceled) && !errors.Is(err, guard.ErrDeadlineExceeded) {
				t.Fatalf("round %d: cancellation outside the taxonomy: %v", i, err)
			}
			canceled++
		default:
			t.Fatalf("round %d (timeout %s): non-cancellation failure: %v", i, timeout, err)
		}
	}
	t.Logf("hammer: %d of %d rounds canceled mid-sweep", canceled, rounds)

	// Contract 3: all those aborted attempts must not have memoised any
	// partial result — a final clean run still renders byte-identically.
	simcache.ClearAll()
	got, err := MarginSweep(context.Background(), opts)
	if err != nil {
		t.Fatalf("clean run after the hammer: %v", err)
	}
	if got != want {
		t.Fatal("margin sweep render diverged after the cancellation hammer; a canceled attempt poisoned a cache")
	}
}
