// Package experiments regenerates every table and figure of the paper's
// evaluation from the repository's models: each function reproduces the
// rows/series of one exhibit, and Run dispatches by the exhibit's id. The
// benchmark harness (bench_test.go) and cmd/supernpu-repro are thin
// wrappers over this package.
package experiments

import (
	"context"
	"fmt"
	"math"
	"strings"

	"supernpu/internal/arch"
	"supernpu/internal/clocking"
	"supernpu/internal/cooling"
	"supernpu/internal/core"
	"supernpu/internal/estimator"
	"supernpu/internal/jsim"
	"supernpu/internal/netunit"
	"supernpu/internal/npusim"
	"supernpu/internal/obs"
	"supernpu/internal/parallel"
	"supernpu/internal/report"
	"supernpu/internal/roofline"
	"supernpu/internal/scalesim"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// IDs lists every reproducible exhibit in paper order.
func IDs() []string {
	return []string{
		"fig5", "fig7", "fig8", "fig13", "fig15", "fig17",
		"fig20", "fig21", "fig22", "fig23",
		"table1", "table2", "table3",
	}
}

// Run regenerates one exhibit and returns its rendered text. Each run is
// timed into the supernpu_exhibit_seconds histogram (labelled by exhibit
// id) and wrapped in an "exhibit" tracing span; both are pure telemetry
// and never influence the rendered bytes.
func Run(ctx context.Context, id string) (string, error) {
	defer obs.Time(obs.Default.Histogram("supernpu_exhibit_seconds",
		"wall time to regenerate one exhibit", obs.DurationEdges, obs.L("exhibit", id)))()
	sp := obs.StartSpan("exhibit", obs.L("id", id))
	defer sp.End()
	return run(ctx, id)
}

// run dispatches an exhibit id to its generator.
func run(ctx context.Context, id string) (string, error) {
	switch id {
	case "fig5":
		return Fig5(ctx)
	case "fig7":
		return Fig7(ctx)
	case "fig8":
		return Fig8(ctx)
	case "fig13":
		return Fig13(ctx)
	case "fig15":
		return Fig15(ctx)
	case "fig17":
		return Fig17(ctx)
	case "fig20":
		return Fig20(ctx)
	case "fig21":
		return Fig21(ctx)
	case "fig22":
		return Fig22(ctx)
	case "fig23":
		return Fig23(ctx)
	case "table1":
		return Table1(ctx)
	case "table2":
		return Table2(ctx)
	case "table3":
		return Table3(ctx)
	default:
		if out, ok, err := runAblation(ctx, id); ok {
			return out, err
		}
		return "", fmt.Errorf("experiments: unknown exhibit %q (have %s and ablations %s)",
			id, strings.Join(IDs(), ", "), strings.Join(AblationIDs(), ", "))
	}
}

// RunAll regenerates every exhibit. Exhibits render concurrently (bounded
// by parallel.Workers()) and join in paper order, so the output is
// byte-identical to a serial run.
func RunAll(ctx context.Context) (string, error) {
	sp := obs.StartSpan("report")
	defer sp.End()
	ids := IDs()
	outs, err := parallel.MapContext(ctx, len(ids), func(ctx context.Context, i int) (string, error) {
		out, err := Run(ctx, ids[i])
		if err != nil {
			return "", fmt.Errorf("%s: %w", ids[i], err)
		}
		return out, nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, out := range outs {
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

// Fig5 compares the three on-chip network designs' critical-path delay and
// area over PE-array widths (Fig. 5).
func Fig5(ctx context.Context) (string, error) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	t := report.NewTable("Fig. 5: network-unit critical-path delay (ps) and area (mm^2)",
		"PE array width", "2D tree delay", "1D tree delay", "systolic delay",
		"2D tree area", "1D tree area", "systolic area")
	for _, w := range []int{4, 16, 64} {
		cfg := netunit.Config{Width: w, Bits: 8}
		row := []string{fmt.Sprintf("%d", w)}
		for _, d := range netunit.Designs() {
			row = append(row, report.F(netunit.CriticalPathDelay(d, cfg, lib)/sfq.Picosecond, 1))
		}
		for _, d := range netunit.Designs() {
			row = append(row, report.F(netunit.Area(d, cfg, lib)/sfq.SquareMillimetre, 3))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: 2D splitter tree exceeds 800 ps at width 64; the systolic array is fastest and smallest")
	return t.String(), nil
}

// Fig7 reports the feedback-loop frequency penalty for the full adder and
// shift register under both clocking schemes (Fig. 7(c)), plus the RCSJ
// circuit-level extraction that anchors the gate level.
func Fig7(ctx context.Context) (string, error) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	t := report.NewTable("Fig. 7(c): feedback-loop impact on clock frequency (GHz)",
		"circuit", "without feedback (concurrent-flow)", "with feedback (counter-flow)")
	for _, c := range []struct {
		name string
		g    sfq.GateKind
	}{{"Full adder", sfq.FA}, {"Shift register", sfq.DFF}} {
		g := lib.Gate(c.g)
		p := clocking.Pair{Src: g, Dst: g}
		t.AddRow(c.name,
			report.F(clocking.Frequency(p.CCT(clocking.ConcurrentFlowSkewed))/sfq.GHz, 1),
			report.F(clocking.Frequency(p.CCT(clocking.CounterFlow))/sfq.GHz, 1))
	}
	t.AddNote("paper: FA 66 -> 30 GHz, SR 133 -> 71 GHz")

	params, err := jsim.ExtractJTLParams(ctx)
	if err != nil {
		return "", err
	}
	t.AddNote("RCSJ transient extraction: JTL stage delay %.2f ps, switch energy %.3f aJ/JJ",
		params.StageDelay/sfq.Picosecond, params.SwitchEnergyPerJJ/sfq.Attojoule)
	return t.String(), nil
}

// Fig8 reports the duplicated-ifmap-pixel ratio for the naive buffering
// scheme (Fig. 8).
func Fig8(ctx context.Context) (string, error) {
	s := report.NewSeries("Fig. 8: duplicated ifmap pixels under naive row buffering", "% duplicated")
	for _, name := range []string{"AlexNet", "ResNet50", "VGG16"} {
		net, err := workload.ByName(name)
		if err != nil {
			return "", err
		}
		s.Add(name, net.DuplicatedPixelRatio()*100)
	}
	return s.String() + "paper: over 90% for all three networks\n", nil
}

// Fig13 reports the estimator validation against the die/post-layout
// references (Fig. 13).
func Fig13(ctx context.Context) (string, error) {
	rep := estimator.Validate()
	t := report.NewTable("Fig. 13: model validation vs die/post-layout references",
		"subject", "metric", "reference", "model", "error %")
	for _, it := range rep.Items {
		t.AddRow(it.Unit, string(it.Metric),
			fmt.Sprintf("%.4g", it.Measured), fmt.Sprintf("%.4g", it.Modeled),
			report.F(it.RelError()*100, 1))
	}
	t.AddNote("mean errors: uarch %.1f/%.1f/%.1f %%, arch %.1f/%.1f/%.1f %% (freq/power/area)",
		rep.MeanError(estimator.Microarch, estimator.Frequency)*100,
		rep.MeanError(estimator.Microarch, estimator.StaticPower)*100,
		rep.MeanError(estimator.Microarch, estimator.Area)*100,
		rep.MeanError(estimator.Arch, estimator.Frequency)*100,
		rep.MeanError(estimator.Arch, estimator.StaticPower)*100,
		rep.MeanError(estimator.Arch, estimator.Area)*100)
	t.AddNote("paper: uarch 5.6/1.2/1.3 %%, arch 4.7/2.3/9.5 %%")
	return t.String(), nil
}

// Fig15 reports the Baseline's preparation-vs-computation cycle breakdown
// per workload (Fig. 15).
func Fig15(ctx context.Context) (string, error) {
	t := report.NewTable("Fig. 15: Baseline cycle breakdown (batch 1)",
		"workload", "preparation %", "computation %")
	for _, net := range workload.All() {
		r, err := npusim.Simulate(ctx, arch.Baseline(), net, 1)
		if err != nil {
			return "", err
		}
		t.AddRow(net.Name,
			report.F(r.PrepFraction()*100, 1),
			report.F((1-r.PrepFraction())*100, 1))
	}
	t.AddNote("paper: preparation above 90%% for every workload")
	return t.String(), nil
}

// Fig17 reports the roofline analysis of the Baseline at a single batch
// (Fig. 17).
func Fig17(ctx context.Context) (string, error) {
	est, err := estimator.Estimate(ctx, arch.Baseline())
	if err != nil {
		return "", err
	}
	m := roofline.Model{PeakMACs: est.PeakMACs, Bandwidth: arch.DefaultBandwidth}
	t := report.NewTable("Fig. 17: Baseline roofline at batch 1",
		"workload", "intensity (MAC/B)", "roofline (TMAC/s)", "effective (TMAC/s)", "roofline util %")
	var sumEff float64
	for _, net := range workload.All() {
		i := roofline.Intensity(net, 1)
		r, err := npusim.Simulate(ctx, arch.Baseline(), net, 1)
		if err != nil {
			return "", err
		}
		sumEff += r.Throughput
		t.AddRow(net.Name, report.F(i, 0),
			report.F(m.Attainable(i)/1e12, 1),
			report.F(r.Throughput/1e12, 2),
			report.F(m.Utilization(i)*100, 2))
	}
	t.AddNote("peak %.0f TMAC/s; average effective %.2f TMAC/s (paper: 6.45, <0.2%% of peak)",
		est.PeakMACs/1e12, sumEff/6/1e12)
	return t.String(), nil
}

// Fig20 reports the buffer integration/division sweep (Fig. 20).
func Fig20(ctx context.Context) (string, error) {
	points, err := core.ExploreDivisionOpts(ctx, []int{4, 16, 64, 256, 1024, 4096}, core.SweepOptions{})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Fig. 20: on-chip buffer optimisation sweep (speedup vs Baseline, geomean)",
		"design", "single batch", "max batch", "area (norm.)")
	for _, p := range points {
		t.AddRow(p.Label, report.F(p.SingleBatch, 2), report.F(p.MaxBatch, 2), report.F(p.AreaRel, 3))
	}
	t.AddNote("paper: single-batch 6.26x and max-batch ~20x from division 64, with saturation beyond")
	return t.String(), nil
}

// Fig21 reports the resource-balancing sweep (Fig. 21).
func Fig21(ctx context.Context) (string, error) {
	points, err := core.ExploreWidthOpts(ctx, core.Fig21Points(), core.SweepOptions{})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Fig. 21: resource balancing (max-batch speedup vs Baseline, geomean)",
		"PE width / buffer", "max batch", "area (norm.)")
	for _, p := range points {
		t.AddRow(p.Label, report.F(p.MaxBatch, 2), report.F(p.AreaRel, 3))
	}
	t.AddNote("paper: ~47x at width 128 and ~42x at width 64; narrower arrays fall off")
	return t.String(), nil
}

// Fig22 reports the registers-per-PE sweep on the 64- and 128-wide designs
// (Fig. 22).
func Fig22(ctx context.Context) (string, error) {
	regs := []int{1, 2, 4, 8, 16, 32}
	w64, err := core.ExploreRegistersOpts(ctx, 64, regs, core.SweepOptions{})
	if err != nil {
		return "", err
	}
	w128, err := core.ExploreRegistersOpts(ctx, 128, regs, core.SweepOptions{})
	if err != nil {
		return "", err
	}
	t := report.NewTable("Fig. 22: registers per PE (max-batch speedup vs Baseline, geomean)",
		"registers", "width 64", "width 128")
	for i, r := range regs {
		t.AddRow(fmt.Sprintf("%d", r), report.F(w64[i].MaxBatch, 2), report.F(w128[i].MaxBatch, 2))
	}
	t.AddNote("paper: width 128 is memory-bound; width 64 keeps scaling -> SuperNPU = width 64 with 8 registers")
	return t.String(), nil
}

// Fig23 reports the final performance evaluation: all five designs over the
// six workloads, normalised to the TPU (Fig. 23).
func Fig23(ctx context.Context) (string, error) {
	designs := core.DesignPoints()
	t := report.NewTable("Fig. 23: speedup over the TPU core (effective throughput)",
		append([]string{"workload"}, designNames(designs)...)...)

	sums := make([]float64, len(designs))
	logs := make([]float64, len(designs))
	for _, net := range workload.All() {
		row := []string{net.Name}
		ref, err := core.Evaluate(ctx, designs[0], net, 0)
		if err != nil {
			return "", err
		}
		for i, d := range designs {
			ev, err := core.Evaluate(ctx, d, net, 0)
			if err != nil {
				return "", err
			}
			sp := ev.Throughput / ref.Throughput
			sums[i] += sp / 6
			logs[i] += ln(sp) / 6
			row = append(row, report.F(sp, 2))
		}
		t.AddRow(row...)
	}
	mean := []string{"mean"}
	gm := []string{"geomean"}
	for i := range designs {
		mean = append(mean, report.F(sums[i], 2))
		gm = append(gm, report.F(exp(logs[i]), 2))
	}
	t.AddRow(mean...)
	t.AddRow(gm...)
	t.AddNote("paper averages: Baseline 0.4x, Buffer opt. 7.7x, Resource opt. 17.3x, SuperNPU 23x (MobileNet 42x)")
	return t.String(), nil
}

// Table1 reports the evaluation setup of every design (Table I).
func Table1(ctx context.Context) (string, error) {
	t := report.NewTable("Table I: evaluation setup",
		"design", "array WxH", "regs/PE", "ifmap buf", "output buf", "psum buf", "weight buf",
		"freq (GHz)", "peak (TMAC/s)", "area @28nm (mm^2)")
	t.AddRow("TPU", "256x256", "1", "24 MB unified", "", "", "",
		"0.7", "45.9", "<331")
	for _, cfg := range arch.Designs() {
		est, err := estimator.Estimate(ctx, cfg)
		if err != nil {
			return "", err
		}
		psum := "-"
		if !cfg.IntegratedOutput {
			psum = mb(cfg.PsumBufBytes)
		}
		t.AddRow(cfg.Name,
			fmt.Sprintf("%dx%d", cfg.ArrayWidth, cfg.ArrayHeight),
			fmt.Sprintf("%d", cfg.Registers),
			fmt.Sprintf("%s /%d", mb(cfg.IfmapBufBytes), cfg.IfmapChunks),
			fmt.Sprintf("%s /%d", mb(cfg.OutputBufBytes), cfg.OutputChunks),
			psum,
			kb(cfg.WeightBufBytes),
			report.F(est.Frequency/sfq.GHz, 1),
			report.F(est.PeakMACs/1e12, 0),
			report.F(est.Area28nm/sfq.SquareMillimetre, 0))
	}
	t.AddNote("paper: 52.6 GHz, peak 3366/842 TMAC/s, areas 283/285/298/299 mm^2")
	return t.String(), nil
}

// Table2 reports every design's maximum batch per workload (Table II).
func Table2(ctx context.Context) (string, error) {
	designs := core.DesignPoints()
	t := report.NewTable("Table II: batch size per design (on-chip, no extra DRAM traffic)",
		append([]string{"workload"}, designNames(designs)...)...)
	for _, net := range workload.All() {
		row := []string{net.Name}
		for _, d := range designs {
			row = append(row, fmt.Sprintf("%d", d.MaxBatch(net)))
		}
		t.AddRow(row...)
	}
	t.AddNote("paper: TPU 22/20/20/20/20/3; SuperNPU 30 for all but VGG16 (7)")
	return t.String(), nil
}

// Table3 reports the power-efficiency evaluation (Table III). Following the
// paper's accounting, the normalised perf/W of a design is its mean speedup
// over the TPU (Fig. 23's average) times the power ratio — throughput
// ratios are averaged per workload before dividing by power.
func Table3(ctx context.Context) (string, error) {
	t := report.NewTable("Table III: power efficiency",
		"design", "power (W)", "perf/W (norm. to TPU)")
	tpuPower := scalesim.TPU().Power
	t.AddRow("TPU", report.F(tpuPower, 0), "1.00")

	for _, tech := range []sfq.Technology{sfq.RSFQ, sfq.ERSFQ} {
		cfg := arch.SuperNPU()
		cfg.Tech = tech
		speedup, power, err := meanSpeedupAndPower(ctx, core.SFQDesign(cfg))
		if err != nil {
			return "", err
		}
		for _, sc := range []cooling.Scenario{cooling.FreeCooling, cooling.FullCooling} {
			charged := power
			if sc == cooling.FullCooling {
				charged = cooling.WallPower(power)
			}
			rel := speedup * tpuPower / charged
			t.AddRow(fmt.Sprintf("%s-SuperNPU (%s)", tech, sc),
				fmt.Sprintf("%.3g", charged),
				fmt.Sprintf("%.3g", rel))
		}
	}
	t.AddNote("paper: RSFQ 964 W (0.95x; 0.002x w/ cooling), ERSFQ 1.9 W (490x; 1.23x w/ cooling)")
	return t.String(), nil
}

// meanSpeedupAndPower evaluates a design across the six workloads and
// returns its mean speedup over the TPU and its mean chip power. The
// workloads evaluate concurrently; the means accumulate in workload order,
// keeping the floats bit-identical to a serial run.
func meanSpeedupAndPower(ctx context.Context, d core.Design) (speedup, power float64, err error) {
	tpu := core.CMOSDesign(scalesim.TPU())
	nets := workload.All()
	type contrib struct{ speedup, power float64 }
	vals, err := parallel.MapContext(ctx, len(nets), func(ctx context.Context, i int) (contrib, error) {
		ref, err := core.Evaluate(ctx, tpu, nets[i], 0)
		if err != nil {
			return contrib{}, err
		}
		ev, err := core.Evaluate(ctx, d, nets[i], 0)
		if err != nil {
			return contrib{}, err
		}
		return contrib{ev.Throughput / ref.Throughput / 6, ev.ChipPower / 6}, nil
	})
	if err != nil {
		return 0, 0, err
	}
	for _, v := range vals {
		speedup += v.speedup
		power += v.power
	}
	return speedup, power, nil
}

func designNames(ds []core.Design) []string {
	var out []string
	for _, d := range ds {
		out = append(out, d.Name())
	}
	return out
}

func mb(bytes int) string { return fmt.Sprintf("%g MB", float64(bytes)/float64(arch.MB)) }
func kb(bytes int) string { return fmt.Sprintf("%d KB", bytes/arch.KB) }

func ln(x float64) float64  { return math.Log(x) }
func exp(x float64) float64 { return math.Exp(x) }
