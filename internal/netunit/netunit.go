// Package netunit models the three on-chip network-unit designs the paper
// compares for distributing operands to the PE array (Section III-A, Fig. 4):
// a 2D splitter tree and a 1D splitter tree (fan-out networks) and a 2D
// systolic array (store-and-forward chain). It provides the critical-path
// delay and area comparison of Fig. 5, from which the paper adopts the
// systolic design.
package netunit

import (
	"errors"
	"fmt"
	"math"

	"supernpu/internal/clocking"
	"supernpu/internal/sfq"
)

// ErrUnknownDesign marks a network-unit design outside the defined
// SplitterTree2D/SplitterTree1D/Systolic2D set. Boundary code matches it
// with errors.Is to reject the input.
var ErrUnknownDesign = errors.New("netunit: unknown design")

// Design identifies one of the three candidate network structures.
type Design int

const (
	// SplitterTree2D multicasts both PE inputs through two splitter trees
	// sharing one global clock line (usable with output-stationary
	// dataflow). The data/clock arrival mismatch of a PE's two inputs
	// grows linearly with the PE-array width.
	SplitterTree2D Design = iota
	// SplitterTree1D multicasts one operand per row through a splitter
	// tree (usable with weight-stationary dataflow). No accumulating
	// timing mismatch, but tree wiring costs area like the 2D tree.
	SplitterTree1D
	// Systolic2D forwards operands PE-to-PE through DFF/splitter branches:
	// negligible input-arrival mismatch and the smallest wiring area. The
	// paper's chosen design.
	Systolic2D
)

// String implements fmt.Stringer.
func (d Design) String() string {
	switch d {
	case SplitterTree2D:
		return "2D splitter tree"
	case SplitterTree1D:
		return "1D splitter tree"
	case Systolic2D:
		return "2D systolic array"
	default:
		return fmt.Sprintf("Design(%d)", int(d))
	}
}

// Designs lists all candidates in the order of Fig. 5.
func Designs() []Design { return []Design{SplitterTree2D, SplitterTree1D, Systolic2D} }

// Config describes the network instance under analysis.
type Config struct {
	// Width is the PE-array width (the array is assumed square for this
	// analysis, as in Fig. 5).
	Width int
	// Bits is the operand bus width per lane.
	Bits int
}

// jtlPerPEPitch is the number of JTL segments needed to span one PE pitch:
// SFQ PEs are physically large, so a branch crossing a PE costs several
// transmission-line cells.
const jtlPerPEPitch = 5

// CriticalPathDelay returns the network's minimum clock cycle time (the
// inverse of its maximum frequency), reproducing Fig. 5(a). It panics with
// ErrUnknownDesign on an out-of-range design (programmer error; the
// sentinel survives the parallel pool's panic recovery).
func CriticalPathDelay(d Design, cfg Config, lib *sfq.Library) float64 {
	dff := lib.Gate(sfq.DFF)
	spl := lib.Gate(sfq.Splitter)
	jtl := lib.Gate(sfq.JTL)

	switch d {
	case SplitterTree2D:
		// Both trees share a global clock line, so the arrival mismatch
		// between a PE's two inputs grows with the distance from the tree
		// root: one splitter branch plus the wiring across each PE pitch
		// per array column (input arrival timing, Fig. 4(a)).
		hop := make([]sfq.Gate, 0, 1+jtlPerPEPitch)
		hop = append(hop, spl)
		for i := 0; i < jtlPerPEPitch; i++ {
			hop = append(hop, jtl)
		}
		mismatch := make([]sfq.Gate, 0, cfg.Width*len(hop))
		for w := 0; w < cfg.Width; w++ {
			mismatch = append(mismatch, hop...)
		}
		p := clocking.Pair{Src: dff, Dst: dff, MismatchWire: mismatch}
		return p.CCT(clocking.ConcurrentFlowSkewed)

	case SplitterTree1D:
		// One tree per row: the residual mismatch is only the tree depth
		// (log2 W splitter levels), independent of which PE is fed.
		depth := int(math.Ceil(math.Log2(float64(max(cfg.Width, 2)))))
		mismatch := make([]sfq.Gate, depth)
		for i := range mismatch {
			mismatch[i] = spl
		}
		p := clocking.Pair{Src: dff, Dst: dff, MismatchWire: mismatch}
		return p.CCT(clocking.ConcurrentFlowSkewed)

	case Systolic2D:
		// Store-and-forward between adjacent PEs: both PE inputs travel
		// one hop, their mismatch is negligible (Fig. 4(c)).
		p := clocking.Pair{Src: dff, Dst: dff}
		return p.CCT(clocking.ConcurrentFlowSkewed)

	default:
		panic(fmt.Errorf("%w %d", ErrUnknownDesign, int(d)))
	}
}

// SkewedTree2DDelay is the 2D splitter tree's cycle time when its timing
// problem is patched with aggressive clock skewing — intentionally
// lengthening the clock line along path ① of Fig. 4(a) to match the data.
// The residual mismatch drops to one branch hop, so the delay flattens,
// but the scheme "incurs much more area overhead and lowers the yield of
// fabrication" (Section III-A): see SkewedTree2DExtraArea.
func SkewedTree2DDelay(cfg Config, lib *sfq.Library) float64 {
	dff := lib.Gate(sfq.DFF)
	p := clocking.Pair{Src: dff, Dst: dff,
		MismatchWire: []sfq.Gate{lib.Gate(sfq.Splitter), lib.Gate(sfq.JTL)}}
	return p.CCT(clocking.ConcurrentFlowSkewed)
}

// SkewedTree2DExtraArea is the additional clock-line area the aggressive
// skewing costs: a matched-delay JTL chain spanning every PE pitch of every
// clock branch, on top of the plain tree of CellInventory.
func SkewedTree2DExtraArea(cfg Config, lib *sfq.Library) float64 {
	inv := sfq.Inventory{}
	// One delay-matched clock chain per column lane, each crossing the
	// full array width.
	inv.AddGate(sfq.JTL, 2*cfg.Width*cfg.Width*jtlPerPEPitch*cfg.Bits)
	return inv.Area(lib)
}

// MaxFrequency is 1/CriticalPathDelay.
func MaxFrequency(d Design, cfg Config, lib *sfq.Library) float64 {
	return clocking.Frequency(CriticalPathDelay(d, cfg, lib))
}

// CellInventory returns the wire/latch cells of the network, the basis of
// the area comparison in Fig. 5(b). It panics with ErrUnknownDesign on an
// out-of-range design (programmer error; the sentinel survives the
// parallel pool's panic recovery).
func CellInventory(d Design, cfg Config) sfq.Inventory {
	inv := sfq.Inventory{}
	w := cfg.Width
	switch d {
	case SplitterTree2D, SplitterTree1D:
		// A W-leaf splitter tree per row/column lane: W−1 splitters and a
		// pipelining DFF per leaf, plus transmission-line wiring spanning
		// the whole array — the dominant cost ("large number of wire cells
		// for the tree construction").
		lanes := w // one tree per row (1D) or per row+column pair (2D)
		wiringPerLeaf := jtlPerPEPitch
		if d == SplitterTree2D {
			lanes = 2 * w
		}
		inv.AddGate(sfq.Splitter, lanes*(w-1)*cfg.Bits)
		inv.AddGate(sfq.DFF, lanes*w*cfg.Bits)
		inv.AddGate(sfq.JTL, lanes*w*wiringPerLeaf*cfg.Bits)
	case Systolic2D:
		// Only the array-edge injection branches are network cells; the
		// PE-to-PE forwarding latches live inside the PEs themselves.
		inv.Add(SystolicPerPE(cfg.Bits), 2*w)
	default:
		panic(fmt.Errorf("%w %d", ErrUnknownDesign, int(d)))
	}
	return inv
}

// Area returns the laid-out network area in m².
func Area(d Design, cfg Config, lib *sfq.Library) float64 {
	return CellInventory(d, cfg).Area(lib)
}

// SystolicPerPE returns the store-and-forward branch cells one PE
// contributes to the systolic network: a DFF and a splitter per bit per
// direction (horizontal ifmap forwarding, vertical psum forwarding) plus
// adjacent-hop wiring.
func SystolicPerPE(bits int) sfq.Inventory {
	inv := sfq.Inventory{}
	inv.AddGate(sfq.DFF, 2*bits)
	inv.AddGate(sfq.Splitter, 2*bits)
	inv.AddGate(sfq.JTL, 2*2*bits)
	return inv
}
