package netunit

import (
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
)

func lib() *sfq.Library { return sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ) }

// Fig. 5(a): the 2D splitter tree's critical-path delay grows with the PE
// array width and exceeds 800 ps at 64×64; the other designs stay flat.
func TestFig5CriticalPathDelay(t *testing.T) {
	l := lib()
	cfg := func(w int) Config { return Config{Width: w, Bits: 8} }

	d64 := CriticalPathDelay(SplitterTree2D, cfg(64), l)
	if d64 < 800*sfq.Picosecond {
		t.Errorf("2D tree delay at width 64 = %.0f ps, want > 800 ps", d64/sfq.Picosecond)
	}

	// Monotone growth for the 2D tree.
	prev := 0.0
	for _, w := range []int{4, 16, 64} {
		d := CriticalPathDelay(SplitterTree2D, cfg(w), l)
		if d <= prev {
			t.Errorf("2D tree delay must grow with width (w=%d: %.0f ps)", w, d/sfq.Picosecond)
		}
		prev = d
	}

	// The 1D tree and systolic array have near-flat, far smaller delay.
	for _, d := range []Design{SplitterTree1D, Systolic2D} {
		small := CriticalPathDelay(d, cfg(4), l)
		big := CriticalPathDelay(d, cfg(64), l)
		if big > 30*sfq.Picosecond {
			t.Errorf("%s delay at width 64 = %.1f ps, want bounded (<30 ps)", d, big/sfq.Picosecond)
		}
		if big > 4*small {
			t.Errorf("%s delay must stay near-flat (4→%.1fps, 64→%.1fps)",
				d, small/sfq.Picosecond, big/sfq.Picosecond)
		}
	}

	// The systolic array is the fastest design at every width (the basis
	// of the paper's design choice).
	for _, w := range []int{4, 8, 16, 32, 64} {
		sys := CriticalPathDelay(Systolic2D, cfg(w), l)
		for _, d := range []Design{SplitterTree2D, SplitterTree1D} {
			if CriticalPathDelay(d, cfg(w), l) < sys {
				t.Errorf("width %d: %s must not beat the systolic array", w, d)
			}
		}
	}
}

// Fig. 5(b): the systolic array has the smallest area; the splitter trees
// pay quadratic wiring cost.
func TestFig5Area(t *testing.T) {
	l := lib()
	for _, w := range []int{4, 16, 64} {
		cfg := Config{Width: w, Bits: 8}
		sys := Area(Systolic2D, cfg, l)
		t1d := Area(SplitterTree1D, cfg, l)
		t2d := Area(SplitterTree2D, cfg, l)
		if !(sys < t1d && t1d < t2d) {
			t.Errorf("width %d: want area systolic < 1D tree < 2D tree, got %.3g / %.3g / %.3g mm²",
				w, sys/sfq.SquareMillimetre, t1d/sfq.SquareMillimetre, t2d/sfq.SquareMillimetre)
		}
	}
	// Trees scale ~quadratically, systolic ~linearly: at width 64 the gap
	// must be over an order of magnitude.
	cfg := Config{Width: 64, Bits: 8}
	if Area(SplitterTree2D, cfg, l) < 10*Area(Systolic2D, cfg, l) {
		t.Error("2D tree area must dwarf systolic area at width 64")
	}
}

func TestMaxFrequencyInverse(t *testing.T) {
	l := lib()
	cfg := Config{Width: 16, Bits: 8}
	f := MaxFrequency(Systolic2D, cfg, l)
	d := CriticalPathDelay(Systolic2D, cfg, l)
	if f*d < 0.999 || f*d > 1.001 {
		t.Fatalf("MaxFrequency must be 1/delay, got product %g", f*d)
	}
}

func TestSystolicPerPE(t *testing.T) {
	inv := SystolicPerPE(8)
	if inv[sfq.DFF] != 16 || inv[sfq.Splitter] != 16 {
		t.Fatalf("8-bit systolic branch: want 16 DFF + 16 splitters per PE, got %v", inv)
	}
}

func TestDesignString(t *testing.T) {
	want := map[Design]string{
		SplitterTree2D: "2D splitter tree",
		SplitterTree1D: "1D splitter tree",
		Systolic2D:     "2D systolic array",
		Design(7):      "Design(7)",
	}
	for d, s := range want {
		if d.String() != s {
			t.Errorf("String() = %q, want %q", d.String(), s)
		}
	}
	if len(Designs()) != 3 {
		t.Fatal("Designs() must list the three candidates")
	}
}

// Property: area and delay are monotone non-decreasing in array width for
// every design.
func TestMonotonicityProperty(t *testing.T) {
	l := lib()
	f := func(w8 uint8, dSel uint8) bool {
		w := 2 + int(w8)%100
		d := Designs()[int(dSel)%3]
		a, b := Config{Width: w, Bits: 8}, Config{Width: w + 1, Bits: 8}
		return Area(d, b, l) >= Area(d, a, l) &&
			CriticalPathDelay(d, b, l) >= CriticalPathDelay(d, a, l)-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: doubling the bus width scales tree areas exactly 2× (all cells
// are per-bit replicated).
func TestBusWidthLinearityProperty(t *testing.T) {
	l := lib()
	f := func(w8, dSel uint8) bool {
		w := 2 + int(w8)%64
		d := Designs()[int(dSel)%3]
		a1 := Area(d, Config{Width: w, Bits: 4}, l)
		a2 := Area(d, Config{Width: w, Bits: 8}, l)
		diff := a2 - 2*a1
		return diff < 1e-15 && diff > -1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Section III-A: aggressive clock skewing can flatten the 2D tree's delay,
// but only at a large additional clock-wiring area — so the systolic array
// still wins on both axes.
func TestSkewedTree2DMitigation(t *testing.T) {
	l := lib()
	cfg := Config{Width: 64, Bits: 8}
	plain := CriticalPathDelay(SplitterTree2D, cfg, l)
	skewed := SkewedTree2DDelay(cfg, l)
	if skewed >= plain/10 {
		t.Fatalf("aggressive skewing must collapse the delay: %.0f → %.1f ps",
			plain/sfq.Picosecond, skewed/sfq.Picosecond)
	}
	// But the extra clock wiring exceeds the whole systolic network.
	extra := SkewedTree2DExtraArea(cfg, l)
	if extra < Area(Systolic2D, cfg, l) {
		t.Fatal("the skewing mitigation must cost more area than the systolic alternative")
	}
	// And the systolic design is still at least as fast.
	if CriticalPathDelay(Systolic2D, cfg, l) > skewed {
		t.Fatal("the systolic array must remain the fastest option")
	}
}
