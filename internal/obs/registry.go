// The metrics registry and its Prometheus text exposition. A Registry maps
// metric families (name, help, type) to label-distinguished series; the
// package-level Default registry is the one every in-tree producer
// registers into and the one GET /metrics serves. Output is rendered in
// sorted family and series order with fixed bucket edges, so the scrape
// structure is deterministic — only measured values change between scrapes.

package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// instrument kinds, used to reject re-registration under a new type.
const (
	kindCounter = "counter"
	kindGauge   = "gauge"
	kindHist    = "histogram"
)

// series is one (family, label set) time series and its backing state.
// Exactly one of counter/gauge/hist/fn is set.
type series struct {
	labels  string // pre-rendered `key="value",...` signature, sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	series map[string]*series // by label signature
}

// Registry is a set of metric families. The zero value is not usable;
// construct with NewRegistry (or use Default).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Default is the process-wide registry every in-tree instrument registers
// into; the evaluation service exposes it on GET /metrics.
var Default = NewRegistry()

// labelSignature renders labels as a sorted, escaped `k="v",...` string.
// The signature is both the series key and the exposition text.
func labelSignature(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(SanitizeLabelName(l.Key))
		b.WriteString(`="`)
		b.WriteString(EscapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

// getSeries finds or creates the (name, labels) series inside the family
// of the given kind, panicking if the name is already registered under a
// different kind or help text — conflicting registrations are programmer
// errors caught at package init, not runtime conditions.
func (r *Registry) getSeries(name, help, kind string, labels []Label) *series {
	name = SanitizeMetricName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)", name, kind, f.kind))
	}
	sig := labelSignature(labels)
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig}
		f.series[sig] = s
	}
	return s
}

// Counter finds or creates the counter series (name, labels). Repeat calls
// with the same name and labels return the same counter. It panics on a
// kind conflict with an existing family (see getSeries).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getSeries(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = NewCounter()
	}
	return s.counter
}

// Gauge finds or creates the gauge series (name, labels). It panics on a
// kind conflict (see getSeries).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getSeries(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = NewGauge()
	}
	return s.gauge
}

// Histogram finds or creates the histogram series (name, labels) with the
// given fixed bucket edges. Edges are set on first creation; repeat calls
// return the existing histogram unchanged. It panics on a kind conflict or
// invalid edges (see getSeries and NewHistogram).
func (r *Registry) Histogram(name, help string, edges []float64, labels ...Label) *Histogram {
	s := r.getSeries(name, help, kindHist, labels)
	if s.hist == nil {
		s.hist = NewHistogram(edges)
	}
	return s.hist
}

// AdoptCounter registers an existing counter under (name, labels),
// replacing any previous series there — the caller owns the instrument,
// the registry only exposes it. It panics on a kind conflict (see
// getSeries).
func (r *Registry) AdoptCounter(name, help string, c *Counter, labels ...Label) {
	s := r.getSeries(name, help, kindCounter, labels)
	s.counter, s.fn = c, nil
}

// CounterFunc registers a callback-backed counter series, replacing any
// previous series at (name, labels): the value is read at scrape time.
// It panics on a kind conflict (see getSeries).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getSeries(name, help, kindCounter, labels)
	s.fn, s.counter = fn, nil
}

// GaugeFunc registers a callback-backed gauge series, replacing any
// previous series at (name, labels). It panics on a kind conflict (see
// getSeries).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	s := r.getSeries(name, help, kindGauge, labels)
	s.fn, s.gauge = fn, nil
}

// formatFloat renders a sample value in the shortest round-tripping form.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// valueFunc returns a reader for the series' current sample, bound to the
// backing instrument at snapshot time (call with the registry lock held).
func (s *series) valueFunc() func() float64 {
	switch {
	case s.fn != nil:
		return s.fn
	case s.counter != nil:
		c := s.counter
		return func() float64 { return float64(c.Value()) }
	case s.gauge != nil:
		g := s.gauge
		return func() float64 { return float64(g.Value()) }
	}
	return func() float64 { return 0 }
}

// writeSample emits one exposition line: name{labels} value.
func writeSample(w io.Writer, name, labels, extra string, v float64) error {
	sep := labels
	if labels != "" && extra != "" {
		sep = labels + "," + extra
	} else if extra != "" {
		sep = extra
	}
	if sep != "" {
		_, err := fmt.Fprintf(w, "%s{%s} %s\n", name, sep, formatFloat(v))
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", name, formatFloat(v))
	return err
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// signature. Histograms emit cumulative _bucket samples, _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	// Snapshot the whole structure under the lock — family order, series
	// order and instrument references — then render and read values outside
	// it, so a scrape never holds the registry lock while calling a
	// callback (which could otherwise deadlock by touching the registry).
	type seriesSnap struct {
		labels string
		hist   *Histogram
		value  func() float64
	}
	type famSnap struct {
		name, help, kind string
		series           []seriesSnap
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	snaps := make([]famSnap, 0, len(names))
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		fs := famSnap{name: f.name, help: f.help, kind: f.kind}
		for _, sig := range sigs {
			s := f.series[sig]
			fs.series = append(fs.series, seriesSnap{labels: s.labels, hist: s.hist, value: s.valueFunc()})
		}
		snaps = append(snaps, fs)
	}
	r.mu.Unlock()

	for _, f := range snaps {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, EscapeHelp(f.help), f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if s.hist != nil {
				if err := writeHistogram(w, f.name, s.labels, s.hist); err != nil {
					return err
				}
				continue
			}
			if err := writeSample(w, f.name, s.labels, "", s.value()); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeHistogram emits one histogram series: cumulative buckets by upper
// bound, the +Inf bucket, then _sum and _count.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	counts := h.BucketCounts()
	var cum int64
	for i, edge := range h.edges {
		cum += counts[i]
		if err := writeSample(w, name+"_bucket", labels,
			`le="`+formatFloat(edge)+`"`, float64(cum)); err != nil {
			return err
		}
	}
	cum += counts[len(counts)-1]
	if err := writeSample(w, name+"_bucket", labels, `le="+Inf"`, float64(cum)); err != nil {
		return err
	}
	if err := writeSample(w, name+"_sum", labels, "", h.Sum()); err != nil {
		return err
	}
	return writeSample(w, name+"_count", labels, "", float64(h.Count()))
}

// WritePrometheus renders the Default registry (see Registry.WritePrometheus).
func WritePrometheus(w io.Writer) error { return Default.WritePrometheus(w) }

// SanitizeMetricName maps s onto the Prometheus metric-name charset
// [a-zA-Z_:][a-zA-Z0-9_:]*: every invalid byte becomes '_', a leading
// digit is prefixed with '_', and an empty name becomes "_". Sanitising
// rather than rejecting keeps registration infallible at package init.
func SanitizeMetricName(s string) string {
	return sanitize(s, true)
}

// SanitizeLabelName maps s onto the Prometheus label-name charset
// [a-zA-Z_][a-zA-Z0-9_]* (no colons), with the same rules as
// SanitizeMetricName.
func SanitizeLabelName(s string) string {
	return sanitize(s, false)
}

func sanitize(s string, allowColon bool) string {
	if s == "" {
		return "_"
	}
	var b []byte
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(allowColon && c == ':') || (c >= '0' && c <= '9' && i > 0)
		if ok {
			if b != nil {
				b = append(b, c)
			}
			continue
		}
		if b == nil {
			b = append(make([]byte, 0, len(s)+1), s[:i]...)
		}
		if c >= '0' && c <= '9' { // leading digit: keep it, but prefix
			b = append(b, '_', c)
		} else {
			b = append(b, '_')
		}
	}
	if b == nil {
		return s
	}
	return string(b)
}

// EscapeLabelValue escapes a label value for the text exposition format:
// backslash, double quote and newline become \\, \" and \n.
func EscapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// EscapeHelp escapes HELP text: backslash and newline (quotes are legal in
// help lines).
func EscapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}
