// Package obs is the repository's unified observability layer: a
// stdlib-only metrics registry (counters, gauges, histograms with fixed
// bucket edges) plus lightweight phase-scoped tracing spans with JSONL
// export. The hot layers of the evaluation pipeline — the worker pool, the
// memo caches, the JSIM solver, the exhibit harness and the HTTP service —
// register their instruments here, and the evaluation service exposes the
// registry in Prometheus text exposition format on GET /metrics.
//
// # Determinism contract
//
// Observability is strictly write-only from the modeling packages'
// perspective: simulators and estimators may bump instruments, but nothing
// they compute may ever depend on instrument state (the supernpu-lint
// obsflow rule rejects reads at the source level, and the differential
// golden test proves exhibit bytes are identical with observability on and
// off). Registry output itself is deterministic in *structure*: families
// and series render in sorted order and histogram bucket edges are fixed at
// registration, so two scrapes differ only in measured values.
//
// # Cost model
//
// Counters and gauges are single atomic cells and are always live: they
// double as functional statistics (cache hit rates, queue occupancy) that
// must keep counting even when observability is off, and their cost — one
// uncontended atomic add, zero allocations — is at the noise floor of any
// workload this repository runs. Everything that reads a clock or formats
// bytes is gated: histogram observation, the Time helper and span emission
// all collapse to a single atomic load when disabled (SetEnabled(false), or
// no trace writer configured), so the zero-allocation guarantee of the JSIM
// hot loop holds with instrumentation compiled in either way.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// enabled gates every clock-reading or byte-producing instrument path.
// Counters and gauges stay live regardless (see the package cost model).
var enabled atomic.Bool

func init() { enabled.Store(true) }

// SetEnabled turns the gated instrument paths (histograms, timers, spans)
// on or off. Counters and gauges keep counting either way.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether the gated instrument paths are active.
func Enabled() bool { return enabled.Load() }

// Label is one key=value pair attached to an instrument at registration.
// Keys are sanitised to the Prometheus label-name charset and values are
// escaped at exposition time, so any strings are safe.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing count. The zero value is ready to
// use; Register a counter (or create it through a Registry) to expose it.
type Counter struct {
	v atomic.Int64
}

// NewCounter returns a standalone counter, not attached to any registry.
// Producers that own their counting (the memo caches) create counters raw
// and adopt them into a registry when they learn their name.
func NewCounter() *Counter { return &Counter{} }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Reset zeroes the counter. Prometheus consumers treat a shrinking counter
// as a process restart, which is exactly the semantic of the one in-tree
// caller (cache Clear before a cold-start benchmark).
func (c *Counter) Reset() { c.v.Store(0) }

// Gauge is a value that moves in both directions.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a standalone gauge (see NewCounter).
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc moves the gauge up by one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec moves the gauge down by one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current reading.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DurationEdges is the standard bucket layout for wall-time histograms:
// decades from 1 µs to 10 s. The edges are fixed at compile time, so the
// exposition structure of every duration histogram is deterministic.
var DurationEdges = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10}

// SizeEdges is the standard bucket layout for dimensionless size
// histograms (batch sizes, queue lengths): powers of four from 1 to 16384.
var SizeEdges = []float64{1, 4, 16, 64, 256, 1024, 4096, 16384}

// Histogram is a fixed-bucket histogram. Bucket edges are upper bounds in
// ascending order, set once at construction; an implicit +Inf bucket
// catches the overflow. Observations are dropped while observability is
// disabled — histograms are pure telemetry, never functional state.
type Histogram struct {
	edges   []float64
	buckets []atomic.Int64 // one per edge, plus the +Inf overflow at the end
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated
}

// NewHistogram returns a standalone histogram over the given ascending
// bucket edges. It panics if edges is empty or not strictly ascending —
// bucket layout is a compile-time decision, so a bad layout is a
// programmer error, not a runtime condition.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("obs: histogram needs at least one bucket edge")
	}
	for i := 1; i < len(edges); i++ {
		if !(edges[i] > edges[i-1]) {
			panic("obs: histogram bucket edges must be strictly ascending")
		}
	}
	h := &Histogram{
		edges:   append([]float64(nil), edges...),
		buckets: make([]atomic.Int64, len(edges)+1),
	}
	return h
}

// Observe records one sample. A no-op (one atomic load) while
// observability is disabled.
func (h *Histogram) Observe(x float64) {
	if !enabled.Load() {
		return
	}
	i := 0
	for i < len(h.edges) && x > h.edges[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + x)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// BucketCounts returns the per-bucket (non-cumulative) counts; the final
// element is the +Inf overflow bucket. The slice is a fresh copy.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Edges returns the histogram's bucket upper bounds (a fresh copy).
func (h *Histogram) Edges() []float64 { return append([]float64(nil), h.edges...) }

// Time starts a wall-clock measurement against h and returns the function
// that stops it, recording the elapsed seconds:
//
//	defer obs.Time(h)()
//
// While observability is disabled both halves are no-ops and the clock is
// never read, so modeling packages may call this freely — the lint
// nondeterminism rule stays satisfied because the clock read lives here.
func Time(h *Histogram) func() {
	if !enabled.Load() {
		return nop
	}
	start := time.Now()
	return func() { h.Observe(time.Since(start).Seconds()) }
}

// nop is the shared disabled-path stop function; returning the same
// function value keeps the disabled path allocation-free.
func nop() {}
