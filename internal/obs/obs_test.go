package obs

import (
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	c := NewCounter()
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("counter = %d, want 42", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Errorf("counter after Reset = %d, want 0", c.Value())
	}

	g := NewGauge()
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, x := range []float64{0.5, 1, 5, 10, 99, 100, 101, 1e6} {
		h.Observe(x)
	}
	// Edges are upper bounds: x <= edge lands in that bucket.
	want := []int64{2, 2, 2, 2}
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if h.Sum() <= 1e6 {
		t.Errorf("sum = %g, want > 1e6", h.Sum())
	}
	if e := h.Edges(); len(e) != 3 || e[2] != 100 {
		t.Errorf("edges = %v, want [1 10 100]", e)
	}
}

func TestHistogramPanicsOnBadEdges(t *testing.T) {
	for _, edges := range [][]float64{nil, {}, {1, 1}, {2, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", edges)
				}
			}()
			NewHistogram(edges)
		}()
	}
}

func TestDisabledGating(t *testing.T) {
	defer SetEnabled(true)

	h := NewHistogram([]float64{1})
	c := NewCounter()

	SetEnabled(false)
	if Enabled() {
		t.Fatal("Enabled() = true after SetEnabled(false)")
	}
	h.Observe(0.5)
	Time(h)()
	c.Inc() // counters stay live by contract
	if h.Count() != 0 || h.Sum() != 0 {
		t.Errorf("disabled histogram recorded count=%d sum=%g, want 0", h.Count(), h.Sum())
	}
	if c.Value() != 1 {
		t.Errorf("disabled counter = %d, want 1 (counters are always live)", c.Value())
	}

	SetEnabled(true)
	h.Observe(0.5)
	if h.Count() != 1 {
		t.Errorf("re-enabled histogram count = %d, want 1", h.Count())
	}
	done := Time(h)
	done()
	if h.Count() != 2 {
		t.Errorf("Time did not observe: count = %d, want 2", h.Count())
	}
}

func TestDisabledPathsDoNotAllocate(t *testing.T) {
	defer SetEnabled(true)
	SetEnabled(false)
	h := NewHistogram([]float64{1})
	c := NewCounter()
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		h.Observe(1)
		Time(h)()
		sp := StartSpan("x")
		sp.Child("y").End()
		sp.End()
	}); n != 0 {
		t.Errorf("disabled instrument paths allocate %v times per run, want 0", n)
	}
}

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "help")
	c2 := r.Counter("x_total", "help")
	if c1 != c2 {
		t.Error("repeat Counter registration returned a different instrument")
	}
	if r.Counter("x_total", "help", L("k", "a")) == c1 {
		t.Error("different labels returned the same series")
	}
	h1 := r.Histogram("h_seconds", "help", DurationEdges)
	if h1 != r.Histogram("h_seconds", "help", DurationEdges) {
		t.Error("repeat Histogram registration returned a different instrument")
	}
}

func TestRegistryKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x_total", "help")
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counts b").Add(3)
	r.Gauge("a_gauge", "gauges a", L("k", "v")).Set(-2)
	r.GaugeFunc("c_fn", "callback gauge", func() float64 { return 1.5 })
	h := r.Histogram("d_seconds", "times d", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"# HELP a_gauge gauges a\n# TYPE a_gauge gauge\na_gauge{k=\"v\"} -2\n",
		"# HELP b_total counts b\n# TYPE b_total counter\nb_total 3\n",
		"c_fn 1.5\n",
		"# TYPE d_seconds histogram\n",
		"d_seconds_bucket{le=\"1\"} 1\n",
		"d_seconds_bucket{le=\"10\"} 2\n",
		"d_seconds_bucket{le=\"+Inf\"} 3\n",
		"d_seconds_sum 55.5\n",
		"d_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Families render in sorted name order.
	if !(strings.Index(out, "a_gauge") < strings.Index(out, "b_total") &&
		strings.Index(out, "b_total") < strings.Index(out, "c_fn")) {
		t.Errorf("families not sorted:\n%s", out)
	}

	// Structure is deterministic across scrapes.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if out != b2.String() {
		t.Error("two scrapes with unchanged values differ")
	}
}

func TestWritePrometheusSeriesSorted(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help", L("x", "b")).Inc()
	r.Counter("m_total", "help", L("x", "a")).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Index(out, `x="a"`) > strings.Index(out, `x="b"`) {
		t.Errorf("series not sorted by label signature:\n%s", out)
	}
}

func TestAdoptCounter(t *testing.T) {
	r := NewRegistry()
	c := NewCounter()
	c.Add(7)
	r.AdoptCounter("owned_total", "externally owned", c)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "owned_total 7\n") {
		t.Errorf("adopted counter not exposed:\n%s", b.String())
	}
}

func TestCounterFuncReplacesAndSurvivesCounter(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "help").Add(5)
	r.CounterFunc("x_total", "help", func() float64 { return 9 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "x_total 9\n") {
		t.Errorf("CounterFunc did not replace the stored counter:\n%s", b.String())
	}
	// A later Counter() at the same series must still hand out a usable
	// instrument (the callback keeps priority for rendering).
	c := r.Counter("x_total", "help")
	if c == nil {
		t.Fatal("Counter returned nil after CounterFunc registration")
	}
	c.Inc()
}

func TestSanitizeNames(t *testing.T) {
	tests := []struct{ in, metric, label string }{
		{"good_name", "good_name", "good_name"},
		{"name:with:colons", "name:with:colons", "name_with_colons"},
		{"has-dash.dot", "has_dash_dot", "has_dash_dot"},
		{"9leading", "_9leading", "_9leading"},
		{"", "_", "_"},
		{"sp ace\n", "sp_ace_", "sp_ace_"},
		{"héllo", "h__llo", "h__llo"},
	}
	for _, tt := range tests {
		if got := SanitizeMetricName(tt.in); got != tt.metric {
			t.Errorf("SanitizeMetricName(%q) = %q, want %q", tt.in, got, tt.metric)
		}
		if got := SanitizeLabelName(tt.in); got != tt.label {
			t.Errorf("SanitizeLabelName(%q) = %q, want %q", tt.in, got, tt.label)
		}
	}
}

func TestEscapeLabelValue(t *testing.T) {
	tests := []struct{ in, want string }{
		{"plain", "plain"},
		{`back\slash`, `back\\slash`},
		{`qu"ote`, `qu\"ote`},
		{"new\nline", `new\nline`},
		{"héllo", "héllo"}, // UTF-8 passes through untouched
	}
	for _, tt := range tests {
		if got := EscapeLabelValue(tt.in); got != tt.want {
			t.Errorf("EscapeLabelValue(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	if got := EscapeHelp("a\\b\nc\"d"); got != `a\\b\nc"d` {
		t.Errorf("EscapeHelp = %q, want backslash and newline escaped, quote kept", got)
	}
}

func TestDefaultRegistryHasRepoFamilies(t *testing.T) {
	// The Default registry accumulates families from every linked package;
	// this package alone registers nothing, so just check the plumbing.
	var b strings.Builder
	if err := WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
}
