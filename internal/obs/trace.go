// Phase-scoped tracing spans. A span is a start/stop wall-clock timer with
// a hierarchical slash-separated path ("report/fig7") and optional labels;
// ending a span appends one JSON line to the configured trace writer. Span
// emission is entirely off — no clock read, no allocation — until a writer
// is installed with SetTraceWriter (the -trace-out flag on the CLIs), so
// tracing can stay compiled into the modeling hot paths.

package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

var (
	traceMu sync.Mutex
	traceW  io.Writer
	tracing atomic.Bool
)

// SetTraceWriter installs w as the JSONL span sink and enables span
// emission; nil removes the sink and disables spans. Lines are written
// whole under a mutex, so concurrent spans never interleave bytes.
func SetTraceWriter(w io.Writer) {
	traceMu.Lock()
	traceW = w
	traceMu.Unlock()
	tracing.Store(w != nil)
}

// Tracing reports whether a span sink is installed.
func Tracing() bool { return tracing.Load() }

// Span is one in-flight timed phase. The zero Span is inert: Child returns
// another inert span and End does nothing, which is what StartSpan hands
// out while tracing is disabled.
type Span struct {
	path   string
	labels []Label
	start  time.Time
	live   bool
}

// StartSpan opens a root span. While tracing is disabled (no writer
// installed, or observability off) it returns an inert span without
// reading the clock.
func StartSpan(name string, labels ...Label) Span {
	if !tracing.Load() || !enabled.Load() {
		return Span{}
	}
	return Span{path: name, labels: labels, start: time.Now(), live: true}
}

// Child opens a sub-span whose path is the parent's path plus "/" plus
// name. A child of an inert span is inert.
func (s Span) Child(name string, labels ...Label) Span {
	if !s.live {
		return Span{}
	}
	return Span{path: s.path + "/" + name, labels: labels, start: time.Now(), live: true}
}

// spanRecord is the JSONL schema of one completed span. Times are Unix
// nanoseconds; labels render as a sorted-key object (encoding/json sorts
// map keys), so records with equal content are byte-identical.
type spanRecord struct {
	Span    string            `json:"span"`
	StartNs int64             `json:"start_ns"`
	DurNs   int64             `json:"dur_ns"`
	Labels  map[string]string `json:"labels,omitempty"`
}

// End closes the span and appends its record to the trace writer. Calling
// End on an inert span is a no-op; encoding errors are swallowed (tracing
// must never fail the traced work).
func (s Span) End() {
	if !s.live {
		return
	}
	rec := spanRecord{
		Span:    s.path,
		StartNs: s.start.UnixNano(),
		DurNs:   time.Since(s.start).Nanoseconds(),
	}
	if len(s.labels) > 0 {
		rec.Labels = make(map[string]string, len(s.labels))
		for _, l := range s.labels {
			rec.Labels[l.Key] = l.Value
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	traceMu.Lock()
	if traceW != nil {
		_, _ = traceW.Write(line)
	}
	traceMu.Unlock()
}
