package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// withTrace installs a buffer as the span sink for one test.
func withTrace(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	SetTraceWriter(&buf)
	t.Cleanup(func() { SetTraceWriter(nil) })
	return &buf
}

func TestSpanJSONL(t *testing.T) {
	buf := withTrace(t)

	sp := StartSpan("report", L("run", "test"))
	child := sp.Child("fig7")
	child.End()
	sp.End()

	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d trace lines, want 2:\n%s", len(lines), buf.String())
	}
	var rec struct {
		Span    string            `json:"span"`
		StartNs int64             `json:"start_ns"`
		DurNs   int64             `json:"dur_ns"`
		Labels  map[string]string `json:"labels"`
	}
	// Children end first, so the child record comes first.
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("trace line is not JSON: %v\n%s", err, lines[0])
	}
	if rec.Span != "report/fig7" {
		t.Errorf("child span path = %q, want report/fig7", rec.Span)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Span != "report" || rec.Labels["run"] != "test" {
		t.Errorf("root span = %+v, want span=report labels[run]=test", rec)
	}
	if rec.StartNs <= 0 || rec.DurNs < 0 {
		t.Errorf("timestamps start_ns=%d dur_ns=%d, want positive start and non-negative duration", rec.StartNs, rec.DurNs)
	}
}

func TestSpansInertWithoutWriter(t *testing.T) {
	if Tracing() {
		t.Fatal("Tracing() = true with no writer installed")
	}
	sp := StartSpan("ghost")
	if sp.live {
		t.Error("StartSpan returned a live span with no writer")
	}
	sp.Child("sub").End() // must all be no-ops
	sp.End()
	var zero Span
	zero.End()
	zero.Child("x").End()
}

func TestSpansInertWhenDisabled(t *testing.T) {
	buf := withTrace(t)
	defer SetEnabled(true)
	SetEnabled(false)
	StartSpan("off").End()
	if buf.Len() != 0 {
		t.Errorf("disabled span emitted %q", buf.String())
	}
}

func TestSetTraceWriterNilStops(t *testing.T) {
	buf := withTrace(t)
	StartSpan("one").End()
	SetTraceWriter(nil)
	if Tracing() {
		t.Error("Tracing() = true after SetTraceWriter(nil)")
	}
	StartSpan("two").End()
	if n := strings.Count(buf.String(), "\n"); n != 1 {
		t.Errorf("got %d trace lines, want only the pre-removal span", n)
	}
}
