// Fuzz coverage for the Prometheus text-format escaping path: arbitrary
// metric/label names and label values must always render to output that
// parses under the exposition grammar, and label-value escaping must be
// reversible so no two values collide.
package obs_test

import (
	"regexp"
	"strings"
	"testing"

	"supernpu/internal/obs"
)

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe matches one exposition sample line: name{labels} value.
	// Label values may contain any byte except raw ", \ and newline, plus
	// the three escape pairs.
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*` +
		`(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"` +
		`(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*")*\})?` +
		` [^ ]+$`)
)

// unescapeLabelValue reverses EscapeLabelValue.
func unescapeLabelValue(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '\\' && i+1 < len(s) {
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \"
				b.WriteByte(s[i])
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

func FuzzPromEscape(f *testing.F) {
	seeds := []struct{ name, value string }{
		{"plain_name", "plain"},
		{"héllo, 世界", "héllo, 世界"},
		{`qu"ote`, `say "hi"`},
		{`back\slash`, `C:\path\n`},
		{"new\nline", "line1\nline2"},
		{"9leading", ""},
		{"", "\x00\x7f\xff"},
		{"mixed:colons", `\\" tricky \n"`},
		{"tab\tname", "tab\tvalue"},
	}
	for _, s := range seeds {
		f.Add(s.name, s.value)
	}
	f.Fuzz(func(t *testing.T, name, value string) {
		mname := obs.SanitizeMetricName(name)
		if !metricNameRe.MatchString(mname) {
			t.Fatalf("SanitizeMetricName(%q) = %q, not a legal metric name", name, mname)
		}
		lname := obs.SanitizeLabelName(name)
		if !labelNameRe.MatchString(lname) {
			t.Fatalf("SanitizeLabelName(%q) = %q, not a legal label name", name, lname)
		}

		escaped := obs.EscapeLabelValue(value)
		if strings.ContainsAny(escaped, "\n") {
			t.Fatalf("EscapeLabelValue(%q) = %q still contains a raw newline", value, escaped)
		}
		if got := unescapeLabelValue(escaped); got != value {
			t.Fatalf("escape round-trip lost data: %q -> %q -> %q", value, escaped, got)
		}

		// Render a full registry through the same paths /metrics uses and
		// check every line against the exposition grammar.
		r := obs.NewRegistry()
		r.Counter(name, "fuzz counter", obs.L(name, value)).Inc()
		r.Histogram("fuzz_seconds", "fuzz histogram", []float64{1}, obs.L(name, value)).Observe(0.5)
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		for _, line := range strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n") {
			if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
				continue
			}
			if !sampleRe.MatchString(line) {
				t.Fatalf("exposition line does not parse: %q\nfull output:\n%s", line, b.String())
			}
		}
	})
}
