// Race/concurrency coverage for the registry: instruments hammered from
// parallel.Map workers (the exact pool the evaluation pipeline fans out
// through) with concurrent scrapes in flight, then exact final counts
// asserted. Run under -race this proves the atomic instrument paths and
// the snapshot-under-lock scrape are data-race free; the external test
// package avoids an import cycle with internal/parallel.
package obs_test

import (
	"io"
	"sync"
	"testing"

	"supernpu/internal/obs"
	"supernpu/internal/parallel"
)

func TestInstrumentsUnderParallelHammer(t *testing.T) {
	parallel.SetWorkers(8)
	t.Cleanup(func() { parallel.SetWorkers(0) })

	r := obs.NewRegistry()
	c := r.Counter("hammer_total", "hammered counter")
	g := r.Gauge("hammer_gauge", "hammered gauge")
	h := r.Histogram("hammer_seconds", "hammered histogram", obs.DurationEdges)

	const tasks, perTask = 64, 500
	err := parallel.ForEach(tasks, func(i int) error {
		for j := 0; j < perTask; j++ {
			c.Inc()
			g.Inc()
			h.Observe(1) // exactly representable, so Sum is order-independent
			// GetOrCreate races: same series and per-task series.
			if r.Counter("hammer_total", "hammered counter") != c {
				t.Error("concurrent GetOrCreate returned a different counter")
			}
			if j == 0 {
				r.Counter("hammer_task_total", "per-task series",
					obs.L("task", string(rune('a'+i%26)))).Inc()
			}
		}
		// A scrape concurrent with the writers must not race or deadlock.
		return r.WritePrometheus(io.Discard)
	})
	if err != nil {
		t.Fatal(err)
	}

	const want = tasks * perTask
	if c.Value() != want {
		t.Errorf("counter = %d, want exactly %d", c.Value(), want)
	}
	if g.Value() != want {
		t.Errorf("gauge = %d, want exactly %d", g.Value(), want)
	}
	if h.Count() != want {
		t.Errorf("histogram count = %d, want exactly %d", h.Count(), want)
	}
	if h.Sum() != want {
		t.Errorf("histogram sum = %g, want exactly %d", h.Sum(), want)
	}
	var buckets int64
	for _, b := range h.BucketCounts() {
		buckets += b
	}
	if buckets != want {
		t.Errorf("bucket total = %d, want exactly %d", buckets, want)
	}
}

func TestEnabledToggleUnderHammer(t *testing.T) {
	// Flipping the gate while histograms observe must be race-free; the
	// final count is not asserted (it depends on interleaving), only
	// integrity between count and bucket totals.
	defer obs.SetEnabled(true)
	h := obs.NewHistogram([]float64{1})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	for i := 0; i < 100; i++ {
		obs.SetEnabled(i%2 == 0)
	}
	obs.SetEnabled(true)
	wg.Wait()
	var buckets int64
	for _, b := range h.BucketCounts() {
		buckets += b
	}
	if buckets != h.Count() {
		t.Errorf("bucket total %d != count %d", buckets, h.Count())
	}
}
