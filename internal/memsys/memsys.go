// Package memsys models the off-chip memory system. The paper treats DRAM
// as a flat 300 GB/s pipe (the TPUv2 HBM figure); this package refines that
// with transfer granularity — per-request activation overhead and channel
// burst granules — and a double-buffered transfer scheduler, and shows under
// which conditions the flat-bandwidth abstraction the simulators use is
// accurate (NPU-scale transfers are megabytes, far above the knee).
package memsys

import (
	"errors"
	"math"
)

// Model is an HBM-like memory system.
type Model struct {
	// PeakBandwidth is the aggregate pin bandwidth in bytes/s.
	PeakBandwidth float64
	// Channels is the number of independent channels.
	Channels int
	// BurstBytes is the minimum efficient granule per channel access;
	// smaller transfers waste the remainder of the burst.
	BurstBytes int
	// RequestOverhead is the fixed per-request latency (row activation,
	// command overhead) in seconds.
	RequestOverhead float64
}

// HBM2 returns a 300 GB/s, 8-channel HBM2 stack with 256 B bursts and
// ~60 ns of request overhead — the paper's bandwidth point.
func HBM2() Model {
	return Model{
		PeakBandwidth:   300e9,
		Channels:        8,
		BurstBytes:      256,
		RequestOverhead: 60e-9,
	}
}

// Validate reports a configuration error, if any.
func (m Model) Validate() error {
	if m.PeakBandwidth <= 0 || m.Channels <= 0 || m.BurstBytes <= 0 || m.RequestOverhead < 0 {
		return errors.New("memsys: all model parameters must be positive")
	}
	return nil
}

// TransferTime returns the time to move n bytes in one request stream:
// the fixed request overhead plus the burst-rounded payload at peak rate.
func (m Model) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	granule := int64(m.Channels * m.BurstBytes)
	rounded := (n + granule - 1) / granule * granule
	return m.RequestOverhead + float64(rounded)/m.PeakBandwidth
}

// EffectiveBandwidth returns the achieved bytes/s for an n-byte transfer.
func (m Model) EffectiveBandwidth(n int64) float64 {
	t := m.TransferTime(n)
	if t == 0 {
		return 0
	}
	return float64(n) / t
}

// Efficiency is EffectiveBandwidth over PeakBandwidth, in (0, 1].
func (m Model) Efficiency(n int64) float64 {
	return m.EffectiveBandwidth(n) / m.PeakBandwidth
}

// KneeBytes returns the transfer size at which efficiency reaches 50%: the
// request overhead equals the streaming time.
func (m Model) KneeBytes() int64 {
	return int64(math.Ceil(m.RequestOverhead * m.PeakBandwidth))
}

// Phase is one double-buffered execution phase: the compute time during
// which the next phase's transferBytes can stream in the background.
type Phase struct {
	ComputeTime   float64
	TransferBytes int64
}

// Schedule runs a phase sequence under double buffering: each phase's
// transfer overlaps the same phase's computation; only the excess stalls.
// It returns the total time and the exposed stall time.
func (m Model) Schedule(phases []Phase) (total, stall float64) {
	for _, p := range phases {
		t := m.TransferTime(p.TransferBytes)
		total += p.ComputeTime
		if t > p.ComputeTime {
			ex := t - p.ComputeTime
			total += ex
			stall += ex
		}
	}
	return total, stall
}
