package memsys

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := HBM2().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := HBM2()
	bad.Channels = 0
	if bad.Validate() == nil {
		t.Fatal("invalid models must be rejected")
	}
}

func TestLargeTransfersApproachPeak(t *testing.T) {
	m := HBM2()
	// A 24 MB buffer fill must achieve >99% of peak — the regime in which
	// the simulators' flat-bandwidth abstraction is accurate.
	if eff := m.Efficiency(24 << 20); eff < 0.99 {
		t.Fatalf("24 MB transfer efficiency = %.3f, want > 0.99", eff)
	}
	// A single burst is overhead-dominated.
	if eff := m.Efficiency(256); eff > 0.05 {
		t.Fatalf("single-burst efficiency = %.3f, want overhead-dominated", eff)
	}
}

func TestKnee(t *testing.T) {
	m := HBM2()
	knee := m.KneeBytes()
	// 60 ns × 300 GB/s = 18 kB.
	if knee < 17000 || knee > 19000 {
		t.Fatalf("knee = %d bytes, want ≈18 kB", knee)
	}
	// Around the knee, efficiency is ≈50%.
	if eff := m.Efficiency(knee); math.Abs(eff-0.5) > 0.05 {
		t.Fatalf("efficiency at the knee = %.2f, want ≈0.5", eff)
	}
}

func TestBurstRounding(t *testing.T) {
	m := HBM2()
	// One byte still moves a full channel-granule.
	if m.TransferTime(1) != m.TransferTime(int64(m.Channels*m.BurstBytes)) {
		t.Fatal("sub-granule transfers must round up to the burst granule")
	}
	if m.TransferTime(0) != 0 {
		t.Fatal("zero bytes take zero time")
	}
}

func TestScheduleOverlap(t *testing.T) {
	m := HBM2()
	bigCompute := []Phase{{ComputeTime: 1e-3, TransferBytes: 1 << 20}}
	total, stall := m.Schedule(bigCompute)
	if stall != 0 || total != 1e-3 {
		t.Fatalf("a 1 MB transfer must hide behind 1 ms of compute: total %g stall %g", total, stall)
	}
	bigTransfer := []Phase{{ComputeTime: 1e-6, TransferBytes: 24 << 20}}
	total, stall = m.Schedule(bigTransfer)
	want := m.TransferTime(24 << 20)
	if math.Abs(total-want) > 1e-12 || stall <= 0 {
		t.Fatalf("a transfer-bound phase must expose the excess: total %g want %g", total, want)
	}
}

// Property: scheduling bounds — total time is at least the compute sum and
// at least any single phase's transfer time, and never more than the sum of
// both components.
func TestScheduleBoundsProperty(t *testing.T) {
	m := HBM2()
	f := func(raw []uint16) bool {
		var phases []Phase
		var computeSum, transferSum float64
		for i := 0; i+1 < len(raw) && i < 16; i += 2 {
			p := Phase{
				ComputeTime:   float64(raw[i]) * 1e-9,
				TransferBytes: int64(raw[i+1]) * 64,
			}
			phases = append(phases, p)
			computeSum += p.ComputeTime
			transferSum += m.TransferTime(p.TransferBytes)
		}
		total, stall := m.Schedule(phases)
		return total >= computeSum-1e-15 &&
			total <= computeSum+transferSum+1e-15 &&
			stall >= 0 && stall <= transferSum+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: efficiency is monotone non-decreasing across granule-aligned
// transfer sizes (within a granule, burst rounding makes it sawtoothed).
func TestEfficiencyMonotoneProperty(t *testing.T) {
	m := HBM2()
	granule := int64(m.Channels * m.BurstBytes)
	f := func(a, b uint16) bool {
		x := (int64(a) + 1) * granule
		y := (int64(b) + 1) * granule
		if x > y {
			x, y = y, x
		}
		return m.Efficiency(y) >= m.Efficiency(x)-1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
