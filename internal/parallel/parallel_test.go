package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"supernpu/internal/guard"
	"supernpu/internal/guard/leaktest"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
	SetWorkers(0)
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errors.New("b")
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want error of index 7", w, err)
		}
	}
	SetWorkers(0)
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	SetWorkers(workers)
	defer SetWorkers(0)

	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(64, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, worker bound is %d", p, workers)
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var seen [37]atomic.Int64
	if err := ForEach(len(seen), func(i int) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}

func TestForEachError(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	want := fmt.Errorf("boom")
	if err := ForEach(10, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
	SetWorkers(-1)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() after negative set = %d, want NumCPU", got)
	}
	SetWorkers(0)
}

func TestMapRecoversPanickingJob(t *testing.T) {
	// Regression: a panic inside a worker goroutine used to kill the whole
	// process (the server's recovery middleware only guards the handler
	// goroutine). It must now surface as a *PanicError.
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		_, err := Map(20, func(i int) (int, error) {
			if i == 5 {
				panic("sfq meltdown")
			}
			return i, nil
		})
		if err == nil {
			t.Fatalf("workers=%d: panic was swallowed", w)
		}
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: got %T %v, want *PanicError", w, err, err)
		}
		if pe.Value != "sfq meltdown" {
			t.Fatalf("workers=%d: panic value = %v", w, pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatalf("workers=%d: PanicError carries no stack", w)
		}
		if pe.Error() != "panic: sfq meltdown" {
			t.Fatalf("workers=%d: error text %q not deterministic", w, pe.Error())
		}
	}
	SetWorkers(0)
}

func TestPanicErrorUnwrapsErrorValues(t *testing.T) {
	sentinel := errors.New("typed sentinel")
	SetWorkers(2)
	defer SetWorkers(0)
	_, err := Map(4, func(i int) (int, error) {
		if i == 2 {
			panic(sentinel)
		}
		return i, nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("errors.Is lost the sentinel across the panic boundary: %v", err)
	}
}

func TestMapFailsFast(t *testing.T) {
	// After index 0 errors, workers must stop claiming new indices. The
	// non-failing jobs sleep long enough that the failure flag is certainly
	// visible before any worker loops back for more work.
	const n = 10000
	SetWorkers(4)
	defer SetWorkers(0)
	var executed atomic.Int64
	boom := errors.New("boom")
	_, err := Map(n, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, boom
		}
		time.Sleep(10 * time.Millisecond)
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
	if ex := executed.Load(); ex > n/10 {
		t.Fatalf("executed %d of %d jobs after an index-0 failure: not fail-fast", ex, n)
	}
}

func TestMapContextCancellationStopsScheduling(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int64
		const n = 10000
		_, err := MapContext(ctx, n, func(ctx context.Context, i int) (int, error) {
			if executed.Add(1) == 3 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return i, nil
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: got %v, want context.Canceled", w, err)
		}
		if ex := executed.Load(); ex > n/10 {
			t.Fatalf("workers=%d: executed %d of %d jobs after cancel", w, ex, n)
		}
	}
	SetWorkers(0)
}

func TestMapContextCompletedRunIgnoresLateCancel(t *testing.T) {
	// A context cancelled only after every index has been claimed must not
	// turn a fully successful run into an error.
	SetWorkers(2)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out, err := MapContext(ctx, 8, func(ctx context.Context, i int) (int, error) {
		return i, nil
	})
	if err != nil || len(out) != 8 {
		t.Fatalf("got (%v, %v)", out, err)
	}
}

func TestForEachContextPropagatesCancel(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ForEachContext(ctx, 100, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapLocalOneLocalPerWorker(t *testing.T) {
	// Each worker must get exactly one local, built inside that worker, and
	// no two workers may share one.
	const workers = 4
	SetWorkers(workers)
	defer SetWorkers(0)
	var built atomic.Int64
	type local struct{ uses int }
	out, err := MapLocal(200, func() *local {
		built.Add(1)
		return &local{}
	}, func(l *local, i int) (int, error) {
		l.uses++ // races across workers would trip -race if locals were shared
		return i * 3, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*3 {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*3)
		}
	}
	if b := built.Load(); b < 1 || b > workers {
		t.Fatalf("built %d locals for %d workers", b, workers)
	}
}

func TestMapLocalSerialSingleLocal(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	var built atomic.Int64
	if _, err := MapLocal(50, func() int {
		built.Add(1)
		return 0
	}, func(l int, i int) (int, error) {
		return i, nil
	}); err != nil {
		t.Fatal(err)
	}
	if b := built.Load(); b != 1 {
		t.Fatalf("serial path built %d locals, want 1", b)
	}
}

func TestMapLocalReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		_, err := MapLocal(50, func() struct{} { return struct{}{} },
			func(l struct{}, i int) (int, error) {
				switch i {
				case 9:
					return 0, errA
				case 40:
					return 0, errors.New("b")
				}
				return i, nil
			})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want error of index 9", w, err)
		}
	}
	SetWorkers(0)
}

func TestForEachLocalVisitsEveryIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var seen [41]atomic.Int64
	if err := ForEachLocal(len(seen), func() []byte {
		return make([]byte, 8) // scratch each worker reuses
	}, func(buf []byte, i int) error {
		buf[0] = byte(i)
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}

func TestMapLocalContextCancel(t *testing.T) {
	SetWorkers(3)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapLocalContext(ctx, 100, func() struct{} { return struct{}{} },
		func(ctx context.Context, l struct{}, i int) (int, error) { return i, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

func TestMapLocalRecoversPanickingJob(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	_, err := MapLocal(20, func() struct{} { return struct{}{} },
		func(l struct{}, i int) (int, error) {
			if i == 5 {
				panic("local meltdown")
			}
			return i, nil
		})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %T %v, want *PanicError", err, err)
	}
	if pe.Value != "local meltdown" {
		t.Fatalf("panic value = %v", pe.Value)
	}
}

func TestCancellationErrorsCarryGuardTaxonomy(t *testing.T) {
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		defer SetWorkers(0)
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := MapContext(ctx, 50, func(ctx context.Context, i int) (int, error) {
			return i, nil
		})
		if !errors.Is(err, guard.ErrCanceled) {
			t.Errorf("workers=%d: errors.Is(err, guard.ErrCanceled) = false for %v", w, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: wrap lost context.Canceled: %v", w, err)
		}
	}
}

func TestDeadlineErrorsCarryGuardTaxonomy(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := ForEachContext(ctx, 50, func(ctx context.Context, i int) error { return nil })
	if !errors.Is(err, guard.ErrDeadlineExceeded) {
		t.Errorf("errors.Is(err, guard.ErrDeadlineExceeded) = false for %v", err)
	}
}

// A job that returns the raw context error (the usual shape when fn itself
// polls ctx) is lifted into the taxonomy on the way out of the pool.
func TestJobReturnedCtxErrGetsWrapped(t *testing.T) {
	SetWorkers(1)
	defer SetWorkers(0)
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	_, err := MapContext(ctx, 10, func(ctx context.Context, i int) (int, error) {
		once.Do(cancel)
		return 0, ctx.Err()
	})
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("raw ctx.Err() from a job not lifted: %v", err)
	}
}

func TestForEachLocalContextVisitsEveryIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var visited [50]atomic.Bool
	err := ForEachLocalContext(context.Background(), 50, func() int { return 0 },
		func(ctx context.Context, local int, i int) error {
			visited[i].Store(true)
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i := range visited {
		if !visited[i].Load() {
			t.Fatalf("index %d never visited", i)
		}
	}
}

// The pool promises complete shutdown: after Map returns — success, error,
// or cancellation — no worker goroutine survives.
func TestPoolShutdownLeavesNoGoroutines(t *testing.T) {
	leaktest.Check(t)
	SetWorkers(8)
	defer SetWorkers(0)

	if _, err := Map(64, func(i int) (int, error) { return i, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Map(64, func(i int) (int, error) {
		if i == 3 {
			return 0, errors.New("boom")
		}
		return i, nil
	}); err == nil {
		t.Fatal("expected error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapContext(ctx, 64, func(ctx context.Context, i int) (int, error) {
		return i, nil
	}); err == nil {
		t.Fatal("expected cancellation error")
	}
}
