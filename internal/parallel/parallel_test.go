package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapPreservesOrder(t *testing.T) {
	for _, w := range []int{1, 2, 8} {
		SetWorkers(w)
		out, err := Map(100, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(out) != 100 {
			t.Fatalf("workers=%d: got %d results", w, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
	SetWorkers(0)
}

func TestMapReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		_, err := Map(50, func(i int) (int, error) {
			switch i {
			case 7:
				return 0, errA
			case 31:
				return 0, errors.New("b")
			}
			return i, nil
		})
		if !errors.Is(err, errA) {
			t.Fatalf("workers=%d: got %v, want error of index 7", w, err)
		}
	}
	SetWorkers(0)
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || out != nil {
		t.Fatalf("got (%v, %v), want (nil, nil)", out, err)
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	SetWorkers(workers)
	defer SetWorkers(0)

	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	_, err := Map(64, func(i int) (struct{}, error) {
		n := inFlight.Add(1)
		mu.Lock()
		if n > peak.Load() {
			peak.Store(n)
		}
		mu.Unlock()
		runtime.Gosched()
		inFlight.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, worker bound is %d", p, workers)
	}
}

func TestForEachVisitsEveryIndex(t *testing.T) {
	SetWorkers(4)
	defer SetWorkers(0)
	var seen [37]atomic.Int64
	if err := ForEach(len(seen), func(i int) error {
		seen[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("index %d visited %d times", i, n)
		}
	}
}

func TestForEachError(t *testing.T) {
	SetWorkers(2)
	defer SetWorkers(0)
	want := fmt.Errorf("boom")
	if err := ForEach(10, func(i int) error {
		if i == 3 {
			return want
		}
		return nil
	}); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
}

func TestWorkersDefaultsToNumCPU(t *testing.T) {
	SetWorkers(0)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() = %d, want NumCPU %d", got, runtime.NumCPU())
	}
	SetWorkers(5)
	if got := Workers(); got != 5 {
		t.Fatalf("Workers() = %d, want 5", got)
	}
	SetWorkers(-1)
	if got := Workers(); got != runtime.NumCPU() {
		t.Fatalf("Workers() after negative set = %d, want NumCPU", got)
	}
	SetWorkers(0)
}
