// Package parallel is the repository's bounded worker pool: order-preserving
// Map/ForEach over index ranges, built on the standard library only.
//
// Every hot loop of the evaluation pipeline (figure regeneration, design-
// space sweeps, per-layer simulation, JSIM transients) fans out through this
// package, so a single knob — SetWorkers — switches the whole system between
// serial and parallel execution. Results are always assembled by index, and
// the error returned is always the one of the lowest failing index, so
// output is byte-identical regardless of the worker count.
//
// The pool is hardened for long-running and served workloads:
//
//   - a panicking job is recovered inside its worker goroutine and surfaces
//     as a *PanicError carrying the panic value and stack, instead of
//     killing the process (an http recovery middleware cannot reach a panic
//     on a different goroutine);
//   - scheduling fails fast: after the first error or panic, workers stop
//     claiming new indices, so a failed 10 000-point sweep does not run its
//     remaining points to completion first; and
//   - MapContext/ForEachContext observe context cancellation between jobs,
//     which lets a checkpointed sweep stop cleanly on SIGINT/SIGTERM.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"supernpu/internal/guard"
	"supernpu/internal/obs"
)

// Pool instruments: batch and task counts are always-live counters; the
// queue-wait histogram (delay between a batch being submitted and each of
// its tasks being claimed by a worker) reads the clock only while
// observability is enabled. None of it feeds back into scheduling, so
// results stay byte-identical with instrumentation on or off.
var (
	poolRuns      = obs.Default.Counter("supernpu_pool_runs_total", "Map/ForEach batches submitted to the worker pool")
	poolTasks     = obs.Default.Counter("supernpu_pool_tasks_total", "tasks executed by the worker pool")
	poolPanics    = obs.Default.Counter("supernpu_pool_panics_total", "task panics recovered into *PanicError")
	poolQueueWait = obs.Default.Histogram("supernpu_pool_queue_wait_seconds", "delay between batch submission and task claim", obs.DurationEdges)
	poolBatch     = obs.Default.Histogram("supernpu_pool_batch_tasks", "tasks per submitted batch", obs.SizeEdges)
)

func init() {
	obs.Default.GaugeFunc("supernpu_pool_workers", "effective worker count of the pool", func() float64 {
		return float64(Workers())
	})
}

// workers holds the configured worker count; 0 means runtime.NumCPU().
var workers atomic.Int64

// SetWorkers sets the maximum number of concurrent workers used by Map and
// ForEach. n <= 0 resets to runtime.NumCPU(). n == 1 forces fully serial,
// in-order execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// PanicError is a job panic converted into an error. The Error text renders
// only the panic value — deterministic, so responses that embed it stay
// byte-stable — while Stack preserves the full worker stack for logs.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// Unwrap exposes a panic value that already was an error (panicking with a
// typed sentinel keeps errors.Is working across the goroutine boundary).
func (e *PanicError) Unwrap() error {
	if err, ok := e.Value.(error); ok {
		return err
	}
	return nil
}

// call runs fn(ctx, local, i), converting a panic into a *PanicError.
func call[L, T any](ctx context.Context, fn func(ctx context.Context, local L, i int) (T, error), local L, i int) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			poolPanics.Inc()
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, local, i)
}

// Map evaluates fn for every index in [0, n) using at most Workers()
// goroutines and returns the results in index order. If any call fails, Map
// returns the error of the lowest failing index and a nil slice. Scheduling
// is fail-fast: indices not yet claimed when the first error (or panic)
// occurs are never run; indices claimed before it always run to completion,
// which is what keeps the lowest-failing-index contract exact — indices are
// claimed in increasing order, so everything below the first failure has
// already been claimed.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapContext(context.Background(), n, func(_ context.Context, i int) (T, error) {
		return fn(i)
	})
}

// MapContext is Map with context-aware scheduling: between jobs, workers
// observe ctx and stop claiming new indices once it is cancelled. When the
// run is cut short by cancellation (and no job failed first), MapContext
// returns ctx's error lifted into the guard taxonomy, so callers at any
// distance classify it with errors.Is(err, guard.ErrCanceled) (or
// guard.ErrDeadlineExceeded).
func MapContext[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	return MapLocalContext(ctx, n, func() struct{} { return struct{}{} },
		func(ctx context.Context, _ struct{}, i int) (T, error) {
			return fn(ctx, i)
		})
}

// MapLocal is Map with per-worker local state: newLocal runs once per worker
// and its value is handed to every fn call that worker executes. It is the
// hook for reusing expensive scratch (a jsim.Solver, a decode buffer) across
// the jobs of one worker without sharing it between workers — fn may mutate
// its local freely and must not stash it anywhere another goroutine reads.
// newLocal must not panic; a panic inside fn is recovered as usual.
func MapLocal[L, T any](n int, newLocal func() L, fn func(local L, i int) (T, error)) ([]T, error) {
	return MapLocalContext(context.Background(), n, newLocal,
		func(_ context.Context, local L, i int) (T, error) {
			return fn(local, i)
		})
}

// ForEachLocal is ForEach with per-worker local state (see MapLocal).
func ForEachLocal[L any](n int, newLocal func() L, fn func(local L, i int) error) error {
	_, err := MapLocal(n, newLocal, func(local L, i int) (struct{}, error) {
		return struct{}{}, fn(local, i)
	})
	return err
}

// ForEachLocalContext is ForEachLocal with context-aware scheduling (see
// MapLocalContext).
func ForEachLocalContext[L any](ctx context.Context, n int, newLocal func() L, fn func(ctx context.Context, local L, i int) error) error {
	_, err := MapLocalContext(ctx, n, newLocal, func(ctx context.Context, local L, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, local, i)
	})
	return err
}

// MapLocalContext is the full-featured engine under Map, MapContext and
// MapLocal: context-aware scheduling, per-worker local state, fail-fast
// claiming and the lowest-failing-index error contract. Locals are created
// lazily, one per worker goroutine actually started (the serial path creates
// exactly one).
func MapLocalContext[L, T any](ctx context.Context, n int, newLocal func() L, fn func(ctx context.Context, local L, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	poolRuns.Inc()
	poolBatch.Observe(float64(n))
	var submitted time.Time
	if obs.Enabled() {
		submitted = time.Now()
	}
	w := Workers()
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w <= 1 {
		local := newLocal()
		for i := 0; i < n; i++ {
			if err := guard.CtxErr(ctx); err != nil {
				return nil, err
			}
			if !submitted.IsZero() {
				poolQueueWait.Observe(time.Since(submitted).Seconds())
			}
			poolTasks.Inc()
			v, err := call(ctx, fn, local, i)
			if err != nil {
				return nil, guard.WrapCancellation(err)
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			for {
				if failed.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if !submitted.IsZero() {
					poolQueueWait.Observe(time.Since(submitted).Seconds())
				}
				poolTasks.Inc()
				out[i], errs[i] = call(ctx, fn, local, i)
				if errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, guard.WrapCancellation(err)
		}
	}
	if ctx.Err() != nil && int(next.Load()) < n {
		return nil, guard.CtxErr(ctx)
	}
	return out, nil
}

// ForEach evaluates fn for every index in [0, n) using at most Workers()
// goroutines and returns the error of the lowest failing index, if any.
// Like Map, it recovers job panics and stops scheduling after the first
// failure.
func ForEach(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}

// ForEachContext is ForEach with context-aware scheduling.
func ForEachContext(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapContext(ctx, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
