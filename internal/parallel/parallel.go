// Package parallel is the repository's bounded worker pool: order-preserving
// Map/ForEach over index ranges, built on the standard library only.
//
// Every hot loop of the evaluation pipeline (figure regeneration, design-
// space sweeps, per-layer simulation, JSIM transients) fans out through this
// package, so a single knob — SetWorkers — switches the whole system between
// serial and parallel execution. Results are always assembled by index, and
// the error returned is always the one of the lowest failing index, so
// output is byte-identical regardless of the worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured worker count; 0 means runtime.NumCPU().
var workers atomic.Int64

// SetWorkers sets the maximum number of concurrent workers used by Map and
// ForEach. n <= 0 resets to runtime.NumCPU(). n == 1 forces fully serial,
// in-order execution.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the effective worker count.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// Map evaluates fn for every index in [0, n) using at most Workers()
// goroutines and returns the results in index order. If any call fails, Map
// returns the error of the lowest failing index and a nil slice. All
// scheduled calls run to completion before Map returns.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	w := Workers()
	if w > n {
		w = n
	}
	out := make([]T, n)
	if w <= 1 {
		for i := 0; i < n; i++ {
			v, err := fn(i)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		return out, nil
	}

	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ForEach evaluates fn for every index in [0, n) using at most Workers()
// goroutines and returns the error of the lowest failing index, if any.
func ForEach(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) {
		return struct{}{}, fn(i)
	})
	return err
}
