package scalesim

import (
	"context"
	"testing"
	"testing/quick"

	"supernpu/internal/workload"
)

func TestTPUConfig(t *testing.T) {
	c := TPU()
	if c.PeakMACs() != 256*256*0.7e9 {
		t.Fatalf("TPU peak = %g, want 45.9 TMAC/s", c.PeakMACs())
	}
	if c.Power != 40 {
		t.Fatal("TPU average power must be 40 W (Table III)")
	}
}

// Table II: TPU batch sizes from the 24 MB unified buffer.
func TestTPUBatches(t *testing.T) {
	want := map[string]int{"AlexNet": 22, "VGG16": 3, "ResNet50": 20}
	tol := map[string]int{"AlexNet": 1, "VGG16": 0, "ResNet50": 2}
	for name, b := range want {
		net, _ := workload.ByName(name)
		got := TPU().MaxBatch(net)
		if got < b-tol[name] || got > b+tol[name] {
			t.Errorf("%s TPU batch = %d, want %d±%d", name, got, b, tol[name])
		}
	}
}

func TestTPUEffectivePerformance(t *testing.T) {
	// The TPU runs the CNNs at a healthy but partial utilization: tens of
	// percent for conv-heavy nets, near-zero for depthwise MobileNet.
	for _, net := range workload.All() {
		r, err := Simulate(context.Background(), TPU(), net, 0)
		if err != nil {
			t.Fatal(err)
		}
		if r.PEUtilization <= 0 || r.PEUtilization > 0.85 {
			t.Errorf("%s: TPU utilization = %.1f%% implausible", net.Name, r.PEUtilization*100)
		}
	}
	res, _ := Simulate(context.Background(), TPU(), workload.ResNet50(), 0)
	if res.PEUtilization < 0.2 {
		t.Errorf("ResNet50 on TPU = %.1f%% util, want tens of percent", res.PEUtilization*100)
	}
	mob, _ := Simulate(context.Background(), TPU(), workload.MobileNet(), 0)
	if mob.PEUtilization > 0.05 {
		t.Errorf("MobileNet on TPU = %.1f%% util, want ≪5%% (depthwise-bound)", mob.PEUtilization*100)
	}
}

func TestSimulateValidation(t *testing.T) {
	if _, err := Simulate(context.Background(), TPU(), workload.Network{Name: "x"}, 1); err == nil {
		t.Error("Simulate must reject invalid networks")
	}
	if _, err := Simulate(context.Background(), TPU(), workload.VGG16(), -1); err == nil {
		t.Error("Simulate must reject negative batches")
	}
}

// Property: MAC conservation and report invariants.
func TestTPUInvariantsProperty(t *testing.T) {
	nets := workload.All()
	f := func(nSel, b8 uint8) bool {
		net := nets[int(nSel)%len(nets)]
		batch := 1 + int(b8)%8
		r, err := Simulate(context.Background(), TPU(), net, batch)
		if err != nil {
			return false
		}
		return r.MACs == int64(batch)*net.TotalMACs() &&
			r.TotalCycles == r.ComputeCycles+r.StallCycles &&
			r.PEUtilization > 0 && r.PEUtilization <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 24}); err != nil {
		t.Fatal(err)
	}
}

// Property: stalls only shrink when bandwidth grows.
func TestBandwidthMonotonicityProperty(t *testing.T) {
	net := workload.VGG16()
	f := func(mult uint8) bool {
		lo := TPU()
		hi := TPU()
		hi.Bandwidth *= 1 + float64(mult%8)
		rl, err1 := Simulate(context.Background(), lo, net, 4)
		rh, err2 := Simulate(context.Background(), hi, net, 4)
		if err1 != nil || err2 != nil {
			return false
		}
		return rh.StallCycles <= rl.StallCycles
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
