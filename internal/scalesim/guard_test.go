package scalesim

import (
	"context"
	"errors"
	"testing"

	"supernpu/internal/guard"
	"supernpu/internal/workload"
)

// A pre-canceled context aborts the mapping loop with the guard taxonomy,
// and the canceled attempt is not memoised: a live retry still computes.
func TestSimulateCanceledNotMemoised(t *testing.T) {
	const batch = 7
	net := workload.ResNet50()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Simulate(ctx, TPU(), net, batch); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}

	rep, err := Simulate(context.Background(), TPU(), net, batch)
	if err != nil {
		t.Fatalf("retry after canceled attempt: %v", err)
	}
	if rep.TotalCycles <= 0 {
		t.Fatalf("retry produced an empty report: %+v", rep)
	}
}
