package scalesim

// Layer-grain memoization tests for the CMOS reference simulator: the
// serial mapping loop dedups repeated shapes through the scalesim.layer
// cache, and the report is byte-identical with the cache on and off.

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

func repeatedNet(k int) workload.Network {
	layers := make([]workload.Layer, k)
	for i := range layers {
		layers[i] = workload.Layer{Name: fmt.Sprintf("conv%d", i), Kind: workload.Conv,
			H: 28, W: 28, C: 32, R: 3, S: 3, M: 32, Stride: 1, Pad: 1}
	}
	return workload.Network{Name: fmt.Sprintf("repeat%d", k), Layers: layers}
}

func TestLayerDedupWithinNetwork(t *testing.T) {
	const k = 5
	net := repeatedNet(k)

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	t.Cleanup(simcache.ClearAll)

	rep, err := Simulate(context.Background(), TPU(), net, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := layerCache.Counters()
	if misses != 1 {
		t.Errorf("unique layer walks executed = %d, want 1", misses)
	}
	if hits != k-1 {
		t.Errorf("layer cache hits = %d, want %d", hits, k-1)
	}
	if rep.MACs%int64(k) != 0 {
		t.Errorf("total MACs %d not a multiple of the %d identical layers", rep.MACs, k)
	}
}

func TestLayerGrainOffByteIdentical(t *testing.T) {
	net := repeatedNet(3)
	t.Cleanup(func() {
		simcache.SetLayerGrain(true)
		simcache.ClearAll()
	})

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	on, err := Simulate(context.Background(), TPU(), net, 0)
	if err != nil {
		t.Fatal(err)
	}

	simcache.SetLayerGrain(false)
	simcache.ClearAll()
	off, err := Simulate(context.Background(), TPU(), net, 0)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(on, off) {
		t.Errorf("report differs with layer-grain caching on vs off:\n on %+v\noff %+v", on, off)
	}
}
