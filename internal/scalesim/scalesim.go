// Package scalesim is a cycle-based model of a conventional CMOS
// weight-stationary systolic DNN accelerator — the SCALE-SIM-equivalent the
// paper uses to estimate the TPU core it compares SuperNPU against
// (Section VI-A): a 256×256 PE array at 0.7 GHz with a 24 MB unified SRAM
// buffer, 300 GB/s of HBM bandwidth and 40 W average power.
//
// The mapping loop mirrors the SFQ simulator's, but SRAM removes the
// shift-register mechanics: no repositioning rotations, no inter-buffer
// psum walks — the CMOS design's buffers are random access.
package scalesim

import (
	"context"
	"fmt"
	"math"

	"supernpu/internal/guard"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// cache memoises Simulate by (config, network, batch) fingerprint: the TPU
// reference evaluation repeats for every design row of Fig. 23 and
// Table III. Reports are shared between callers and must be treated as
// read-only.
var cache = simcache.New[*Report]()

// layerCache memoises the per-layer tile walk beneath the whole-simulation
// cache, keyed by (projection, layer shape, batch): repeated shapes within
// a network and across sweep points that hold the projection constant
// share one walk.
var layerCache = simcache.New[layerCost]()

func init() {
	simcache.Register("scalesim", cache)
	simcache.Register("scalesim.layer", layerCache)
}

// Config describes the CMOS accelerator.
type Config struct {
	Name                    string
	ArrayHeight, ArrayWidth int
	Frequency               float64 // Hz
	BufferBytes             int64   // unified on-chip buffer
	Bandwidth               float64 // bytes/s
	Power                   float64 // average chip power (W)
}

// TPU returns the TPU-core configuration of Table I.
func TPU() Config {
	return Config{
		Name:        "TPU",
		ArrayHeight: 256, ArrayWidth: 256,
		Frequency:   0.7e9,
		BufferBytes: 24 << 20,
		Bandwidth:   300e9,
		Power:       40,
	}
}

// PeakMACs is the array's peak MAC rate.
func (c Config) PeakMACs() float64 {
	return float64(c.ArrayHeight*c.ArrayWidth) * c.Frequency
}

// MaxBatch applies the paper's TPU batch rule: the whole batch's largest
// per-layer working set must fit the unified buffer (Table II: AlexNet 22,
// VGG16 3).
func (c Config) MaxBatch(net workload.Network) int {
	return net.MaxBatch(c.BufferBytes)
}

// Report is the simulation outcome.
type Report struct {
	Config  Config
	Network string
	Batch   int

	TotalCycles   int64
	ComputeCycles int64
	// DRAMCycles is the raw transfer time; StallCycles the exposed part
	// after overlapping transfers with computation (double buffering).
	DRAMCycles  int64
	StallCycles int64
	MACs        int64

	Time          float64
	Throughput    float64 // effective MAC/s
	PEUtilization float64
}

// Simulate runs the network at the given batch (0 = MaxBatch). Results are
// memoised by (config, network, batch); repeated calls return one shared
// *Report, which callers must treat as read-only. Validation and batch
// resolution happen inside the memoised computation, so a cache hit costs
// only the key construction and lookup. Cancellation of ctx aborts the
// mapping loop between layers; a canceled computation is evicted from the
// cache, not memoised.
func Simulate(ctx context.Context, cfg Config, net workload.Network, batch int) (*Report, error) {
	if batch < 0 {
		return nil, fmt.Errorf("scalesim: batch %d must be non-negative (0 selects MaxBatch)", batch)
	}
	key := simcache.Fingerprint(cfg, simcache.NetworkKey(net), batch)
	return cache.GetOrCompute(key, func() (*Report, error) {
		if err := net.Validate(); err != nil {
			return nil, err
		}
		if batch == 0 {
			// Re-enter through the cache so the batch-0 entry and the
			// resolved-batch entry share one computed report.
			return Simulate(ctx, cfg, net, cfg.MaxBatch(net))
		}
		return simulate(ctx, cfg, net, batch)
	})
}

// layerCost is one compute layer's cached charge set: the cycle classes
// accumulated before the per-layer stall comparison, plus its MACs.
type layerCost struct {
	Compute, DRAM, MACs int64
}

// simulateLayer charges one compute layer's tile walk. It reads the
// configuration only through its ScaleProj projection and the layer only
// through its shape, which is what makes the layer-grain key complete by
// construction. Every truncation stays per-tile, bit-identical to the
// pre-cache inline loop.
func simulateLayer(p simcache.ScaleProj, s workload.Shape, batch int) layerCost {
	l := s.Layer("")
	h, w := p.ArrayHeight, p.ArrayWidth
	cpb := p.CyclesPerByte
	ef := int64(l.OutH() * l.OutW())
	fits := int64(batch)*l.WorkingSetBytes() <= p.BufferBytes

	type tile struct{ rows, filters, channels int }
	var tiles []tile
	if l.Kind == workload.DepthwiseConv {
		for c := 0; c < l.C; c++ {
			tiles = append(tiles, tile{rows: min(l.R*l.S, h), filters: 1, channels: 1})
		}
	} else {
		rsc := l.R * l.S * l.C
		for rt := 0; rt < (rsc+h-1)/h; rt++ {
			rows := min(h, rsc-rt*h)
			for m := 0; m < l.M; m += w {
				tiles = append(tiles, tile{
					rows: rows, filters: min(w, l.M-m),
					channels: (rows + l.R*l.S - 1) / (l.R * l.S),
				})
			}
		}
	}

	var cost layerCost
	for _, t := range tiles {
		// Streaming compute plus array fill/drain and column loading.
		cost.Compute += int64(batch)*ef + int64(2*t.rows+t.filters)
		// Weight fetch.
		wBytes := int64(t.rows) * int64(t.filters)
		cost.DRAM += int64(float64(wBytes) * cpb)
		// Spilled activations re-fetch per mapping.
		if !fits {
			spill := int64(batch) * int64(l.H*l.W*t.channels)
			cost.DRAM += int64(float64(spill) * cpb)
		}
		cost.MACs += int64(batch) * ef * int64(t.rows) * int64(t.filters)
	}
	return cost
}

// simulateLayerCached serves one layer's charges through the layer-grain
// cache, or directly when layer-grain caching is disabled.
func simulateLayerCached(p simcache.ScaleProj, s workload.Shape, batch int) layerCost {
	if !simcache.LayerGrainEnabled() {
		return simulateLayer(p, s, batch)
	}
	c, _ := layerCache.GetOrCompute(simcache.ScaleLayerKey(p, s, batch),
		func() (layerCost, error) { return simulateLayer(p, s, batch), nil })
	return c
}

// simulate is the uncached mapping loop, polling for cancellation once per
// layer. Per-layer charges come through the layer-grain cache; the
// serial walk dedups repeated shapes automatically (first occurrence
// misses, the rest hit). Input delivery and stall resolution stay per
// site, outside the cached function.
func simulate(ctx context.Context, cfg Config, net workload.Network, batch int) (*Report, error) {
	rep := &Report{Config: cfg, Network: net.Name, Batch: batch}
	cpb := cfg.Frequency / cfg.Bandwidth
	proj := simcache.ScaleProj{
		ArrayHeight: cfg.ArrayHeight, ArrayWidth: cfg.ArrayWidth,
		BufferBytes: cfg.BufferBytes, CyclesPerByte: cpb,
	}

	var watch guard.Watch
	watch.Arm(ctx)
	defer watch.Disarm()
	for i, l := range net.Layers {
		if watch.Canceled() {
			return nil, watch.Err()
		}
		if !l.ComputeLayer() {
			continue
		}
		cost := simulateLayerCached(proj, l.Shape(), batch)
		layerCompute, layerDRAM := cost.Compute, cost.DRAM
		rep.MACs += cost.MACs
		// First layer's inputs arrive from DRAM.
		if i == 0 {
			layerDRAM += int64(float64(int64(batch)*l.IfmapBytes()) * cpb)
		}
		rep.ComputeCycles += layerCompute
		rep.DRAMCycles += layerDRAM
		if layerDRAM > layerCompute {
			rep.StallCycles += layerDRAM - layerCompute
		}
	}

	rep.TotalCycles = rep.ComputeCycles + rep.StallCycles
	rep.Time = float64(rep.TotalCycles) / cfg.Frequency
	rep.Throughput = float64(rep.MACs) / rep.Time
	rep.PEUtilization = rep.Throughput / cfg.PeakMACs()
	for _, v := range [...]float64{rep.Time, rep.Throughput, rep.PEUtilization} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("scalesim: %s/%s/b%d produced a non-finite report: %w",
				cfg.Name, net.Name, batch, guard.ErrNonFinite)
		}
	}
	return rep, nil
}
