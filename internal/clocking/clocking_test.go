package clocking

import (
	"math"
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
)

func lib() *sfq.Library { return sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ) }

func ghz(f float64) float64 { return f / sfq.GHz }

// Fig. 7(c): a DFF shift register runs at ~133 GHz without a feedback loop
// (concurrent-flow + skewing) and ~71 GHz with one (counter-flow).
func TestFig7ShiftRegisterFrequencies(t *testing.T) {
	l := lib()
	dff := l.Gate(sfq.DFF)
	pair := Pair{Src: dff, Dst: dff}

	noFB := ghz(Frequency(pair.CCT(ConcurrentFlowSkewed)))
	withFB := ghz(Frequency(pair.CCT(CounterFlow)))

	if math.Abs(noFB-133) > 4 {
		t.Errorf("SR concurrent-flow frequency = %.1f GHz, want ~133", noFB)
	}
	if math.Abs(withFB-71) > 3 {
		t.Errorf("SR counter-flow frequency = %.1f GHz, want ~71", withFB)
	}
}

// Fig. 7(c): a full adder runs at ~66 GHz concurrent-flow and ~30 GHz
// counter-flow.
func TestFig7FullAdderFrequencies(t *testing.T) {
	l := lib()
	fa := l.Gate(sfq.FA)
	pair := Pair{Src: fa, Dst: fa}

	noFB := ghz(Frequency(pair.CCT(ConcurrentFlowSkewed)))
	withFB := ghz(Frequency(pair.CCT(CounterFlow)))

	if math.Abs(noFB-66) > 2 {
		t.Errorf("FA concurrent-flow frequency = %.1f GHz, want ~66", noFB)
	}
	if math.Abs(withFB-30) > 2 {
		t.Errorf("FA counter-flow frequency = %.1f GHz, want ~30", withFB)
	}
}

func TestCounterFlowAlwaysSlowerThanSkewedConcurrent(t *testing.T) {
	l := lib()
	for _, k := range []sfq.GateKind{sfq.DFF, sfq.AND, sfq.XOR, sfq.FA, sfq.NDRO} {
		g := l.Gate(k)
		p := Pair{Src: g, Dst: g}
		if p.CCT(CounterFlow) <= p.CCT(ConcurrentFlowSkewed) {
			t.Errorf("%s: counter-flow must be slower than skewed concurrent-flow", k)
		}
	}
}

func TestUnskewedConcurrentFlowExposesMismatch(t *testing.T) {
	l := lib()
	dff := l.Gate(sfq.DFF)
	// A long data wire with a short clock wire: the clock pulse must wait.
	long := []sfq.Gate{l.Gate(sfq.JTL), l.Gate(sfq.JTL), l.Gate(sfq.JTL), l.Gate(sfq.JTL), l.Gate(sfq.JTL)}
	p := Pair{Src: dff, Dst: dff, DataWire: long, ClockWire: []sfq.Gate{l.Gate(sfq.JTL)}}
	unskewed := p.CCT(ConcurrentFlow)
	skewed := p.CCT(ConcurrentFlowSkewed)
	if unskewed <= skewed {
		t.Fatalf("unskewed CCT %.2fps must exceed skewed %.2fps",
			unskewed/sfq.Picosecond, skewed/sfq.Picosecond)
	}
	wantDT := p.DataDelay() - p.ClockDelay()
	if got := unskewed - dff.Setup; math.Abs(got-wantDT) > 1e-15 && wantDT > dff.Hold {
		t.Fatalf("unskewed CCT must expose δt = %.2fps, got %.2fps",
			wantDT/sfq.Picosecond, got/sfq.Picosecond)
	}
}

func TestMismatchWireGovernsSkewedPair(t *testing.T) {
	l := lib()
	fa := l.Gate(sfq.FA)
	mm := []sfq.Gate{l.Gate(sfq.Splitter), l.Gate(sfq.Merger), l.Gate(sfq.Merger), l.Gate(sfq.JTL)}
	p := Pair{Src: fa, Dst: fa, MismatchWire: mm}
	// This is the 8-bit MAC critical pair: reconvergent fan-in that skewing
	// cannot compensate. It must land at the paper's 52.6 GHz NPU clock.
	f := ghz(Frequency(p.CCT(ConcurrentFlowSkewed)))
	if math.Abs(f-52.6) > 1.0 {
		t.Fatalf("MAC critical pair frequency = %.2f GHz, want ~52.6", f)
	}
}

func TestPipelineCCTIsWorstPair(t *testing.T) {
	l := lib()
	fast := Pair{Src: l.Gate(sfq.DFF), Dst: l.Gate(sfq.DFF)}
	slow := Pair{Src: l.Gate(sfq.FA), Dst: l.Gate(sfq.FA)}
	got := PipelineCCT([]Pair{fast, slow, fast}, ConcurrentFlowSkewed)
	if got != slow.CCT(ConcurrentFlowSkewed) {
		t.Fatal("pipeline CCT must be the worst pair CCT")
	}
	if PipelineCCT(nil, ConcurrentFlowSkewed) != 0 {
		t.Fatal("empty pipeline must have zero CCT")
	}
}

func TestLoopScheme(t *testing.T) {
	if LoopScheme(true) != CounterFlow {
		t.Fatal("feedback loops require counter-flow clocking")
	}
	if LoopScheme(false) != ConcurrentFlowSkewed {
		t.Fatal("feed-forward circuits use skewed concurrent-flow clocking")
	}
}

func TestFrequencyEdgeCases(t *testing.T) {
	if !math.IsInf(Frequency(0), 1) {
		t.Fatal("zero CCT must map to +Inf frequency")
	}
	if got := Frequency(10 * sfq.Picosecond); math.Abs(got-100*sfq.GHz) > 1 {
		t.Fatalf("1/10ps = %g, want 100 GHz", got)
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		ConcurrentFlow:       "concurrent-flow",
		ConcurrentFlowSkewed: "concurrent-flow+skew",
		CounterFlow:          "counter-flow",
		Scheme(42):           "unknown-scheme",
	} {
		if s.String() != want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(s), s, want)
		}
	}
}

// Property: adding wire cells to the data path never increases frequency
// under any scheme (monotonicity of the timing model).
func TestWireMonotonicityProperty(t *testing.T) {
	l := lib()
	dff := l.Gate(sfq.DFF)
	jtl := l.Gate(sfq.JTL)
	f := func(nWire uint8, schemeSel uint8) bool {
		s := Scheme(int(schemeSel) % 3)
		wire := make([]sfq.Gate, int(nWire)%32)
		for i := range wire {
			wire[i] = jtl
		}
		short := Pair{Src: dff, Dst: dff, MismatchWire: wire}
		longer := Pair{Src: dff, Dst: dff, DataWire: wire, MismatchWire: append([]sfq.Gate{jtl}, wire...)}
		return longer.CCT(s) >= short.CCT(s)-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: CCT is always at least Setup + Hold of the destination gate —
// no clocking scheme can beat the intrinsic timing constraints.
func TestCCTLowerBoundProperty(t *testing.T) {
	l := lib()
	kinds := []sfq.GateKind{sfq.DFF, sfq.AND, sfq.OR, sfq.XOR, sfq.FA, sfq.NDRO, sfq.MUXCell}
	f := func(srcSel, dstSel, schemeSel uint8) bool {
		src := l.Gate(kinds[int(srcSel)%len(kinds)])
		dst := l.Gate(kinds[int(dstSel)%len(kinds)])
		s := Scheme(int(schemeSel) % 3)
		p := Pair{Src: src, Dst: dst}
		return p.CCT(s) >= dst.Setup+dst.Hold-1e-18
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
