// Package clocking implements the SFQ frequency model of Section IV-A2:
// the clock-cycle time of a clocked gate pair,
//
//	CCT = SetupTime + max(HoldTime, δt),   f = 1/CCT      (Eq. 1)
//
// where δt is the difference between data and clock pulse arrival, under the
// two real-world clocking schemes. Concurrent-flow clocking flows the clock
// along with the data and (with clock skewing) hides the data propagation
// delay; counter-flow clocking flows the clock against the data and is the
// only scheme that tolerates feedback loops, at the price of exposing the
// full feed-forward delay in every cycle (Fig. 7).
package clocking

import (
	"errors"
	"fmt"
	"math"

	"supernpu/internal/sfq"
)

// ErrUnknownScheme marks a clocking scheme outside the defined set.
// Boundary code matches it with errors.Is to reject the input.
var ErrUnknownScheme = errors.New("clocking: unknown scheme")

// Scheme selects how the clock pulse is distributed relative to the data.
type Scheme int

const (
	// ConcurrentFlow routes the clock alongside the data without skew
	// tuning: δt = τ_data − τ_clock.
	ConcurrentFlow Scheme = iota
	// ConcurrentFlowSkewed additionally tunes the clock-line length so
	// that only the structurally uncompensatable mismatch of the pair
	// remains (the paper's "clock skewing" frequency-enhancing technique).
	ConcurrentFlowSkewed
	// CounterFlow routes the clock against the data direction. Feedback
	// delay is perfectly hidden but the feed-forward delay is exposed:
	// CCT = Setup + Hold + τ_data + τ_clock.
	CounterFlow
)

// String implements fmt.Stringer.
func (s Scheme) String() string {
	switch s {
	case ConcurrentFlow:
		return "concurrent-flow"
	case ConcurrentFlowSkewed:
		return "concurrent-flow+skew"
	case CounterFlow:
		return "counter-flow"
	default:
		return "unknown-scheme"
	}
}

// Pair is one clocked source→destination gate pair in a unit's structure
// model, the atom of the microarchitecture-level frequency estimation.
type Pair struct {
	// Src is the upstream clocked gate whose output pulse travels to Dst.
	Src sfq.Gate
	// Dst is the downstream clocked gate whose Setup/Hold govern the pair.
	Dst sfq.Gate
	// DataWire lists the unclocked wire cells (JTL, splitter, merger) on
	// the data path between Src and Dst.
	DataWire []sfq.Gate
	// ClockWire lists the unclocked cells on the clock path between the
	// two gates' clock taps. If empty under CounterFlow, the clock path is
	// assumed delay-matched to the data path (JTL chain of equal length).
	ClockWire []sfq.Gate
	// MismatchWire lists the wire cells whose delays remain as data/clock
	// mismatch even after skew tuning — typically a fan-in reconvergence
	// (two inputs of Dst arriving through different depths, served by one
	// clock pulse). Empty means skewing fully matches the pair.
	MismatchWire []sfq.Gate
}

func wireDelay(cells []sfq.Gate) float64 {
	d := 0.0
	for _, c := range cells {
		d += c.Delay
	}
	return d
}

// DataDelay is the full data propagation time τ_data of the pair.
func (p Pair) DataDelay() float64 { return p.Src.Delay + wireDelay(p.DataWire) }

// ClockDelay is the clock propagation time τ_clock of the pair.
func (p Pair) ClockDelay() float64 {
	if len(p.ClockWire) == 0 {
		return p.DataDelay() // delay-matched clock JTL chain
	}
	return wireDelay(p.ClockWire)
}

// Mismatch is the residual data/clock arrival mismatch after skew tuning.
func (p Pair) Mismatch() float64 { return wireDelay(p.MismatchWire) }

// CCT returns the minimum clock cycle time of the pair under scheme s.
// It panics with ErrUnknownScheme on an out-of-range scheme — a programmer
// error, since Scheme is a closed compile-time-known set.
func (p Pair) CCT(s Scheme) float64 {
	switch s {
	case ConcurrentFlowSkewed:
		return p.Dst.Setup + math.Max(p.Dst.Hold, p.Mismatch())
	case ConcurrentFlow:
		dt := p.DataDelay() - p.ClockDelay()
		return p.Dst.Setup + math.Max(p.Dst.Hold, dt)
	case CounterFlow:
		return p.Dst.Setup + p.Dst.Hold + p.DataDelay() + p.ClockDelay()
	default:
		// The sentinel survives the parallel pool's panic recovery, so
		// errors.Is(err, ErrUnknownScheme) works at the service boundary.
		panic(fmt.Errorf("%w %d", ErrUnknownScheme, int(s)))
	}
}

// Frequency converts a cycle time to a clock frequency.
func Frequency(cct float64) float64 {
	if cct <= 0 {
		return math.Inf(1)
	}
	return 1 / cct
}

// PipelineCCT returns the cycle time of a whole pipeline: the maximum pair
// CCT, since one global clock serves every stage (gate-level pipelining,
// Section II-B1). It returns 0 for an empty pipeline.
func PipelineCCT(pairs []Pair, s Scheme) float64 {
	worst := 0.0
	for _, p := range pairs {
		if c := p.CCT(s); c > worst {
			worst = c
		}
	}
	return worst
}

// PipelineFrequency is Frequency(PipelineCCT(...)).
func PipelineFrequency(pairs []Pair, s Scheme) float64 {
	return Frequency(PipelineCCT(pairs, s))
}

// LoopScheme returns the fastest usable scheme for a circuit: circuits with
// a feedback loop cannot hide the loop delay under concurrent-flow clocking
// and must fall back to counter-flow (Section III-B, Fig. 7).
func LoopScheme(hasFeedback bool) Scheme {
	if hasFeedback {
		return CounterFlow
	}
	return ConcurrentFlowSkewed
}
