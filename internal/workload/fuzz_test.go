package workload

import "testing"

// FuzzLayerValidate hardens the layer validator: arbitrary geometry must
// never panic, and any accepted layer must have a consistent positive
// output extent and non-negative accounting.
func FuzzLayerValidate(f *testing.F) {
	f.Add(224, 224, 3, 11, 11, 96, 4, 0, 0)
	f.Add(1, 1, 4096, 1, 1, 1000, 1, 0, 2)
	f.Add(56, 56, 64, 3, 3, 64, 1, 1, 1)
	f.Add(-5, 0, 7, 3, 3, 7, 2, 9, 3)
	f.Fuzz(func(t *testing.T, h, w, c, r, s, m, stride, pad, kind int) {
		l := Layer{
			Name: "fuzz", Kind: Kind(((kind % 4) + 4) % 4),
			H: h % 1024, W: w % 1024, C: c % 8192,
			R: r % 32, S: s % 32, M: m % 8192,
			Stride: stride % 16, Pad: pad % 16,
		}
		if err := l.Validate(); err != nil {
			return
		}
		if l.OutH() <= 0 || l.OutW() <= 0 {
			t.Fatalf("accepted layer has empty output: %+v", l)
		}
		if l.MACs() < 0 || l.IfmapBytes() <= 0 || l.WorkingSetBytes() <= 0 {
			t.Fatalf("accepted layer has negative accounting: %+v", l)
		}
	})
}
