// Package workload describes the six CNN inference workloads of the paper's
// evaluation (AlexNet, Faster R-CNN, GoogLeNet, MobileNet, ResNet-50,
// VGG16) as exact layer shapes, and derives the quantities the simulators
// need: MAC counts, per-layer working sets, the maximum batch size a given
// on-chip buffer capacity supports without extra off-chip traffic
// (Table II), and the duplicated-ifmap-pixel analysis of Fig. 8.
//
// All networks take the paper's standard 224×224×3 input (AlexNet uses the
// conventional 227×227 crop so its stride-4 stem divides evenly). Data is
// 8-bit, matching the NPU datapath.
package workload

import (
	"errors"
	"fmt"
)

// ErrUnknownKind marks a layer kind outside the defined Conv/DepthwiseConv/
// FullyConnected/Pool set. Boundary code (the evaluation service, CLI flag
// parsing) matches it with errors.Is to reject the input instead of
// crashing.
var ErrUnknownKind = errors.New("workload: unknown kind")

// Kind classifies a layer for the mapper.
type Kind int

const (
	// Conv is a standard convolution.
	Conv Kind = iota
	// DepthwiseConv convolves each input channel with its own filter
	// (M filters, one per channel; C is the channel count and M must
	// equal C).
	DepthwiseConv
	// FullyConnected is a matrix–vector layer, treated as a 1×1
	// convolution over a 1×1 spatial extent.
	FullyConnected
	// Pool is a pooling layer: it reshapes activations but performs no
	// MACs on the NPU datapath.
	Pool
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Conv:
		return "conv"
	case DepthwiseConv:
		return "dwconv"
	case FullyConnected:
		return "fc"
	case Pool:
		return "pool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Layer is one network layer in NPU terms.
type Layer struct {
	Name   string
	Kind   Kind
	H, W   int // ifmap spatial extent
	C      int // ifmap channels
	R, S   int // filter spatial extent
	M      int // number of filters (output channels)
	Stride int
	Pad    int
}

// Validate reports a shape error, if any.
func (l Layer) Validate() error {
	if l.Kind < Conv || l.Kind > Pool {
		return fmt.Errorf("%w %q in layer %q", ErrUnknownKind, l.Kind, l.Name)
	}
	if l.H <= 0 || l.W <= 0 || l.C <= 0 || l.R <= 0 || l.S <= 0 || l.M <= 0 || l.Stride <= 0 || l.Pad < 0 {
		return fmt.Errorf("workload: layer %q has non-positive dimensions: %+v", l.Name, l)
	}
	if l.Kind == DepthwiseConv && l.M != l.C {
		return fmt.Errorf("workload: depthwise layer %q must have M == C", l.Name)
	}
	if l.OutH() <= 0 || l.OutW() <= 0 {
		return fmt.Errorf("workload: layer %q has empty output", l.Name)
	}
	return nil
}

// OutH returns the output height E.
func (l Layer) OutH() int { return (l.H+2*l.Pad-l.R)/l.Stride + 1 }

// OutW returns the output width F.
func (l Layer) OutW() int { return (l.W+2*l.Pad-l.S)/l.Stride + 1 }

// MACs returns the multiply-accumulate count of the layer for one input.
// It panics with ErrUnknownKind on an unvalidated layer kind (call
// Validate first; the sentinel survives the pool's panic recovery).
func (l Layer) MACs() int64 {
	e, f := int64(l.OutH()), int64(l.OutW())
	switch l.Kind {
	case Conv, FullyConnected:
		return e * f * int64(l.M) * int64(l.R) * int64(l.S) * int64(l.C)
	case DepthwiseConv:
		return e * f * int64(l.C) * int64(l.R) * int64(l.S)
	case Pool:
		return 0
	default:
		// Panicking with the sentinel keeps errors.Is working across the
		// parallel pool's panic-recovery boundary.
		panic(fmt.Errorf("%w %q in layer %q", ErrUnknownKind, l.Kind, l.Name))
	}
}

// IfmapBytes is the layer's input activation size for one input (8-bit).
func (l Layer) IfmapBytes() int64 { return int64(l.H) * int64(l.W) * int64(l.C) }

// OfmapBytes is the layer's output activation size for one input (8-bit).
func (l Layer) OfmapBytes() int64 {
	return int64(l.OutH()) * int64(l.OutW()) * int64(l.M)
}

// WeightBytes is the layer's weight footprint (8-bit).
func (l Layer) WeightBytes() int64 {
	switch l.Kind {
	case DepthwiseConv:
		return int64(l.R) * int64(l.S) * int64(l.C)
	case Pool:
		return 0
	default:
		return int64(l.R) * int64(l.S) * int64(l.C) * int64(l.M)
	}
}

// WorkingSetBytes is the activation working set of the layer for one input:
// input plus output must be resident to avoid extra off-chip traffic.
func (l Layer) WorkingSetBytes() int64 { return l.IfmapBytes() + l.OfmapBytes() }

// ComputeLayers reports whether the layer performs MACs on the NPU.
func (l Layer) ComputeLayer() bool { return l.Kind != Pool }

// Shape is a Layer stripped of its display name: exactly the fields the
// cycle models read. Two layers with equal Shapes are indistinguishable to
// the simulators, which is what makes shape-keyed memoisation and
// within-network dedup sound. The struct is comparable, so it keys maps
// directly; keep it in step with Layer.
type Shape struct {
	Kind   Kind
	H, W   int
	C      int
	R, S   int
	M      int
	Stride int
	Pad    int
}

// Shape projects the layer down to its simulation-relevant shape.
func (l Layer) Shape() Shape {
	return Shape{Kind: l.Kind, H: l.H, W: l.W, C: l.C,
		R: l.R, S: l.S, M: l.M, Stride: l.Stride, Pad: l.Pad}
}

// Layer rehydrates the shape into a Layer carrying the given display name.
// Simulating s.Layer("") yields the same numbers as simulating any layer
// of shape s, because the cycle models never read Name.
func (s Shape) Layer(name string) Layer {
	return Layer{Name: name, Kind: s.Kind, H: s.H, W: s.W, C: s.C,
		R: s.R, S: s.S, M: s.M, Stride: s.Stride, Pad: s.Pad}
}

// Network is a named sequence of layers.
type Network struct {
	Name   string
	Layers []Layer
}

// Validate checks every layer's shape and the network's dataflow
// consistency: each layer's input spatial extent must be producible by an
// earlier layer (or be the network entry). Channel counts are not chained
// strictly because branching topologies (Inception modules, RPN heads)
// concatenate several branch outputs.
func (n Network) Validate() error {
	if len(n.Layers) == 0 {
		return fmt.Errorf("workload: network %q has no layers", n.Name)
	}
	producible := map[[2]int]bool{
		{n.Layers[0].H, n.Layers[0].W}: true,
	}
	for i, l := range n.Layers {
		if err := l.Validate(); err != nil {
			return err
		}
		if i > 0 && l.Kind != FullyConnected && !producible[[2]int{l.H, l.W}] {
			return fmt.Errorf("workload: %s/%s: no earlier layer produces a %dx%d activation",
				n.Name, l.Name, l.H, l.W)
		}
		producible[[2]int{l.OutH(), l.OutW()}] = true
	}
	return nil
}

// ComputeLayers returns the layers that perform MACs.
func (n Network) ComputeLayers() []Layer {
	var out []Layer
	for _, l := range n.Layers {
		if l.ComputeLayer() {
			out = append(out, l)
		}
	}
	return out
}

// TotalMACs is the network's MAC count for one input.
func (n Network) TotalMACs() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.MACs()
	}
	return t
}

// TotalWeightBytes is the network's total weight footprint.
func (n Network) TotalWeightBytes() int64 {
	var t int64
	for _, l := range n.Layers {
		t += l.WeightBytes()
	}
	return t
}

// MaxWorkingSetBytes is the largest per-input activation working set across
// layers — the quantity that bounds the on-chip batch size.
func (n Network) MaxWorkingSetBytes() int64 {
	var m int64
	for _, l := range n.Layers {
		if ws := l.WorkingSetBytes(); ws > m {
			m = ws
		}
	}
	return m
}

// MaxBatch returns the largest batch the given activation buffer capacity
// holds without additional off-chip memory access: every layer's in+out
// activations for the whole batch must fit (the paper's batch-setup rule,
// Table II: e.g. AlexNet's largest layer is 1.05 MB, so a 24 MB buffer
// holds batch 22).
func (n Network) MaxBatch(capacityBytes int64) int {
	ws := n.MaxWorkingSetBytes()
	if ws == 0 {
		return 0
	}
	b := int(capacityBytes / ws)
	if b < 1 {
		return 1 // a single input always runs; it just spills off-chip
	}
	return b
}

// DuplicatedPixelRatio reproduces the Fig. 8 analysis: the fraction of
// ifmap data that is duplicated if every (naive) ifmap buffer row holds all
// pixels its PE-array row's weight needs. Each of the R·S weight positions
// of a filter needs E·F pixels, but only H·W·C of them are unique — the
// rest is weight-sharing duplication.
func (n Network) DuplicatedPixelRatio() float64 {
	var unique, total float64
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv, DepthwiseConv:
			if l.R*l.S == 1 {
				// 1×1 convolutions have no sliding-window overlap and
				// therefore no weight-sharing duplication.
				continue
			}
			e, f := float64(l.OutH()), float64(l.OutW())
			rows := float64(l.R * l.S) // per channel
			total += rows * e * f * float64(l.C)
			unique += float64(l.H * l.W * l.C)
		default:
			// FC layers read each input exactly once per buffer row.
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - unique/total
}
