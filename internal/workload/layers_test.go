package workload

import "testing"

// Per-layer golden regression: VGG16's published layer shapes and MAC
// counts (Simonyan & Zisserman, configuration D). Any change to the layer
// tables that shifts a layer's geometry breaks this test.
func TestVGG16PerLayerGolden(t *testing.T) {
	want := []struct {
		name  string
		outHW int
		outC  int
		mmacs int64 // MACs in millions
	}{
		{"conv1_1", 224, 64, 86},
		{"conv1_2", 224, 64, 1849},
		{"conv2_1", 112, 128, 924},
		{"conv2_2", 112, 128, 1849},
		{"conv3_1", 56, 256, 924},
		{"conv3_2", 56, 256, 1849},
		{"conv3_3", 56, 256, 1849},
		{"conv4_1", 28, 512, 924},
		{"conv4_2", 28, 512, 1849},
		{"conv4_3", 28, 512, 1849},
		{"conv5_1", 14, 512, 462},
		{"conv5_2", 14, 512, 462},
		{"conv5_3", 14, 512, 462},
		{"fc6", 1, 4096, 102},
		{"fc7", 1, 4096, 16},
		{"fc8", 1, 1000, 4},
	}
	net := VGG16()
	got := net.ComputeLayers()
	if len(got) != len(want) {
		t.Fatalf("VGG16 has %d compute layers, want %d", len(got), len(want))
	}
	for i, w := range want {
		l := got[i]
		if l.Name != w.name {
			t.Fatalf("layer %d = %q, want %q", i, l.Name, w.name)
		}
		if l.OutH() != w.outHW || l.M != w.outC {
			t.Errorf("%s: output %dx%dx%d, want %dx%dx%d",
				w.name, l.OutH(), l.OutW(), l.M, w.outHW, w.outHW, w.outC)
		}
		if got := l.MACs() / 1e6; got != w.mmacs {
			t.Errorf("%s: %d MMACs, want %d", w.name, got, w.mmacs)
		}
	}
}

// MobileNet's published totals: depthwise layers are ~3% of the MACs but
// 13 of the 27 compute layers — the imbalance behind its NPU behaviour.
func TestMobileNetDepthwiseShare(t *testing.T) {
	net := MobileNet()
	var dw, total int64
	for _, l := range net.Layers {
		total += l.MACs()
		if l.Kind == DepthwiseConv {
			dw += l.MACs()
		}
	}
	share := float64(dw) / float64(total)
	if share < 0.02 || share > 0.08 {
		t.Fatalf("depthwise MAC share = %.1f%%, want ~3%%", share*100)
	}
}

// ResNet50's bottleneck structure: 53 convolutions (1 stem + 16×3
// bottleneck + 4 projections) plus the classifier.
func TestResNet50Structure(t *testing.T) {
	net := ResNet50()
	convs, fcs, pools := 0, 0, 0
	for _, l := range net.Layers {
		switch l.Kind {
		case Conv:
			convs++
		case FullyConnected:
			fcs++
		case Pool:
			pools++
		}
	}
	if convs != 53 {
		t.Errorf("ResNet50 conv layers = %d, want 53", convs)
	}
	if fcs != 1 || pools != 2 {
		t.Errorf("ResNet50 fc/pool = %d/%d, want 1/2 (stem maxpool + avgpool)", fcs, pools)
	}
	// Final feature map is 7×7×2048.
	var last Layer
	for _, l := range net.Layers {
		if l.Kind == Conv {
			last = l
		}
	}
	if last.OutH() != 7 || last.M != 2048 {
		t.Errorf("final conv output %dx%dx%d, want 7x7x2048", last.OutH(), last.OutW(), last.M)
	}
}

// GoogLeNet inception modules: output channel sums match the published
// table (3a → 256, 4a → 512, 5b → 1024).
func TestGoogLeNetInceptionChannels(t *testing.T) {
	net := GoogLeNet()
	sums := map[string]int{}
	for _, l := range net.Layers {
		if l.Kind != Conv {
			continue
		}
		for _, mod := range []string{"3a", "3b", "4a", "4e", "5b"} {
			if len(l.Name) > len(mod) && l.Name[:len(mod)+1] == mod+"/" {
				switch l.Name[len(mod)+1:] {
				case "1x1", "3x3", "5x5", "pool_proj":
					sums[mod] += l.M
				}
			}
		}
	}
	want := map[string]int{"3a": 256, "3b": 480, "4a": 512, "4e": 832, "5b": 1024}
	for mod, m := range want {
		if sums[mod] != m {
			t.Errorf("inception %s output channels = %d, want %d", mod, sums[mod], m)
		}
	}
}
