package workload

import "fmt"

// The six CNN workloads of the paper's evaluation (Section V/VI). Shapes
// are the conventional published architectures; AlexNet follows the paper's
// variant whose second layer is the largest working set (≈1.05 MB per
// input, giving the TPU's batch of 22 in a 24 MB buffer).

// conv is a Layer literal helper.
func conv(name string, h, w, c, r, s, m, stride, pad int) Layer {
	return Layer{Name: name, Kind: Conv, H: h, W: w, C: c, R: r, S: s, M: m, Stride: stride, Pad: pad}
}

func dwconv(name string, h, w, c, r, s, stride, pad int) Layer {
	return Layer{Name: name, Kind: DepthwiseConv, H: h, W: w, C: c, R: r, S: s, M: c, Stride: stride, Pad: pad}
}

func fc(name string, in, out int) Layer {
	return Layer{Name: name, Kind: FullyConnected, H: 1, W: 1, C: in, R: 1, S: 1, M: out, Stride: 1}
}

func pool(name string, h, w, c, r, stride, pad int) Layer {
	return Layer{Name: name, Kind: Pool, H: h, W: w, C: c, R: r, S: r, M: c, Stride: stride, Pad: pad}
}

// AlexNet returns the 8-layer AlexNet (Krizhevsky et al.). The stem keeps
// conv2 at full 55×55 resolution, making it the largest layer (≈1.05 MB
// in+out per input), matching the paper's Table II batch arithmetic.
func AlexNet() Network {
	return Network{Name: "AlexNet", Layers: []Layer{
		conv("conv1", 227, 227, 3, 11, 11, 96, 4, 0),
		conv("conv2", 55, 55, 96, 5, 5, 256, 1, 2),
		pool("pool2", 55, 55, 256, 3, 2, 0),
		conv("conv3", 27, 27, 256, 3, 3, 384, 1, 1),
		conv("conv4", 27, 27, 384, 3, 3, 384, 1, 1),
		conv("conv5", 27, 27, 384, 3, 3, 256, 1, 1),
		pool("pool5", 27, 27, 256, 3, 2, 0),
		pool("pool6", 13, 13, 256, 3, 2, 0),
		fc("fc6", 6*6*256, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	}}
}

// VGG16 returns the 16-layer VGG-D configuration (Simonyan & Zisserman).
func VGG16() Network {
	return Network{Name: "VGG16", Layers: vggConvStack(append([]Layer{},
		fc("fc6", 7*7*512, 4096),
		fc("fc7", 4096, 4096),
		fc("fc8", 4096, 1000),
	)...)}
}

// vggConvStack builds the 13-conv VGG16 backbone followed by tail.
func vggConvStack(tail ...Layer) []Layer {
	layers := []Layer{
		conv("conv1_1", 224, 224, 3, 3, 3, 64, 1, 1),
		conv("conv1_2", 224, 224, 64, 3, 3, 64, 1, 1),
		pool("pool1", 224, 224, 64, 2, 2, 0),
		conv("conv2_1", 112, 112, 64, 3, 3, 128, 1, 1),
		conv("conv2_2", 112, 112, 128, 3, 3, 128, 1, 1),
		pool("pool2", 112, 112, 128, 2, 2, 0),
		conv("conv3_1", 56, 56, 128, 3, 3, 256, 1, 1),
		conv("conv3_2", 56, 56, 256, 3, 3, 256, 1, 1),
		conv("conv3_3", 56, 56, 256, 3, 3, 256, 1, 1),
		pool("pool3", 56, 56, 256, 2, 2, 0),
		conv("conv4_1", 28, 28, 256, 3, 3, 512, 1, 1),
		conv("conv4_2", 28, 28, 512, 3, 3, 512, 1, 1),
		conv("conv4_3", 28, 28, 512, 3, 3, 512, 1, 1),
		pool("pool4", 28, 28, 512, 2, 2, 0),
		conv("conv5_1", 14, 14, 512, 3, 3, 512, 1, 1),
		conv("conv5_2", 14, 14, 512, 3, 3, 512, 1, 1),
		conv("conv5_3", 14, 14, 512, 3, 3, 512, 1, 1),
		pool("pool5", 14, 14, 512, 2, 2, 0),
	}
	return append(layers, tail...)
}

// ResNet50 returns the 50-layer residual network (He et al.), modelled as
// its bottleneck convolution chain; the shortcut additions contribute no
// MACs to the systolic datapath.
func ResNet50() Network {
	layers := []Layer{
		conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3),
		pool("pool1", 112, 112, 64, 3, 2, 1),
	}
	stage := func(name string, h, cin, mid, out, blocks int, downsample bool) {
		c := cin
		for b := 0; b < blocks; b++ {
			s := 1
			hin := h
			if b == 0 && downsample {
				s = 2
				hin = 2 * h
			}
			if b == 0 {
				// Projection shortcut matching the block's output shape.
				layers = append(layers,
					conv(fmt.Sprintf("%s_proj", name), hin, hin, c, 1, 1, out, s, 0))
			}
			layers = append(layers,
				conv(fmt.Sprintf("%s_%d_a", name, b+1), hin, hin, c, 1, 1, mid, s, 0),
				conv(fmt.Sprintf("%s_%d_b", name, b+1), h, h, mid, 3, 3, mid, 1, 1),
				conv(fmt.Sprintf("%s_%d_c", name, b+1), h, h, mid, 1, 1, out, 1, 0),
			)
			c = out
		}
	}
	stage("conv2", 56, 64, 64, 256, 3, false)
	stage("conv3", 28, 256, 128, 512, 4, true)
	stage("conv4", 14, 512, 256, 1024, 6, true)
	stage("conv5", 7, 1024, 512, 2048, 3, true)
	layers = append(layers,
		pool("avgpool", 7, 7, 2048, 7, 1, 0),
		fc("fc", 2048, 1000),
	)
	return Network{Name: "ResNet50", Layers: layers}
}

// GoogLeNet returns the 22-layer Inception-v1 network (Szegedy et al.).
// Inception branches all read the module input, so the layer list is not a
// strict chain; Validate handles the branching shapes.
func GoogLeNet() Network {
	var layers []Layer
	inception := func(name string, h, cin, c1, c3r, c3, c5r, c5, pp int) {
		layers = append(layers,
			conv(name+"/1x1", h, h, cin, 1, 1, c1, 1, 0),
			conv(name+"/3x3_reduce", h, h, cin, 1, 1, c3r, 1, 0),
			conv(name+"/3x3", h, h, c3r, 3, 3, c3, 1, 1),
			conv(name+"/5x5_reduce", h, h, cin, 1, 1, c5r, 1, 0),
			conv(name+"/5x5", h, h, c5r, 5, 5, c5, 1, 2),
			conv(name+"/pool_proj", h, h, cin, 1, 1, pp, 1, 0),
		)
	}
	layers = append(layers,
		conv("conv1", 224, 224, 3, 7, 7, 64, 2, 3),
		pool("pool1", 112, 112, 64, 3, 2, 1),
		conv("conv2_reduce", 56, 56, 64, 1, 1, 64, 1, 0),
		conv("conv2", 56, 56, 64, 3, 3, 192, 1, 1),
		pool("pool2", 56, 56, 192, 3, 2, 1),
	)
	inception("3a", 28, 192, 64, 96, 128, 16, 32, 32)
	inception("3b", 28, 256, 128, 128, 192, 32, 96, 64)
	layers = append(layers, pool("pool3", 28, 28, 480, 3, 2, 1))
	inception("4a", 14, 480, 192, 96, 208, 16, 48, 64)
	inception("4b", 14, 512, 160, 112, 224, 24, 64, 64)
	inception("4c", 14, 512, 128, 128, 256, 24, 64, 64)
	inception("4d", 14, 512, 112, 144, 288, 32, 64, 64)
	inception("4e", 14, 528, 256, 160, 320, 32, 128, 128)
	layers = append(layers, pool("pool4", 14, 14, 832, 3, 2, 1))
	inception("5a", 7, 832, 256, 160, 320, 32, 128, 128)
	inception("5b", 7, 832, 384, 192, 384, 48, 128, 128)
	layers = append(layers,
		pool("avgpool", 7, 7, 1024, 7, 1, 0),
		fc("fc", 1024, 1000),
	)
	return Network{Name: "GoogLeNet", Layers: layers}
}

// MobileNet returns MobileNet-v1 (Howard et al.): a stem convolution and 13
// depthwise-separable pairs. Its small filter counts (< 64 in early layers)
// make it the workload that benefits most from SuperNPU's narrow PE array.
func MobileNet() Network {
	layers := []Layer{conv("conv1", 224, 224, 3, 3, 3, 32, 2, 1)}
	h, c := 112, 32
	sep := func(i, stride, out int) {
		layers = append(layers, dwconv(fmt.Sprintf("dw%d", i), h, h, c, 3, 3, stride, 1))
		if stride == 2 {
			h /= 2
		}
		layers = append(layers, conv(fmt.Sprintf("pw%d", i), h, h, c, 1, 1, out, 1, 0))
		c = out
	}
	sep(1, 1, 64)
	sep(2, 2, 128)
	sep(3, 1, 128)
	sep(4, 2, 256)
	sep(5, 1, 256)
	sep(6, 2, 512)
	for i := 7; i <= 11; i++ {
		sep(i, 1, 512)
	}
	sep(12, 2, 1024)
	sep(13, 1, 1024)
	layers = append(layers,
		pool("avgpool", 7, 7, 1024, 7, 1, 0),
		fc("fc", 1024, 1000),
	)
	return Network{Name: "MobileNet", Layers: layers}
}

// FasterRCNN returns the Faster R-CNN detector (Ren et al.) with its VGG16
// backbone at the paper's 224×224 input, the region-proposal network, and
// the detection head; the proposal/ROI-pooling plumbing contributes no MACs.
func FasterRCNN() Network {
	layers := vggConvStack() // backbone up to conv5_3 + pool5
	// Region proposal network on the 14×14×512 feature map.
	layers = append(layers,
		conv("rpn/conv", 14, 14, 512, 3, 3, 512, 1, 1),
		conv("rpn/cls", 14, 14, 512, 1, 1, 18, 1, 0),
		conv("rpn/bbox", 14, 14, 512, 1, 1, 36, 1, 0),
		// Detection head over the pooled 7×7×512 ROI features.
		fc("head/fc6", 7*7*512, 4096),
		fc("head/fc7", 4096, 4096),
		fc("head/cls", 4096, 21),
		fc("head/bbox", 4096, 84),
	)
	return Network{Name: "FasterRCNN", Layers: layers}
}

// All returns the paper's six evaluation workloads in Fig. 23 order.
func All() []Network {
	return []Network{
		AlexNet(), FasterRCNN(), GoogLeNet(), MobileNet(), ResNet50(), VGG16(),
	}
}

// ByName returns the named workload, or an error listing valid names.
func ByName(name string) (Network, error) {
	for _, n := range All() {
		if n.Name == name {
			return n, nil
		}
	}
	var names []string
	for _, n := range All() {
		names = append(names, n.Name)
	}
	return Network{}, fmt.Errorf("workload: unknown network %q (have %v)", name, names)
}
