package workload

import (
	"testing"
	"testing/quick"
)

const mb = 1 << 20

func TestAllNetworksValidate(t *testing.T) {
	for _, n := range All() {
		if err := n.Validate(); err != nil {
			t.Errorf("%s: %v", n.Name, err)
		}
	}
}

func TestAllReturnsSixWorkloadsInFig23Order(t *testing.T) {
	want := []string{"AlexNet", "FasterRCNN", "GoogLeNet", "MobileNet", "ResNet50", "VGG16"}
	nets := All()
	if len(nets) != len(want) {
		t.Fatalf("got %d workloads, want %d", len(nets), len(want))
	}
	for i, n := range nets {
		if n.Name != want[i] {
			t.Errorf("workload %d = %s, want %s", i, n.Name, want[i])
		}
	}
}

func TestByName(t *testing.T) {
	n, err := ByName("VGG16")
	if err != nil || n.Name != "VGG16" {
		t.Fatalf("ByName(VGG16) = %v, %v", n.Name, err)
	}
	if _, err := ByName("LeNet"); err == nil {
		t.Fatal("ByName must reject unknown networks")
	}
}

// Published MAC counts anchor the layer tables: VGG16 ≈ 15.5 G, ResNet-50
// ≈ 3.9 G, GoogLeNet ≈ 1.5 G, MobileNet ≈ 0.57 G multiply-adds per image.
func TestPublishedMACCounts(t *testing.T) {
	check := func(name string, wantG, tol float64) {
		t.Helper()
		n, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		got := float64(n.TotalMACs()) / 1e9
		if got < wantG*(1-tol) || got > wantG*(1+tol) {
			t.Errorf("%s MACs = %.2f G, want %.2f G ±%.0f%%", name, got, wantG, tol*100)
		}
	}
	check("VGG16", 15.5, 0.05)
	check("ResNet50", 3.9, 0.10)
	check("GoogLeNet", 1.5, 0.15)
	check("MobileNet", 0.57, 0.10)
	// Faster R-CNN adds the RPN and head on top of the VGG16 backbone.
	frcnn, _ := ByName("FasterRCNN")
	vgg, _ := ByName("VGG16")
	if frcnn.TotalMACs() <= vgg.TotalMACs()-124e6 { // backbone minus VGG fc layers
		t.Error("FasterRCNN must be at least as heavy as the VGG16 backbone")
	}
}

func TestLayerGeometry(t *testing.T) {
	l := conv("x", 224, 224, 3, 7, 7, 64, 2, 3)
	if l.OutH() != 112 || l.OutW() != 112 {
		t.Fatalf("7x7/2 pad3 on 224 → %dx%d, want 112x112", l.OutH(), l.OutW())
	}
	if l.MACs() != 112*112*64*7*7*3 {
		t.Fatalf("conv MACs wrong: %d", l.MACs())
	}
	p := pool("p", 112, 112, 64, 3, 2, 1)
	if p.OutH() != 56 || p.MACs() != 0 || p.WeightBytes() != 0 {
		t.Fatal("pool layers must halve the extent and contribute no MACs/weights")
	}
	d := dwconv("d", 112, 112, 32, 3, 3, 1, 1)
	if d.MACs() != 112*112*32*9 {
		t.Fatalf("depthwise MACs wrong: %d", d.MACs())
	}
	if d.WeightBytes() != 9*32 {
		t.Fatalf("depthwise weights wrong: %d", d.WeightBytes())
	}
	f := fc("f", 4096, 1000)
	if f.MACs() != 4096*1000 || f.WorkingSetBytes() != 4096+1000 {
		t.Fatal("fc layer accounting wrong")
	}
}

func TestLayerValidation(t *testing.T) {
	bad := []Layer{
		{Name: "neg", Kind: Conv, H: -1, W: 4, C: 1, R: 1, S: 1, M: 1, Stride: 1},
		{Name: "dwMismatch", Kind: DepthwiseConv, H: 8, W: 8, C: 4, R: 3, S: 3, M: 8, Stride: 1, Pad: 1},
		{Name: "empty", Kind: Conv, H: 2, W: 2, C: 1, R: 5, S: 5, M: 1, Stride: 1, Pad: 0},
	}
	for _, l := range bad {
		if l.Validate() == nil {
			t.Errorf("Validate must reject %s", l.Name)
		}
	}
	if (Network{Name: "empty"}).Validate() == nil {
		t.Error("empty network must not validate")
	}
	broken := Network{Name: "b", Layers: []Layer{
		conv("a", 8, 8, 1, 3, 3, 4, 1, 1),
		conv("b", 99, 99, 4, 3, 3, 4, 1, 1), // nothing produces 99×99
	}}
	if broken.Validate() == nil {
		t.Error("unproducible activation extents must not validate")
	}
}

// Table II arithmetic: AlexNet's largest layer is ≈1.05 MB in+out, so the
// TPU's 24 MB buffer holds a batch of 22; VGG16's is ≈6.1 MB → batch 3 on
// 24 MB and 7 on SuperNPU's 48 MB.
func TestTable2BatchArithmetic(t *testing.T) {
	alex, _ := ByName("AlexNet")
	ws := float64(alex.MaxWorkingSetBytes()) / mb
	if ws < 0.95 || ws > 1.15 {
		t.Errorf("AlexNet max working set = %.2f MB, want ≈1.05 MB", ws)
	}
	if got := alex.MaxBatch(24 * mb); got < 21 || got > 24 {
		t.Errorf("AlexNet batch on 24 MB = %d, want ≈22", got)
	}
	vgg, _ := ByName("VGG16")
	if got := vgg.MaxBatch(24 * mb); got != 3 {
		t.Errorf("VGG16 batch on 24 MB = %d, want 3", got)
	}
	if got := vgg.MaxBatch(48 * mb); got != 7 {
		t.Errorf("VGG16 batch on 48 MB = %d, want 7", got)
	}
	// A tiny buffer still admits a single (spilling) batch.
	if got := vgg.MaxBatch(1 * mb); got != 1 {
		t.Errorf("MaxBatch must floor at 1, got %d", got)
	}
}

// Fig. 8: over 90% of naively-buffered ifmap pixels are duplicates for
// AlexNet, ResNet50 and VGG16.
func TestFig8DuplicatedPixels(t *testing.T) {
	for _, name := range []string{"AlexNet", "ResNet50", "VGG16"} {
		n, _ := ByName(name)
		r := n.DuplicatedPixelRatio()
		if r < 0.85 || r >= 1 {
			t.Errorf("%s duplicated-pixel ratio = %.1f%%, want ≳ 85%%", name, r*100)
		}
	}
	// An all-FC network has no weight-sharing duplication.
	mlp := Network{Name: "mlp", Layers: []Layer{fc("a", 64, 64)}}
	if mlp.DuplicatedPixelRatio() != 0 {
		t.Error("FC-only network must have zero duplication ratio")
	}
}

func TestMobileNetNarrowFilters(t *testing.T) {
	// The property the paper exploits: MobileNet's depthwise layers have
	// effective filter counts below 64, so a 64-wide PE array loses
	// nothing (Section VI-B).
	n, _ := ByName("MobileNet")
	dw := 0
	for _, l := range n.Layers {
		if l.Kind == DepthwiseConv {
			dw++
		}
	}
	if dw != 13 {
		t.Fatalf("MobileNet must have 13 depthwise layers, got %d", dw)
	}
}

func TestComputeLayersExcludePooling(t *testing.T) {
	n, _ := ByName("VGG16")
	for _, l := range n.ComputeLayers() {
		if l.Kind == Pool {
			t.Fatal("ComputeLayers must exclude pooling")
		}
	}
	if len(n.ComputeLayers()) != 16 {
		t.Fatalf("VGG16 has 16 compute layers (13 conv + 3 fc), got %d", len(n.ComputeLayers()))
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Conv: "conv", DepthwiseConv: "dwconv", FullyConnected: "fc", Pool: "pool", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind.String() = %q, want %q", k.String(), want)
		}
	}
}

// Property: MaxBatch is monotone in capacity and never below 1.
func TestMaxBatchMonotoneProperty(t *testing.T) {
	vgg, _ := ByName("VGG16")
	f := func(a, b uint32) bool {
		ca, cb := int64(a)+1, int64(b)+1
		if ca > cb {
			ca, cb = cb, ca
		}
		ba, bb := vgg.MaxBatch(ca), vgg.MaxBatch(cb)
		return ba >= 1 && bb >= ba
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: layer accounting identities — MACs of a conv layer equal
// OfmapBytes × R·S·C, and working set is input plus output.
func TestLayerAccountingProperty(t *testing.T) {
	f := func(h8, c8, r8, m8 uint8) bool {
		h := 4 + int(h8)%60
		c := 1 + int(c8)%64
		r := 1 + 2*(int(r8)%3) // 1, 3, 5
		m := 1 + int(m8)%64
		l := conv("p", h, h, c, r, r, m, 1, r/2)
		okMAC := l.MACs() == l.OfmapBytes()*int64(r)*int64(r)*int64(c)
		okWS := l.WorkingSetBytes() == l.IfmapBytes()+l.OfmapBytes()
		return okMAC && okWS
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
