package benchparse

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	tests := []struct {
		name     string
		line     string
		wantName string
		want     Result
		wantOK   bool
	}{
		{
			name:     "full benchmem line",
			line:     "BenchmarkRunAll-8   100   5481294 ns/op   774080 B/op   6016 allocs/op",
			wantName: "BenchmarkRunAll",
			want:     Result{NsPerOp: 5481294, BytesPerOp: 774080, AllocsPerOp: 6016},
			wantOK:   true,
		},
		{
			name:     "missing allocs and bytes columns",
			line:     "BenchmarkSolver-4   2000   81234 ns/op",
			wantName: "BenchmarkSolver",
			want:     Result{NsPerOp: 81234, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:     "no GOMAXPROCS suffix",
			line:     "BenchmarkEstimate   500   220000 ns/op",
			wantName: "BenchmarkEstimate",
			want:     Result{NsPerOp: 220000, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:     "non-numeric suffix is kept",
			line:     "BenchmarkSweep-wide   10   9e6 ns/op",
			wantName: "BenchmarkSweep-wide",
			want:     Result{NsPerOp: 9e6, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:   "fractional ns with sub-benchmark path",
			line:   "BenchmarkCache/hit-16   1000000000   0.5 ns/op   0 B/op   0 allocs/op",
			want:   Result{NsPerOp: 0.5, BytesPerOp: 0, AllocsPerOp: 0},
			wantOK: true, wantName: "BenchmarkCache/hit",
		},
		{name: "header line", line: "goos: linux"},
		{name: "ok trailer", line: "ok  	supernpu/internal/jsim	4.2s"},
		{name: "pass line", line: "PASS"},
		{name: "empty line", line: ""},
		{name: "benchmark with no units", line: "BenchmarkBroken-8 12 34 56"},
		{name: "too few fields", line: "BenchmarkShort-8 100"},
		{name: "unit without number", line: "BenchmarkOdd-8 100 fast ns/op"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			name, r, ok := ParseLine(tt.line)
			if ok != tt.wantOK {
				t.Fatalf("ParseLine(%q) ok = %v, want %v", tt.line, ok, tt.wantOK)
			}
			if !ok {
				return
			}
			if name != tt.wantName {
				t.Errorf("name = %q, want %q", name, tt.wantName)
			}
			if r != tt.want {
				t.Errorf("result = %+v, want %+v", r, tt.want)
			}
		})
	}
}

func TestParseMultipleBenchmarks(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: supernpu/internal/jsim",
		"BenchmarkSolver-8   2000   81234 ns/op   0 B/op   0 allocs/op",
		"BenchmarkExtract-8   300   412000 ns/op   1024 B/op   12 allocs/op",
		"PASS",
		"pkg: supernpu",
		"BenchmarkRunAll-8   10   5481294 ns/op",
		"ok  	supernpu	2.1s",
	}, "\n")
	rows, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3: %v", len(rows), rows)
	}
	if r := rows["BenchmarkExtract"]; r.AllocsPerOp != 12 {
		t.Errorf("BenchmarkExtract allocs = %v, want 12", r.AllocsPerOp)
	}
	if r := rows["BenchmarkRunAll"]; r.BytesPerOp != -1 {
		t.Errorf("BenchmarkRunAll bytes = %v, want -1 (absent)", r.BytesPerOp)
	}
}

func TestParseLastMeasurementWins(t *testing.T) {
	in := "BenchmarkX-8 100 111 ns/op\nBenchmarkX-16 100 222 ns/op\n"
	rows, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows["BenchmarkX"].NsPerOp != 222 {
		t.Fatalf("rows = %v, want the later BenchmarkX measurement (222)", rows)
	}
}

func TestParseEmptyInput(t *testing.T) {
	rows, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v, want none", rows)
	}
}

func TestRenderJSON(t *testing.T) {
	rows := map[string]Result{
		"BenchmarkB": {NsPerOp: 2, BytesPerOp: -1, AllocsPerOp: -1},
		"BenchmarkA": {NsPerOp: 1.5, BytesPerOp: 64, AllocsPerOp: 3},
	}
	out := RenderJSON(rows)

	// The artifact must be valid JSON with nulls for absent measurements.
	var decoded map[string]map[string]*float64
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("RenderJSON output is not valid JSON: %v\n%s", err, out)
	}
	if decoded["BenchmarkB"]["bytes_per_op"] != nil {
		t.Error("absent bytes_per_op did not render as null")
	}
	if v := decoded["BenchmarkA"]["ns_per_op"]; v == nil || *v != 1.5 {
		t.Errorf("ns_per_op = %v, want 1.5", v)
	}

	// Keys render sorted, so the bytes are deterministic.
	if strings.Index(out, "BenchmarkA") > strings.Index(out, "BenchmarkB") {
		t.Errorf("keys not sorted:\n%s", out)
	}
	if out != RenderJSON(rows) {
		t.Error("RenderJSON is not deterministic across calls")
	}
}
