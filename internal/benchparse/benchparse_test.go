package benchparse

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	tests := []struct {
		name     string
		line     string
		wantName string
		want     Result
		wantOK   bool
	}{
		{
			name:     "full benchmem line",
			line:     "BenchmarkRunAll-8   100   5481294 ns/op   774080 B/op   6016 allocs/op",
			wantName: "BenchmarkRunAll",
			want:     Result{NsPerOp: 5481294, BytesPerOp: 774080, AllocsPerOp: 6016},
			wantOK:   true,
		},
		{
			name:     "missing allocs and bytes columns",
			line:     "BenchmarkSolver-4   2000   81234 ns/op",
			wantName: "BenchmarkSolver",
			want:     Result{NsPerOp: 81234, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:     "no GOMAXPROCS suffix",
			line:     "BenchmarkEstimate   500   220000 ns/op",
			wantName: "BenchmarkEstimate",
			want:     Result{NsPerOp: 220000, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:     "non-numeric suffix is kept",
			line:     "BenchmarkSweep-wide   10   9e6 ns/op",
			wantName: "BenchmarkSweep-wide",
			want:     Result{NsPerOp: 9e6, BytesPerOp: -1, AllocsPerOp: -1},
			wantOK:   true,
		},
		{
			name:   "fractional ns with sub-benchmark path",
			line:   "BenchmarkCache/hit-16   1000000000   0.5 ns/op   0 B/op   0 allocs/op",
			want:   Result{NsPerOp: 0.5, BytesPerOp: 0, AllocsPerOp: 0},
			wantOK: true, wantName: "BenchmarkCache/hit",
		},
		{name: "header line", line: "goos: linux"},
		{name: "ok trailer", line: "ok  	supernpu/internal/jsim	4.2s"},
		{name: "pass line", line: "PASS"},
		{name: "empty line", line: ""},
		{name: "benchmark with no units", line: "BenchmarkBroken-8 12 34 56"},
		{name: "too few fields", line: "BenchmarkShort-8 100"},
		{name: "unit without number", line: "BenchmarkOdd-8 100 fast ns/op"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			name, r, ok := ParseLine(tt.line)
			if ok != tt.wantOK {
				t.Fatalf("ParseLine(%q) ok = %v, want %v", tt.line, ok, tt.wantOK)
			}
			if !ok {
				return
			}
			if name != tt.wantName {
				t.Errorf("name = %q, want %q", name, tt.wantName)
			}
			if r != tt.want {
				t.Errorf("result = %+v, want %+v", r, tt.want)
			}
		})
	}
}

func TestParseMultipleBenchmarks(t *testing.T) {
	in := strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: supernpu/internal/jsim",
		"BenchmarkSolver-8   2000   81234 ns/op   0 B/op   0 allocs/op",
		"BenchmarkExtract-8   300   412000 ns/op   1024 B/op   12 allocs/op",
		"PASS",
		"pkg: supernpu",
		"BenchmarkRunAll-8   10   5481294 ns/op",
		"ok  	supernpu	2.1s",
	}, "\n")
	rows, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("parsed %d rows, want 3: %v", len(rows), rows)
	}
	if r := rows["BenchmarkExtract"]; r.AllocsPerOp != 12 {
		t.Errorf("BenchmarkExtract allocs = %v, want 12", r.AllocsPerOp)
	}
	if r := rows["BenchmarkRunAll"]; r.BytesPerOp != -1 {
		t.Errorf("BenchmarkRunAll bytes = %v, want -1 (absent)", r.BytesPerOp)
	}
}

func TestParseLastMeasurementWins(t *testing.T) {
	in := "BenchmarkX-8 100 111 ns/op\nBenchmarkX-16 100 222 ns/op\n"
	rows, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows["BenchmarkX"].NsPerOp != 222 {
		t.Fatalf("rows = %v, want the later BenchmarkX measurement (222)", rows)
	}
}

func TestParseEmptyInput(t *testing.T) {
	rows, err := Parse(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("rows = %v, want none", rows)
	}
}

func TestRenderJSON(t *testing.T) {
	rows := map[string]Result{
		"BenchmarkB": {NsPerOp: 2, BytesPerOp: -1, AllocsPerOp: -1},
		"BenchmarkA": {NsPerOp: 1.5, BytesPerOp: 64, AllocsPerOp: 3},
	}
	out := RenderJSON(rows)

	// The artifact must be valid JSON with nulls for absent measurements.
	var decoded map[string]map[string]*float64
	if err := json.Unmarshal([]byte(out), &decoded); err != nil {
		t.Fatalf("RenderJSON output is not valid JSON: %v\n%s", err, out)
	}
	if decoded["BenchmarkB"]["bytes_per_op"] != nil {
		t.Error("absent bytes_per_op did not render as null")
	}
	if v := decoded["BenchmarkA"]["ns_per_op"]; v == nil || *v != 1.5 {
		t.Errorf("ns_per_op = %v, want 1.5", v)
	}

	// Keys render sorted, so the bytes are deterministic.
	if strings.Index(out, "BenchmarkA") > strings.Index(out, "BenchmarkB") {
		t.Errorf("keys not sorted:\n%s", out)
	}
	if out != RenderJSON(rows) {
		t.Error("RenderJSON is not deterministic across calls")
	}
}

func TestParseJSONRoundTrip(t *testing.T) {
	rows := map[string]Result{
		"BenchmarkFast": {NsPerOp: 1234.5, BytesPerOp: 64, AllocsPerOp: 2},
		"BenchmarkBare": {NsPerOp: 9, BytesPerOp: -1, AllocsPerOp: -1},
	}
	back, err := ParseJSON(strings.NewReader(RenderJSON(rows)))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", back, rows)
	}
}

func TestParseJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseJSON(strings.NewReader("not json")); err == nil {
		t.Error("garbage input parsed without error")
	}
}

func TestCompareIntersectionAndRatios(t *testing.T) {
	old := map[string]Result{
		"BenchmarkShared":  {NsPerOp: 100},
		"BenchmarkRetired": {NsPerOp: 50},
		"BenchmarkNoNs":    {NsPerOp: -1, AllocsPerOp: 3},
		"BenchmarkZero":    {NsPerOp: 0},
	}
	cur := map[string]Result{
		"BenchmarkShared": {NsPerOp: 150},
		"BenchmarkAdded":  {NsPerOp: 7},
		"BenchmarkNoNs":   {NsPerOp: 5},
		"BenchmarkZero":   {NsPerOp: 5},
	}
	deltas := Compare(old, cur)
	want := []Delta{{Name: "BenchmarkShared", OldNs: 100, NewNs: 150, Ratio: 1.5}}
	if !reflect.DeepEqual(deltas, want) {
		t.Errorf("Compare = %+v, want %+v", deltas, want)
	}
}

func TestCompareSortsByName(t *testing.T) {
	old := map[string]Result{"BenchmarkB": {NsPerOp: 1}, "BenchmarkA": {NsPerOp: 2}, "BenchmarkC": {NsPerOp: 3}}
	deltas := Compare(old, old)
	if len(deltas) != 3 || deltas[0].Name != "BenchmarkA" || deltas[1].Name != "BenchmarkB" || deltas[2].Name != "BenchmarkC" {
		t.Errorf("deltas not sorted by name: %+v", deltas)
	}
	for _, d := range deltas {
		if d.Ratio != 1 {
			t.Errorf("self-comparison ratio %v != 1 for %s", d.Ratio, d.Name)
		}
	}
}

func TestRegressionsThreshold(t *testing.T) {
	deltas := []Delta{
		{Name: "BenchmarkOK", Ratio: 1.2},
		{Name: "BenchmarkEdge", Ratio: 1.5},
		{Name: "BenchmarkBad", Ratio: 1.51},
	}
	regs := Regressions(deltas, 1.5)
	if len(regs) != 1 || regs[0].Name != "BenchmarkBad" {
		t.Errorf("Regressions = %+v, want only BenchmarkBad", regs)
	}
	if got := Regressions(deltas, 2); len(got) != 0 {
		t.Errorf("Regressions above all ratios = %+v, want none", got)
	}
}

func TestRenderCompareTable(t *testing.T) {
	out := RenderCompare([]Delta{
		{Name: "BenchmarkShared", OldNs: 100, NewNs: 150, Ratio: 1.5},
		{Name: "BenchmarkLongerName", OldNs: 2000, NewNs: 1000, Ratio: 0.5},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table has %d lines, want header + 2 rows:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "benchmark") || !strings.Contains(lines[0], "ratio") {
		t.Errorf("missing header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "1.50x") || !strings.Contains(lines[2], "0.50x") {
		t.Errorf("ratios not rendered:\n%s", out)
	}
}
