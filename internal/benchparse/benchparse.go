// Package benchparse parses `go test -bench -benchmem` text output into
// per-benchmark measurements and renders them as the deterministic JSON
// artifact of the repo's recorded perf trajectory (`make bench-json`,
// cmd/benchjson).
//
// Benchmark names are stripped of their -GOMAXPROCS suffix; when a name
// appears more than once (several packages, -count > 1), the last
// measurement wins. Rendered keys are sorted, so identical measurements
// produce identical bytes.
package benchparse

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result holds one benchmark's parsed measurements. Missing quantities
// (e.g. B/op without -benchmem) stay at -1 and render as JSON null.
type Result struct {
	NsPerOp     float64
	BytesPerOp  float64
	AllocsPerOp float64
}

// ParseLine extracts one benchmark result line of the form
//
//	BenchmarkName-8   100   5481294 ns/op   774080 B/op   6016 allocs/op
//
// returning the bare benchmark name and its measurements. ok is false for
// lines that are not benchmark results (headers, PASS/ok trailers, prose).
func ParseLine(line string) (name string, r Result, ok bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", Result{}, false
	}
	name = fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	r = Result{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
	found := false
	for i := 2; i < len(fields)-1; i++ {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			found = true
		case "B/op":
			r.BytesPerOp = v
			found = true
		case "allocs/op":
			r.AllocsPerOp = v
			found = true
		}
	}
	return name, r, found
}

// Parse reads benchmark output line by line and returns the merged
// measurements by bare benchmark name (last occurrence wins). Lines longer
// than one MiB are an error, as is any reader failure.
func Parse(rd io.Reader) (map[string]Result, error) {
	rows := map[string]Result{}
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		if name, r, ok := ParseLine(sc.Text()); ok {
			rows[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderJSON renders the measurements as the benchjson artifact: one
// object keyed by sorted benchmark name, each value carrying ns_per_op,
// bytes_per_op and allocs_per_op (absent measurements as null).
func RenderJSON(rows map[string]Result) string {
	names := make([]string, 0, len(rows))
	for name := range rows {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("{\n")
	for i, name := range names {
		r := rows[name]
		fmt.Fprintf(&b, "  %q: {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
			name, num(r.NsPerOp), num(r.BytesPerOp), num(r.AllocsPerOp))
		if i < len(names)-1 {
			b.WriteString(",")
		}
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	return b.String()
}

// num renders a measurement, with -1 (absent) as JSON null.
func num(v float64) string {
	if v < 0 {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// jsonResult mirrors one RenderJSON value for reading artifacts back;
// pointers distinguish JSON null (absent measurement) from zero.
type jsonResult struct {
	NsPerOp     *float64 `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op"`
	AllocsPerOp *float64 `json:"allocs_per_op"`
}

// ParseJSON reads a benchjson artifact (the RenderJSON format) back into
// measurements by benchmark name, with null measurements restored to -1.
func ParseJSON(rd io.Reader) (map[string]Result, error) {
	var raw map[string]jsonResult
	dec := json.NewDecoder(rd)
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("benchjson artifact: %w", err)
	}
	rows := make(map[string]Result, len(raw))
	for name, jr := range raw {
		r := Result{NsPerOp: -1, BytesPerOp: -1, AllocsPerOp: -1}
		if jr.NsPerOp != nil {
			r.NsPerOp = *jr.NsPerOp
		}
		if jr.BytesPerOp != nil {
			r.BytesPerOp = *jr.BytesPerOp
		}
		if jr.AllocsPerOp != nil {
			r.AllocsPerOp = *jr.AllocsPerOp
		}
		rows[name] = r
	}
	return rows, nil
}

// Delta is one benchmark's ns/op movement between two recorded artifacts.
type Delta struct {
	Name         string
	OldNs, NewNs float64
	// Ratio is NewNs/OldNs: above 1 the benchmark got slower.
	Ratio float64
}

// Compare matches two artifacts by benchmark name and returns the ns/op
// deltas over their intersection, sorted by name. Benchmarks present on
// only one side (added or retired) or without an ns/op measurement are
// skipped — the comparison gates drift on the shared trajectory, it does
// not demand identical benchmark sets across PRs.
func Compare(old, cur map[string]Result) []Delta {
	var deltas []Delta
	for name, o := range old {
		n, ok := cur[name]
		if !ok || o.NsPerOp <= 0 || n.NsPerOp < 0 {
			continue
		}
		deltas = append(deltas, Delta{Name: name, OldNs: o.NsPerOp, NewNs: n.NsPerOp, Ratio: n.NsPerOp / o.NsPerOp})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas
}

// Regressions filters deltas to those whose slowdown ratio exceeds the
// threshold (e.g. 1.5 = fail anything more than 50% slower).
func Regressions(deltas []Delta, threshold float64) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Ratio > threshold {
			out = append(out, d)
		}
	}
	return out
}

// RenderCompare renders deltas as an aligned text table with a
// human-readable ratio column.
func RenderCompare(deltas []Delta) string {
	var b strings.Builder
	w := len("benchmark")
	for _, d := range deltas {
		if len(d.Name) > w {
			w = len(d.Name)
		}
	}
	fmt.Fprintf(&b, "%-*s  %14s  %14s  %7s\n", w, "benchmark", "old ns/op", "new ns/op", "ratio")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-*s  %14s  %14s  %6.2fx\n", w, d.Name,
			strconv.FormatFloat(d.OldNs, 'g', -1, 64),
			strconv.FormatFloat(d.NewNs, 'g', -1, 64), d.Ratio)
	}
	return b.String()
}
