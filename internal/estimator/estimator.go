// Package estimator is the SFQ-NPU estimator of Section IV-A: the
// three-layer (gate → microarchitecture → architecture) model that derives
// the frequency, power and area of an SFQ-based NPU configuration from the
// cell library and per-unit structure models, and the validation fixtures
// of Fig. 13.
package estimator

import (
	"context"
	"fmt"
	"math"

	"supernpu/internal/arch"
	"supernpu/internal/clocking"
	"supernpu/internal/dau"
	"supernpu/internal/faultinject"
	"supernpu/internal/guard"
	"supernpu/internal/netunit"
	"supernpu/internal/obs"
	"supernpu/internal/pe"
	"supernpu/internal/sfq"
	"supernpu/internal/simcache"
	"supernpu/internal/srmem"
)

// cache memoises Estimate by configuration fingerprint: the simulator calls
// the estimator once per simulation and the sweeps revisit the same handful
// of designs constantly. Results are shared and must be treated read-only.
var cache = simcache.New[*Result]()

func init() { simcache.Register("estimator", cache) }

// Estimation instruments: calls counts every Estimate/EstimateFaulted entry
// (cached or not); the histogram times only cold computes. Write-only from
// this package (obsflow).
var (
	mEstimates   = obs.Default.Counter("supernpu_estimator_estimates_total", "Estimate calls, cache hits included")
	mColdSeconds = obs.Default.Histogram("supernpu_estimator_cold_seconds", "wall time of uncached three-layer estimations", obs.DurationEdges)
)

// logicAreaOverhead is the layout expansion factor of logic-dense units
// (PE array, DAU) over their raw cell area: passive transmission lines,
// bias rails and inter-cell routing roughly double the footprint, as the
// die photographs of the fabricated MAC prototype show (Fig. 12). Regular
// shift-register macros do not pay it.
const logicAreaOverhead = 2.0

// UnitEstimate is the microarchitecture-level estimate of one unit.
type UnitEstimate struct {
	Name string
	// Frequency is the unit's maximum clock frequency; 0 for units with
	// no clocked gate pair of their own (the pure DFF-splitter network).
	Frequency float64
	// StaticPower is the unit's DC bias dissipation (W).
	StaticPower float64
	// Area is the laid-out area (m²) at the native process, including
	// routing overhead for logic units.
	Area float64
	// JJs is the junction count.
	JJs int
	// AccessEnergy is the dynamic energy of one access of the unit
	// (one MAC for a PE, one chunk shift for a buffer, one selected pixel
	// for a DAU row).
	AccessEnergy float64
}

// Result is the architecture-level estimate of a whole NPU (Fig. 10 output).
type Result struct {
	Config arch.Config

	// Frequency is the NPU clock: the minimum over all units and
	// inter-unit gate pairs.
	Frequency float64
	// StaticPower is the total DC bias dissipation (0 under ERSFQ).
	StaticPower float64
	// AreaNative is the die area at the native 1.0 µm process (m²).
	AreaNative float64
	// Area28nm is the 28 nm CMOS-equivalent area (m²) used for the TPU
	// comparison (Table I).
	Area28nm float64
	// TotalJJs is the chip's junction count.
	TotalJJs int64
	// PeakMACs is ArrayHeight × ArrayWidth × Frequency (MAC/s).
	PeakMACs float64

	// Units holds the per-unit breakdown in a fixed order: PE array, DAU,
	// ifmap buffer, output buffer, (psum buffer,) weight buffer, network.
	Units []UnitEstimate
}

// Unit returns the named unit estimate, or false.
func (r *Result) Unit(name string) (UnitEstimate, bool) {
	for _, u := range r.Units {
		if u.Name == name {
			return u, true
		}
	}
	return UnitEstimate{}, false
}

// interUnitPairs models the unit-to-unit interfaces whose timing also bounds
// the NPU clock (Section IV-A3): buffer→DAU, DAU→PE and PE→buffer links,
// each a latch pair with transmission-line mismatch from the unit spacing.
func interUnitPairs(lib *sfq.Library) []clocking.Pair {
	dff := lib.Gate(sfq.DFF)
	jtl := lib.Gate(sfq.JTL)
	link := []sfq.Gate{jtl, jtl}
	return []clocking.Pair{
		{Src: dff, Dst: lib.Gate(sfq.DFFB), MismatchWire: link},                // ifmap buffer → DAU
		{Src: lib.Gate(sfq.DFFB), Dst: lib.Gate(sfq.NDRO), MismatchWire: link}, // DAU → PE edge
		{Src: lib.Gate(sfq.FA), Dst: dff, MismatchWire: link},                  // PE → output buffer
	}
}

// estimatePEArray returns the PE-array unit estimate including the
// store-and-forward network branches each PE contributes.
func estimatePEArray(cfg arch.Config, lib *sfq.Library) UnitEstimate {
	pc := cfg.PECfg()
	inv := pc.Inventory()
	inv.Add(netunit.SystolicPerPE(pc.Bits), 1)
	n := cfg.PEs()
	total := sfq.Inventory{}
	total.Add(inv, n)
	return UnitEstimate{
		Name:         "PE array",
		Frequency:    pc.Frequency(lib),
		StaticPower:  total.StaticPower(lib),
		Area:         total.Area(lib) * logicAreaOverhead,
		JJs:          total.JJs(lib),
		AccessEnergy: pc.MACEnergy(lib),
	}
}

// estimateDAU returns the data-alignment-unit estimate.
func estimateDAU(cfg arch.Config, lib *sfq.Library) UnitEstimate {
	pc := cfg.PECfg()
	inv := dau.Inventory(cfg.ArrayHeight, pc.Bits, pc.PipelineStages())
	dffb := lib.Gate(sfq.DFFB)
	pair := clocking.Pair{Src: dffb, Dst: dffb}
	// Energy of delivering one selected pixel down one DAU row: selector
	// plus an average half of the delay cascade.
	perPixel := lib.AccessEnergy(sfq.MUXCell) +
		float64(pc.PipelineStages())/2*float64(pc.Bits)*lib.AccessEnergy(sfq.DFFB)
	return UnitEstimate{
		Name:         "DAU",
		Frequency:    clocking.Frequency(pair.CCT(clocking.ConcurrentFlowSkewed)),
		StaticPower:  inv.StaticPower(lib),
		Area:         inv.Area(lib) * logicAreaOverhead,
		JJs:          inv.JJs(lib),
		AccessEnergy: perPixel,
	}
}

// estimateBuffer returns a shift-register buffer estimate.
func estimateBuffer(name string, c srmem.Config, lib *sfq.Library) UnitEstimate {
	inv := c.Inventory()
	return UnitEstimate{
		Name:         name,
		Frequency:    srmem.Frequency(lib),
		StaticPower:  inv.StaticPower(lib),
		Area:         inv.Area(lib),
		JJs:          inv.JJs(lib),
		AccessEnergy: c.ChunkShiftEnergy(lib),
	}
}

// estimateNetwork returns the array-edge injection network estimate.
func estimateNetwork(cfg arch.Config, lib *sfq.Library) UnitEstimate {
	nc := netunit.Config{Width: max(cfg.ArrayHeight, cfg.ArrayWidth), Bits: cfg.PECfg().Bits}
	inv := netunit.CellInventory(netunit.Systolic2D, nc)
	return UnitEstimate{
		Name:         "NW unit",
		Frequency:    netunit.MaxFrequency(netunit.Systolic2D, nc, lib),
		StaticPower:  inv.StaticPower(lib),
		Area:         inv.Area(lib) * logicAreaOverhead,
		JJs:          inv.JJs(lib),
		AccessEnergy: inv.AccessEnergy(lib) / float64(max(1, inv.Gates())),
	}
}

// Estimate runs the full three-layer estimation for an NPU configuration.
// Results are memoised by configuration; repeated calls return one shared
// *Result, which callers must treat as read-only. A context that is
// already canceled aborts before any unit is estimated; a canceled
// computation is evicted from the cache rather than memoised.
func Estimate(ctx context.Context, cfg arch.Config) (*Result, error) {
	mEstimates.Inc()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.GetOrCompute(simcache.ConfigKey(cfg), func() (*Result, error) {
		defer obs.Time(mColdSeconds)()
		return estimate(ctx, cfg)
	})
}

// EstimateFaulted is Estimate at a fault-perturbed operating point: the
// whole three-layer derivation reruns against the faulted cell library, so
// margin erosion and Ic spread propagate into every unit's frequency, power
// and energy exactly as a nominal shift would. Results are memoised by
// (configuration, fault key); a disabled model shares Estimate's cache
// entries.
func EstimateFaulted(ctx context.Context, cfg arch.Config, fm *faultinject.Model) (*Result, error) {
	if !fm.Enabled() {
		return Estimate(ctx, cfg)
	}
	mEstimates.Inc()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return cache.GetOrCompute(simcache.ConfigKey(cfg)+fm.Key(), func() (*Result, error) {
		defer obs.Time(mColdSeconds)()
		return estimateWithLib(ctx, cfg, sfq.NewLibraryFaulted(sfq.AIST10(), cfg.Tech, fm))
	})
}

// estimate is the uncached three-layer estimation at the nominal library.
func estimate(ctx context.Context, cfg arch.Config) (*Result, error) {
	return estimateWithLib(ctx, cfg, sfq.NewLibrary(sfq.AIST10(), cfg.Tech))
}

// estimateWithLib runs the three-layer estimation against an explicit cell
// library (nominal or fault-perturbed). The estimation itself is a short
// closed-form derivation, so the only cancellation point is at entry.
func estimateWithLib(ctx context.Context, cfg arch.Config, lib *sfq.Library) (*Result, error) {
	if err := guard.CtxErr(ctx); err != nil {
		return nil, err
	}
	units := []UnitEstimate{
		estimatePEArray(cfg, lib),
		estimateDAU(cfg, lib),
		estimateBuffer("Ifmap buffer", cfg.IfmapBuf(), lib),
		estimateBuffer("Output buffer", cfg.OutputBuf(), lib),
	}
	if !cfg.IntegratedOutput {
		units = append(units, estimateBuffer("Psum buffer", cfg.PsumBuf(), lib))
	}
	units = append(units,
		estimateBuffer("Weight buffer", cfg.WeightBuf(), lib),
		estimateNetwork(cfg, lib),
	)

	res := &Result{Config: cfg, Units: units}
	res.Frequency = math.Inf(1)
	for _, u := range units {
		if u.Frequency > 0 && u.Frequency < res.Frequency {
			res.Frequency = u.Frequency
		}
		res.StaticPower += u.StaticPower
		res.AreaNative += u.Area
		res.TotalJJs += int64(u.JJs)
	}
	if f := clocking.PipelineFrequency(interUnitPairs(lib), clocking.ConcurrentFlowSkewed); f < res.Frequency {
		res.Frequency = f
	}
	res.Area28nm = res.AreaNative * sfq.AIST10().ScaleAreaTo(28e-9)
	res.PeakMACs = float64(cfg.PEs()) * res.Frequency
	// Frequency starts at +Inf and only unit estimates pull it down; if no
	// unit produced a positive frequency the headline numbers are not
	// finite and the result must fail typed, not leak infinities.
	if math.IsInf(res.Frequency, 0) || math.IsNaN(res.Frequency) {
		return nil, fmt.Errorf("estimator: %s produced a non-finite frequency: %w",
			cfg.Name, guard.ErrNonFinite)
	}
	return res, nil
}

// EstimateMAC estimates a standalone MAC-unit prototype (the fabricated
// 4-bit chip of Fig. 12(a)): frequency, static power and area.
func EstimateMAC(pc pe.Config, tech sfq.Technology) UnitEstimate {
	lib := sfq.NewLibrary(sfq.AIST10(), tech)
	inv := pc.Inventory()
	return UnitEstimate{
		Name:         fmt.Sprintf("%d-bit MAC unit", pc.Bits),
		Frequency:    pc.Frequency(lib),
		StaticPower:  inv.StaticPower(lib),
		Area:         inv.Area(lib) * logicAreaOverhead,
		JJs:          inv.JJs(lib),
		AccessEnergy: pc.MACEnergy(lib),
	}
}

// EstimateSRMem estimates a standalone shift-register memory prototype.
func EstimateSRMem(c srmem.Config, tech sfq.Technology) UnitEstimate {
	lib := sfq.NewLibrary(sfq.AIST10(), tech)
	u := estimateBuffer(fmt.Sprintf("SRmem %dB", c.CapacityBytes), c, lib)
	return u
}

// EstimateNW estimates a standalone systolic network-unit prototype. The
// unit consists only of DFF-splitter branches, so it has no frequency of
// its own (Fig. 13: "no frequency result for a single NW unit").
func EstimateNW(width, bits int, tech sfq.Technology) UnitEstimate {
	lib := sfq.NewLibrary(sfq.AIST10(), tech)
	inv := netunit.CellInventory(netunit.Systolic2D, netunit.Config{Width: width, Bits: bits})
	return UnitEstimate{
		Name:        fmt.Sprintf("%d-bit NW unit", bits),
		StaticPower: inv.StaticPower(lib),
		Area:        inv.Area(lib) * logicAreaOverhead,
		JJs:         inv.JJs(lib),
	}
}

// EstimatePrototypeNPU estimates the 4-bit 2×2 PE-arrayed NPU prototype of
// Fig. 12(c): four 4-bit PEs with their systolic branches, four small
// shift-register buffers (ifmap, psum, ofmap, weight) and the inter-unit
// links — the architecture-level validation subject of Fig. 13.
func EstimatePrototypeNPU(tech sfq.Technology) UnitEstimate {
	lib := sfq.NewLibrary(sfq.AIST10(), tech)
	pc := pe.Config{Bits: 4, AccBits: 12, Registers: 1, Dataflow: pe.WeightStationary}

	inv := sfq.Inventory{}
	perPE := pc.Inventory()
	perPE.Add(netunit.SystolicPerPE(pc.Bits), 1)
	inv.Add(perPE, 4)
	buf := srmem.Config{WidthBytes: 2, CapacityBytes: 16, Chunks: 1}
	for i := 0; i < 4; i++ {
		inv.Add(buf.Inventory(), 1)
	}

	freq := pc.Frequency(lib)
	if f := srmem.Frequency(lib); f < freq {
		freq = f
	}
	if f := clocking.PipelineFrequency(interUnitPairs(lib), clocking.ConcurrentFlowSkewed); f < freq {
		freq = f
	}
	return UnitEstimate{
		Name:        "4-bit 2x2 NPU",
		Frequency:   freq,
		StaticPower: inv.StaticPower(lib),
		Area:        inv.Area(lib) * logicAreaOverhead,
		JJs:         inv.JJs(lib),
	}
}
