package estimator

import (
	"context"
	"math"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/sfq"
)

func estimateOrDie(t *testing.T, cfg arch.Config) *Result {
	t.Helper()
	r, err := Estimate(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// Table I: every SFQ design runs at ~52.6 GHz — the 8-bit MAC pipeline is
// the binding unit; buffers (71 GHz) and DAU are faster.
func TestTable1Frequency(t *testing.T) {
	for _, cfg := range arch.Designs() {
		r := estimateOrDie(t, cfg)
		f := r.Frequency / sfq.GHz
		if math.Abs(f-52.6) > 1.0 {
			t.Errorf("%s frequency = %.2f GHz, want ~52.6", cfg.Name, f)
		}
	}
}

// Table I: peak performance 3366 TMAC/s for the 256-wide designs and
// 842 TMAC/s for the 64-wide designs (we allow the small frequency delta).
func TestTable1PeakPerformance(t *testing.T) {
	want := map[string]float64{
		"Baseline": 3366, "Buffer opt.": 3366,
		"Resource opt.": 842, "SuperNPU": 842,
	}
	for _, cfg := range arch.Designs() {
		r := estimateOrDie(t, cfg)
		got := r.PeakMACs / 1e12
		if math.Abs(got-want[cfg.Name])/want[cfg.Name] > 0.05 {
			t.Errorf("%s peak = %.0f TMAC/s, want ≈%.0f", cfg.Name, got, want[cfg.Name])
		}
	}
}

// Table I: 28 nm-equivalent areas ≈ 283 / 285 / 298 / 299 mm² — all below
// the TPU core's <331 mm².
func TestTable1Area(t *testing.T) {
	want := map[string]float64{
		"Baseline": 283, "Buffer opt.": 285,
		"Resource opt.": 298, "SuperNPU": 299,
	}
	for _, cfg := range arch.Designs() {
		r := estimateOrDie(t, cfg)
		got := r.Area28nm / sfq.SquareMillimetre
		if math.Abs(got-want[cfg.Name])/want[cfg.Name] > 0.03 {
			t.Errorf("%s area = %.1f mm² @28nm, want ≈%.0f", cfg.Name, got, want[cfg.Name])
		}
		if got >= 331 {
			t.Errorf("%s area %.1f mm² must stay under the TPU core's 331 mm²", cfg.Name, got)
		}
	}
}

// Table III: SuperNPU under RSFQ dissipates ~964 W of static (bias) power
// — infeasible, which is why the paper turns to ERSFQ (exactly 0 static).
func TestTable3StaticPower(t *testing.T) {
	rsfq := estimateOrDie(t, arch.SuperNPU())
	if rsfq.StaticPower < 900 || rsfq.StaticPower > 1050 {
		t.Errorf("RSFQ SuperNPU static power = %.0f W, want ≈964 W", rsfq.StaticPower)
	}
	e := arch.SuperNPU()
	e.Tech = sfq.ERSFQ
	ersfq := estimateOrDie(t, e)
	if ersfq.StaticPower != 0 {
		t.Errorf("ERSFQ static power = %g, want exactly 0", ersfq.StaticPower)
	}
	// Same area and frequency: ERSFQ only changes biasing.
	if math.Abs(ersfq.Area28nm-rsfq.Area28nm)/rsfq.Area28nm > 1e-9 {
		t.Error("ERSFQ must not change the area")
	}
	if ersfq.Frequency != rsfq.Frequency {
		t.Error("ERSFQ must not change the frequency")
	}
}

func TestBuffersDominateStaticPower(t *testing.T) {
	// The insight behind Table III: shift-register bit-cells, not PEs,
	// burn the static power (46+ MB of always-biased DFF rows).
	r := estimateOrDie(t, arch.SuperNPU())
	peU, _ := r.Unit("PE array")
	ifU, _ := r.Unit("Ifmap buffer")
	outU, _ := r.Unit("Output buffer")
	if ifU.StaticPower+outU.StaticPower < 5*peU.StaticPower {
		t.Errorf("buffer static power (%.0f W) must dwarf PE array (%.0f W)",
			ifU.StaticPower+outU.StaticPower, peU.StaticPower)
	}
}

func TestEstimateRejectsInvalidConfig(t *testing.T) {
	bad := arch.Baseline()
	bad.ArrayWidth = 0
	if _, err := Estimate(context.Background(), bad); err == nil {
		t.Fatal("Estimate must reject invalid configurations")
	}
	bad2 := arch.Baseline()
	bad2.PsumBufBytes = 0 // non-integrated design without psum buffer
	if _, err := Estimate(context.Background(), bad2); err == nil {
		t.Fatal("Estimate must reject a non-integrated design without psum buffer")
	}
}

func TestUnitLookup(t *testing.T) {
	r := estimateOrDie(t, arch.Baseline())
	if _, ok := r.Unit("Psum buffer"); !ok {
		t.Error("Baseline must expose a separate psum buffer")
	}
	if _, ok := r.Unit("nonexistent"); ok {
		t.Error("unknown unit lookups must fail")
	}
	rOpt := estimateOrDie(t, arch.BufferOpt())
	if _, ok := rOpt.Unit("Psum buffer"); ok {
		t.Error("integrated designs must not expose a psum buffer")
	}
}

// Fig. 13: the estimator matches the die/post-layout references with the
// paper's error levels — microarchitecture 5.6 / 1.2 / 1.3 % and
// architecture 4.7 / 2.3 / 9.5 % for frequency / power / area.
func TestFig13Validation(t *testing.T) {
	rep := Validate()
	if len(rep.Items) != 11 {
		t.Fatalf("validation must cover 11 subjects/metrics, got %d", len(rep.Items))
	}
	check := func(level Level, metric Metric, want, tol float64) {
		t.Helper()
		got := rep.MeanError(level, metric) * 100
		if math.Abs(got-want) > tol {
			t.Errorf("level %v %s mean error = %.2f%%, want ≈%.1f%%", level, metric, got, want)
		}
	}
	check(Microarch, Frequency, 5.6, 0.8)
	check(Microarch, StaticPower, 1.2, 0.5)
	check(Microarch, Area, 1.3, 0.5)
	check(Arch, Frequency, 4.7, 0.8)
	check(Arch, StaticPower, 2.3, 0.8)
	check(Arch, Area, 9.5, 1.0)
	if rep.MaxError() > 0.12 {
		t.Errorf("worst-case validation error %.1f%% exceeds 12%%", rep.MaxError()*100)
	}
}

func TestPrototypeNPUFrequencyBoundedByMAC(t *testing.T) {
	p := EstimatePrototypeNPU(sfq.RSFQ)
	if p.Frequency <= 0 || p.Frequency > 60*sfq.GHz {
		t.Fatalf("prototype NPU frequency %.1f GHz implausible", p.Frequency/sfq.GHz)
	}
	if p.JJs < 10000 {
		t.Fatalf("prototype NPU JJ count %d too small for 4 MACs + buffers", p.JJs)
	}
}
