package estimator

import (
	"fmt"
	"math"

	"supernpu/internal/pe"
	"supernpu/internal/sfq"
	"supernpu/internal/srmem"
)

// Fig. 13 validation. The paper validates the estimator against a
// fabricated 4-bit MAC unit measured at 4 K and against post-layout
// characterisations of an 8-bit 8-entry shift-register memory, an 8-bit NW
// unit, and a 4-bit 2×2 PE-arrayed NPU. Re-measuring silicon is impossible
// without the fab, so the reference values below are fixtures standing in
// for those measurements (see DESIGN.md, substitution table). The reported
// relative errors reproduce the paper's: microarchitecture level 5.6 / 1.2 /
// 1.3 % and architecture level 4.7 / 2.3 / 9.5 % for frequency / power /
// area.

// Level distinguishes Fig. 13's two validation granularities.
type Level int

const (
	// Microarch covers the MAC unit, SRmem and NW unit subjects.
	Microarch Level = iota
	// Arch covers the 2×2 PE-arrayed NPU subject.
	Arch
)

// Metric names a validated quantity.
type Metric string

// The three validated quantities of Fig. 13.
const (
	Frequency   Metric = "frequency"
	StaticPower Metric = "power"
	Area        Metric = "area"
)

// reference is one measured (die or post-layout) value.
type reference struct {
	unit   string
	level  Level
	metric Metric
	value  float64
}

// references holds the measurement fixtures: the fabricated 4-bit MAC chip
// (Fig. 12(a,b)), the post-layout SRmem and NW unit characterisations, and
// the post-layout 2×2 NPU (Fig. 12(c)).
var references = []reference{
	{"4-bit MAC unit", Microarch, Frequency, 56.31 * sfq.GHz},
	{"4-bit MAC unit", Microarch, StaticPower, 1.295 * sfq.Milliwatt},
	{"4-bit MAC unit", Microarch, Area, 0.9064 * sfq.SquareMillimetre},

	{"SRmem 8x8", Microarch, Frequency, 67.94 * sfq.GHz},
	{"SRmem 8x8", Microarch, StaticPower, 0.14246 * sfq.Milliwatt},
	{"SRmem 8x8", Microarch, Area, 0.052624 * sfq.SquareMillimetre},

	// The NW unit is a pure DFF-splitter chain: no frequency subject.
	{"8-bit NW unit", Microarch, StaticPower, 0.14548 * sfq.Milliwatt},
	{"8-bit NW unit", Microarch, Area, 0.103064 * sfq.SquareMillimetre},

	{"4-bit 2x2 NPU", Arch, Frequency, 50.158 * sfq.GHz},
	{"4-bit 2x2 NPU", Arch, StaticPower, 6.4723 * sfq.Milliwatt},
	{"4-bit 2x2 NPU", Arch, Area, 4.1395 * sfq.SquareMillimetre},
}

// Item is one model-vs-measurement comparison.
type Item struct {
	Unit     string
	Level    Level
	Metric   Metric
	Measured float64
	Modeled  float64
}

// RelError is |modeled − measured| / measured.
func (i Item) RelError() float64 {
	return math.Abs(i.Modeled-i.Measured) / math.Abs(i.Measured)
}

// Report is the full Fig. 13 validation result.
type Report struct {
	Items []Item
}

// MeanError averages the relative error over items of the level and metric.
func (r Report) MeanError(level Level, metric Metric) float64 {
	sum, n := 0.0, 0
	for _, it := range r.Items {
		if it.Level == level && it.Metric == metric {
			sum += it.RelError()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxError returns the largest relative error in the report.
func (r Report) MaxError() float64 {
	worst := 0.0
	for _, it := range r.Items {
		if e := it.RelError(); e > worst {
			worst = e
		}
	}
	return worst
}

// Validate runs the estimator on each Fig. 13 subject and compares against
// the measurement fixtures. It panics if a reference row names a subject
// with no model: the table and the models are compile-time-known and a
// miss is a programmer error, not an input error.
func Validate() Report {
	mac := EstimateMAC(pe.Config{Bits: 4, AccBits: 12, Registers: 1, Dataflow: pe.WeightStationary}, sfq.RSFQ)
	sr := EstimateSRMem(srmem.Config{WidthBytes: 1, CapacityBytes: 8, Chunks: 1}, sfq.RSFQ)
	nw := EstimateNW(2, 8, sfq.RSFQ)
	npu := EstimatePrototypeNPU(sfq.RSFQ)

	modeled := map[string]UnitEstimate{
		"4-bit MAC unit": mac,
		"SRmem 8x8":      sr,
		"8-bit NW unit":  nw,
		"4-bit 2x2 NPU":  npu,
	}

	var rep Report
	for _, ref := range references {
		m, ok := modeled[ref.unit]
		if !ok {
			panic(fmt.Sprintf("estimator: no model for validation subject %q", ref.unit))
		}
		var val float64
		switch ref.metric {
		case Frequency:
			val = m.Frequency
		case StaticPower:
			val = m.StaticPower
		case Area:
			val = m.Area
		}
		rep.Items = append(rep.Items, Item{
			Unit: ref.unit, Level: ref.level, Metric: ref.metric,
			Measured: ref.value, Modeled: val,
		})
	}
	return rep
}
