package estimator

import (
	"context"
	"errors"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/guard"
)

// A pre-canceled context aborts the estimation with the guard taxonomy and
// is not memoised: a live retry computes the estimate normally.
func TestEstimateCanceledNotMemoised(t *testing.T) {
	// A distinct configuration keeps this test's cache entries away from
	// every other test.
	cfg := arch.SuperNPU()
	cfg.ArrayHeight, cfg.ArrayWidth = 48, 48
	cfg.Name = "cancel-probe"

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Estimate(ctx, cfg); !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}

	res, err := Estimate(context.Background(), cfg)
	if err != nil {
		t.Fatalf("retry after canceled attempt: %v", err)
	}
	if res.Frequency <= 0 {
		t.Fatalf("retry produced an empty estimate: %+v", res)
	}
}
