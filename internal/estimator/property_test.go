// Property-based tests for the estimator's invariants: over randomly drawn
// valid configurations, frequency and peak throughput are strictly positive,
// and area, junction count and static power are monotone non-decreasing in
// every resource axis (PE-array height/width, registers, buffer capacity).
// A violated property means the three-layer model lost physical sense
// somewhere, even if every fixed design point still matches the paper.
package estimator

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/sfq"
)

// randomValidConfig draws one configuration that passes arch.Validate:
// power-of-two array dims, generous buffer capacities and division degrees
// that always satisfy the shift-register geometry constraints.
func randomValidConfig(rng *rand.Rand) arch.Config {
	pow2 := func(lo, hi int) int { // random power of two in [2^lo, 2^hi]
		return 1 << (lo + rng.Intn(hi-lo+1))
	}
	integrated := rng.Intn(2) == 1
	cfg := arch.Config{
		Name:        "prop",
		ArrayHeight: pow2(3, 8), // 8..256
		ArrayWidth:  pow2(3, 8),
		Registers:   pow2(0, 3), // 1..8
		// Capacity >= width*chunks holds: min capacity 1 MB, max width 512,
		// max chunks 256 -> 512*256 = 128 KB < 1 MB.
		IfmapBufBytes: pow2(20, 25), IfmapChunks: pow2(0, 8),
		OutputBufBytes: pow2(20, 25), OutputChunks: pow2(0, 8),
		IntegratedOutput: integrated,
		WeightBufBytes:   pow2(14, 18),
		Tech:             sfq.RSFQ,
		MemoryBandwidth:  arch.DefaultBandwidth,
	}
	if !integrated {
		cfg.PsumBufBytes = pow2(20, 24)
	}
	if rng.Intn(4) == 0 {
		cfg.Tech = sfq.ERSFQ
	}
	return cfg
}

const propTrials = 200

func TestPropertyEstimatePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < propTrials; i++ {
		cfg := randomValidConfig(rng)
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}
		res, err := Estimate(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Estimate(context.Background(), %+v): %v", cfg, err)
		}
		if res.Frequency <= 0 {
			t.Fatalf("trial %d: frequency %v not strictly positive (%+v)", i, res.Frequency, cfg)
		}
		if res.PeakMACs <= 0 {
			t.Fatalf("trial %d: peak throughput %v not strictly positive", i, res.PeakMACs)
		}
		if res.AreaNative <= 0 || res.Area28nm <= 0 {
			t.Fatalf("trial %d: area %v / %v not strictly positive", i, res.AreaNative, res.Area28nm)
		}
		if res.TotalJJs <= 0 {
			t.Fatalf("trial %d: JJ count %d not strictly positive", i, res.TotalJJs)
		}
		switch cfg.Tech {
		case sfq.ERSFQ:
			if res.StaticPower != 0 {
				t.Fatalf("trial %d: ERSFQ static power %v, want 0", i, res.StaticPower)
			}
		default:
			if res.StaticPower <= 0 {
				t.Fatalf("trial %d: RSFQ static power %v not strictly positive", i, res.StaticPower)
			}
		}
	}
}

// grow describes one resource axis and how to enlarge a config along it.
type grow struct {
	name  string
	apply func(arch.Config) arch.Config
}

var growAxes = []grow{
	{"ArrayHeight", func(c arch.Config) arch.Config { c.ArrayHeight *= 2; return c }},
	{"ArrayWidth", func(c arch.Config) arch.Config { c.ArrayWidth *= 2; return c }},
	{"Registers", func(c arch.Config) arch.Config { c.Registers *= 2; return c }},
	{"IfmapBufBytes", func(c arch.Config) arch.Config { c.IfmapBufBytes *= 2; return c }},
	{"OutputBufBytes", func(c arch.Config) arch.Config { c.OutputBufBytes *= 2; return c }},
	{"WeightBufBytes", func(c arch.Config) arch.Config { c.WeightBufBytes *= 2; return c }},
}

func TestPropertyAreaPowerMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < propTrials; i++ {
		cfg := randomValidConfig(rng)
		base, err := Estimate(context.Background(), cfg)
		if err != nil {
			t.Fatalf("Estimate(context.Background(), base): %v", err)
		}
		axis := growAxes[rng.Intn(len(growAxes))]
		bigger := axis.apply(cfg)
		bigger.Name = fmt.Sprintf("prop+%s", axis.name)
		if err := bigger.Validate(); err != nil {
			t.Fatalf("grown config invalid along %s: %v", axis.name, err)
		}
		grown, err := Estimate(context.Background(), bigger)
		if err != nil {
			t.Fatalf("Estimate(context.Background(), grown %s): %v", axis.name, err)
		}
		if grown.AreaNative < base.AreaNative {
			t.Fatalf("trial %d: area shrank growing %s: %v -> %v (%+v)",
				i, axis.name, base.AreaNative, grown.AreaNative, cfg)
		}
		if grown.Area28nm < base.Area28nm {
			t.Fatalf("trial %d: 28nm area shrank growing %s: %v -> %v",
				i, axis.name, base.Area28nm, grown.Area28nm)
		}
		if grown.TotalJJs < base.TotalJJs {
			t.Fatalf("trial %d: JJ count shrank growing %s: %d -> %d",
				i, axis.name, base.TotalJJs, grown.TotalJJs)
		}
		if grown.StaticPower < base.StaticPower {
			t.Fatalf("trial %d: static power shrank growing %s: %v -> %v",
				i, axis.name, base.StaticPower, grown.StaticPower)
		}
	}
}

// TestPropertyPeakMACsScale checks the architectural identity PeakMACs =
// height × width × frequency over random configs.
func TestPropertyPeakMACsScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < propTrials; i++ {
		cfg := randomValidConfig(rng)
		res, err := Estimate(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := float64(cfg.ArrayHeight) * float64(cfg.ArrayWidth) * res.Frequency
		if res.PeakMACs != want {
			t.Fatalf("trial %d: PeakMACs %v != H*W*f %v", i, res.PeakMACs, want)
		}
	}
}
