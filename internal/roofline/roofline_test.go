package roofline

import (
	"testing"
	"testing/quick"

	"supernpu/internal/workload"
)

func baselineModel() Model {
	return Model{PeakMACs: 3366e12, Bandwidth: 300e9}
}

// Fig. 17: at a single batch, the workloads' roofline utilization on the
// Baseline is below 2% on average — the computing units are fast but idle.
func TestFig17SingleBatchUtilizationBelow2Percent(t *testing.T) {
	m := baselineModel()
	sum := 0.0
	for _, net := range workload.All() {
		u := m.Utilization(Intensity(net, 1))
		if u >= 0.03 {
			t.Errorf("%s: single-batch roofline utilization = %.2f%%, want < 3%%", net.Name, u*100)
		}
		if u <= 0 {
			t.Errorf("%s: utilization must be positive", net.Name)
		}
		sum += u
	}
	if avg := sum / 6; avg >= 0.02 {
		t.Errorf("average roofline utilization = %.2f%%, want < 2%% (Fig. 17)", avg*100)
	}
}

func TestRidgePoint(t *testing.T) {
	m := baselineModel()
	ridge := m.Ridge()
	// 3366 TMAC/s over 300 GB/s = 11220 MAC/byte.
	if ridge < 11000 || ridge > 11500 {
		t.Fatalf("ridge = %.0f MAC/byte, want ≈11220", ridge)
	}
	if m.Attainable(ridge) != m.PeakMACs {
		t.Fatal("at the ridge, attainable must equal peak")
	}
	if (Model{Bandwidth: 0}).Ridge() != 0 {
		t.Fatal("zero-bandwidth guard failed")
	}
}

func TestIntensityGrowsWithBatch(t *testing.T) {
	net := workload.ResNet50()
	i1, i8 := Intensity(net, 1), Intensity(net, 8)
	if i8 != 8*i1 {
		t.Fatalf("intensity must scale linearly with batch: %g vs %g", i1, i8)
	}
	empty := workload.Network{Name: "pool-only", Layers: nil}
	if Intensity(empty, 1) != 0 {
		t.Fatal("zero-weight guard failed")
	}
}

func TestMemoryVsComputeBound(t *testing.T) {
	m := baselineModel()
	low := m.Attainable(1) // 1 MAC/byte: deep in the memory-bound region
	if low != m.Bandwidth {
		t.Fatalf("memory-bound attainable = %g, want bandwidth-limited %g", low, m.Bandwidth)
	}
	if m.Attainable(1e9) != m.PeakMACs {
		t.Fatal("compute-bound attainable must clip at peak")
	}
}

// Property: attainable performance is monotone in intensity and never
// exceeds the peak.
func TestRooflineMonotonicityProperty(t *testing.T) {
	m := baselineModel()
	f := func(a, b uint32) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		return m.Attainable(x) <= m.Attainable(y)+1e-6 && m.Attainable(y) <= m.PeakMACs
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
