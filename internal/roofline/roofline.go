// Package roofline implements the roofline analysis of Fig. 17: for a given
// computational intensity — the paper defines it as the number of MAC
// operations executed per weight byte mapped on the PE array, which folds in
// the batch-size-driven data reuse — the attainable performance is the
// lesser of the compute peak and intensity × memory bandwidth.
package roofline

import "supernpu/internal/workload"

// Model is one machine's roofline.
type Model struct {
	PeakMACs  float64 // MAC/s
	Bandwidth float64 // bytes/s
}

// Attainable returns the roofline performance (MAC/s) at the intensity
// (MAC/byte).
func (m Model) Attainable(intensity float64) float64 {
	bound := intensity * m.Bandwidth
	if bound < m.PeakMACs {
		return bound
	}
	return m.PeakMACs
}

// Ridge returns the intensity (MAC/byte) at which the model turns
// compute-bound.
func (m Model) Ridge() float64 {
	if m.Bandwidth == 0 {
		return 0
	}
	return m.PeakMACs / m.Bandwidth
}

// Intensity is the paper's computational intensity of a workload at a batch
// size: every weight byte mapped on the PE is reused across the batch, so
// intensity grows linearly with the batch.
func Intensity(net workload.Network, batch int) float64 {
	wb := net.TotalWeightBytes()
	if wb == 0 {
		return 0
	}
	return float64(int64(batch)*net.TotalMACs()) / float64(wb)
}

// Utilization is roofline performance over peak at the given intensity —
// the "maximum PE utilization" of Fig. 17.
func (m Model) Utilization(intensity float64) float64 {
	if m.PeakMACs == 0 {
		return 0
	}
	return m.Attainable(intensity) / m.PeakMACs
}
