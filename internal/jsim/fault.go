package jsim

import (
	"context"

	"supernpu/internal/faultinject"
)

// PerturbedJTL builds an n-stage JTL whose junction critical currents carry
// the fault model's per-site Ic spread: junction i is scaled by
// IcScale("jsim/jtl/<i>") while the bias network stays tuned to the nominal
// Ic — exactly the situation of a fabricated chip, where the bias rails are
// designed against the target process but each junction lands somewhere on
// the spread. The shunt resistance is re-derived for βc = 1 at the
// perturbed Ic. A disabled model reproduces StandardJTL exactly.
func PerturbedJTL(n int, fm *faultinject.Model) *Chain {
	ch := StandardJTL(n)
	if !fm.Enabled() {
		return ch
	}
	for i := range ch.Nodes {
		ic := ch.Nodes[i].JJ.Ic * fm.IcScale("jsim/jtl/"+itoa(i))
		ch.Nodes[i].JJ = CriticallyDamped(ic, ch.Nodes[i].JJ.C)
	}
	return ch
}

// itoa is a minimal non-negative-int formatter (avoids strconv in hot sites).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// BiasMarginsFaulted measures the operating bias margins of a JTL whose
// junctions carry the fault model's C spread: the same bisection as
// BiasMargins, but over a PerturbedJTL and with the bias rails held at
// multiples of the nominal (design-point) critical current. Spread narrows
// the window from both sides — the weakest junction free-runs first at high
// bias, the strongest one sticks first at low bias — which is the physical
// quantity the MarginSweep exhibit plots. Results are memoised per fault
// key; a disabled model shares the nominal BiasMargins entry. Sweeps over
// many fault variants should prefer BiasMarginsFaultedBatch, which reuses
// one solver per worker across the whole grid.
func BiasMarginsFaulted(ctx context.Context, fm *faultinject.Model) (Margins, error) {
	return biasMarginsFaultedCached(ctx, fm, NewSolver())
}
