package jsim

import (
	"errors"

	"supernpu/internal/faultinject"
	"supernpu/internal/parallel"
	"supernpu/internal/sfq"
)

// PerturbedJTL builds an n-stage JTL whose junction critical currents carry
// the fault model's per-site Ic spread: junction i is scaled by
// IcScale("jsim/jtl/<i>") while the bias network stays tuned to the nominal
// Ic — exactly the situation of a fabricated chip, where the bias rails are
// designed against the target process but each junction lands somewhere on
// the spread. The shunt resistance is re-derived for βc = 1 at the
// perturbed Ic. A disabled model reproduces StandardJTL exactly.
func PerturbedJTL(n int, fm *faultinject.Model) *Chain {
	ch := StandardJTL(n)
	if !fm.Enabled() {
		return ch
	}
	for i := range ch.Nodes {
		ic := ch.Nodes[i].JJ.Ic * fm.IcScale("jsim/jtl/"+itoa(i))
		ch.Nodes[i].JJ = CriticallyDamped(ic, ch.Nodes[i].JJ.C)
	}
	return ch
}

// itoa is a minimal non-negative-int formatter (avoids strconv in hot sites).
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

// BiasMarginsFaulted measures the operating bias margins of a JTL whose
// junctions carry the fault model's C spread: the same bisection as
// BiasMargins, but over a PerturbedJTL and with the bias rails held at
// multiples of the nominal (design-point) critical current. Spread narrows
// the window from both sides — the weakest junction free-runs first at high
// bias, the strongest one sticks first at low bias — which is the physical
// quantity the MarginSweep exhibit plots. Results are memoised per fault
// key; a disabled model shares the nominal BiasMargins entry.
func BiasMarginsFaulted(fm *faultinject.Model) (Margins, error) {
	if !fm.Enabled() {
		return BiasMargins()
	}
	v, err := cache.GetOrCompute("bias-margins/10"+fm.Key(), func() (any, error) {
		return biasMarginsFaulted(fm)
	})
	if err != nil {
		return Margins{}, err
	}
	return v.(Margins), nil
}

func biasMarginsFaulted(fm *faultinject.Model) (Margins, error) {
	const (
		stages    = 10
		nominalIc = 100e-6 // the bias rails are designed against this
		nominal   = 0.7
	)
	works := func(bias float64) bool {
		ch := PerturbedJTL(stages, fm)
		for i := range ch.Nodes {
			ch.Nodes[i].Bias = bias * nominalIc
		}
		res, err := ch.Run(140*sfq.Picosecond, 0.05*sfq.Picosecond)
		if err != nil {
			return false
		}
		for i := 0; i < stages; i++ {
			if res.Slips(i) != 1 {
				return false
			}
		}
		return true
	}
	if !works(nominal) {
		// The spread closed the window at the design point outright: the
		// chip margin is zero.
		return Margins{Low: nominal, High: nominal}, nil
	}
	bisect := func(bad, good float64) float64 {
		for i := 0; i < 12; i++ {
			mid := (bad + good) / 2
			if works(mid) {
				good = mid
			} else {
				bad = mid
			}
		}
		return good
	}
	if works(1.5) {
		return Margins{}, errors.New("jsim: perturbed JTL still single-pulses at 1.5x Ic; overbias bound not bracketed")
	}
	arms, err := parallel.Map(2, func(i int) (float64, error) {
		if i == 0 {
			return bisect(0.0, nominal), nil
		}
		return bisect(1.5, nominal), nil
	})
	if err != nil {
		return Margins{}, err
	}
	return Margins{Low: arms[0], High: arms[1]}, nil
}
