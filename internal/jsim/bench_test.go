package jsim

import (
	"context"
	"testing"

	"supernpu/internal/sfq"
)

// BenchmarkRunDense measures the legacy dense-history API (now a wrapper
// over the streaming solver + DenseRecorder): a 12-stage JTL transient with
// the full phase/energy history materialised.
func BenchmarkRunDense(b *testing.B) {
	ch := StandardJTL(12)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Run(context.Background(), 120*sfq.Picosecond, 0.02*sfq.Picosecond); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunStreaming measures the same transient through a reused Solver
// and streaming observers — the sweep-engine hot path. Steady state is
// allocation-free (pinned by TestSolverSteadyStateAllocs).
func BenchmarkRunStreaming(b *testing.B) {
	ch := StandardJTL(12)
	var (
		s      Solver
		pulse  PulseDetector
		energy EnergyAccumulator
		fin    FinalState
	)
	obs := []Observer{&pulse, &energy, &fin}
	if err := s.RunChain(context.Background(), ch, 120*sfq.Picosecond, 0.02*sfq.Picosecond, obs...); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.RunChain(context.Background(), ch, 120*sfq.Picosecond, 0.02*sfq.Picosecond, obs...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBiasMargins measures one full nominal bias-margin evaluation
// (~28 transient probes across two bisection arms).
func BenchmarkBiasMargins(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := biasMargins(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunBatch measures the batched chain runner amortising one solver
// per worker across eight independent JTL transients.
func BenchmarkRunBatch(b *testing.B) {
	const n = 8
	jobs := make([]BatchJob, n)
	fins := make([]FinalState, n)
	for i := range jobs {
		jobs[i] = BatchJob{
			Chain:     StandardJTL(12),
			T:         120 * sfq.Picosecond,
			Dt:        0.02 * sfq.Picosecond,
			Observers: []Observer{&fins[i]},
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := RunBatch(context.Background(), jobs); err != nil {
			b.Fatal(err)
		}
	}
}
