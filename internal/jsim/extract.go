package jsim

import (
	"context"
	"errors"
	"fmt"

	"supernpu/internal/guard"
	"supernpu/internal/sfq"
	"supernpu/internal/simcache"
)

// cache memoises the RCSJ extractions (gate parameters, setup time, bias
// margins): each is a deterministic transient over a fixed netlist, yet
// Fig. 7 re-runs the JTL extraction on every exhibit regeneration.
var cache = simcache.New[any]()

func init() { simcache.Register("jsim", cache) }

// GateParams are the gate-level quantities the paper extracts from JSIM runs
// to feed the estimator (Fig. 10: delay, static power, dynamic energy).
type GateParams struct {
	// StageDelay is the pulse propagation delay per JTL stage.
	StageDelay float64 // seconds
	// SwitchEnergyPerJJ is the bias energy drawn per junction per fluxon.
	SwitchEnergyPerJJ float64 // joules
	// StaticPowerPerJJ is the DC dissipation per junction (RSFQ biasing).
	StaticPowerPerJJ float64 // watts
}

// ExtractJTLParams runs a transient simulation of a standard JTL and
// measures the per-stage propagation delay and per-junction switching
// energy, the same extraction the paper performs with JSIM against the AIST
// 1.0 µm cell library. The extraction is memoised; only the first call pays
// for the transient.
func ExtractJTLParams(ctx context.Context) (GateParams, error) {
	v, err := cache.GetOrCompute("jtl-params/12", func() (any, error) {
		return extractJTLParams(ctx)
	})
	if err != nil {
		return GateParams{}, err
	}
	return v.(GateParams), nil
}

func extractJTLParams(ctx context.Context) (GateParams, error) {
	const stages = 12
	chain := StandardJTL(stages)
	// Streaming extraction: pulse times, bias energy and final phases are
	// accumulated in-stream, so the transient never materialises its dense
	// O(steps·nodes) history. The run goes through the refined-dt recovery
	// path: a numeric failure re-runs at a halved step (bounded by
	// MaxDtRetries); the healthy extraction takes the first attempt at the
	// nominal dt and is byte-identical to a plain run.
	var (
		pulse  PulseDetector
		energy EnergyAccumulator
		fin    FinalState
	)
	s := NewSolver()
	if _, err := s.RunChainRefined(ctx, chain, 120*sfq.Picosecond, 0.02*sfq.Picosecond, &pulse, &energy, &fin); err != nil {
		return GateParams{}, err
	}

	// Delay: measure between interior nodes to avoid launch and
	// termination edge effects.
	first, last := 2, stages-3
	t0 := pulse.Times(first)
	t1 := pulse.Times(last)
	if len(t0) == 0 || len(t1) == 0 {
		return GateParams{}, errors.New("jsim: pulse did not propagate through the JTL")
	}
	delay := (t1[0] - t0[0]) / float64(last-first)
	if delay <= 0 {
		return GateParams{}, fmt.Errorf("jsim: non-positive stage delay %g", delay)
	}

	// Switching energy: total bias energy divided by the junctions that
	// slipped. (∫ I_bias·V dt = I_bias·Φ0 per 2π slip.)
	slipped := 0
	for i := 0; i < stages; i++ {
		slipped += fin.Slips(i)
	}
	if slipped == 0 {
		return GateParams{}, errors.New("jsim: no junction switched")
	}
	perJJ := energy.Total() / float64(slipped)

	// Static power: the RSFQ bias resistor network dissipates V_bias·I_bias
	// per junction continuously, independent of activity.
	p := sfq.AIST10()
	return GateParams{
		StageDelay:        delay,
		SwitchEnergyPerJJ: perJJ,
		StaticPowerPerJJ:  p.StaticPowerPerJJ(sfq.RSFQ),
	}, nil
}

// StorageChain builds the storage-loop experiment that demonstrates the DFF
// working principle of Fig. 1(c): a JTL feeding a high-inductance quantizing
// loop whose underbiased output junction holds the incoming fluxon until a
// clock pulse releases it.
//
// If clockAt > 0 a trigger pulse is injected at the storage junction at that
// time; with clockAt <= 0 the fluxon must stay parked in the loop.
func StorageChain(clockAt float64) *Chain {
	const (
		ic = 100e-6
		c  = 0.24e-12
	)
	ltl := 3 * phi0over2pi / ic   // normal JTL coupling, βL = 3
	lbig := 12 * phi0over2pi / ic // quantizing storage loop, βL = 12

	const n = 8
	store := 4 // index of the storage junction
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{JJ: CriticallyDamped(ic, c), Bias: 0.7 * ic, LNext: ltl}
	}
	// The storage loop: large inductor into the storage junction, which is
	// underbiased so the arriving fluxon cannot switch it on its own.
	nodes[store-1].LNext = lbig
	nodes[store].Bias = 0.40 * ic

	ch := &Chain{
		Nodes: nodes,
		Sources: []PulseSource{
			{Node: 0, At: 20e-12, Sigma: 1.2e-12, Amp: 1.6 * ic},
		},
	}
	if clockAt > 0 {
		ch.Sources = append(ch.Sources, PulseSource{
			Node: store, At: clockAt, Sigma: 1.2e-12, Amp: 1.8 * ic,
		})
	}
	return ch
}

// DFFDemo runs the two storage-loop transients (without and with a clock
// pulse) and reports whether the chain stores the fluxon until clocked —
// the defining behaviour of the SFQ delay flip-flop. It returns an error if
// either transient fails or if the observed behaviour is not store/release.
func DFFDemo(ctx context.Context) error {
	const (
		T       = 160 * sfq.Picosecond
		dt      = 0.02 * sfq.Picosecond
		clockAt = 80 * sfq.Picosecond
		store   = 4
		out     = 6
	)

	// The two transients are independent netlists; the batched runner fans
	// them out across the pool, streaming each into its own observers.
	var (
		held     FinalState
		released FinalState
		relPulse PulseDetector
	)
	err := RunBatch(ctx, []BatchJob{
		{Chain: StorageChain(0), T: T, Dt: dt, Observers: []Observer{&held}},
		{Chain: StorageChain(clockAt), T: T, Dt: dt, Observers: []Observer{&released, &relPulse}},
	})
	if err != nil {
		return err
	}
	if held.Slips(store-1) < 1 {
		return errors.New("jsim: input fluxon never reached the storage loop")
	}
	if held.Slips(out) != 0 {
		return errors.New("jsim: fluxon leaked past the storage junction without a clock")
	}

	if released.Slips(out) < 1 {
		return errors.New("jsim: clock pulse failed to release the stored fluxon")
	}
	outTimes := relPulse.Times(out)
	if len(outTimes) == 0 || outTimes[0] < clockAt {
		return errors.New("jsim: output pulse appeared before the clock")
	}
	return nil
}

// ExtractSetupTime measures the storage cell's setup time — the minimum
// interval by which the data pulse must precede the clock pulse for the
// stored fluxon to be released correctly — by bisecting the data→clock
// separation on the storage-loop circuit. This is the timing-parameter
// extraction the gate-level estimation layer performs against JSIM
// (Section IV-A1). The extraction is memoised.
func ExtractSetupTime(ctx context.Context) (float64, error) {
	v, err := cache.GetOrCompute("setup-time", func() (any, error) {
		return extractSetupTime(ctx)
	})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

func extractSetupTime(ctx context.Context) (float64, error) {
	const (
		T      = 200 * sfq.Picosecond
		dt     = 0.05 * sfq.Picosecond
		dataAt = 20 * sfq.Picosecond
		out    = 6
	)
	// Reference: the data pulse passing the last shared JTL stage before
	// the storage inductor. The setup time is how long after that instant
	// the loop needs to charge before a clock pulse reads it out. One
	// solver is reused across the probe and every bisection transient.
	s := NewSolver()
	var pulse PulseDetector
	if err := s.RunChain(ctx, StorageChain(0), 80*sfq.Picosecond, dt, &pulse); err != nil {
		return 0, err
	}
	ref := pulse.Times(2)
	if len(ref) == 0 {
		return 0, errors.New("jsim: data pulse never reached the storage loop")
	}
	arrive := ref[0]

	var fin FinalState
	relObs := []Observer{&fin}
	// probeErr latches non-numeric failures (cancellation, budget): they
	// describe the attempt, not the cell, so they must abort the bisection
	// instead of masquerading as "did not release".
	var probeErr error
	releases := func(sep float64) bool {
		if probeErr != nil {
			return false
		}
		if err := s.RunChain(ctx, StorageChain(arrive+sep), T, dt, relObs...); err != nil {
			if !guard.IsNumeric(err) {
				probeErr = err
			}
			return false
		}
		return fin.Slips(out) >= 1
	}
	// Establish a working upper bound.
	hi := 40 * sfq.Picosecond
	if !releases(hi) {
		if probeErr != nil {
			return 0, probeErr
		}
		return 0, errors.New("jsim: storage cell fails even with a generous setup interval")
	}
	lo := -10 * sfq.Picosecond
	if releases(lo) {
		return 0, errors.New("jsim: storage cell released before the data pulse settled")
	}
	for i := 0; i < 14; i++ {
		mid := (lo + hi) / 2
		if releases(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	if probeErr != nil {
		return 0, probeErr
	}
	return hi, nil
}
