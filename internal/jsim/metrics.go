// Solver instruments. They live in their own file because the solver code
// conventionally names its observer slices "obs", which would shadow the
// metrics package inside those functions; here the instruments are bound
// to package-level variables once, and the increment sites never need the
// import. All four are always-live counters (one atomic add, zero
// allocations), so the solver's zero-allocation steady state holds with
// instrumentation enabled — TestSolverSteadyStateAllocs proves it.
//
// The instruments are write-only from this package: nothing the solver
// computes reads them back (enforced by the supernpu-lint obsflow rule).

package jsim

import "supernpu/internal/obs"

var (
	mTransients = obs.Default.Counter("supernpu_jsim_transients_total", "transient solves completed by the streaming solver")
	mSteps      = obs.Default.Counter("supernpu_jsim_steps_total", "RK4 steps integrated across all transients")
	mPulses     = obs.Default.Counter("supernpu_jsim_pulses_total", "2*pi phase crossings recorded by PulseDetector observers")
	mDiverged   = obs.Default.Counter("supernpu_jsim_diverged_total", "transient solves aborted on a non-finite phase")
)
