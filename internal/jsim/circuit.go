package jsim

import (
	"context"
	"errors"

	"supernpu/internal/parallel"
	"supernpu/internal/sfq"
)

// Link is an inductive coupling between two junction nodes of a Circuit.
type Link struct {
	A, B int
	L    float64 // henries
}

// Circuit generalises Chain to an arbitrary junction/inductor graph, which
// is what branching cells (splitters, confluence buffers) need: a node may
// couple to any number of neighbours.
type Circuit struct {
	Nodes   []Node // LNext is ignored; Links carries the couplings
	Links   []Link
	Sources []PulseSource
}

// SplitterTree builds a JTL that fans out through a splitter node into two
// output arms — the wire cell that duplicates every pulse (Fig. 4's "S").
// The branch junction carries a higher critical current so it can drive
// both arms, exactly as laid-out splitter cells do.
func SplitterTree(armLen int) *Circuit {
	const (
		ic = 100e-6
		c  = 0.24e-12
	)
	l := 3 * phi0over2pi / ic

	ckt := &Circuit{}
	addNode := func(icScale float64) int {
		jj := CriticallyDamped(ic*icScale, c*icScale)
		ckt.Nodes = append(ckt.Nodes, Node{JJ: jj, Bias: 0.7 * ic * icScale})
		return len(ckt.Nodes) - 1
	}

	// Input JTL: three stages into the branch node.
	prev := addNode(1)
	for i := 0; i < 2; i++ {
		n := addNode(1)
		ckt.Links = append(ckt.Links, Link{A: prev, B: n, L: l})
		prev = n
	}
	// The branch node: 1.4× junction drives two arms.
	branch := addNode(1.4)
	ckt.Links = append(ckt.Links, Link{A: prev, B: branch, L: l})

	for arm := 0; arm < 2; arm++ {
		p := branch
		for i := 0; i < armLen; i++ {
			n := addNode(1)
			ckt.Links = append(ckt.Links, Link{A: p, B: n, L: l * 1.2})
			p = n
		}
	}
	ckt.Sources = []PulseSource{{Node: 0, At: 20e-12, Sigma: 1.2e-12, Amp: 1.8 * ic}}
	return ckt
}

// ArmEnds returns the terminal node indices of a SplitterTree(armLen).
func (c *Circuit) ArmEnds(armLen int) (int, int) {
	n := len(c.Nodes)
	return n - 1 - armLen, n - 1
}

// Run integrates the circuit with RK4, like Chain.Run but over the link
// graph, and materialises the dense trajectory. Like Chain.Run it is the
// legacy dense API over a DenseRecorder; see RunObserved for streaming.
func (c *Circuit) Run(ctx context.Context, T, dt float64) (*Result, error) {
	var rec DenseRecorder
	var s Solver
	if err := s.RunCircuit(ctx, c, T, dt, &rec); err != nil {
		return nil, err
	}
	return rec.Result(), nil
}

// RunObserved integrates the circuit, streaming every sample to the
// observers instead of materialising a dense history. It uses a fresh
// Solver; for repeated runs, reuse a Solver directly.
func (c *Circuit) RunObserved(ctx context.Context, T, dt float64, obs ...Observer) error {
	var s Solver
	return s.RunCircuit(ctx, c, T, dt, obs...)
}

// Margins is an operating-margin analysis result: the bias range (as a
// fraction of the nominal point) over which a cell still functions — the
// standard robustness metric of SFQ cell characterisation.
type Margins struct {
	Low, High float64 // working bias limits as multiples of Ic
}

// Width is the relative margin width around the nominal 0.7·Ic point.
func (m Margins) Width() float64 { return m.High - m.Low }

// BiasMargins measures the JTL's operating bias margins by bisection: the
// lowest and highest global bias (in multiples of Ic) at which a 10-stage
// line still delivers exactly one pulse per injected fluxon. SFQ cells are
// typically quoted with ±20–30% bias margins. The result is memoised (a
// canceled computation is evicted, not poisoned in); the two bisection
// arms run concurrently, each transient its own netlist.
func BiasMargins(ctx context.Context) (Margins, error) {
	v, err := cache.GetOrCompute("bias-margins/10", func() (any, error) {
		return biasMargins(ctx)
	})
	if err != nil {
		return Margins{}, err
	}
	return v.(Margins), nil
}

// Bisection probe parameters shared by the nominal and faulted margin
// analyses: a 10-stage line observed for 140 ps at a 0.05 ps step.
const (
	marginProbeT  = 140 * sfq.Picosecond
	marginProbeDt = 0.05 * sfq.Picosecond
)

// newNominalProbe builds a fresh nominal-JTL margin probe on the solver.
func newNominalProbe(ctx context.Context, s *Solver) *marginProbe {
	ch := StandardJTL(10)
	return newMarginProbe(ctx, s, ch, perJunctionIc(ch), marginProbeT, marginProbeDt)
}

func biasMargins(ctx context.Context) (Margins, error) {
	const nominal = 0.7
	probe := newNominalProbe(ctx, NewSolver())
	if !probe.works(nominal) {
		if err := probe.err; err != nil {
			return Margins{}, err
		}
		return Margins{}, errors.New("jsim: JTL fails at the nominal bias point")
	}
	// The two bisection arms run concurrently, each reusing one solver and
	// one chain across its probes.
	arms, err := parallel.MapLocalContext(ctx, 2,
		func() *marginProbe { return newNominalProbe(ctx, NewSolver()) },
		func(ctx context.Context, p *marginProbe, i int) (float64, error) {
			var v float64
			if i == 0 {
				v = p.bisect(0.0, nominal)
			} else {
				v = p.bisect(1.2, nominal)
			}
			return v, p.err
		})
	if err != nil {
		return Margins{}, err
	}
	return Margins{Low: arms[0], High: arms[1]}, nil
}
