package jsim

import (
	"errors"
	"fmt"
	"math"

	"supernpu/internal/parallel"
	"supernpu/internal/sfq"
)

// Link is an inductive coupling between two junction nodes of a Circuit.
type Link struct {
	A, B int
	L    float64 // henries
}

// Circuit generalises Chain to an arbitrary junction/inductor graph, which
// is what branching cells (splitters, confluence buffers) need: a node may
// couple to any number of neighbours.
type Circuit struct {
	Nodes   []Node // LNext is ignored; Links carries the couplings
	Links   []Link
	Sources []PulseSource
}

// SplitterTree builds a JTL that fans out through a splitter node into two
// output arms — the wire cell that duplicates every pulse (Fig. 4's "S").
// The branch junction carries a higher critical current so it can drive
// both arms, exactly as laid-out splitter cells do.
func SplitterTree(armLen int) *Circuit {
	const (
		ic = 100e-6
		c  = 0.24e-12
	)
	l := 3 * phi0over2pi / ic

	ckt := &Circuit{}
	addNode := func(icScale float64) int {
		jj := CriticallyDamped(ic*icScale, c*icScale)
		ckt.Nodes = append(ckt.Nodes, Node{JJ: jj, Bias: 0.7 * ic * icScale})
		return len(ckt.Nodes) - 1
	}

	// Input JTL: three stages into the branch node.
	prev := addNode(1)
	for i := 0; i < 2; i++ {
		n := addNode(1)
		ckt.Links = append(ckt.Links, Link{A: prev, B: n, L: l})
		prev = n
	}
	// The branch node: 1.4× junction drives two arms.
	branch := addNode(1.4)
	ckt.Links = append(ckt.Links, Link{A: prev, B: branch, L: l})

	for arm := 0; arm < 2; arm++ {
		p := branch
		for i := 0; i < armLen; i++ {
			n := addNode(1)
			ckt.Links = append(ckt.Links, Link{A: p, B: n, L: l * 1.2})
			p = n
		}
	}
	ckt.Sources = []PulseSource{{Node: 0, At: 20e-12, Sigma: 1.2e-12, Amp: 1.8 * ic}}
	return ckt
}

// ArmEnds returns the terminal node indices of a SplitterTree(armLen).
func (c *Circuit) ArmEnds(armLen int) (int, int) {
	n := len(c.Nodes)
	return n - 1 - armLen, n - 1
}

// Run integrates the circuit with RK4, like Chain.Run but over the link
// graph.
func (c *Circuit) Run(T, dt float64) (*Result, error) {
	if dt <= 0 || T <= 0 {
		return nil, errors.New("jsim: T and dt must be positive")
	}
	n := len(c.Nodes)
	if n == 0 {
		return nil, errors.New("jsim: empty circuit")
	}
	for _, lk := range c.Links {
		if lk.A < 0 || lk.A >= n || lk.B < 0 || lk.B >= n || lk.L <= 0 {
			return nil, fmt.Errorf("jsim: invalid link %+v", lk)
		}
	}
	steps := int(T/dt) + 1

	phi := make([]float64, n)
	v := make([]float64, n)
	for i, nd := range c.Nodes {
		r := nd.Bias / nd.JJ.Ic
		if r > 0.999 {
			r = 0.999
		}
		if r < -0.999 {
			r = -0.999
		}
		phi[i] = math.Asin(r)
	}

	// Adjacency with inverse inductances.
	type nb struct {
		node int
		invL float64
	}
	adj := make([][]nb, n)
	for _, lk := range c.Links {
		adj[lk.A] = append(adj[lk.A], nb{lk.B, 1 / lk.L})
		adj[lk.B] = append(adj[lk.B], nb{lk.A, 1 / lk.L})
	}

	deriv := func(t float64, phi, v, dphi, dv []float64) {
		for i := 0; i < n; i++ {
			jj := c.Nodes[i].JJ
			cur := c.Nodes[i].Bias
			for _, s := range c.Sources {
				if s.Node == i {
					cur += s.current(t)
				}
			}
			for _, e := range adj[i] {
				cur += phi0over2pi * (phi[e.node] - phi[i]) * e.invL
			}
			cur -= jj.Ic * math.Sin(phi[i])
			cur -= phi0over2pi * v[i] / jj.R
			dphi[i] = v[i]
			dv[i] = cur / (jj.C * phi0over2pi)
		}
	}

	res := &Result{Dt: dt}
	k1p, k1v := make([]float64, n), make([]float64, n)
	k2p, k2v := make([]float64, n), make([]float64, n)
	k3p, k3v := make([]float64, n), make([]float64, n)
	k4p, k4v := make([]float64, n), make([]float64, n)
	tp, tv := make([]float64, n), make([]float64, n)

	energy := 0.0
	for s := 0; s < steps; s++ {
		t := float64(s) * dt
		snap := make([]float64, n)
		copy(snap, phi)
		res.Phases = append(res.Phases, snap)
		res.BiasEnergy = append(res.BiasEnergy, energy)

		deriv(t, phi, v, k1p, k1v)
		for i := 0; i < n; i++ {
			tp[i] = phi[i] + 0.5*dt*k1p[i]
			tv[i] = v[i] + 0.5*dt*k1v[i]
		}
		deriv(t+0.5*dt, tp, tv, k2p, k2v)
		for i := 0; i < n; i++ {
			tp[i] = phi[i] + 0.5*dt*k2p[i]
			tv[i] = v[i] + 0.5*dt*k2v[i]
		}
		deriv(t+0.5*dt, tp, tv, k3p, k3v)
		for i := 0; i < n; i++ {
			tp[i] = phi[i] + dt*k3p[i]
			tv[i] = v[i] + dt*k3v[i]
		}
		deriv(t+dt, tp, tv, k4p, k4v)

		for i := 0; i < n; i++ {
			phi[i] += dt / 6 * (k1p[i] + 2*k2p[i] + 2*k3p[i] + k4p[i])
			v[i] += dt / 6 * (k1v[i] + 2*k2v[i] + 2*k3v[i] + k4v[i])
			if math.IsNaN(phi[i]) || math.IsInf(phi[i], 0) {
				return nil, fmt.Errorf("jsim: circuit diverged at t=%.3gps node %d", t/sfq.Picosecond, i)
			}
			energy += c.Nodes[i].Bias * phi0over2pi * v[i] * dt
		}
	}
	return res, nil
}

// Margins is an operating-margin analysis result: the bias range (as a
// fraction of the nominal point) over which a cell still functions — the
// standard robustness metric of SFQ cell characterisation.
type Margins struct {
	Low, High float64 // working bias limits as multiples of Ic
}

// Width is the relative margin width around the nominal 0.7·Ic point.
func (m Margins) Width() float64 { return m.High - m.Low }

// BiasMargins measures the JTL's operating bias margins by bisection: the
// lowest and highest global bias (in multiples of Ic) at which a 10-stage
// line still delivers exactly one pulse per injected fluxon. SFQ cells are
// typically quoted with ±20–30% bias margins. The result is memoised; the
// two bisection arms run concurrently, each transient its own netlist.
func BiasMargins() (Margins, error) {
	v, err := cache.GetOrCompute("bias-margins/10", func() (any, error) {
		return biasMargins()
	})
	if err != nil {
		return Margins{}, err
	}
	return v.(Margins), nil
}

func biasMargins() (Margins, error) {
	works := func(bias float64) bool {
		ch := StandardJTL(10)
		for i := range ch.Nodes {
			ch.Nodes[i].Bias = bias * ch.Nodes[i].JJ.Ic
		}
		res, err := ch.Run(140*sfq.Picosecond, 0.05*sfq.Picosecond)
		if err != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			if res.Slips(i) != 1 {
				return false
			}
		}
		return true
	}
	const nominal = 0.7
	if !works(nominal) {
		return Margins{}, errors.New("jsim: JTL fails at the nominal bias point")
	}
	bisect := func(bad, good float64) float64 {
		for i := 0; i < 12; i++ {
			mid := (bad + good) / 2
			if works(mid) {
				good = mid
			} else {
				bad = mid
			}
		}
		return good
	}
	arms, err := parallel.Map(2, func(i int) (float64, error) {
		if i == 0 {
			return bisect(0.0, nominal), nil
		}
		return bisect(1.2, nominal), nil
	})
	if err != nil {
		return Margins{}, err
	}
	return Margins{Low: arms[0], High: arms[1]}, nil
}
