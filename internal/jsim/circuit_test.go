package jsim

import (
	"context"
	"testing"

	"supernpu/internal/sfq"
)

// A splitter duplicates every pulse: one injected fluxon must arrive at
// both arm ends exactly once (Fig. 2's "S" wire cell).
func TestSplitterDuplicatesPulse(t *testing.T) {
	const armLen = 4
	ckt := SplitterTree(armLen)
	res, err := ckt.Run(context.Background(), 140*sfq.Picosecond, 0.02*sfq.Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	endA, endB := ckt.ArmEnds(armLen)
	if got := res.Slips(endA); got != 1 {
		t.Errorf("arm A end slipped %d times, want 1", got)
	}
	if got := res.Slips(endB); got != 1 {
		t.Errorf("arm B end slipped %d times, want 1", got)
	}
	// Both arms see the pulse at (nearly) the same time — the identical
	// pulses of the splitter definition.
	ta, tb := res.PulseTimes(endA), res.PulseTimes(endB)
	if len(ta) != 1 || len(tb) != 1 {
		t.Fatalf("arm pulse counts: %d / %d, want 1 / 1", len(ta), len(tb))
	}
	diff := ta[0] - tb[0]
	if diff < 0 {
		diff = -diff
	}
	if diff > 1*sfq.Picosecond {
		t.Errorf("arm arrival skew = %.2f ps, want symmetric (< 1 ps)", diff/sfq.Picosecond)
	}
}

func TestSplitterQuiescentWithoutInput(t *testing.T) {
	ckt := SplitterTree(3)
	ckt.Sources = nil
	res, err := ckt.Run(context.Background(), 100*sfq.Picosecond, 0.05*sfq.Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ckt.Nodes {
		if res.Slips(i) != 0 {
			t.Fatalf("node %d switched without stimulus", i)
		}
	}
}

func TestCircuitValidation(t *testing.T) {
	empty := &Circuit{}
	if _, err := empty.Run(context.Background(), 1e-11, 1e-15); err == nil {
		t.Error("empty circuit must be rejected")
	}
	bad := SplitterTree(2)
	bad.Links = append(bad.Links, Link{A: 0, B: 999, L: 1e-12})
	if _, err := bad.Run(context.Background(), 1e-11, 1e-15); err == nil {
		t.Error("out-of-range link must be rejected")
	}
	badL := SplitterTree(2)
	badL.Links[0].L = 0
	if _, err := badL.Run(context.Background(), 1e-11, 1e-15); err == nil {
		t.Error("non-positive inductance must be rejected")
	}
	if _, err := SplitterTree(2).Run(context.Background(), 0, 1e-15); err == nil {
		t.Error("non-positive T must be rejected")
	}
}

// Operating margins: the JTL must work over a healthy bias window around
// the nominal 0.7·Ic — the robustness SFQ cell libraries are quoted with.
func TestBiasMargins(t *testing.T) {
	m, err := BiasMargins(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if m.Low >= 0.7 || m.High <= 0.7 {
		t.Fatalf("margins [%.2f, %.2f] must bracket the nominal 0.7·Ic", m.Low, m.High)
	}
	if m.Width() < 0.2 {
		t.Errorf("margin width = %.2f·Ic, want at least ±10%% around nominal", m.Width())
	}
	if m.High > 1.2 || m.Low < 0.0 {
		t.Errorf("margins [%.2f, %.2f] outside physical range", m.Low, m.High)
	}
}

// Setup-time extraction: the storage cell needs the data pulse to settle
// for a few picoseconds before a clock pulse can read it out — the SetupTime
// the cell library carries (DFF: 4.5 ps).
func TestExtractSetupTime(t *testing.T) {
	ts, err := ExtractSetupTime(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ts < 0.1*sfq.Picosecond || ts > 20*sfq.Picosecond {
		t.Fatalf("extracted setup time = %.2f ps, want a few ps", ts/sfq.Picosecond)
	}
}
