package jsim

import (
	"context"
	"math"
	"testing"

	"supernpu/internal/sfq"
)

func TestRunInputValidation(t *testing.T) {
	c := StandardJTL(4)
	if _, err := c.Run(context.Background(), 0, 1e-15); err == nil {
		t.Error("Run must reject non-positive T")
	}
	if _, err := c.Run(context.Background(), 1e-11, 0); err == nil {
		t.Error("Run must reject non-positive dt")
	}
	empty := &Chain{}
	if _, err := empty.Run(context.Background(), 1e-11, 1e-15); err == nil {
		t.Error("Run must reject an empty chain")
	}
}

func TestCriticallyDamped(t *testing.T) {
	jj := CriticallyDamped(100e-6, 0.24e-12)
	// βc = 2π·Ic·R²·C/Φ0 must be 1.
	betaC := jj.Ic * jj.R * jj.R * jj.C / phi0over2pi
	if math.Abs(betaC-1) > 1e-9 {
		t.Fatalf("βc = %g, want 1", betaC)
	}
}

// The core physics: a single flux quantum propagates down a JTL as a 2π
// phase slip, every junction slips exactly once, and the pulse arrives at
// later nodes at later times.
func TestFluxonPropagatesDownJTL(t *testing.T) {
	const n = 10
	res, err := StandardJTL(n).Run(context.Background(), 120*sfq.Picosecond, 0.02*sfq.Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if got := res.Slips(i); got != 1 {
			t.Errorf("node %d slipped %d times, want exactly 1", i, got)
		}
	}
	prev := -1.0
	for i := 1; i < n-1; i++ {
		times := res.PulseTimes(i)
		if len(times) != 1 {
			t.Fatalf("node %d: %d pulses, want 1", i, len(times))
		}
		if times[0] <= prev {
			t.Fatalf("pulse must arrive later at node %d (%.3gps ≤ %.3gps)",
				i, times[0]/sfq.Picosecond, prev/sfq.Picosecond)
		}
		prev = times[0]
	}
}

func TestNoSpontaneousSwitching(t *testing.T) {
	// A biased chain with no input pulse must stay quiescent: the bias is
	// below Ic, so no junction may slip.
	c := StandardJTL(6)
	c.Sources = nil
	res, err := c.Run(context.Background(), 100*sfq.Picosecond, 0.02*sfq.Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if res.Slips(i) != 0 {
			t.Fatalf("node %d switched with no stimulus", i)
		}
	}
	// Quiescent superconducting circuit draws no bias energy (V = 0).
	if e := res.TotalBiasEnergy(); math.Abs(e) > 1e-21 {
		t.Fatalf("quiescent bias energy = %g J, want ~0", e)
	}
}

// The extraction the estimator is anchored on: per-stage delay on the ps
// scale and switching energy of order I_bias·Φ0 per junction.
func TestExtractJTLParams(t *testing.T) {
	p, err := ExtractJTLParams(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if p.StageDelay < 0.5*sfq.Picosecond || p.StageDelay > 10*sfq.Picosecond {
		t.Errorf("stage delay = %.3g ps, want ps-scale (0.5..10)", p.StageDelay/sfq.Picosecond)
	}
	// ∫ I_bias·V dt = I_bias·Φ0 = 0.7·100µA·Φ0 ≈ 0.145 aJ per slip.
	want := 0.7 * 100e-6 * sfq.FluxQuantum
	if math.Abs(p.SwitchEnergyPerJJ-want)/want > 0.15 {
		t.Errorf("switch energy per JJ = %.3g aJ, want ≈ %.3g aJ (I_bias·Φ0)",
			p.SwitchEnergyPerJJ/sfq.Attojoule, want/sfq.Attojoule)
	}
	if p.StaticPowerPerJJ <= 0 {
		t.Error("RSFQ static power per JJ must be positive")
	}
}

// The extracted switching energy must agree with the cell library's per-JJ
// constant: this is the validation link between the circuit level and the
// analytical gate level.
func TestExtractionMatchesCellLibrary(t *testing.T) {
	p, err := ExtractJTLParams(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lib := sfq.AIST10()
	rel := math.Abs(p.SwitchEnergyPerJJ-lib.SwitchEnergyPerJJ) / lib.SwitchEnergyPerJJ
	if rel > 0.10 {
		t.Errorf("circuit-level energy %.3g aJ deviates %.1f%% from library %.3g aJ (want <10%%)",
			p.SwitchEnergyPerJJ/sfq.Attojoule, rel*100, lib.SwitchEnergyPerJJ/sfq.Attojoule)
	}
}

// The DFF working principle of Fig. 1(c): store until clocked, then release.
func TestStorageLoopDFFPrinciple(t *testing.T) {
	if err := DFFDemo(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestBiasDelayTradeoff(t *testing.T) {
	// Higher bias current → faster switching → lower propagation delay.
	delayAt := func(bias float64) float64 {
		c := StandardJTL(10)
		for i := range c.Nodes {
			c.Nodes[i].Bias = bias * c.Nodes[i].JJ.Ic
		}
		res, err := c.Run(context.Background(), 140*sfq.Picosecond, 0.02*sfq.Picosecond)
		if err != nil {
			t.Fatal(err)
		}
		a, b := res.PulseTimes(2), res.PulseTimes(7)
		if len(a) == 0 || len(b) == 0 {
			t.Fatalf("pulse lost at bias %.2f·Ic", bias)
		}
		return (b[0] - a[0]) / 5
	}
	low, high := delayAt(0.65), delayAt(0.85)
	if high >= low {
		t.Fatalf("delay must fall with bias: 0.65·Ic → %.3gps, 0.85·Ic → %.3gps",
			low/sfq.Picosecond, high/sfq.Picosecond)
	}
}

func TestDivergenceDetection(t *testing.T) {
	// An absurdly large step must be caught, not silently produce NaNs.
	c := StandardJTL(4)
	if _, err := c.Run(context.Background(), 100*sfq.Picosecond, 5*sfq.Picosecond); err == nil {
		t.Skip("coarse step happened to stay finite; divergence path not exercised")
	}
}

func TestPulseTimesInterpolation(t *testing.T) {
	res, err := StandardJTL(6).Run(context.Background(), 100*sfq.Picosecond, 0.02*sfq.Picosecond)
	if err != nil {
		t.Fatal(err)
	}
	for _, tm := range res.PulseTimes(3) {
		if tm < 0 || tm > 100*sfq.Picosecond {
			t.Fatalf("pulse time %g out of simulated range", tm)
		}
	}
}
