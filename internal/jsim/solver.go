// The streaming transient solver: a reusable Solver integrates a Chain or
// Circuit with classical RK4 and hands every step to a set of Observers,
// allocating O(nodes) scratch in total instead of the O(steps·nodes) dense
// history the legacy Run API materialises. The floating-point arithmetic is
// bit-identical to the original solver — same RK4, same operation order,
// same expressions — so every golden exhibit derived from these transients
// is unchanged; only the memory behaviour differs.
package jsim

import (
	"context"
	"errors"
	"fmt"
	"math"

	"supernpu/internal/guard"
	"supernpu/internal/sfq"
)

// RunInfo describes one transient to the observers attached to it.
type RunInfo struct {
	Nodes int     // node count of the netlist
	Steps int     // RK4 sample count, including the t = 0 state
	Dt    float64 // time step (s)
	// Bias is the per-node DC bias current (A). It aliases solver scratch:
	// read it during the run, do not retain or mutate it.
	Bias []float64
}

// Observer consumes solver state in-stream. Init is called once before the
// first step; Observe is called once per RK4 sample with the state *before*
// that step's update (step 0 is the initial condition), matching the rows of
// the legacy dense Result.Phases. The phi and v slices alias solver scratch
// and are only valid inside the call. If the run returns an error, observer
// state is undefined and must not be read.
type Observer interface {
	Init(info RunInfo)
	Observe(step int, t float64, phi, v []float64)
}

// stepCount returns the RK4 sample count covering [0, T] at spacing dt:
// ⌊T/dt⌋+1, with a guard against the quotient landing a few ulps below an
// integer. T = 160 ps at dt = 0.02 ps divides exactly in the reals but not
// in float64 (T/dt ≈ 7999.99999…), and plain truncation silently dropped
// the final sample of such runs.
func stepCount(T, dt float64) int {
	r := T / dt
	k := math.Floor(r)
	if r-k > 1-1e-9*(k+1) {
		k++
	}
	return int(k) + 1
}

// Solver integrates junction netlists with reusable scratch: every buffer is
// grown on demand and kept across runs, so repeated transients over chains
// of the same (or smaller) size allocate nothing. A Solver is not safe for
// concurrent use; give each worker its own (see RunBatch and
// parallel.MapLocal).
type Solver struct {
	// Struct-of-arrays per-node constants, hoisted once per run.
	bias  []float64 // DC bias current
	ic    []float64 // junction critical current
	res   []float64 // shunt resistance
	cphi  []float64 // C·Φ0/2π, the φ̈ denominator
	lNext []float64 // chain inductance to the next node

	// Per-node source index: srcs[srcPtr[i]:srcPtr[i+1]] are the pulse
	// sources driving node i, in their original Sources order.
	srcPtr []int
	srcs   []PulseSource
	cnt    []int // counting-sort scratch (sources and adjacency)

	// CSR adjacency for circuits: links of node i are adjPtr[i]:adjPtr[i+1].
	adjPtr  []int
	adjNode []int
	adjInvL []float64

	// State and RK4 stage scratch.
	phi, v   []float64
	k1p, k1v []float64
	k2p, k2v []float64
	k3p, k3v []float64
	k4p, k4v []float64
	tp, tv   []float64

	// watch carries the run context so the RK4 loop can poll for
	// cancellation every pollSteps steps without allocating. Arming
	// against an uncancellable context is free, which keeps the
	// zero-allocation steady state intact on that path.
	watch guard.Watch
	// budget, when set, bounds the total steps this solver may integrate;
	// a run whose step count does not fit fails with ErrBudgetExceeded
	// before integrating. nil means unlimited.
	budget *guard.Budget
}

// NewSolver returns an empty Solver; buffers are sized on first use.
func NewSolver() *Solver { return &Solver{} }

// pollSteps is the cancellation poll interval of the RK4 loop: every
// pollSteps steps the solver polls its watch, so a canceled transient
// returns within pollSteps steps — microseconds of work — without the
// loop ever allocating. Must be a power of two; the loop tests
// step&(pollSteps-1).
const pollSteps = 256

// divergedVoltage is the per-node voltage bound beyond which a transient
// is declared diverged: SFQ pulse amplitudes sit in the millivolt range,
// so a solver state reaching a full volt is numerically blown up even
// while still technically finite. The solver state carries φ̇ in rad/s
// (V = Φ0/2π·φ̇), so the comparison happens against divergedPhiDot, the
// same bound in state units. The check is a read-only comparison and
// cannot perturb the trajectory of a healthy run.
const (
	divergedVoltage = 1.0
	divergedPhiDot  = divergedVoltage / phi0over2pi
)

// SetBudget attaches a deterministic step budget to the solver; every run
// charges its full step count against it up front and fails with an error
// wrapping guard.ErrBudgetExceeded once the budget cannot cover a run.
// A nil budget (the default) is unlimited. The budget may be shared
// between solvers; charges are atomic.
func (s *Solver) SetBudget(b *guard.Budget) { s.budget = b }

// growF resizes a float scratch slice to n, reusing capacity when it can.
func growF(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

// growI resizes an int scratch slice to n, reusing capacity when it can.
func growI(s []int, n int) []int {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int, n)
}

// prepNodes hoists the per-node constants of nodes into the solver's
// struct-of-arrays scratch and sets the DC-equilibrium initial state
// φ = arcsin(I_bias/Ic), v = 0.
func (s *Solver) prepNodes(nodes []Node) {
	n := len(nodes)
	s.bias = growF(s.bias, n)
	s.ic = growF(s.ic, n)
	s.res = growF(s.res, n)
	s.cphi = growF(s.cphi, n)
	s.lNext = growF(s.lNext, n)
	s.phi = growF(s.phi, n)
	s.v = growF(s.v, n)
	s.k1p, s.k1v = growF(s.k1p, n), growF(s.k1v, n)
	s.k2p, s.k2v = growF(s.k2p, n), growF(s.k2v, n)
	s.k3p, s.k3v = growF(s.k3p, n), growF(s.k3v, n)
	s.k4p, s.k4v = growF(s.k4p, n), growF(s.k4v, n)
	s.tp, s.tv = growF(s.tp, n), growF(s.tv, n)
	for i := range nodes {
		nd := &nodes[i]
		s.bias[i] = nd.Bias
		s.ic[i] = nd.JJ.Ic
		s.res[i] = nd.JJ.R
		s.cphi[i] = nd.JJ.C * phi0over2pi
		s.lNext[i] = nd.LNext
		r := nd.Bias / nd.JJ.Ic
		if r > 0.999 {
			r = 0.999
		}
		if r < -0.999 {
			r = -0.999
		}
		s.phi[i] = math.Asin(r)
		s.v[i] = 0
	}
}

// indexSources builds the per-node source index with a stable counting sort,
// preserving each node's original Sources order (the summation order of the
// legacy solver). Sources aimed at out-of-range nodes are dropped, exactly
// as the legacy per-node scan never matched them.
func (s *Solver) indexSources(sources []PulseSource, n int) {
	s.srcPtr = growI(s.srcPtr, n+1)
	s.cnt = growI(s.cnt, n)
	for i := 0; i < n; i++ {
		s.cnt[i] = 0
	}
	valid := 0
	for _, src := range sources {
		if src.Node >= 0 && src.Node < n {
			s.cnt[src.Node]++
			valid++
		}
	}
	if cap(s.srcs) >= valid {
		s.srcs = s.srcs[:valid]
	} else {
		s.srcs = make([]PulseSource, valid)
	}
	s.srcPtr[0] = 0
	for i := 0; i < n; i++ {
		s.srcPtr[i+1] = s.srcPtr[i] + s.cnt[i]
		s.cnt[i] = 0
	}
	for _, src := range sources {
		if src.Node >= 0 && src.Node < n {
			s.srcs[s.srcPtr[src.Node]+s.cnt[src.Node]] = src
			s.cnt[src.Node]++
		}
	}
}

// indexLinks builds the CSR adjacency with a stable counting sort. Per-node
// neighbour order matches the legacy append order (both endpoints of each
// link inserted at the link's position), keeping the coupling-current
// summation order identical.
func (s *Solver) indexLinks(links []Link, n int) {
	s.adjPtr = growI(s.adjPtr, n+1)
	s.cnt = growI(s.cnt, n)
	for i := 0; i < n; i++ {
		s.cnt[i] = 0
	}
	for _, lk := range links {
		s.cnt[lk.A]++
		s.cnt[lk.B]++
	}
	m := 2 * len(links)
	s.adjNode = growI(s.adjNode, m)
	s.adjInvL = growF(s.adjInvL, m)
	s.adjPtr[0] = 0
	for i := 0; i < n; i++ {
		s.adjPtr[i+1] = s.adjPtr[i] + s.cnt[i]
		s.cnt[i] = 0
	}
	for _, lk := range links {
		invL := 1 / lk.L
		p := s.adjPtr[lk.A] + s.cnt[lk.A]
		s.adjNode[p], s.adjInvL[p] = lk.B, invL
		s.cnt[lk.A]++
		p = s.adjPtr[lk.B] + s.cnt[lk.B]
		s.adjNode[p], s.adjInvL[p] = lk.A, invL
		s.cnt[lk.B]++
	}
}

// derivChain evaluates the chain's sine-Gordon right-hand side. Every
// expression and its evaluation order matches the legacy closure exactly.
func (s *Solver) derivChain(t float64, phi, v, dphi, dv []float64) {
	n := len(phi)
	for i := 0; i < n; i++ {
		cur := s.bias[i]
		for _, src := range s.srcs[s.srcPtr[i]:s.srcPtr[i+1]] {
			cur += src.current(t)
		}
		if i > 0 {
			cur += phi0over2pi * (phi[i-1] - phi[i]) / s.lNext[i-1]
		}
		if i < n-1 {
			cur += phi0over2pi * (phi[i+1] - phi[i]) / s.lNext[i]
		}
		cur -= s.ic[i] * math.Sin(phi[i])
		cur -= phi0over2pi * v[i] / s.res[i]
		dphi[i] = v[i]
		dv[i] = cur / s.cphi[i]
	}
}

// derivCircuit is derivChain over the CSR link graph.
func (s *Solver) derivCircuit(t float64, phi, v, dphi, dv []float64) {
	n := len(phi)
	for i := 0; i < n; i++ {
		cur := s.bias[i]
		for _, src := range s.srcs[s.srcPtr[i]:s.srcPtr[i+1]] {
			cur += src.current(t)
		}
		for k := s.adjPtr[i]; k < s.adjPtr[i+1]; k++ {
			cur += phi0over2pi * (phi[s.adjNode[k]] - phi[i]) * s.adjInvL[k]
		}
		cur -= s.ic[i] * math.Sin(phi[i])
		cur -= phi0over2pi * v[i] / s.res[i]
		dphi[i] = v[i]
		dv[i] = cur / s.cphi[i]
	}
}

// integrate runs the RK4 loop, streaming each pre-update state to the
// observers. chain selects derivChain vs derivCircuit; errFmt is the
// divergence message format of the corresponding legacy solver, with a
// trailing %w for the guard sentinel. Every pollSteps steps the loop polls
// the solver's cancellation watch — allocation-free on every path, so the
// zero-allocation steady state holds whether or not a watch is armed.
func (s *Solver) integrate(steps, n int, dt float64, chain bool, errFmt string, obs []Observer) error {
	for step := 0; step < steps; step++ {
		if step&(pollSteps-1) == 0 && s.watch.Canceled() {
			return s.watch.Err()
		}
		t := float64(step) * dt
		for _, o := range obs {
			o.Observe(step, t, s.phi, s.v)
		}

		if chain {
			s.derivChain(t, s.phi, s.v, s.k1p, s.k1v)
		} else {
			s.derivCircuit(t, s.phi, s.v, s.k1p, s.k1v)
		}
		for i := 0; i < n; i++ {
			s.tp[i] = s.phi[i] + 0.5*dt*s.k1p[i]
			s.tv[i] = s.v[i] + 0.5*dt*s.k1v[i]
		}
		if chain {
			s.derivChain(t+0.5*dt, s.tp, s.tv, s.k2p, s.k2v)
		} else {
			s.derivCircuit(t+0.5*dt, s.tp, s.tv, s.k2p, s.k2v)
		}
		for i := 0; i < n; i++ {
			s.tp[i] = s.phi[i] + 0.5*dt*s.k2p[i]
			s.tv[i] = s.v[i] + 0.5*dt*s.k2v[i]
		}
		if chain {
			s.derivChain(t+0.5*dt, s.tp, s.tv, s.k3p, s.k3v)
		} else {
			s.derivCircuit(t+0.5*dt, s.tp, s.tv, s.k3p, s.k3v)
		}
		for i := 0; i < n; i++ {
			s.tp[i] = s.phi[i] + dt*s.k3p[i]
			s.tv[i] = s.v[i] + dt*s.k3v[i]
		}
		if chain {
			s.derivChain(t+dt, s.tp, s.tv, s.k4p, s.k4v)
		} else {
			s.derivCircuit(t+dt, s.tp, s.tv, s.k4p, s.k4v)
		}

		for i := 0; i < n; i++ {
			s.phi[i] += dt / 6 * (s.k1p[i] + 2*s.k2p[i] + 2*s.k3p[i] + s.k4p[i])
			s.v[i] += dt / 6 * (s.k1v[i] + 2*s.k2v[i] + 2*s.k3v[i] + s.k4v[i])
			if math.IsNaN(s.phi[i]) || math.IsInf(s.phi[i], 0) {
				mDiverged.Inc()
				return fmt.Errorf(errFmt, t/sfq.Picosecond, i, guard.ErrNonFinite)
			}
			if v := s.v[i]; v > divergedPhiDot || v < -divergedPhiDot {
				mDiverged.Inc()
				return fmt.Errorf(errFmt, t/sfq.Picosecond, i, guard.ErrDiverged)
			}
		}
	}
	mTransients.Inc()
	mSteps.Add(int64(steps))
	return nil
}

// RunChain integrates the chain over duration T with fixed step dt,
// streaming every sample to the observers. After a warm-up run, repeated
// calls over same-sized chains allocate nothing (observers permitting) —
// provided ctx is uncancellable (context.Background()); a cancelable
// context costs one watch registration per run, never per step. The loop
// polls for cancellation every pollSteps steps and returns an error
// satisfying errors.Is against guard.ErrCanceled (or
// guard.ErrDeadlineExceeded) once ctx fires.
func (s *Solver) RunChain(ctx context.Context, c *Chain, T, dt float64, obs ...Observer) error {
	if dt <= 0 || T <= 0 {
		return errors.New("jsim: T and dt must be positive")
	}
	n := len(c.Nodes)
	if n == 0 {
		return errors.New("jsim: empty chain")
	}
	steps := stepCount(T, dt)
	if err := s.budget.Spend(int64(steps)); err != nil {
		return fmt.Errorf("jsim: chain transient of %d steps: %w", steps, err)
	}
	s.watch.Arm(ctx)
	defer s.watch.Disarm()
	s.prepNodes(c.Nodes)
	s.indexSources(c.Sources, n)
	info := RunInfo{Nodes: n, Steps: steps, Dt: dt, Bias: s.bias}
	for _, o := range obs {
		o.Init(info)
	}
	return s.integrate(steps, n, dt, true, "jsim: solution diverged at t=%.3gps node %d: %w", obs)
}

// RunCircuit integrates the link-graph circuit, streaming every sample to
// the observers (the Circuit counterpart of RunChain, with the same
// cancellation and budget semantics).
func (s *Solver) RunCircuit(ctx context.Context, c *Circuit, T, dt float64, obs ...Observer) error {
	if dt <= 0 || T <= 0 {
		return errors.New("jsim: T and dt must be positive")
	}
	n := len(c.Nodes)
	if n == 0 {
		return errors.New("jsim: empty circuit")
	}
	for _, lk := range c.Links {
		if lk.A < 0 || lk.A >= n || lk.B < 0 || lk.B >= n || lk.L <= 0 {
			return fmt.Errorf("jsim: invalid link %+v", lk)
		}
	}
	steps := stepCount(T, dt)
	if err := s.budget.Spend(int64(steps)); err != nil {
		return fmt.Errorf("jsim: circuit transient of %d steps: %w", steps, err)
	}
	s.watch.Arm(ctx)
	defer s.watch.Disarm()
	s.prepNodes(c.Nodes)
	s.indexSources(c.Sources, n)
	s.indexLinks(c.Links, n)
	info := RunInfo{Nodes: n, Steps: steps, Dt: dt, Bias: s.bias}
	for _, o := range obs {
		o.Init(info)
	}
	return s.integrate(steps, n, dt, false, "jsim: circuit diverged at t=%.3gps node %d: %w", obs)
}
