// Streaming observers: the consumers a Solver feeds in-stream. Each one
// reproduces a post-processing quantity of the legacy dense Result
// (PulseTimes, TotalBiasEnergy, FinalPhase/Slips) bit-for-bit while holding
// only O(nodes) state; DenseRecorder reproduces the dense Result itself for
// tests, debugging and the legacy Run wrappers.
package jsim

import "math"

// DenseRecorder materialises the full trajectory — the one observer whose
// footprint is O(steps·nodes). It backs the legacy Run API and the
// differential tests that pin the streaming observers against the dense
// post-processing.
type DenseRecorder struct {
	bias       []float64
	dt         float64
	energy     float64
	phases     [][]float64
	biasEnergy []float64
}

// Init implements Observer.
func (d *DenseRecorder) Init(info RunInfo) {
	d.bias = info.Bias
	d.dt = info.Dt
	d.energy = 0
	if cap(d.phases) >= info.Steps {
		d.phases = d.phases[:0]
	} else {
		d.phases = make([][]float64, 0, info.Steps)
	}
	if cap(d.biasEnergy) >= info.Steps {
		d.biasEnergy = d.biasEnergy[:0]
	} else {
		d.biasEnergy = make([]float64, 0, info.Steps)
	}
}

// Observe implements Observer.
func (d *DenseRecorder) Observe(step int, t float64, phi, v []float64) {
	// The legacy solver accumulated the bias energy inside step s's update
	// using the post-update velocities — the v this observer sees at step
	// s+1. Adding the contribution before recording therefore reproduces the
	// recorded sequence exactly (step 0 adds only exact zeros: v starts 0).
	for i, vi := range v {
		d.energy += d.bias[i] * phi0over2pi * vi * d.dt
	}
	snap := make([]float64, len(phi))
	copy(snap, phi)
	d.phases = append(d.phases, snap)
	d.biasEnergy = append(d.biasEnergy, d.energy)
}

// Result detaches and returns the recorded trajectory as a legacy Result.
// The recorder is left empty, so reusing it cannot alias a Result already
// handed out.
func (d *DenseRecorder) Result() *Result {
	r := &Result{Dt: d.dt, Phases: d.phases, BiasEnergy: d.biasEnergy}
	d.phases = nil
	d.biasEnergy = nil
	return r
}

// PulseDetector streams the odd-π crossing detection of Result.PulseTimes:
// the instants each node's phase crosses π, 3π, 5π, … (the midpoint of each
// 2π slip, where the voltage pulse peaks), linearly interpolated inside the
// crossing step with the same formula as the dense post-processing.
type PulseDetector struct {
	dt    float64
	prev  []float64   // phase vector at the previous sample
	next  []float64   // next crossing threshold per node
	times [][]float64 // recorded crossing times per node
}

// Init implements Observer.
func (p *PulseDetector) Init(info RunInfo) {
	n := info.Nodes
	p.dt = info.Dt
	p.prev = growF(p.prev, n)
	p.next = growF(p.next, n)
	if cap(p.times) >= n {
		p.times = p.times[:n]
	} else {
		times := make([][]float64, n)
		copy(times, p.times)
		p.times = times
	}
	for i := 0; i < n; i++ {
		p.next[i] = math.Pi
		p.times[i] = p.times[i][:0]
	}
}

// Observe implements Observer.
func (p *PulseDetector) Observe(step int, t float64, phi, v []float64) {
	if step == 0 {
		copy(p.prev, phi)
		return
	}
	for i, p1 := range phi {
		for p1 >= p.next[i] {
			p0 := p.prev[i]
			frac := 0.0
			//lint:allow(floateq) exact guard against a zero division, not a tolerance check
			if p1 != p0 {
				frac = (p.next[i] - p0) / (p1 - p0)
			}
			p.times[i] = append(p.times[i], (float64(step-1)+frac)*p.dt)
			p.next[i] += 2 * math.Pi
			mPulses.Inc()
		}
		p.prev[i] = p1
	}
}

// Times returns the crossing times recorded for the node, in order. The
// slice aliases detector state: it is valid until the next Init.
func (p *PulseDetector) Times(node int) []float64 { return p.times[node] }

// EnergyAccumulator streams the cumulative bias energy ∫ Σ I_bias·V dt,
// reproducing Result.TotalBiasEnergy bit-for-bit in O(1) state.
type EnergyAccumulator struct {
	bias   []float64
	dt     float64
	energy float64
}

// Init implements Observer.
func (e *EnergyAccumulator) Init(info RunInfo) {
	e.bias = info.Bias
	e.dt = info.Dt
	e.energy = 0
}

// Observe implements Observer. See DenseRecorder.Observe for why the
// contribution of the current velocities lands at this sample.
func (e *EnergyAccumulator) Observe(step int, t float64, phi, v []float64) {
	for i, vi := range v {
		e.energy += e.bias[i] * phi0over2pi * vi * e.dt
	}
}

// Total is the energy drawn from the bias network over the run, equal to
// the legacy Result.TotalBiasEnergy.
func (e *EnergyAccumulator) Total() float64 { return e.energy }

// FinalState captures the last sample of the run — the state the legacy
// Result.FinalPhase and Result.Slips read.
type FinalState struct {
	lastStep int
	phi      []float64
	v        []float64
}

// Init implements Observer.
func (f *FinalState) Init(info RunInfo) {
	f.lastStep = info.Steps - 1
	f.phi = growF(f.phi, info.Nodes)
	f.v = growF(f.v, info.Nodes)
	for i := 0; i < info.Nodes; i++ {
		f.phi[i] = 0
		f.v[i] = 0
	}
}

// Observe implements Observer.
func (f *FinalState) Observe(step int, t float64, phi, v []float64) {
	if step == f.lastStep {
		copy(f.phi, phi)
		copy(f.v, v)
	}
}

// Phase returns the node's final phase (legacy Result.FinalPhase).
func (f *FinalState) Phase(node int) float64 { return f.phi[node] }

// Slips returns how many complete 2π phase slips the node underwent
// (legacy Result.Slips).
func (f *FinalState) Slips(node int) int {
	return int(math.Floor((f.phi[node] + math.Pi) / (2 * math.Pi)))
}
