// The bounded numeric recovery path at the jsim boundary: a transient that
// diverges (or goes non-finite) is re-run with a halved time step, at most
// MaxDtRetries times. Halving dt is the classical fix for an RK4 step that
// under-resolves the junction plasma oscillation, and bounding the retries
// keeps the worst case deterministic: the same inputs always take the same
// attempts and fail (or succeed) identically at every worker count. On the
// non-retry path the first attempt is a plain RunChain at the caller's dt,
// so healthy transients — every golden exhibit — are byte-identical with
// or without this wrapper.

package jsim

import (
	"context"
	"sync/atomic"

	"supernpu/internal/guard"
)

// maxDtRetries holds the configured retry bound; defaulted in init so the
// zero value of the atomic is never observed.
var maxDtRetries atomic.Int64

func init() { maxDtRetries.Store(2) }

// SetMaxDtRetries sets the per-transient bound on refined-dt retries taken
// by RunChainRefined after a numeric failure (the CLIs expose it as
// -max-retries). n < 0 is clamped to 0, which disables recovery entirely.
// The bound is process-global configuration, set once at startup.
func SetMaxDtRetries(n int) {
	if n < 0 {
		n = 0
	}
	maxDtRetries.Store(int64(n))
}

// MaxDtRetries returns the configured retry bound.
func MaxDtRetries() int { return int(maxDtRetries.Load()) }

// RunChainRefined integrates the chain like RunChain, recovering from
// numeric failures (guard.IsNumeric: divergence or a non-finite state) by
// halving dt and re-running, up to MaxDtRetries extra attempts. It returns
// the dt that produced the result alongside RunChain's error, so callers
// can tell a recovered run from a first-try success. Observers are
// re-initialised on every attempt and end up holding only the final
// attempt's stream. Cancellation, budget and input errors are never
// retried — only numeric ones, which retrying at a finer step can fix.
func (s *Solver) RunChainRefined(ctx context.Context, c *Chain, T, dt float64, obs ...Observer) (float64, error) {
	for attempt := 0; ; attempt++ {
		err := s.RunChain(ctx, c, T, dt, obs...)
		if err == nil || !guard.IsNumeric(err) || attempt >= MaxDtRetries() {
			return dt, err
		}
		guard.CountRetry()
		dt /= 2
	}
}
