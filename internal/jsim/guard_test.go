package jsim

import (
	"context"
	"errors"
	"testing"

	"supernpu/internal/guard"
	"supernpu/internal/sfq"
)

// A context canceled before the run starts must abort the transient at the
// very first poll, before any physics happens, with the guard taxonomy.
func TestRunChainCanceledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var s Solver
	err := s.RunChain(ctx, StandardJTL(4), 120*sfq.Picosecond, 0.02*sfq.Picosecond)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("wrapped error must still match context.Canceled, got %v", err)
	}
}

// cancelAtStep cancels its context the first time the observer sees a step
// at or past the trigger — a deterministic mid-transient cancellation.
type cancelAtStep struct {
	at     int
	cancel context.CancelFunc
	last   int
}

func (c *cancelAtStep) Init(info RunInfo) {}
func (c *cancelAtStep) Observe(step int, t float64, phi, v []float64) {
	c.last = step
	if step == c.at {
		c.cancel()
	}
}

// A cancellation mid-transient must surface within one poll interval of the
// step that triggered it: the loop checks its watch every pollSteps steps.
func TestRunChainCancelMidTransientWithinOnePollInterval(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	trigger := &cancelAtStep{at: pollSteps + 1, cancel: cancel}
	var s Solver
	err := s.RunChain(ctx, StandardJTL(4), 120*sfq.Picosecond, 0.02*sfq.Picosecond, trigger)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	// The observer runs at the top of each step, so the last observed step
	// bounds how far the loop got past the trigger.
	if got, max := trigger.last, trigger.at+pollSteps; got > max {
		t.Fatalf("solver ran to step %d, want stop by %d (trigger %d + poll %d)",
			got, max, trigger.at, pollSteps)
	}
}

// A deadline expiring mid-transient maps to guard.ErrDeadlineExceeded.
func TestRunChainDeadlineCarriesTaxonomy(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	var s Solver
	err := s.RunChain(ctx, StandardJTL(4), 120*sfq.Picosecond, 0.02*sfq.Picosecond)
	if !errors.Is(err, guard.ErrDeadlineExceeded) {
		t.Fatalf("want guard.ErrDeadlineExceeded, got %v", err)
	}
}

// The step budget is charged up front: a run whose step count exceeds the
// remaining budget fails with ErrBudgetExceeded before integrating, and a
// covered run still succeeds.
func TestSolverBudget(t *testing.T) {
	const (
		T  = 120 * sfq.Picosecond
		dt = 0.02 * sfq.Picosecond
	)
	steps := int64(stepCount(T, dt))

	var s Solver
	s.SetBudget(guard.NewBudget(steps)) // exactly one run's worth
	if err := s.RunChain(context.Background(), StandardJTL(4), T, dt); err != nil {
		t.Fatalf("run within budget: %v", err)
	}
	err := s.RunChain(context.Background(), StandardJTL(4), T, dt)
	if !errors.Is(err, guard.ErrBudgetExceeded) {
		t.Fatalf("want guard.ErrBudgetExceeded on second run, got %v", err)
	}

	s.SetBudget(nil)
	if err := s.RunChain(context.Background(), StandardJTL(4), T, dt); err != nil {
		t.Fatalf("nil budget must be unlimited: %v", err)
	}
}

// RunChainRefined on a healthy chain succeeds on the first attempt at the
// caller's dt — the non-retry path is a plain RunChain.
func TestRunChainRefinedHealthyFirstAttempt(t *testing.T) {
	var s Solver
	var fin FinalState
	used, err := s.RunChainRefined(context.Background(), StandardJTL(4),
		120*sfq.Picosecond, 0.02*sfq.Picosecond, &fin)
	if err != nil {
		t.Fatal(err)
	}
	//lint:allow(floateq) asserting dt was returned unchanged, not a tolerance check
	if used != 0.02*sfq.Picosecond {
		t.Fatalf("healthy run must keep the caller's dt, got %g", used)
	}
	if fin.Slips(3) != 1 {
		t.Fatalf("want 1 slip at the output, got %d", fin.Slips(3))
	}
}

// divergingJTL returns a chain whose time step grossly under-resolves the
// plasma oscillation so that RK4 blows up, exercising the recovery path.
// At dt0 the run diverges; each halving brings it closer to stable.
func divergingJTL() (*Chain, float64, float64) {
	ch := StandardJTL(4)
	return ch, 120 * sfq.Picosecond, 1.6 * sfq.Picosecond
}

// RunChainRefined halves dt on numeric failure, at most MaxDtRetries times.
func TestRunChainRefinedRecoversByHalvingDt(t *testing.T) {
	ch, T, dt0 := divergingJTL()
	var s Solver
	if err := s.RunChain(context.Background(), ch, T, dt0); !guard.IsNumeric(err) {
		t.Skipf("coarse dt unexpectedly stable (err=%v); recovery path not exercisable here", err)
	}
	defer SetMaxDtRetries(2)

	SetMaxDtRetries(8)
	var fin FinalState
	used, err := s.RunChainRefined(context.Background(), ch, T, dt0, &fin)
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if used >= dt0 {
		t.Fatalf("recovered run must use a refined dt, got %g (started %g)", used, dt0)
	}
	if fin.Slips(3) != 1 {
		t.Fatalf("recovered run must be physical: want 1 slip, got %d", fin.Slips(3))
	}

	// With recovery disabled the numeric error surfaces unchanged.
	SetMaxDtRetries(0)
	if _, err := s.RunChainRefined(context.Background(), ch, T, dt0); !guard.IsNumeric(err) {
		t.Fatalf("with retries disabled, want the numeric error, got %v", err)
	}
}

// Cancellation must never be retried at a refined dt.
func TestRunChainRefinedDoesNotRetryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ch, T, dt0 := divergingJTL()
	var s Solver
	used, err := s.RunChainRefined(ctx, ch, T, dt0)
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("want guard.ErrCanceled, got %v", err)
	}
	//lint:allow(floateq) asserting dt was returned unchanged, not a tolerance check
	if used != dt0 {
		t.Fatalf("canceled run must not refine dt, got %g", used)
	}
}
