package jsim

import (
	"context"
	"testing"

	"supernpu/internal/faultinject"
	sobs "supernpu/internal/obs"
	"supernpu/internal/sfq"
	"supernpu/internal/simcache"
)

// diffChains are the netlists the differential battery runs: a plain JTL, the
// two storage-loop variants (parked and clocked fluxon) and a fault-injected
// JTL with Ic spread.
func diffChains() map[string]*Chain {
	fm := &faultinject.Model{Seed: 7, IcSpread: 0.05}
	return map[string]*Chain{
		"jtl":          StandardJTL(10),
		"storage-hold": StorageChain(0),
		"storage-clk":  StorageChain(80 * sfq.Picosecond),
		"faulted-jtl":  PerturbedJTL(8, fm),
	}
}

// The tentpole contract: every streaming observer reproduces its dense
// post-processing counterpart bit-for-bit — phases, pulse times, bias energy
// and final state — across JTL, storage-loop and fault-injected chains.
func TestStreamingObserversBitIdenticalToDense(t *testing.T) {
	const (
		T  = 120 * sfq.Picosecond
		dt = 0.02 * sfq.Picosecond
	)
	for name, ch := range diffChains() {
		ch := ch
		t.Run(name, func(t *testing.T) {
			dense, err := ch.Run(context.Background(), T, dt)
			if err != nil {
				t.Fatal(err)
			}

			var (
				rec    DenseRecorder
				pulse  PulseDetector
				energy EnergyAccumulator
				fin    FinalState
			)
			if err := ch.RunObserved(context.Background(), T, dt, &rec, &pulse, &energy, &fin); err != nil {
				t.Fatal(err)
			}
			stream := rec.Result()

			// Dense recorder vs legacy dense API.
			if len(stream.Phases) != len(dense.Phases) {
				t.Fatalf("step count: stream %d, dense %d", len(stream.Phases), len(dense.Phases))
			}
			for s := range dense.Phases {
				for i := range dense.Phases[s] {
					if stream.Phases[s][i] != dense.Phases[s][i] {
						t.Fatalf("phase[%d][%d]: stream %v, dense %v", s, i, stream.Phases[s][i], dense.Phases[s][i])
					}
				}
				if stream.BiasEnergy[s] != dense.BiasEnergy[s] {
					t.Fatalf("bias energy[%d]: stream %v, dense %v", s, stream.BiasEnergy[s], dense.BiasEnergy[s])
				}
			}

			// Streaming observers vs dense post-processing.
			for node := range ch.Nodes {
				want := dense.PulseTimes(node)
				got := pulse.Times(node)
				if len(got) != len(want) {
					t.Fatalf("node %d: %d streamed pulses, %d dense", node, len(got), len(want))
				}
				for k := range want {
					if got[k] != want[k] {
						t.Fatalf("node %d pulse %d: stream %v, dense %v", node, k, got[k], want[k])
					}
				}
				if fin.Phase(node) != dense.FinalPhase(node) {
					t.Fatalf("node %d final phase: stream %v, dense %v", node, fin.Phase(node), dense.FinalPhase(node))
				}
				if fin.Slips(node) != dense.Slips(node) {
					t.Fatalf("node %d slips: stream %d, dense %d", node, fin.Slips(node), dense.Slips(node))
				}
			}
			if energy.Total() != dense.TotalBiasEnergy() {
				t.Fatalf("total bias energy: stream %v, dense %v", energy.Total(), dense.TotalBiasEnergy())
			}
		})
	}
}

// The circuit (link-graph) solver must satisfy the same contract.
func TestCircuitStreamingBitIdenticalToDense(t *testing.T) {
	const (
		T  = 100 * sfq.Picosecond
		dt = 0.05 * sfq.Picosecond
	)
	ckt := SplitterTree(3)
	dense, err := ckt.Run(context.Background(), T, dt)
	if err != nil {
		t.Fatal(err)
	}
	var (
		rec    DenseRecorder
		pulse  PulseDetector
		energy EnergyAccumulator
		fin    FinalState
	)
	if err := ckt.RunObserved(context.Background(), T, dt, &rec, &pulse, &energy, &fin); err != nil {
		t.Fatal(err)
	}
	stream := rec.Result()
	if len(stream.Phases) != len(dense.Phases) {
		t.Fatalf("step count: stream %d, dense %d", len(stream.Phases), len(dense.Phases))
	}
	for s := range dense.Phases {
		for i := range dense.Phases[s] {
			if stream.Phases[s][i] != dense.Phases[s][i] {
				t.Fatalf("phase[%d][%d] differs", s, i)
			}
		}
	}
	for node := range ckt.Nodes {
		want, got := dense.PulseTimes(node), pulse.Times(node)
		if len(got) != len(want) {
			t.Fatalf("node %d: %d streamed pulses, %d dense", node, len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("node %d pulse %d differs", node, k)
			}
		}
		if fin.Slips(node) != dense.Slips(node) {
			t.Fatalf("node %d slips differ", node)
		}
	}
	if energy.Total() != dense.TotalBiasEnergy() {
		t.Fatalf("total bias energy: stream %v, dense %v", energy.Total(), dense.TotalBiasEnergy())
	}
}

// A reused Solver with reused streaming observers must not allocate once
// warm — the property that makes margin/fault sweeps allocation-free.
func TestSolverSteadyStateAllocs(t *testing.T) {
	ch := StandardJTL(10)
	var (
		s      Solver
		pulse  PulseDetector
		energy EnergyAccumulator
		fin    FinalState
	)
	obs := []Observer{&pulse, &energy, &fin}
	run := func() {
		if err := s.RunChain(context.Background(), ch, 120*sfq.Picosecond, 0.02*sfq.Picosecond, obs...); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up sizes every buffer
	if n := testing.AllocsPerRun(10, run); n != 0 {
		t.Fatalf("steady-state solver allocations = %g per run, want 0", n)
	}
}

// With observability explicitly enabled (the shipping default), the
// always-live jsim counters must keep the warm hot loop at zero
// allocations per transient — and must actually count while doing it.
func TestSolverAllocsWithInstrumentationEnabled(t *testing.T) {
	sobs.SetEnabled(true)
	ch := StandardJTL(10)
	var (
		s     Solver
		pulse PulseDetector
		fin   FinalState
	)
	obs := []Observer{&pulse, &fin}
	run := func() {
		if err := s.RunChain(context.Background(), ch, 120*sfq.Picosecond, 0.02*sfq.Picosecond, obs...); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up sizes every buffer
	transients0 := mTransients.Value()
	steps0 := mSteps.Value()
	pulses0 := mPulses.Value()
	if n := testing.AllocsPerRun(10, run); n != 0 {
		t.Fatalf("instrumented solver allocations = %g per run, want 0", n)
	}
	// AllocsPerRun calls run 11 times (one warm-up plus 10 measured).
	if d := mTransients.Value() - transients0; d < 11 {
		t.Errorf("transients counter moved by %d, want >= 11", d)
	}
	if mSteps.Value() <= steps0 {
		t.Error("steps counter did not move")
	}
	if mPulses.Value() <= pulses0 {
		t.Error("pulse counter did not move (the JTL trigger pulse must propagate)")
	}
}

// Margin bisection probes (solver + chain + final-state observer, re-biased
// per probe) must also be allocation-free once warm.
func TestMarginProbeSteadyStateAllocs(t *testing.T) {
	p := newNominalProbe(context.Background(), NewSolver())
	p.works(0.7) // warm-up
	if n := testing.AllocsPerRun(10, func() { p.works(0.7) }); n != 0 {
		t.Fatalf("steady-state margin-probe allocations = %g per run, want 0", n)
	}
}

// Step-count regression: the legacy int(T/dt)+1 truncation lost the final
// sample whenever T/dt landed a few ulps under an integer (160 ps / 0.02 ps,
// 80 ps / 0.05 ps). Pin the counts for the standard extraction parameters.
func TestStepCountRegression(t *testing.T) {
	ps := sfq.Picosecond
	cases := []struct {
		T, dt float64
		want  int
	}{
		{120 * ps, 0.02 * ps, 6001}, // JTL parameter extraction
		{140 * ps, 0.05 * ps, 2801}, // bias-margin probes
		{160 * ps, 0.02 * ps, 8001}, // DFF demo (lost a step before the guard)
		{200 * ps, 0.05 * ps, 4001}, // setup-time bisection
		{80 * ps, 0.05 * ps, 1601},  // setup-time probe (lost a step before the guard)
		{100 * ps, 0.02 * ps, 5001},
		{100 * ps, 5 * ps, 21}, // divergence test's coarse step
	}
	for _, c := range cases {
		if got := stepCount(c.T, c.dt); got != c.want {
			t.Errorf("stepCount(%gps, %gps) = %d, want %d",
				c.T/ps, c.dt/ps, got, c.want)
		}
	}
	// A genuinely fractional quotient must still truncate.
	if got := stepCount(10.5, 1); got != 11 {
		t.Errorf("stepCount(10.5, 1) = %d, want 11", got)
	}
}

// Empty results must report zero values, not panic (the documented guard).
func TestEmptyResultGuards(t *testing.T) {
	r := &Result{Dt: 1e-15}
	if got := r.FinalPhase(0); got != 0 {
		t.Errorf("empty FinalPhase = %g, want 0", got)
	}
	if got := r.Slips(0); got != 0 {
		t.Errorf("empty Slips = %d, want 0", got)
	}
	if got := r.TotalBiasEnergy(); got != 0 {
		t.Errorf("empty TotalBiasEnergy = %g, want 0", got)
	}
	if got := r.PulseTimes(0); len(got) != 0 {
		t.Errorf("empty PulseTimes = %v, want none", got)
	}
}

// RunBatch must agree with one-at-a-time runs on every job.
func TestRunBatchMatchesSequential(t *testing.T) {
	chains := []*Chain{StandardJTL(6), StandardJTL(10), StorageChain(0)}
	const (
		T  = 120 * sfq.Picosecond
		dt = 0.05 * sfq.Picosecond
	)
	jobs := make([]BatchJob, len(chains))
	fins := make([]*FinalState, len(chains))
	for i, ch := range chains {
		fins[i] = &FinalState{}
		jobs[i] = BatchJob{Chain: ch, T: T, Dt: dt, Observers: []Observer{fins[i]}}
	}
	if err := RunBatch(context.Background(), jobs); err != nil {
		t.Fatal(err)
	}
	for i, ch := range chains {
		dense, err := ch.Run(context.Background(), T, dt)
		if err != nil {
			t.Fatal(err)
		}
		for node := range ch.Nodes {
			if fins[i].Phase(node) != dense.FinalPhase(node) {
				t.Fatalf("job %d node %d: batch %v, sequential %v",
					i, node, fins[i].Phase(node), dense.FinalPhase(node))
			}
		}
	}
}

// The batched margin evaluation must agree with the one-variant API and with
// itself across cold and warm (memoised) passes.
func TestBiasMarginsFaultedBatch(t *testing.T) {
	models := []*faultinject.Model{
		nil,
		{Seed: 42, IcSpread: 0.02},
		{Seed: 42, IcSpread: 0.04},
	}
	simcache.ClearAll()
	batch, err := BiasMarginsFaultedBatch(context.Background(), models)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(models) {
		t.Fatalf("batch returned %d margins for %d models", len(batch), len(models))
	}
	for i, fm := range models {
		single, err := BiasMarginsFaulted(context.Background(), fm)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i] != single {
			t.Errorf("model %d: batch %+v, single %+v", i, batch[i], single)
		}
	}
	// Cold recompute must reproduce the memoised values exactly.
	simcache.ClearAll()
	cold, err := BiasMarginsFaultedBatch(context.Background(), models)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cold {
		if cold[i] != batch[i] {
			t.Errorf("model %d: cold %+v, warm %+v", i, cold[i], batch[i])
		}
	}
}

// Reusing one solver across chains of different sizes and parameter sets
// must reproduce fresh-solver results exactly (no state leaks between runs).
func TestSolverReuseNoStateLeak(t *testing.T) {
	var s Solver
	sequence := []*Chain{StandardJTL(12), StandardJTL(4), StorageChain(0), StandardJTL(12)}
	const (
		T  = 120 * sfq.Picosecond
		dt = 0.05 * sfq.Picosecond
	)
	for run, ch := range sequence {
		var reFin FinalState
		if err := s.RunChain(context.Background(), ch, T, dt, &reFin); err != nil {
			t.Fatal(err)
		}
		dense, err := ch.Run(context.Background(), T, dt)
		if err != nil {
			t.Fatal(err)
		}
		for node := range ch.Nodes {
			if reFin.Phase(node) != dense.FinalPhase(node) {
				t.Fatalf("run %d node %d: reused solver %v, fresh %v",
					run, node, reFin.Phase(node), dense.FinalPhase(node))
			}
		}
	}
}
