package jsim

import (
	"context"
	"testing"

	"supernpu/internal/faultinject"
)

func TestPerturbedJTLDisabledIsStandard(t *testing.T) {
	a, b := StandardJTL(6), PerturbedJTL(6, nil)
	for i := range a.Nodes {
		if a.Nodes[i] != b.Nodes[i] {
			t.Fatalf("node %d differs under a nil model", i)
		}
	}
}

func TestPerturbedJTLSpreadsIc(t *testing.T) {
	fm := &faultinject.Model{Seed: 4, IcSpread: 0.1}
	ch := PerturbedJTL(8, fm)
	distinct := map[float64]bool{}
	for _, n := range ch.Nodes {
		distinct[n.JJ.Ic] = true
		if n.Bias != 0.7*100e-6 {
			t.Fatalf("bias rail perturbed: %g", n.Bias)
		}
	}
	if len(distinct) < 4 {
		t.Fatalf("Ic spread produced only %d distinct values over 8 junctions", len(distinct))
	}
	again := PerturbedJTL(8, &faultinject.Model{Seed: 4, IcSpread: 0.1})
	for i := range ch.Nodes {
		if ch.Nodes[i] != again.Nodes[i] {
			t.Fatalf("node %d not reproducible under the same seed", i)
		}
	}
}

func TestBiasMarginsFaultedNarrowsWindow(t *testing.T) {
	nominal, err := BiasMargins(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	fm := &faultinject.Model{Seed: 11, IcSpread: 0.08}
	faulted, err := BiasMarginsFaulted(context.Background(), fm)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Width() >= nominal.Width() {
		t.Fatalf("8%% Ic spread did not narrow the bias window: %+v vs nominal %+v", faulted, nominal)
	}
	if faulted.Width() < 0 {
		t.Fatalf("negative margin window: %+v", faulted)
	}
	// Disabled model shares the nominal extraction.
	same, err := BiasMarginsFaulted(context.Background(), nil)
	if err != nil || same != nominal {
		t.Fatalf("disabled model diverged from BiasMargins: %+v vs %+v (%v)", same, nominal, err)
	}
}
