// The batched chain runner: independent transients (margin grid points,
// fault variants, calibration probes) fan out across the worker pool with
// one reusable Solver per worker, so a whole sweep allocates solver scratch
// only Workers() times regardless of how many chains it integrates.
package jsim

import (
	"context"
	"errors"

	"supernpu/internal/faultinject"
	"supernpu/internal/guard"
	"supernpu/internal/parallel"
)

// BatchJob is one independent transient of a RunBatch: a chain, its
// duration and step, and the observers to stream it into. Jobs must not
// share mutable state — in particular, each job needs its own observers.
type BatchJob struct {
	Chain     *Chain
	T, Dt     float64
	Observers []Observer
}

// RunBatch integrates independent chains across the parallel pool with one
// reused Solver per worker. The error contract is parallel.Map's: the error
// of the lowest failing job, with fail-fast scheduling after it.
// Cancellation of ctx stops both the pool's claiming of new jobs and, via
// each solver's watch, the transients already in flight.
func RunBatch(ctx context.Context, jobs []BatchJob) error {
	return parallel.ForEachLocalContext(ctx, len(jobs), NewSolver,
		func(ctx context.Context, s *Solver, i int) error {
			j := &jobs[i]
			return s.RunChain(ctx, j.Chain, j.T, j.Dt, j.Observers...)
		})
}

// BiasMarginsFaultedBatch measures the operating bias margins of many fault
// variants across the worker pool: entry i of the result corresponds to
// fms[i]. Each worker reuses one Solver for every bisection probe of every
// grid point it claims; results are memoised under the same keys as
// BiasMarginsFaulted, so a re-sweep (or a later single query) is free.
func BiasMarginsFaultedBatch(ctx context.Context, fms []*faultinject.Model) ([]Margins, error) {
	return parallel.MapLocalContext(ctx, len(fms), NewSolver,
		func(ctx context.Context, s *Solver, i int) (Margins, error) {
			return biasMarginsFaultedCached(ctx, fms[i], s)
		})
}

// biasMarginsFaultedCached resolves one fault variant's margins through the
// memo cache, running the bisections on the given solver on a miss. A
// disabled model shares the nominal BiasMargins entry.
func biasMarginsFaultedCached(ctx context.Context, fm *faultinject.Model, s *Solver) (Margins, error) {
	if !fm.Enabled() {
		return BiasMargins(ctx)
	}
	v, err := cache.GetOrCompute("bias-margins/10"+fm.Key(), func() (any, error) {
		return biasMarginsFaulted(ctx, fm, s)
	})
	if err != nil {
		return Margins{}, err
	}
	return v.(Margins), nil
}

// marginProbe is the reusable state of one bias-margin bisection arm: a
// solver, the chain under test (rebuilt once, re-biased per probe) and a
// final-state observer. Re-biasing and re-running reproduces the legacy
// fresh-chain-per-probe trajectories exactly — the netlist is deterministic
// and only Bias varied between probes. The probe carries the bisection's
// context (its lifetime is one margin analysis) so every transient under
// it is cancellable.
type marginProbe struct {
	ctx    context.Context
	s      *Solver
	ch     *Chain
	biasIc []float64 // per-node current the probe bias multiplies
	fin    FinalState
	obs    []Observer
	T, dt  float64
	// err latches the first non-numeric solver failure (cancellation,
	// deadline, budget): those describe the attempt, not the operating
	// point, so "works == false" must not stand in for them — a canceled
	// bisection otherwise converges on garbage and memoises it. Numeric
	// failures stay what they always were: evidence the point is outside
	// the margin.
	err error
}

// newMarginProbe builds a probe over ch whose probe bias is expressed in
// multiples of biasIc[i] for node i.
func newMarginProbe(ctx context.Context, s *Solver, ch *Chain, biasIc []float64, T, dt float64) *marginProbe {
	p := &marginProbe{ctx: ctx, s: s, ch: ch, biasIc: biasIc, T: T, dt: dt}
	p.obs = []Observer{&p.fin}
	return p
}

// works reports whether the chain delivers exactly one pulse per junction at
// the given bias multiple. After a latched error it reports false without
// simulating; callers must check p.err before trusting a bisection result.
func (p *marginProbe) works(bias float64) bool {
	if p.err != nil {
		return false
	}
	for i := range p.ch.Nodes {
		p.ch.Nodes[i].Bias = bias * p.biasIc[i]
	}
	if err := p.s.RunChain(p.ctx, p.ch, p.T, p.dt, p.obs...); err != nil {
		if !guard.IsNumeric(err) {
			p.err = err
		}
		return false
	}
	for i := range p.ch.Nodes {
		if p.fin.Slips(i) != 1 {
			return false
		}
	}
	return true
}

// bisect walks the works boundary between a failing and a working bias.
func (p *marginProbe) bisect(bad, good float64) float64 {
	for i := 0; i < 12; i++ {
		mid := (bad + good) / 2
		if p.works(mid) {
			good = mid
		} else {
			bad = mid
		}
	}
	return good
}

// perJunctionIc returns each node's own critical current — the bias basis of
// the nominal margin analysis.
func perJunctionIc(ch *Chain) []float64 {
	ic := make([]float64, len(ch.Nodes))
	for i := range ch.Nodes {
		ic[i] = ch.Nodes[i].JJ.Ic
	}
	return ic
}

// uniformIc returns a constant bias basis — the design-point current the
// faulted analysis holds the rails at.
func uniformIc(n int, ic float64) []float64 {
	b := make([]float64, n)
	for i := range b {
		b[i] = ic
	}
	return b
}

// ErrUnbracketedOverbias reports that a perturbed JTL still single-pulses at
// the top of the bisection range, so the overbias bound cannot be bracketed.
var ErrUnbracketedOverbias = errors.New("jsim: perturbed JTL still single-pulses at 1.5x Ic; overbias bound not bracketed")

// biasMarginsFaulted runs the faulted bisections serially on one solver.
func biasMarginsFaulted(ctx context.Context, fm *faultinject.Model, s *Solver) (Margins, error) {
	const (
		stages    = 10
		nominalIc = 100e-6 // the bias rails are designed against this
		nominal   = 0.7
	)
	p := newMarginProbe(ctx, s, PerturbedJTL(stages, fm), uniformIc(stages, nominalIc),
		marginProbeT, marginProbeDt)
	if !p.works(nominal) {
		if err := p.err; err != nil {
			return Margins{}, err
		}
		// The spread closed the window at the design point outright: the
		// chip margin is zero.
		return Margins{Low: nominal, High: nominal}, nil
	}
	if p.works(1.5) {
		return Margins{}, ErrUnbracketedOverbias
	}
	m := Margins{Low: p.bisect(0.0, nominal), High: p.bisect(1.5, nominal)}
	if err := p.err; err != nil {
		return Margins{}, err
	}
	return m, nil
}
