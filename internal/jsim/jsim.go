// Package jsim is a transient circuit simulator for small superconductor
// single-flux-quantum netlists, standing in for JSIM (Fang & Van Duzer,
// 1989), which the paper uses to extract gate-level timing and power
// parameters (Section IV-A1).
//
// Each Josephson junction follows the RCSJ (resistively and capacitively
// shunted junction) model. A circuit is a chain of junction nodes coupled by
// inductors — the canonical topology of Josephson transmission lines (JTL)
// and of the storage loops inside SFQ gates. Node i obeys the discrete
// sine-Gordon equation derived from Kirchhoff's current law:
//
//	C·(Φ0/2π)·φ̈ = I_bias + I_in(t)
//	             + (Φ0/2π)·( (φ_{i-1}−φ_i)/L_{i-1} + (φ_{i+1}−φ_i)/L_i )
//	             − Ic·sin(φ)  −  (Φ0/2π)·φ̇/R
//
// A single flux quantum is a travelling 2π phase slip; a voltage pulse is
// V = (Φ0/2π)·φ̇. The package measures pulse arrival times, per-stage
// propagation delay, and switching energy drawn from the bias network —
// which is exactly Σ I_bias·Φ0 per propagated fluxon, the physical basis of
// the cell library's per-JJ switching energy.
package jsim

import (
	"context"
	"math"

	"supernpu/internal/sfq"
)

// phi0over2pi is the reduced flux quantum Φ0/2π.
const phi0over2pi = sfq.FluxQuantum / (2 * math.Pi)

// Junction is one RCSJ Josephson junction to ground.
type Junction struct {
	Ic float64 // critical current (A)
	C  float64 // shunt capacitance (F)
	R  float64 // shunt resistance (Ω)
}

// CriticallyDamped returns a junction with the given critical current and
// capacitance whose shunt resistance is chosen for a Stewart–McCumber
// parameter βc = 1, the standard operating point of RSFQ cells.
func CriticallyDamped(ic, c float64) Junction {
	r := math.Sqrt(phi0over2pi / (ic * c))
	return Junction{Ic: ic, C: c, R: r}
}

// Node is one chain node: a junction with its DC bias and the inductor to
// the next node (LNext of the final node is ignored).
type Node struct {
	JJ    Junction
	Bias  float64 // DC bias current into the node (A)
	LNext float64 // inductance to the following node (H)
}

// PulseSource injects a Gaussian current pulse at one node, the standard
// stimulus for triggering an SFQ event.
type PulseSource struct {
	Node  int
	At    float64 // pulse centre time (s)
	Sigma float64 // pulse width (s)
	Amp   float64 // peak current (A)
}

func (p PulseSource) current(t float64) float64 {
	x := (t - p.At) / p.Sigma
	return p.Amp * math.Exp(-x*x)
}

// Chain is a simulatable junction chain with pulse stimuli.
type Chain struct {
	Nodes   []Node
	Sources []PulseSource
}

// StandardJTL builds an n-stage Josephson transmission line with the AIST
// 1.0 µm operating point: Ic = 100 µA, βc = 1, βL ≈ 3, bias 0.7·Ic, and a
// trigger pulse at the first node.
func StandardJTL(n int) *Chain {
	const (
		ic = 100e-6
		c  = 0.24e-12 // ≈60 fF/µm² × 4 µm²
	)
	l := 3 * phi0over2pi / ic // βL = 2π·L·Ic/Φ0 = 3
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{JJ: CriticallyDamped(ic, c), Bias: 0.7 * ic, LNext: l}
	}
	return &Chain{
		Nodes: nodes,
		Sources: []PulseSource{{
			Node: 0, At: 20e-12, Sigma: 1.2e-12, Amp: 1.8 * ic,
		}},
	}
}

// Result holds the transient solution of a chain simulation.
type Result struct {
	Dt     float64     // time step (s)
	Phases [][]float64 // Phases[step][node]
	// BiasEnergy is the cumulative energy delivered by all bias sources up
	// to each step: ∫ Σ I_bias·V dt.
	BiasEnergy []float64
}

// Run integrates the chain with classical RK4 over duration T using a fixed
// step dt and materialises the dense trajectory. dt must resolve the
// junction plasma period; Run returns an error if dt is not positive or the
// solution diverges (non-finite phase).
//
// Run is the legacy dense API: it records O(steps·nodes) history through a
// DenseRecorder. Hot paths that only need pulse times, slips or energies
// should attach streaming observers via RunObserved (or a reused Solver),
// which allocates O(nodes) total. Cancellation of ctx aborts the transient
// within one solver poll interval.
func (c *Chain) Run(ctx context.Context, T, dt float64) (*Result, error) {
	var rec DenseRecorder
	var s Solver
	if err := s.RunChain(ctx, c, T, dt, &rec); err != nil {
		return nil, err
	}
	return rec.Result(), nil
}

// RunObserved integrates the chain, streaming every sample to the observers
// instead of materialising a dense history. It uses a fresh Solver; for
// repeated runs (sweeps, bisections), reuse a Solver directly.
func (c *Chain) RunObserved(ctx context.Context, T, dt float64, obs ...Observer) error {
	var s Solver
	return s.RunChain(ctx, c, T, dt, obs...)
}

// PulseTimes returns the times at which SFQ pulses pass the given node: the
// instants the node phase crosses odd multiples of π (the midpoint of each
// 2π slip, where the voltage pulse peaks).
func (r *Result) PulseTimes(node int) []float64 {
	var times []float64
	next := math.Pi
	for s := 1; s < len(r.Phases); s++ {
		for r.Phases[s][node] >= next {
			// Linear interpolation of the crossing instant.
			p0, p1 := r.Phases[s-1][node], r.Phases[s][node]
			frac := 0.0
			//lint:allow(floateq) exact guard against a zero division, not a tolerance check
			if p1 != p0 {
				frac = (next - p0) / (p1 - p0)
			}
			times = append(times, (float64(s-1)+frac)*r.Dt)
			next += 2 * math.Pi
		}
	}
	return times
}

// FinalPhase returns the last phase of the node. An empty result (no
// recorded steps) reports 0, the quiescent phase origin, rather than
// panicking.
func (r *Result) FinalPhase(node int) float64 {
	if len(r.Phases) == 0 {
		return 0
	}
	return r.Phases[len(r.Phases)-1][node]
}

// Slips returns how many complete 2π phase slips the node underwent. An
// empty result reports 0 slips.
func (r *Result) Slips(node int) int {
	return int(math.Floor((r.FinalPhase(node) + math.Pi) / (2 * math.Pi)))
}

// TotalBiasEnergy is the energy drawn from the bias network over the run.
// An empty result reports 0.
func (r *Result) TotalBiasEnergy() float64 {
	if len(r.BiasEnergy) == 0 {
		return 0
	}
	return r.BiasEnergy[len(r.BiasEnergy)-1]
}
