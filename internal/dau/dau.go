// Package dau implements the data alignment unit of Section III-C (Fig. 9).
//
// In a weight-stationary systolic NPU, adjacent PE-array rows hold adjacent
// weight positions of the same filters, which need largely the *same* ifmap
// pixels (weight sharing). Storing each row's pixels verbatim would waste
// over 90% of the ifmap buffer on duplicates (Fig. 8). The DAU instead lets
// the buffer hold each pixel exactly once per channel and, per PE row,
//
//  1. selects the pixels that row's weight position needs (inserting zero
//     bubbles for padding so the pipeline never stalls), and
//  2. adjusts arrival timing through a cascade of bypassable DFFs so the
//     selected pixel meets the partial sum descending from the row above.
package dau

import (
	"fmt"

	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// Ifmap is an input feature map in channel-major [c][h][w] layout, the
// layout of the ifmap buffer rows.
type Ifmap [][][]int8

// NewIfmap allocates a zeroed feature map.
func NewIfmap(c, h, w int) Ifmap {
	m := make(Ifmap, c)
	for i := range m {
		m[i] = make([][]int8, h)
		for j := range m[i] {
			m[i][j] = make([]int8, w)
		}
	}
	return m
}

// Assignment names the weight position (filter row R, filter column S,
// input channel C) mapped onto one PE-array row.
type Assignment struct {
	R, S, C int
}

// RowAssignments unrolls a layer's (channel, filter-row, filter-column)
// weight positions onto consecutive PE rows, starting at flat position
// offset, producing at most rows assignments. This is the weight-mapping
// order of the simulator: channel-major so that a mapping tile covers whole
// filter windows of as few channels as possible.
func RowAssignments(l workload.Layer, offset, rows int) []Assignment {
	total := l.R * l.S * l.C
	if offset >= total {
		return nil
	}
	n := total - offset
	if n > rows {
		n = rows
	}
	out := make([]Assignment, n)
	for i := 0; i < n; i++ {
		flat := offset + i
		c := flat / (l.R * l.S)
		rs := flat % (l.R * l.S)
		out[i] = Assignment{R: rs / l.S, S: rs % l.S, C: c}
	}
	return out
}

// Unit is one data alignment unit instance serving a mapping tile.
type Unit struct {
	layer   workload.Layer
	assigns []Assignment
}

// New builds a DAU for the layer and row assignments. It rejects
// assignments outside the layer's filter extent.
func New(l workload.Layer, assigns []Assignment) (*Unit, error) {
	for i, a := range assigns {
		if a.R < 0 || a.R >= l.R || a.S < 0 || a.S >= l.S || a.C < 0 || a.C >= l.C {
			return nil, fmt.Errorf("dau: row %d assignment %+v outside filter %dx%dx%d",
				i, a, l.R, l.S, l.C)
		}
	}
	return &Unit{layer: l, assigns: assigns}, nil
}

// Rows returns the number of served PE rows.
func (u *Unit) Rows() int { return len(u.assigns) }

// SelectRow returns PE row `row`'s aligned input stream for one input
// image: one value per output position in row-major (e, f) order. Pixels
// the weight position needs are read from the deduplicated ifmap; positions
// that fall into padding become zero bubbles (filtered after computation by
// a valid bit, Fig. 9 ②).
func (u *Unit) SelectRow(m Ifmap, row int) []int8 {
	a := u.assigns[row]
	l := u.layer
	e, f := l.OutH(), l.OutW()
	out := make([]int8, 0, e*f)
	for oe := 0; oe < e; oe++ {
		ih := oe*l.Stride - l.Pad + a.R
		for of := 0; of < f; of++ {
			iw := of*l.Stride - l.Pad + a.S
			if ih < 0 || ih >= l.H || iw < 0 || iw >= l.W {
				out = append(out, 0)
				continue
			}
			out = append(out, m[a.C][ih][iw])
		}
	}
	return out
}

// Streams returns all rows' aligned streams for one input image. Every
// stream has the same length (E·F), so the downstream systolic array never
// stalls; the per-row timing skew is applied by the array model itself,
// mirroring the DAU's cascaded DFFs.
func (u *Unit) Streams(m Ifmap) [][]int8 {
	out := make([][]int8, len(u.assigns))
	for r := range u.assigns {
		out[r] = u.SelectRow(m, r)
	}
	return out
}

// DelayDFFs returns the total number of cascaded special DFFs (with bypass
// lines) the unit instantiates per bit lane: row r must delay its stream by
// r·(peStages−1) cycles so its pixel meets the partial sum computed by the
// rows above (Fig. 9 timing adjustment; the paper's 8-bit PE has 15
// pipeline stages).
func (u *Unit) DelayDFFs(peStages int) int {
	total := 0
	for r := range u.assigns {
		total += r * (peStages - 1)
	}
	return total
}

// Inventory returns the DAU's cell multiset for `rows` PE rows with
// bits-wide data, serving a PE with peStages pipeline stages: per row a
// controller (index counters and comparators), a selector, the bypassable
// DFF cascade, and the splitter tree that broadcasts each ifmap buffer row
// to all DAU rows (Fig. 9 ①).
func Inventory(rows, bits, peStages int) sfq.Inventory {
	inv := sfq.Inventory{}
	// Controller per row: ifmap/weight index counters and bound
	// comparators built from ~24 AND/XOR/NOT bit-slices.
	inv.AddGate(sfq.AND, rows*24)
	inv.AddGate(sfq.XOR, rows*24)
	inv.AddGate(sfq.NOT, rows*8)
	inv.AddGate(sfq.DFF, rows*48) // counter state
	// Selector: one steering cell per bit per row.
	inv.AddGate(sfq.MUXCell, rows*bits)
	// Bypassable delay cascade: row r holds r·(stages−1) special DFFs
	// per bit.
	cascade := 0
	for r := 0; r < rows; r++ {
		cascade += r * (peStages - 1)
	}
	inv.AddGate(sfq.DFFB, cascade*bits)
	// Broadcast splitter tree from the ifmap buffer rows into the DAU
	// rows, with transmission-line wiring per row crossing.
	inv.AddGate(sfq.Splitter, rows*rows/2*bits/8)
	inv.AddGate(sfq.JTL, rows*4*bits)
	return inv
}
