package dau

import (
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

func layer2x2() workload.Layer {
	// The Fig. 9 working example: 3×3 ifmap, 2×2 filter, stride 1, no pad.
	return workload.Layer{Name: "fig9", Kind: workload.Conv,
		H: 3, W: 3, C: 1, R: 2, S: 2, M: 1, Stride: 1}
}

func seqIfmap(c, h, w int) Ifmap {
	m := NewIfmap(c, h, w)
	v := int8(1)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				m[ci][y][x] = v
				v++
			}
		}
	}
	return m
}

// The paper's Fig. 9 example: ifmap pixels i1..i9, weights w1..w4. The first
// DAU row (w1 = position (0,0)) must select i1, i2, i4, i5 for the four
// output positions.
func TestFig9WorkingExample(t *testing.T) {
	l := layer2x2()
	u, err := New(l, RowAssignments(l, 0, 4))
	if err != nil {
		t.Fatal(err)
	}
	m := seqIfmap(1, 3, 3) // i1..i9 row-major

	want := map[int][]int8{
		0: {1, 2, 4, 5}, // w1 (0,0)
		1: {2, 3, 5, 6}, // w2 (0,1)
		2: {4, 5, 7, 8}, // w3 (1,0)
		3: {5, 6, 8, 9}, // w4 (1,1)
	}
	for row, w := range want {
		got := u.SelectRow(m, row)
		if len(got) != 4 {
			t.Fatalf("row %d stream length %d, want 4 (=E·F)", row, len(got))
		}
		for i := range w {
			if got[i] != w[i] {
				t.Fatalf("row %d stream = %v, want %v", row, got, w)
			}
		}
	}
}

func TestPaddingProducesZeroBubbles(t *testing.T) {
	l := workload.Layer{Name: "pad", Kind: workload.Conv,
		H: 2, W: 2, C: 1, R: 3, S: 3, M: 1, Stride: 1, Pad: 1}
	u, err := New(l, RowAssignments(l, 0, 9))
	if err != nil {
		t.Fatal(err)
	}
	m := seqIfmap(1, 2, 2) // pixels 1..4
	// Row 0 holds weight position (0,0): for output (0,0) it needs ifmap
	// (-1,-1), i.e. padding → bubble.
	s := u.SelectRow(m, 0)
	if s[0] != 0 {
		t.Fatalf("padding position must be a zero bubble, got %d", s[0])
	}
	// Row 4 holds (1,1), the centre: needs exactly the pixel under the
	// output position.
	s4 := u.SelectRow(m, 4)
	want := []int8{1, 2, 3, 4}
	for i := range want {
		if s4[i] != want[i] {
			t.Fatalf("centre row stream = %v, want %v", s4, want)
		}
	}
}

func TestRowAssignmentsUnrolling(t *testing.T) {
	l := workload.Layer{Name: "x", Kind: workload.Conv,
		H: 8, W: 8, C: 3, R: 2, S: 2, M: 4, Stride: 1}
	all := RowAssignments(l, 0, 100)
	if len(all) != 12 { // R·S·C
		t.Fatalf("full unroll = %d rows, want 12", len(all))
	}
	// Channel-major: first four rows are channel 0's 2×2 window.
	if all[0] != (Assignment{0, 0, 0}) || all[3] != (Assignment{1, 1, 0}) || all[4] != (Assignment{0, 0, 1}) {
		t.Fatalf("unroll order wrong: %v", all[:5])
	}
	// Offsets tile the space.
	tile := RowAssignments(l, 10, 8)
	if len(tile) != 2 {
		t.Fatalf("tail tile = %d rows, want 2", len(tile))
	}
	if got := RowAssignments(l, 12, 8); got != nil {
		t.Fatalf("offset beyond the unroll must return nil, got %v", got)
	}
}

func TestNewRejectsOutOfRangeAssignments(t *testing.T) {
	l := layer2x2()
	for _, bad := range []Assignment{{R: 2}, {S: 2}, {C: 1}, {R: -1}} {
		if _, err := New(l, []Assignment{bad}); err == nil {
			t.Errorf("New must reject assignment %+v", bad)
		}
	}
}

func TestStreamsShapeAndDedup(t *testing.T) {
	l := workload.Layer{Name: "d", Kind: workload.Conv,
		H: 6, W: 6, C: 2, R: 3, S: 3, M: 4, Stride: 1, Pad: 1}
	u, err := New(l, RowAssignments(l, 0, 18))
	if err != nil {
		t.Fatal(err)
	}
	m := seqIfmap(2, 6, 6)
	streams := u.Streams(m)
	if len(streams) != 18 {
		t.Fatalf("streams = %d rows, want 18", len(streams))
	}
	ef := l.OutH() * l.OutW()
	total := 0
	for _, s := range streams {
		if len(s) != ef {
			t.Fatalf("stream length %d, want %d", len(s), ef)
		}
		total += len(s)
	}
	// The DAU delivers R·S× more data than the buffer stores — the
	// duplication the unit reconstructs on the fly (Fig. 8).
	stored := l.H * l.W * l.C
	if total <= 4*stored {
		t.Fatalf("DAU must expand stored pixels substantially: %d delivered vs %d stored", total, stored)
	}
}

func TestDelayDFFs(t *testing.T) {
	l := layer2x2()
	u, _ := New(l, RowAssignments(l, 0, 4))
	// Fig. 9: with a 3-stage PE, row r needs r·(3−1) delay DFFs:
	// 0+2+4+6 = 12.
	if got := u.DelayDFFs(3); got != 12 {
		t.Fatalf("DelayDFFs(3) = %d, want 12", got)
	}
	if got := u.DelayDFFs(1); got != 0 {
		t.Fatalf("single-stage PE needs no delay cascade, got %d", got)
	}
}

func TestInventoryScalesWithRows(t *testing.T) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	small := Inventory(8, 8, 15)
	big := Inventory(64, 8, 15)
	if big.JJs(lib) <= small.JJs(lib) {
		t.Fatal("DAU inventory must grow with served rows")
	}
	if small[sfq.DFFB] == 0 {
		t.Fatal("DAU must contain bypassable special DFFs")
	}
	if small[sfq.MUXCell] != 8*8 {
		t.Fatalf("selector cells = %d, want rows×bits = 64", small[sfq.MUXCell])
	}
}

// Property: every value a DAU stream delivers is either a zero bubble or an
// actual ifmap pixel of the assigned channel — selection never crosses
// channels or fabricates data.
func TestSelectionSoundnessProperty(t *testing.T) {
	f := func(h8, c8, seed uint8) bool {
		h := 3 + int(h8)%6
		c := 1 + int(c8)%3
		l := workload.Layer{Name: "p", Kind: workload.Conv,
			H: h, W: h, C: c, R: 3, S: 3, M: 2, Stride: 1, Pad: 1}
		u, err := New(l, RowAssignments(l, 0, l.R*l.S*l.C))
		if err != nil {
			return false
		}
		m := NewIfmap(c, h, h)
		v := int8(seed)
		for ci := 0; ci < c; ci++ {
			for y := 0; y < h; y++ {
				for x := 0; x < h; x++ {
					v += 7
					if v == 0 {
						v = 1
					}
					m[ci][y][x] = v
				}
			}
		}
		for r := 0; r < u.Rows(); r++ {
			a := RowAssignments(l, 0, l.R*l.S*l.C)[r]
			present := map[int8]bool{0: true}
			for y := 0; y < h; y++ {
				for x := 0; x < h; x++ {
					present[m[a.C][y][x]] = true
				}
			}
			for _, got := range u.SelectRow(m, r) {
				if !present[got] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: for stride 1 without padding, interior outputs never receive
// bubbles — every selected pixel is in bounds.
func TestNoPadNoBubblesProperty(t *testing.T) {
	f := func(h8 uint8) bool {
		h := 4 + int(h8)%8
		l := workload.Layer{Name: "p", Kind: workload.Conv,
			H: h, W: h, C: 1, R: 2, S: 2, M: 1, Stride: 1}
		u, err := New(l, RowAssignments(l, 0, 4))
		if err != nil {
			return false
		}
		m := NewIfmap(1, h, h)
		for y := 0; y < h; y++ {
			for x := 0; x < h; x++ {
				m[0][y][x] = 1 // all ones: any bubble would read 0
			}
		}
		for r := 0; r < 4; r++ {
			for _, v := range u.SelectRow(m, r) {
				if v != 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
