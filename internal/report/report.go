// Package report renders the tables and figure series the benchmark
// harness regenerates: aligned text tables for Tables I–III and labelled
// ASCII bar series for the figures' data.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a titled text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Columns))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one labelled value of a Series.
type Point struct {
	Label string
	Value float64
}

// Series is a titled, labelled value series rendered as ASCII bars — the
// textual equivalent of one figure curve.
type Series struct {
	Title  string
	Unit   string
	Points []Point
}

// NewSeries creates a series.
func NewSeries(title, unit string) *Series {
	return &Series{Title: title, Unit: unit}
}

// Add appends a point.
func (s *Series) Add(label string, value float64) {
	s.Points = append(s.Points, Point{Label: label, Value: value})
}

// Render writes the series as scaled horizontal bars.
func (s *Series) Render(w io.Writer) {
	fmt.Fprintf(w, "-- %s --\n", s.Title)
	maxVal, maxLabel := 0.0, 0
	for _, p := range s.Points {
		if p.Value > maxVal {
			maxVal = p.Value
		}
		if len(p.Label) > maxLabel {
			maxLabel = len(p.Label)
		}
	}
	const barWidth = 46
	for _, p := range s.Points {
		n := 0
		if maxVal > 0 {
			n = int(p.Value / maxVal * barWidth)
		}
		fmt.Fprintf(w, "%s |%s %.4g %s\n", pad(p.Label, maxLabel), strings.Repeat("#", n), p.Value, s.Unit)
	}
}

// String renders the series to a string.
func (s *Series) String() string {
	var b strings.Builder
	s.Render(&b)
	return b.String()
}

// F formats a float compactly with the given precision.
func F(v float64, prec int) string {
	return fmt.Sprintf("%.*f", prec, v)
}

// WriteCSV emits the table as RFC-4180-ish CSV (quoted cells containing
// commas), for plotting the regenerated figures outside the repo.
func (t *Table) WriteCSV(w io.Writer) error {
	writeRow := func(cells []string) error {
		for i, c := range cells {
			if i > 0 {
				if _, err := io.WriteString(w, ","); err != nil {
					return err
				}
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			if _, err := io.WriteString(w, c); err != nil {
				return err
			}
		}
		_, err := io.WriteString(w, "\n")
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}
