package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("b") // short row padded
	tb.AddNote("n=%d", 2)
	out := tb.String()

	for _, want := range []string{"== demo ==", "name", "value", "alpha", "note: n=2", "-----"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q in:\n%s", want, out)
		}
	}
	// Columns align: every data line is at least as wide as the header.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d lines, want 6:\n%s", len(lines), out)
	}
}

func TestSeriesRendering(t *testing.T) {
	s := NewSeries("bars", "u")
	s.Add("big", 10)
	s.Add("half", 5)
	s.Add("zero", 0)
	out := s.String()
	if !strings.Contains(out, "-- bars --") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	bar := func(line string) int { return strings.Count(line, "#") }
	if bar(lines[1]) != 2*bar(lines[2]) {
		t.Errorf("bars must scale with value: %q vs %q", lines[1], lines[2])
	}
	if bar(lines[3]) != 0 {
		t.Error("zero value must render an empty bar")
	}
}

func TestEmptySeriesAndTable(t *testing.T) {
	if out := NewSeries("e", "").String(); !strings.Contains(out, "-- e --") {
		t.Error("empty series must still render its title")
	}
	if out := NewTable("t", "c").String(); !strings.Contains(out, "c") {
		t.Error("empty table must still render headers")
	}
}

func TestF(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatalf("F = %q", F(3.14159, 2))
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("csv", "a", "b")
	tb.AddRow("plain", "1")
	tb.AddRow("with,comma", `with"quote`)
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "a,b\nplain,1\n\"with,comma\",\"with\"\"quote\"\n"
	if got != want {
		t.Fatalf("CSV = %q, want %q", got, want)
	}
}
