package cooling

import (
	"math"
	"testing"
	"testing/quick"
)

// Table III arithmetic reproduced end to end: with the paper's SuperNPU
// speedup (23× a 40 W TPU) the ERSFQ design at 1.9 W reaches ~490× perf/W
// with free cooling and ~1.2× with the 400× cooling cost; RSFQ at 964 W is
// ~0.95× and ~0.002×.
func TestTable3Arithmetic(t *testing.T) {
	const tpuPerf = 16e12 // effective MAC/s, arbitrary scale
	tpu := Efficiency{Name: "TPU", Throughput: tpuPerf, ChipPower: 40, Scenario: FreeCooling}

	cases := []struct {
		name     string
		power    float64
		scenario Scenario
		want     float64
		tol      float64
	}{
		{"ERSFQ w/o cooling", 1.9, FreeCooling, 484, 10},
		{"ERSFQ w/ cooling", 1.9, FullCooling, 1.21, 0.05},
		{"RSFQ w/o cooling", 964, FreeCooling, 0.954, 0.02},
		{"RSFQ w/ cooling", 964, FullCooling, 0.00239, 0.0002},
	}
	for _, c := range cases {
		e := Efficiency{Name: c.name, Throughput: 23 * tpuPerf, ChipPower: c.power, Scenario: c.scenario}
		got := e.RelativeTo(tpu)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: perf/W = %.4g× TPU, want %.4g", c.name, got, c.want)
		}
	}
}

func TestWallPower(t *testing.T) {
	if WallPower(1.9) != 760 {
		t.Fatalf("WallPower(1.9) = %g, want 760", WallPower(1.9))
	}
}

func TestScenarioString(t *testing.T) {
	if FreeCooling.String() != "w/o cooling cost" || FullCooling.String() != "w/ cooling cost" {
		t.Fatal("unexpected scenario strings")
	}
}

func TestZeroPowerGuards(t *testing.T) {
	z := Efficiency{Throughput: 1e12, ChipPower: 0}
	if z.PerfPerWatt() != 0 {
		t.Fatal("zero power must yield zero perf/W, not +Inf")
	}
	e := Efficiency{Throughput: 1e12, ChipPower: 10}
	if e.RelativeTo(z) != 0 {
		t.Fatal("relative to a zero-perf/W reference must be 0")
	}
}

// Property: cooling always costs exactly 400× and never changes ordering.
func TestCoolingOrderInvarianceProperty(t *testing.T) {
	f := func(p1, p2 uint16, t1, t2 uint32) bool {
		a := Efficiency{Throughput: float64(t1) + 1, ChipPower: float64(p1) + 1}
		b := Efficiency{Throughput: float64(t2) + 1, ChipPower: float64(p2) + 1}
		aFull, bFull := a, b
		aFull.Scenario, bFull.Scenario = FullCooling, FullCooling
		// 400× scaling.
		if math.Abs(aFull.Power()-400*a.Power()) > 1e-9 {
			return false
		}
		// Order preservation.
		return (a.PerfPerWatt() > b.PerfPerWatt()) == (aFull.PerfPerWatt() > bFull.PerfPerWatt())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
