// Package cooling models the 4 K cryocooler overhead and the
// performance-per-watt accounting of Table III. Following Holmes et al.
// (the paper's [46]), extracting one watt dissipated at 4 K costs about
// 400 watts at the wall; the paper also evaluates the "free cooling"
// scenario of a shared cryogenic facility, as assumed in quantum computing.
package cooling

// OverheadFactor is the wall-power multiplier of a 4 K cryocooler.
const OverheadFactor = 400.0

// WallPower converts 4 K chip power to total wall power including cooling.
func WallPower(chipPower float64) float64 { return chipPower * OverheadFactor }

// Scenario selects how cooling is charged.
type Scenario int

const (
	// FreeCooling charges only chip power (shared cryogenic facility).
	FreeCooling Scenario = iota
	// FullCooling charges the 400× cryocooler overhead.
	FullCooling
)

// String implements fmt.Stringer.
func (s Scenario) String() string {
	if s == FullCooling {
		return "w/ cooling cost"
	}
	return "w/o cooling cost"
}

// Efficiency is one Table III row: a design's throughput per watt,
// optionally normalised to a reference design.
type Efficiency struct {
	Name       string
	Throughput float64 // MAC/s
	ChipPower  float64 // W at 4 K (or ambient for CMOS)
	Scenario   Scenario
}

// Power is the charged power of the row under its scenario.
func (e Efficiency) Power() float64 {
	if e.Scenario == FullCooling {
		return WallPower(e.ChipPower)
	}
	return e.ChipPower
}

// PerfPerWatt is throughput divided by charged power.
func (e Efficiency) PerfPerWatt() float64 {
	if e.Power() <= 0 {
		return 0
	}
	return e.Throughput / e.Power()
}

// RelativeTo returns this row's perf/W normalised to the reference row's.
func (e Efficiency) RelativeTo(ref Efficiency) float64 {
	r := ref.PerfPerWatt()
	if r == 0 {
		return 0
	}
	return e.PerfPerWatt() / r
}
