package server

import (
	"context"
	"encoding/json"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"supernpu/internal/core"
	"supernpu/internal/guard/leaktest"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// quiet suppresses the per-request log in tests.
var quiet = log.New(io.Discard, "", 0)

// newTestServer returns a started httptest server over a fresh Server.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logger == nil {
		opts.Logger = quiet
	}
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// post sends a JSON body and returns status, response bytes and headers.
func post(t *testing.T, url, body string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b, resp.Header
}

// get fetches a URL and returns status and body.
func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp.StatusCode, b
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := get(t, ts.URL+"/healthz")
	if status != http.StatusOK || !strings.Contains(string(body), `"ok"`) {
		t.Fatalf("healthz = %d %q", status, body)
	}
}

func TestEvaluateMatchesDirectCall(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"ResNet50","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate = %d %s", status, body)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	d, err := core.DesignByName("SuperNPU")
	if err != nil {
		t.Fatal(err)
	}
	w, err := workload.ByName("ResNet50")
	if err != nil {
		t.Fatal(err)
	}
	ev, err := core.Evaluate(context.Background(), d, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := evaluationResponse(ev)
	if got != want {
		t.Fatalf("served evaluation diverges from direct call:\n got %+v\nwant %+v", got, want)
	}
}

func TestEvaluateCustomNetworkAndERSFQ(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	body := `{"design":"ERSFQ-SuperNPU","batch":1,"network":{"name":"tiny",
		"layers":[{"name":"c1","kind":"conv","h":8,"w":8,"c":3,"r":3,"s":3,"m":8,"stride":1,"pad":1}]}}`
	status, b, _ := post(t, ts.URL+"/v1/evaluate", body)
	if status != http.StatusOK {
		t.Fatalf("custom evaluate = %d %s", status, b)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Design != "ERSFQ-SuperNPU" || got.Network != "tiny" || got.Throughput <= 0 {
		t.Fatalf("unexpected evaluation: %+v", got)
	}
}

func TestEvaluateValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	cases := []struct {
		name, body string
		wantStatus int
		wantSubstr string
	}{
		{"empty", `{}`, 400, "design is required"},
		{"unknown design", `{"design":"nope","workload":"AlexNet"}`, 400, "unknown design"},
		{"unknown workload", `{"design":"TPU","workload":"nope"}`, 400, "unknown"},
		{"no workload", `{"design":"TPU"}`, 400, "one of workload or network"},
		{"both", `{"design":"TPU","workload":"AlexNet","network":{"name":"x","layers":[]}}`, 400, "mutually exclusive"},
		{"negative batch", `{"design":"TPU","workload":"AlexNet","batch":-1}`, 400, "batch"},
		{"unknown field", `{"design":"TPU","workload":"AlexNet","bogus":1}`, 400, "bogus"},
		{"trailing data", `{"design":"TPU","workload":"AlexNet"}{}`, 400, "trailing"},
		{"not json", `hello`, 400, "invalid JSON"},
		{"bad layer kind", `{"design":"TPU","network":{"name":"x","layers":[{"name":"l","kind":"bogus"}]}}`, 400, "unknown layer kind"},
		{"huge dims", `{"design":"TPU","network":{"name":"x","layers":[{"name":"l","kind":"conv","h":99999,"w":1,"c":1,"r":1,"s":1,"m":1}]}}`, 400, "out of"},
		{"invalid shape", `{"design":"SuperNPU","network":{"name":"x","layers":[{"name":"l","kind":"conv","h":2,"w":2,"c":1,"r":5,"s":5,"m":1}]}}`, 400, "empty output"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body, _ := post(t, ts.URL+"/v1/evaluate", tc.body)
			if status != tc.wantStatus || !strings.Contains(string(body), tc.wantSubstr) {
				t.Fatalf("got %d %s, want %d containing %q", status, body, tc.wantStatus, tc.wantSubstr)
			}
		})
	}
}

func TestEstimate(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body, _ := post(t, ts.URL+"/v1/estimate", `{"design":"SuperNPU"}`)
	if status != http.StatusOK {
		t.Fatalf("estimate = %d %s", status, body)
	}
	var got EstimateResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.FrequencyHz <= 0 || got.Area28nmM2 <= 0 || len(got.Units) == 0 {
		t.Fatalf("degenerate estimate: %+v", got)
	}

	// A full custom configuration round-trips through validation.
	custom := `{"config":{"name":"mini","arrayHeight":64,"arrayWidth":64,"registers":2,
		"ifmapBufBytes":1048576,"ifmapChunks":16,"outputBufBytes":1048576,"outputChunks":16,
		"integratedOutput":true,"weightBufBytes":16384}}`
	status, body, _ = post(t, ts.URL+"/v1/estimate", custom)
	if status != http.StatusOK {
		t.Fatalf("custom estimate = %d %s", status, body)
	}

	// The estimator rejects CMOS designs and inconsistent configs.
	for _, bad := range []string{
		`{"design":"TPU"}`,
		`{}`,
		`{"design":"SuperNPU","config":{"arrayHeight":1,"arrayWidth":1,"registers":1,"ifmapBufBytes":1,"outputBufBytes":1,"weightBufBytes":1}}`,
		`{"config":{"arrayHeight":0,"arrayWidth":64,"registers":1,"ifmapBufBytes":1048576,"outputBufBytes":1048576,"weightBufBytes":16384}}`,
	} {
		if status, body, _ := post(t, ts.URL+"/v1/estimate", bad); status != http.StatusBadRequest {
			t.Fatalf("estimate(%s) = %d %s, want 400", bad, status, body)
		}
	}
}

func TestExplore(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body, _ := post(t, ts.URL+"/v1/explore", `{"sweep":"division","degrees":[2,4]}`)
	if status != http.StatusOK {
		t.Fatalf("explore = %d %s", status, body)
	}
	var got ExploreResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	// ExploreDivision prepends the Baseline and Integration references.
	if got.Sweep != "division" || len(got.Points) != 4 {
		t.Fatalf("unexpected sweep: %+v", got)
	}
	for _, bad := range []string{
		`{"sweep":"bogus"}`,
		`{"sweep":"division"}`,
		`{"sweep":"division","degrees":[0]}`,
		`{"sweep":"registers","width":7,"registers":[1]}`,
		`{"sweep":"registers","width":64}`,
	} {
		if status, body, _ := post(t, ts.URL+"/v1/explore", bad); status != http.StatusBadRequest {
			t.Fatalf("explore(%s) = %d %s, want 400", bad, status, body)
		}
	}
}

func TestListingsAndStats(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	status, body := get(t, ts.URL+"/v1/designs")
	if status != http.StatusOK || !strings.Contains(string(body), "SuperNPU") {
		t.Fatalf("designs = %d %s", status, body)
	}
	var designs []DesignResponse
	if err := json.Unmarshal(body, &designs); err != nil || len(designs) != 5 {
		t.Fatalf("want 5 designs, got %d (%v)", len(designs), err)
	}

	status, body = get(t, ts.URL+"/v1/workloads")
	var nets []WorkloadResponse
	if err := json.Unmarshal(body, &nets); err != nil || status != http.StatusOK || len(nets) != 6 {
		t.Fatalf("workloads = %d %s (%v)", status, body, err)
	}

	status, body = get(t, ts.URL+"/debug/stats")
	var stats statsResponse
	if err := json.Unmarshal(body, &stats); err != nil || status != http.StatusOK {
		t.Fatalf("stats = %d %s (%v)", status, body, err)
	}
	if stats.MaxConcurrent <= 0 || stats.QueueDepth <= 0 {
		t.Fatalf("degenerate stats: %+v", stats)
	}

	status, body = get(t, ts.URL+"/debug/vars")
	if status != http.StatusOK || !strings.Contains(string(body), "supernpu.server.requests") {
		t.Fatalf("expvar = %d", status)
	}

	// Unknown routes and wrong methods are 404/405.
	if status, _ := get(t, ts.URL+"/v1/evaluate"); status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/evaluate = %d, want 405", status)
	}
	if status, _ := get(t, ts.URL+"/nope"); status != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", status)
	}
}

// TestBackpressure429 drives the limiter deterministically with a blocking
// inner handler: one request holds the work slot, one waits in the queue,
// and the next is shed with 429 + Retry-After at exactly the configured
// bound.
func TestBackpressure429(t *testing.T) {
	s := New(Options{MaxConcurrent: 1, QueueDepth: 1, Timeout: -1, Logger: quiet})
	block := make(chan struct{})
	started := make(chan struct{}, 4)
	ts := httptest.NewServer(s.limit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
		w.WriteHeader(http.StatusOK)
	})))
	defer ts.Close()

	type result struct {
		status int
		err    error
	}
	results := make(chan result, 2)
	do := func() {
		resp, err := http.Get(ts.URL)
		if err != nil {
			results <- result{0, err}
			return
		}
		resp.Body.Close()
		results <- result{resp.StatusCode, nil}
	}

	go do() // occupies the work slot
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never started")
	}
	go do() // waits in the queue
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(100 * time.Microsecond)
	}

	// Queue full: the third request must be rejected immediately.
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound request = %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("429 body = %s", body)
	}

	// Releasing the slot lets both admitted requests finish with 200.
	close(block)
	for i := 0; i < 2; i++ {
		select {
		case res := <-results:
			if res.err != nil || res.status != http.StatusOK {
				t.Fatalf("admitted request = %d, err %v, want 200", res.status, res.err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("admitted request never completed")
		}
	}
	if q := s.queued.Load(); q != 0 {
		t.Fatalf("queued gauge = %d after drain, want 0", q)
	}
}

// TestTimeout bounds a slow request with the per-request timeout.
func TestTimeout(t *testing.T) {
	_, ts := newTestServer(t, Options{Timeout: time.Nanosecond})
	status, body, _ := post(t, ts.URL+"/v1/evaluate", `{"design":"SuperNPU","workload":"ResNet50"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("timed-out request = %d %s, want 503", status, body)
	}
	if !strings.Contains(string(body), "timed out") {
		t.Fatalf("timeout body = %s", body)
	}
}

// TestGracefulDrain starts Serve on a real listener, parks a request in
// flight, cancels the serve context and verifies the request still completes
// with a full response before Serve returns.
func TestGracefulDrain(t *testing.T) {
	leaktest.Check(t)
	simcache.ClearAll()
	s := New(Options{MaxConcurrent: 2, QueueDepth: 8, Logger: quiet})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 30*time.Second) }()
	url := "http://" + l.Addr().String()

	// A cold division sweep is the slowest single request we can make.
	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url+"/v1/explore", "application/json",
			strings.NewReader(`{"sweep":"division","degrees":[2,3,4,5,6,7,8,12,16,24,32,48,64]}`))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		replies <- reply{resp.StatusCode, b, err}
	}()

	// Wait for the request to hold a work slot, then pull the plug.
	base := time.Now()
	for s.metrics.running.Value() == 0 {
		if time.Since(base) > 5*time.Second {
			t.Fatal("request never started running")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel()

	r := <-replies
	if r.err != nil {
		t.Fatalf("in-flight request failed during drain: %v", r.err)
	}
	if r.status != http.StatusOK {
		t.Fatalf("in-flight request = %d %s, want 200", r.status, r.body)
	}
	var sweep ExploreResponse
	if err := json.Unmarshal(r.body, &sweep); err != nil || len(sweep.Points) != 15 {
		t.Fatalf("drained response truncated: %d points, err %v", len(sweep.Points), err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}

	// New connections are refused after shutdown.
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}
