// Concurrent load tests: the acceptance gate of the evaluation service.
// A mixed duplicate/distinct request set is replayed serially to record
// reference bytes, then hammered concurrently (cold and warm caches) and
// every response must match the serial bytes exactly. A second test drives
// real evaluation traffic through a tiny queue until the 429 path sheds
// load. Run under -race (make check does).
package server

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"supernpu/internal/simcache"
)

// loadRequests builds the mixed request set: duplicates of hot evaluations,
// distinct design×workload pairs, estimator queries, a sweep, and listing
// reads — 64 requests total.
type loadRequest struct {
	method, path, body string
}

func loadRequests() []loadRequest {
	var reqs []loadRequest
	designs := []string{"TPU", "Baseline", "Buffer opt.", "Resource opt.", "SuperNPU"}
	nets := []string{"AlexNet", "VGG16", "GoogLeNet", "MobileNet", "ResNet50", "FasterRCNN"}
	// 30 distinct evaluations (5 designs × 6 workloads).
	for _, d := range designs {
		for _, n := range nets {
			reqs = append(reqs, loadRequest{"POST", "/v1/evaluate",
				fmt.Sprintf(`{"design":%q,"workload":%q}`, d, n)})
		}
	}
	// 16 duplicates of one hot evaluation: these must coalesce in-flight.
	for i := 0; i < 16; i++ {
		reqs = append(reqs, loadRequest{"POST", "/v1/evaluate",
			`{"design":"SuperNPU","workload":"ResNet50","batch":1}`})
	}
	// 8 estimator queries (4 designs, duplicated).
	for i := 0; i < 8; i++ {
		reqs = append(reqs, loadRequest{"POST", "/v1/estimate",
			fmt.Sprintf(`{"design":%q}`, designs[1+i%4])})
	}
	// 2 sweeps and 8 listing reads.
	reqs = append(reqs,
		loadRequest{"POST", "/v1/explore", `{"sweep":"registers","width":64,"registers":[1,8]}`},
		loadRequest{"POST", "/v1/explore", `{"sweep":"registers","width":64,"registers":[1,8]}`},
	)
	for i := 0; i < 4; i++ {
		reqs = append(reqs,
			loadRequest{"GET", "/v1/designs", ""},
			loadRequest{"GET", "/v1/workloads", ""},
		)
	}
	return reqs
}

// do issues one request and returns status + body.
func (lr loadRequest) do(client *http.Client, base string) (int, []byte, error) {
	var resp *http.Response
	var err error
	switch lr.method {
	case "GET":
		resp, err = client.Get(base + lr.path)
	default:
		resp, err = client.Post(base+lr.path, "application/json", strings.NewReader(lr.body))
	}
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return resp.StatusCode, b, err
}

// TestConcurrentLoadMatchesSerial is the byte-identity gate: 64 mixed
// requests, first serial (reference), then all at once against cold caches,
// then again warm. Every concurrent response must equal its serial bytes.
func TestConcurrentLoadMatchesSerial(t *testing.T) {
	goroutinesBefore := runtime.NumGoroutine()

	// A queue deep enough that nothing is shed: identity is the subject
	// here, load shedding has its own test below.
	_, ts := newTestServer(t, Options{MaxConcurrent: 4, QueueDepth: 64})
	client := ts.Client()
	reqs := loadRequests()

	// Serial reference pass.
	simcache.ClearAll()
	want := make([][]byte, len(reqs))
	for i, lr := range reqs {
		status, body, err := lr.do(client, ts.URL)
		if err != nil || status != http.StatusOK {
			t.Fatalf("serial request %d (%s %s) = %d, err %v", i, lr.method, lr.path, status, err)
		}
		want[i] = body
	}

	hammer := func(label string) {
		got := make([][]byte, len(reqs))
		errs := make([]error, len(reqs))
		var wg sync.WaitGroup
		for i := range reqs {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				status, body, err := reqs[i].do(client, ts.URL)
				if err == nil && status != http.StatusOK {
					err = fmt.Errorf("status %d: %s", status, body)
				}
				got[i], errs[i] = body, err
			}(i)
		}
		wg.Wait()
		for i := range reqs {
			if errs[i] != nil {
				t.Fatalf("%s: concurrent request %d (%s %s): %v", label, i, reqs[i].method, reqs[i].path, errs[i])
			}
			if string(got[i]) != string(want[i]) {
				t.Fatalf("%s: request %d (%s %s) diverged from serial:\n got %s\nwant %s",
					label, i, reqs[i].method, reqs[i].path, got[i], want[i])
			}
		}
	}

	// Cold pass: every simulation recomputes, duplicates coalesce in-flight.
	simcache.ClearAll()
	hammer("cold")
	// Warm pass: everything served from the memo caches.
	hammer("warm")

	// The limiter and the coalesced computations must not leak goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > goroutinesBefore+10 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before load, %d after", goroutinesBefore, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoadShedsAt429 drives real evaluation traffic through a one-slot,
// one-deep queue until the limiter sheds load on the live path (not a stub):
// with 16 simultaneous cold sweeps against capacity 2, rejections must
// appear, and every shed response carries Retry-After.
func TestLoadShedsAt429(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxConcurrent: 1, QueueDepth: 1})
	client := ts.Client()

	// Each request is a wide cold sweep (~tens of points), so service time
	// far exceeds request-arrival time and overlap is effectively certain;
	// rounds repeat with a deadline in case the scheduler still lines the
	// first arrivals up serially.
	degrees := func(off int) string {
		var b strings.Builder
		for d := 0; d < 24; d++ {
			if d > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", 2+off+d)
		}
		return b.String()
	}
	var rejected, served int
	deadline := time.Now().Add(30 * time.Second)
	for round := 0; rejected == 0; round++ {
		if time.Now().After(deadline) {
			break
		}
		simcache.ClearAll() // keep the work slow: no memoised shortcuts
		var mu sync.Mutex
		var wg sync.WaitGroup
		for i := 0; i < 16; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				resp, err := client.Post(ts.URL+"/v1/explore", "application/json",
					strings.NewReader(fmt.Sprintf(`{"sweep":"division","degrees":[%s]}`, degrees(100*round+40*i))))
				if err != nil {
					return
				}
				defer resp.Body.Close()
				io.Copy(io.Discard, resp.Body)
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusTooManyRequests:
					rejected++
					if resp.Header.Get("Retry-After") == "" {
						t.Error("429 without Retry-After")
					}
				case http.StatusOK:
					served++
				}
			}(i)
		}
		wg.Wait()
	}
	if rejected == 0 {
		t.Fatal("queue bound never produced a 429 under sustained overload")
	}
	if served == 0 {
		t.Fatal("overloaded server served nothing at all")
	}
}
