package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"supernpu/internal/jsim"
	"supernpu/internal/sfq"
)

// promFamily is one parsed metric family of a /metrics scrape.
type promFamily struct {
	name    string
	kind    string
	samples int
}

var (
	helpRe     = regexp.MustCompile(`^# HELP ([a-zA-Z_:][a-zA-Z0-9_:]*) (.*)$`)
	typeRe     = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram)$`)
	promSample = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)` +
		`(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*"` +
		`(,[a-zA-Z_][a-zA-Z0-9_]*="(\\\\|\\"|\\n|[^"\\])*")*\})? (.+)$`)
)

// parsePrometheus is a strict parser for the text exposition subset the
// registry emits: HELP then TYPE then samples per family, sample names
// matching the family (plus _bucket/_sum/_count for histograms), values
// parsing as floats (or +Inf in le labels). Any violation fails the test.
func parsePrometheus(t *testing.T, body string) map[string]promFamily {
	t.Helper()
	families := map[string]promFamily{}
	var cur *promFamily
	var sawHelp string
	for i, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		at := func(format string, args ...any) {
			t.Fatalf("line %d: %s\n  %q", i+1, fmt.Sprintf(format, args...), line)
		}
		if m := helpRe.FindStringSubmatch(line); m != nil {
			if _, dup := families[m[1]]; dup {
				at("family %s declared twice", m[1])
			}
			sawHelp = m[1]
			continue
		}
		if m := typeRe.FindStringSubmatch(line); m != nil {
			if sawHelp != m[1] {
				at("TYPE for %s not directly after its HELP", m[1])
			}
			if cur != nil {
				families[cur.name] = *cur
			}
			cur = &promFamily{name: m[1], kind: m[2]}
			continue
		}
		m := promSample.FindStringSubmatch(line)
		if m == nil {
			at("not a HELP, TYPE or sample line")
		}
		if cur == nil {
			at("sample before any TYPE declaration")
		}
		name, value := m[1], m[len(m)-1]
		switch cur.kind {
		case "histogram":
			if name != cur.name+"_bucket" && name != cur.name+"_sum" && name != cur.name+"_count" {
				at("histogram sample %s outside family %s", name, cur.name)
			}
		default:
			if name != cur.name {
				at("sample %s outside family %s", name, cur.name)
			}
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			at("sample value %q does not parse: %v", value, err)
		}
		cur.samples++
	}
	if cur != nil {
		families[cur.name] = *cur
	}
	return families
}

// TestMetricsEndpoint scrapes GET /metrics after touching every
// instrumented layer (HTTP, pool, caches via an evaluation; jsim via a
// direct transient) and asserts the scrape parses strictly and covers the
// server, cache, pool and jsim instrument families.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Tick the jsim counters: the serving path reaches the solver only
	// through memoised extraction, so run one small transient directly.
	var pd jsim.PulseDetector
	if err := jsim.NewSolver().RunChain(context.Background(), jsim.StandardJTL(4),
		40*sfq.Picosecond, 0.05*sfq.Picosecond, &pd); err != nil {
		t.Fatal(err)
	}
	// Tick the HTTP/pool/cache instruments with one real evaluation.
	if status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"AlexNet","batch":1}`); status != http.StatusOK {
		t.Fatalf("evaluate = %d %s", status, body)
	}

	if status, _, _ := post(t, ts.URL+"/metrics", ""); status != http.StatusMethodNotAllowed {
		t.Errorf("POST /metrics = %d, want %d", status, http.StatusMethodNotAllowed)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text/plain; version=0.0.4", ct)
	}
	families := parsePrometheus(t, string(raw))

	for _, want := range []struct {
		name string
		kind string
	}{
		{"supernpu_http_requests_total", "counter"},
		{"supernpu_http_inflight", "gauge"},
		{"supernpu_http_queued", "gauge"},
		{"supernpu_http_shed_total", "counter"},
		{"supernpu_http_panics_total", "counter"},
		{"supernpu_http_degraded_total", "counter"},
		{"supernpu_http_request_seconds", "histogram"},
		{"supernpu_cache_hits_total", "counter"},
		{"supernpu_cache_misses_total", "counter"},
		{"supernpu_cache_entries", "gauge"},
		{"supernpu_cache_inflight", "gauge"},
		{"supernpu_pool_tasks_total", "counter"},
		{"supernpu_pool_runs_total", "counter"},
		{"supernpu_pool_panics_total", "counter"},
		{"supernpu_pool_workers", "gauge"},
		{"supernpu_pool_queue_wait_seconds", "histogram"},
		{"supernpu_jsim_transients_total", "counter"},
		{"supernpu_jsim_steps_total", "counter"},
		{"supernpu_jsim_pulses_total", "counter"},
	} {
		f, ok := families[want.name]
		if !ok {
			t.Errorf("scrape missing family %s", want.name)
			continue
		}
		if f.kind != want.kind {
			t.Errorf("family %s is a %s, want %s", want.name, f.kind, want.kind)
		}
		if f.samples == 0 {
			t.Errorf("family %s has no samples", want.name)
		}
	}

	// The legacy expvar mirrors must keep working alongside /metrics.
	status, body := get(t, ts.URL+"/debug/stats")
	if status != http.StatusOK || !strings.Contains(string(body), `"requests"`) {
		t.Fatalf("debug/stats after metrics = %d %s", status, body)
	}
}
