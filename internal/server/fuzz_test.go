// Native Go fuzz targets for the request-decoding surface: arbitrary bytes
// through the strict JSON decoders and validators must never panic, leak a
// goroutine or admit an out-of-bounds configuration. Seed corpora live in
// testdata/fuzz/; run with
//
//	go test ./internal/server -run='^$' -fuzz=FuzzDecodeRequests -fuzztime=30s
package server

import (
	"bytes"
	"runtime"
	"testing"
	"time"
)

// decodeAll drives one input through every request decoder+validator pair,
// exactly as the handlers do before admitting work to the pool.
func decodeAll(data []byte) {
	var ev EvaluateRequest
	if err := decodeJSON(bytes.NewReader(data), &ev); err == nil {
		if d, net, err := ev.resolve(); err == nil {
			// A resolved request must be in-bounds: these invariants are
			// what protect the simulators from adversarial inputs.
			if len(net.Layers) > maxLayers {
				panic("resolve admitted an oversized network")
			}
			if ev.Batch < 0 || ev.Batch > maxBatch {
				panic("resolve admitted an out-of-range batch")
			}
			_ = d
		}
	}
	var es EstimateRequest
	if err := decodeJSON(bytes.NewReader(data), &es); err == nil {
		if cfg, err := es.resolve(); err == nil {
			if cfg.ArrayHeight <= 0 || cfg.ArrayHeight > maxArrayDim ||
				cfg.ArrayWidth <= 0 || cfg.ArrayWidth > maxArrayDim {
				panic("resolve admitted an out-of-bounds array")
			}
			if err := cfg.Validate(); err != nil {
				panic("resolve admitted an invalid config: " + err.Error())
			}
		}
	}
	var ex ExploreRequest
	if err := decodeJSON(bytes.NewReader(data), &ex); err == nil {
		_ = ex.validate()
	}
}

func FuzzDecodeRequests(f *testing.F) {
	seeds := []string{
		// Valid requests of each shape.
		`{"design":"SuperNPU","workload":"ResNet50","batch":1}`,
		`{"design":"ERSFQ-SuperNPU","workload":"AlexNet"}`,
		`{"design":"TPU","network":{"name":"t","layers":[{"name":"c","kind":"conv","h":8,"w":8,"c":3,"r":3,"s":3,"m":8,"pad":1}]}}`,
		`{"design":"SuperNPU"}`,
		`{"config":{"arrayHeight":64,"arrayWidth":64,"registers":1,"ifmapBufBytes":1048576,"outputBufBytes":1048576,"integratedOutput":true,"weightBufBytes":16384}}`,
		`{"sweep":"division","degrees":[2,4,8]}`,
		`{"sweep":"width"}`,
		`{"sweep":"registers","width":64,"registers":[1,8]}`,
		// Malformed and adversarial shapes.
		``,
		`null`,
		`[]`,
		`{}`,
		`{"design":1e309}`,
		`{"design":"SuperNPU","batch":-9223372036854775808}`,
		`{"network":{"name":"x","layers":[{"h":99999999999}]}}`,
		`{"config":{"arrayHeight":2147483647,"arrayWidth":2147483647}}`,
		`{"sweep":"division","degrees":[-1,0,65536]}`,
		`{"design":"SuperNPU"}{"design":"TPU"}`,
		"{\"design\":\"\x1fSuperNPU\"}",
		`{"design":"SuperNPU","unknown":{"deeply":{"nested":[1,2,3]}}}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		before := runtime.NumGoroutine()
		decodeAll(data)
		// Decoding is synchronous: any goroutine growth is a leak. Allow
		// brief scheduler noise before declaring one.
		if runtime.NumGoroutine() > before {
			deadline := time.Now().Add(time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if g := runtime.NumGoroutine(); g > before {
				t.Fatalf("decode leaked goroutines: %d -> %d", before, g)
			}
		}
	})
}
