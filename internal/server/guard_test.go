// Tests for the service's resilience surface: the divergence circuit
// breaker on /v1/evaluate, the backlog-derived Retry-After hint and the
// cancellation taxonomy on the request path.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"supernpu/internal/guard"
)

// tripBreaker feeds the server's breaker the configured number of numeric
// failures for key, as if that many consecutive simulations had diverged.
func tripBreaker(s *Server, key string, n int) {
	err := fmt.Errorf("simulated failure: %w", guard.ErrDiverged)
	for i := 0; i < n; i++ {
		s.breaker.Record(key, err)
	}
}

// TestEvaluateBreakerServesDegraded trips the divergence breaker for one
// design and verifies /v1/evaluate short-circuits onto the analytical
// roofline — 200 with "degraded": true and the breaker named in the reason —
// while other designs keep simulating normally.
func TestEvaluateBreakerServesDegraded(t *testing.T) {
	s, ts := newTestServer(t, Options{BreakerThreshold: 3, BreakerProbeEvery: 1 << 20})
	tripBreaker(s, "SuperNPU", 3)
	if !s.breaker.Open("SuperNPU") {
		t.Fatal("breaker not open after threshold failures")
	}

	status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"ResNet50","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate with open breaker = %d %s, want 200", status, body)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || !strings.Contains(got.DegradedReason, "breaker open") {
		t.Fatalf("want degraded response naming the breaker, got %+v", got)
	}
	if got.Throughput <= 0 {
		t.Fatalf("analytical fallback produced a degenerate evaluation: %+v", got)
	}

	// An untripped design still gets the full simulation.
	status, body, _ = post(t, ts.URL+"/v1/evaluate",
		`{"design":"Baseline","workload":"AlexNet","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("evaluate of untripped design = %d %s", status, body)
	}
	var other EvaluationResponse
	if err := json.Unmarshal(body, &other); err != nil {
		t.Fatal(err)
	}
	if other.Degraded {
		t.Fatalf("untripped design served degraded: %+v", other)
	}
}

// TestEvaluateBreakerRecoversViaProbe opens the breaker, then lets the
// half-open probe through: with probeEvery=1 the very next request runs the
// real (healthy) simulation, which closes the breaker again.
func TestEvaluateBreakerRecoversViaProbe(t *testing.T) {
	s, ts := newTestServer(t, Options{BreakerThreshold: 2, BreakerProbeEvery: 1})
	tripBreaker(s, "SuperNPU", 2)

	status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"ResNet50","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("probe request = %d %s", status, body)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatalf("probe request served degraded: %+v", got)
	}
	if s.breaker.Open("SuperNPU") {
		t.Fatal("breaker still open after a successful probe")
	}
}

// TestRetryAfterDerivation pins the backlog → Retry-After mapping: at least
// one drain round, growing in whole rounds with queue depth, capped at a
// minute.
func TestRetryAfterDerivation(t *testing.T) {
	s := New(Options{MaxConcurrent: 4, Logger: quiet})
	cases := []struct {
		queued int64
		want   int
	}{
		{0, 1}, {1, 1}, {4, 1}, {5, 2}, {8, 2}, {9, 3}, {400, 60}, {1 << 40, 60},
	}
	for _, c := range cases {
		if got := s.retryAfter(c.queued); got != c.want {
			t.Errorf("retryAfter(%d) = %d, want %d", c.queued, got, c.want)
		}
	}
	prev := 0
	for q := int64(0); q <= 64; q += 4 {
		got := s.retryAfter(q)
		if got < prev {
			t.Fatalf("retryAfter not monotone: retryAfter(%d) = %d < %d", q, got, prev)
		}
		prev = got
	}
}

// TestRetryAfterGrowsUnderLoad drives the limiter with a blocking handler —
// one request running, the queue full — and asserts the shed response's
// Retry-After reflects the real backlog (queued/slots drain rounds) instead
// of the historical constant 1.
func TestRetryAfterGrowsUnderLoad(t *testing.T) {
	const depth = 6
	s := New(Options{MaxConcurrent: 1, QueueDepth: depth, Timeout: -1, Logger: quiet})
	block := make(chan struct{})
	started := make(chan struct{}, depth+2)
	ts := httptest.NewServer(s.limit(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-block
		w.WriteHeader(http.StatusOK)
	})))
	defer ts.Close()
	defer close(block)

	do := func() {
		resp, err := http.Get(ts.URL)
		if err == nil {
			resp.Body.Close()
		}
	}
	go do() // occupies the single work slot
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never started")
	}
	for i := 0; i < depth; i++ {
		go do()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() != depth {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: %d of %d", s.queued.Load(), depth)
		}
		time.Sleep(100 * time.Microsecond)
	}

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-bound request = %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	if want := depth; ra != want {
		t.Fatalf("Retry-After = %d with %d queued and 1 slot, want %d", ra, depth, want)
	}
}

// TestEvaluateCanceledRequestIs503 serves an evaluate request whose context
// is already dead — the shape every request takes once its TimeoutHandler
// budget expires or its client hangs up. The cancellation must surface as
// 503 with the taxonomy's message, not as a degraded 200 (the design did
// nothing wrong) and not as a 4xx/5xx misclassification.
func TestEvaluateCanceledRequestIs503(t *testing.T) {
	s := New(Options{Logger: quiet})
	before := s.metrics.degraded.Value()

	req := httptest.NewRequest(http.MethodPost, "/v1/evaluate",
		strings.NewReader(`{"design":"SuperNPU","workload":"GoogLeNet","batch":3}`))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req = req.WithContext(ctx)
	rec := httptest.NewRecorder()
	s.handleEvaluate(rec, req)

	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("canceled evaluate = %d %s, want 503", rec.Code, rec.Body)
	}
	if !strings.Contains(rec.Body.String(), "cancel") {
		t.Fatalf("503 body does not name the cancellation: %s", rec.Body)
	}
	if after := s.metrics.degraded.Value(); after != before {
		t.Fatalf("cancellation counted as degraded (%d -> %d)", before, after)
	}
}
