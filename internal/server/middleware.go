// Middleware of the evaluation service: request metrics, the bounded-queue
// backpressure limiter, panic recovery and request logging.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"supernpu/internal/obs"
	"supernpu/internal/simcache"
)

// metrics is the service's instrument surface, backed by the obs registry
// (GET /metrics serves it in Prometheus text format). Gauges (running,
// queued) move in both directions; the rest are monotonic counters. The
// instruments are registered once per process — test servers share them,
// which only ever adds counts.
type metrics struct {
	requests *obs.Counter // every request seen
	running  *obs.Gauge   // requests holding a work slot
	queued   *obs.Gauge   // requests waiting for a work slot
	rejected *obs.Counter // 429 responses from the limiter
	panics   *obs.Counter // handler panics recovered to 500
	degraded *obs.Counter // evaluations served by the analytical fallback
}

// globalMetrics is built at package init; metric names are process-global.
var globalMetrics = &metrics{
	requests: obs.Default.Counter("supernpu_http_requests_total", "requests seen by the service"),
	running:  obs.Default.Gauge("supernpu_http_inflight", "requests holding a work slot"),
	queued:   obs.Default.Gauge("supernpu_http_queued", "requests waiting for a work slot"),
	rejected: obs.Default.Counter("supernpu_http_shed_total", "requests shed with 429 by the backpressure limiter"),
	panics:   obs.Default.Counter("supernpu_http_panics_total", "handler panics recovered to 500"),
	degraded: obs.Default.Counter("supernpu_http_degraded_total", "evaluations served by the analytical fallback"),
}

// requestSeconds returns the request-latency histogram series for one
// classified endpoint (bounded label set — see classifyEndpoint); the
// logging middleware observes into it.
func requestSeconds(endpoint string) *obs.Histogram {
	return obs.Default.Histogram("supernpu_http_request_seconds",
		"request wall time by endpoint", obs.DurationEdges, obs.L("endpoint", endpoint))
}

// classifyEndpoint maps a request path onto a small fixed label set, so
// arbitrary client paths can never explode the metric's cardinality.
func classifyEndpoint(path string) string {
	switch path {
	case "/v1/evaluate", "/v1/estimate", "/v1/explore", "/v1/designs", "/v1/workloads":
		return strings.TrimPrefix(path, "/v1/")
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	}
	if strings.HasPrefix(path, "/debug/") {
		return "debug"
	}
	return "other"
}

// init keeps the service's historical expvar names alive as read-through
// mirrors of the obs instruments (dashboards scrape /debug/vars), and
// mirrors the simulation caches' in-flight gauge: the number of distinct
// (uncoalesced) simulations running right now.
func init() {
	mirror := func(name string, read func() int64) {
		expvar.Publish(name, expvar.Func(func() any { return read() }))
	}
	mirror("supernpu.server.requests", globalMetrics.requests.Value)
	mirror("supernpu.server.running", globalMetrics.running.Value)
	mirror("supernpu.server.queued", globalMetrics.queued.Value)
	mirror("supernpu.server.rejected", globalMetrics.rejected.Value)
	mirror("supernpu.server.panics", globalMetrics.panics.Value)
	mirror("supernpu.server.degraded", globalMetrics.degraded.Value)
	mirror("supernpu.sims.inflight", simcache.TotalInFlight)
}

// limit is the backpressure gate: at most MaxConcurrent requests hold a work
// slot, at most QueueDepth more wait for one, and everything beyond that is
// shed immediately with 429 + Retry-After. The gauges feed /debug/stats.
func (s *Server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			// A work slot was free; skip the queue entirely.
		default:
			// Reserve a queue slot first (Add-then-check keeps the bound
			// exact under concurrent arrivals), then wait for a work slot.
			if q := s.queued.Add(1); q > int64(s.opts.QueueDepth) {
				s.queued.Add(-1)
				s.metrics.rejected.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter(q-1)))
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("queue full (%d running, %d queued); retry later", s.opts.MaxConcurrent, q-1))
				return
			}
			s.metrics.queued.Add(1)
			dequeue := func() {
				s.queued.Add(-1)
				s.metrics.queued.Add(-1)
			}
			select {
			case s.sem <- struct{}{}:
				dequeue()
			case <-r.Context().Done():
				dequeue()
				writeError(w, http.StatusServiceUnavailable, "request abandoned while queued")
				return
			}
		}
		defer func() { <-s.sem }()
		s.metrics.running.Inc()
		defer s.metrics.running.Dec()
		next.ServeHTTP(w, r)
	})
}

// maxRetryAfter caps the backpressure hint: past a minute the client should
// treat the service as down and apply its own policy, not sit on our number.
const maxRetryAfter = 60

// retryAfter derives the Retry-After hint from the actual backlog instead of
// a constant: with queued requests ahead of the newcomer and MaxConcurrent
// work slots draining them, the backlog clears in roughly queued/slots drain
// rounds. The estimate is deliberately in whole rounds (ceiling) so a barely
// full queue still says at least 1, and it grows linearly as the backlog
// deepens — clients backing off proportionally spread their retries instead
// of stampeding back in lockstep one second later.
func (s *Server) retryAfter(queued int64) int {
	slots := int64(s.opts.MaxConcurrent)
	if slots < 1 {
		slots = 1
	}
	rounds := (queued + slots - 1) / slots
	if rounds < 1 {
		rounds = 1
	}
	if rounds > maxRetryAfter {
		rounds = maxRetryAfter
	}
	return int(rounds)
}

// countRequests bumps the total-request counter.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Inc()
		next.ServeHTTP(w, r)
	})
}

// recovery converts handler panics into 500 responses instead of taking the
// whole connection (and the process's other requests) down.
func (s *Server) recovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panics.Inc()
				s.opts.Logger.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// logging emits one line per request (method, path, status, duration) and
// feeds the per-endpoint latency histogram.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		elapsed := time.Since(start)
		requestSeconds(classifyEndpoint(r.URL.Path)).Observe(elapsed.Seconds())
		s.opts.Logger.Printf("server: %s %s %s %s", r.Method, r.URL.Path,
			strconv.Itoa(status), elapsed.Round(time.Microsecond))
	})
}
