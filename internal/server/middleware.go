// Middleware of the evaluation service: expvar metrics, the bounded-queue
// backpressure limiter, panic recovery and request logging.
package server

import (
	"expvar"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"supernpu/internal/simcache"
)

// metrics is the service's expvar surface. Gauges (running, queued) move in
// both directions; the rest are monotonic counters. The vars are published
// once per process — test servers share them, which only ever adds counts.
type metrics struct {
	requests *expvar.Int // every request seen
	running  *expvar.Int // gauge: requests holding a work slot
	queued   *expvar.Int // gauge: requests waiting for a work slot
	rejected *expvar.Int // 429 responses from the limiter
	panics   *expvar.Int // handler panics recovered to 500
	degraded *expvar.Int // evaluations served by the analytical fallback
}

// globalMetrics is built at package init; expvar names are process-global.
var globalMetrics = &metrics{
	requests: expvar.NewInt("supernpu.server.requests"),
	running:  expvar.NewInt("supernpu.server.running"),
	queued:   expvar.NewInt("supernpu.server.queued"),
	rejected: expvar.NewInt("supernpu.server.rejected"),
	panics:   expvar.NewInt("supernpu.server.panics"),
	degraded: expvar.NewInt("supernpu.server.degraded"),
}

// init mirrors the simulation caches' in-flight gauge into expvar: the
// number of distinct (uncoalesced) simulations running right now.
func init() {
	expvar.Publish("supernpu.sims.inflight", expvar.Func(func() any {
		return simcache.TotalInFlight()
	}))
}

// limit is the backpressure gate: at most MaxConcurrent requests hold a work
// slot, at most QueueDepth more wait for one, and everything beyond that is
// shed immediately with 429 + Retry-After. The gauges feed /debug/stats.
func (s *Server) limit(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.sem <- struct{}{}:
			// A work slot was free; skip the queue entirely.
		default:
			// Reserve a queue slot first (Add-then-check keeps the bound
			// exact under concurrent arrivals), then wait for a work slot.
			if q := s.queued.Add(1); q > int64(s.opts.QueueDepth) {
				s.queued.Add(-1)
				s.metrics.rejected.Add(1)
				w.Header().Set("Retry-After", "1")
				writeError(w, http.StatusTooManyRequests,
					fmt.Sprintf("queue full (%d running, %d queued); retry later", s.opts.MaxConcurrent, q-1))
				return
			}
			s.metrics.queued.Add(1)
			dequeue := func() {
				s.queued.Add(-1)
				s.metrics.queued.Add(-1)
			}
			select {
			case s.sem <- struct{}{}:
				dequeue()
			case <-r.Context().Done():
				dequeue()
				writeError(w, http.StatusServiceUnavailable, "request abandoned while queued")
				return
			}
		}
		defer func() { <-s.sem }()
		s.metrics.running.Add(1)
		defer s.metrics.running.Add(-1)
		next.ServeHTTP(w, r)
	})
}

// countRequests bumps the total-request counter.
func (s *Server) countRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.metrics.requests.Add(1)
		next.ServeHTTP(w, r)
	})
}

// recovery converts handler panics into 500 responses instead of taking the
// whole connection (and the process's other requests) down.
func (s *Server) recovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if v := recover(); v != nil {
				s.metrics.panics.Add(1)
				s.opts.Logger.Printf("server: panic serving %s %s: %v\n%s", r.Method, r.URL.Path, v, debug.Stack())
				writeError(w, http.StatusInternalServerError, "internal error")
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// statusRecorder captures the response code for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// logging emits one line per request: method, path, status, duration.
func (s *Server) logging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		s.opts.Logger.Printf("server: %s %s %s %s", r.Method, r.URL.Path,
			strconv.Itoa(status), time.Since(start).Round(time.Microsecond))
	})
}
