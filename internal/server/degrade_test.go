// Tests of the resilience features: fault-injected serving, the graceful
// degradation of /v1/evaluate when the simulator faults, and SIGTERM-style
// drain with fault-injected work in flight.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"supernpu/internal/faultinject"
	"supernpu/internal/simcache"
)

// failAll is a fault model that aborts every simulation it touches.
func failAll() *faultinject.Model {
	return &faultinject.Model{Seed: 1, SimFail: 1}
}

// mild is a fault model that perturbs simulations without aborting them.
func mild() *faultinject.Model {
	return &faultinject.Model{Seed: 7, IcSpread: 0.03, PulseDrop: 1e-7, BitFlip: 1e-9, MarginErosion: 0.05}
}

func TestEvaluateDegradesToAnalyticalFallback(t *testing.T) {
	_, ts := newTestServer(t, Options{Fault: failAll()})
	before := globalMetrics.degraded.Value()
	status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"AlexNet","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("faulted evaluate = %d %s, want 200", status, body)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.DegradedReason == "" {
		t.Fatalf("response not marked degraded: %+v", got)
	}
	if !strings.Contains(got.DegradedReason, "injected margin violation") {
		t.Fatalf("degraded reason lost the fault cause: %q", got.DegradedReason)
	}
	if got.Throughput <= 0 || got.TimeS <= 0 || got.FrequencyHz <= 0 {
		t.Fatalf("analytical fallback degenerate: %+v", got)
	}
	if globalMetrics.degraded.Value() <= before {
		t.Fatal("degraded counter did not move")
	}

	// The degraded response is byte-stable: the fallback is deterministic
	// and the injected fault message is seed-keyed, not time-keyed.
	_, body2, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"AlexNet","batch":1}`)
	if !bytes.Equal(body, body2) {
		t.Fatalf("degraded response not byte-stable:\n%s\n%s", body, body2)
	}
}

func TestEvaluateDegradedBadInputStays400(t *testing.T) {
	// Even with every simulation failing, invalid input is still the
	// client's fault: no fallback, a plain 400.
	_, ts := newTestServer(t, Options{Fault: failAll()})
	status, body, _ := post(t, ts.URL+"/v1/evaluate", `{"design":"nope","workload":"AlexNet"}`)
	if status != http.StatusBadRequest || !strings.Contains(string(body), "unknown design") {
		t.Fatalf("bad input under faults = %d %s, want 400", status, body)
	}
}

func TestEvaluateFaultedCMOSStaysNominal(t *testing.T) {
	// Faults are an SFQ phenomenon; the TPU reference must answer
	// identically with and without a fault model installed.
	_, nominal := newTestServer(t, Options{})
	_, faulted := newTestServer(t, Options{Fault: failAll()})
	req := `{"design":"TPU","workload":"AlexNet","batch":1}`
	s1, b1, _ := post(t, nominal.URL+"/v1/evaluate", req)
	s2, b2, _ := post(t, faulted.URL+"/v1/evaluate", req)
	if s1 != http.StatusOK || s2 != http.StatusOK || !bytes.Equal(b1, b2) {
		t.Fatalf("CMOS evaluation moved under SFQ faults: %d %s vs %d %s", s1, b1, s2, b2)
	}
}

func TestEvaluateMildFaultsServeWithoutDegrading(t *testing.T) {
	_, ts := newTestServer(t, Options{Fault: mild()})
	status, body, _ := post(t, ts.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"AlexNet","batch":1}`)
	if status != http.StatusOK {
		t.Fatalf("mildly faulted evaluate = %d %s", status, body)
	}
	var got EvaluationResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatalf("mild faults should simulate, not degrade: %+v", got)
	}
	// The perturbed operating point must actually differ from nominal.
	_, nominalTS := newTestServer(t, Options{})
	_, nb, _ := post(t, nominalTS.URL+"/v1/evaluate",
		`{"design":"SuperNPU","workload":"AlexNet","batch":1}`)
	var nom EvaluationResponse
	if err := json.Unmarshal(nb, &nom); err != nil {
		t.Fatal(err)
	}
	if got.FrequencyHz >= nom.FrequencyHz {
		t.Fatalf("margin erosion did not lower served frequency: %g >= %g", got.FrequencyHz, nom.FrequencyHz)
	}
}

// TestEvaluateFaultedUnderLoadNever500s hammers a fail-everything server with
// concurrent evaluations: every response must be a degraded 200 — no 500s, no
// crash, no torn JSON.
func TestEvaluateFaultedUnderLoadNever500s(t *testing.T) {
	_, ts := newTestServer(t, Options{Fault: failAll(), MaxConcurrent: 4, QueueDepth: 64})
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/evaluate", "application/json",
				strings.NewReader(`{"design":"SuperNPU","workload":"AlexNet","batch":1}`))
			if err != nil {
				errs <- err.Error()
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != http.StatusOK {
				errs <- resp.Status + " " + string(b)
				return
			}
			var got EvaluationResponse
			if err := json.Unmarshal(b, &got); err != nil || !got.Degraded {
				errs <- "not degraded JSON: " + string(b)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Errorf("faulted request failed: %s", e)
	}
}

// TestGracefulDrainWithFaultInjectedSweep is the SIGTERM story under fault
// injection: a fault-injected exploration sweep is in flight when the serve
// context is cancelled (what the signal handler does); the sweep must still
// complete with a full 200 before Serve returns clean.
func TestGracefulDrainWithFaultInjectedSweep(t *testing.T) {
	simcache.ClearAll()
	s := New(Options{MaxConcurrent: 2, QueueDepth: 8, Logger: quiet, Fault: mild()})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l, 30*time.Second) }()
	url := "http://" + l.Addr().String()

	type reply struct {
		status int
		body   []byte
		err    error
	}
	replies := make(chan reply, 1)
	go func() {
		resp, err := http.Post(url+"/v1/explore", "application/json",
			strings.NewReader(`{"sweep":"division","degrees":[2,3,4,6,8,16,32,64]}`))
		if err != nil {
			replies <- reply{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		replies <- reply{resp.StatusCode, b, err}
	}()

	base := time.Now()
	for s.metrics.running.Value() == 0 {
		if time.Since(base) > 5*time.Second {
			t.Fatal("sweep never started running")
		}
		time.Sleep(100 * time.Microsecond)
	}
	cancel() // the SIGTERM path

	r := <-replies
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("fault-injected sweep did not drain: %d %s (%v)", r.status, r.body, r.err)
	}
	var sweep ExploreResponse
	if err := json.Unmarshal(r.body, &sweep); err != nil || len(sweep.Points) != 10 {
		t.Fatalf("drained sweep truncated: %d points, err %v", len(sweep.Points), err)
	}
	if err := <-served; err != nil {
		t.Fatalf("Serve returned %v after drain, want nil", err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after drain")
	}
}
