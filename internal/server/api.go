// Request and response shapes of the evaluation service's JSON API, and
// their validation. Decoding is strict (unknown fields are errors) and
// validation bounds every dimension, so a malformed or adversarial request
// is rejected before any simulation work is admitted to the pool — the fuzz
// battery (fuzz_test.go) drives arbitrary bytes through these decoders.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"supernpu/internal/arch"
	"supernpu/internal/core"
	"supernpu/internal/estimator"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// techFor maps the wire-level ersfq flag onto the biasing technology.
func techFor(ersfq bool) sfq.Technology {
	if ersfq {
		return sfq.ERSFQ
	}
	return sfq.RSFQ
}

// Request body and custom-network bounds: generous multiples of the paper's
// workloads, tight enough that a validated request cannot allocate
// pathological amounts of memory or simulate for unbounded time.
const (
	maxBodyBytes  = 1 << 20 // 1 MiB of JSON per request
	maxLayers     = 512     // deepest evaluation CNN is 58 compute layers
	maxLayerDim   = 1 << 14 // H, W, C, R, S, M per layer
	maxBatch      = 1 << 16
	maxArrayDim   = 1 << 12 // PE array height/width (paper max: 256)
	maxRegisters  = 1 << 8  // registers per PE (paper max: 8)
	maxBufBytes   = 1 << 30 // any single buffer capacity (paper max: 48 MB total)
	maxChunks     = 1 << 16 // buffer division degree (paper max: 256)
	maxSweepPts   = 64      // sweep points per explore request
	maxSweepWidth = 1 << 12
)

// apiError is the uniform JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// LayerSpec is one custom-network layer in the request schema.
type LayerSpec struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"` // conv | dwconv | fc | pool
	H      int    `json:"h,omitempty"`
	W      int    `json:"w,omitempty"`
	C      int    `json:"c,omitempty"`
	R      int    `json:"r,omitempty"`
	S      int    `json:"s,omitempty"`
	M      int    `json:"m,omitempty"`
	Stride int    `json:"stride,omitempty"`
	Pad    int    `json:"pad,omitempty"`
}

// NetworkSpec is a custom workload in the request schema.
type NetworkSpec struct {
	Name   string      `json:"name"`
	Layers []LayerSpec `json:"layers"`
}

// EvaluateRequest asks for one (design, workload, batch) evaluation.
// Exactly one of Workload (a named evaluation CNN) or Network (a custom
// workload) must be set. Batch 0 selects the design's maximum on-chip batch.
type EvaluateRequest struct {
	Design   string       `json:"design"`
	Workload string       `json:"workload,omitempty"`
	Network  *NetworkSpec `json:"network,omitempty"`
	Batch    int          `json:"batch,omitempty"`
}

// EvaluationResponse is the unified evaluation result in SI units.
type EvaluationResponse struct {
	Design        string  `json:"design"`
	Network       string  `json:"network"`
	Batch         int     `json:"batch"`
	FrequencyHz   float64 `json:"frequencyHz"`
	PeakMACs      float64 `json:"peakMACsPerS"`
	Throughput    float64 `json:"throughputMACsPerS"`
	TimeS         float64 `json:"timeS"`
	PEUtilization float64 `json:"peUtilization"`
	TotalCycles   int64   `json:"totalCycles"`
	MACs          int64   `json:"macs"`
	PrepFraction  float64 `json:"prepFraction"`
	ChipPowerW    float64 `json:"chipPowerW"`
	// Degraded marks a response served by the analytical roofline fallback
	// after the simulation faulted; DegradedReason says why. Both are absent
	// from healthy responses, which stay byte-identical to before.
	Degraded       bool   `json:"degraded,omitempty"`
	DegradedReason string `json:"degradedReason,omitempty"`
}

// ConfigSpec is a full SFQ NPU configuration in the request schema,
// mirroring arch.Config field for field.
type ConfigSpec struct {
	Name             string  `json:"name,omitempty"`
	ArrayHeight      int     `json:"arrayHeight"`
	ArrayWidth       int     `json:"arrayWidth"`
	Registers        int     `json:"registers"`
	IfmapBufBytes    int     `json:"ifmapBufBytes"`
	IfmapChunks      int     `json:"ifmapChunks"`
	OutputBufBytes   int     `json:"outputBufBytes"`
	OutputChunks     int     `json:"outputChunks"`
	IntegratedOutput bool    `json:"integratedOutput,omitempty"`
	PsumBufBytes     int     `json:"psumBufBytes,omitempty"`
	WeightBufBytes   int     `json:"weightBufBytes"`
	ERSFQ            bool    `json:"ersfq,omitempty"`
	MemoryBandwidth  float64 `json:"memoryBandwidth,omitempty"` // bytes/s, 0 = paper default
}

// EstimateRequest asks the SFQ estimator for frequency/power/area of a
// named SFQ design or a fully custom configuration (exactly one of the two).
type EstimateRequest struct {
	Design string      `json:"design,omitempty"`
	Config *ConfigSpec `json:"config,omitempty"`
}

// UnitEstimateResponse is one unit of the estimator's breakdown.
type UnitEstimateResponse struct {
	Name          string  `json:"name"`
	FrequencyHz   float64 `json:"frequencyHz"`
	StaticPowerW  float64 `json:"staticPowerW"`
	AreaM2        float64 `json:"areaM2"`
	JJs           int     `json:"jjs"`
	AccessEnergyJ float64 `json:"accessEnergyJ"`
}

// EstimateResponse is the architecture-level estimate.
type EstimateResponse struct {
	Name         string                 `json:"name"`
	FrequencyHz  float64                `json:"frequencyHz"`
	StaticPowerW float64                `json:"staticPowerW"`
	AreaNativeM2 float64                `json:"areaNativeM2"`
	Area28nmM2   float64                `json:"area28nmM2"`
	TotalJJs     int64                  `json:"totalJJs"`
	PeakMACs     float64                `json:"peakMACsPerS"`
	Units        []UnitEstimateResponse `json:"units"`
}

// ExploreRequest asks for one design-space sweep: "division" (Fig. 20),
// "width" (Fig. 21) or "registers" (Fig. 22).
type ExploreRequest struct {
	Sweep string `json:"sweep"`
	// Degrees are the buffer division degrees (sweep=division).
	Degrees []int `json:"degrees,omitempty"`
	// Width is the PE-array width (sweep=registers).
	Width int `json:"width,omitempty"`
	// Registers are the registers-per-PE counts (sweep=registers).
	Registers []int `json:"registers,omitempty"`
}

// SweepPointResponse is one sweep point, normalised to the Baseline.
type SweepPointResponse struct {
	Label       string  `json:"label"`
	SingleBatch float64 `json:"singleBatchSpeedup"`
	MaxBatch    float64 `json:"maxBatchSpeedup"`
	AreaRel     float64 `json:"areaRelative"`
}

// ExploreResponse is the sweep result.
type ExploreResponse struct {
	Sweep  string               `json:"sweep"`
	Points []SweepPointResponse `json:"points"`
}

// DesignResponse is one design point of GET /v1/designs.
type DesignResponse struct {
	Name        string `json:"name"`
	Platform    string `json:"platform"` // sfq | cmos
	ArrayHeight int    `json:"arrayHeight"`
	ArrayWidth  int    `json:"arrayWidth"`
	Registers   int    `json:"registers,omitempty"`
	BufferBytes int64  `json:"bufferBytes"`
}

// WorkloadResponse is one evaluation CNN of GET /v1/workloads.
type WorkloadResponse struct {
	Name        string `json:"name"`
	Layers      int    `json:"layers"`
	TotalMACs   int64  `json:"totalMACs"`
	WeightBytes int64  `json:"weightBytes"`
}

// decodeJSON strictly decodes one JSON object from r into v: unknown fields,
// trailing data and oversized bodies are all errors.
func decodeJSON(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes+1))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("invalid JSON request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON request: trailing data after object")
	}
	return nil
}

// layerKind maps the wire kind names onto workload kinds.
func layerKind(s string) (workload.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "conv":
		return workload.Conv, nil
	case "dwconv", "depthwise":
		return workload.DepthwiseConv, nil
	case "fc", "fullyconnected":
		return workload.FullyConnected, nil
	case "pool":
		return workload.Pool, nil
	default:
		return 0, fmt.Errorf("unknown layer kind %q (want conv, dwconv, fc or pool)", s)
	}
}

// toNetwork validates a custom network spec and converts it to a workload.
func (n *NetworkSpec) toNetwork() (workload.Network, error) {
	if n.Name == "" {
		return workload.Network{}, fmt.Errorf("network: name is required")
	}
	if len(n.Layers) == 0 {
		return workload.Network{}, fmt.Errorf("network %q: at least one layer is required", n.Name)
	}
	if len(n.Layers) > maxLayers {
		return workload.Network{}, fmt.Errorf("network %q: %d layers exceeds the limit of %d",
			n.Name, len(n.Layers), maxLayers)
	}
	layers := make([]workload.Layer, 0, len(n.Layers))
	for i, ls := range n.Layers {
		kind, err := layerKind(ls.Kind)
		if err != nil {
			return workload.Network{}, fmt.Errorf("network %q layer %d: %w", n.Name, i, err)
		}
		for _, d := range []int{ls.H, ls.W, ls.C, ls.R, ls.S, ls.M, ls.Stride, ls.Pad} {
			if d < 0 || d > maxLayerDim {
				return workload.Network{}, fmt.Errorf("network %q layer %d: dimension %d out of [0, %d]",
					n.Name, i, d, maxLayerDim)
			}
		}
		l := workload.Layer{
			Name: ls.Name, Kind: kind,
			H: ls.H, W: ls.W, C: ls.C,
			R: ls.R, S: ls.S, M: ls.M,
			Stride: ls.Stride, Pad: ls.Pad,
		}
		switch kind {
		case workload.DepthwiseConv:
			if l.M == 0 {
				l.M = l.C
			}
		case workload.FullyConnected:
			if l.H == 0 && l.W == 0 {
				l.H, l.W = 1, 1
			}
			if l.R == 0 && l.S == 0 {
				l.R, l.S = 1, 1
			}
		case workload.Pool:
			if l.M == 0 {
				l.M = l.C
			}
			if l.S == 0 {
				l.S = l.R
			}
		}
		if l.Stride == 0 {
			l.Stride = 1
		}
		layers = append(layers, l)
	}
	net := workload.Network{Name: n.Name, Layers: layers}
	if err := net.Validate(); err != nil {
		return workload.Network{}, err
	}
	return net, nil
}

// resolve validates an evaluate request and resolves it to simulator inputs.
func (req *EvaluateRequest) resolve() (core.Design, workload.Network, error) {
	if req.Batch < 0 || req.Batch > maxBatch {
		return core.Design{}, workload.Network{}, fmt.Errorf("batch %d out of [0, %d]", req.Batch, maxBatch)
	}
	if req.Design == "" {
		return core.Design{}, workload.Network{}, fmt.Errorf("design is required")
	}
	d, err := core.DesignByName(req.Design)
	if err != nil {
		return core.Design{}, workload.Network{}, err
	}
	switch {
	case req.Workload != "" && req.Network != nil:
		return core.Design{}, workload.Network{}, fmt.Errorf("workload and network are mutually exclusive")
	case req.Workload != "":
		net, err := workload.ByName(req.Workload)
		if err != nil {
			return core.Design{}, workload.Network{}, err
		}
		return d, net, nil
	case req.Network != nil:
		net, err := req.Network.toNetwork()
		if err != nil {
			return core.Design{}, workload.Network{}, err
		}
		return d, net, nil
	default:
		return core.Design{}, workload.Network{}, fmt.Errorf("one of workload or network is required")
	}
}

// toConfig validates a custom configuration spec and converts it.
func (c *ConfigSpec) toConfig() (arch.Config, error) {
	if c.ArrayHeight <= 0 || c.ArrayHeight > maxArrayDim || c.ArrayWidth <= 0 || c.ArrayWidth > maxArrayDim {
		return arch.Config{}, fmt.Errorf("config: array %dx%d out of [1, %d]", c.ArrayHeight, c.ArrayWidth, maxArrayDim)
	}
	if c.Registers <= 0 || c.Registers > maxRegisters {
		return arch.Config{}, fmt.Errorf("config: %d registers out of [1, %d]", c.Registers, maxRegisters)
	}
	for _, b := range []int{c.IfmapBufBytes, c.OutputBufBytes, c.PsumBufBytes, c.WeightBufBytes} {
		if b < 0 || b > maxBufBytes {
			return arch.Config{}, fmt.Errorf("config: buffer capacity %d out of [0, %d]", b, maxBufBytes)
		}
	}
	for _, ch := range []int{c.IfmapChunks, c.OutputChunks} {
		if ch < 0 || ch > maxChunks {
			return arch.Config{}, fmt.Errorf("config: division degree %d out of [0, %d]", ch, maxChunks)
		}
	}
	name := c.Name
	if name == "" {
		name = "custom"
	}
	cfg := arch.Config{
		Name:        name,
		ArrayHeight: c.ArrayHeight, ArrayWidth: c.ArrayWidth,
		Registers:     c.Registers,
		IfmapBufBytes: c.IfmapBufBytes, IfmapChunks: c.IfmapChunks,
		OutputBufBytes: c.OutputBufBytes, OutputChunks: c.OutputChunks,
		IntegratedOutput: c.IntegratedOutput,
		PsumBufBytes:     c.PsumBufBytes,
		WeightBufBytes:   c.WeightBufBytes,
		Tech:             techFor(c.ERSFQ),
		MemoryBandwidth:  c.MemoryBandwidth,
	}
	if cfg.IfmapChunks == 0 {
		cfg.IfmapChunks = 1
	}
	if cfg.OutputChunks == 0 {
		cfg.OutputChunks = 1
	}
	if cfg.MemoryBandwidth == 0 {
		cfg.MemoryBandwidth = arch.DefaultBandwidth
	}
	if err := cfg.Validate(); err != nil {
		return arch.Config{}, err
	}
	return cfg, nil
}

// resolve validates an estimate request to an SFQ configuration.
func (req *EstimateRequest) resolve() (arch.Config, error) {
	switch {
	case req.Design != "" && req.Config != nil:
		return arch.Config{}, fmt.Errorf("design and config are mutually exclusive")
	case req.Design != "":
		d, err := core.DesignByName(req.Design)
		if err != nil {
			return arch.Config{}, err
		}
		if d.Platform != core.SFQ {
			return arch.Config{}, fmt.Errorf("the estimator models SFQ designs only, not %q", d.Name())
		}
		return d.SFQ, nil
	case req.Config != nil:
		return req.Config.toConfig()
	default:
		return arch.Config{}, fmt.Errorf("one of design or config is required")
	}
}

// validate checks an explore request's sweep parameters.
func (req *ExploreRequest) validate() error {
	switch strings.ToLower(req.Sweep) {
	case "division":
		if len(req.Degrees) == 0 {
			return fmt.Errorf("sweep=division requires degrees")
		}
		if len(req.Degrees) > maxSweepPts {
			return fmt.Errorf("%d degrees exceeds the limit of %d", len(req.Degrees), maxSweepPts)
		}
		for _, d := range req.Degrees {
			if d < 1 || d > maxChunks {
				return fmt.Errorf("division degree %d out of [1, %d]", d, maxChunks)
			}
		}
	case "width":
		// no parameters: the paper's five resource-balancing points
	case "registers":
		switch req.Width {
		case 64, 128:
			// the two widths with Fig. 21 buffer capacities
		default:
			return fmt.Errorf("sweep=registers requires width 64 or 128, got %d", req.Width)
		}
		if len(req.Registers) == 0 {
			return fmt.Errorf("sweep=registers requires registers")
		}
		if len(req.Registers) > maxSweepPts {
			return fmt.Errorf("%d register counts exceeds the limit of %d", len(req.Registers), maxSweepPts)
		}
		for _, r := range req.Registers {
			if r < 1 || r > maxRegisters {
				return fmt.Errorf("register count %d out of [1, %d]", r, maxRegisters)
			}
		}
	default:
		return fmt.Errorf("unknown sweep %q (want division, width or registers)", req.Sweep)
	}
	return nil
}

// evaluationResponse converts a unified evaluation.
func evaluationResponse(ev *core.Evaluation) EvaluationResponse {
	return EvaluationResponse{
		Design: ev.Design, Network: ev.Network, Batch: ev.Batch,
		FrequencyHz: ev.Frequency, PeakMACs: ev.PeakMACs,
		Throughput: ev.Throughput, TimeS: ev.Time,
		PEUtilization: ev.PEUtilization,
		TotalCycles:   ev.TotalCycles, MACs: ev.MACs,
		PrepFraction: ev.PrepFraction, ChipPowerW: ev.ChipPower,
	}
}

// estimateResponse converts an estimator result.
func estimateResponse(res *estimator.Result) EstimateResponse {
	out := EstimateResponse{
		Name:        res.Config.Name,
		FrequencyHz: res.Frequency, StaticPowerW: res.StaticPower,
		AreaNativeM2: res.AreaNative, Area28nmM2: res.Area28nm,
		TotalJJs: res.TotalJJs, PeakMACs: res.PeakMACs,
	}
	for _, u := range res.Units {
		out.Units = append(out.Units, UnitEstimateResponse{
			Name: u.Name, FrequencyHz: u.Frequency,
			StaticPowerW: u.StaticPower, AreaM2: u.Area,
			JJs: u.JJs, AccessEnergyJ: u.AccessEnergy,
		})
	}
	return out
}

// sweepResponse converts sweep points.
func sweepResponse(sweep string, pts []core.SweepPoint) ExploreResponse {
	out := ExploreResponse{Sweep: strings.ToLower(sweep), Points: make([]SweepPointResponse, 0, len(pts))}
	for _, p := range pts {
		out.Points = append(out.Points, SweepPointResponse{
			Label: p.Label, SingleBatch: p.SingleBatch, MaxBatch: p.MaxBatch, AreaRel: p.AreaRel,
		})
	}
	return out
}
