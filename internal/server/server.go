// Package server is the online face of the reproduction: an HTTP evaluation
// service over the paper's simulators and estimator.
//
// The batch harness (cmd/supernpu-repro) regenerates exhibits offline; this
// package serves the same models as JSON endpoints — single evaluations,
// estimator queries and design-space sweeps — under production discipline:
//
//   - identical in-flight requests coalesce onto one computation through the
//     simcache singleflight path (sync.Once per fingerprint), so a thundering
//     herd of duplicate queries costs one simulation;
//   - concurrency is bounded by a semaphore sized to the internal/parallel
//     worker count, and waiting requests queue up to a configured depth —
//     beyond it the service sheds load with 429 + Retry-After instead of
//     growing goroutines without bound;
//   - every work endpoint runs under a per-request timeout
//     (http.TimeoutHandler), and the whole service drains in-flight requests
//     on SIGINT/SIGTERM via http.Server.Shutdown;
//   - load and cache instruments live in the internal/obs registry, served
//     in Prometheus text format on GET /metrics (with legacy expvar mirrors
//     on /debug/vars and a JSON snapshot on /debug/stats).
//
// Responses are byte-identical to serial, direct calls into the facade: the
// models are deterministic pure functions, results are assembled in request
// order, and no map iteration reaches an encoder.
package server

import (
	"context"
	"errors"
	"expvar"
	"log"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"supernpu/internal/faultinject"
	"supernpu/internal/guard"
	"supernpu/internal/parallel"
)

// Options configures a Server. The zero value of any field selects its
// default.
type Options struct {
	// MaxConcurrent bounds the number of requests doing simulation work at
	// once. Default: parallel.Workers() (the sweep-engine pool width).
	MaxConcurrent int
	// QueueDepth bounds how many admitted requests may wait for a work
	// slot; one more is rejected with 429. Default: 64.
	QueueDepth int
	// Timeout is the per-request wall-clock budget, queue wait included.
	// Default: 30s. Negative disables the timeout (tests).
	Timeout time.Duration
	// Logger receives one line per request. Default: log.Default().
	Logger *log.Logger
	// Fault, when non-nil and enabled, injects the seeded SFQ fault model
	// into every simulation the service runs — evaluations and sweeps alike.
	// A simulation aborted by an injected fault does not 500: /v1/evaluate
	// degrades to the analytical roofline estimate with "degraded": true.
	Fault *faultinject.Model
	// BreakerThreshold is the number of consecutive numeric failures
	// (diverged / non-finite simulations) of one design after which
	// /v1/evaluate stops attempting the full simulation for that design and
	// serves the analytical roofline directly. Default: 3. Negative disables
	// the breaker.
	BreakerThreshold int
	// BreakerProbeEvery is the half-open cadence of the divergence breaker:
	// while open, every probeEvery-th evaluate request for the tripped
	// design runs the real simulation as a recovery probe. Default: 8.
	BreakerProbeEvery int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.MaxConcurrent <= 0 {
		o.MaxConcurrent = parallel.Workers()
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Logger == nil {
		o.Logger = log.Default()
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 3
	}
	if o.BreakerProbeEvery <= 0 {
		o.BreakerProbeEvery = 8
	}
	return o
}

// Server is the evaluation service. Construct with New; it is ready to
// serve via Handler or Serve.
type Server struct {
	opts Options
	mux  *http.ServeMux
	// sem holds one token per concurrently running work request; queued
	// tracks requests waiting for a token (see limit in middleware.go).
	// queued is per-server so the backpressure bound is exact even with
	// several servers in one process; the expvar gauges are global.
	sem     chan struct{}
	queued  atomic.Int64
	metrics *metrics
	// breaker is the per-design divergence circuit breaker guarding
	// /v1/evaluate (nil when disabled): designs whose simulations keep
	// blowing up numerically are short-circuited onto the analytical
	// degraded path until a half-open probe succeeds.
	breaker *guard.Breaker
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	s := &Server{opts: opts.withDefaults()}
	s.sem = make(chan struct{}, s.opts.MaxConcurrent)
	s.metrics = globalMetrics
	if s.opts.BreakerThreshold > 0 {
		s.breaker = guard.NewBreaker(s.opts.BreakerThreshold, s.opts.BreakerProbeEvery)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// routes wires the endpoint table. Work endpoints (those that may simulate)
// pass through the backpressure limiter and the per-request timeout;
// introspection endpoints stay always-on so health checks and dashboards
// keep answering under full load.
func (s *Server) routes() {
	work := func(h http.HandlerFunc) http.Handler {
		var inner http.Handler = h
		if s.opts.Timeout > 0 {
			inner = http.TimeoutHandler(inner, s.opts.Timeout, `{"error":"request timed out"}`)
		}
		return s.limit(inner)
	}
	s.mux.Handle("POST /v1/evaluate", work(s.handleEvaluate))
	s.mux.Handle("POST /v1/estimate", work(s.handleEstimate))
	s.mux.Handle("POST /v1/explore", work(s.handleExplore))
	s.mux.HandleFunc("GET /v1/designs", s.handleDesigns)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /debug/stats", s.handleStats)
	s.mux.Handle("GET /debug/vars", expvar.Handler())
	// Live profiling endpoints (net/http/pprof) on the always-on side of the
	// mux, so a saturated service can still be profiled: perf work should
	// start from a profile, not a guess.
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Handler returns the service's root handler with logging, recovery and
// metrics middleware applied.
func (s *Server) Handler() http.Handler {
	return s.logging(s.recovery(s.countRequests(s.mux)))
}

// Serve accepts connections on l until ctx is cancelled, then shuts down
// gracefully: the listener closes immediately, in-flight requests run to
// completion (bounded by grace), and Serve returns nil on a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener, grace time.Duration) error {
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		ErrorLog:          s.opts.Logger,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.opts.Logger.Printf("server: draining in-flight requests (grace %s)", grace)
	shutCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// ListenAndServe binds addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string, grace time.Duration) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.opts.Logger.Printf("server: listening on %s (workers %d, queue %d, timeout %s)",
		l.Addr(), s.opts.MaxConcurrent, s.opts.QueueDepth, s.opts.Timeout)
	return s.Serve(ctx, l, grace)
}
