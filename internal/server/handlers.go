// Endpoint handlers of the evaluation service. Each work handler decodes
// and validates its request (api.go), then calls straight into the core
// facade — the simulators memoise by content fingerprint, so identical
// concurrent requests coalesce onto a single computation.
package server

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime/debug"
	"strings"

	"supernpu/internal/core"
	"supernpu/internal/estimator"
	"supernpu/internal/faultinject"
	"supernpu/internal/guard"
	"supernpu/internal/obs"
	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// writeJSON encodes v with a trailing newline. Encoding a response struct
// cannot fail; a broken client connection surfaces in the request log only.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError sends the uniform error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// evaluateSafely runs the faulted evaluation with panics converted into
// errors, so a simulation that blows up outside the worker pool still reaches
// the degraded-response path instead of the 500 recovery middleware. The
// context carries the per-request deadline: http.TimeoutHandler attaches its
// budget to r.Context(), so the simulators' cancellation checkpoints stop
// the work shortly after the response deadline passes instead of running on
// as abandoned goroutines.
func evaluateSafely(ctx context.Context, d core.Design, net workload.Network, batch int, fm *faultinject.Model) (ev *core.Evaluation, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &parallel.PanicError{Value: v, Stack: debug.Stack()}
		}
	}()
	return core.EvaluateFaulted(ctx, d, net, batch, fm)
}

// handleEvaluate serves POST /v1/evaluate. When the (possibly fault-injected)
// simulation fails or panics, the handler degrades gracefully: it answers 200
// with the analytical roofline estimate, "degraded": true and the reason,
// rather than a 5xx — only bad input earns a 400, and 422 is reserved for
// requests that cannot be evaluated even analytically. A request that dies
// because its own deadline passed or its client hung up is not "degraded":
// it answers 503 with the cancellation taxonomy.
//
// A per-design divergence breaker sits in front of the simulation: after
// BreakerThreshold consecutive numeric failures (diverged or non-finite
// results, typically from an aggressive fault model) the handler stops
// paying for doomed simulations and serves the analytical roofline directly,
// letting every BreakerProbeEvery-th request through as a recovery probe.
func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) {
	var req EvaluateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	d, net, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if s.breaker != nil && !s.breaker.Allow(d.Name()) {
		s.degrade(w, r, d, net, req.Batch,
			"divergence breaker open for design "+d.Name())
		return
	}
	ev, err := evaluateSafely(r.Context(), d, net, req.Batch, s.opts.Fault)
	if s.breaker != nil {
		// Record feeds only numeric outcomes into the state machine;
		// cancellations and panics leave the breaker untouched.
		s.breaker.Record(d.Name(), err)
	}
	if err != nil {
		if core.IsBadInput(err) {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if guard.IsCancellation(err) {
			writeError(w, http.StatusServiceUnavailable, err.Error())
			return
		}
		s.degrade(w, r, d, net, req.Batch, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, evaluationResponse(ev))
}

// degrade serves the analytical-roofline fallback for /v1/evaluate: 200 with
// "degraded": true and the reason, or 422 when even the roofline cannot be
// computed.
func (s *Server) degrade(w http.ResponseWriter, r *http.Request, d core.Design, net workload.Network, batch int, reason string) {
	fb, ferr := core.EvaluateAnalytical(r.Context(), d, net, batch)
	if ferr != nil {
		writeError(w, http.StatusUnprocessableEntity, reason)
		return
	}
	s.metrics.degraded.Inc()
	s.opts.Logger.Printf("server: degraded evaluation of %s on %s: %s", d.Name(), net.Name, reason)
	resp := evaluationResponse(fb)
	resp.Degraded = true
	resp.DegradedReason = reason
	writeJSON(w, http.StatusOK, resp)
}

// handleEstimate serves POST /v1/estimate.
func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	var req EstimateRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	cfg, err := req.resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	res, err := estimator.Estimate(r.Context(), cfg)
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case core.IsBadInput(err):
			status = http.StatusBadRequest
		case guard.IsCancellation(err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, estimateResponse(res))
}

// handleExplore serves POST /v1/explore.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := req.validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// The sweep runs under the request context (an abandoned client stops
	// scheduling new points) and the service's fault model, if any.
	o := core.SweepOptions{Fault: s.opts.Fault}
	var pts []core.SweepPoint
	var err error
	switch strings.ToLower(req.Sweep) {
	case "division":
		pts, err = core.ExploreDivisionOpts(r.Context(), req.Degrees, o)
	case "width":
		pts, err = core.ExploreWidthOpts(r.Context(), core.Fig21Points(), o)
	case "registers":
		pts, err = core.ExploreRegistersOpts(r.Context(), req.Width, req.Registers, o)
	}
	if err != nil {
		status := http.StatusUnprocessableEntity
		switch {
		case core.IsBadInput(err):
			status = http.StatusBadRequest
		case guard.IsCancellation(err):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, sweepResponse(req.Sweep, pts))
}

// handleDesigns serves GET /v1/designs: the five evaluation design points.
func (s *Server) handleDesigns(w http.ResponseWriter, r *http.Request) {
	var out []DesignResponse
	for _, d := range core.DesignPoints() {
		switch d.Platform {
		case core.SFQ:
			out = append(out, DesignResponse{
				Name: d.Name(), Platform: "sfq",
				ArrayHeight: d.SFQ.ArrayHeight, ArrayWidth: d.SFQ.ArrayWidth,
				Registers:   d.SFQ.Registers,
				BufferBytes: d.SFQ.ActivationCapacity() + int64(d.SFQ.WeightBufBytes),
			})
		case core.CMOS:
			out = append(out, DesignResponse{
				Name: d.Name(), Platform: "cmos",
				ArrayHeight: d.CMOS.ArrayHeight, ArrayWidth: d.CMOS.ArrayWidth,
				BufferBytes: d.CMOS.BufferBytes,
			})
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleWorkloads serves GET /v1/workloads: the six evaluation CNNs.
func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	var out []WorkloadResponse
	for _, net := range workload.All() {
		out = append(out, WorkloadResponse{
			Name:        net.Name,
			Layers:      len(net.Layers),
			TotalMACs:   net.TotalMACs(),
			WeightBytes: net.TotalWeightBytes(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz serves GET /healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleMetrics serves GET /metrics: the process-wide obs registry in
// Prometheus text exposition format (version 0.0.4). It sits on the
// always-on side of the mux so scrapes keep answering under full load.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WritePrometheus(w)
}

// statsResponse is the GET /debug/stats payload.
type statsResponse struct {
	Workers       int              `json:"workers"`
	MaxConcurrent int              `json:"maxConcurrent"`
	QueueDepth    int              `json:"queueDepth"`
	Running       int64            `json:"running"`
	Queued        int64            `json:"queued"`
	Rejected      int64            `json:"rejected"`
	Requests      int64            `json:"requests"`
	Panics        int64            `json:"panics"`
	Degraded      int64            `json:"degraded"`
	FaultModel    string           `json:"faultModel"`
	SimsInFlight  int64            `json:"simsInFlight"`
	Caches        []cacheStatsJSON `json:"caches"`
}

// cacheStatsJSON is one simulation cache's counters.
type cacheStatsJSON struct {
	Name     string  `json:"name"`
	Entries  int     `json:"entries"`
	Hits     int64   `json:"hits"`
	Misses   int64   `json:"misses"`
	HitRate  float64 `json:"hitRate"`
	InFlight int64   `json:"inFlight"`
}

// handleStats serves GET /debug/stats: pool occupancy, queue gauges and the
// per-cache hit/miss counters. Caches come pre-sorted from the registry, so
// the payload is deterministic.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Workers:       parallel.Workers(),
		MaxConcurrent: s.opts.MaxConcurrent,
		QueueDepth:    s.opts.QueueDepth,
		Running:       s.metrics.running.Value(),
		Queued:        s.queued.Load(),
		Rejected:      s.metrics.rejected.Value(),
		Requests:      s.metrics.requests.Value(),
		Panics:        s.metrics.panics.Value(),
		Degraded:      s.metrics.degraded.Value(),
		FaultModel:    s.opts.Fault.String(),
		SimsInFlight:  simcache.TotalInFlight(),
		Caches:        make([]cacheStatsJSON, 0, 4),
	}
	for _, c := range simcache.Snapshot() {
		resp.Caches = append(resp.Caches, cacheStatsJSON{
			Name: c.Name, Entries: c.Entries, Hits: c.Hits, Misses: c.Misses,
			HitRate: c.HitRate(), InFlight: c.InFlight,
		})
	}
	writeJSON(w, http.StatusOK, resp)
}
