package sfq

import "fmt"

// Technology selects how DC bias current is supplied to each Josephson
// junction, the single difference between the two SFQ families the paper
// models (Section IV-A1).
type Technology int

const (
	// RSFQ (rapid single-flux-quantum) biases every JJ through a resistor.
	// It is the proven, fabricated technology but dissipates static power
	// in every bias resistor.
	RSFQ Technology = iota
	// ERSFQ (energy-efficient RSFQ) replaces bias resistors with bias JJs
	// and inductors: zero static power, but roughly twice the JJ count on
	// the bias network and therefore twice the dynamic switching energy.
	ERSFQ
)

// String implements fmt.Stringer.
func (t Technology) String() string {
	switch t {
	case RSFQ:
		return "RSFQ"
	case ERSFQ:
		return "ERSFQ"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// Process describes a superconductor fabrication process. The repository
// default is the AIST 1.0 µm Nb 9-layer process used throughout the paper.
type Process struct {
	Name        string
	FeatureSize float64 // junction feature size in metres
	// BiasVoltage is the DC bias rail voltage (RSFQ).
	BiasVoltage float64 // volts
	// BiasCurrentPerJJ is the average DC bias current drawn per junction.
	BiasCurrentPerJJ float64 // amperes
	// CriticalCurrent is the representative junction critical current Ic.
	CriticalCurrent float64 // amperes
	// AreaPerJJ is the average laid-out cell area amortised per junction,
	// including wiring and moats, at this process's feature size.
	AreaPerJJ float64 // m²
	// SwitchEnergyPerJJ is the energy released by a single 2π phase slip,
	// of order Ic·Φ0.
	SwitchEnergyPerJJ float64 // joules
	// TimingScale multiplies every cell delay/setup/hold relative to the
	// AIST 1.0 µm reference library. Kadin et al. (the paper's [41]) give
	// the scaling rule: frequency grows in proportion to the JJ size
	// reduction, valid down to ~200 nm.
	TimingScale float64
}

// ScalingFloor is the smallest junction feature size for which the linear
// frequency-scaling rule holds (~200 nm, the paper's footnote 2).
const ScalingFloor = 200e-9

// ScaledTo returns the process scaled to the target feature size under the
// linear rule: timing and per-JJ switching energy and bias current shrink
// with the feature size, area quadratically. Scaling below the 200 nm
// validity floor is clamped.
func (p Process) ScaledTo(target float64) Process {
	if target < ScalingFloor {
		target = ScalingFloor
	}
	r := target / p.FeatureSize
	out := p
	out.Name = p.Name + " (scaled)"
	out.FeatureSize = target
	out.BiasCurrentPerJJ *= r
	out.AreaPerJJ *= r * r
	out.SwitchEnergyPerJJ *= r
	if out.TimingScale == 0 {
		out.TimingScale = 1
	}
	out.TimingScale *= r
	return out
}

// timingScale returns the effective timing multiplier (zero value = 1).
func (p Process) timingScale() float64 {
	if p.TimingScale == 0 {
		return 1
	}
	return p.TimingScale
}

// AIST10 returns the AIST 1.0 µm Nb 9-layer process (ADP2/CRAVITY), the
// fabrication input used for every result in the paper. The constants are
// calibrated so that the cell library reproduces the paper's published gate
// rows (AND: 3.6 µW static, 1.4 aJ dynamic) and so that the architecture
// level area and static power land on Table I / Table III values.
func AIST10() Process {
	return Process{
		Name:              "AIST 1.0um Nb 9-layer",
		FeatureSize:       1.0 * Micrometre,
		BiasVoltage:       2.6e-3,  // 2.6 mV bias rail
		BiasCurrentPerJJ:  66.5e-6, // ~0.67×Ic average bias per JJ
		CriticalCurrent:   100e-6,  // 100 µA representative Ic
		AreaPerJJ:         62.5 * SquareMicrometre,
		SwitchEnergyPerJJ: 2.067833848e-15 * 100e-6 * 0.68, // ≈0.14 aJ = α·Ic·Φ0
	}
}

// StaticPowerPerJJ is the DC bias dissipation of one junction under RSFQ
// biasing: P = V_bias × I_bias. ERSFQ eliminates it entirely.
func (p Process) StaticPowerPerJJ(tech Technology) float64 {
	if tech == ERSFQ {
		return 0
	}
	return p.BiasVoltage * p.BiasCurrentPerJJ
}

// ScaleAreaTo reports the factor that converts an area laid out at this
// process's feature size to an equivalent layout at feature size target.
// The paper uses this to express SFQ chip areas in 28 nm CMOS-equivalent
// square millimetres for the TPU comparison (Table I, footnote 2).
func (p Process) ScaleAreaTo(target float64) float64 {
	r := target / p.FeatureSize
	return r * r
}
