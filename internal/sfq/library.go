package sfq

import (
	"errors"
	"fmt"
	"sort"
)

// GateKind identifies a logic or wire cell in the SFQ library.
type GateKind string

// The cell library. Every SFQ logic gate is clocked (it latches by nature,
// Section II-B1); wire cells (JTL, splitter) are unclocked pulse conduits.
const (
	DFF       GateKind = "DFF"      // delay flip-flop: one superconductor ring
	DFFB      GateKind = "DFFB"     // DAU special DFF with bypass line (Fig. 9)
	AND       GateKind = "AND"      // clocked AND
	OR        GateKind = "OR"       // clocked OR (confluence + DFF)
	XOR       GateKind = "XOR"      // clocked XOR
	NOT       GateKind = "NOT"      // clocked inverter
	NDRO      GateKind = "NDRO"     // non-destructive read-out cell (weight register bit)
	TFF       GateKind = "TFF"      // toggle flip-flop (clock dividers)
	FA        GateKind = "FA"       // one-bit full adder (composite macro cell)
	Splitter  GateKind = "SPLITTER" // pulse splitter: one input pulse → two identical pulses
	Merger    GateKind = "CB"       // confluence buffer: merges two pulse streams
	JTL       GateKind = "JTL"      // Josephson transmission line segment
	MUXCell   GateKind = "MUX"      // 2:1 pulse multiplexer (NDRO-steered)
	DEMUXCell GateKind = "DEMUX"    // 1:2 pulse demultiplexer (NDRO-steered)
)

// Gate holds the per-cell parameters the gate-level estimation layer
// provides (Section IV-A1): timing (delay / setup / hold), power (static
// bias dissipation and per-switch access energy) and area via JJ count.
type Gate struct {
	Kind GateKind
	// Clocked reports whether the cell latches on a clock pulse. Unclocked
	// wire cells (JTL, splitter, merger) never terminate a gate pair in the
	// frequency model; they only contribute propagation delay.
	Clocked bool
	// Delay is the data propagation delay from input (or clock, for
	// clocked cells) pulse to output pulse.
	Delay float64 // seconds
	// Setup is the minimum time a data pulse must precede the clock pulse.
	Setup float64 // seconds
	// Hold is the minimum time the data pulse must trail the previous
	// clock pulse.
	Hold float64 // seconds
	// JJs is the junction count of the laid-out cell, the basis of the
	// area and static-power models.
	JJs int
	// SwitchedJJs is the average number of junctions that flip per access,
	// used for dynamic energy (≤ JJs; biasing/storage JJs do not all
	// switch on every access).
	SwitchedJJs float64
}

// Library is an immutable set of gates for one process and technology.
type Library struct {
	Proc  Process
	Tech  Technology
	gates map[GateKind]Gate
}

// NewLibrary builds the AIST 1.0 µm cell library for the given technology.
//
// Calibration anchors (all from the paper):
//   - AND: delay 8.3 ps, static 3.6 µW, dynamic 1.4 aJ  (Fig. 10 table)
//   - XOR: delay 6.5 ps, static 3.0 µW, dynamic 1.4 aJ  (Fig. 10 table)
//   - a DFF shift register runs at 133 GHz under concurrent-flow clocking
//     and 71 GHz under counter-flow clocking (Fig. 7c)
//   - a full adder runs at 66 GHz concurrent / 30 GHz counter-flow (Fig. 7c)
//
// Static power per gate is JJs × StaticPowerPerJJ (AND: 20 JJ × 0.18 µW =
// 3.6 µW). ERSFQ doubles SwitchedJJs (bias JJs flip too) and zeroes statics.
func NewLibrary(p Process, tech Technology) *Library {
	g := map[GateKind]Gate{
		DFF:       {Kind: DFF, Clocked: true, Delay: 3.3 * Picosecond, Setup: 4.5 * Picosecond, Hold: 3.0 * Picosecond, JJs: 6, SwitchedJJs: 4},
		DFFB:      {Kind: DFFB, Clocked: true, Delay: 3.6 * Picosecond, Setup: 4.8 * Picosecond, Hold: 3.2 * Picosecond, JJs: 9, SwitchedJJs: 5},
		AND:       {Kind: AND, Clocked: true, Delay: 8.3 * Picosecond, Setup: 5.4 * Picosecond, Hold: 3.8 * Picosecond, JJs: 20, SwitchedJJs: 10},
		OR:        {Kind: OR, Clocked: true, Delay: 7.0 * Picosecond, Setup: 5.0 * Picosecond, Hold: 3.5 * Picosecond, JJs: 14, SwitchedJJs: 8},
		XOR:       {Kind: XOR, Clocked: true, Delay: 6.5 * Picosecond, Setup: 5.2 * Picosecond, Hold: 3.6 * Picosecond, JJs: 17, SwitchedJJs: 10},
		NOT:       {Kind: NOT, Clocked: true, Delay: 6.8 * Picosecond, Setup: 5.0 * Picosecond, Hold: 3.4 * Picosecond, JJs: 12, SwitchedJJs: 7},
		NDRO:      {Kind: NDRO, Clocked: true, Delay: 5.8 * Picosecond, Setup: 4.9 * Picosecond, Hold: 3.3 * Picosecond, JJs: 11, SwitchedJJs: 5},
		TFF:       {Kind: TFF, Clocked: false, Delay: 4.0 * Picosecond, JJs: 8, SwitchedJJs: 4},
		FA:        {Kind: FA, Clocked: true, Delay: 9.09 * Picosecond, Setup: 9.0 * Picosecond, Hold: 6.15 * Picosecond, JJs: 26, SwitchedJJs: 14},
		Splitter:  {Kind: Splitter, Clocked: false, Delay: 1.8 * Picosecond, JJs: 3, SwitchedJJs: 3},
		Merger:    {Kind: Merger, Clocked: false, Delay: 3.0 * Picosecond, JJs: 5, SwitchedJJs: 3},
		JTL:       {Kind: JTL, Clocked: false, Delay: 2.2 * Picosecond, JJs: 2, SwitchedJJs: 2},
		MUXCell:   {Kind: MUXCell, Clocked: true, Delay: 6.0 * Picosecond, Setup: 5.0 * Picosecond, Hold: 3.5 * Picosecond, JJs: 16, SwitchedJJs: 8},
		DEMUXCell: {Kind: DEMUXCell, Clocked: true, Delay: 6.0 * Picosecond, Setup: 5.0 * Picosecond, Hold: 3.5 * Picosecond, JJs: 16, SwitchedJJs: 8},
	}
	if tech == ERSFQ {
		// ERSFQ replaces each bias resistor with a bias JJ + inductor:
		// the same logic structure and timing, twice the switching energy
		// (Section IV-A1), zero static power (handled by Process).
		for k, gate := range g {
			gate.SwitchedJJs *= 2
			g[k] = gate
		}
	}
	if ts := p.timingScale(); ts != 1 {
		// Scaled processes speed every cell up linearly (Kadin's rule).
		for k, gate := range g {
			gate.Delay *= ts
			gate.Setup *= ts
			gate.Hold *= ts
			g[k] = gate
		}
	}
	return &Library{Proc: p, Tech: tech, gates: g}
}

// ErrUnknownGate marks a gate kind absent from the cell library. Boundary
// code matches it with errors.Is to reject the input.
var ErrUnknownGate = errors.New("sfq: unknown gate kind")

// Lookup returns the named cell, or an ErrUnknownGate-wrapped error for a
// kind the library does not hold.
func (l *Library) Lookup(k GateKind) (Gate, error) {
	g, ok := l.gates[k]
	if !ok {
		return Gate{}, fmt.Errorf("%w %q", ErrUnknownGate, k)
	}
	return g, nil
}

// Gate returns the named cell. It panics on an unknown kind: the library is
// a closed, compile-time-known set and a miss is a programming error. The
// panic value wraps ErrUnknownGate, so errors.Is still identifies it after
// the parallel pool's panic recovery.
func (l *Library) Gate(k GateKind) Gate {
	g, err := l.Lookup(k)
	if err != nil {
		panic(err)
	}
	return g
}

// Kinds returns all cell kinds in deterministic order.
func (l *Library) Kinds() []GateKind {
	ks := make([]GateKind, 0, len(l.gates))
	for k := range l.gates {
		ks = append(ks, k)
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

// StaticPower returns the DC bias dissipation of one instance of gate k.
func (l *Library) StaticPower(k GateKind) float64 {
	return float64(l.Gate(k).JJs) * l.Proc.StaticPowerPerJJ(l.Tech)
}

// AccessEnergy returns the average dynamic energy of one access of gate k,
// the average over all possible input states as extracted by the circuit
// simulator (Section IV-A1).
func (l *Library) AccessEnergy(k GateKind) float64 {
	return l.Gate(k).SwitchedJJs * l.Proc.SwitchEnergyPerJJ
}

// Area returns the laid-out area of one instance of gate k.
func (l *Library) Area(k GateKind) float64 {
	return float64(l.Gate(k).JJs) * l.Proc.AreaPerJJ
}

// Inventory is a multiset of cells: the microarchitecture-level structure
// model describes every unit as gate counts (Fig. 10 "Gate count").
type Inventory map[GateKind]int

// Add merges other into inv with multiplicity n.
func (inv Inventory) Add(other Inventory, n int) {
	for k, c := range other {
		inv[k] += c * n
	}
}

// AddGate adds n instances of kind k.
func (inv Inventory) AddGate(k GateKind, n int) { inv[k] += n }

// JJs returns the total junction count of the inventory.
func (inv Inventory) JJs(l *Library) int {
	total := 0
	for k, n := range inv {
		total += l.Gate(k).JJs * n
	}
	return total
}

// Gates returns the total cell count.
func (inv Inventory) Gates() int {
	total := 0
	for _, n := range inv {
		total += n
	}
	return total
}

// sortedKinds returns the inventory's gate kinds in lexical order. Float
// reductions must accumulate in this fixed order: summing in map-iteration
// order makes the low-order bits of power/area/energy vary from run to run,
// which breaks byte-identical reproduction (golden files, the evaluation
// service's serial-vs-concurrent identity).
func (inv Inventory) sortedKinds() []GateKind {
	kinds := make([]GateKind, 0, len(inv))
	for k := range inv {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	return kinds
}

// StaticPower returns the inventory's total DC bias dissipation in watts.
func (inv Inventory) StaticPower(l *Library) float64 {
	p := 0.0
	for _, k := range inv.sortedKinds() {
		p += float64(inv[k]) * l.StaticPower(k)
	}
	return p
}

// Area returns the inventory's total laid-out area in m².
func (inv Inventory) Area(l *Library) float64 {
	a := 0.0
	for _, k := range inv.sortedKinds() {
		a += float64(inv[k]) * l.Area(k)
	}
	return a
}

// AccessEnergy returns the dynamic energy of one access that activates every
// cell in the inventory once (e.g. one shift of a register stage).
func (inv Inventory) AccessEnergy(l *Library) float64 {
	e := 0.0
	for _, k := range inv.sortedKinds() {
		e += float64(inv[k]) * l.AccessEnergy(k)
	}
	return e
}

// Clone returns a deep copy of the inventory.
func (inv Inventory) Clone() Inventory {
	out := make(Inventory, len(inv))
	for k, v := range inv {
		out[k] = v
	}
	return out
}
