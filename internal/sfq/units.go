// Package sfq models superconductor single-flux-quantum (SFQ) logic at the
// device and gate level: Josephson-junction parameters, the RSFQ/ERSFQ cell
// library for the AIST 1.0 µm fabrication process, and the JJ-count based
// area and static-power models the SuperNPU estimator builds on.
//
// All physical quantities use SI base units (seconds, watts, joules, square
// metres) stored in float64; the helper constants below keep call sites
// readable (e.g. 8.3*sfq.Picosecond).
package sfq

// Time, power, energy and length scale constants in SI units.
const (
	Picosecond = 1e-12 // seconds
	Nanosecond = 1e-9  // seconds

	Microwatt = 1e-6 // watts
	Milliwatt = 1e-3 // watts

	Attojoule = 1e-18 // joules

	GHz = 1e9 // hertz

	Micrometre = 1e-6 // metres

	// SquareMicrometre and SquareMillimetre convert areas to SI m².
	SquareMicrometre = 1e-12 // m²
	SquareMillimetre = 1e-6  // m²
)

// FluxQuantum is the magnetic flux quantum Φ0 = h/2e in webers. A stored Φ0
// in a superconductor ring is the information carrier of SFQ logic.
const FluxQuantum = 2.067833848e-15 // Wb
