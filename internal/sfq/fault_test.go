package sfq

import (
	"testing"

	"supernpu/internal/faultinject"
)

func TestNewLibraryFaultedDisabledIsNominal(t *testing.T) {
	nominal := NewLibrary(AIST10(), RSFQ)
	faulted := NewLibraryFaulted(AIST10(), RSFQ, nil)
	for _, k := range nominal.Kinds() {
		if nominal.Gate(k) != faulted.Gate(k) {
			t.Fatalf("gate %s differs under a nil fault model", k)
		}
	}
}

func TestNewLibraryFaultedStretchesTiming(t *testing.T) {
	fm := &faultinject.Model{Seed: 3, MarginErosion: 0.2}
	nominal := NewLibrary(AIST10(), RSFQ)
	faulted := NewLibraryFaulted(AIST10(), RSFQ, fm)
	for _, k := range nominal.Kinds() {
		n, f := nominal.Gate(k), faulted.Gate(k)
		if f.Delay <= n.Delay {
			t.Fatalf("gate %s delay not stretched: %g <= %g", k, f.Delay, n.Delay)
		}
		if n.Clocked && f.Setup <= n.Setup {
			t.Fatalf("gate %s setup not stretched", k)
		}
	}
	// Same seed reproduces the same library.
	again := NewLibraryFaulted(AIST10(), RSFQ, &faultinject.Model{Seed: 3, MarginErosion: 0.2})
	for _, k := range nominal.Kinds() {
		if faulted.Gate(k) != again.Gate(k) {
			t.Fatalf("gate %s not reproducible under the same seed", k)
		}
	}
}
