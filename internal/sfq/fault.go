package sfq

import "supernpu/internal/faultinject"

// NewLibraryFaulted builds the cell library at a fault-perturbed operating
// point. Per gate kind (the site is "sfq/gate/<kind>", so a draw depends
// only on the kind, never on call order):
//
//   - every timing arc (delay, setup, hold) stretches by DelayScale — the
//     Ic-spread slowdown of an underbiased junction compounded with the
//     model's margin erosion — which lowers the frequency the clocking
//     model derives for every unit built from the gate; and
//   - the per-access switching energy scales with the local critical
//     current (a fluxon carries Ic·Φ0-proportional energy), via SwitchedJJs.
//
// The process bias point is retuned to the chip-mean Ic draw (site
// "sfq/process/bias"), shifting static power and per-JJ switching energy
// together. A disabled model returns the exact nominal library.
func NewLibraryFaulted(p Process, tech Technology, fm *faultinject.Model) *Library {
	if !fm.Enabled() {
		return NewLibrary(p, tech)
	}
	biasScale := fm.IcScale("sfq/process/bias")
	p.BiasCurrentPerJJ *= biasScale
	p.SwitchEnergyPerJJ *= biasScale

	l := NewLibrary(p, tech)
	for k, gate := range l.gates {
		site := "sfq/gate/" + string(k)
		ds := fm.DelayScale(site)
		gate.Delay *= ds
		gate.Setup *= ds
		gate.Hold *= ds
		gate.SwitchedJJs *= fm.IcScale(site)
		l.gates[k] = gate
	}
	return l
}
