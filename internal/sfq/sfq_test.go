package sfq

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		if got != 0 {
			t.Fatalf("%s: got %g, want 0", name, got)
		}
		return
	}
	if math.Abs(got-want)/math.Abs(want) > relTol {
		t.Fatalf("%s: got %g, want %g (tol %.1f%%)", name, got, want, relTol*100)
	}
}

// The AND and XOR rows of the paper's gate-parameter table (Fig. 10) are the
// calibration anchors for the whole gate level.
func TestPaperGateParameterTable(t *testing.T) {
	lib := NewLibrary(AIST10(), RSFQ)

	and := lib.Gate(AND)
	almost(t, "AND delay", and.Delay, 8.3*Picosecond, 0.001)
	almost(t, "AND static power", lib.StaticPower(AND), 3.6*Microwatt, 0.05)
	almost(t, "AND access energy", lib.AccessEnergy(AND), 1.4*Attojoule, 0.02)

	xor := lib.Gate(XOR)
	almost(t, "XOR delay", xor.Delay, 6.5*Picosecond, 0.001)
	almost(t, "XOR static power", lib.StaticPower(XOR), 3.0*Microwatt, 0.05)
	almost(t, "XOR access energy", lib.AccessEnergy(XOR), 1.4*Attojoule, 0.02)
}

func TestERSFQDerivation(t *testing.T) {
	r := NewLibrary(AIST10(), RSFQ)
	e := NewLibrary(AIST10(), ERSFQ)
	for _, k := range r.Kinds() {
		// Same structure and timing.
		if r.Gate(k).Delay != e.Gate(k).Delay || r.Gate(k).Setup != e.Gate(k).Setup {
			t.Errorf("%s: ERSFQ timing must equal RSFQ", k)
		}
		if r.Gate(k).JJs != e.Gate(k).JJs {
			t.Errorf("%s: ERSFQ area (JJ count) must equal RSFQ", k)
		}
		// Zero static power, doubled access energy (Section IV-A1).
		if e.StaticPower(k) != 0 {
			t.Errorf("%s: ERSFQ static power = %g, want 0", k, e.StaticPower(k))
		}
		almost(t, string(k)+" ERSFQ energy", e.AccessEnergy(k), 2*r.AccessEnergy(k), 1e-9)
	}
}

func TestTechnologyString(t *testing.T) {
	if RSFQ.String() != "RSFQ" || ERSFQ.String() != "ERSFQ" {
		t.Fatalf("unexpected Technology strings %q %q", RSFQ, ERSFQ)
	}
	if Technology(9).String() != "Technology(9)" {
		t.Fatalf("unexpected fallback string %q", Technology(9))
	}
}

func TestScaleAreaTo28nm(t *testing.T) {
	p := AIST10()
	f := p.ScaleAreaTo(28e-9)
	almost(t, "scale factor", f, (0.028)*(0.028), 1e-9)
	// Scaling must shrink a 1.0 µm layout by ~1275×.
	if f >= 1 {
		t.Fatalf("scaling to a finer process must shrink area, got factor %g", f)
	}
}

func TestUnknownGatePanics(t *testing.T) {
	lib := NewLibrary(AIST10(), RSFQ)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown gate kind")
		}
	}()
	lib.Gate(GateKind("BOGUS"))
}

func TestWireCellsAreUnclocked(t *testing.T) {
	lib := NewLibrary(AIST10(), RSFQ)
	for _, k := range []GateKind{JTL, Splitter, Merger} {
		if lib.Gate(k).Clocked {
			t.Errorf("%s must be an unclocked wire cell", k)
		}
	}
	for _, k := range []GateKind{DFF, AND, XOR, FA, NDRO} {
		if !lib.Gate(k).Clocked {
			t.Errorf("%s must be clocked (every SFQ logic gate latches)", k)
		}
	}
}

func TestInventoryAccounting(t *testing.T) {
	lib := NewLibrary(AIST10(), RSFQ)
	inv := Inventory{}
	inv.AddGate(DFF, 10)
	inv.AddGate(Splitter, 10)
	sub := Inventory{AND: 2, XOR: 1}
	inv.Add(sub, 3)

	if got := inv.Gates(); got != 29 {
		t.Fatalf("Gates() = %d, want 29", got)
	}
	wantJJ := 10*6 + 10*3 + 6*20 + 3*17
	if got := inv.JJs(lib); got != wantJJ {
		t.Fatalf("JJs() = %d, want %d", got, wantJJ)
	}
	almost(t, "static", inv.StaticPower(lib),
		float64(wantJJ)*AIST10().StaticPowerPerJJ(RSFQ), 1e-9)
	if inv.Area(lib) <= 0 || inv.AccessEnergy(lib) <= 0 {
		t.Fatal("area and energy must be positive")
	}
	c := inv.Clone()
	c.AddGate(DFF, 1)
	if c[DFF] != inv[DFF]+1 {
		t.Fatal("Clone must be independent of the original")
	}
}

// Property: inventory accounting is linear — merging two inventories adds
// their JJ counts, areas, static powers and energies exactly.
func TestInventoryLinearityProperty(t *testing.T) {
	lib := NewLibrary(AIST10(), RSFQ)
	kinds := lib.Kinds()
	f := func(a, b [8]uint8) bool {
		ia, ib := Inventory{}, Inventory{}
		for i := 0; i < 8; i++ {
			ia.AddGate(kinds[i%len(kinds)], int(a[i]))
			ib.AddGate(kinds[i%len(kinds)], int(b[i]))
		}
		merged := ia.Clone()
		merged.Add(ib, 1)
		okJJ := merged.JJs(lib) == ia.JJs(lib)+ib.JJs(lib)
		okGates := merged.Gates() == ia.Gates()+ib.Gates()
		okArea := math.Abs(merged.Area(lib)-(ia.Area(lib)+ib.Area(lib))) < 1e-18
		okPow := math.Abs(merged.StaticPower(lib)-(ia.StaticPower(lib)+ib.StaticPower(lib))) < 1e-15
		return okJJ && okGates && okArea && okPow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: multiplicity scaling — Add with n behaves as n separate adds.
func TestInventoryMultiplicityProperty(t *testing.T) {
	f := func(n uint8, dff, and uint8) bool {
		base := Inventory{DFF: int(dff), AND: int(and)}
		viaN := Inventory{}
		viaN.Add(base, int(n))
		viaLoop := Inventory{}
		for i := 0; i < int(n); i++ {
			viaLoop.Add(base, 1)
		}
		return viaN[DFF] == viaLoop[DFF] && viaN[AND] == viaLoop[AND]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStaticPowerPerJJ(t *testing.T) {
	p := AIST10()
	// 2.6 mV × 69.2 µA ≈ 0.18 µW per junction under RSFQ biasing.
	almost(t, "per-JJ static", p.StaticPowerPerJJ(RSFQ), 0.173*Microwatt, 0.01)
	if p.StaticPowerPerJJ(ERSFQ) != 0 {
		t.Fatal("ERSFQ must have zero static power per JJ")
	}
}

// The paper's footnote 2: frequency scales linearly with the JJ feature
// size down to ~200 nm — a 0.5 µm library is twice as fast, and scaling
// below the floor clamps.
func TestProcessScaling(t *testing.T) {
	base := NewLibrary(AIST10(), RSFQ)
	half := NewLibrary(AIST10().ScaledTo(0.5*Micrometre), RSFQ)
	for _, k := range base.Kinds() {
		if g := half.Gate(k); math.Abs(g.Delay-0.5*base.Gate(k).Delay) > 1e-18 {
			t.Fatalf("%s: delay must halve at 0.5 µm", k)
		}
	}
	// Energy, area and static power shrink too.
	if half.AccessEnergy(DFF) >= base.AccessEnergy(DFF) {
		t.Error("scaled process must reduce switching energy")
	}
	if half.Area(DFF) >= base.Area(DFF)/2 {
		t.Error("area must shrink quadratically")
	}
	// Clamping at the 200 nm validity floor.
	deep := AIST10().ScaledTo(10e-9)
	if deep.FeatureSize != ScalingFloor {
		t.Fatalf("scaling must clamp at %g, got %g", ScalingFloor, deep.FeatureSize)
	}
}
