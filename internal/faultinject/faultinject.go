// Package faultinject is the repository's deterministic SFQ fault model.
//
// SuperNPU's feasibility rests on single-flux-quantum circuits operating
// inside tight bias-current and timing margins. The paper's JSIM-extracted
// gate parameters assume nominal junctions; real RSFQ/ERSFQ chips suffer
//
//   - critical-current (Ic) spread from fabrication variation, which shifts
//     every gate's operating point (delay, bias power, switching energy);
//   - thermal pulse drops, where a fluxon fails to propagate — in a
//     shift-register memory a dropped pulse must be recovered by
//     recirculating the whole chunk; and
//   - timing-margin erosion, which lowers the attainable clock frequency.
//
// A Model perturbs the three modeling layers (jsim circuit transients, the
// sfq cell library, the npusim/srmem cycle models) in a fully deterministic,
// seed-keyed way: every random draw is a pure function of (Seed, site),
// where the site is a stable string naming the perturbed entity (a junction
// index, a gate kind, a layer of a network). No draw consumes shared RNG
// state, so results are byte-identical across runs, goroutine schedules and
// worker counts — the property the golden exhibits and the evaluation
// service's response-identity tests rely on.
//
// A nil *Model (or one with every rate at zero) injects nothing; every
// consumer treats that as the exact nominal path.
package faultinject

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Model is a seed-keyed fault-injection configuration. The zero value (and
// nil) disables every fault class.
type Model struct {
	// Seed keys every pseudo-random draw. Two models with equal rates but
	// different seeds perturb differently; the same seed reproduces the
	// same faults exactly.
	Seed int64

	// IcSpread is the fractional standard deviation of junction
	// critical-current spread (e.g. 0.03 = 3% sigma). It perturbs jsim
	// junction parameters and the sfq cell library's operating point.
	IcSpread float64

	// PulseDrop is the per-shift probability that a shift-register buffer
	// drops a pulse. Dropped pulses are recovered by recirculating the
	// chunk, costing preparation cycles in the performance simulator.
	PulseDrop float64

	// BitFlip is the per-MAC probability of a datapath bit flip. Flips are
	// not recovered; they corrupt outputs and degrade the accuracy proxy.
	BitFlip float64

	// MarginErosion is an additional fractional timing-margin loss applied
	// to every cell's delay/setup/hold on top of the Ic-spread shift
	// (e.g. 0.05 stretches every timing arc by 5%).
	MarginErosion float64

	// SimFail is the probability that a whole simulation aborts with a
	// *FaultError — the model of an unrecoverable margin violation. The
	// serving pipeline degrades such requests instead of failing them.
	SimFail float64
}

// Enabled reports whether the model injects anything. It is nil-safe.
func (m *Model) Enabled() bool {
	if m == nil {
		return false
	}
	return m.IcSpread != 0 || m.PulseDrop != 0 || m.BitFlip != 0 ||
		m.MarginErosion != 0 || m.SimFail != 0
}

// Key fingerprints the model for memoisation: faulted simulations must
// never share a cache entry with nominal ones or with other fault settings.
// A disabled model keys to the empty string, so nominal paths keep their
// exact pre-fault cache keys.
func (m *Model) Key() string {
	if !m.Enabled() {
		return ""
	}
	var b strings.Builder
	b.WriteString("\x1ffault:")
	b.WriteString(strconv.FormatInt(m.Seed, 10))
	for _, v := range []float64{m.IcSpread, m.PulseDrop, m.BitFlip, m.MarginErosion, m.SimFail} {
		b.WriteByte(':')
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return b.String()
}

// String renders the model for logs and exhibit headers.
func (m *Model) String() string {
	if !m.Enabled() {
		return "faults disabled"
	}
	return fmt.Sprintf("seed %d, Ic spread %.3g, pulse drop %.3g, bit flip %.3g, margin erosion %.3g, sim fail %.3g",
		m.Seed, m.IcSpread, m.PulseDrop, m.BitFlip, m.MarginErosion, m.SimFail)
}

// hash maps (seed, site) onto 64 uniformly scrambled bits: FNV-1a over the
// site bytes folded with the seed, finished with the splitmix64 mixer. The
// result is a pure function of its inputs — the foundation of the model's
// schedule independence.
func (m *Model) hash(site string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ uint64(m.Seed)
	for i := 0; i < len(site); i++ {
		h ^= uint64(site[i])
		h *= prime64
	}
	// splitmix64 finalizer: full avalanche, so nearby sites decorrelate.
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Uniform returns a deterministic draw in [0, 1) for the site.
func (m *Model) Uniform(site string) float64 {
	return float64(m.hash(site)>>11) / (1 << 53)
}

// Normal returns a deterministic standard-normal draw for the site
// (Box–Muller over two decorrelated uniform draws).
func (m *Model) Normal(site string) float64 {
	u1 := m.Uniform(site + "\x00a")
	u2 := m.Uniform(site + "\x00b")
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// icScaleClamp bounds the critical-current perturbation: beyond ±30% a
// junction is simply dead, which the pulse-drop and sim-fail classes model
// separately; letting the scale run further only destabilises transients.
const icScaleClamp = 0.3

// IcScale returns the site's critical-current multiplier: 1 + IcSpread·N(0,1),
// clamped to [1−icScaleClamp, 1+icScaleClamp]. It is 1 exactly when the
// model is disabled or IcSpread is zero.
func (m *Model) IcScale(site string) float64 {
	if m == nil || m.IcSpread == 0 {
		return 1
	}
	s := 1 + m.IcSpread*m.Normal(site)
	if s < 1-icScaleClamp {
		s = 1 - icScaleClamp
	}
	if s > 1+icScaleClamp {
		s = 1 + icScaleClamp
	}
	return s
}

// DelayScale returns the site's timing multiplier. An underbiased junction
// switches more slowly — RSFQ gate delay tracks Φ0/(Ic·R), so delay grows as
// the local critical current shrinks — and MarginErosion stretches every
// timing arc on top of that.
func (m *Model) DelayScale(site string) float64 {
	if !m.Enabled() {
		return 1
	}
	return (1 + m.MarginErosion) / m.IcScale(site)
}

// Count converts a per-event probability over n events into a deterministic
// event count: the expectation ⌊p·n⌋ plus one more when the site's uniform
// draw falls below the fractional remainder. This keeps counts reproducible
// (no binomial sampling state) while still rounding fairly across sites.
func (m *Model) Count(p float64, n int64, site string) int64 {
	if m == nil || p <= 0 || n <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	exp := p * float64(n)
	c := int64(exp)
	if m.Uniform(site) < exp-float64(c) {
		c++
	}
	if c > n {
		c = n
	}
	return c
}

// FailsSimulation reports whether the site's whole simulation aborts under
// the SimFail rate.
func (m *Model) FailsSimulation(site string) bool {
	if m == nil || m.SimFail <= 0 {
		return false
	}
	return m.Uniform("simfail\x00"+site) < m.SimFail
}

// FaultError marks a simulation aborted by an injected unrecoverable fault.
// The evaluation service maps it onto the degraded (analytical-fallback)
// path rather than a 5xx.
type FaultError struct {
	// Site names the simulation that aborted.
	Site string
}

// Error implements error. The text is deterministic (no addresses, no
// stacks) so degraded responses that embed it stay byte-stable.
func (e *FaultError) Error() string {
	return fmt.Sprintf("faultinject: simulation %q aborted by injected margin violation", e.Site)
}
