package faultinject

import (
	"math"
	"testing"
)

func TestNilAndZeroModelsAreDisabled(t *testing.T) {
	var nilModel *Model
	if nilModel.Enabled() {
		t.Fatal("nil model reports enabled")
	}
	if (&Model{Seed: 42}).Enabled() {
		t.Fatal("zero-rate model reports enabled")
	}
	if got := nilModel.IcScale("x"); got != 1 {
		t.Fatalf("nil IcScale = %g, want 1", got)
	}
	if got := nilModel.DelayScale("x"); got != 1 {
		t.Fatalf("nil DelayScale = %g, want 1", got)
	}
	if got := nilModel.Count(0.5, 100, "x"); got != 0 {
		t.Fatalf("nil Count = %d, want 0", got)
	}
	if nilModel.FailsSimulation("x") {
		t.Fatal("nil model fails simulations")
	}
	if nilModel.Key() != "" {
		t.Fatalf("nil Key = %q, want empty", nilModel.Key())
	}
}

func TestDrawsAreDeterministicPerSite(t *testing.T) {
	m := &Model{Seed: 7, IcSpread: 0.05}
	for _, site := range []string{"a", "b", "jsim/jtl/3", "sfq/AND"} {
		if m.Uniform(site) != m.Uniform(site) {
			t.Fatalf("Uniform(%q) not deterministic", site)
		}
		if m.IcScale(site) != m.IcScale(site) {
			t.Fatalf("IcScale(%q) not deterministic", site)
		}
	}
	if m.Uniform("a") == m.Uniform("b") {
		t.Fatal("distinct sites drew the same uniform")
	}
	other := &Model{Seed: 8, IcSpread: 0.05}
	if m.IcScale("a") == other.IcScale("a") {
		t.Fatal("distinct seeds drew the same Ic scale")
	}
}

func TestIcScaleIsClampedAndCentred(t *testing.T) {
	m := &Model{Seed: 3, IcSpread: 0.5} // huge sigma to exercise the clamp
	sum := 0.0
	const n = 2000
	for i := 0; i < n; i++ {
		s := m.IcScale("site" + string(rune('a'+i%26)) + "/" + string(rune('0'+i%10)) + "/" + itoa(i))
		if s < 1-icScaleClamp-1e-12 || s > 1+icScaleClamp+1e-12 {
			t.Fatalf("IcScale %g escapes the clamp", s)
		}
		sum += s
	}
	if mean := sum / n; math.Abs(mean-1) > 0.05 {
		t.Fatalf("IcScale mean %g far from 1", mean)
	}
}

func itoa(i int) string {
	return string(rune('A' + i%26))
}

func TestUniformLooksUniform(t *testing.T) {
	m := &Model{Seed: 11, IcSpread: 1}
	var buckets [10]int
	const n = 10000
	for i := 0; i < n; i++ {
		u := m.Uniform("u/" + itoa(i) + itoa(i/26) + itoa(i/676) + string(rune(i%256)))
		if u < 0 || u >= 1 {
			t.Fatalf("Uniform out of range: %g", u)
		}
		buckets[int(u*10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/25 || c > n/10+n/25 {
			t.Fatalf("bucket %d holds %d of %d draws: not uniform", b, c, n)
		}
	}
}

func TestCountMatchesExpectation(t *testing.T) {
	m := &Model{Seed: 5, PulseDrop: 1}
	if got := m.Count(0, 100, "x"); got != 0 {
		t.Fatalf("Count(0) = %d", got)
	}
	if got := m.Count(1, 100, "x"); got != 100 {
		t.Fatalf("Count(1) = %d", got)
	}
	if got := m.Count(2, 100, "x"); got != 100 {
		t.Fatalf("Count(2) = %d, want clamped to n", got)
	}
	// Expectation 12.5 must round to 12 or 13, deterministically.
	c := m.Count(0.125, 100, "site")
	if c != 12 && c != 13 {
		t.Fatalf("Count(0.125, 100) = %d, want 12 or 13", c)
	}
	if c2 := m.Count(0.125, 100, "site"); c2 != c {
		t.Fatalf("Count not deterministic: %d then %d", c, c2)
	}
}

func TestKeyDistinguishesEveryField(t *testing.T) {
	base := Model{Seed: 1, IcSpread: 0.01, PulseDrop: 1e-9, BitFlip: 1e-12, MarginErosion: 0.02, SimFail: 0.5}
	variants := []Model{
		{Seed: 2, IcSpread: 0.01, PulseDrop: 1e-9, BitFlip: 1e-12, MarginErosion: 0.02, SimFail: 0.5},
		{Seed: 1, IcSpread: 0.02, PulseDrop: 1e-9, BitFlip: 1e-12, MarginErosion: 0.02, SimFail: 0.5},
		{Seed: 1, IcSpread: 0.01, PulseDrop: 2e-9, BitFlip: 1e-12, MarginErosion: 0.02, SimFail: 0.5},
		{Seed: 1, IcSpread: 0.01, PulseDrop: 1e-9, BitFlip: 2e-12, MarginErosion: 0.02, SimFail: 0.5},
		{Seed: 1, IcSpread: 0.01, PulseDrop: 1e-9, BitFlip: 1e-12, MarginErosion: 0.03, SimFail: 0.5},
		{Seed: 1, IcSpread: 0.01, PulseDrop: 1e-9, BitFlip: 1e-12, MarginErosion: 0.02, SimFail: 0.6},
	}
	seen := map[string]bool{base.Key(): true}
	for i, v := range variants {
		k := v.Key()
		if seen[k] {
			t.Fatalf("variant %d collides with a previous key", i)
		}
		seen[k] = true
	}
}

func TestFailsSimulationRespectsRate(t *testing.T) {
	always := &Model{Seed: 9, SimFail: 1}
	if !always.FailsSimulation("any") {
		t.Fatal("SimFail=1 did not fail")
	}
	never := &Model{Seed: 9, SimFail: 0, IcSpread: 0.1}
	if never.FailsSimulation("any") {
		t.Fatal("SimFail=0 failed")
	}
}

func TestFaultErrorTextIsStable(t *testing.T) {
	e := &FaultError{Site: "npusim/SuperNPU/ResNet50/30"}
	if e.Error() != (&FaultError{Site: "npusim/SuperNPU/ResNet50/30"}).Error() {
		t.Fatal("FaultError text not stable")
	}
}
