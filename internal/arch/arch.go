// Package arch defines the SFQ-based NPU architecture configuration shared
// by the estimator and the performance simulator, together with the four
// design points of the paper's evaluation (Table I): the Baseline, the
// buffer-optimised design, the resource-balanced design, and SuperNPU.
package arch

import (
	"fmt"

	"supernpu/internal/pe"
	"supernpu/internal/sfq"
	"supernpu/internal/srmem"
)

// MB is two-to-the-twenty bytes, the unit of Table I capacities.
const MB = 1 << 20

// KB is two-to-the-ten bytes.
const KB = 1 << 10

// Config describes one SFQ-based NPU design point.
type Config struct {
	Name string

	// ArrayHeight is the number of PE rows (weight positions per mapping);
	// ArrayWidth the number of PE columns (filters per mapping).
	ArrayHeight, ArrayWidth int

	// Registers is the number of weight registers per PE (Section V-B3).
	Registers int

	// IfmapBufBytes and IfmapChunks size and divide the ifmap buffer.
	IfmapBufBytes, IfmapChunks int

	// OutputBufBytes and OutputChunks size and divide the output buffer.
	// When IntegratedOutput is true this one macro serves as both psum and
	// ofmap storage via chunk selection (Fig. 19 ①); otherwise it is the
	// ofmap buffer and PsumBufBytes a separate psum buffer (Baseline).
	OutputBufBytes, OutputChunks int
	IntegratedOutput             bool
	PsumBufBytes                 int

	// WeightBufBytes sizes the weight buffer.
	WeightBufBytes int

	// Tech selects RSFQ or ERSFQ biasing.
	Tech sfq.Technology

	// MemoryBandwidth is the off-chip DRAM bandwidth in bytes/s (the
	// paper uses 300 GB/s, the TPUv2 HBM figure).
	MemoryBandwidth float64
}

// DefaultBandwidth is the paper's 300 GB/s HBM assumption.
const DefaultBandwidth = 300e9

// Validate reports a configuration error, if any.
func (c Config) Validate() error {
	if c.ArrayHeight <= 0 || c.ArrayWidth <= 0 || c.Registers <= 0 {
		return fmt.Errorf("arch: %s: array %dx%d with %d registers is invalid",
			c.Name, c.ArrayHeight, c.ArrayWidth, c.Registers)
	}
	if c.MemoryBandwidth <= 0 {
		return fmt.Errorf("arch: %s: memory bandwidth must be positive", c.Name)
	}
	if !c.IntegratedOutput && c.PsumBufBytes <= 0 {
		return fmt.Errorf("arch: %s: non-integrated design needs a psum buffer", c.Name)
	}
	if c.IntegratedOutput && c.PsumBufBytes != 0 {
		return fmt.Errorf("arch: %s: integrated design must not declare a psum buffer", c.Name)
	}
	for _, b := range []srmem.Config{c.IfmapBuf(), c.OutputBuf(), c.WeightBuf()} {
		if err := b.Validate(); err != nil {
			return fmt.Errorf("arch: %s: %w", c.Name, err)
		}
	}
	return nil
}

// PECfg returns the PE configuration of this design.
func (c Config) PECfg() pe.Config { return pe.Default8Bit(c.Registers) }

// IfmapBuf returns the ifmap buffer geometry: one byte lane per PE row.
func (c Config) IfmapBuf() srmem.Config {
	return srmem.Config{
		WidthBytes:    c.ArrayHeight,
		CapacityBytes: c.IfmapBufBytes,
		Chunks:        c.IfmapChunks,
	}
}

// OutputBuf returns the output (ofmap, or integrated ofmap+psum) buffer
// geometry: one byte lane per PE column.
func (c Config) OutputBuf() srmem.Config {
	return srmem.Config{
		WidthBytes:    c.ArrayWidth,
		CapacityBytes: c.OutputBufBytes,
		Chunks:        c.OutputChunks,
	}
}

// PsumBuf returns the separate psum buffer geometry of non-integrated
// designs; callers must check IntegratedOutput first.
func (c Config) PsumBuf() srmem.Config {
	return srmem.Config{
		WidthBytes:    c.ArrayWidth,
		CapacityBytes: c.PsumBufBytes,
		Chunks:        1,
	}
}

// WeightBuf returns the weight buffer geometry.
func (c Config) WeightBuf() srmem.Config {
	return srmem.Config{
		WidthBytes:    c.ArrayWidth,
		CapacityBytes: c.WeightBufBytes,
		Chunks:        1,
	}
}

// ActivationCapacity is the total on-chip activation storage available for
// batching: ifmap plus output (plus psum) buffers.
func (c Config) ActivationCapacity() int64 {
	return int64(c.IfmapBufBytes) + int64(c.OutputBufBytes) + int64(c.PsumBufBytes)
}

// PEs returns the PE count.
func (c Config) PEs() int { return c.ArrayHeight * c.ArrayWidth }

// Baseline returns the naive SFQ-based NPU of Section V-A: the TPU-like
// organisation (256×256 weight-stationary array) with monolithic
// shift-register buffers (Table I column "Baseline").
func Baseline() Config {
	return Config{
		Name:        "Baseline",
		ArrayHeight: 256, ArrayWidth: 256,
		Registers:     1,
		IfmapBufBytes: 8 * MB, IfmapChunks: 1,
		OutputBufBytes: 8 * MB, OutputChunks: 1,
		PsumBufBytes:    8 * MB,
		WeightBufBytes:  64 * KB,
		Tech:            sfq.RSFQ,
		MemoryBandwidth: DefaultBandwidth,
	}
}

// BufferOpt returns the Baseline with the optimised on-chip buffer
// architecture of Section V-B1: psum and ofmap buffers merged into one
// integrated output buffer and both buffers divided into 64 chunks
// (Table I column "Buffer opt.").
func BufferOpt() Config {
	c := Baseline()
	c.Name = "Buffer opt."
	c.IfmapBufBytes, c.IfmapChunks = 12*MB, 64
	c.OutputBufBytes, c.OutputChunks = 12*MB, 64
	c.IntegratedOutput = true
	c.PsumBufBytes = 0
	return c
}

// ResourceOpt returns the resource-balanced design of Section V-B2: the PE
// array narrowed to width 64 and the freed area spent on doubled buffers
// (Table I column "Resource opt.").
func ResourceOpt() Config {
	c := BufferOpt()
	c.Name = "Resource opt."
	c.ArrayWidth = 64
	c.IfmapBufBytes, c.IfmapChunks = 24*MB, 64
	c.OutputBufBytes, c.OutputChunks = 24*MB, 256
	c.WeightBufBytes = 16 * KB
	return c
}

// SuperNPU returns the final design of Section V-B3: ResourceOpt plus
// eight weight registers per PE for multi-kernel execution (Table I column
// "SuperNPU", Fig. 19).
func SuperNPU() Config {
	c := ResourceOpt()
	c.Name = "SuperNPU"
	c.Registers = 8
	c.WeightBufBytes = 128 * KB
	return c
}

// Designs returns the four SFQ design points in optimisation order.
func Designs() []Config {
	return []Config{Baseline(), BufferOpt(), ResourceOpt(), SuperNPU()}
}
