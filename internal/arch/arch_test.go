package arch

import (
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
)

// Table I: the four design points carry the paper's exact configurations.
func TestTable1Presets(t *testing.T) {
	b := Baseline()
	if b.ArrayHeight != 256 || b.ArrayWidth != 256 || b.Registers != 1 {
		t.Errorf("Baseline array wrong: %+v", b)
	}
	if b.IfmapBufBytes != 8*MB || b.OutputBufBytes != 8*MB || b.PsumBufBytes != 8*MB {
		t.Error("Baseline buffers must be 8+8+8 MB")
	}
	if b.WeightBufBytes != 64*KB || b.IntegratedOutput {
		t.Error("Baseline: 64 KB weight buffer, separate psum buffer")
	}

	o := BufferOpt()
	if !o.IntegratedOutput || o.PsumBufBytes != 0 {
		t.Error("Buffer opt. must integrate psum into the output buffer")
	}
	if o.IfmapBufBytes != 12*MB || o.IfmapChunks != 64 || o.OutputChunks != 64 {
		t.Errorf("Buffer opt. buffers wrong: %+v", o)
	}

	r := ResourceOpt()
	if r.ArrayWidth != 64 || r.IfmapBufBytes != 24*MB || r.OutputBufBytes != 24*MB {
		t.Errorf("Resource opt. wrong: %+v", r)
	}
	if r.OutputChunks != 256 || r.WeightBufBytes != 16*KB {
		t.Errorf("Resource opt. division/weight buffer wrong: %+v", r)
	}

	s := SuperNPU()
	if s.Registers != 8 || s.WeightBufBytes != 128*KB || s.ArrayWidth != 64 {
		t.Errorf("SuperNPU wrong: %+v", s)
	}
	if s.Tech != sfq.RSFQ {
		t.Error("designs default to the proven RSFQ technology")
	}

	for _, cfg := range Designs() {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
}

func TestValidateRejections(t *testing.T) {
	cases := map[string]func(*Config){
		"zero width":          func(c *Config) { c.ArrayWidth = 0 },
		"zero registers":      func(c *Config) { c.Registers = 0 },
		"zero bandwidth":      func(c *Config) { c.MemoryBandwidth = 0 },
		"missing psum":        func(c *Config) { c.PsumBufBytes = 0 },
		"tiny chunked buffer": func(c *Config) { c.IfmapBufBytes = 16; c.IfmapChunks = 64 },
		"psum on integrated":  func(c *Config) { c.IntegratedOutput = true },
	}
	for name, mutate := range cases {
		cfg := Baseline()
		mutate(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("%s: Validate must reject", name)
		}
	}
}

func TestBufferGeometry(t *testing.T) {
	s := SuperNPU()
	if w := s.IfmapBuf().WidthBytes; w != 256 {
		t.Errorf("ifmap buffer width = %d, want one lane per PE row (256)", w)
	}
	if w := s.OutputBuf().WidthBytes; w != 64 {
		t.Errorf("output buffer width = %d, want one lane per PE column (64)", w)
	}
	if s.PEs() != 64*256 {
		t.Errorf("PEs() = %d", s.PEs())
	}
	if got := s.ActivationCapacity(); got != int64(48*MB) {
		t.Errorf("activation capacity = %d, want 48 MB", got)
	}
	b := Baseline()
	if got := b.ActivationCapacity(); got != int64(24*MB) {
		t.Errorf("Baseline activation capacity = %d, want 24 MB", got)
	}
	if b.PsumBuf().CapacityBytes != 8*MB || b.WeightBuf().CapacityBytes != 64*KB {
		t.Error("psum/weight buffer geometry wrong")
	}
}

func TestPECfgCarriesRegisters(t *testing.T) {
	if SuperNPU().PECfg().Registers != 8 || Baseline().PECfg().Registers != 1 {
		t.Fatal("PECfg must carry the design's register count")
	}
	if SuperNPU().PECfg().Bits != 8 {
		t.Fatal("the paper's PE is 8-bit")
	}
}

// Property: every buffer geometry derived from a valid config validates.
func TestBufferConfigsValidProperty(t *testing.T) {
	f := func(wSel, chunkSel uint8) bool {
		c := BufferOpt()
		c.ArrayWidth = 16 << (wSel % 5) // 16..256
		c.OutputChunks = 1 << (chunkSel % 9)
		if c.Validate() != nil {
			return true // rejected configs are out of scope
		}
		return c.IfmapBuf().Validate() == nil &&
			c.OutputBuf().Validate() == nil &&
			c.WeightBuf().Validate() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
