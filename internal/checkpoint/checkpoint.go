// Package checkpoint is a crash-tolerant key-value snapshot store for long
// sweep runs: an append-only JSONL file where each line records one
// completed unit of work under a content-derived key (a simcache config
// fingerprint plus the fault-model key). Killing a sweep mid-run loses at
// most the in-flight points; reopening the file and re-running the sweep
// skips every checkpointed point without re-simulating it.
//
// The format is deliberately dumb: one JSON object per line, later lines
// win, a torn final line (the signature of a kill during a write) is
// ignored on load. Writes append, fsync, and never rewrite earlier records.
package checkpoint

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// record is one persisted line.
type record struct {
	Key   string          `json:"key"`
	Value json.RawMessage `json:"value"`
}

// Store is an open checkpoint file with its in-memory index.
type Store struct {
	mu   sync.Mutex
	f    *os.File
	done map[string]json.RawMessage
}

// Open opens (creating if absent) the checkpoint file at path and loads
// every intact record. A torn or corrupt line ends the load silently —
// everything before it is kept, which is exactly the at-most-one-lost-write
// guarantee an appending crash leaves behind.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	s := &Store{f: f, done: map[string]json.RawMessage{}}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var intact int64 // byte offset just past the last intact record
	for sc.Scan() {
		line := sc.Bytes()
		var r record
		if err := json.Unmarshal(line, &r); err != nil || r.Key == "" {
			break
		}
		s.done[r.Key] = r.Value
		intact += int64(len(line)) + 1
	}
	// Drop any torn tail so the next append starts on a clean line
	// boundary instead of gluing onto the partial record.
	if st, err := f.Stat(); err == nil && intact > st.Size() {
		intact = st.Size()
	}
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if _, err := f.Seek(intact, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return s, nil
}

// Get unmarshals the checkpointed value for key into v and reports whether
// the key was present.
func (s *Store) Get(key string, v any) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	raw, ok := s.done[key]
	s.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, v) == nil
}

// Put appends a record for key and fsyncs it to disk. Concurrent Puts from
// sweep workers serialise on the store's lock, so lines never interleave.
func (s *Store) Put(key string, v any) error {
	if s == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	line, err := json.Marshal(record{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.f.Write(append(line, '\n')); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	s.done[key] = raw
	return nil
}

// Len returns the number of checkpointed keys.
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.done)
}

// Close syncs and closes the underlying file, wrapping any failure so
// callers can both detect the subsystem (the "checkpoint:" prefix) and
// unwrap the cause (errors.Is(err, os.ErrClosed) after a double close).
// A dropped sync-on-close error would mean silently resuming from a file
// missing its tail, so sweeps must propagate this error, not defer it
// away. A nil store closes trivially.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return fmt.Errorf("checkpoint: sync on close: %w", err)
	}
	if err := s.f.Close(); err != nil {
		return fmt.Errorf("checkpoint: close: %w", err)
	}
	return nil
}
