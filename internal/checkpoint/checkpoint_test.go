package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

type point struct {
	Label string
	Value float64
}

func TestPutGetAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("fresh store holds %d keys", s.Len())
	}
	if err := s.Put("a", point{"A", 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", point{"B", 2.5}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var p point
	if !s2.Get("a", &p) || p != (point{"A", 1.5}) {
		t.Fatalf("lost key a: %+v", p)
	}
	if !s2.Get("b", &p) || p != (point{"B", 2.5}) {
		t.Fatalf("lost key b: %+v", p)
	}
	if s2.Get("c", &p) {
		t.Fatal("phantom key c")
	}
}

func TestTornFinalLineIsTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Put("a", point{"A", 1})
	s.Put("b", point{"B", 2})
	s.Close()

	// Simulate a kill mid-write: truncate into the middle of the last line.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	var p point
	if !s2.Get("a", &p) {
		t.Fatal("intact record a lost after torn tail")
	}
	if s2.Get("b", &p) {
		t.Fatal("torn record b resurrected")
	}
	// The store must still accept appends after a torn tail.
	if err := s2.Put("c", point{"C", 3}); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if !s3.Get("c", &p) || p.Label != "C" {
		t.Fatal("append after torn tail lost")
	}
}

func TestNilStoreIsInert(t *testing.T) {
	var s *Store
	var p point
	if s.Get("a", &p) {
		t.Fatal("nil store returned a value")
	}
	if err := s.Put("a", p); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 || s.Close() != nil {
		t.Fatal("nil store not inert")
	}
}

// TestClosedFileSurfacesWrappedErrors drives the store against a closed
// file double: once the descriptor is gone, the append path and a second
// Close must both return errors that carry the "checkpoint:" prefix and
// still unwrap to os.ErrClosed — not vanish best-effort.
func TestClosedFileSurfacesWrappedErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", point{"A", 1.5}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}

	if err := s.Put("b", point{"B", 2.5}); err == nil {
		t.Fatal("Put on a closed store reported success")
	} else {
		if !strings.HasPrefix(err.Error(), "checkpoint:") {
			t.Errorf("Put error %q lacks the checkpoint: prefix", err)
		}
		if !errors.Is(err, os.ErrClosed) {
			t.Errorf("Put error %q does not unwrap to os.ErrClosed", err)
		}
	}

	if err := s.Close(); err == nil {
		t.Fatal("second close reported success")
	} else {
		if !strings.HasPrefix(err.Error(), "checkpoint:") {
			t.Errorf("Close error %q lacks the checkpoint: prefix", err)
		}
		if !errors.Is(err, os.ErrClosed) {
			t.Errorf("Close error %q does not unwrap to os.ErrClosed", err)
		}
	}

	// The failed Put must not have been indexed: a caller that retries
	// after reopening should re-run the point, not trust a phantom entry.
	var p point
	if s.Get("b", &p) {
		t.Error("failed Put left a phantom entry in the index")
	}
}
