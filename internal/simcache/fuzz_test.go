// Native Go fuzz target for key injectivity: the memo caches rely on
// ConfigKey/NetworkKey/SimKey — and the layer-grain LayerKey/ScaleLayerKey/
// TilesKey — being collision-free: two distinct inputs sharing a
// fingerprint would silently serve one input's simulation result for the
// other. The fuzzer derives two of each key's inputs from the input bytes
// and checks keys are equal exactly when the values are. Seed corpus in
// testdata/fuzz/; run with
//
//	go test ./internal/simcache -run='^$' -fuzz=FuzzKeyInjectivity -fuzztime=30s
package simcache

import (
	"reflect"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// byteFeed deals bounded values off a fuzz input, cycling when exhausted so
// any input length yields fully populated structures.
type byteFeed struct {
	data []byte
	pos  int
}

func (f *byteFeed) next() byte {
	if len(f.data) == 0 {
		return 0
	}
	b := f.data[f.pos%len(f.data)]
	f.pos++
	return b
}

// nameAlphabet excludes the \x1f field separator: the fingerprint contract
// (documented on Fingerprint) requires that names never contain it.
const nameAlphabet = "abcXYZ 019_.-"

func (f *byteFeed) name(n int) string {
	out := make([]byte, n)
	for i := range out {
		out[i] = nameAlphabet[int(f.next())%len(nameAlphabet)]
	}
	return string(out)
}

func (f *byteFeed) intIn(lo, hi int) int {
	span := hi - lo + 1
	return lo + (int(f.next())<<8|int(f.next()))%span
}

// config derives one arch.Config from the feed. Values need not be valid
// designs — keys must be injective over the whole struct space.
func (f *byteFeed) config() arch.Config {
	tech := sfq.RSFQ
	if f.next()%2 == 1 {
		tech = sfq.ERSFQ
	}
	return arch.Config{
		Name:        f.name(int(f.next()) % 8),
		ArrayHeight: f.intIn(0, 4096), ArrayWidth: f.intIn(0, 4096),
		Registers:     f.intIn(0, 64),
		IfmapBufBytes: f.intIn(0, 1<<26), IfmapChunks: f.intIn(0, 256),
		OutputBufBytes: f.intIn(0, 1<<26), OutputChunks: f.intIn(0, 256),
		IntegratedOutput: f.next()%2 == 1,
		PsumBufBytes:     f.intIn(0, 1<<26),
		WeightBufBytes:   f.intIn(0, 1<<20),
		Tech:             tech,
		MemoryBandwidth:  float64(f.intIn(0, 1<<30)),
	}
}

// layerCoreProj derives one NPU core layer projection from the feed.
func (f *byteFeed) layerCoreProj() LayerCoreProj {
	return LayerCoreProj{
		ArrayHeight: f.intIn(0, 4096), ArrayWidth: f.intIn(0, 4096),
		Registers:      f.intIn(0, 64),
		PipelineStages: f.intIn(0, 64),
		CyclesPerByte:  float64(f.intIn(0, 1<<20)) / 64,
		Fits:           f.next()%2 == 1,
	}
}

// scaleProj derives one CMOS layer projection from the feed.
func (f *byteFeed) scaleProj() ScaleProj {
	return ScaleProj{
		ArrayHeight: f.intIn(0, 4096), ArrayWidth: f.intIn(0, 4096),
		BufferBytes:   int64(f.intIn(0, 1<<30)),
		CyclesPerByte: float64(f.intIn(0, 1<<20)) / 64,
	}
}

// shape derives one layer shape from the feed.
func (f *byteFeed) shape() workload.Shape {
	return workload.Shape{
		Kind: workload.Kind(f.next() % 4),
		H:    f.intIn(0, 512), W: f.intIn(0, 512), C: f.intIn(0, 512),
		R: f.intIn(0, 16), S: f.intIn(0, 16), M: f.intIn(0, 512),
		Stride: f.intIn(0, 8), Pad: f.intIn(0, 8),
	}
}

// network derives one workload from the feed.
func (f *byteFeed) network() workload.Network {
	layers := make([]workload.Layer, int(f.next())%4)
	for i := range layers {
		layers[i] = workload.Layer{
			Name: f.name(int(f.next()) % 6),
			Kind: workload.Kind(f.next() % 4),
			H:    f.intIn(0, 512), W: f.intIn(0, 512), C: f.intIn(0, 512),
			R: f.intIn(0, 16), S: f.intIn(0, 16), M: f.intIn(0, 512),
			Stride: f.intIn(0, 8), Pad: f.intIn(0, 8),
		}
	}
	return workload.Network{Name: f.name(int(f.next()) % 8), Layers: layers}
}

func FuzzKeyInjectivity(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte("supernpu-key-fuzz-seed"))
	f.Add([]byte{255, 254, 253, 252, 0, 0, 0, 1, 1, 1, 31, 31})
	f.Add([]byte{31, 0, 31, 0, 31})
	f.Add([]byte("layer-grain-proj-shape-batch-seed"))

	f.Fuzz(func(t *testing.T, data []byte) {
		half := len(data) / 2
		fa := &byteFeed{data: data[:half]}
		fb := &byteFeed{data: data[half:]}

		ca, cb := fa.config(), fb.config()
		ka, kb := ConfigKey(ca), ConfigKey(cb)
		if (ca == cb) != (ka == kb) {
			t.Fatalf("ConfigKey injectivity violated:\n a=%+v -> %q\n b=%+v -> %q", ca, ka, cb, kb)
		}

		na, nb := fa.network(), fb.network()
		nka, nkb := NetworkKey(na), NetworkKey(nb)
		if reflect.DeepEqual(na, nb) != (nka == nkb) {
			t.Fatalf("NetworkKey injectivity violated:\n a=%+v -> %q\n b=%+v -> %q", na, nka, nb, nkb)
		}

		// SimKey must also separate batch sizes over identical (cfg, net).
		ba, bb := fa.intIn(0, 64), fb.intIn(0, 64)
		ska := SimKey(ca, na, ba)
		skb := SimKey(cb, nb, bb)
		same := ca == cb && reflect.DeepEqual(na, nb) && ba == bb
		if same != (ska == skb) {
			t.Fatalf("SimKey injectivity violated (batch %d vs %d):\n a=%q\n b=%q", ba, bb, ska, skb)
		}

		// Layer-grain keys: (projection, shape, batch) triples must key
		// equal exactly when every component is equal.
		pa, pb := fa.layerCoreProj(), fb.layerCoreProj()
		sa, sb := fa.shape(), fb.shape()
		lka := LayerKey(pa, sa, ba)
		lkb := LayerKey(pb, sb, bb)
		if same := pa == pb && sa == sb && ba == bb; same != (lka == lkb) {
			t.Fatalf("LayerKey injectivity violated:\n a=%+v %+v b%d -> %q\n b=%+v %+v b%d -> %q",
				pa, sa, ba, lka, pb, sb, bb, lkb)
		}

		spa, spb := fa.scaleProj(), fb.scaleProj()
		slka := ScaleLayerKey(spa, sa, ba)
		slkb := ScaleLayerKey(spb, sb, bb)
		if same := spa == spb && sa == sb && ba == bb; same != (slka == slkb) {
			t.Fatalf("ScaleLayerKey injectivity violated:\n a=%q\n b=%q", slka, slkb)
		}

		tka := TilesKey(sa, pa.ArrayHeight, pa.ArrayWidth, pa.Registers)
		tkb := TilesKey(sb, pb.ArrayHeight, pb.ArrayWidth, pb.Registers)
		geomSame := pa.ArrayHeight == pb.ArrayHeight && pa.ArrayWidth == pb.ArrayWidth && pa.Registers == pb.Registers
		if same := sa == sb && geomSame; same != (tka == tkb) {
			t.Fatalf("TilesKey injectivity violated:\n a=%q\n b=%q", tka, tkb)
		}
	})
}
