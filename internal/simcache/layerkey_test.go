package simcache

// Key-injectivity tests for the layer-grain fingerprints: every field of
// the projection structs and of workload.Shape must move the key, and the
// projection builder must capture exactly what the per-layer cycle model
// reads.

import (
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/workload"
)

func baseShape() workload.Shape {
	return workload.Shape{Kind: workload.Conv, H: 14, W: 14, C: 64,
		R: 3, S: 3, M: 128, Stride: 1, Pad: 1}
}

func baseCoreProj() LayerCoreProj {
	return LayerCoreProj{ArrayHeight: 256, ArrayWidth: 256, Registers: 1,
		PipelineStages: 20, CyclesPerByte: 2.5, Fits: true}
}

func TestLayerKeyDistinguishesEveryProjField(t *testing.T) {
	mutations := []func(*LayerCoreProj){
		func(p *LayerCoreProj) { p.ArrayHeight++ },
		func(p *LayerCoreProj) { p.ArrayWidth++ },
		func(p *LayerCoreProj) { p.Registers++ },
		func(p *LayerCoreProj) { p.PipelineStages++ },
		func(p *LayerCoreProj) { p.CyclesPerByte *= 2 },
		func(p *LayerCoreProj) { p.Fits = !p.Fits },
	}
	s := baseShape()
	ref := LayerKey(baseCoreProj(), s, 4)
	for i, mutate := range mutations {
		p := baseCoreProj()
		mutate(&p)
		if LayerKey(p, s, 4) == ref {
			t.Errorf("projection mutation %d: distinct core projections share a layer key", i)
		}
	}
	if LayerKey(baseCoreProj(), s, 5) == ref {
		t.Error("distinct batches share a layer key")
	}
}

func TestLayerKeyDistinguishesEveryShapeField(t *testing.T) {
	mutations := []func(*workload.Shape){
		func(s *workload.Shape) { s.Kind++ },
		func(s *workload.Shape) { s.H++ },
		func(s *workload.Shape) { s.W++ },
		func(s *workload.Shape) { s.C++ },
		func(s *workload.Shape) { s.R++ },
		func(s *workload.Shape) { s.S++ },
		func(s *workload.Shape) { s.M++ },
		func(s *workload.Shape) { s.Stride++ },
		func(s *workload.Shape) { s.Pad++ },
	}
	p := baseCoreProj()
	ref := LayerKey(p, baseShape(), 4)
	for i, mutate := range mutations {
		s := baseShape()
		mutate(&s)
		if LayerKey(p, s, 4) == ref {
			t.Errorf("shape mutation %d: distinct shapes share a layer key", i)
		}
	}
}

func TestScaleLayerKeyDistinguishesEveryField(t *testing.T) {
	base := ScaleProj{ArrayHeight: 256, ArrayWidth: 256, BufferBytes: 24 << 20, CyclesPerByte: 7.0 / 3}
	mutations := []func(*ScaleProj){
		func(p *ScaleProj) { p.ArrayHeight++ },
		func(p *ScaleProj) { p.ArrayWidth++ },
		func(p *ScaleProj) { p.BufferBytes++ },
		func(p *ScaleProj) { p.CyclesPerByte *= 2 },
	}
	s := baseShape()
	ref := ScaleLayerKey(base, s, 4)
	for i, mutate := range mutations {
		p := base
		mutate(&p)
		if ScaleLayerKey(p, s, 4) == ref {
			t.Errorf("mutation %d: distinct CMOS projections share a layer key", i)
		}
	}
	if ScaleLayerKey(base, s, 5) == ref {
		t.Error("distinct batches share a layer key")
	}
	other := s
	other.M++
	if ScaleLayerKey(base, other, 4) == ref {
		t.Error("distinct shapes share a layer key")
	}
}

func TestTilesKeySeparatesShapeAndGeometry(t *testing.T) {
	s := baseShape()
	ref := TilesKey(s, 128, 64, 2)
	if TilesKey(s, 129, 64, 2) == ref || TilesKey(s, 128, 65, 2) == ref || TilesKey(s, 128, 64, 3) == ref {
		t.Error("distinct array geometries share a tiles key")
	}
	other := s
	other.R++
	if TilesKey(other, 128, 64, 2) == ref {
		t.Error("distinct shapes share a tiles key")
	}
}

// TestNPULayerProjTracksConfigProjection pins the builder to the fields the
// per-layer model reads: knobs outside the projection (name, weight buffer,
// logic family) must not move it, while every modeled knob must.
func TestNPULayerProjTracksConfigProjection(t *testing.T) {
	cfg := arch.SuperNPU()
	base := NPULayerProj(cfg, 2.5)

	irrelevant := cfg
	irrelevant.Name = "renamed"
	irrelevant.WeightBufBytes++
	if NPULayerProj(irrelevant, 2.5) != base {
		t.Error("projection moved on a knob the per-layer model never reads")
	}

	relevant := cfg
	relevant.IfmapChunks++
	if NPULayerProj(relevant, 2.5) == base {
		t.Error("projection ignored the ifmap division knob")
	}
	if NPULayerProj(cfg, 2.6) == base {
		t.Error("projection ignored the DRAM rate")
	}
}

// TestLayerGrainToggle pins the default-on toggle.
func TestLayerGrainToggle(t *testing.T) {
	if !LayerGrainEnabled() {
		t.Error("layer-grain caching should default to enabled")
	}
	SetLayerGrain(false)
	if LayerGrainEnabled() {
		t.Error("SetLayerGrain(false) did not take effect")
	}
	SetLayerGrain(true)
	if !LayerGrainEnabled() {
		t.Error("SetLayerGrain(true) did not take effect")
	}
}

// TestClearByName pins the single-family clear used by warm benchmarks.
func TestClearByName(t *testing.T) {
	c := New[int]()
	Register("layerkey-test", c)
	if _, err := c.GetOrCompute("k", func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if c.Len() != 1 {
		t.Fatalf("cache has %d entries, want 1", c.Len())
	}
	if !Clear("layerkey-test") {
		t.Fatal("Clear did not find the registered cache")
	}
	if c.Len() != 0 {
		t.Error("Clear left entries behind")
	}
	if Clear("no-such-cache") {
		t.Error("Clear invented an unregistered cache")
	}
}
