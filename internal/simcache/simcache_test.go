package simcache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/guard"
	"supernpu/internal/workload"
)

func TestConfigKeyDistinguishesEveryField(t *testing.T) {
	base := arch.SuperNPU()
	mutations := []func(*arch.Config){
		func(c *arch.Config) { c.Name = "other" },
		func(c *arch.Config) { c.ArrayHeight++ },
		func(c *arch.Config) { c.ArrayWidth++ },
		func(c *arch.Config) { c.Registers++ },
		func(c *arch.Config) { c.IfmapBufBytes++ },
		func(c *arch.Config) { c.IfmapChunks++ },
		func(c *arch.Config) { c.OutputBufBytes++ },
		func(c *arch.Config) { c.OutputChunks++ },
		func(c *arch.Config) { c.IntegratedOutput = !c.IntegratedOutput },
		func(c *arch.Config) { c.PsumBufBytes++ },
		func(c *arch.Config) { c.WeightBufBytes++ },
		func(c *arch.Config) { c.Tech++ },
		func(c *arch.Config) { c.MemoryBandwidth *= 2 },
	}
	ref := ConfigKey(base)
	for i, mutate := range mutations {
		c := base
		mutate(&c)
		if ConfigKey(c) == ref {
			t.Errorf("mutation %d: distinct configs share a key", i)
		}
	}
}

func TestNetworkKeyDistinguishesLayersNotJustNames(t *testing.T) {
	a := workload.Network{Name: "net", Layers: []workload.Layer{
		{Name: "l", Kind: workload.Conv, H: 8, W: 8, C: 3, R: 3, S: 3, M: 16, Stride: 1, Pad: 1},
	}}
	b := a
	b.Layers = []workload.Layer{a.Layers[0]}
	b.Layers[0].M = 32
	if NetworkKey(a) == NetworkKey(b) {
		t.Fatal("networks with the same name but different layers share a key")
	}
	if NetworkKey(a) != NetworkKey(workload.Network{Name: a.Name, Layers: a.Layers}) {
		t.Fatal("identical networks produce different keys")
	}
}

func TestSimKeySeparatesBatchFromShape(t *testing.T) {
	cfg := arch.Baseline()
	net, err := workload.ByName("AlexNet")
	if err != nil {
		t.Fatal(err)
	}
	if SimKey(cfg, net, 1) == SimKey(cfg, net, 2) {
		t.Fatal("batches 1 and 2 share a key")
	}
	other := cfg
	other.Registers++
	if SimKey(cfg, net, 1) == SimKey(other, net, 1) {
		t.Fatal("distinct configs share a simulation key")
	}
}

func TestGetOrComputeMemoises(t *testing.T) {
	c := New[int]()
	calls := 0
	for i := 0; i < 5; i++ {
		v, err := c.GetOrCompute("k", func() (int, error) { calls++; return 42, nil })
		if err != nil || v != 42 {
			t.Fatalf("got (%d, %v)", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	hits, misses := c.Counters()
	if hits != 4 || misses != 1 {
		t.Fatalf("counters = (%d hits, %d misses), want (4, 1)", hits, misses)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
}

func TestGetOrComputeMemoisesErrors(t *testing.T) {
	c := New[int]()
	want := errors.New("deterministic failure")
	calls := 0
	for i := 0; i < 3; i++ {
		if _, err := c.GetOrCompute("bad", func() (int, error) { calls++; return 0, want }); !errors.Is(err, want) {
			t.Fatalf("got %v, want %v", err, want)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if _, ok := c.Get("bad"); ok {
		t.Fatal("Get returned ok for an errored entry")
	}
}

func TestConcurrentGetOrComputeRunsOnce(t *testing.T) {
	c := New[int]()
	var calls atomic.Int64
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := c.GetOrCompute("shared", func() (int, error) {
				calls.Add(1)
				return 7, nil
			})
			if err != nil || v != 7 {
				t.Errorf("got (%d, %v)", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under concurrency, want 1", n)
	}
	hits, misses := c.Counters()
	if hits+misses != 32 || misses != 1 {
		t.Fatalf("counters = (%d hits, %d misses), want 31+1", hits, misses)
	}
}

func TestConcurrentDistinctKeys(t *testing.T) {
	c := New[int]()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := Fingerprint("key", i)
				v, err := c.GetOrCompute(key, func() (int, error) { return i, nil })
				if err != nil || v != i {
					t.Errorf("key %d: got (%d, %v)", i, v, err)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() != 50 {
		t.Fatalf("Len = %d, want 50", c.Len())
	}
}

func TestClearResetsEntriesAndCounters(t *testing.T) {
	c := New[string]()
	c.GetOrCompute("a", func() (string, error) { return "x", nil })
	c.GetOrCompute("a", func() (string, error) { return "x", nil })
	c.Clear()
	if c.Len() != 0 {
		t.Fatalf("Len after Clear = %d", c.Len())
	}
	if h, m := c.Counters(); h != 0 || m != 0 {
		t.Fatalf("counters after Clear = (%d, %d)", h, m)
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("entry survived Clear")
	}
}

func TestRegistrySnapshotAndClearAll(t *testing.T) {
	c := New[int]()
	Register("test-cache", c)
	c.GetOrCompute("k", func() (int, error) { return 1, nil })
	c.GetOrCompute("k", func() (int, error) { return 1, nil })

	var found *Stats
	for _, s := range Snapshot() {
		if s.Name == "test-cache" {
			found = &s
			break
		}
	}
	if found == nil {
		t.Fatal("registered cache missing from snapshot")
	}
	if found.Hits != 1 || found.Misses != 1 || found.Entries != 1 {
		t.Fatalf("snapshot = %+v, want 1 hit, 1 miss, 1 entry", found)
	}
	if got := found.HitRate(); got != 0.5 {
		t.Fatalf("HitRate = %g, want 0.5", got)
	}

	ClearAll()
	if c.Len() != 0 {
		t.Fatal("ClearAll did not clear the registered cache")
	}
}

// Transient failures (cancellations, deadline expiries, budget exhaustion)
// are properties of the attempt, not the inputs: memoising one would poison
// the key for every later caller. The entry is evicted instead, so a retry
// recomputes and can cache the real result.
func TestTransientErrorsAreNotMemoised(t *testing.T) {
	c := New[int]()
	calls := 0
	canceled := fmt.Errorf("sweep: %w", guard.ErrCanceled)
	_, err := c.GetOrCompute("k", func() (int, error) { calls++; return 0, canceled })
	if !errors.Is(err, guard.ErrCanceled) {
		t.Fatalf("first attempt err = %v", err)
	}
	if got := c.Len(); got != 0 {
		t.Fatalf("canceled computation left %d entries in the cache", got)
	}
	v, err := c.GetOrCompute("k", func() (int, error) { calls++; return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("retry = %d, %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times, want 2 (no memoised cancellation)", calls)
	}
	// The successful retry is memoised as usual.
	v, err = c.GetOrCompute("k", func() (int, error) { calls++; return -1, nil })
	if err != nil || v != 42 || calls != 2 {
		t.Fatalf("after retry: v=%d calls=%d err=%v", v, calls, err)
	}
}

// Deterministic errors keep being memoised: divergence is a property of the
// inputs and recomputing it would burn the same steps for the same answer.
func TestNumericErrorsStayMemoised(t *testing.T) {
	c := New[int]()
	calls := 0
	diverged := fmt.Errorf("transient: %w", guard.ErrDiverged)
	for i := 0; i < 3; i++ {
		_, err := c.GetOrCompute("k", func() (int, error) { calls++; return 0, diverged })
		if !errors.Is(err, guard.ErrDiverged) {
			t.Fatalf("attempt %d err = %v", i, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
}
