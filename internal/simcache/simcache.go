// Package simcache is the evaluation pipeline's memoisation layer: a
// thread-safe, content-keyed cache from deterministic model inputs to their
// results.
//
// The simulators and estimators of this repository are pure functions of
// their configuration structs, yet the exhibits re-derive identical results
// constantly — every sweep point of Figs. 20–22 re-simulates the Baseline
// reference, every Table III row re-evaluates the TPU, and the RCSJ gate
// extraction behind Fig. 7 is a fixed transient. Each such producer keeps a
// package-level Cache here, keyed by a full-fidelity fingerprint of its
// inputs (no lossy hashing, so distinct inputs can never share an entry),
// and registers it under a name so callers can inspect hit/miss counters or
// clear everything for cold-start benchmarks.
//
// Cached values are shared between callers and across goroutines: treat
// anything returned through a Cache as immutable.
package simcache

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"supernpu/internal/arch"
	"supernpu/internal/guard"
	"supernpu/internal/obs"
	"supernpu/internal/workload"
)

// sep joins fingerprint parts; an ASCII unit separator never appears in
// config or layer names, so composite keys cannot collide across parts.
const sep = "\x1f"

// Fingerprint renders each part with %+v (full field names and values for
// structs) and joins them. Two inputs differing in any field render to
// different fingerprints, which makes key collisions impossible by
// construction rather than improbable by hashing.
func Fingerprint(parts ...any) string {
	var b strings.Builder
	for i, p := range parts {
		if i > 0 {
			b.WriteString(sep)
		}
		fmt.Fprintf(&b, "%+v", p)
	}
	return b.String()
}

// writeInt appends one integer field to a key under construction.
func writeInt(b *strings.Builder, v int64) {
	b.WriteString(sep)
	b.WriteString(strconv.FormatInt(v, 10))
}

// writeBool appends one boolean field.
func writeBool(b *strings.Builder, v bool) {
	if v {
		b.WriteString(sep + "t")
	} else {
		b.WriteString(sep + "f")
	}
}

// writeFloat appends one float64 field.
func writeFloat(b *strings.Builder, v float64) {
	b.WriteString(sep)
	b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
}

// appendConfigKey serialises every field of an SFQ NPU configuration. Keys
// sit on the memoised simulation hot path, so the fields are written by
// hand rather than through reflection; keep this in step with arch.Config
// (TestConfigKeyDistinguishesEveryField covers each field).
func appendConfigKey(b *strings.Builder, cfg arch.Config) {
	b.WriteString(cfg.Name)
	writeInt(b, int64(cfg.ArrayHeight))
	writeInt(b, int64(cfg.ArrayWidth))
	writeInt(b, int64(cfg.Registers))
	writeInt(b, int64(cfg.IfmapBufBytes))
	writeInt(b, int64(cfg.IfmapChunks))
	writeInt(b, int64(cfg.OutputBufBytes))
	writeInt(b, int64(cfg.OutputChunks))
	writeBool(b, cfg.IntegratedOutput)
	writeInt(b, int64(cfg.PsumBufBytes))
	writeInt(b, int64(cfg.WeightBufBytes))
	writeInt(b, int64(cfg.Tech))
	writeFloat(b, cfg.MemoryBandwidth)
}

// ConfigKey fingerprints an SFQ NPU configuration.
func ConfigKey(cfg arch.Config) string {
	var b strings.Builder
	b.Grow(96)
	appendConfigKey(&b, cfg)
	return b.String()
}

// appendNetworkKey serialises a workload, layer shapes included, so two
// custom networks sharing a display name still key separately. Keep in step
// with workload.Layer.
func appendNetworkKey(b *strings.Builder, net workload.Network) {
	b.WriteString(net.Name)
	for _, l := range net.Layers {
		b.WriteString(sep)
		b.WriteString(l.Name)
		writeInt(b, int64(l.Kind))
		writeInt(b, int64(l.H))
		writeInt(b, int64(l.W))
		writeInt(b, int64(l.C))
		writeInt(b, int64(l.R))
		writeInt(b, int64(l.S))
		writeInt(b, int64(l.M))
		writeInt(b, int64(l.Stride))
		writeInt(b, int64(l.Pad))
	}
}

// NetworkKey fingerprints a workload.
func NetworkKey(net workload.Network) string {
	var b strings.Builder
	b.Grow(64 + 48*len(net.Layers))
	appendNetworkKey(&b, net)
	return b.String()
}

// SimKey fingerprints one (configuration, network, batch) simulation.
func SimKey(cfg arch.Config, net workload.Network, batch int) string {
	var b strings.Builder
	b.Grow(160 + 48*len(net.Layers))
	appendConfigKey(&b, cfg)
	b.WriteString(sep)
	appendNetworkKey(&b, net)
	writeInt(&b, int64(batch))
	return b.String()
}

// --- layer-grain keys ---
//
// The whole-simulation keys above only hit on exact (config, network,
// batch) repeats. The layer-grain families below key on the *projection*
// of the configuration that the per-layer cycle models actually read, plus
// the layer's name-free shape — so sweep points that vary an irrelevant
// knob (display name, weight buffer, logic family, or frequency and
// bandwidth at a fixed ratio) and repeated shapes within one network
// (ResNet-50's residual blocks) all share one tile walk.

// LayerProj is the projection of arch.Config (plus the derived
// cycles-per-byte DRAM rate) that npusim's per-layer model reads.
// Everything else about a design — its name, weight-buffer capacity,
// logic family, absolute frequency and bandwidth — either never enters
// the per-layer arithmetic or enters only through CyclesPerByte.
// npusim.simulateLayer takes this projection instead of the full config,
// so key completeness is true by construction. The cache itself keys on
// the further-reduced LayerCoreProj: the buffer fields here only reach
// the walk through per-mapping unit costs and the batch-fit bit, both
// factored out of the cached core.
type LayerProj struct {
	ArrayHeight, ArrayWidth int
	Registers               int
	// PipelineStages is the PE pipeline depth (array fill/drain cost).
	PipelineStages int
	// Shift-register buffer geometry: recirculation, inter-buffer psum
	// movement, and the on-chip batch-fit decision.
	IfmapBufBytes, IfmapChunks   int
	OutputBufBytes, OutputChunks int
	IntegratedOutput             bool
	PsumBufBytes                 int
	// CyclesPerByte converts DRAM bytes into NPU cycles (frequency over
	// bandwidth).
	CyclesPerByte float64
}

// NPULayerProj projects an SFQ NPU configuration down to the fields the
// per-layer cycle model reads, at the given cycles-per-byte DRAM rate.
func NPULayerProj(cfg arch.Config, cpb float64) LayerProj {
	return LayerProj{
		ArrayHeight: cfg.ArrayHeight, ArrayWidth: cfg.ArrayWidth,
		Registers:      cfg.Registers,
		PipelineStages: cfg.PECfg().PipelineStages(),
		IfmapBufBytes:  cfg.IfmapBufBytes, IfmapChunks: cfg.IfmapChunks,
		OutputBufBytes: cfg.OutputBufBytes, OutputChunks: cfg.OutputChunks,
		IntegratedOutput: cfg.IntegratedOutput,
		PsumBufBytes:     cfg.PsumBufBytes,
		CyclesPerByte:    cpb,
	}
}

// ScaleProj is the corresponding projection of the CMOS reference
// simulator's configuration: array dims, the unified buffer capacity
// (spill decisions) and the DRAM rate. scalesim constructs it inline —
// this package cannot import scalesim.
type ScaleProj struct {
	ArrayHeight, ArrayWidth int
	BufferBytes             int64
	CyclesPerByte           float64
}

// appendShapeKey serialises every field of a layer shape. Keep in step
// with workload.Shape.
func appendShapeKey(b *strings.Builder, s workload.Shape) {
	writeInt(b, int64(s.Kind))
	writeInt(b, int64(s.H))
	writeInt(b, int64(s.W))
	writeInt(b, int64(s.C))
	writeInt(b, int64(s.R))
	writeInt(b, int64(s.S))
	writeInt(b, int64(s.M))
	writeInt(b, int64(s.Stride))
	writeInt(b, int64(s.Pad))
}

// LayerCoreProj is the reduced projection that keys npusim's layer-grain
// cache. The shift-register unit costs LayerProj's buffer fields induce —
// ifmap recirculation and psum inter-buffer movement — are constant per
// weight mapping, so the cached tile walk excludes them and the caller
// applies them as exact integer multiples of the tile counts afterwards.
// The buffers' only other influence, the on-chip batch-fit decision, is
// resolved into the Fits bit before keying. Sweep points that vary only
// buffer division (Fig. 20) or capacity changes that do not flip a fit
// decision therefore share one cached walk per (shape, batch).
type LayerCoreProj struct {
	ArrayHeight, ArrayWidth int
	Registers               int
	// PipelineStages is the PE pipeline depth (array fill/drain cost).
	PipelineStages int
	// CyclesPerByte converts DRAM bytes into NPU cycles (frequency over
	// bandwidth).
	CyclesPerByte float64
	// Fits is the layer's resolved batch-fit decision: whether the
	// batch-B activations stay on-chip (false adds per-mapping spill
	// traffic inside the walk).
	Fits bool
}

// LayerKey fingerprints one (core projection, layer shape, batch) tile
// walk for the npusim.layer cache.
func LayerKey(p LayerCoreProj, s workload.Shape, batch int) string {
	var b strings.Builder
	b.Grow(112)
	writeInt(&b, int64(p.ArrayHeight))
	writeInt(&b, int64(p.ArrayWidth))
	writeInt(&b, int64(p.Registers))
	writeInt(&b, int64(p.PipelineStages))
	writeFloat(&b, p.CyclesPerByte)
	writeBool(&b, p.Fits)
	appendShapeKey(&b, s)
	writeInt(&b, int64(batch))
	return b.String()
}

// ScaleLayerKey fingerprints one (CMOS projection, layer shape, batch)
// layer simulation for the scalesim.layer cache.
func ScaleLayerKey(p ScaleProj, s workload.Shape, batch int) string {
	var b strings.Builder
	b.Grow(112)
	writeInt(&b, int64(p.ArrayHeight))
	writeInt(&b, int64(p.ArrayWidth))
	writeInt(&b, p.BufferBytes)
	writeFloat(&b, p.CyclesPerByte)
	appendShapeKey(&b, s)
	writeInt(&b, int64(batch))
	return b.String()
}

// TilesKey fingerprints one tile-plan enumeration: the layer shape plus
// the array geometry mapper.Tiles reads.
func TilesKey(s workload.Shape, height, width, registers int) string {
	var b strings.Builder
	b.Grow(96)
	appendShapeKey(&b, s)
	writeInt(&b, int64(height))
	writeInt(&b, int64(width))
	writeInt(&b, int64(registers))
	return b.String()
}

// layerGrain gates the layer-grain families (npusim.layer, scalesim.layer,
// mapper.tiles) and npusim's within-network shape dedup. On by default;
// the differential tests and the before/after benchmarks turn it off to
// prove byte-identity and to measure the win.
var layerGrain atomic.Bool

func init() { layerGrain.Store(true) }

// SetLayerGrain toggles layer-grain memoisation process-wide. Results are
// byte-identical either way (TestLayerGrainByteIdentity); off disables the
// reuse, not the model.
func SetLayerGrain(on bool) { layerGrain.Store(on) }

// LayerGrainEnabled reports whether layer-grain memoisation is on.
func LayerGrainEnabled() bool { return layerGrain.Load() }

// entry is one memoised computation; once guarantees the compute function
// runs at most once per key even under concurrent first access.
type entry[V any] struct {
	once sync.Once
	val  V
	err  error
}

// Cache is a thread-safe memo map from fingerprint keys to values.
// The zero value is not usable; construct with New.
type Cache[V any] struct {
	mu       sync.Mutex
	m        map[string]*entry[V]
	hits     *obs.Counter
	miss     *obs.Counter
	inflight atomic.Int64
}

// New returns an empty cache. Its hit/miss counters are obs instruments
// from birth; Register later exposes them on the metrics registry under
// the cache's name.
func New[V any]() *Cache[V] {
	return &Cache[V]{
		m:    make(map[string]*entry[V]),
		hits: obs.NewCounter(),
		miss: obs.NewCounter(),
	}
}

// GetOrCompute returns the cached value for key, computing and storing it on
// first access. Concurrent callers of the same key share one computation;
// deterministic errors are memoised like values. Transient errors
// (guard.IsTransient: cancellations, deadline expiries, budget exhaustion)
// describe the attempt, not the inputs, so the entry is evicted instead —
// a canceled request must not poison the key for every later caller.
// Callers coalesced onto an evicted computation still receive its transient
// error for this attempt; their retry starts a fresh computation.
func (c *Cache[V]) GetOrCompute(key string, compute func() (V, error)) (V, error) {
	c.mu.Lock()
	e, ok := c.m[key]
	if !ok {
		e = &entry[V]{}
		c.m[key] = e
		c.miss.Inc()
	} else {
		c.hits.Inc()
	}
	c.mu.Unlock()
	e.once.Do(func() {
		c.inflight.Add(1)
		defer c.inflight.Add(-1)
		e.val, e.err = compute()
		if guard.IsTransient(e.err) {
			c.mu.Lock()
			if c.m[key] == e {
				delete(c.m, key)
			}
			c.mu.Unlock()
		}
	})
	return e.val, e.err
}

// InFlight returns the number of computations currently running in this
// cache: first-access misses whose compute function has not returned yet.
// Duplicate concurrent requests coalesce onto one in-flight computation, so
// this gauge counts distinct work, not waiting callers.
func (c *Cache[V]) InFlight() int64 { return c.inflight.Load() }

// Get returns the cached value for key, if a completed computation exists.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	e, ok := c.m[key]
	c.mu.Unlock()
	if !ok {
		var zero V
		return zero, false
	}
	e.once.Do(func() {}) // wait for an in-flight computation
	if e.err != nil {
		var zero V
		return zero, false
	}
	return e.val, true
}

// Len returns the number of entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Clear drops every entry and resets the hit/miss counters.
func (c *Cache[V]) Clear() {
	c.mu.Lock()
	c.m = make(map[string]*entry[V])
	c.mu.Unlock()
	c.hits.Reset()
	c.miss.Reset()
}

// Counters returns the cumulative hit and miss counts since the last Clear.
func (c *Cache[V]) Counters() (hits, misses int64) {
	return c.hits.Value(), c.miss.Value()
}

// Stats is one registered cache's counters snapshot.
type Stats struct {
	Name    string
	Hits    int64
	Misses  int64
	Entries int
	// InFlight is the number of computations running at snapshot time.
	InFlight int64
}

// HitRate is hits over total lookups (0 when never accessed).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// metered is the registry's view of a cache, independent of its value type.
type metered interface {
	Counters() (hits, misses int64)
	Len() int
	Clear()
	InFlight() int64
}

var (
	regMu    sync.Mutex
	registry = map[string]metered{}
)

// Register adds a named cache to the global registry, replacing any
// previous cache of the same name, and publishes its counters on the
// metrics registry as the supernpu_cache_* family with a cache=name
// label. Producers call it from package init.
func Register(name string, c interface {
	Counters() (hits, misses int64)
	Len() int
	Clear()
	InFlight() int64
}) {
	regMu.Lock()
	registry[name] = c
	regMu.Unlock()
	lbl := obs.L("cache", name)
	obs.Default.CounterFunc("supernpu_cache_hits_total", "memo cache lookups served from a completed entry", func() float64 {
		h, _ := c.Counters()
		return float64(h)
	}, lbl)
	obs.Default.CounterFunc("supernpu_cache_misses_total", "memo cache lookups that started a computation", func() float64 {
		_, m := c.Counters()
		return float64(m)
	}, lbl)
	obs.Default.GaugeFunc("supernpu_cache_entries", "memoised entries resident in the cache", func() float64 {
		return float64(c.Len())
	}, lbl)
	obs.Default.GaugeFunc("supernpu_cache_inflight", "distinct computations currently running", func() float64 {
		return float64(c.InFlight())
	}, lbl)
}

// Snapshot returns every registered cache's counters, sorted by name.
func Snapshot() []Stats {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Stats, 0, len(registry))
	for name, c := range registry {
		h, m := c.Counters()
		out = append(out, Stats{Name: name, Hits: h, Misses: m, Entries: c.Len(), InFlight: c.InFlight()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Clear clears the one registered cache with the given name, reporting
// whether such a cache exists. Warm benchmarks use it to cool a single
// family (the whole-simulation caches) while keeping the layer-grain
// entries hot.
func Clear(name string) bool {
	regMu.Lock()
	c, ok := registry[name]
	regMu.Unlock()
	if ok {
		c.Clear()
	}
	return ok
}

// ClearAll clears every registered cache (cold-start benchmarks).
func ClearAll() {
	regMu.Lock()
	defer regMu.Unlock()
	for _, c := range registry {
		c.Clear()
	}
}

// TotalInFlight sums the in-flight computation gauges of every registered
// cache: the number of distinct simulations/estimations running right now.
// The evaluation service exports it as a load gauge.
func TotalInFlight() int64 {
	regMu.Lock()
	defer regMu.Unlock()
	var n int64
	for _, c := range registry {
		n += c.InFlight()
	}
	return n
}
