// Package pe models the SuperNPU processing element (Section III-B): an
// 8-bit gate-level-pipelined multiply-accumulate datapath with weight
// registers, in both candidate dataflows. The weight-stationary PE has no
// feedback loop and runs under skewed concurrent-flow clocking at the NPU
// clock (≈52.6 GHz); the output-stationary PE's accumulator loop forces
// counter-flow clocking and roughly halves the frequency (Fig. 7), which is
// why the paper adopts weight-stationary.
package pe

import (
	"fmt"

	"supernpu/internal/clocking"
	"supernpu/internal/sfq"
)

// Dataflow selects which operand stays resident in the PE (Fig. 6).
type Dataflow int

const (
	// WeightStationary holds weights in NDRO registers; ifmap streams in,
	// partial sums flow through. Feed-forward only.
	WeightStationary Dataflow = iota
	// OutputStationary accumulates the output in place: the adder and its
	// register form a feedback loop.
	OutputStationary
	// InputStationary holds the ifmap pixel; hardware structure is the
	// same as WeightStationary with the operand roles swapped.
	InputStationary
)

// String implements fmt.Stringer.
func (d Dataflow) String() string {
	switch d {
	case WeightStationary:
		return "weight-stationary"
	case OutputStationary:
		return "output-stationary"
	case InputStationary:
		return "input-stationary"
	default:
		return fmt.Sprintf("Dataflow(%d)", int(d))
	}
}

// HasFeedback reports whether the dataflow requires a feedback loop in the
// PE datapath (the accumulate-in-place loop of Fig. 6(b)).
func (d Dataflow) HasFeedback() bool { return d == OutputStationary }

// Config describes one PE instance.
type Config struct {
	// Bits is the operand width (the paper's PE is 8-bit).
	Bits int
	// AccBits is the partial-sum accumulator width.
	AccBits int
	// Registers is the number of weight registers per PE (SuperNPU: 8).
	Registers int
	// Dataflow selects the resident operand.
	Dataflow Dataflow
}

// Default8Bit is the paper's PE: 8-bit operands, 24-bit partial sums,
// weight-stationary.
func Default8Bit(registers int) Config {
	return Config{Bits: 8, AccBits: 24, Registers: registers, Dataflow: WeightStationary}
}

// PipelineStages returns the gate-level pipeline depth of the PE. The
// paper's 8-bit PE has 15 stages (Section III-C): the multiplier reduction
// tree contributes ~2·log2(bits) stages, the accumulator and forwarding
// latches the rest.
func (c Config) PipelineStages() int {
	stages := 0
	for n := c.Bits; n > 1; n = (n + 1) / 2 {
		stages += 2 // one carry-save level + its rebalancing level
	}
	return stages + 9 // operand intake, accumulate, psum merge, forwarding
}

// Inventory returns the PE's cell multiset: the 8×8 AND partial-product
// array, the carry-save reduction and accumulation adders, NDRO weight
// registers, the path-balancing DFFs that gate-level pipelining demands
// (every live signal is re-latched every stage — the dominant cell count in
// real bit-parallel RSFQ multipliers), and per-gate clock splitters and
// interconnect JTLs.
func (c Config) Inventory() sfq.Inventory {
	inv := sfq.Inventory{}
	b, a := c.Bits, c.AccBits

	inv.AddGate(sfq.AND, b*b)            // partial-product generation
	inv.AddGate(sfq.FA, b*b-b)           // carry-save reduction array
	inv.AddGate(sfq.FA, a)               // partial-sum accumulation
	inv.AddGate(sfq.NDRO, c.Registers*b) // resident weight registers
	if c.Registers > 1 {
		// Register-select steering for multi-kernel execution.
		inv.AddGate(sfq.MUXCell, c.Registers*b/2)
	}
	if c.Dataflow.HasFeedback() {
		// The OS accumulate loop needs a result register and merge.
		inv.AddGate(sfq.DFF, a)
		inv.AddGate(sfq.Merger, a)
	}

	// Path balancing: live signals × stages. Live width ≈ three quarters
	// of the partial-product matrix plus both operand buses and the psum.
	live := (b*b*3)/4 + 3*b + a
	inv.AddGate(sfq.DFF, live*c.PipelineStages())

	// Clock distribution (one splitter per clocked gate) and two
	// interconnect JTL segments per cell.
	clocked := inv[sfq.AND] + inv[sfq.FA] + inv[sfq.NDRO] + inv[sfq.DFF] + inv[sfq.MUXCell]
	inv.AddGate(sfq.Splitter, clocked)
	inv.AddGate(sfq.JTL, 2*clocked)
	return inv
}

// CriticalPairs returns the gate pairs that bound the PE's clock frequency.
// The binding pair of the weight-stationary MAC is a full adder fed through
// a reconvergent fan-in (splitter, two confluence buffers and a JTL) whose
// arrival mismatch clock skewing cannot remove; it sets the ~52.6 GHz NPU
// clock. The output-stationary PE adds the accumulator feedback pair.
func (c Config) CriticalPairs(lib *sfq.Library) []clocking.Pair {
	fa := lib.Gate(sfq.FA)
	and := lib.Gate(sfq.AND)
	ndro := lib.Gate(sfq.NDRO)
	spl := lib.Gate(sfq.Splitter)
	cb := lib.Gate(sfq.Merger)
	jtl := lib.Gate(sfq.JTL)

	pairs := []clocking.Pair{
		// Weight register → partial-product AND.
		{Src: ndro, Dst: and, MismatchWire: []sfq.Gate{spl}},
		// AND → first reduction FA.
		{Src: and, Dst: fa, MismatchWire: []sfq.Gate{spl, jtl}},
		// Reduction FA → FA through the reconvergent carry/sum merge:
		// the frequency-binding pair.
		{Src: fa, Dst: fa, MismatchWire: []sfq.Gate{spl, cb, cb, jtl}},
	}
	if c.Dataflow.HasFeedback() {
		// Accumulator output looping back to the adder input.
		pairs = append(pairs, clocking.Pair{Src: fa, Dst: fa, DataWire: []sfq.Gate{jtl, jtl}})
	}
	return pairs
}

// Frequency returns the PE's maximum clock frequency under the fastest
// clocking scheme its dataflow admits.
func (c Config) Frequency(lib *sfq.Library) float64 {
	scheme := clocking.LoopScheme(c.Dataflow.HasFeedback())
	return clocking.PipelineFrequency(c.CriticalPairs(lib), scheme)
}

// MACEnergy returns the dynamic energy of one multiply-accumulate: every
// logic cell of the datapath switches with ~40% activity plus the balancing
// latches that re-time it.
func (c Config) MACEnergy(lib *sfq.Library) float64 {
	const activity = 0.4
	return c.Inventory().AccessEnergy(lib) * activity
}

// MAC is the functional model of the PE datapath used by the cycle-stepped
// systolic array: it computes what the hardware computes, with the weight
// resident in one of the PE's registers.
type MAC struct {
	cfg     Config
	weights []int8
}

// NewMAC returns a functional PE with all weight registers cleared.
func NewMAC(cfg Config) *MAC {
	return &MAC{cfg: cfg, weights: make([]int8, cfg.Registers)}
}

// LoadWeight stores w into register reg.
func (m *MAC) LoadWeight(reg int, w int8) {
	m.weights[reg] = w
}

// Weight returns the resident weight in register reg.
func (m *MAC) Weight(reg int) int8 { return m.weights[reg] }

// Step computes one weight-stationary MAC: psumIn + weight[reg]·x.
// Saturation is not modelled; the 24-bit accumulator of the real datapath
// never overflows for the layer sizes the NPU supports, which the systolic
// tests assert.
func (m *MAC) Step(reg int, x int8, psumIn int32) int32 {
	return psumIn + int32(m.weights[reg])*int32(x)
}
