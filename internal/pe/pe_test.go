package pe

import (
	"math"
	"testing"
	"testing/quick"

	"supernpu/internal/sfq"
)

func lib() *sfq.Library { return sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ) }

// The paper's 8-bit PE has 15 pipeline stages (Section III-C).
func TestPipelineStages(t *testing.T) {
	if got := Default8Bit(1).PipelineStages(); got != 15 {
		t.Fatalf("8-bit PE pipeline stages = %d, want 15", got)
	}
}

// The weight-stationary PE must hit the paper's ~52.6 GHz NPU clock.
func TestWSFrequency(t *testing.T) {
	f := Default8Bit(1).Frequency(lib()) / sfq.GHz
	if math.Abs(f-52.6) > 1.0 {
		t.Fatalf("WS PE frequency = %.2f GHz, want ~52.6", f)
	}
}

// Fig. 6/7: the OS PE's feedback loop forces counter-flow clocking and
// roughly halves the clock frequency — the reason the paper picks WS.
func TestOSFeedbackPenalty(t *testing.T) {
	l := lib()
	ws := Default8Bit(1)
	os := ws
	os.Dataflow = OutputStationary
	fw, fo := ws.Frequency(l), os.Frequency(l)
	if fo >= fw {
		t.Fatalf("OS (%.1f GHz) must be slower than WS (%.1f GHz)", fo/sfq.GHz, fw/sfq.GHz)
	}
	ratio := fw / fo
	if ratio < 1.5 || ratio > 3.0 {
		t.Fatalf("feedback penalty ratio = %.2f, want roughly 2× (1.5..3)", ratio)
	}
}

func TestInputStationaryMatchesWSStructure(t *testing.T) {
	// IS has "almost the same hardware structure as the PE with WS"
	// (Section III-B): same feedback-free clocking, same frequency.
	l := lib()
	ws, is := Default8Bit(1), Default8Bit(1)
	is.Dataflow = InputStationary
	if ws.Frequency(l) != is.Frequency(l) {
		t.Fatal("IS and WS PEs must share the same frequency model")
	}
	if ws.Dataflow.HasFeedback() || is.Dataflow.HasFeedback() {
		t.Fatal("WS/IS must be feedback-free")
	}
	if !OutputStationary.HasFeedback() {
		t.Fatal("OS must have feedback")
	}
}

// The PE's junction count must land in the regime of real bit-parallel RSFQ
// MAC layouts (tens of thousands of JJs; the fabricated 4-bit MAC of
// Fig. 12(a) fills several mm²).
func TestPEJJBudget(t *testing.T) {
	jj := Default8Bit(1).Inventory().JJs(lib())
	if jj < 15000 || jj > 40000 {
		t.Fatalf("8-bit PE JJ count = %d, want 15k..40k", jj)
	}
}

func TestRegistersGrowInventory(t *testing.T) {
	l := lib()
	one := Default8Bit(1).Inventory()
	eight := Default8Bit(8).Inventory()
	if eight[sfq.NDRO] != 8*one[sfq.NDRO] {
		t.Fatalf("NDRO bits must scale with registers: %d vs %d", eight[sfq.NDRO], one[sfq.NDRO])
	}
	if eight.JJs(l) <= one.JJs(l) {
		t.Fatal("more registers must cost more junctions")
	}
	// But registers are cheap relative to the MAC: SuperNPU's 8 registers
	// add only a few percent of PE area (Table I: 298 → 299 mm²).
	growth := float64(eight.JJs(l))/float64(one.JJs(l)) - 1
	if growth > 0.10 {
		t.Fatalf("8 registers grow the PE by %.1f%%, want < 10%%", growth*100)
	}
}

func TestMACEnergyPositiveAndERSFQDoubled(t *testing.T) {
	r := Default8Bit(1).MACEnergy(sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ))
	e := Default8Bit(1).MACEnergy(sfq.NewLibrary(sfq.AIST10(), sfq.ERSFQ))
	if r <= 0 {
		t.Fatal("MAC energy must be positive")
	}
	if math.Abs(e-2*r)/r > 1e-9 {
		t.Fatalf("ERSFQ MAC energy %.3g must be 2× RSFQ %.3g", e, r)
	}
}

func TestDataflowString(t *testing.T) {
	for d, want := range map[Dataflow]string{
		WeightStationary: "weight-stationary",
		OutputStationary: "output-stationary",
		InputStationary:  "input-stationary",
		Dataflow(9):      "Dataflow(9)",
	} {
		if d.String() != want {
			t.Errorf("String() = %q, want %q", d.String(), want)
		}
	}
}

func TestMACFunctional(t *testing.T) {
	m := NewMAC(Default8Bit(4))
	m.LoadWeight(0, 3)
	m.LoadWeight(1, -5)
	m.LoadWeight(3, 127)
	if m.Weight(1) != -5 {
		t.Fatal("weight readback failed")
	}
	if got := m.Step(0, 10, 100); got != 130 {
		t.Fatalf("3·10+100 = %d, want 130", got)
	}
	if got := m.Step(1, 2, 0); got != -10 {
		t.Fatalf("-5·2 = %d, want -10", got)
	}
	if got := m.Step(3, -128, 0); got != -16256 {
		t.Fatalf("127·-128 = %d, want -16256", got)
	}
	if got := m.Step(2, 99, 7); got != 7 {
		t.Fatalf("cleared register must multiply as 0, got %d", got)
	}
}

// Property: the functional MAC is exact integer arithmetic — it matches
// int32 reference multiplication for all int8 operands, and never loses the
// incoming psum.
func TestMACArithmeticProperty(t *testing.T) {
	m := NewMAC(Default8Bit(1))
	f := func(w, x int8, p int16) bool {
		m.LoadWeight(0, w)
		return m.Step(0, x, int32(p)) == int32(p)+int32(w)*int32(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: PE inventory grows monotonically with operand width.
func TestInventoryWidthMonotonicProperty(t *testing.T) {
	l := lib()
	f := func(b8 uint8) bool {
		b := 2 + int(b8)%14
		small := Config{Bits: b, AccBits: 3 * b, Registers: 1, Dataflow: WeightStationary}
		big := Config{Bits: b + 1, AccBits: 3 * (b + 1), Registers: 1, Dataflow: WeightStationary}
		return big.Inventory().JJs(l) > small.Inventory().JJs(l) &&
			big.PipelineStages() >= small.PipelineStages()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
