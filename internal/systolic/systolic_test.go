package systolic

import (
	"math/rand"
	"testing"
	"testing/quick"

	"supernpu/internal/dau"
	"supernpu/internal/workload"
)

func randomIfmap(rng *rand.Rand, c, h, w int) dau.Ifmap {
	m := dau.NewIfmap(c, h, w)
	for ci := 0; ci < c; ci++ {
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				m[ci][y][x] = int8(rng.Intn(256) - 128)
			}
		}
	}
	return m
}

func randomWeights(rng *rand.Rand, l workload.Layer) Weights {
	c := l.C
	if l.Kind == workload.DepthwiseConv {
		c = 1
	}
	w := NewWeights(l.M, c, l.R, l.S)
	for m := range w {
		for ci := range w[m] {
			for r := range w[m][ci] {
				for s := range w[m][ci][r] {
					w[m][ci][r][s] = int8(rng.Intn(256) - 128)
				}
			}
		}
	}
	return w
}

func equalOfmap(a, b Ofmap) bool {
	if len(a) != len(b) {
		return false
	}
	for m := range a {
		for e := range a[m] {
			for f := range a[m][e] {
				if a[m][e][f] != b[m][e][f] {
					return false
				}
			}
		}
	}
	return true
}

// checkLayer runs the layer on the array and compares against the golden
// convolution, also asserting the MAC accounting matches the layer's count.
func checkLayer(t *testing.T, arr *Array, l workload.Layer, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	in := randomIfmap(rng, l.C, l.H, l.W)
	w := randomWeights(rng, l)
	got, st, err := arr.Run(l, w, in)
	if err != nil {
		t.Fatalf("%s: %v", l.Name, err)
	}
	want := Reference(l, w, in)
	if !equalOfmap(got, want) {
		t.Fatalf("%s: systolic output differs from golden convolution", l.Name)
	}
	if st.MACs != l.MACs() {
		t.Fatalf("%s: accounted MACs = %d, want %d", l.Name, st.MACs, l.MACs())
	}
	if st.Cycles <= 0 || st.Mappings <= 0 {
		t.Fatalf("%s: implausible stats %+v", l.Name, st)
	}
}

func TestSingleTileConv(t *testing.T) {
	arr, err := NewArray(16, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	l := workload.Layer{Name: "small", Kind: workload.Conv,
		H: 6, W: 6, C: 1, R: 3, S: 3, M: 4, Stride: 1, Pad: 1}
	checkLayer(t, arr, l, 1)
}

func TestMultiRowTileAccumulation(t *testing.T) {
	// R·S·C = 36 > 16 rows: partial sums must accumulate across row tiles.
	arr, _ := NewArray(16, 8, 1)
	l := workload.Layer{Name: "rowtiles", Kind: workload.Conv,
		H: 5, W: 5, C: 4, R: 3, S: 3, M: 3, Stride: 1, Pad: 1}
	checkLayer(t, arr, l, 2)
}

func TestMultiColumnTiles(t *testing.T) {
	// M = 20 > 8 columns: several column tiles.
	arr, _ := NewArray(9, 8, 1)
	l := workload.Layer{Name: "coltiles", Kind: workload.Conv,
		H: 4, W: 4, C: 1, R: 3, S: 3, M: 20, Stride: 1, Pad: 1}
	checkLayer(t, arr, l, 3)
}

func TestMultiRegisterInterleaving(t *testing.T) {
	// 4 weight registers per PE: one pixel drives 4 filters (Section V-B3).
	arr, _ := NewArray(9, 4, 4)
	l := workload.Layer{Name: "regs", Kind: workload.Conv,
		H: 5, W: 5, C: 1, R: 3, S: 3, M: 16, Stride: 1, Pad: 1}
	checkLayer(t, arr, l, 4)
	// And with a filter count that does not divide evenly.
	l.M = 13
	checkLayer(t, arr, l, 5)
}

func TestStride2AndAsymmetricPads(t *testing.T) {
	arr, _ := NewArray(32, 8, 2)
	l := workload.Layer{Name: "stride", Kind: workload.Conv,
		H: 11, W: 11, C: 2, R: 5, S: 5, M: 6, Stride: 2, Pad: 2}
	checkLayer(t, arr, l, 6)
}

func TestDepthwiseLayer(t *testing.T) {
	arr, _ := NewArray(16, 8, 1)
	l := workload.Layer{Name: "dw", Kind: workload.DepthwiseConv,
		H: 6, W: 6, C: 5, R: 3, S: 3, M: 5, Stride: 1, Pad: 1}
	checkLayer(t, arr, l, 7)
}

func TestFullyConnectedShape(t *testing.T) {
	// FC = 1×1 conv over a 1×1 extent: rows tile over input features.
	arr, _ := NewArray(16, 8, 1)
	l := workload.Layer{Name: "fc", Kind: workload.FullyConnected,
		H: 1, W: 1, C: 40, R: 1, S: 1, M: 10, Stride: 1}
	checkLayer(t, arr, l, 8)
}

func TestNewArrayValidation(t *testing.T) {
	for _, bad := range [][3]int{{0, 4, 1}, {4, 0, 1}, {4, 4, 0}} {
		if _, err := NewArray(bad[0], bad[1], bad[2]); err == nil {
			t.Errorf("NewArray(%v) must fail", bad)
		}
	}
}

func TestRunRejectsInvalidLayer(t *testing.T) {
	arr, _ := NewArray(4, 4, 1)
	bad := workload.Layer{Name: "bad", Kind: workload.Conv,
		H: 2, W: 2, C: 1, R: 5, S: 5, M: 1, Stride: 1}
	if _, _, err := arr.Run(bad, NewWeights(1, 1, 5, 5), dau.NewIfmap(1, 2, 2)); err == nil {
		t.Fatal("Run must reject invalid layers")
	}
}

// The central correctness property of the repository: for arbitrary layer
// shapes, array geometries and register counts, the cycle-stepped systolic
// array computes exactly the reference convolution.
func TestSystolicMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64, hw, ch, mm, rs, rows8, cols8, regs8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + 2*(int(rs)%2) // 1 or 3
		h := r + 1 + int(hw)%5
		l := workload.Layer{Name: "prop", Kind: workload.Conv,
			H: h, W: h, C: 1 + int(ch)%4, R: r, S: r,
			M: 1 + int(mm)%10, Stride: 1, Pad: r / 2}
		rows := 2 + int(rows8)%14
		cols := 1 + int(cols8)%8
		regs := 1 + int(regs8)%4
		arr, err := NewArray(rows, cols, regs)
		if err != nil {
			return false
		}
		in := randomIfmap(rng, l.C, l.H, l.W)
		w := randomWeights(rng, l)
		got, st, err := arr.Run(l, w, in)
		if err != nil {
			return false
		}
		return equalOfmap(got, Reference(l, w, in)) && st.MACs == l.MACs()
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: more registers never change the result, only the schedule.
func TestRegisterCountInvarianceProperty(t *testing.T) {
	l := workload.Layer{Name: "inv", Kind: workload.Conv,
		H: 6, W: 6, C: 2, R: 3, S: 3, M: 12, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(99))
	in := randomIfmap(rng, l.C, l.H, l.W)
	w := randomWeights(rng, l)
	var first Ofmap
	for _, regs := range []int{1, 2, 4, 8} {
		arr, _ := NewArray(10, 4, regs)
		got, _, err := arr.Run(l, w, in)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = got
			continue
		}
		if !equalOfmap(first, got) {
			t.Fatalf("register count %d changed the computed output", regs)
		}
	}
}

func TestCycleCountScalesWithRegisters(t *testing.T) {
	// K registers stretch a tile over ~K× the cycles but cover K× the
	// filters per mapping: fewer mappings, roughly equal total cycles.
	l := workload.Layer{Name: "cyc", Kind: workload.Conv,
		H: 8, W: 8, C: 1, R: 3, S: 3, M: 32, Stride: 1, Pad: 1}
	rng := rand.New(rand.NewSource(7))
	in := randomIfmap(rng, l.C, l.H, l.W)
	w := randomWeights(rng, l)

	arr1, _ := NewArray(9, 4, 1)
	_, st1, err := arr1.Run(l, w, in)
	if err != nil {
		t.Fatal(err)
	}
	arr8, _ := NewArray(9, 4, 8)
	_, st8, err := arr8.Run(l, w, in)
	if err != nil {
		t.Fatal(err)
	}
	if st8.Mappings >= st1.Mappings {
		t.Fatalf("8 registers must need fewer mappings: %d vs %d", st8.Mappings, st1.Mappings)
	}
}
