package systolic

import (
	"context"
	"math/rand"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/npusim"
	"supernpu/internal/workload"
)

// smallConfig builds an SFQ design whose array matches a functional-model
// geometry, so the two models can be compared tile for tile.
func smallConfig(rows, cols, regs int) arch.Config {
	return arch.Config{
		Name:        "cross-model",
		ArrayHeight: rows, ArrayWidth: cols, Registers: regs,
		IfmapBufBytes: 64 * 1024, IfmapChunks: 4,
		OutputBufBytes: 64 * 1024, OutputChunks: 4,
		IntegratedOutput: true,
		WeightBufBytes:   16 * 1024,
		MemoryBandwidth:  arch.DefaultBandwidth,
	}
}

// The cycle-based performance simulator and the functional cycle-stepped
// array share one mapping policy (internal/mapper): for the same layer and
// geometry they must execute the same number of weight mappings, and the
// performance model's computation cycles must track the functional model's
// measured cycles up to the pipeline-fill accounting difference.
func TestPerformanceModelTracksFunctionalModel(t *testing.T) {
	layers := []workload.Layer{
		{Name: "conv", Kind: workload.Conv, H: 10, W: 10, C: 4, R: 3, S: 3, M: 24, Stride: 1, Pad: 1},
		{Name: "wide", Kind: workload.Conv, H: 6, W: 6, C: 2, R: 3, S: 3, M: 70, Stride: 1, Pad: 1},
		{Name: "fc", Kind: workload.FullyConnected, H: 1, W: 1, C: 80, R: 1, S: 1, M: 20, Stride: 1},
		{Name: "dw", Kind: workload.DepthwiseConv, H: 8, W: 8, C: 6, R: 3, S: 3, M: 6, Stride: 1, Pad: 1},
	}
	const rows, cols, regs = 24, 8, 2
	peStages := smallConfig(rows, cols, regs).PECfg().PipelineStages()

	for _, l := range layers {
		arr, err := NewArray(rows, cols, regs)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(5))
		in := randomIfmap(rng, l.C, l.H, l.W)
		w := randomWeights(rng, l)
		_, funcStats, err := arr.Run(l, w, in)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}

		net := workload.Network{Name: "one-" + l.Name, Layers: []workload.Layer{l}}
		rep, err := npusim.Simulate(context.Background(), smallConfig(rows, cols, regs), net, 1)
		if err != nil {
			t.Fatalf("%s: %v", l.Name, err)
		}
		perf := rep.Layers[0]

		if perf.Mappings != funcStats.Mappings {
			t.Errorf("%s: mappings differ — performance %d vs functional %d",
				l.Name, perf.Mappings, funcStats.Mappings)
		}
		if perf.MACs != funcStats.MACs {
			t.Errorf("%s: MACs differ — performance %d vs functional %d",
				l.Name, perf.MACs, funcStats.MACs)
		}
		// Compute-cycle agreement up to per-mapping fill accounting: the
		// performance model charges rows×peStages fill, the functional
		// model drains ~2·rows+cols.
		slack := int64(perf.Mappings * (rows*(peStages+2) + cols + regs))
		diff := perf.ComputeCycles - funcStats.Cycles
		if diff < 0 {
			diff = -diff
		}
		if diff > slack {
			t.Errorf("%s: compute cycles diverge — performance %d vs functional %d (slack %d)",
				l.Name, perf.ComputeCycles, funcStats.Cycles, slack)
		}
	}
}
