// Package systolic is the functional, cycle-stepped model of the SuperNPU
// datapath: a weight-stationary 2D systolic PE array (Section III) fed by
// the data alignment unit. It computes real 8-bit convolutions cycle by
// cycle — ifmap pixels march right through the store-and-forward network,
// partial sums march down — and is verified against a direct convolution.
//
// The model exists for correctness: it proves the dataflow (weight mapping,
// DAU selection, timing skew, multi-register interleaving) computes exactly
// the layer it claims to. The performance simulator (internal/npusim)
// charges cycles for the same mechanics without moving data.
package systolic

import (
	"fmt"

	"supernpu/internal/dau"
	"supernpu/internal/mapper"
	"supernpu/internal/pe"
	"supernpu/internal/workload"
)

// Weights holds a layer's filters as [m][c][r][s] int8.
type Weights [][][][]int8

// NewWeights allocates zeroed filters.
func NewWeights(m, c, r, s int) Weights {
	w := make(Weights, m)
	for i := range w {
		w[i] = make([][][]int8, c)
		for j := range w[i] {
			w[i][j] = make([][]int8, r)
			for k := range w[i][j] {
				w[i][j][k] = make([]int8, s)
			}
		}
	}
	return w
}

// Ofmap is an output feature map in [m][e][f] layout with full-precision
// partial sums.
type Ofmap [][][]int32

// NewOfmap allocates a zeroed output map.
func NewOfmap(m, e, f int) Ofmap {
	o := make(Ofmap, m)
	for i := range o {
		o[i] = make([][]int32, e)
		for j := range o[i] {
			o[i][j] = make([]int32, f)
		}
	}
	return o
}

// Reference computes the layer directly — the golden model the systolic
// array is checked against.
func Reference(l workload.Layer, w Weights, in dau.Ifmap) Ofmap {
	e, f := l.OutH(), l.OutW()
	out := NewOfmap(l.M, e, f)
	for m := 0; m < l.M; m++ {
		for oe := 0; oe < e; oe++ {
			for of := 0; of < f; of++ {
				var acc int32
				for c := 0; c < l.C; c++ {
					wc := c
					ic := c
					if l.Kind == workload.DepthwiseConv {
						if c != m%l.C { // depthwise: filter m reads only channel m
							continue
						}
						wc = 0
						ic = m
					}
					for r := 0; r < l.R; r++ {
						ih := oe*l.Stride - l.Pad + r
						if ih < 0 || ih >= l.H {
							continue
						}
						for s := 0; s < l.S; s++ {
							iw := of*l.Stride - l.Pad + s
							if iw < 0 || iw >= l.W {
								continue
							}
							acc += int32(w[m][wc][r][s]) * int32(in[ic][ih][iw])
						}
					}
				}
				out[m][oe][of] = acc
			}
		}
	}
	return out
}

// Array is one weight-stationary systolic PE array instance.
type Array struct {
	Rows, Cols int
	Regs       int // weight registers per PE (SuperNPU: 8)
	macs       [][]*pe.MAC
}

// NewArray builds a rows×cols array of PEs with regs weight registers each.
func NewArray(rows, cols, regs int) (*Array, error) {
	if rows <= 0 || cols <= 0 || regs <= 0 {
		return nil, fmt.Errorf("systolic: array dimensions must be positive (rows=%d cols=%d regs=%d)",
			rows, cols, regs)
	}
	a := &Array{Rows: rows, Cols: cols, Regs: regs}
	a.macs = make([][]*pe.MAC, rows)
	cfg := pe.Default8Bit(regs)
	for r := range a.macs {
		a.macs[r] = make([]*pe.MAC, cols)
		for c := range a.macs[r] {
			a.macs[r][c] = pe.NewMAC(cfg)
		}
	}
	return a, nil
}

// Stats reports what one Run consumed.
type Stats struct {
	Cycles   int64 // cycle-stepped simulation cycles
	MACs     int64 // useful multiply-accumulates performed
	Mappings int   // weight-mapping tiles executed
}

// Run executes one full layer on the array for a single input image and
// returns the output feature map with execution statistics. It tiles the
// layer's (R·S·C) weight positions over the array height and its M filters
// over the array width × registers, accumulating partial results across row
// tiles — exactly the weight-mapping procedure of the performance
// simulator.
func (a *Array) Run(l workload.Layer, w Weights, in dau.Ifmap) (Ofmap, Stats, error) {
	if err := l.Validate(); err != nil {
		return nil, Stats{}, err
	}
	if l.Kind == workload.DepthwiseConv {
		return a.runDepthwise(l, w, in)
	}
	e, f := l.OutH(), l.OutW()
	out := NewOfmap(l.M, e, f)
	var st Stats

	lastRowOff := -1
	var assigns []dau.Assignment
	var streams [][]int8
	for _, t := range mapper.Tiles(l, a.Rows, a.Cols, a.Regs) {
		if t.RowOffset != lastRowOff {
			assigns = dau.RowAssignments(l, t.RowOffset, a.Rows)
			unit, err := dau.New(l, assigns)
			if err != nil {
				return nil, Stats{}, err
			}
			streams = unit.Streams(in)
			lastRowOff = t.RowOffset
		}
		a.loadWeights(l, w, assigns, t.ColBase, t.Cols, t.Regs)
		st.Cycles += a.tile(streams, assigns, t.ColBase, t.Cols, t.Regs, l.M, out)
		st.MACs += t.MACs(1, int64(e*f))
		st.Mappings++
	}
	return out, st, nil
}

// filterIndex maps (tile base, active column count, column, register) to
// the global filter index, or -1 past the layer's filter count.
func filterIndex(base, cols, col, reg, m int) int {
	idx := base + reg*cols + col
	if idx >= m {
		return -1
	}
	return idx
}

// loadWeights makes each PE's register bank resident: PE (r, c) register k
// holds filter filterIndex(base,c,k)'s weight at the row's assigned
// position. Only the tile's engaged register planes are loaded.
func (a *Array) loadWeights(l workload.Layer, w Weights, assigns []dau.Assignment, base, cols, regs int) {
	for r := range assigns {
		as := assigns[r]
		for c := 0; c < cols; c++ {
			for k := 0; k < regs; k++ {
				m := filterIndex(base, cols, c, k, l.M)
				v := int8(0)
				if m >= 0 {
					v = w[m][as.C][as.R][as.S]
				}
				a.macs[r][c].LoadWeight(k, v)
			}
		}
	}
}

// tile runs the cycle-stepped simulation of one weight mapping. Row r's
// stream enters with a skew of r cycles (the DAU's cascaded DFFs); with K
// registers every pixel is presented K consecutive cycles against K
// different resident filters. Ifmap values shift one column right per
// cycle; partial sums shift one row down per cycle and are collected at the
// bottom edge.
func (a *Array) tile(streams [][]int8, assigns []dau.Assignment, base, cols, regs, m int, out Ofmap) int64 {
	rows := len(assigns)
	k := regs
	ef := len(streams[0])
	lastInject := (rows - 1) + k*(ef-1) + (k - 1)
	totalCycles := lastInject + rows + cols // drain the deepest wave

	xin := make([][]int8, rows+1)
	ps := make([][]int32, rows+1)
	for i := range xin {
		xin[i] = make([]int8, cols+1)
		ps[i] = make([]int32, cols+1)
	}
	nx := make([][]int8, rows+1)
	nps := make([][]int32, rows+1)
	for i := range nx {
		nx[i] = make([]int8, cols+1)
		nps[i] = make([]int32, cols+1)
	}

	f := len(out[0][0])
	for t := 0; t <= totalCycles; t++ {
		// Inject this cycle's stream element at each row's left edge.
		for r := 0; r < rows; r++ {
			q := t - r
			xin[r][0] = 0
			if q >= 0 && q/k < ef {
				xin[r][0] = streams[r][q/k]
			}
		}
		// Every PE computes and forwards.
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				reg := ((t-r-c)%k + k) % k
				psIn := int32(0)
				if r > 0 {
					psIn = ps[r][c]
				}
				o := a.macs[r][c].Step(reg, xin[r][c], psIn)
				nps[r+1][c] = o
				nx[r][c+1] = xin[r][c]
			}
		}
		// Collect the bottom edge: the completed column sums.
		for c := 0; c < cols; c++ {
			q := t - rows - c + 1
			if q < 0 {
				continue
			}
			p, reg := q/k, q%k
			if p >= ef {
				continue
			}
			fi := filterIndex(base, cols, c, reg, m)
			if fi < 0 {
				continue
			}
			out[fi][p/f][p%f] += nps[rows][c]
		}
		// Advance the pipeline registers.
		for r := range nx {
			copy(xin[r][1:], nx[r][1:])
			copy(ps[r], nps[r])
		}
	}
	return int64(totalCycles + 1)
}

// runDepthwise executes a depthwise layer channel by channel: each filter
// touches only its own channel, so a weight mapping can use at most R·S
// rows and one column per channel — the structural reason depthwise layers
// underutilise a systolic array.
func (a *Array) runDepthwise(l workload.Layer, w Weights, in dau.Ifmap) (Ofmap, Stats, error) {
	e, f := l.OutH(), l.OutW()
	out := NewOfmap(l.M, e, f)
	var st Stats
	for ch := 0; ch < l.C; ch++ {
		sub := workload.Layer{
			Name: l.Name, Kind: workload.Conv,
			H: l.H, W: l.W, C: 1, R: l.R, S: l.S, M: 1,
			Stride: l.Stride, Pad: l.Pad,
		}
		subIn := dau.Ifmap{in[ch]}
		subW := NewWeights(1, 1, l.R, l.S)
		for r := 0; r < l.R; r++ {
			copy(subW[0][0][r], w[ch][0][r])
		}
		subOut, subSt, err := a.Run(sub, subW, subIn)
		if err != nil {
			return nil, Stats{}, err
		}
		for oe := 0; oe < e; oe++ {
			copy(out[ch][oe], subOut[0][oe])
		}
		st.Cycles += subSt.Cycles
		st.MACs += subSt.MACs
		st.Mappings += subSt.Mappings
	}
	return out, st, nil
}
