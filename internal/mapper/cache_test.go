package mapper

// Tile-plan memoization tests: Tiles is cached by (shape, array geometry),
// shared across calls and display names, and identical to the uncached
// enumeration.

import (
	"reflect"
	"testing"

	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

func TestTilesMemoisedAndNameIndependent(t *testing.T) {
	l := workload.Layer{Name: "conv", Kind: workload.Conv,
		H: 14, W: 14, C: 256, R: 3, S: 3, M: 512, Stride: 1, Pad: 1}

	simcache.SetLayerGrain(true)
	simcache.ClearAll()
	t.Cleanup(simcache.ClearAll)

	a := Tiles(l, 128, 64, 2)
	b := Tiles(l, 128, 64, 2)
	if len(a) == 0 || &a[0] != &b[0] {
		t.Error("second Tiles call did not return the cached plan")
	}

	// Same shape under a different display name shares the entry.
	renamed := l
	renamed.Name = "other"
	c := Tiles(renamed, 128, 64, 2)
	if &a[0] != &c[0] {
		t.Error("renamed layer of identical shape did not share the cached plan")
	}

	// Different geometry keys separately.
	d := Tiles(l, 128, 64, 4)
	if reflect.DeepEqual(a, d) {
		t.Error("register-count change did not alter the tile plan key/result")
	}

	// The cached plan matches the uncached enumeration exactly.
	simcache.SetLayerGrain(false)
	raw := Tiles(l, 128, 64, 2)
	simcache.SetLayerGrain(true)
	if !reflect.DeepEqual(a, raw) {
		t.Errorf("cached plan differs from uncached enumeration:\n got %+v\nwant %+v", a, raw)
	}
}

func TestTilesPoolBypassesCache(t *testing.T) {
	simcache.ClearAll()
	t.Cleanup(simcache.ClearAll)
	p := workload.Layer{Name: "pool", Kind: workload.Pool, H: 14, W: 14, C: 8, R: 2, S: 2, M: 8, Stride: 2}
	if got := Tiles(p, 64, 64, 2); got != nil {
		t.Errorf("pool layer produced tiles: %+v", got)
	}
	if n := tileCache.Len(); n != 0 {
		t.Errorf("pool lookup populated the tile cache with %d entries", n)
	}
}
