package mapper

import (
	"testing"
	"testing/quick"

	"supernpu/internal/workload"
)

func conv(h, c, r, m int) workload.Layer {
	return workload.Layer{Name: "t", Kind: workload.Conv,
		H: h, W: h, C: c, R: r, S: r, M: m, Stride: 1, Pad: r / 2}
}

func TestSingleTileLayer(t *testing.T) {
	l := conv(8, 4, 3, 16) // RSC = 36, M = 16
	tiles := Tiles(l, 256, 64, 1)
	if len(tiles) != 1 {
		t.Fatalf("got %d tiles, want 1", len(tiles))
	}
	tl := tiles[0]
	if tl.Rows != 36 || tl.Filters != 16 || tl.Cols != 16 || tl.Regs != 1 {
		t.Fatalf("tile wrong: %+v", tl)
	}
	if !tl.FirstRowTile || tl.Channel != -1 || tl.Channels != 4 {
		t.Fatalf("tile metadata wrong: %+v", tl)
	}
}

func TestRowAndColumnTiling(t *testing.T) {
	l := conv(8, 64, 3, 200) // RSC = 576, M = 200
	tiles := Tiles(l, 256, 64, 1)
	// 3 row tiles × 4 column tiles (200/64 → 64,64,64,8).
	if len(tiles) != 12 {
		t.Fatalf("got %d tiles, want 12", len(tiles))
	}
	first, last := tiles[0], tiles[len(tiles)-1]
	if first.Rows != 256 || last.Rows != 64 {
		t.Fatalf("row tiling wrong: first %d, last %d", first.Rows, last.Rows)
	}
	if !first.FirstRowTile || last.FirstRowTile {
		t.Fatal("FirstRowTile must mark only the first row tile")
	}
	if last.Filters != 8 || last.Cols != 8 {
		t.Fatalf("tail column tile wrong: %+v", last)
	}
}

func TestRegistersEngageOnlyWhenNeeded(t *testing.T) {
	// 40 filters on a 64-wide array: one register plane suffices.
	few := Tiles(conv(8, 1, 3, 40), 256, 64, 8)
	if len(few) != 1 || few[0].Regs != 1 || few[0].Cols != 40 {
		t.Fatalf("narrow layer must not engage registers: %+v", few)
	}
	// 512 filters on a 64-wide array with 8 registers: one mapping at 8
	// planes instead of 8 mappings.
	many := Tiles(conv(8, 1, 3, 512), 256, 64, 8)
	if len(many) != 1 || many[0].Regs != 8 || many[0].Cols != 64 {
		t.Fatalf("wide layer must engage all planes: %+v", many)
	}
	// Without registers it takes 8 column tiles.
	if got := Tiles(conv(8, 1, 3, 512), 256, 64, 1); len(got) != 8 {
		t.Fatalf("single-register tiling = %d mappings, want 8", len(got))
	}
}

func TestDepthwiseTiling(t *testing.T) {
	l := workload.Layer{Name: "dw", Kind: workload.DepthwiseConv,
		H: 14, W: 14, C: 32, R: 3, S: 3, M: 32, Stride: 1, Pad: 1}
	tiles := Tiles(l, 256, 64, 8)
	if len(tiles) != 32 {
		t.Fatalf("depthwise must map per channel: %d tiles, want 32", len(tiles))
	}
	for i, tl := range tiles {
		if tl.Rows != 9 || tl.Cols != 1 || tl.Filters != 1 || tl.Regs != 1 {
			t.Fatalf("depthwise tile %d wrong: %+v", i, tl)
		}
		if tl.Channel != i {
			t.Fatalf("depthwise tile %d channel = %d", i, tl.Channel)
		}
	}
}

func TestPoolHasNoTiles(t *testing.T) {
	p := workload.Layer{Name: "p", Kind: workload.Pool,
		H: 8, W: 8, C: 4, R: 2, S: 2, M: 4, Stride: 2}
	if got := Tiles(p, 256, 64, 1); got != nil {
		t.Fatalf("pool layers map no tiles, got %v", got)
	}
}

// Property: MAC conservation — the tiles of any layer cover exactly the
// layer's MAC count, with no overlap and no gap, for any array geometry.
func TestTileMACConservationProperty(t *testing.T) {
	f := func(h8, c8, m8, hgt8, wid8, regs8 uint8) bool {
		l := conv(3+int(h8)%10, 1+int(c8)%32, 3, 1+int(m8)%300)
		height := 8 << (hgt8 % 6) // 8..256
		width := 4 << (wid8 % 5)  // 4..64
		regs := 1 << (regs8 % 4)  // 1..8
		var total int64
		for _, tl := range Tiles(l, height, width, regs) {
			if tl.Rows > height || tl.Cols > width || tl.Regs > regs {
				return false
			}
			if tl.Filters > tl.Cols*tl.Regs {
				return false
			}
			total += tl.MACs(1, int64(l.OutH()*l.OutW()))
		}
		return total == l.MACs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: filter coverage is a partition — every filter belongs to
// exactly one column tile per row tile.
func TestFilterPartitionProperty(t *testing.T) {
	f := func(m8, wid8, regs8 uint8) bool {
		l := conv(6, 2, 3, 1+int(m8))
		width := 4 << (wid8 % 5)
		regs := 1 << (regs8 % 4)
		covered := map[int]int{}
		for _, tl := range Tiles(l, 1000, width, regs) {
			for f := tl.ColBase; f < tl.ColBase+tl.Filters; f++ {
				covered[f]++
			}
		}
		if len(covered) != l.M {
			return false
		}
		for _, n := range covered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
