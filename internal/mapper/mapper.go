// Package mapper computes the weight mappings of a layer onto a
// weight-stationary systolic array: the tiling of the layer's (R·S·C)
// weight positions over the PE rows and of its M filters over the PE
// columns and register planes. The cycle-based performance simulator and
// the functional cycle-stepped array consume exactly the same tiles, so the
// two models are tied to one mapping policy.
package mapper

import (
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// tileCache memoises Tiles by (layer shape, array geometry): the same tile
// plans are re-derived at every sweep point and batch resolution of
// Figs. 20–22. Cached slices are shared between callers and must be
// treated as read-only.
var tileCache = simcache.New[[]Tile]()

func init() { simcache.Register("mapper.tiles", tileCache) }

// Tile is one weight mapping.
type Tile struct {
	// RowOffset is the flat (channel, filter-row, filter-column) position
	// of the tile's first PE row; Rows the number of rows occupied.
	RowOffset, Rows int
	// ColBase is the first filter covered; Filters the effective filter
	// count; Cols the PE columns occupied; Regs the register planes
	// engaged. Filters ≤ Cols × Regs.
	ColBase, Filters, Cols, Regs int
	// FirstRowTile marks the tile that starts a fresh set of partial sums
	// for its filters (no psum re-injection needed).
	FirstRowTile bool
	// Channels is the number of input channels the tile's rows touch.
	Channels int
	// Channel is the single input channel of a depthwise tile, else -1.
	Channel int
}

// Tiles enumerates the layer's weight mappings on an array of the given
// height (rows), width (columns) and registers per PE.
//
// Registers engage only when a tile's filter count exceeds the array width:
// each engaged register plane trades one streaming pass for a column's
// worth of filters, so a tile that fits the columns runs single-register.
//
// Depthwise layers reduce within one channel only, so each channel maps
// separately onto R·S rows and a single column — the structural
// underutilisation the paper observes on MobileNet.
//
// Results are memoised by (layer shape, height, width, registers) while
// layer-grain caching is enabled; the returned slice is then shared
// between callers, who must not modify it.
func Tiles(l workload.Layer, height, width, registers int) []Tile {
	if l.Kind == workload.Pool {
		return nil
	}
	if !simcache.LayerGrainEnabled() {
		return enumerate(l, height, width, registers)
	}
	tiles, _ := tileCache.GetOrCompute(simcache.TilesKey(l.Shape(), height, width, registers),
		func() ([]Tile, error) { return enumerate(l, height, width, registers), nil })
	return tiles
}

// enumerate is the uncached tile-plan derivation.
func enumerate(l workload.Layer, height, width, registers int) []Tile {
	if l.Kind == workload.DepthwiseConv {
		tiles := make([]Tile, 0, l.C)
		rows := l.R * l.S
		if rows > height {
			rows = height
		}
		for c := 0; c < l.C; c++ {
			tiles = append(tiles, Tile{
				RowOffset: 0, Rows: rows,
				ColBase: c, Filters: 1, Cols: 1, Regs: 1,
				FirstRowTile: true, Channels: 1, Channel: c,
			})
		}
		return tiles
	}

	rsc := l.R * l.S * l.C
	filtersPerTile := width * registers
	var tiles []Tile
	for rowOff := 0; rowOff < rsc; rowOff += height {
		rows := rsc - rowOff
		if rows > height {
			rows = height
		}
		for m := 0; m < l.M; m += filtersPerTile {
			filters := l.M - m
			if filters > filtersPerTile {
				filters = filtersPerTile
			}
			regs := (filters + width - 1) / width
			cols := (filters + regs - 1) / regs
			tiles = append(tiles, Tile{
				RowOffset: rowOff, Rows: rows,
				ColBase: m, Filters: filters, Cols: cols, Regs: regs,
				FirstRowTile: rowOff == 0,
				Channels:     (rows + l.R*l.S - 1) / (l.R * l.S),
			})
		}
	}
	for i := range tiles {
		tiles[i].Channel = -1
	}
	return tiles
}

// MACs returns the useful multiply-accumulates of the tile for one output
// map of ef positions and the given batch.
func (t Tile) MACs(batch int, ef int64) int64 {
	return int64(batch) * ef * int64(t.Rows) * int64(t.Filters)
}
