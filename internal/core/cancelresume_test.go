package core

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"supernpu/internal/checkpoint"
	"supernpu/internal/guard"
	"supernpu/internal/simcache"
)

// drainDegrees is a division sweep wide enough that, with cold caches, a
// mid-run cancellation lands while points are still being computed.
var drainDegrees = []int{2, 3, 4, 5, 6, 7, 8, 12, 16, 24, 32, 48, 64}

// countIntactLines parses the checkpoint JSONL and fails the test on any
// torn or malformed record: a canceled run must leave a consistent prefix,
// never a half-written line (the final line is the only one a kill may
// tear, and cancellation is not a kill — Put completes or never starts).
func countIntactLines(t *testing.T, path string) int {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	n := 0
	for sc.Scan() {
		var rec struct {
			Key   string          `json:"key"`
			Value json.RawMessage `json:"value"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil || rec.Key == "" {
			t.Fatalf("checkpoint line %d is torn or malformed after cancellation: %q (%v)", n+1, sc.Text(), err)
		}
		n++
	}
	return n
}

// TestExploreCancelResumeByteIdentical cancels a checkpointed division
// sweep mid-run, asserts the checkpoint holds a consistent prefix of
// completed points, then resumes from it and requires the resumed result to
// be byte-identical to an uninterrupted run of the same sweep.
func TestExploreCancelResumeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("cold full-width division sweep")
	}
	dir := t.TempDir()
	ckPath := filepath.Join(dir, "sweep.ck")

	// Cold caches so the canceled attempt does real work instead of
	// replaying memoised results instantaneously.
	simcache.ClearAll()
	ck, err := checkpoint.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Pull the plug once at least one point has been checkpointed (or
		// give up watching after the deadline; a fast machine may finish
		// the whole sweep first, which the test tolerates below).
		deadline := time.Now().Add(30 * time.Second)
		for time.Now().Before(deadline) {
			if st, err := os.Stat(ckPath); err == nil && st.Size() > 0 {
				break
			}
			time.Sleep(200 * time.Microsecond)
		}
		cancel()
	}()
	_, sweepErr := ExploreDivisionOpts(ctx, drainDegrees, SweepOptions{Checkpoint: ck})
	cancel()
	if err := ck.Close(); err != nil {
		t.Fatal(err)
	}
	if sweepErr != nil && !errors.Is(sweepErr, guard.ErrCanceled) {
		t.Fatalf("canceled sweep failed outside the taxonomy: %v", sweepErr)
	}

	// The interrupted checkpoint is a consistent prefix: every line parses,
	// and there are no more lines than sweep points.
	lines := countIntactLines(t, ckPath)
	if sweepErr != nil && lines >= len(drainDegrees)+2 {
		t.Fatalf("canceled sweep checkpointed all %d points", lines)
	}
	t.Logf("canceled after %d of %d checkpointed points (err=%v)", lines, len(drainDegrees)+2, sweepErr)

	// Resume from the prefix. The simulators are memoised, but the resumed
	// points must come out identical regardless of whether they were
	// replayed from the checkpoint or recomputed.
	ck2, err := checkpoint.Open(ckPath)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ExploreDivisionOpts(context.Background(), drainDegrees, SweepOptions{Checkpoint: ck2})
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	if err := ck2.Close(); err != nil {
		t.Fatal(err)
	}
	if countIntactLines(t, ckPath) != len(drainDegrees)+2 {
		t.Fatalf("resumed checkpoint incomplete: %d lines, want %d", countIntactLines(t, ckPath), len(drainDegrees)+2)
	}

	// Reference: the same sweep, uninterrupted, with no checkpoint at all.
	reference, err := ExploreDivisionOpts(context.Background(), drainDegrees, SweepOptions{})
	if err != nil {
		t.Fatalf("reference sweep: %v", err)
	}
	refJSON, err := json.Marshal(reference)
	if err != nil {
		t.Fatal(err)
	}
	resJSON, err := json.Marshal(resumed)
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(resJSON) {
		t.Fatalf("resumed sweep diverges from uninterrupted run:\nresumed   %s\nreference %s", resJSON, refJSON)
	}
	if !reflect.DeepEqual(reference, resumed) {
		t.Fatal("resumed sweep points differ structurally from the uninterrupted run")
	}
}
