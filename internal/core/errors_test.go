package core

import (
	"errors"
	"testing"

	"supernpu/internal/clocking"
	"supernpu/internal/netunit"
	"supernpu/internal/parallel"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

func TestDesignByNameReturnsSentinel(t *testing.T) {
	if _, err := DesignByName("nope"); !errors.Is(err, ErrUnknownDesign) {
		t.Fatalf("unknown design: got %v, want ErrUnknownDesign", err)
	}
	if _, err := DesignByName("ERSFQ-TPU"); !errors.Is(err, ErrUnknownDesign) {
		t.Fatalf("ERSFQ on CMOS: got %v, want ErrUnknownDesign", err)
	}
	if !IsBadInput(mustErr(DesignByName("nope"))) {
		t.Fatal("IsBadInput misses ErrUnknownDesign")
	}
}

func mustErr(_ Design, err error) error { return err }

// TestBoundaryPanicsClassifyAsBadInput drives each former boundary panic
// through the parallel pool and asserts the recovered error still matches
// its typed sentinel — the property the server's 400 mapping relies on.
func TestBoundaryPanicsClassifyAsBadInput(t *testing.T) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	cases := []struct {
		name     string
		job      func()
		sentinel error
	}{
		{"workload kind", func() {
			(workload.Layer{Name: "x", Kind: workload.Kind(99), H: 1, W: 1, C: 1, R: 1, S: 1, M: 1, Stride: 1}).MACs()
		}, workload.ErrUnknownKind},
		{"clocking scheme", func() {
			(clocking.Pair{}).CCT(clocking.Scheme(99))
		}, clocking.ErrUnknownScheme},
		{"netunit design", func() {
			netunit.CellInventory(netunit.Design(99), netunit.Config{Width: 4, Bits: 8})
		}, netunit.ErrUnknownDesign},
		{"sfq gate", func() {
			lib.Gate(sfq.GateKind("BOGUS"))
		}, sfq.ErrUnknownGate},
	}
	for _, tc := range cases {
		err := parallel.ForEach(1, func(i int) error {
			tc.job()
			return nil
		})
		if err == nil {
			t.Fatalf("%s: panic was swallowed", tc.name)
		}
		if !errors.Is(err, tc.sentinel) {
			t.Fatalf("%s: recovered error %v does not match sentinel", tc.name, err)
		}
		if !IsBadInput(err) {
			t.Fatalf("%s: IsBadInput rejects the recovered error", tc.name)
		}
	}
	if IsBadInput(errors.New("transient solver divergence")) {
		t.Fatal("IsBadInput claims an unrelated error")
	}
}

func TestSfqLookup(t *testing.T) {
	lib := sfq.NewLibrary(sfq.AIST10(), sfq.RSFQ)
	if _, err := lib.Lookup(sfq.DFF); err != nil {
		t.Fatalf("Lookup(DFF) = %v", err)
	}
	if _, err := lib.Lookup(sfq.GateKind("BOGUS")); !errors.Is(err, sfq.ErrUnknownGate) {
		t.Fatalf("Lookup(BOGUS) = %v, want ErrUnknownGate", err)
	}
}
