package core

import (
	"context"
	"math"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/scalesim"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

func TestDesignPointsOrder(t *testing.T) {
	want := []string{"TPU", "Baseline", "Buffer opt.", "Resource opt.", "SuperNPU"}
	ds := DesignPoints()
	if len(ds) != len(want) {
		t.Fatalf("got %d designs, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.Name() != want[i] {
			t.Errorf("design %d = %q, want %q", i, d.Name(), want[i])
		}
	}
	if ds[0].Platform != CMOS || ds[1].Platform != SFQ {
		t.Error("platform assignment wrong")
	}
}

func TestEvaluateBothPlatforms(t *testing.T) {
	net := workload.ResNet50()
	for _, d := range DesignPoints() {
		ev, err := Evaluate(context.Background(), d, net, 0)
		if err != nil {
			t.Fatalf("%s: %v", d.Name(), err)
		}
		if ev.Throughput <= 0 || ev.Time <= 0 || ev.Batch < 1 {
			t.Errorf("%s: implausible evaluation %+v", d.Name(), ev)
		}
		if (ev.SFQReport == nil) == (ev.CMOSReport == nil) {
			t.Errorf("%s: exactly one platform report must be set", d.Name())
		}
		if ev.ChipPower <= 0 {
			t.Errorf("%s: chip power must be positive", d.Name())
		}
	}
}

func TestEvaluateUnknownPlatform(t *testing.T) {
	if _, err := Evaluate(context.Background(), Design{Platform: Platform(9)}, workload.VGG16(), 1); err == nil {
		t.Fatal("unknown platform must error")
	}
}

// The headline result: SuperNPU outperforms the TPU by roughly 23× on
// average, and every optimisation step moves in the paper's direction.
func TestHeadlineSpeedups(t *testing.T) {
	var gmBase, gmSuper float64 = 1, 1
	for _, net := range workload.All() {
		sBase, err := Speedup(context.Background(), SFQDesign(arch.Baseline()), net)
		if err != nil {
			t.Fatal(err)
		}
		sSuper, err := Speedup(context.Background(), SFQDesign(arch.SuperNPU()), net)
		if err != nil {
			t.Fatal(err)
		}
		gmBase *= sBase
		gmSuper *= sSuper
		if sSuper < 10 {
			t.Errorf("%s: SuperNPU speedup %.1f×, paper boosts every workload over 10×", net.Name, sSuper)
		}
		if sSuper <= sBase {
			t.Errorf("%s: SuperNPU must beat the Baseline", net.Name)
		}
	}
	gmBase = pow6(gmBase)
	gmSuper = pow6(gmSuper)
	if gmBase < 0.2 || gmBase > 0.6 {
		t.Errorf("Baseline geomean speedup = %.2f×, want ≈0.4× (paper)", gmBase)
	}
	if gmSuper < 17 || gmSuper > 29 {
		t.Errorf("SuperNPU geomean speedup = %.1f×, want ≈23× (paper)", gmSuper)
	}
}

// pow6 is the sixth root: the geomean over the six workloads.
func pow6(x float64) float64 { return math.Pow(x, 1.0/6) }

func TestOptimisationLadder(t *testing.T) {
	// Geomean speedups must be ordered Baseline < Buffer opt. <
	// Resource opt. ≤ SuperNPU (Fig. 23's accumulative story).
	net := workload.ResNet50()
	var prev float64
	for i, cfg := range arch.Designs() {
		s, err := Speedup(context.Background(), SFQDesign(cfg), net)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && s < prev {
			t.Errorf("%s (%.2f×) must not regress from the previous step (%.2f×)", cfg.Name, s, prev)
		}
		prev = s
	}
}

func TestMaxBatchDispatch(t *testing.T) {
	net := workload.VGG16()
	if got := CMOSDesign(scalesim.TPU()).MaxBatch(net); got != 3 {
		t.Errorf("TPU VGG16 batch = %d, want 3", got)
	}
	if got := SFQDesign(arch.SuperNPU()).MaxBatch(net); got != 7 {
		t.Errorf("SuperNPU VGG16 batch = %d, want 7", got)
	}
}

func TestEfficiencyBridge(t *testing.T) {
	cfg := arch.SuperNPU()
	cfg.Tech = sfq.ERSFQ
	ev, err := Evaluate(context.Background(), SFQDesign(cfg), workload.ResNet50(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eff := ev.Efficiency(0)
	if eff.Throughput != ev.Throughput || eff.ChipPower != ev.ChipPower {
		t.Fatal("Efficiency must carry the evaluation's throughput and power")
	}
}
