package core

import (
	"math"
	"testing"
)

func TestExploreDivision(t *testing.T) {
	points, err := ExploreDivision([]int{4, 64, 4096})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 { // Baseline, +Integration, 3 divisions
		t.Fatalf("got %d points, want 5", len(points))
	}
	base := points[0]
	if math.Abs(base.SingleBatch-1) > 1e-9 || math.Abs(base.MaxBatch-1) > 1e-9 {
		t.Fatal("Baseline must normalise to 1×")
	}
	// Monotone improvement through the sweep's performance columns.
	for i := 1; i < len(points); i++ {
		if points[i].SingleBatch < points[i-1].SingleBatch-1e-9 {
			t.Errorf("single-batch speedup regressed at %s", points[i].Label)
		}
	}
	// Fig. 20's area story: division 64 nearly free, 4096 clearly not.
	div64, div4096 := points[2], points[4]
	if div64.AreaRel > 1.03 {
		t.Errorf("division 64 area overhead %.3f, want < 3%%", div64.AreaRel)
	}
	if div4096.AreaRel < 1.10 {
		t.Errorf("division 4096 area overhead %.3f, want > 10%%", div4096.AreaRel)
	}
}

func TestExploreWidthShape(t *testing.T) {
	points, err := ExploreWidth(Fig21Points())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5 {
		t.Fatalf("got %d points, want 5", len(points))
	}
	s := map[int]float64{}
	for i, wp := range Fig21Points() {
		s[wp.Width] = points[i].MaxBatch
	}
	// Fig. 21's hump: 128 and 64 beat 256; 16 is the worst of the narrow.
	if !(s[128] > s[256] && s[64] > s[256] && s[16] < s[32] && s[32] < s[64]) {
		t.Errorf("resource-balancing shape wrong: %v", s)
	}
}

func TestExploreRegistersShape(t *testing.T) {
	regs := []int{1, 8}
	w64, err := ExploreRegisters(64, regs)
	if err != nil {
		t.Fatal(err)
	}
	w128, err := ExploreRegisters(128, regs)
	if err != nil {
		t.Fatal(err)
	}
	gain64 := w64[1].MaxBatch / w64[0].MaxBatch
	gain128 := w128[1].MaxBatch / w128[0].MaxBatch
	if gain64 <= gain128 {
		t.Errorf("width 64 must gain more from registers than width 128 (%.2f vs %.2f)",
			gain64, gain128)
	}
}

func TestGeomean(t *testing.T) {
	if g := geomean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("geomean(2,8) = %g, want 4", g)
	}
	if geomean(nil) != 0 {
		t.Fatal("geomean(nil) must be 0")
	}
}
