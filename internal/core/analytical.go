package core

import (
	"context"
	"fmt"
	"math"

	"supernpu/internal/estimator"
	"supernpu/internal/workload"
)

// EvaluateAnalytical is the graceful-degradation path: a roofline estimate of
// an SFQ design from the architecture estimator alone, with no cycle
// simulation. The evaluation service falls back to it when the simulator
// faults, so a degraded deployment keeps answering with an honest
// approximation instead of a 500.
//
// The model is the classic two-ceiling roofline: batch latency is the larger
// of the compute time at the estimator's peak MAC rate and the DRAM time to
// move the weights once plus every layer's input and output activations per
// image. It is deterministic (the estimator memoises by configuration
// fingerprint), so repeated degraded responses are byte-identical.
func EvaluateAnalytical(ctx context.Context, d Design, net workload.Network, batch int) (*Evaluation, error) {
	if d.Platform != SFQ {
		return nil, fmt.Errorf("core: no analytical fallback for %q (SFQ designs only)", d.Name())
	}
	if err := net.Validate(); err != nil {
		return nil, err
	}
	if batch <= 0 {
		batch = d.MaxBatch(net)
	}
	est, err := estimator.Estimate(ctx, d.SFQ)
	if err != nil {
		return nil, err
	}
	macs := net.TotalMACs() * int64(batch)
	var acts int64
	for _, l := range net.Layers {
		acts += l.WorkingSetBytes()
	}
	traffic := net.TotalWeightBytes() + int64(batch)*acts
	computeTime := float64(macs) / est.PeakMACs
	memoryTime := float64(traffic) / d.SFQ.MemoryBandwidth
	time := math.Max(computeTime, memoryTime)
	return &Evaluation{
		Design: d.Name(), Network: net.Name, Batch: batch,
		Frequency: est.Frequency, PeakMACs: est.PeakMACs,
		Throughput: float64(macs) / time, Time: time,
		PEUtilization: computeTime / time,
		TotalCycles:   int64(math.Round(time * est.Frequency)),
		MACs:          macs,
		// Static power only: the roofline has no switching-activity model.
		ChipPower: est.StaticPower,
	}, nil
}
