package core

import (
	"context"
	"fmt"
	"math"

	"supernpu/internal/arch"
	"supernpu/internal/checkpoint"
	"supernpu/internal/estimator"
	"supernpu/internal/faultinject"
	"supernpu/internal/npusim"
	"supernpu/internal/parallel"
	"supernpu/internal/simcache"
	"supernpu/internal/workload"
)

// SweepOptions configures the resilience features of the Explore* sweeps.
// The zero value is the plain nominal sweep.
type SweepOptions struct {
	// Fault perturbs every simulation of the sweep (including the Baseline
	// normalisation references, so speedups compare like with like).
	Fault *faultinject.Model
	// Checkpoint, when non-nil, records each completed sweep point under
	// its content key (config fingerprint + fault key) and skips points
	// already present — the resume path after a killed run.
	Checkpoint *checkpoint.Store
}

// ckSweepPoint is the persisted subset of a SweepPoint; the Config is
// refilled from the sweep's own input, so it never round-trips through JSON.
type ckSweepPoint struct {
	Label       string  `json:"label"`
	SingleBatch float64 `json:"single_batch"`
	MaxBatch    float64 `json:"max_batch"`
	AreaRel     float64 `json:"area_rel"`
}

// sweepKey is the checkpoint key of one sweep point: the full configuration
// fingerprint plus the fault-model key, so a resumed run can only reuse
// points computed under identical modeling conditions.
func sweepKey(cfg arch.Config, fm *faultinject.Model) string {
	return "sweep:" + simcache.ConfigKey(cfg) + fm.Key()
}

// geomean of a slice (the figures' cross-workload aggregate).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SweepPoint is one design point of an exploration sweep, normalised to the
// Baseline design.
type SweepPoint struct {
	Label string
	// SingleBatch and MaxBatch are geometric-mean speedups over the
	// Baseline across the six workloads at batch 1 and at each design's
	// maximum batch.
	SingleBatch float64
	MaxBatch    float64
	// AreaRel is the design's area relative to the Baseline.
	AreaRel float64
	Config  arch.Config
}

// baselineThroughputs returns each workload's Baseline batch-1 throughput,
// the normalisation reference of Figs. 20–22, under the sweep's fault model.
func baselineThroughputs(ctx context.Context, fm *faultinject.Model) (map[string]float64, error) {
	nets := workload.All()
	tputs, err := parallel.MapContext(ctx, len(nets), func(ctx context.Context, i int) (float64, error) {
		r, err := npusim.SimulateFaulted(ctx, arch.Baseline(), nets[i], 1, fm)
		if err != nil {
			return 0, err
		}
		return r.Throughput, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, net := range nets {
		out[net.Name] = tputs[i]
	}
	return out, nil
}

// sweep evaluates one configuration against the Baseline reference. The six
// workloads simulate concurrently; the geomean consumes their speedups in
// workload order, so the result is bit-identical to a serial evaluation.
func sweep(ctx context.Context, cfg arch.Config, base map[string]float64, baseArea float64, fm *faultinject.Model) (SweepPoint, error) {
	nets := workload.All()
	type speedups struct{ s1, sm float64 }
	vals, err := parallel.MapContext(ctx, len(nets), func(ctx context.Context, i int) (speedups, error) {
		r1, err := npusim.SimulateFaulted(ctx, cfg, nets[i], 1, fm)
		if err != nil {
			return speedups{}, err
		}
		rm, err := npusim.SimulateFaulted(ctx, cfg, nets[i], 0, fm)
		if err != nil {
			return speedups{}, err
		}
		ref := base[nets[i].Name]
		return speedups{r1.Throughput / ref, rm.Throughput / ref}, nil
	})
	if err != nil {
		return SweepPoint{}, err
	}
	var s1, sm []float64
	for _, v := range vals {
		s1 = append(s1, v.s1)
		sm = append(sm, v.sm)
	}
	est, err := estimator.EstimateFaulted(ctx, cfg, fm)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Label:       cfg.Name,
		SingleBatch: geomean(s1),
		MaxBatch:    geomean(sm),
		AreaRel:     est.Area28nm / baseArea,
		Config:      cfg,
	}, nil
}

// sweepAllOpts evaluates every configuration as one parallel batch of sweep
// points, preserving input order, with cancellation, fault injection and
// checkpointing. Checkpointed points are returned without any simulation;
// when every point is checkpointed, not even the Baseline references are
// recomputed, so a fully resumed sweep costs zero simulation work.
func sweepAllOpts(ctx context.Context, cfgs []arch.Config, o SweepOptions) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(cfgs))
	var pending []int
	for i, cfg := range cfgs {
		var ck ckSweepPoint
		if o.Checkpoint.Get(sweepKey(cfg, o.Fault), &ck) {
			out[i] = SweepPoint{Label: ck.Label, SingleBatch: ck.SingleBatch,
				MaxBatch: ck.MaxBatch, AreaRel: ck.AreaRel, Config: cfg}
			continue
		}
		pending = append(pending, i)
	}
	if len(pending) == 0 {
		return out, nil
	}
	base, err := baselineThroughputs(ctx, o.Fault)
	if err != nil {
		return nil, err
	}
	bArea, err := baselineArea(ctx, o.Fault)
	if err != nil {
		return nil, err
	}
	err = parallel.ForEachContext(ctx, len(pending), func(ctx context.Context, k int) error {
		i := pending[k]
		p, err := sweep(ctx, cfgs[i], base, bArea, o.Fault)
		if err != nil {
			return err
		}
		out[i] = p
		return o.Checkpoint.Put(sweepKey(cfgs[i], o.Fault), ckSweepPoint{
			Label: p.Label, SingleBatch: p.SingleBatch, MaxBatch: p.MaxBatch, AreaRel: p.AreaRel,
		})
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func baselineArea(ctx context.Context, fm *faultinject.Model) (float64, error) {
	est, err := estimator.EstimateFaulted(ctx, arch.Baseline(), fm)
	if err != nil {
		return 0, err
	}
	return est.Area28nm, nil
}

// ExploreDivision reproduces the Fig. 20 sweep: the Baseline, psum/ofmap
// integration (division 2), then growing division degrees. All sweep points
// evaluate concurrently.
func ExploreDivision(degrees []int) ([]SweepPoint, error) {
	return ExploreDivisionOpts(context.Background(), degrees, SweepOptions{})
}

// ExploreDivisionOpts is ExploreDivision with cancellation, fault injection
// and checkpoint/resume.
func ExploreDivisionOpts(ctx context.Context, degrees []int, o SweepOptions) ([]SweepPoint, error) {
	integ := arch.BufferOpt()
	integ.IfmapChunks, integ.OutputChunks = 2, 2
	integ.Name = "+Integration"

	cfgs := []arch.Config{arch.Baseline(), integ}
	for _, d := range degrees {
		c := arch.BufferOpt()
		c.IfmapChunks, c.OutputChunks = d, d
		c.Name = fmt.Sprintf("+Division %d", d)
		cfgs = append(cfgs, c)
	}
	return sweepAllOpts(ctx, cfgs, o)
}

// WidthPoint is one Fig. 21 resource-balancing configuration: PE-array
// width with the buffer capacity the freed area affords.
type WidthPoint struct {
	Width    int
	BufferMB int
}

// Fig21Points returns the paper's five resource-balancing points.
func Fig21Points() []WidthPoint {
	return []WidthPoint{{256, 24}, {128, 38}, {64, 46}, {32, 50}, {16, 51}}
}

// widthConfig builds a buffer-optimised design at the given array width
// and total buffer capacity, keeping the output chunk length constant as
// the paper does (division degree grows as width shrinks).
func widthConfig(width, bufMB, regs int) arch.Config {
	c := arch.BufferOpt()
	c.Name = fmt.Sprintf("width %d / %d MB / %d regs", width, bufMB, regs)
	c.ArrayWidth = width
	c.Registers = regs
	c.IfmapBufBytes = bufMB * arch.MB / 2
	c.OutputBufBytes = bufMB * arch.MB / 2
	c.OutputChunks = 64 * 256 / width
	return c
}

// ExploreWidth reproduces the Fig. 21 sweep over the given points. All
// sweep points evaluate concurrently.
func ExploreWidth(points []WidthPoint) ([]SweepPoint, error) {
	return ExploreWidthOpts(context.Background(), points, SweepOptions{})
}

// ExploreWidthOpts is ExploreWidth with cancellation, fault injection and
// checkpoint/resume.
func ExploreWidthOpts(ctx context.Context, points []WidthPoint, o SweepOptions) ([]SweepPoint, error) {
	var cfgs []arch.Config
	for _, wp := range points {
		cfgs = append(cfgs, widthConfig(wp.Width, wp.BufferMB, 1))
	}
	return sweepAllOpts(ctx, cfgs, o)
}

// ExploreRegisters reproduces the Fig. 22 sweep: registers-per-PE scaling
// at the given array width with its Fig. 21 buffer capacity. All sweep
// points evaluate concurrently.
func ExploreRegisters(width int, regCounts []int) ([]SweepPoint, error) {
	return ExploreRegistersOpts(context.Background(), width, regCounts, SweepOptions{})
}

// ExploreRegistersOpts is ExploreRegisters with cancellation, fault
// injection and checkpoint/resume.
func ExploreRegistersOpts(ctx context.Context, width int, regCounts []int, o SweepOptions) ([]SweepPoint, error) {
	bufMB := 46
	if width == 128 {
		bufMB = 38
	}
	var cfgs []arch.Config
	for _, r := range regCounts {
		cfgs = append(cfgs, widthConfig(width, bufMB, r))
	}
	return sweepAllOpts(ctx, cfgs, o)
}
