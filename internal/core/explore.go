package core

import (
	"fmt"
	"math"

	"supernpu/internal/arch"
	"supernpu/internal/estimator"
	"supernpu/internal/npusim"
	"supernpu/internal/workload"
)

// geomean of a slice (the figures' cross-workload aggregate).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SweepPoint is one design point of an exploration sweep, normalised to the
// Baseline design.
type SweepPoint struct {
	Label string
	// SingleBatch and MaxBatch are geometric-mean speedups over the
	// Baseline across the six workloads at batch 1 and at each design's
	// maximum batch.
	SingleBatch float64
	MaxBatch    float64
	// AreaRel is the design's area relative to the Baseline.
	AreaRel float64
	Config  arch.Config
}

// baselineThroughputs returns each workload's Baseline batch-1 throughput,
// the normalisation reference of Figs. 20–22.
func baselineThroughputs() (map[string]float64, error) {
	out := map[string]float64{}
	for _, net := range workload.All() {
		r, err := npusim.Simulate(arch.Baseline(), net, 1)
		if err != nil {
			return nil, err
		}
		out[net.Name] = r.Throughput
	}
	return out, nil
}

// sweep evaluates one configuration against the Baseline reference.
func sweep(cfg arch.Config, base map[string]float64, baseArea float64) (SweepPoint, error) {
	var s1, sm []float64
	for _, net := range workload.All() {
		r1, err := npusim.Simulate(cfg, net, 1)
		if err != nil {
			return SweepPoint{}, err
		}
		rm, err := npusim.Simulate(cfg, net, 0)
		if err != nil {
			return SweepPoint{}, err
		}
		s1 = append(s1, r1.Throughput/base[net.Name])
		sm = append(sm, rm.Throughput/base[net.Name])
	}
	est, err := estimator.Estimate(cfg)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Label:       cfg.Name,
		SingleBatch: geomean(s1),
		MaxBatch:    geomean(sm),
		AreaRel:     est.Area28nm / baseArea,
		Config:      cfg,
	}, nil
}

func baselineArea() (float64, error) {
	est, err := estimator.Estimate(arch.Baseline())
	if err != nil {
		return 0, err
	}
	return est.Area28nm, nil
}

// ExploreDivision reproduces the Fig. 20 sweep: the Baseline, psum/ofmap
// integration (division 2), then growing division degrees.
func ExploreDivision(degrees []int) ([]SweepPoint, error) {
	base, err := baselineThroughputs()
	if err != nil {
		return nil, err
	}
	bArea, err := baselineArea()
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	p, err := sweep(arch.Baseline(), base, bArea)
	if err != nil {
		return nil, err
	}
	out = append(out, p)

	integ := arch.BufferOpt()
	integ.IfmapChunks, integ.OutputChunks = 2, 2
	integ.Name = "+Integration"
	p, err = sweep(integ, base, bArea)
	if err != nil {
		return nil, err
	}
	out = append(out, p)

	for _, d := range degrees {
		c := arch.BufferOpt()
		c.IfmapChunks, c.OutputChunks = d, d
		c.Name = fmt.Sprintf("+Division %d", d)
		p, err = sweep(c, base, bArea)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// WidthPoint is one Fig. 21 resource-balancing configuration: PE-array
// width with the buffer capacity the freed area affords.
type WidthPoint struct {
	Width    int
	BufferMB int
}

// Fig21Points returns the paper's five resource-balancing points.
func Fig21Points() []WidthPoint {
	return []WidthPoint{{256, 24}, {128, 38}, {64, 46}, {32, 50}, {16, 51}}
}

// widthConfig builds a buffer-optimised design at the given array width
// and total buffer capacity, keeping the output chunk length constant as
// the paper does (division degree grows as width shrinks).
func widthConfig(width, bufMB, regs int) arch.Config {
	c := arch.BufferOpt()
	c.Name = fmt.Sprintf("width %d / %d MB / %d regs", width, bufMB, regs)
	c.ArrayWidth = width
	c.Registers = regs
	c.IfmapBufBytes = bufMB * arch.MB / 2
	c.OutputBufBytes = bufMB * arch.MB / 2
	c.OutputChunks = 64 * 256 / width
	return c
}

// ExploreWidth reproduces the Fig. 21 sweep over the given points.
func ExploreWidth(points []WidthPoint) ([]SweepPoint, error) {
	base, err := baselineThroughputs()
	if err != nil {
		return nil, err
	}
	bArea, err := baselineArea()
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, wp := range points {
		p, err := sweep(widthConfig(wp.Width, wp.BufferMB, 1), base, bArea)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}

// ExploreRegisters reproduces the Fig. 22 sweep: registers-per-PE scaling
// at the given array width with its Fig. 21 buffer capacity.
func ExploreRegisters(width int, regCounts []int) ([]SweepPoint, error) {
	base, err := baselineThroughputs()
	if err != nil {
		return nil, err
	}
	bArea, err := baselineArea()
	if err != nil {
		return nil, err
	}
	bufMB := 46
	if width == 128 {
		bufMB = 38
	}
	var out []SweepPoint
	for _, r := range regCounts {
		p, err := sweep(widthConfig(width, bufMB, r), base, bArea)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
