package core

import (
	"fmt"
	"math"

	"supernpu/internal/arch"
	"supernpu/internal/estimator"
	"supernpu/internal/npusim"
	"supernpu/internal/parallel"
	"supernpu/internal/workload"
)

// geomean of a slice (the figures' cross-workload aggregate).
func geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// SweepPoint is one design point of an exploration sweep, normalised to the
// Baseline design.
type SweepPoint struct {
	Label string
	// SingleBatch and MaxBatch are geometric-mean speedups over the
	// Baseline across the six workloads at batch 1 and at each design's
	// maximum batch.
	SingleBatch float64
	MaxBatch    float64
	// AreaRel is the design's area relative to the Baseline.
	AreaRel float64
	Config  arch.Config
}

// baselineThroughputs returns each workload's Baseline batch-1 throughput,
// the normalisation reference of Figs. 20–22.
func baselineThroughputs() (map[string]float64, error) {
	nets := workload.All()
	tputs, err := parallel.Map(len(nets), func(i int) (float64, error) {
		r, err := npusim.Simulate(arch.Baseline(), nets[i], 1)
		if err != nil {
			return 0, err
		}
		return r.Throughput, nil
	})
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	for i, net := range nets {
		out[net.Name] = tputs[i]
	}
	return out, nil
}

// sweep evaluates one configuration against the Baseline reference. The six
// workloads simulate concurrently; the geomean consumes their speedups in
// workload order, so the result is bit-identical to a serial evaluation.
func sweep(cfg arch.Config, base map[string]float64, baseArea float64) (SweepPoint, error) {
	nets := workload.All()
	type speedups struct{ s1, sm float64 }
	vals, err := parallel.Map(len(nets), func(i int) (speedups, error) {
		r1, err := npusim.Simulate(cfg, nets[i], 1)
		if err != nil {
			return speedups{}, err
		}
		rm, err := npusim.Simulate(cfg, nets[i], 0)
		if err != nil {
			return speedups{}, err
		}
		ref := base[nets[i].Name]
		return speedups{r1.Throughput / ref, rm.Throughput / ref}, nil
	})
	if err != nil {
		return SweepPoint{}, err
	}
	var s1, sm []float64
	for _, v := range vals {
		s1 = append(s1, v.s1)
		sm = append(sm, v.sm)
	}
	est, err := estimator.Estimate(cfg)
	if err != nil {
		return SweepPoint{}, err
	}
	return SweepPoint{
		Label:       cfg.Name,
		SingleBatch: geomean(s1),
		MaxBatch:    geomean(sm),
		AreaRel:     est.Area28nm / baseArea,
		Config:      cfg,
	}, nil
}

// sweepAll evaluates every configuration as one parallel batch of sweep
// points, preserving input order.
func sweepAll(cfgs []arch.Config) ([]SweepPoint, error) {
	base, err := baselineThroughputs()
	if err != nil {
		return nil, err
	}
	bArea, err := baselineArea()
	if err != nil {
		return nil, err
	}
	return parallel.Map(len(cfgs), func(i int) (SweepPoint, error) {
		return sweep(cfgs[i], base, bArea)
	})
}

func baselineArea() (float64, error) {
	est, err := estimator.Estimate(arch.Baseline())
	if err != nil {
		return 0, err
	}
	return est.Area28nm, nil
}

// ExploreDivision reproduces the Fig. 20 sweep: the Baseline, psum/ofmap
// integration (division 2), then growing division degrees. All sweep points
// evaluate concurrently.
func ExploreDivision(degrees []int) ([]SweepPoint, error) {
	integ := arch.BufferOpt()
	integ.IfmapChunks, integ.OutputChunks = 2, 2
	integ.Name = "+Integration"

	cfgs := []arch.Config{arch.Baseline(), integ}
	for _, d := range degrees {
		c := arch.BufferOpt()
		c.IfmapChunks, c.OutputChunks = d, d
		c.Name = fmt.Sprintf("+Division %d", d)
		cfgs = append(cfgs, c)
	}
	return sweepAll(cfgs)
}

// WidthPoint is one Fig. 21 resource-balancing configuration: PE-array
// width with the buffer capacity the freed area affords.
type WidthPoint struct {
	Width    int
	BufferMB int
}

// Fig21Points returns the paper's five resource-balancing points.
func Fig21Points() []WidthPoint {
	return []WidthPoint{{256, 24}, {128, 38}, {64, 46}, {32, 50}, {16, 51}}
}

// widthConfig builds a buffer-optimised design at the given array width
// and total buffer capacity, keeping the output chunk length constant as
// the paper does (division degree grows as width shrinks).
func widthConfig(width, bufMB, regs int) arch.Config {
	c := arch.BufferOpt()
	c.Name = fmt.Sprintf("width %d / %d MB / %d regs", width, bufMB, regs)
	c.ArrayWidth = width
	c.Registers = regs
	c.IfmapBufBytes = bufMB * arch.MB / 2
	c.OutputBufBytes = bufMB * arch.MB / 2
	c.OutputChunks = 64 * 256 / width
	return c
}

// ExploreWidth reproduces the Fig. 21 sweep over the given points. All
// sweep points evaluate concurrently.
func ExploreWidth(points []WidthPoint) ([]SweepPoint, error) {
	var cfgs []arch.Config
	for _, wp := range points {
		cfgs = append(cfgs, widthConfig(wp.Width, wp.BufferMB, 1))
	}
	return sweepAll(cfgs)
}

// ExploreRegisters reproduces the Fig. 22 sweep: registers-per-PE scaling
// at the given array width with its Fig. 21 buffer capacity. All sweep
// points evaluate concurrently.
func ExploreRegisters(width int, regCounts []int) ([]SweepPoint, error) {
	bufMB := 46
	if width == 128 {
		bufMB = 38
	}
	var cfgs []arch.Config
	for _, r := range regCounts {
		cfgs = append(cfgs, widthConfig(width, bufMB, r))
	}
	return sweepAll(cfgs)
}
