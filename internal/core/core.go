// Package core ties the SuperNPU system together: it exposes the paper's
// five evaluation design points (the TPU core plus the four SFQ designs),
// a unified evaluation interface over both simulators, and the design-space
// exploration entry points (buffer division, resource balancing, register
// scaling) that produced SuperNPU.
package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"supernpu/internal/arch"
	"supernpu/internal/clocking"
	"supernpu/internal/cooling"
	"supernpu/internal/faultinject"
	"supernpu/internal/netunit"
	"supernpu/internal/npusim"
	"supernpu/internal/scalesim"
	"supernpu/internal/sfq"
	"supernpu/internal/workload"
)

// ErrUnknownDesign marks a design name outside the evaluated set (or an
// ERSFQ- prefix applied to a non-SFQ design).
var ErrUnknownDesign = errors.New("core: unknown design")

// IsBadInput reports whether err stems from invalid caller input anywhere in
// the modeling stack — an unknown design, workload kind, clocking scheme,
// network-unit design or cell-library gate. The evaluation service maps such
// errors to 400s; anything else on the simulation path degrades or fails.
// It sees through the parallel pool's PanicError wrapping, so a boundary
// panic recovered deep inside a worker still classifies correctly.
func IsBadInput(err error) bool {
	return errors.Is(err, ErrUnknownDesign) ||
		errors.Is(err, workload.ErrUnknownKind) ||
		errors.Is(err, clocking.ErrUnknownScheme) ||
		errors.Is(err, netunit.ErrUnknownDesign) ||
		errors.Is(err, sfq.ErrUnknownGate)
}

// Platform distinguishes the two simulated machine families.
type Platform int

const (
	// SFQ designs run on the npusim cycle model with the estimator's
	// frequency/power/area.
	SFQ Platform = iota
	// CMOS designs run on the scalesim TPU-core model.
	CMOS
)

// Design is one evaluated design point.
type Design struct {
	Platform Platform
	SFQ      arch.Config
	CMOS     scalesim.Config
}

// Name returns the design's display name.
func (d Design) Name() string {
	if d.Platform == CMOS {
		return d.CMOS.Name
	}
	return d.SFQ.Name
}

// SFQDesign wraps an SFQ configuration.
func SFQDesign(cfg arch.Config) Design { return Design{Platform: SFQ, SFQ: cfg} }

// CMOSDesign wraps a CMOS configuration.
func CMOSDesign(cfg scalesim.Config) Design { return Design{Platform: CMOS, CMOS: cfg} }

// DesignPoints returns the paper's five evaluated designs in Fig. 23
// order: TPU, Baseline, Buffer opt., Resource opt., SuperNPU.
func DesignPoints() []Design {
	out := []Design{CMOSDesign(scalesim.TPU())}
	for _, c := range arch.Designs() {
		out = append(out, SFQDesign(c))
	}
	return out
}

// Workloads returns the six evaluation CNNs.
func Workloads() []workload.Network { return workload.All() }

// DesignByName resolves a design point by display name, case-insensitively.
// An "ERSFQ-" prefix on an SFQ design name selects the energy-efficient
// biasing variant of that design (zero static power, doubled switching
// energy), matching the Table III rows.
func DesignByName(name string) (Design, error) {
	want := strings.TrimSpace(name)
	base, ersfq := want, false
	if len(want) >= 6 && strings.EqualFold(want[:6], "ERSFQ-") {
		base, ersfq = want[6:], true
	}
	for _, d := range DesignPoints() {
		if !strings.EqualFold(d.Name(), base) {
			continue
		}
		if !ersfq {
			return d, nil
		}
		if d.Platform != SFQ {
			return Design{}, fmt.Errorf("%w: ERSFQ applies only to SFQ designs, not %q", ErrUnknownDesign, d.Name())
		}
		cfg := d.SFQ
		cfg.Tech = sfq.ERSFQ
		cfg.Name = "ERSFQ-" + cfg.Name
		return SFQDesign(cfg), nil
	}
	names := make([]string, 0, 5)
	for _, d := range DesignPoints() {
		names = append(names, d.Name())
	}
	return Design{}, fmt.Errorf("%w %q (have %s, optionally ERSFQ- prefixed)",
		ErrUnknownDesign, name, strings.Join(names, ", "))
}

// Evaluation is the unified result of running one workload on one design.
type Evaluation struct {
	Design  string
	Network string
	Batch   int

	Frequency     float64 // Hz
	PeakMACs      float64 // MAC/s
	Throughput    float64 // effective MAC/s
	Time          float64 // batch latency (s)
	PEUtilization float64
	TotalCycles   int64
	MACs          int64

	// PrepFraction is preparation/total cycles (SFQ designs only).
	PrepFraction float64
	// ChipPower is static+dynamic for SFQ, the average power for CMOS.
	ChipPower float64

	// SFQReport and CMOSReport expose the platform-specific detail;
	// exactly one is non-nil.
	SFQReport  *npusim.Report
	CMOSReport *scalesim.Report
}

// Evaluate runs the workload at the given batch (0 = the design's max
// batch) and returns the unified result. Cancellation of ctx aborts the
// underlying simulation with an error matching guard.ErrCanceled.
func Evaluate(ctx context.Context, d Design, net workload.Network, batch int) (*Evaluation, error) {
	return EvaluateFaulted(ctx, d, net, batch, nil)
}

// EvaluateFaulted is Evaluate under a fault model. Faults are an SFQ
// phenomenon — junction spread, thermal pulse drops, bias-margin erosion —
// so CMOS designs evaluate nominally regardless of the model. A disabled
// (or nil) model is the exact nominal path.
func EvaluateFaulted(ctx context.Context, d Design, net workload.Network, batch int, fm *faultinject.Model) (*Evaluation, error) {
	switch d.Platform {
	case SFQ:
		r, err := npusim.SimulateFaulted(ctx, d.SFQ, net, batch, fm)
		if err != nil {
			return nil, err
		}
		return &Evaluation{
			Design: d.Name(), Network: net.Name, Batch: r.Batch,
			Frequency: r.Frequency, PeakMACs: r.PeakMACs,
			Throughput: r.Throughput, Time: r.Time,
			PEUtilization: r.PEUtilization,
			TotalCycles:   r.TotalCycles, MACs: r.MACs,
			PrepFraction: r.PrepFraction(),
			ChipPower:    r.TotalPower(),
			SFQReport:    r,
		}, nil
	case CMOS:
		r, err := scalesim.Simulate(ctx, d.CMOS, net, batch)
		if err != nil {
			return nil, err
		}
		return &Evaluation{
			Design: d.Name(), Network: net.Name, Batch: r.Batch,
			Frequency: d.CMOS.Frequency, PeakMACs: d.CMOS.PeakMACs(),
			Throughput: r.Throughput, Time: r.Time,
			PEUtilization: r.PEUtilization,
			TotalCycles:   r.TotalCycles, MACs: r.MACs,
			ChipPower:  d.CMOS.Power,
			CMOSReport: r,
		}, nil
	default:
		return nil, fmt.Errorf("core: unknown platform %d", d.Platform)
	}
}

// MaxBatch returns the design's Table II batch for the network.
func (d Design) MaxBatch(net workload.Network) int {
	if d.Platform == CMOS {
		return d.CMOS.MaxBatch(net)
	}
	return npusim.MaxBatch(d.SFQ, net)
}

// Speedup evaluates a design against the TPU reference on one workload and
// returns effective-throughput ratio (Fig. 23's y-axis).
func Speedup(ctx context.Context, d Design, net workload.Network) (float64, error) {
	ref, err := Evaluate(ctx, CMOSDesign(scalesim.TPU()), net, 0)
	if err != nil {
		return 0, err
	}
	ev, err := Evaluate(ctx, d, net, 0)
	if err != nil {
		return 0, err
	}
	return ev.Throughput / ref.Throughput, nil
}

// Efficiency builds the Table III row for an evaluation under a cooling
// scenario.
func (e *Evaluation) Efficiency(s cooling.Scenario) cooling.Efficiency {
	return cooling.Efficiency{
		Name:       e.Design,
		Throughput: e.Throughput,
		ChipPower:  e.ChipPower,
		Scenario:   s,
	}
}
