package supernpu

// Property-based tests of the end-to-end evaluation invariants, over
// randomly drawn valid SFQ configurations and all six workloads:
//
//   - clock frequency and effective throughput are strictly positive;
//   - the CMOS-vs-SFQ speedup is strictly positive and finite;
//   - biasing technology (RSFQ vs ERSFQ) never changes performance, so the
//     CMOS-vs-SFQ direction of any configuration is stable under it;
//   - the paper's design points keep their Fig. 23 direction on every
//     workload: the naive Baseline loses to the TPU, every optimised
//     design beats it.
//
// Random exploration (see the generator's envelope) shows the direction is
// NOT universal across arbitrary valid configs — under-buffered or narrow
// arrays legitimately lose to the TPU, which is the paper's motivating
// bottleneck — so the directional claims here are pinned to the paper's
// design points while positivity and biasing-stability are asserted for
// the whole random envelope.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"supernpu/internal/arch"
	"supernpu/internal/core"
	"supernpu/internal/sfq"
)

// randomSFQConfig draws one valid SFQ configuration: power-of-two shapes
// spanning under-resourced through over-provisioned designs.
func randomSFQConfig(rng *rand.Rand, name string) arch.Config {
	pow2 := func(lo, hi int) int { return 1 << (lo + rng.Intn(hi-lo+1)) }
	integrated := rng.Intn(2) == 1
	cfg := arch.Config{
		Name:        name,
		ArrayHeight: pow2(4, 8), ArrayWidth: pow2(4, 8), // 16..256
		Registers:     pow2(0, 3), // 1..8
		IfmapBufBytes: pow2(21, 25), IfmapChunks: pow2(0, 8),
		OutputBufBytes: pow2(21, 25), OutputChunks: pow2(0, 8),
		IntegratedOutput: integrated,
		WeightBufBytes:   pow2(14, 17),
		Tech:             sfq.RSFQ,
		MemoryBandwidth:  arch.DefaultBandwidth,
	}
	if !integrated {
		cfg.PsumBufBytes = pow2(21, 24)
	}
	return cfg
}

func TestPropertyThroughputPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nets := Workloads()
	for i := 0; i < 40; i++ {
		cfg := randomSFQConfig(rng, fmt.Sprintf("prop%d", i))
		if err := cfg.Validate(); err != nil {
			t.Fatalf("generator produced invalid config: %v", err)
		}
		d := core.SFQDesign(cfg)
		for _, batch := range []int{1, 0} {
			net := nets[rng.Intn(len(nets))]
			ev, err := Evaluate(context.Background(), d, net, batch)
			if err != nil {
				t.Fatalf("Evaluate(context.Background(), %s, %s, %d): %v", cfg.Name, net.Name, batch, err)
			}
			if ev.Frequency <= 0 || math.IsInf(ev.Frequency, 0) || math.IsNaN(ev.Frequency) {
				t.Fatalf("frequency %v not strictly positive/finite (%s on %s)", ev.Frequency, cfg.Name, net.Name)
			}
			if ev.Throughput <= 0 || math.IsInf(ev.Throughput, 0) || math.IsNaN(ev.Throughput) {
				t.Fatalf("throughput %v not strictly positive/finite (%s on %s)", ev.Throughput, cfg.Name, net.Name)
			}
			if ev.Time <= 0 {
				t.Fatalf("batch time %v not strictly positive (%s on %s)", ev.Time, cfg.Name, net.Name)
			}
		}
	}
}

func TestPropertySpeedupPositiveFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nets := Workloads()
	for i := 0; i < 30; i++ {
		cfg := randomSFQConfig(rng, fmt.Sprintf("spd%d", i))
		net := nets[rng.Intn(len(nets))]
		s, err := Speedup(context.Background(), core.SFQDesign(cfg), net)
		if err != nil {
			t.Fatalf("Speedup(context.Background(), %s, %s): %v", cfg.Name, net.Name, err)
		}
		if s <= 0 || math.IsInf(s, 0) || math.IsNaN(s) {
			t.Fatalf("speedup %v not strictly positive/finite (%s on %s)", s, cfg.Name, net.Name)
		}
	}
}

// TestPropertySpeedupStableUnderBiasing: ERSFQ biasing changes energy, not
// timing, so the CMOS-vs-SFQ comparison of any configuration must be
// bit-identical across biasing technologies — the direction can never flip.
func TestPropertySpeedupStableUnderBiasing(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nets := Workloads()
	for i := 0; i < 20; i++ {
		cfg := randomSFQConfig(rng, fmt.Sprintf("bias%d", i))
		d := core.SFQDesign(cfg)
		net := nets[rng.Intn(len(nets))]
		s, err := Speedup(context.Background(), d, net)
		if err != nil {
			t.Fatal(err)
		}
		se, err := Speedup(context.Background(), ERSFQ(d), net)
		if err != nil {
			t.Fatal(err)
		}
		if s != se {
			t.Fatalf("biasing flipped performance on %s: RSFQ %v vs ERSFQ %v (%s)",
				net.Name, s, se, cfg.Name)
		}
	}
}

// TestPropertyPaperDirection pins the Fig. 23 direction on every workload:
// the naive Baseline is slower than the TPU core, and each optimised design
// is faster.
func TestPropertyPaperDirection(t *testing.T) {
	for _, net := range Workloads() {
		s, err := Speedup(context.Background(), Baseline(), net)
		if err != nil {
			t.Fatal(err)
		}
		if s >= 1 {
			t.Errorf("Baseline beats the TPU on %s (%.2fx); the paper's motivating bottleneck vanished", net.Name, s)
		}
		for _, d := range []Design{BufferOpt(), ResourceOpt(), SuperNPU()} {
			s, err := Speedup(context.Background(), d, net)
			if err != nil {
				t.Fatal(err)
			}
			if s <= 1 {
				t.Errorf("%s loses to the TPU on %s (%.2fx)", d.Name(), net.Name, s)
			}
		}
	}
}
