module supernpu

go 1.22
