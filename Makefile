# Standard gate for every change: build, vet, then the full test suite
# under the race detector (the parallel sweep engine and the memo caches
# are exercised concurrently by the determinism tests).

GO ?= go

.PHONY: check build vet test race bench bench-sweep repro clean

check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every exhibit; slow).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# The sweep-engine comparison: serial vs parallel vs memoised.
bench-sweep:
	$(GO) test -run=NONE -bench='BenchmarkRunAll|BenchmarkSimulateC' -benchtime=5x .

repro:
	$(GO) run ./cmd/supernpu-repro -v

clean:
	$(GO) clean ./...
