# Standard gate for every change: build, vet, then the full test suite
# under the race detector (the parallel sweep engine and the memo caches
# are exercised concurrently by the determinism tests).

GO ?= go

# Per-package coverage floors enforced by make cover / CI, as
# "<import path>:<floor percent>" pairs.
COVER_PACKAGES ?= ./internal/server:70 ./internal/obs:80 ./internal/checkpoint:70 ./internal/simcache:85
# Per-target budget for the fuzz smoke pass (make fuzz).
FUZZTIME ?= 15s

.PHONY: check build vet test race bench bench-sweep bench-json bench-smoke repro serve cover fuzz metrics-smoke fault-smoke chaos-smoke race-resilience golden-update clean lint lint-self lint-sarif fmt-check

check: build lint lint-self race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Formatting drift gate: fail with the offending file list instead of
# letting unformatted code merge silently.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt drift — run gofmt -w on:"; echo "$$out"; exit 1; \
	fi

# Full static-analysis gate: formatting, go vet, then the domain rulebook
# (internal/lint) that machine-checks the determinism/concurrency/error
# contracts, gated on the committed baseline — only *new* findings fail.
# Findings are suppressed in place with //lint:allow(rule).
lint: fmt-check vet
	$(GO) run ./cmd/supernpu-lint -baseline lint.baseline.json

# Self-application: the analyzer's own packages must pass its rulebook,
# including the interprocedural rules, with no baseline cushion.
lint-self:
	$(GO) run ./cmd/supernpu-lint -pkgs internal/lint,cmd/supernpu-lint

# Emit the findings as a SARIF 2.1.0 log for code-scanning upload.
# Always writes lint.sarif; the exit code still reflects the baseline gate.
lint-sarif:
	$(GO) run ./cmd/supernpu-lint -sarif -baseline lint.baseline.json > lint.sarif

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep (regenerates every exhibit; slow).
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x .

# The sweep-engine comparison: serial vs parallel vs memoised.
bench-sweep:
	$(GO) test -run=NONE -bench='BenchmarkRunAll|BenchmarkSimulateC' -benchtime=5x .

# Recorded perf trajectory: run the solver and sweep benchmarks with
# allocation counting and check the measurements in as a sorted-key JSON
# artifact. Compare BENCH_PR*.json files across PRs with
# `go run ./cmd/benchjson -compare` to see the trend.
BENCH_JSON ?= BENCH_PR10.json
bench-json:
	$(GO) test -run=NONE -bench='BenchmarkRun|BenchmarkBiasMargins' -benchmem ./internal/jsim \
		> bench-json.tmp
	$(GO) test -run=NONE -bench='BenchmarkMarginSweepCold|BenchmarkJSIMTransient|BenchmarkFig20BufferSweepWarm' -benchmem . \
		>> bench-json.tmp
	$(GO) run ./cmd/benchjson < bench-json.tmp > $(BENCH_JSON)
	@rm -f bench-json.tmp
	@echo "wrote $(BENCH_JSON)"

# Regression gate for the -compare drift check: fail the smoke when a
# shared benchmark's recorded ns/op grew past this ratio.
BENCH_THRESHOLD ?= 1.5

# CI smoke: every benchmark must still compile and survive one iteration,
# plus a warm-sweep pass and the recorded-trajectory drift gate between
# the two committed artifacts.
bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...
	$(GO) test -run=NONE -bench='BenchmarkFig20BufferSweepWarm' -benchtime=3x .
	$(GO) run ./cmd/benchjson -compare -threshold $(BENCH_THRESHOLD) BENCH_PR6.json BENCH_PR10.json

repro:
	$(GO) run ./cmd/supernpu-repro -v

# Run the HTTP evaluation service on :8080.
serve:
	$(GO) run ./cmd/supernpu-serve

# Coverage gate: each package in COVER_PACKAGES must stay at or above its
# per-package floor (pkg:floor pairs).
cover:
	@for spec in $(COVER_PACKAGES); do \
		pkg=$${spec%:*}; floor=$${spec##*:}; \
		$(GO) test -coverprofile=cover.out $$pkg || exit 1; \
		$(GO) tool cover -func=cover.out | awk -v pkg="$$pkg" -v floor="$$floor" \
			'/^total:/ { pct = $$3; sub("%", "", pct); \
			if (pct + 0 < floor + 0) { printf "FAIL: %s coverage %s%% below the %s%% floor\n", pkg, pct, floor; exit 1 } \
			else { printf "%s coverage %s%% (floor %s%%)\n", pkg, pct, floor } }' || exit 1; \
	done

# Short fuzzing passes over the request decoders and the cache keys.
# Seed corpora are checked in under */testdata/fuzz and always run in
# `make test`; this target additionally mutates for FUZZTIME per target.
fuzz:
	$(GO) test ./internal/server -run='^$$' -fuzz=FuzzDecodeRequests -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/simcache -run='^$$' -fuzz=FuzzKeyInjectivity -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/obs -run='^$$' -fuzz=FuzzPromEscape -fuzztime=$(FUZZTIME)
	$(GO) test ./internal/lint -run='^$$' -fuzz=FuzzSARIFEscape -fuzztime=$(FUZZTIME)

# CI smoke for the observability surface: scrape GET /metrics off a live
# test server and fail unless it parses as strict Prometheus text.
metrics-smoke:
	$(GO) test ./internal/server -run=TestMetricsEndpoint -count=1 -v

# Fault-injection smoke suite: the margin sweep runs end to end under a
# fixed seed and must be byte-identical between a parallel and a serial
# pass (scheduling independence of the seeded fault model).
fault-smoke:
	$(GO) run ./cmd/supernpu-explore -sweep margin -fault-seed 42 -parallel 4 > fault-smoke-par.out
	$(GO) run ./cmd/supernpu-explore -sweep margin -fault-seed 42 -seq > fault-smoke-seq.out
	cmp fault-smoke-par.out fault-smoke-seq.out
	@echo "fault-injection smoke: parallel and serial sweeps byte-identical"
	@rm -f fault-smoke-par.out fault-smoke-seq.out

# Chaos smoke: the fault-injected margin sweep under the race detector
# with an aggressive cancellation hammer (timeouts landing at staggered
# offsets across the sweep's lifetime). Asserts cancellations stay inside
# the guard taxonomy, leak no goroutines, and never poison a cache.
chaos-smoke:
	SUPERNPU_CHAOS=1 $(GO) test -race -count=1 -run TestChaosMarginSweepCancellationHammer ./internal/experiments -v

# Race-detector pass focused on the resilience subsystems.
race-resilience:
	$(GO) test -race -count=1 ./internal/faultinject ./internal/parallel ./internal/server ./internal/checkpoint

# Re-snapshot the golden exhibit files after an intentional model change.
golden-update:
	$(GO) test . -run TestGolden -update

clean:
	$(GO) clean ./...
	rm -f cover.out
